module github.com/arda-ml/arda

go 1.22
