// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a JSON report on stdout. The raw benchmark lines are preserved verbatim (so
// the report stays benchstat-comparable: `jq -r '.raw[]' BENCH_dataplane.json
// | benchstat /dev/stdin`), and paired new-vs-old variants of the same
// operation are reduced to headline speedup and allocation-reduction ratios.
package main

import (
	"bufio"
	"encoding/json"
	"os"
	"strconv"
	"strings"

	"github.com/arda-ml/arda/internal/cli"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// comparison reduces a new-vs-old benchmark pair to headline ratios.
type comparison struct {
	Op               string  `json:"op"`
	New              string  `json:"new"`
	Old              string  `json:"old"`
	SpeedupX         float64 `json:"speedup_x"`
	AllocsReductionX float64 `json:"allocs_reduction_x"`
	BytesReductionX  float64 `json:"bytes_reduction_x"`
	NewAllocsPerOp   float64 `json:"new_allocs_per_op"`
	OldAllocsPerOp   float64 `json:"old_allocs_per_op"`
}

// report is the emitted document.
type report struct {
	GeneratedBy string       `json:"generated_by"`
	Results     []result     `json:"results"`
	Comparisons []comparison `json:"comparisons"`
	Raw         []string     `json:"raw"`
}

// variantPairs maps each new-plane sub-benchmark name to the old-plane
// variant it replaces.
var variantPairs = map[string]string{
	"hashed":       "string",
	"cached":       "uncached",
	"pooled":       "materialized",
	"checkpointed": "plain",
	"presorted":    "sorted",
	"telemetry":    "plain",
}

// parseLine parses one `go test -bench` result line; ok is false for
// non-benchmark lines (headers, PASS, ok, etc.).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := fields[0]
	// Trim the GOMAXPROCS suffix ("-8") so pairing is machine-independent.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name, Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}

// ratio returns old/new, guarding zero denominators.
func ratio(old, new float64) float64 {
	if new <= 0 {
		return 0
	}
	return old / new
}

func main() {
	cli.Setup("benchjson", false)
	rep := report{GeneratedBy: "cmd/benchjson"}
	byName := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		rep.Raw = append(rep.Raw, line)
		rep.Results = append(rep.Results, r)
		byName[r.Name] = r
	}
	if err := sc.Err(); err != nil {
		cli.Fatalf("%v", err)
	}
	for _, r := range rep.Results {
		i := strings.LastIndex(r.Name, "/")
		if i < 0 {
			continue
		}
		op, variant := r.Name[:i], r.Name[i+1:]
		oldVariant, isNew := variantPairs[variant]
		if !isNew {
			continue
		}
		old, ok := byName[op+"/"+oldVariant]
		if !ok {
			continue
		}
		rep.Comparisons = append(rep.Comparisons, comparison{
			Op:               strings.TrimPrefix(op, "Benchmark"),
			New:              variant,
			Old:              oldVariant,
			SpeedupX:         ratio(old.NsPerOp, r.NsPerOp),
			AllocsReductionX: ratio(old.AllocsPerOp, r.AllocsPerOp),
			BytesReductionX:  ratio(old.BytesPerOp, r.BytesPerOp),
			NewAllocsPerOp:   r.AllocsPerOp,
			OldAllocsPerOp:   old.AllocsPerOp,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		cli.Fatalf("%v", err)
	}
}
