package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// validateExposition checks a Prometheus text-format (version 0.0.4) scrape
// line by line: comment lines must be well-formed HELP/TYPE declarations,
// sample lines must be `name{labels} value [timestamp]` with a legal metric
// name, parseable labels, and a float value. It returns the set of sample
// metric names seen (including _bucket/_sum/_count family members).
func validateExposition(r io.Reader) (map[string]bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	names := map[string]bool{}
	typed := map[string]string{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q (want # HELP/TYPE name ...)", line, text)
			}
			if !validMetricName(fields[2]) {
				return nil, fmt.Errorf("line %d: illegal metric name %q", line, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE line needs exactly one type", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, err := splitSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if !validMetricName(name) {
			return nil, fmt.Errorf("line %d: illegal metric name %q", line, name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("line %d: want `name{labels} value [timestamp]`, got %q", line, text)
		}
		if v := fields[0]; v != "+Inf" && v != "-Inf" && v != "NaN" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return nil, fmt.Errorf("line %d: sample value %q is not a float", line, v)
			}
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: timestamp %q is not an integer", line, fields[1])
			}
		}
		names[name] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("exposition has no samples")
	}
	// Histogram families must be complete: _bucket implies _sum and _count.
	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if !names[fam+suffix] {
				return nil, fmt.Errorf("histogram %s missing %s samples", fam, suffix)
			}
		}
	}
	return names, nil
}

// splitSample separates a sample line into its metric name and the
// remainder after the optional {labels} block, validating label syntax.
func splitSample(text string) (name, rest string, err error) {
	i := strings.IndexAny(text, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("sample %q has no value", text)
	}
	name = text[:i]
	if text[i] == ' ' {
		return name, text[i+1:], nil
	}
	end := strings.IndexByte(text[i:], '}')
	if end < 0 {
		return "", "", fmt.Errorf("unterminated label block in %q", text)
	}
	labels := text[i+1 : i+end]
	if err := validateLabels(labels); err != nil {
		return "", "", fmt.Errorf("labels {%s}: %v", labels, err)
	}
	return name, strings.TrimSpace(text[i+end+1:]), nil
}

// validateLabels checks a comma-separated `key="value"` list. Values may
// contain escaped quotes; keys follow the label-name charset.
func validateLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("missing key= in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validMetricName(key) || strings.Contains(key, ":") {
			return fmt.Errorf("illegal label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		for {
			j := strings.IndexByte(s, '"')
			if j < 0 {
				return fmt.Errorf("unterminated value for label %s", key)
			}
			if j > 0 && s[j-1] == '\\' {
				s = s[j+1:]
				continue
			}
			s = s[j+1:]
			break
		}
		s = strings.TrimSpace(s)
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("garbage after label %s", key)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	return nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
