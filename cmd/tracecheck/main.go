// Command tracecheck validates an NDJSON pipeline trace (written by
// `arda -trace file`) against the span-event schema: every line must be a
// well-formed event of a known type with sane fields, span paths must be
// rooted, and exactly one terminal "run" event must close the stream. With
// -stages it additionally requires span coverage of the named pipeline
// stages — the `make trace-smoke` gate.
//
// With -scrape it instead validates a live `arda -metrics-addr` server: it
// connects to /events (retrying until the server is up), scrapes /metrics
// mid-run and checks the Prometheus text exposition syntax (plus any
// -require-metrics names), then drains the event stream to completion and
// validates it like a trace file — the `make metrics-smoke` gate.
//
// Usage:
//
//	tracecheck trace.ndjson
//	tracecheck -stages prefilter,coreset,join,impute,select,materialize,evaluate trace.ndjson
//	tracecheck -scrape http://127.0.0.1:9090 -stages ... -require-metrics arda_join_seconds,arda_workers_in_flight
//	arda ... -trace /dev/stdout | tracecheck -
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/arda-ml/arda/internal/cli"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/retry"
)

// fatalScrape wraps an error that must abort the scrape poll immediately
// (e.g. a syntactically invalid exposition, which will not fix itself).
type fatalScrape struct{ err error }

func (f *fatalScrape) Error() string { return f.err.Error() }
func (f *fatalScrape) Unwrap() error { return f.err }

func main() {
	var (
		stages   = flag.String("stages", "", "comma-separated span names that must appear in the trace")
		scrape   = flag.String("scrape", "", "base URL of a live arda -metrics-addr server to validate instead of a trace file")
		evPath   = flag.String("events-path", "/events", "events endpoint path on the -scrape server (e.g. /runs/r000000/events against ardad)")
		reqMet   = flag.String("require-metrics", "", "comma-separated metric-name prefixes the /metrics exposition must contain (with -scrape)")
		waitSecs = flag.Int("scrape-wait", 30, "seconds to retry connecting to the -scrape server")
		verbose  = flag.Bool("v", false, "print a per-type event summary")
	)
	flag.Parse()
	cli.Setup("tracecheck", *verbose)

	required := map[string]bool{}
	for _, s := range strings.Split(*stages, ",") {
		if s = strings.TrimSpace(s); s != "" {
			required[s] = true
		}
	}

	if *scrape != "" {
		if flag.NArg() != 0 {
			cli.Fatalf("-scrape takes no trace file argument")
		}
		if err := scrapeLive(*scrape, *evPath, required, splitList(*reqMet), time.Duration(*waitSecs)*time.Second); err != nil {
			cli.Fatalf("%s: %v", *scrape, err)
		}
		return
	}

	in := os.Stdin
	src := "stdin"
	if flag.NArg() > 1 {
		cli.Fatalf("at most one trace file argument, got %d", flag.NArg())
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			cli.Fatalf("%v", err)
		}
		defer f.Close()
		in = f
		src = flag.Arg(0)
	}

	summary, err := validate(in, required)
	if err != nil {
		cli.Fatalf("%s: %v", src, err)
	}
	fmt.Printf("trace OK: %d spans, %d counters, %d histograms, root %q (%d distinct span names)\n",
		summary.spans, summary.counters, summary.hists, summary.root, len(summary.names))
	cli.Progressf("span names: %s", strings.Join(summary.sortedNames(), ", "))
}

// splitList parses a comma-separated flag into trimmed non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// scrapePoll is the shared backoff for waiting on a live server: unbounded
// attempts at a flat 100ms cadence, stopped by the scrape-wait deadline on
// the context (see internal/retry).
var scrapePoll = retry.Policy{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond}

// scrapeLive validates a running telemetry server end-to-end: it subscribes
// to the events endpoint first (so the scrape provably happens while the run
// is live), checks the /metrics exposition, then drains the event stream —
// which terminates when the run finishes — and validates it as a full trace.
// eventsPath selects the stream: "/events" on a single-run arda server, or
// "/runs/{id}/events" on an ardad daemon.
func scrapeLive(base, eventsPath string, requiredStages map[string]bool, requiredMetrics []string, wait time.Duration) error {
	base = strings.TrimRight(base, "/")
	if !strings.HasPrefix(eventsPath, "/") {
		eventsPath = "/" + eventsPath
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()

	var events *http.Response
	var lastErr error
	if err := retry.Do(ctx, scrapePoll, retry.Always, func() error {
		resp, err := http.Get(base + eventsPath)
		if err == nil && resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			err = fmt.Errorf("status %s", resp.Status)
		}
		if err != nil {
			lastErr = err
			return err
		}
		events = resp
		return nil
	}); err != nil {
		if lastErr != nil {
			err = lastErr
		}
		return fmt.Errorf("connecting to %s: %v", eventsPath, err)
	}
	defer events.Body.Close()

	// The run is live now (the events stream is open and unterminated):
	// scrape and validate the exposition. The server comes up before the
	// pipeline registers its stage histograms, so retry until the required
	// names appear — every scrape must still be syntactically valid.
	var metricNames map[string]bool
	retryable := func(err error) bool {
		var fatal *fatalScrape
		return !errors.As(err, &fatal)
	}
	if err := retry.Do(ctx, scrapePoll, retryable, func() error {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			lastErr = fmt.Errorf("scraping /metrics: %v", err)
			return lastErr
		}
		metricNames, err = validateExposition(mresp.Body)
		mresp.Body.Close()
		if err != nil {
			// A malformed exposition will not fix itself — fail immediately
			// by reporting a non-retryable terminal error.
			return &fatalScrape{fmt.Errorf("/metrics exposition: %v", err)}
		}
		var missing []string
		for _, want := range requiredMetrics {
			found := false
			for name := range metricNames {
				if strings.HasPrefix(name, want) {
					found = true
					break
				}
			}
			if !found {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			lastErr = fmt.Errorf("/metrics missing required metrics: %s", strings.Join(missing, ", "))
			return lastErr
		}
		return nil
	}); err != nil {
		var fatal *fatalScrape
		if errors.As(err, &fatal) {
			return fatal.err
		}
		if lastErr != nil {
			err = lastErr
		}
		return err
	}
	fmt.Printf("metrics OK: %d metric families exposed\n", len(metricNames))

	// Drain the stream to completion and validate it like a trace file.
	sum, err := validate(events.Body, requiredStages)
	if err != nil {
		return fmt.Errorf("/events stream: %v", err)
	}
	fmt.Printf("events OK: %d spans, %d counters, %d histograms, root %q (%d distinct span names)\n",
		sum.spans, sum.counters, sum.hists, sum.root, len(sum.names))
	return nil
}

// summary accumulates what the trace contained.
type summary struct {
	spans, counters, hists int
	root                   string
	names                  map[string]int
}

func (s *summary) sortedNames() []string {
	names := make([]string, 0, len(s.names))
	for n := range s.names {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// validate checks every NDJSON line against the obs.Event schema and the
// stream-level invariants, then the required stage coverage.
func validate(r io.Reader, required map[string]bool) (*summary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	sum := &summary{names: map[string]int{}}
	runSeen := false
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("line %d: empty line", line)
		}
		if runSeen {
			return nil, fmt.Errorf("line %d: event after the terminal run event", line)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("line %d: not a valid trace event: %v", line, err)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("line %d: event has no name", line)
		}
		if ev.DurUS < 0 || ev.StartUS < 0 {
			return nil, fmt.Errorf("line %d: negative timing (start_us=%d dur_us=%d)", line, ev.StartUS, ev.DurUS)
		}
		switch ev.Type {
		case obs.EventSpan:
			if ev.Path == "" {
				return nil, fmt.Errorf("line %d: span %q has no path", line, ev.Name)
			}
			if ev.Ord < 0 {
				return nil, fmt.Errorf("line %d: span %q has negative ord", line, ev.Name)
			}
			root := ev.Path
			if i := strings.IndexByte(root, '/'); i >= 0 {
				root = root[:i]
			}
			if sum.root == "" {
				sum.root = root
			} else if root != sum.root {
				return nil, fmt.Errorf("line %d: span path %q not rooted at %q", line, ev.Path, sum.root)
			}
			sum.spans++
			sum.names[ev.Name]++
		case obs.EventCounter:
			sum.counters++
		case obs.EventHist:
			if ev.Value < 0 {
				return nil, fmt.Errorf("line %d: histogram %q has negative count", line, ev.Name)
			}
			sum.hists++
		case obs.EventRun:
			runSeen = true
		default:
			return nil, fmt.Errorf("line %d: unknown event type %q", line, ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line == 0 {
		return nil, fmt.Errorf("trace is empty")
	}
	if !runSeen {
		return nil, fmt.Errorf("missing terminal run event")
	}
	if sum.spans == 0 {
		return nil, fmt.Errorf("trace has no span events")
	}
	var missing []string
	for stage := range required {
		if sum.names[stage] == 0 {
			missing = append(missing, stage)
		}
	}
	if len(missing) > 0 {
		for i := 1; i < len(missing); i++ {
			for j := i; j > 0 && missing[j] < missing[j-1]; j-- {
				missing[j], missing[j-1] = missing[j-1], missing[j]
			}
		}
		return nil, fmt.Errorf("required stages missing from trace: %s", strings.Join(missing, ", "))
	}
	return sum, nil
}
