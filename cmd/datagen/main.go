// Command datagen writes one of the synthetic evaluation corpora to a
// directory of CSV files (base table plus repository), ready to feed to the
// arda command.
//
// Usage:
//
//	datagen -corpus taxi -out data/ -seed 1 -scale 0.5
//	arda -dir data/ -base taxi -target collisions
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/arda-ml/arda/internal/cli"
	"github.com/arda-ml/arda/internal/synth"
)

func main() {
	var (
		corpus  = flag.String("corpus", "taxi", "corpus: taxi | pickup | poverty | school-s | school-l")
		out     = flag.String("out", "data", "output directory")
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "row-count scale factor")
		verbose = flag.Bool("v", false, "log each table as it is written")
	)
	flag.Parse()
	cli.Setup("datagen", *verbose)

	gens := map[string]func(synth.Config) *synth.Corpus{
		"taxi":     synth.Taxi,
		"pickup":   synth.Pickup,
		"poverty":  synth.Poverty,
		"school-s": synth.SchoolS,
		"school-l": synth.SchoolL,
	}
	gen, ok := gens[*corpus]
	if !ok {
		cli.Fatalf("unknown corpus %q", *corpus)
	}
	c := gen(synth.Config{Seed: *seed, Scale: *scale})

	if err := os.MkdirAll(*out, 0o755); err != nil {
		cli.Fatalf("%v", err)
	}
	basePath := filepath.Join(*out, c.Base.Name()+".csv")
	if err := c.Base.WriteCSVFile(basePath); err != nil {
		cli.Fatalf("%v", err)
	}
	fmt.Printf("base:   %s (%d rows, target %q)\n", basePath, c.Base.NumRows(), c.Target)
	for _, t := range c.Repo {
		path := filepath.Join(*out, t.Name()+".csv")
		if err := t.WriteCSVFile(path); err != nil {
			cli.Fatalf("%v", err)
		}
		cli.Progressf("wrote %s (%d rows)", path, t.NumRows())
	}
	fmt.Printf("repo:   %d tables written to %s\n", len(c.Repo), *out)
	relevant := make([]string, 0, len(c.RelevantTables))
	for name := range c.RelevantTables {
		relevant = append(relevant, name)
	}
	fmt.Printf("planted signal lives in: %v\n", relevant)
}
