// Command ardabench regenerates the ARDA paper's evaluation tables and
// figures on the synthetic corpora, printing each in a layout mirroring the
// paper and optionally writing the combined report to a file (the source of
// EXPERIMENTS.md).
//
// Usage:
//
//	ardabench                      # run everything at full scale
//	ardabench -exp fig3,table1     # selected experiments
//	ardabench -quick               # reduced scale (same settings as benches)
//	ardabench -out EXPERIMENTS.md  # also write the report to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/arda-ml/arda/internal/cli"
	"github.com/arda-ml/arda/internal/experiments"
	"github.com/arda-ml/arda/internal/parallel"
)

func main() {
	var (
		expList   = flag.String("exp", "all", "comma-separated experiments: fig3, fig4, fig5, fig6, table1, table2, table3, table4, table5, table6, ablation, extensions, stages, all")
		quick     = flag.Bool("quick", false, "run at reduced scale")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "also write the report to this file")
		stagesOut = flag.String("stages-out", "BENCH_stages.json", "write the stage-cost breakdown JSON here when the stages experiment runs")
		workers   = flag.Int("workers", 0, "max parallel workers (0 = all cores); results are identical for any value")
		verbose   = flag.Bool("v", false, "stream experiment progress to stderr")
	)
	flag.Parse()
	cli.Setup("ardabench", *verbose)
	parallel.SetMaxWorkers(*workers)

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	var report strings.Builder
	emit := func(s string) {
		fmt.Print(s)
		fmt.Println()
		report.WriteString(s)
		report.WriteString("\n")
	}

	start := time.Now()
	var t1 *experiments.Table1Result
	var micro *experiments.MicroResult

	if all || want["fig3"] {
		run("Figure 3", func() error {
			r, err := experiments.Figure3(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			emit(r.RenderChart())
			return nil
		})
	}
	if all || want["table1"] || want["fig4"] {
		run("Table 1 / Figure 4", func() error {
			r, err := experiments.Table1(scale, *seed)
			if err != nil {
				return err
			}
			t1 = r
			if all || want["table1"] {
				emit(r.Render())
			}
			if all || want["fig4"] {
				emit(r.RenderFigure4())
			}
			return nil
		})
	}
	if all || want["table2"] {
		run("Table 2", func() error {
			r, err := experiments.Table2(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			return nil
		})
	}
	if all || want["table3"] {
		run("Table 3", func() error {
			r, err := experiments.Table3(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			return nil
		})
	}
	if all || want["fig5"] {
		run("Figure 5", func() error {
			r, err := experiments.Figure5(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			return nil
		})
	}
	if all || want["table4"] {
		run("Table 4", func() error {
			r, err := experiments.Table4(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			return nil
		})
	}
	if all || want["table5"] {
		run("Table 5", func() error {
			r, err := experiments.Table5(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			return nil
		})
	}
	if all || want["table6"] || want["fig6"] {
		run("Table 6 / Figure 6", func() error {
			r, err := experiments.RunMicros(scale, *seed)
			if err != nil {
				return err
			}
			micro = r
			if all || want["table6"] {
				emit(r.RenderTable6())
			}
			if all || want["fig6"] {
				emit(r.RenderFigure6())
				emit(r.RenderChart())
			}
			return nil
		})
	}
	if all || want["extensions"] {
		run("Extensions", func() error {
			r, err := experiments.Extensions(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			return nil
		})
	}
	if all || want["ablation"] {
		run("RIFS ablation", func() error {
			r, err := experiments.RIFSAblation(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			return nil
		})
	}
	if all || want["stages"] {
		run("Stage breakdown", func() error {
			r, err := experiments.StageBreakdown(scale, *seed)
			if err != nil {
				return err
			}
			emit(r.Render())
			if *stagesOut != "" {
				doc, err := r.JSON()
				if err != nil {
					return err
				}
				if err := os.WriteFile(*stagesOut, doc, 0o644); err != nil {
					return err
				}
				cli.Noticef("stage breakdown written to %s", *stagesOut)
			}
			return nil
		})
	}
	_ = t1
	_ = micro
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Second))

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			cli.Fatalf("writing %s: %v", *out, err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
}

// run executes one experiment with timing and fatal error handling.
func run(name string, f func() error) {
	start := time.Now()
	fmt.Printf("== %s ==\n", name)
	cli.Progressf("starting %s", name)
	if err := f(); err != nil {
		cli.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
}
