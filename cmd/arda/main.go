// Command arda runs automatic relational data augmentation end-to-end over a
// directory of CSV files: it loads a base table and a repository, discovers
// candidate joins, executes the ARDA pipeline, prints a report, and writes
// the augmented table.
//
// Usage:
//
//	arda -dir data/ -base taxi -target collisions -out augmented.csv
//
// Flags tune the pipeline: -selector picks the feature-selection method
// (default RIFS), -plan the join plan (budget|table|full), -coreset the
// row-reduction strategy (uniform|stratified|sketch), -tau enables the
// Tuple-Ratio prefilter. Observability: -v streams live stage progress plus
// the stage-cost tree with per-stage p50/p95/p99 latencies to stderr,
// -trace writes the run's span/counter event stream as NDJSON (published
// atomically when the run finishes — including canceled and timed-out
// runs), -pprof serves net/http/pprof plus the run counters as the expvar
// "arda.counters", and -metrics-addr serves live telemetry: /metrics
// (Prometheus text exposition of counters, gauges, and latency histograms),
// /statusz (the live rendered stage tree), and /events (the NDJSON event
// stream, replayed from the start of the run).
//
// Durability: -checkpoint-dir snapshots pipeline state after every stage so
// a killed run can continue with -resume; -checkpoint-ttl discards saved
// state older than the given age before the run; -max-cells and
// -max-candidate-bytes bound the run's working set, degrading the
// configuration deterministically instead of failing. SIGINT/SIGTERM stop
// the run at the next stage boundary with a partial report.
//
// Exit codes: 0 success, 1 hard failure, 2 canceled (signal), 3 deadline
// exceeded, 4 unusable checkpoint state under -resume.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the default mux
	"os"
	"os/signal"
	"syscall"

	"github.com/arda-ml/arda"
	"github.com/arda-ml/arda/internal/checkpoint"
	"github.com/arda-ml/arda/internal/cli"
	"github.com/arda-ml/arda/internal/metrics"
)

// Exit codes for scripted callers.
const (
	exitCanceled   = 2
	exitDeadline   = 3
	exitCheckpoint = 4
)

func main() {
	var (
		mode       = flag.String("mode", "augment", "augment | discover (list candidate joins) | describe (profile tables)")
		dir        = flag.String("dir", ".", "directory of CSV files (base table + repository)")
		baseName   = flag.String("base", "", "name of the base table (file name without .csv)")
		target     = flag.String("target", "", "target column in the base table")
		out        = flag.String("out", "", "path to write the augmented CSV (optional)")
		selector   = flag.String("selector", "RIFS", "feature selector: RIFS, random forest, sparse regression, lasso, logistic reg, linear svc, f-test, mutual info, relief, forward selection, backward selection, rfe, all features")
		plan       = flag.String("plan", "budget", "join plan: budget | table | full")
		strategy   = flag.String("coreset", "uniform", "coreset strategy: uniform | stratified | sketch | leverage")
		size       = flag.Int("size", 0, "coreset size (0 = automatic)")
		budget     = flag.Int("budget", 0, "feature budget per batch (0 = coreset size)")
		tau        = flag.Float64("tau", 0, "Tuple-Ratio prefilter threshold (0 = disabled)")
		seed       = flag.Int64("seed", 1, "random seed")
		softJoin   = flag.String("soft", "2way", "soft-key join method: 2way | nearest | hard")
		transitive = flag.Bool("transitive", false, "also discover two-hop (transitive) join candidates")
		knnImpute  = flag.Int("knn-impute", 0, "use k-nearest-neighbour imputation with this k (0 = median/random)")
		sig        = flag.Int("significance", 0, "bootstrap resamples for the augmentation significance test (0 = off)")
		workers    = flag.Int("workers", 0, "max parallel workers (0 = all cores); results are identical for any value")
		timeout    = flag.Duration("timeout", 0, "bound the run's wall-clock time (e.g. 90s, 5m); an exceeded run stops with a partial report (0 = unbounded)")
		verbose    = flag.Bool("v", false, "stream pipeline progress and the stage-cost tree to stderr")
		traceFile  = flag.String("trace", "", "write the run's trace event stream to this file as NDJSON")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar run counters on this address (e.g. localhost:6060)")
		metricsAddr = flag.String("metrics-addr", "", "serve live run telemetry on this address: /metrics (Prometheus), /statusz (stage tree), /events (NDJSON stream)")
		ckDir      = flag.String("checkpoint-dir", "", "snapshot pipeline state into this directory after every stage (crash-safe)")
		ckTTL      = flag.Duration("checkpoint-ttl", 0, "discard checkpoint state in -checkpoint-dir older than this before the run (0 = keep)")
		resume     = flag.Bool("resume", false, "continue from the last completed stage recorded in -checkpoint-dir")
		maxCells   = flag.Int64("max-cells", 0, "bound the augmented working set to this many cells, degrading deterministically (0 = unbounded)")
		maxBytes   = flag.Int64("max-candidate-bytes", 0, "bound the candidate tables admitted per run to this estimated byte size (0 = unbounded)")
	)
	flag.Parse()
	cli.Setup("arda", *verbose)

	// Observability: a trace is attached when anything will consume it — an
	// NDJSON file, the verbose stage tree, a pprof/expvar endpoint, or the
	// live telemetry server. Set up before the (possibly slow) CSV load so
	// /metrics and /events answer from the moment the process is up; the
	// stream sink's replay buffer means even a subscriber that connects
	// later sees the run from its first span.
	var sinks []arda.TraceSink
	var traceSink interface{ Flush() error }
	if *traceFile != "" {
		s, err := arda.NewTraceFile(*traceFile)
		if err != nil {
			cli.Fatalf("creating trace file: %v", err)
		}
		traceSink = s
		sinks = append(sinks, s)
	}
	var stream *arda.TraceStream
	serveMetrics := *metricsAddr != "" && *mode == "augment"
	if serveMetrics {
		stream = arda.NewTraceStream(0)
		sinks = append(sinks, stream)
	}
	var trace *arda.Trace
	if *traceFile != "" || *verbose || *pprofAddr != "" || serveMetrics {
		trace = arda.NewTrace(sinks...)
	}
	var msrv *metrics.Server
	if serveMetrics {
		srv, err := metrics.NewServer(*metricsAddr, trace, stream)
		if err != nil {
			cli.Fatalf("starting telemetry server: %v", err)
		}
		msrv = srv
		cli.Noticef("telemetry serving on http://%s/metrics (also /statusz, /events)", srv.Addr())
	}
	if *pprofAddr != "" {
		arda.PublishTraceExpvar(trace)
		ln := *pprofAddr
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				cli.Errorf("pprof server: %v", err)
			}
		}()
		cli.Noticef("pprof/expvar serving on http://%s/debug/pprof (counters at /debug/vars)", ln)
	}

	tables, err := arda.LoadCSVDir(*dir)
	if err != nil {
		cli.Fatalf("loading %s: %v", *dir, err)
	}
	if *mode == "describe" {
		for _, t := range tables {
			fmt.Print(arda.Describe(t))
		}
		return
	}
	if *baseName == "" || *target == "" {
		flag.Usage()
		os.Exit(2)
	}
	var base *arda.Table
	var repo []*arda.Table
	for _, t := range tables {
		if t.Name() == *baseName {
			base = t
		} else {
			repo = append(repo, t)
		}
	}
	if base == nil {
		cli.Fatalf("base table %q not found in %s (%d tables loaded)", *baseName, *dir, len(tables))
	}

	// Stale-checkpoint hygiene: a TTL sweep before the run, so an ancient
	// half-finished log is discarded (and the run starts fresh) instead of
	// being resumed weeks later. Losing a checkpoint costs recompute time,
	// never correctness.
	if *ckDir != "" && *ckTTL > 0 {
		if pruned, err := checkpoint.Prune(*ckDir, *ckTTL, 0, nil); err != nil {
			cli.Errorf("pruning checkpoints: %v", err)
		} else if len(pruned) > 0 {
			cli.Noticef("discarded %d stale checkpoint log(s) older than %s in %s", len(pruned), *ckTTL, *ckDir)
		}
	}

	opts := arda.Options{
		Target:            *target,
		CoresetSize:       *size,
		Budget:            *budget,
		TupleRatioTau:     *tau,
		Seed:              *seed,
		KNNImpute:         *knnImpute,
		Significance:      *sig,
		Workers:           *workers,
		Timeout:           *timeout,
		CheckpointDir:     *ckDir,
		Resume:            *resume,
		MaxCells:          *maxCells,
		MaxCandidateBytes: *maxBytes,
	}
	if *verbose {
		opts.Logf = cli.Progressf
	}
	opts.Trace = trace

	switch *plan {
	case "budget":
		opts.Plan = arda.BudgetJoin
	case "table":
		opts.Plan = arda.TableJoin
	case "full":
		opts.Plan = arda.FullMaterialization
	default:
		cli.Fatalf("unknown plan %q", *plan)
	}
	switch *strategy {
	case "uniform":
		opts.CoresetStrategy = arda.CoresetUniform
	case "stratified":
		opts.CoresetStrategy = arda.CoresetStratified
	case "sketch":
		opts.CoresetStrategy = arda.CoresetSketch
	case "leverage":
		opts.CoresetStrategy = arda.CoresetLeverage
	default:
		cli.Fatalf("unknown coreset strategy %q", *strategy)
	}
	switch *softJoin {
	case "2way":
		opts.SoftMethod = arda.TwoWayNearest
	case "nearest":
		opts.SoftMethod = arda.NearestNeighbor
	case "hard":
		opts.SoftMethod = arda.HardExact
	default:
		cli.Fatalf("unknown soft-join method %q", *softJoin)
	}
	sel, err := arda.NewSelector(arda.Method(*selector))
	if err != nil {
		cli.Fatalf("%v", err)
	}
	opts.Selector = sel

	fmt.Printf("base table: %s\n", base)
	fmt.Printf("repository: %d tables\n", len(repo))
	cands := arda.Discover(base, repo, *target)
	fmt.Printf("discovered: %d candidate joins\n", len(cands))
	if *transitive {
		trans := arda.DiscoverTransitive(base, repo, *target, *seed)
		fmt.Printf("transitive: %d widened candidates\n", len(trans))
		cands = append(cands, trans...)
	}
	if *mode == "discover" {
		for _, c := range cands {
			kind := "hard"
			if c.Geo {
				kind = "geo"
			} else if c.Soft {
				kind = "soft"
			}
			keys := ""
			for i, kp := range c.Keys {
				if i > 0 {
					keys += "+"
				}
				keys += kp.BaseColumn + "->" + kp.ForeignColumn
			}
			fmt.Printf("  %-24s score=%.2f %-4s %s\n", c.Table.Name(), c.Score, kind, keys)
		}
		return
	}

	// SIGINT/SIGTERM stop the run at the next stage boundary; the partial
	// report below still prints, and a -checkpoint-dir run can continue with
	// -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := arda.AugmentContext(ctx, base, cands, opts)
	// publishTrace flushes the NDJSON file sink (atomic publish) — the
	// pipeline finishes the trace even on interrupted exits, so canceled and
	// timed-out runs leave a valid, complete trace file too.
	publishTrace := func() error {
		if traceSink == nil {
			return nil
		}
		if err := traceSink.Flush(); err != nil {
			return err
		}
		cli.Noticef("trace written to %s", *traceFile)
		return nil
	}
	if err != nil {
		switch {
		case errors.Is(err, arda.ErrCanceled), errors.Is(err, arda.ErrDeadline):
			cli.Errorf("%v — partial report:", err)
			if res != nil {
				reportAttrition(res, *verbose)
				if res.Trace != nil {
					cli.Dump(res.Trace.Render())
				}
			}
			if err := publishTrace(); err != nil {
				cli.Errorf("writing trace file: %v", err)
			}
			msrv.Close()
			if *ckDir != "" {
				cli.Noticef("rerun with -resume to continue from the last completed stage in %s", *ckDir)
			}
			if errors.Is(err, arda.ErrDeadline) {
				os.Exit(exitDeadline)
			}
			os.Exit(exitCanceled)
		case errors.Is(err, arda.ErrCheckpointCorrupt), errors.Is(err, arda.ErrCheckpointMismatch):
			cli.Errorf("%v", err)
			cli.Noticef("rerun without -resume to discard the saved checkpoint state and start fresh")
			os.Exit(exitCheckpoint)
		}
		cli.Fatalf("%v", err)
	}

	if res.ResumedFrom != "" {
		fmt.Printf("resumed from checkpoint: %s\n", res.ResumedFrom)
	}
	fmt.Printf("\nbase score:      %.4f\n", res.BaseScore)
	fmt.Printf("augmented score: %.4f\n", res.FinalScore)
	fmt.Printf("kept columns:    %d (from %d tables)\n", len(res.KeptColumns), len(res.KeptTables))
	for _, name := range res.KeptTables {
		fmt.Printf("  + %s\n", name)
	}
	reportAttrition(res, *verbose)
	if res.Significance != nil {
		s := res.Significance
		fmt.Printf("significance: Δ=%.4f  p=%.3f  95%% CI [%.4f, %.4f]\n",
			s.MeanDelta, s.PValue, s.CI95[0], s.CI95[1])
	}
	fmt.Printf("elapsed: %s (selection %s)\n", res.Elapsed.Round(1e7), res.SelectionElapsed.Round(1e7))
	if res.Trace != nil {
		cli.Dump(res.Trace.Render())
	}
	// Trace.Finish already flushed inside the pipeline; the idempotent
	// re-Flush surfaces any publish error. The telemetry server closes after
	// the finished trace flushed the stream, so /events readers drain the
	// complete run before the listener goes away.
	if err := publishTrace(); err != nil {
		cli.Fatalf("writing trace file: %v", err)
	}
	msrv.Close()

	if *out != "" {
		if err := res.Table.WriteCSVFile(*out); err != nil {
			cli.Fatalf("writing %s: %v", *out, err)
		}
		fmt.Printf("augmented table written to %s (%d columns)\n", *out, res.Table.NumCols())
	}
}

// reportAttrition prints the candidate attrition and quarantine summary;
// verbose adds one line per quarantined candidate.
func reportAttrition(res *arda.Result, verbose bool) {
	fmt.Printf("candidates: %d considered → %d after dedupe → %d after tuple-ratio\n",
		res.CandidatesConsidered, res.CandidatesDeduped, res.CandidatesDeduped-res.CandidatesFiltered)
	if res.Trace != nil {
		c := res.Trace.Counters
		if hits, misses := c["select.splitset_cache_hits"], c["select.splitset_cache_misses"]; hits+misses > 0 {
			fmt.Printf("selection presort cache: %d hits / %d misses; %d sweep trees scheduled as waves\n",
				hits, misses, c["select.trees_scheduled"])
		}
	}
	if len(res.Degraded) > 0 {
		fmt.Printf("degraded: %d budget step(s) applied\n", len(res.Degraded))
		for _, d := range res.Degraded {
			fmt.Printf("  - %s under %s: %s (%d → %d)\n", d.Action, d.Budget, d.Detail, d.Before, d.After)
		}
	}
	if len(res.Quarantined) == 0 {
		return
	}
	fmt.Printf("quarantined: %d candidates isolated by the fault boundary\n", len(res.Quarantined))
	if verbose {
		for _, q := range res.Quarantined {
			cli.Progressf("  quarantined %s at %s: %s", q.Name, q.Stage, q.Reason)
		}
	}
}
