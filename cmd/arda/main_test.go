package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/synth"
)

// buildArda compiles the arda binary into dir and returns its path.
func buildArda(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "arda")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building arda: %v\n%s", err, out)
	}
	return bin
}

// writeCorpus materializes a synthetic corpus as CSV files and returns the
// data directory, base table name, and target column.
func writeCorpus(t *testing.T, dir string) (string, string, string) {
	t.Helper()
	data := filepath.Join(dir, "data")
	if err := os.MkdirAll(data, 0o755); err != nil {
		t.Fatal(err)
	}
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.3})
	if err := corpus.Base.WriteCSVFile(filepath.Join(data, corpus.Base.Name()+".csv")); err != nil {
		t.Fatal(err)
	}
	for _, tab := range corpus.Repo {
		if err := tab.WriteCSVFile(filepath.Join(data, tab.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	return data, corpus.Base.Name(), corpus.Target
}

// TestSIGINTPartialReport is the interruption contract for the CLI: a run
// killed with SIGINT mid-pipeline must exit with code 2, print a partial
// report plus a -resume hint to stderr, and still publish a complete,
// schema-valid -trace file atomically (no stray .tmp). The signal is sent
// only after the first verbose progress line, which the pipeline emits
// strictly after the signal handler is registered; if the run still finishes
// before the signal lands, the test retries at a larger coreset size.
func TestSIGINTPartialReport(t *testing.T) {
	tmp := t.TempDir()
	bin := buildArda(t, tmp)
	data, base, target := writeCorpus(t, tmp)

	for attempt, size := range []int{256, 1024, 4096} {
		tracePath := filepath.Join(tmp, "trace.ndjson")
		ckDir := filepath.Join(tmp, "ck")
		os.Remove(tracePath)
		os.RemoveAll(ckDir)

		cmd := exec.Command(bin,
			"-dir", data, "-base", base, "-target", target,
			"-size", strconv.Itoa(size), "-seed", "7", "-v",
			"-trace", tracePath, "-checkpoint-dir", ckDir)
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		stderrPipe, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		watchdog := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })

		var stderr bytes.Buffer
		signaled := false
		sc := bufio.NewScanner(stderrPipe)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			line := sc.Text()
			stderr.WriteString(line + "\n")
			if !signaled && strings.HasPrefix(line, "arda: ") {
				// First progress line: the pipeline is running, so the
				// signal handler is installed. Interrupt now.
				if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
					t.Fatalf("sending SIGINT: %v", err)
				}
				signaled = true
			}
		}
		err = cmd.Wait()
		watchdog.Stop()
		if !signaled {
			t.Fatalf("no progress line ever appeared on stderr\nstdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
		}
		if err == nil {
			// The run beat the signal to the finish line; go bigger.
			t.Logf("attempt %d (size %d): run completed before SIGINT landed, retrying larger", attempt, size)
			continue
		}
		exitErr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("wait: %v", err)
		}
		if code := exitErr.ExitCode(); code != exitCanceled {
			t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitCanceled, stdout.String(), stderr.String())
		}
		if !strings.Contains(stderr.String(), "partial report") {
			t.Fatalf("stderr missing partial report:\n%s", stderr.String())
		}
		if !strings.Contains(stderr.String(), "-resume") {
			t.Fatalf("stderr missing resume hint for the checkpoint dir:\n%s", stderr.String())
		}
		validateTraceFile(t, tracePath)
		return
	}
	t.Skip("run completed before SIGINT at every ladder size; machine too fast to interrupt deterministically")
}

// validateTraceFile checks that the interrupted run still published a
// complete NDJSON trace: the file exists with no stray .tmp beside it
// (atomic publish), every line is a valid event, and the stream ends with
// the terminal run event.
func validateTraceFile(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path + ".tmp"); err == nil {
		t.Fatalf("stray %s.tmp left behind — publish was not atomic", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("interrupted run published no trace file: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace file is empty")
	}
	var last obs.Event
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not a valid event: %v", i+1, err)
		}
		last = ev
	}
	if last.Type != obs.EventRun {
		t.Fatalf("trace does not end with the terminal run event (got type %q)", last.Type)
	}
}
