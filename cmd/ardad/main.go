// Command ardad is the ARDA augmentation service: a long-running daemon that
// accepts augmentation runs over HTTP, executes them through bounded,
// tenant-fair admission lanes on the shared worker pool, and survives
// crashes without losing work.
//
// Usage:
//
//	ardad -addr localhost:8080 -state /var/lib/ardad -dir data/
//
// Several daemons may share one -state directory (on one host or a shared
// filesystem): each run is owned via a crash-safe filesystem lease with a
// monotonic fencing token, heartbeat-renewed at a third of -lease-ttl. A
// SIGKILLed daemon's runs are adopted by a surviving peer — immediately when
// the dead process is on the same host, within -lease-ttl otherwise — and a
// stale owner is fenced out at its next write instead of corrupting state.
// Set -lease-ttl 0 to run the single-process protocol with no lease files.
//
// Submit runs as JSON specs (see internal/runqueue.Spec):
//
//	curl -d '{"base":"taxi","target":"collisions"}' localhost:8080/runs
//
// Durability: every accepted run is persisted before it is acknowledged and
// checkpoints its pipeline state after every stage, so killing the daemon —
// including kill -9 — and restarting it over the same -state directory
// requeues and resumes in-flight runs to bit-identical results. SIGTERM and
// SIGINT drain gracefully: admission closes (new submits get 503 +
// Retry-After), in-flight runs get -drain-timeout to finish, stragglers are
// checkpointed and requeued for the next start, and the process exits 0.
//
// Queueing: at most -concurrency runs execute at once and at most -queue-cap
// wait; submits beyond that are rejected with 429. Each spec may name a
// tenant (default lane: -tenant); lanes are dispatched deficit-round-robin
// (-drr-quantum runs per lane per visit) with per-lane queue caps
// (-tenant-cap) and in-flight quotas (-tenant-inflight), so one tenant's
// flood cannot starve the others. Transient run failures retry with capped
// exponential backoff. /metrics exposes the queue, lease, and per-tenant
// telemetry plus runtime gauges in Prometheus text format;
// /runs/{id}/events streams one run's trace as NDJSON.
//
// Old checkpoints: -checkpoint-ttl prunes per-run checkpoint directories
// whose last write is older than the TTL at startup (0 keeps everything).
package main

import (
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/arda-ml/arda/internal/cli"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/runqueue"
	"github.com/arda-ml/arda/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "HTTP listen address")
		state        = flag.String("state", "", "state directory for run records and checkpoints (required)")
		dir          = flag.String("dir", "", "default CSV corpus directory for specs that name none")
		queueCap     = flag.Int("queue-cap", 16, "maximum queued (not yet running) runs; submits beyond are rejected with 429")
		concurrency  = flag.Int("concurrency", 2, "runs executing at once (they share the worker pool)")
		workers      = flag.Int("workers", 0, "max parallel workers shared by all runs (0 = all cores); results are identical for any value")
		runTimeout   = flag.Duration("run-timeout", 0, "default per-run wall-clock budget for specs without one (0 = unbounded)")
		maxCells     = flag.Int64("max-cells", 0, "default per-run working-set bound in cells (0 = unbounded)")
		maxBytes     = flag.Int64("max-candidate-bytes", 0, "default per-run candidate byte budget (0 = unbounded)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight runs before checkpointing and requeueing them")
		ckTTL        = flag.Duration("checkpoint-ttl", 0, "prune per-run checkpoint state older than this at startup (0 = keep forever; never prunes runs holding a live lease)")
		leaseTTL     = flag.Duration("lease-ttl", 10*time.Second, "run-ownership lease TTL for multi-daemon shared -state dirs (0 = single-process mode, no leases)")
		tenant       = flag.String("tenant", "default", "admission lane for specs that name no tenant")
		tenantCap    = flag.Int("tenant-cap", 0, "maximum queued runs per tenant lane (0 = -queue-cap)")
		tenantInFl   = flag.Int("tenant-inflight", 0, "maximum concurrently executing runs per tenant (0 = unlimited)")
		drrQuantum   = flag.Int("drr-quantum", 1, "deficit-round-robin quantum: runs one tenant lane may dispatch per scheduler visit")
		verbose      = flag.Bool("v", false, "log queue activity to stderr")
	)
	flag.Parse()
	cli.Setup("ardad", *verbose)
	if *state == "" {
		cli.Fatalf("-state is required")
	}

	// One long-lived trace carries the daemon's telemetry: queue metrics from
	// the manager, runtime gauges from the server's sampler. Per-run traces
	// are separate (each run gets its own, streamed at /runs/{id}/events).
	trace := obs.New("ardad")

	mgr, err := runqueue.Open(runqueue.Config{
		StateDir:          *state,
		DataDir:           *dir,
		QueueCap:          *queueCap,
		Concurrency:       *concurrency,
		Workers:           *workers,
		RunTimeout:        *runTimeout,
		MaxCells:          *maxCells,
		MaxCandidateBytes: *maxBytes,
		CheckpointTTL:     *ckTTL,
		LeaseTTL:          *leaseTTL,
		DefaultTenant:     *tenant,
		TenantQueueCap:    *tenantCap,
		TenantMaxInFlight: *tenantInFl,
		DRRQuantum:        *drrQuantum,
		Trace:             trace,
		Logf:              cli.Progressf,
	})
	if err != nil {
		cli.Fatalf("opening state %s: %v", *state, err)
	}

	srv, err := server.New(*addr, mgr, trace)
	if err != nil {
		cli.Fatalf("%v", err)
	}
	cli.Noticef("ardad serving on http://%s (state %s)", srv.Addr(), *state)

	// Graceful drain: stop admitting, give in-flight runs the drain budget,
	// checkpoint-and-requeue what remains, then stop the listener. The order
	// matters — the listener stays up during the drain so status polls and
	// event streams keep answering (submits get 503) until the queue is idle.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	cli.Noticef("received %s, draining (timeout %s)", s, *drainTimeout)
	if err := mgr.Close(*drainTimeout); err != nil {
		cli.Errorf("drain: %v", err)
	}
	if err := srv.Close(0); err != nil {
		cli.Errorf("closing listener: %v", err)
	}
	cli.Noticef("drained, exiting")
}
