package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/runqueue"
	"github.com/arda-ml/arda/internal/synth"
)

// buildArdad compiles the daemon into dir and returns the binary path.
func buildArdad(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "ardad")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ardad: %v\n%s", err, out)
	}
	return bin
}

// writeCorpus materializes a synthetic corpus as CSVs and returns the data
// directory plus the base table name and target column.
func writeCorpus(t *testing.T, dir string) (string, string, string) {
	t.Helper()
	data := filepath.Join(dir, "data")
	if err := os.MkdirAll(data, 0o755); err != nil {
		t.Fatal(err)
	}
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.3})
	if err := corpus.Base.WriteCSVFile(filepath.Join(data, corpus.Base.Name()+".csv")); err != nil {
		t.Fatal(err)
	}
	for _, tab := range corpus.Repo {
		if err := tab.WriteCSVFile(filepath.Join(data, tab.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	return data, corpus.Base.Name(), corpus.Target
}

// daemon is one running ardad process under test.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *bytes.Buffer
	mu     *sync.Mutex
}

func (d *daemon) log() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// startDaemon launches ardad on an ephemeral port and waits for its listen
// address to appear on stderr. Extra flags are appended after the defaults,
// so they may override -concurrency and friends.
func startDaemon(t *testing.T, bin, state, data string, workers int, extra ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0", "-state", state, "-dir", data,
		"-concurrency", "2", "-workers", fmt.Sprint(workers), "-v"}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &bytes.Buffer{}, mu: &sync.Mutex{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if i := strings.Index(line, "serving on http://"); i >= 0 {
				addr := line[i+len("serving on http://"):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never reported its listen address\nstderr:\n%s", d.log())
	}
	return d
}

// stop drains the daemon with SIGTERM and requires a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit 0 after SIGTERM: %v\nstderr:\n%s", err, d.log())
	}
}

// submit posts one spec and returns the accepted run's ID.
func (d *daemon) submit(t *testing.T, spec runqueue.Spec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(d.base+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submitting: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var rec runqueue.Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return rec.ID
}

// get fetches one run record.
func (d *daemon) get(t *testing.T, id string) runqueue.Record {
	t.Helper()
	resp, err := http.Get(d.base + "/runs/" + id)
	if err != nil {
		t.Fatalf("getting %s: %v", id, err)
	}
	defer resp.Body.Close()
	var rec runqueue.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("decoding %s: %v", id, err)
	}
	return rec
}

// waitCompleted polls until every listed run is completed, failing fast on a
// failed or canceled run.
func (d *daemon) waitCompleted(t *testing.T, ids []string, deadline time.Duration) map[string]*runqueue.RunResult {
	t.Helper()
	out := map[string]*runqueue.RunResult{}
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		done := 0
		for _, id := range ids {
			rec := d.get(t, id)
			switch rec.State {
			case runqueue.StateCompleted:
				out[id] = rec.Result
				done++
			case runqueue.StateFailed, runqueue.StateCanceled:
				t.Fatalf("run %s ended %s: %s\nstderr:\n%s", id, rec.State, rec.Error, d.log())
			}
		}
		if done == len(ids) {
			return out
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("runs %v not completed within %s\nstderr:\n%s", ids, deadline, d.log())
	return nil
}

// TestCrashRecoveryBitIdentical is the crash gate: a daemon killed with
// SIGKILL while two runs are executing must, on restart over the same state
// directory, requeue and finish both runs with results bit-identical to an
// uninterrupted daemon's — augmented-table digest, scores, and kept columns
// all equal — at both ends of the worker-count range.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	tmp := t.TempDir()
	bin := buildArdad(t, tmp)
	data, base, target := writeCorpus(t, tmp)
	specs := []runqueue.Spec{
		{Base: base, Target: target, Size: 768, Seed: 7},
		{Base: base, Target: target, Size: 768, Seed: 11, Coreset: "stratified"},
	}

	// Reference: an uninterrupted daemon completes both runs.
	ref := startDaemon(t, bin, filepath.Join(tmp, "state-ref"), data, 0)
	var refIDs []string
	for _, s := range specs {
		refIDs = append(refIDs, ref.submit(t, s))
	}
	want := ref.waitCompleted(t, refIDs, 2*time.Minute)
	ref.stop(t)

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			state := filepath.Join(tmp, fmt.Sprintf("state-w%d", workers))

			// Start, submit both runs, and SIGKILL once both are executing.
			d := startDaemon(t, bin, state, data, workers)
			var ids []string
			for _, s := range specs {
				ids = append(ids, d.submit(t, s))
			}
			killStop := time.Now().Add(time.Minute)
			for {
				running := 0
				for _, id := range ids {
					if d.get(t, id).State == runqueue.StateRunning {
						running++
					}
				}
				if running == len(ids) {
					break
				}
				if time.Now().After(killStop) {
					t.Fatalf("both runs never in flight together\nstderr:\n%s", d.log())
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err := d.cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			_ = d.cmd.Wait() // expected non-zero: the process was SIGKILLed

			// Restart over the same state directory: recovery must requeue
			// the interrupted runs under their original IDs and finish them.
			d2 := startDaemon(t, bin, state, data, workers)
			got := d2.waitCompleted(t, ids, 3*time.Minute)
			d2.stop(t)

			for i, id := range ids {
				w, g := want[refIDs[i]], got[id]
				if w == nil || g == nil {
					t.Fatalf("missing result: want %v got %v", w, g)
				}
				if g.TableDigest != w.TableDigest {
					t.Errorf("run %s table digest = %s, want %s (not bit-identical after crash)", id, g.TableDigest, w.TableDigest)
				}
				if g.BaseScore != w.BaseScore || g.FinalScore != w.FinalScore {
					t.Errorf("run %s scores = (%v, %v), want (%v, %v)", id, g.BaseScore, g.FinalScore, w.BaseScore, w.FinalScore)
				}
				if !reflect.DeepEqual(g.KeptColumns, w.KeptColumns) {
					t.Errorf("run %s kept columns diverged:\n got %v\nwant %v", id, g.KeptColumns, w.KeptColumns)
				}
				if !reflect.DeepEqual(g.KeptTables, w.KeptTables) {
					t.Errorf("run %s kept tables diverged:\n got %v\nwant %v", id, g.KeptTables, w.KeptTables)
				}
			}
		})
	}
}
