package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/lease"
	"github.com/arda-ml/arda/internal/runqueue"
)

// chaosLeaseTTL is deliberately short so the takeover path, not the TTL,
// dominates the test's wall clock. Same-host adoption is pid-liveness based
// and therefore faster still.
const chaosLeaseTTL = 1500 * time.Millisecond

// runningOwners scans the shared state directory and returns, for every
// non-terminal run that is currently executing, the PID recorded in its
// live lease. This is the chaos driver's targeting data: it lets the test
// SIGKILL specifically a daemon that owns in-flight work, guaranteeing the
// takeover path is exercised rather than hoping a random kill lands well.
func runningOwners(t *testing.T, state string) map[string]int {
	t.Helper()
	owners := map[string]int{}
	entries, err := os.ReadDir(filepath.Join(state, "runs"))
	if err != nil {
		return owners
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(state, "runs", e.Name(), "run.json"))
		if err != nil {
			continue
		}
		var rec runqueue.Record
		if json.Unmarshal(raw, &rec) != nil || rec.State != runqueue.StateRunning {
			continue
		}
		info, err := lease.Read(filepath.Join(state, "runs", e.Name(), lease.FileName))
		if err != nil {
			continue
		}
		owners[rec.ID] = info.PID
	}
	return owners
}

// checkStatuszInvariant scrapes one daemon's /statusz and asserts the
// extended accounting equation: every run this process ever took custody of
// (admitted, requeued at startup, or adopted) is in exactly one state or was
// fenced away to a new owner.
func checkStatuszInvariant(t *testing.T, d *daemon) {
	t.Helper()
	resp, err := http.Get(d.base + "/statusz")
	if err != nil {
		t.Fatalf("statusz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("statusz: %v", err)
	}
	var adm, req, tko, cpl, fld, cnc, lst, qd, rn int64
	seen := 0
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case strings.HasPrefix(line, "admitted "):
			if _, err := fmt.Sscanf(line, "admitted %d requeued %d takeovers %d completed %d failed %d canceled %d lost %d",
				&adm, &req, &tko, &cpl, &fld, &cnc, &lst); err != nil {
				t.Fatalf("parsing statusz %q: %v", line, err)
			}
			seen++
		case strings.HasPrefix(line, "live: "):
			if _, err := fmt.Sscanf(line, "live: %d queued, %d running", &qd, &rn); err != nil {
				t.Fatalf("parsing statusz %q: %v", line, err)
			}
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("statusz missing accounting lines:\n%s", body)
	}
	if adm+req+tko != cpl+fld+cnc+qd+rn+lst {
		t.Errorf("accounting invariant violated on %s:\n%s", d.base, body)
	}
}

// TestMultiDaemonChaosExactlyOnce is the multi-process chaos gate: three
// ardad processes share one state directory while three tenants submit runs;
// a kill driver repeatedly SIGKILLs whichever daemon currently owns running
// work and restarts it. Every run must complete exactly once — the fenced
// completion log line appears at most once across every incarnation's stderr
// — with results bit-identical to an uninterrupted single daemon's, at both
// ends of the worker-count range.
func TestMultiDaemonChaosExactlyOnce(t *testing.T) {
	tmp := t.TempDir()
	bin := buildArdad(t, tmp)
	data, base, target := writeCorpus(t, tmp)

	tenants := []string{"acme", "globex", "initech"}
	var specs []runqueue.Spec
	for i, tn := range tenants {
		specs = append(specs,
			runqueue.Spec{Base: base, Target: target, Size: 640, Seed: int64(7 + 2*i), Tenant: tn},
			runqueue.Spec{Base: base, Target: target, Size: 640, Seed: int64(8 + 2*i), Tenant: tn, Coreset: "stratified"},
		)
	}

	// Reference: one uninterrupted daemon completes every spec.
	ref := startDaemon(t, bin, filepath.Join(tmp, "state-ref"), data, 0)
	var refIDs []string
	for _, s := range specs {
		refIDs = append(refIDs, ref.submit(t, s))
	}
	want := ref.waitCompleted(t, refIDs, 4*time.Minute)
	ref.stop(t)

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			state := filepath.Join(tmp, fmt.Sprintf("state-w%d", workers))
			flags := []string{"-concurrency", "1", "-lease-ttl", chaosLeaseTTL.String()}
			start := func() *daemon { return startDaemon(t, bin, state, data, workers, flags...) }

			daemons := make([]*daemon, 3)
			for i := range daemons {
				daemons[i] = start()
			}
			// Every incarnation's stderr matters for the exactly-once count,
			// including the ones we SIGKILL along the way.
			var deadLogs []string

			byPID := func(pid int) int {
				for i, d := range daemons {
					if d.cmd.Process != nil && d.cmd.Process.Pid == pid {
						return i
					}
				}
				return -1
			}

			var ids []string
			for i, s := range specs {
				ids = append(ids, daemons[i%len(daemons)].submit(t, s))
			}

			// Kill driver: three rounds of "find a daemon that owns running
			// work, SIGKILL it, let the survivors adopt, restart it". Stops
			// early if the fleet finishes everything first.
			allLogs := func() []string {
				out := append([]string(nil), deadLogs...)
				for _, d := range daemons {
					out = append(out, d.log())
				}
				return out
			}
			completedOnDisk := func() int {
				n := 0
				for _, id := range ids {
					raw, err := os.ReadFile(filepath.Join(state, "runs", id, "run.json"))
					if err != nil {
						continue
					}
					var rec runqueue.Record
					if json.Unmarshal(raw, &rec) == nil && rec.State == runqueue.StateCompleted {
						n++
					}
				}
				return n
			}
			kills := 0
			killStop := time.Now().Add(2 * time.Minute)
			for kills < 3 && completedOnDisk() < len(ids) {
				if time.Now().After(killStop) {
					t.Fatalf("kill driver found no running run to target after %d kills\nlogs:\n%s",
						kills, strings.Join(allLogs(), "\n---\n"))
				}
				victim := -1
				for _, pid := range runningOwners(t, state) {
					if i := byPID(pid); i >= 0 {
						victim = i
						break
					}
				}
				if victim < 0 {
					time.Sleep(25 * time.Millisecond)
					continue
				}
				d := daemons[victim]
				if err := d.cmd.Process.Kill(); err != nil {
					t.Fatalf("SIGKILL: %v", err)
				}
				_ = d.cmd.Wait() // expected non-zero: SIGKILLed
				deadLogs = append(deadLogs, d.log())
				kills++
				// Give the survivors a reap interval (TTL/2) to adopt the
				// orphans before the next incarnation joins the fleet.
				time.Sleep(chaosLeaseTTL)
				daemons[victim] = start()
			}
			if kills == 0 {
				t.Fatalf("fleet finished before any kill landed; nothing was proven")
			}

			got := daemons[0].waitCompleted(t, ids, 5*time.Minute)
			for _, d := range daemons {
				checkStatuszInvariant(t, d)
			}
			for _, d := range daemons {
				d.stop(t)
			}

			logs := allLogs()
			joined := strings.Join(logs, "\n---\n")

			// Exactly-once: the "completed <id>:" line is logged only after
			// the fenced terminal persist succeeds, so a duplicate across any
			// two incarnations would mean two owners both finished one run.
			for _, id := range ids {
				n := 0
				for _, lg := range logs {
					n += strings.Count(lg, "completed "+id+":")
				}
				if n > 1 {
					t.Errorf("run %s completed %d times across the fleet (want exactly once)\nlogs:\n%s", id, n, joined)
				}
			}
			// The driver only ever killed owners of running work, so at
			// least one adoption must have happened.
			if !strings.Contains(joined, "takeover r") {
				t.Errorf("no takeover logged despite %d targeted kills\nlogs:\n%s", kills, joined)
			}

			// Bit-identity with the uninterrupted reference, per spec.
			for i, id := range ids {
				w, g := want[refIDs[i]], got[id]
				if w == nil || g == nil {
					t.Fatalf("missing result for spec %d: want %v got %v", i, w, g)
				}
				if g.TableDigest != w.TableDigest {
					t.Errorf("run %s table digest = %s, want %s (not bit-identical under chaos)", id, g.TableDigest, w.TableDigest)
				}
				if g.BaseScore != w.BaseScore || g.FinalScore != w.FinalScore {
					t.Errorf("run %s scores = (%v, %v), want (%v, %v)", id, g.BaseScore, g.FinalScore, w.BaseScore, w.FinalScore)
				}
			}

			// Every tenant's lane saw work: the records carry their lanes.
			seen := map[string]int{}
			for _, id := range ids {
				raw, err := os.ReadFile(filepath.Join(state, "runs", id, "run.json"))
				if err != nil {
					t.Fatalf("reading final record %s: %v", id, err)
				}
				var rec runqueue.Record
				if err := json.Unmarshal(raw, &rec); err != nil {
					t.Fatalf("decoding final record %s: %v", id, err)
				}
				seen[rec.Tenant]++
			}
			var lanes []string
			for tn := range seen {
				lanes = append(lanes, tn)
			}
			sort.Strings(lanes)
			if fmt.Sprint(lanes) != fmt.Sprint(tenants) {
				t.Errorf("tenant lanes on disk = %v, want %v", lanes, tenants)
			}
		})
	}
}
