package arda_test

import (
	"fmt"

	"github.com/arda-ml/arda"
	"github.com/arda-ml/arda/internal/dataframe"
)

// ExampleAugment shows the core flow on a miniature corpus: the base table
// predicts a score per city, and the useful feature (population) lives in a
// separate table reachable by a categorical key.
func ExampleAugment() {
	cities := []string{}
	scores := []float64{}
	pops := map[string]float64{
		"alfa": 1, "bravo": 2, "charlie": 3, "delta": 4, "echo": 5,
		"foxtrot": 6, "golf": 7, "hotel": 8, "india": 9, "juliet": 10,
	}
	names := []string{"alfa", "bravo", "charlie", "delta", "echo",
		"foxtrot", "golf", "hotel", "india", "juliet"}
	// 20 rows per city; score = 10·population + city index noise pattern.
	for rep := 0; rep < 20; rep++ {
		for i, name := range names {
			cities = append(cities, name)
			scores = append(scores, 10*pops[name]+float64(i%3))
		}
	}
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("city", cities),
		dataframe.NewNumeric("score", scores),
	)
	popVals := make([]float64, len(names))
	for i, n := range names {
		popVals[i] = pops[n]
	}
	population := dataframe.MustNewTable("population",
		dataframe.NewCategorical("city", names),
		dataframe.NewNumeric("pop", popVals),
	)

	cands := arda.Discover(base, []*arda.Table{population}, "score")
	res, err := arda.Augment(base, cands, arda.Options{Target: "score", Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("rows preserved:", res.Table.NumRows() == base.NumRows())
	fmt.Println("kept:", res.KeptColumns)
	fmt.Println("improved:", res.FinalScore > res.BaseScore)
	// Output:
	// rows preserved: true
	// kept: [t0.pop]
	// improved: true
}

// ExampleDiscover lists candidate joins the discovery substrate proposes.
func ExampleDiscover() {
	base := dataframe.MustNewTable("orders",
		dataframe.NewCategorical("sku", []string{"a1", "b2", "c3"}),
		dataframe.NewNumeric("total", []float64{10, 20, 30}),
	)
	catalog := dataframe.MustNewTable("catalog",
		dataframe.NewCategorical("sku", []string{"a1", "b2", "c3", "d4"}),
		dataframe.NewNumeric("weight", []float64{1, 2, 3, 4}),
	)
	cands := arda.Discover(base, []*arda.Table{catalog}, "total")
	for _, c := range cands {
		fmt.Printf("%s via %s->%s\n", c.Table.Name(), c.Keys[0].BaseColumn, c.Keys[0].ForeignColumn)
	}
	// Output:
	// catalog via sku->sku
}
