package join

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/arda-ml/arda/internal/dataframe"
)

// keyString renders row i's value in column c as a canonical string for
// exact-match hashing; the second return is false when the value is missing.
func keyString(c dataframe.Column, i int) (string, bool) {
	if c.IsMissing(i) {
		return "", false
	}
	switch col := c.(type) {
	case *dataframe.NumericColumn:
		return strconv.FormatFloat(col.Values[i], 'g', -1, 64), true
	case *dataframe.CategoricalColumn:
		return col.Dict[col.Codes[i]], true
	case *dataframe.TimeColumn:
		return strconv.FormatInt(col.Unix[i], 10), true
	default:
		return c.StringAt(i), true
	}
}

// compositeKey joins per-column key strings with an unprintable separator;
// ok is false when any component is missing.
func compositeKey(cols []dataframe.Column, i int) (string, bool) {
	var b strings.Builder
	for n, c := range cols {
		s, ok := keyString(c, i)
		if !ok {
			return "", false
		}
		if n > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(s)
	}
	return b.String(), true
}

// Granularity detects the coarsest time unit (in seconds) that all present
// timestamps align to: day, hour, minute or second.
func Granularity(unix []int64) int64 {
	units := []int64{86400, 3600, 60}
	for _, u := range units {
		ok := true
		any := false
		for _, t := range unix {
			if t == dataframe.MissingTime {
				continue
			}
			any = true
			if t%u != 0 {
				ok = false
				break
			}
		}
		if ok && any {
			return u
		}
	}
	return 1
}

// aggregateGroups collapses each group of foreign-table rows into a single
// row: numeric columns average their non-missing values, categorical columns
// take the modal category, and time columns take the mean timestamp. groups
// maps group ordinal -> member row indices. The returned table has one row
// per group, in group-ordinal order. A malformed input table (duplicate
// column names) surfaces as an error rather than aborting the process, so a
// single bad candidate stays quarantinable.
func aggregateGroups(t *dataframe.Table, groups [][]int) (*dataframe.Table, error) {
	out := dataframe.MustNewTable(t.Name())
	for _, c := range t.Columns() {
		switch col := c.(type) {
		case *dataframe.NumericColumn:
			vals := make([]float64, len(groups))
			for g, members := range groups {
				sum, cnt := 0.0, 0
				for _, i := range members {
					if v := col.Values[i]; !math.IsNaN(v) {
						sum += v
						cnt++
					}
				}
				if cnt == 0 {
					vals[g] = math.NaN()
				} else {
					vals[g] = sum / float64(cnt)
				}
			}
			if err := out.AddColumn(dataframe.NewNumeric(c.Name(), vals)); err != nil {
				return nil, fmt.Errorf("join: aggregating %q: %w", c.Name(), err)
			}
		case *dataframe.CategoricalColumn:
			codes := make([]int, len(groups))
			counts := make(map[int]int)
			for g, members := range groups {
				for k := range counts {
					delete(counts, k)
				}
				best, bestCode := 0, -1
				for _, i := range members {
					code := col.Codes[i]
					if code < 0 {
						continue
					}
					counts[code]++
					if counts[code] > best {
						best, bestCode = counts[code], code
					}
				}
				codes[g] = bestCode
			}
			if err := out.AddColumn(dataframe.NewCategoricalCodes(c.Name(), codes, col.Dict)); err != nil {
				return nil, fmt.Errorf("join: aggregating %q: %w", c.Name(), err)
			}
		case *dataframe.TimeColumn:
			unix := make([]int64, len(groups))
			for g, members := range groups {
				var sum int64
				cnt := 0
				for _, i := range members {
					if v := col.Unix[i]; v != dataframe.MissingTime {
						sum += v
						cnt++
					}
				}
				if cnt == 0 {
					unix[g] = dataframe.MissingTime
				} else {
					unix[g] = sum / int64(cnt)
				}
			}
			if err := out.AddColumn(dataframe.NewTime(c.Name(), unix)); err != nil {
				return nil, fmt.Errorf("join: aggregating %q: %w", c.Name(), err)
			}
		}
	}
	return out, nil
}

// AggregateByKey groups the table by the composite key over keyCols and
// collapses each group to one row, reducing one-to-many joins to one-to-one
// (§4 "Join Cardinality"). Rows with a missing key component are dropped.
// Grouping runs on the hashed-key plane, with the string composite key as
// the collision/unsupported-type fallback.
func AggregateByKey(t *dataframe.Table, keyCols []string) (*dataframe.Table, error) {
	cols := make([]dataframe.Column, len(keyCols))
	for i, name := range keyCols {
		c := t.Column(name)
		if c == nil {
			return nil, errMissingColumn(t, name)
		}
		cols[i] = c
	}
	return aggregateGroups(t, groupRowsByKey(cols, t.NumRows()))
}

// groupRowsByKey groups rows by composite key in first-appearance order,
// preferring the hashed plane and falling back to string keys.
func groupRowsByKey(cols []dataframe.Column, n int) [][]int {
	if hashJoinKeys {
		if kcs := newGroupHasher(cols); kcs != nil {
			if groups, ok := hashGroups(kcs, n); ok {
				return groups
			}
		}
	}
	index := make(map[string]int)
	var groups [][]int
	for i := 0; i < n; i++ {
		key, ok := compositeKey(cols, i)
		if !ok {
			continue
		}
		g, seen := index[key]
		if !seen {
			g = len(groups)
			index[key] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// ResampleTime buckets the named time (or numeric) column of t to the given
// granularity (seconds) and aggregates rows sharing a bucket along with the
// extra key columns, implementing the paper's time-resampling: all foreign
// rows falling in the same base-granularity span collapse into one (§4
// "Time-Resampling"). The key column in the result holds the bucket start.
func ResampleTime(t *dataframe.Table, timeCol string, gran int64, extraKeys []string) (*dataframe.Table, error) {
	c := t.Column(timeCol)
	if c == nil {
		return nil, errMissingColumn(t, timeCol)
	}
	if gran <= 1 {
		if len(extraKeys) == 0 {
			return AggregateByKey(t, []string{timeCol})
		}
		return AggregateByKey(t, append([]string{timeCol}, extraKeys...))
	}
	// Build a bucketed copy of the key column, aggregate on it.
	work := t.Clone()
	switch col := work.Column(timeCol).(type) {
	case *dataframe.TimeColumn:
		for i, v := range col.Unix {
			if v != dataframe.MissingTime {
				col.Unix[i] = floorDiv(v, gran) * gran
			}
		}
	case *dataframe.NumericColumn:
		for i, v := range col.Values {
			if !math.IsNaN(v) {
				col.Values[i] = math.Floor(v/float64(gran)) * float64(gran)
			}
		}
	default:
		return nil, errMissingColumn(t, timeCol)
	}
	keys := append([]string{timeCol}, extraKeys...)
	return AggregateByKey(work, keys)
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// errMissingColumn builds the standard missing-column error.
func errMissingColumn(t *dataframe.Table, name string) error {
	return &MissingColumnError{Table: t.Name(), Column: name}
}

// MissingColumnError reports a join referencing a column the table lacks.
type MissingColumnError struct {
	Table, Column string
}

// Error implements the error interface.
func (e *MissingColumnError) Error() string {
	return "join: table " + strconv.Quote(e.Table) + " has no column " + strconv.Quote(e.Column)
}
