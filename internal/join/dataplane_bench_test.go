package join

import (
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
)

// Dataplane benchmarks compare the allocation-light data plane against the
// paths it replaced. Both planes stay in-tree (the string plane is the
// collision fallback), so every pair here is an apples-to-apples measurement
// of the same operation; `make bench-dataplane` collects them into
// BENCH_dataplane.json.

func BenchmarkDataplaneCompositeKey(b *testing.B) {
	const n = 5000
	base, foreign := largeKeyTables(n)
	baseCols := []dataframe.Column{base.Column("k"), base.Column("c")}
	foreignCols := []dataframe.Column{foreign.Column("k"), foreign.Column("c")}
	b.Run("hashed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, ok := hashHardMatch(baseCols, foreignCols, n, n); !ok {
				b.Fatal("unexpected fallback")
			}
		}
	})
	b.Run("string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stringHardMatch(baseCols, foreignCols, n, n)
		}
	})
}

func BenchmarkDataplaneHardJoin(b *testing.B) {
	base, foreign := benchTables(5000, 20000, 2000, 1)
	spec := &Spec{Keys: []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Hard}}}
	for _, plane := range []struct {
		name   string
		hashed bool
	}{{"hashed", true}, {"string", false}} {
		b.Run(plane.name, func(b *testing.B) {
			prev := SetHashJoinKeys(plane.hashed)
			defer SetHashJoinKeys(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Execute(base, foreign, spec, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDataplaneAggregate(b *testing.B) {
	_, foreign := largeKeyTables(20000)
	for _, plane := range []struct {
		name   string
		hashed bool
	}{{"hashed", true}, {"string", false}} {
		b.Run(plane.name, func(b *testing.B) {
			prev := SetHashJoinKeys(plane.hashed)
			defer SetHashJoinKeys(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AggregateByKey(foreign, []string{"k", "c"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDataplanePrep(b *testing.B) {
	base, foreign := benchTables(2000, 20000, 2000, 1)
	spec := &Spec{Keys: []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Hard}}}
	b.Run("cached", func(b *testing.B) {
		cache := NewPrepCache()
		if _, err := ExecuteCached(base, foreign, spec, rand.New(rand.NewSource(1)), cache); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ExecuteCached(base, foreign, spec, rand.New(rand.NewSource(1)), cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Execute(base, foreign, spec, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
