package join

import (
	"math"
	"sort"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/parallel"
)

// KNNImpute fills missing values using the k most similar rows (the
// "sophisticated imputation" direction of the paper's §9): similarity is
// range-normalized distance over the numeric/time columns both rows have
// present; numeric and time gaps take the neighbour mean, categorical gaps
// the neighbour mode. Cells with no usable neighbour fall back to the
// column median / modal strategy of Impute. It returns the number of cells
// filled. Cost is O(n²·d); intended for coreset-sized tables.
func KNNImpute(t *dataframe.Table, k int) int {
	if k <= 0 {
		k = 5
	}
	n := t.NumRows()
	if n == 0 {
		return 0
	}
	// Collect numeric accessors and ranges for the distance metric.
	type numCol struct {
		get   func(i int) (float64, bool)
		scale float64
	}
	var dims []numCol
	for _, c := range t.Columns() {
		key, err := dataframe.NumericKey(c)
		if err != nil {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			if v, ok := key(i); ok {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		scale := hi - lo
		if !(scale > 0) {
			scale = 1
		}
		dims = append(dims, numCol{get: key, scale: scale})
	}
	distance := func(a, b int) float64 {
		d, used := 0.0, 0
		for _, dim := range dims {
			va, oka := dim.get(a)
			vb, okb := dim.get(b)
			if !oka || !okb {
				continue
			}
			d += math.Abs(va-vb) / dim.scale
			used++
		}
		if used == 0 {
			return math.Inf(1)
		}
		return d / float64(used)
	}

	// For each row with any missing cell, find its k nearest complete-enough
	// neighbours once.
	neighbours := func(i int) []int {
		type cand struct {
			j int
			d float64
		}
		cands := make([]cand, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if d := distance(i, j); !math.IsInf(d, 1) {
				cands = append(cands, cand{j, d})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
		kk := k
		if kk > len(cands) {
			kk = len(cands)
		}
		out := make([]int, kk)
		for p := 0; p < kk; p++ {
			out[p] = cands[p].j
		}
		return out
	}

	// Every row with a missing cell needs a neighbour list. The searches are
	// independent and read only the table's pre-fill values, so they fan out
	// across the worker pool before any cell is written — which also means
	// every gap is filled from original data rather than from earlier fills.
	var incomplete []int
	for i := 0; i < n; i++ {
		for _, c := range t.Columns() {
			if c.IsMissing(i) {
				incomplete = append(incomplete, i)
				break
			}
		}
	}
	lists := make([][]int, len(incomplete))
	parallel.ForEach(0, len(incomplete), func(p int) { lists[p] = neighbours(incomplete[p]) })
	nnOf := make(map[int][]int, len(incomplete))
	for p, i := range incomplete {
		nnOf[i] = lists[p]
	}
	nn := func(i int) []int { return nnOf[i] }
	filled := 0
	for _, c := range t.Columns() {
		switch col := c.(type) {
		case *dataframe.NumericColumn:
			for i, v := range col.Values {
				if !math.IsNaN(v) {
					continue
				}
				sum, cnt := 0.0, 0
				for _, j := range nn(i) {
					if !col.IsMissing(j) {
						sum += col.Values[j]
						cnt++
					}
				}
				if cnt > 0 {
					col.Values[i] = sum / float64(cnt)
					filled++
				}
			}
		case *dataframe.TimeColumn:
			for i, v := range col.Unix {
				if v != dataframe.MissingTime {
					continue
				}
				var sum int64
				cnt := 0
				for _, j := range nn(i) {
					if !col.IsMissing(j) {
						sum += col.Unix[j]
						cnt++
					}
				}
				if cnt > 0 {
					col.Unix[i] = sum / int64(cnt)
					filled++
				}
			}
		case *dataframe.CategoricalColumn:
			for i, code := range col.Codes {
				if code >= 0 {
					continue
				}
				counts := map[int]int{}
				best, bestCode := 0, -1
				for _, j := range nn(i) {
					cj := col.Codes[j]
					if cj < 0 {
						continue
					}
					counts[cj]++
					if counts[cj] > best {
						best, bestCode = counts[cj], cj
					}
				}
				if bestCode >= 0 {
					col.Codes[i] = bestCode
					filled++
				}
			}
		}
	}
	return filled
}
