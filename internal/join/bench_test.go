package join

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
)

// benchTables builds a base of n rows and a foreign of m rows sharing a
// categorical key space.
func benchTables(n, m, keys int, seed int64) (*dataframe.Table, *dataframe.Table) {
	rng := rand.New(rand.NewSource(seed))
	baseKeys := make([]string, n)
	for i := range baseKeys {
		baseKeys[i] = fmt.Sprintf("k%05d", rng.Intn(keys))
	}
	foreignKeys := make([]string, m)
	v1 := make([]float64, m)
	v2 := make([]float64, m)
	for i := range foreignKeys {
		foreignKeys[i] = fmt.Sprintf("k%05d", rng.Intn(keys))
		v1[i] = rng.NormFloat64()
		v2[i] = rng.NormFloat64()
	}
	base := dataframe.MustNewTable("base", dataframe.NewCategorical("k", baseKeys))
	foreign := dataframe.MustNewTable("f",
		dataframe.NewCategorical("k", foreignKeys),
		dataframe.NewNumeric("v1", v1),
		dataframe.NewNumeric("v2", v2),
	)
	return base, foreign
}

func BenchmarkHardJoin(b *testing.B) {
	base, foreign := benchTables(5000, 20000, 2000, 1)
	spec := &Spec{Keys: []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Hard}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(base, foreign, spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftJoinTwoWay(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n, m := 5000, 20000
	bk := make([]float64, n)
	fk := make([]float64, m)
	fv := make([]float64, m)
	for i := range bk {
		bk[i] = rng.Float64() * 1e6
	}
	for i := range fk {
		fk[i] = rng.Float64() * 1e6
		fv[i] = rng.NormFloat64()
	}
	base := dataframe.MustNewTable("base", dataframe.NewNumeric("t", bk))
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("t", fk),
		dataframe.NewNumeric("v", fv),
	)
	spec := &Spec{
		Keys:   []KeyPair{{BaseColumn: "t", ForeignColumn: "t", Kind: Soft}},
		Method: TwoWayNearest,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(base, foreign, spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimeResample(b *testing.B) {
	// 90 days of minute-level data resampled to days.
	n := 90 * 24 * 60
	unix := make([]int64, n)
	vals := make([]float64, n)
	for i := range unix {
		unix[i] = int64(i) * 60
		vals[i] = float64(i % 1440)
	}
	tab := dataframe.MustNewTable("w",
		dataframe.NewTime("ts", unix),
		dataframe.NewNumeric("v", vals),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ResampleTime(tab, "ts", 86400, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImpute(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		if rng.Intn(10) == 0 {
			vals[i] = nan()
		} else {
			vals[i] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := make([]float64, n)
		copy(work, vals)
		tab := dataframe.MustNewTable("t", dataframe.NewNumeric("v", work))
		b.StartTimer()
		Impute(tab, rng)
	}
}

func BenchmarkGeoJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n, m := 2000, 10000
	blon := make([]float64, n)
	blat := make([]float64, n)
	flon := make([]float64, m)
	flat := make([]float64, m)
	fv := make([]float64, m)
	for i := range blon {
		blon[i] = rng.Float64() * 100
		blat[i] = rng.Float64() * 100
	}
	for i := range flon {
		flon[i] = rng.Float64() * 100
		flat[i] = rng.Float64() * 100
		fv[i] = rng.NormFloat64()
	}
	base := dataframe.MustNewTable("b",
		dataframe.NewNumeric("lon", blon), dataframe.NewNumeric("lat", blat))
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("lon", flon), dataframe.NewNumeric("lat", flat),
		dataframe.NewNumeric("v", fv))
	spec := &Spec{
		Keys: []KeyPair{
			{BaseColumn: "lon", ForeignColumn: "lon", Kind: Soft},
			{BaseColumn: "lat", ForeignColumn: "lat", Kind: Soft},
		},
		Method: GeoNearest,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(base, foreign, spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// nan avoids importing math just for the benchmark.
func nan() float64 {
	var z float64
	return z / z
}
