package join

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arda-ml/arda/internal/dataframe"
)

func geoSpec(tolerance float64) *Spec {
	return &Spec{
		Keys: []KeyPair{
			{BaseColumn: "lon", ForeignColumn: "lon", Kind: Soft},
			{BaseColumn: "lat", ForeignColumn: "lat", Kind: Soft},
		},
		Method:    GeoNearest,
		Tolerance: tolerance,
	}
}

func TestGeoJoinNearestStation(t *testing.T) {
	base := dataframe.MustNewTable("trips",
		dataframe.NewNumeric("lon", []float64{0.1, 5.2, 9.9}),
		dataframe.NewNumeric("lat", []float64{0.2, 4.8, 9.7}),
	)
	stations := dataframe.MustNewTable("stations",
		dataframe.NewNumeric("lon", []float64{0, 5, 10}),
		dataframe.NewNumeric("lat", []float64{0, 5, 10}),
		dataframe.NewNumeric("capacity", []float64{100, 200, 300}),
	)
	res, err := Execute(base, stations, geoSpec(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Table.Column("stations.capacity").(*dataframe.NumericColumn)
	want := []float64{100, 200, 300}
	for i, w := range want {
		if got.Values[i] != w {
			t.Fatalf("row %d matched capacity %v, want %v", i, got.Values[i], w)
		}
	}
	if res.Matched != 3 {
		t.Fatalf("matched = %d", res.Matched)
	}
}

func TestGeoJoinTolerance(t *testing.T) {
	base := dataframe.MustNewTable("trips",
		dataframe.NewNumeric("lon", []float64{0, 50}),
		dataframe.NewNumeric("lat", []float64{0, 50}),
	)
	stations := dataframe.MustNewTable("stations",
		dataframe.NewNumeric("lon", []float64{1}),
		dataframe.NewNumeric("lat", []float64{1}),
		dataframe.NewNumeric("v", []float64{7}),
	)
	res, err := Execute(base, stations, geoSpec(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Table.Column("stations.v").(*dataframe.NumericColumn)
	if v.IsMissing(0) {
		t.Fatal("in-tolerance point should match")
	}
	if !v.IsMissing(1) {
		t.Fatal("out-of-tolerance point should be NULL")
	}
}

func TestGeoJoinWithHardKeyGroup(t *testing.T) {
	// Same coordinates, but matching must respect the city group.
	base := dataframe.MustNewTable("trips",
		dataframe.NewCategorical("city", []string{"a", "b"}),
		dataframe.NewNumeric("lon", []float64{0, 0}),
		dataframe.NewNumeric("lat", []float64{0, 0}),
	)
	stations := dataframe.MustNewTable("stations",
		dataframe.NewCategorical("city", []string{"a", "b"}),
		dataframe.NewNumeric("lon", []float64{1, 2}),
		dataframe.NewNumeric("lat", []float64{0, 0}),
		dataframe.NewNumeric("v", []float64{10, 20}),
	)
	spec := geoSpec(0)
	spec.Keys = append([]KeyPair{{BaseColumn: "city", ForeignColumn: "city", Kind: Hard}}, spec.Keys...)
	res, err := Execute(base, stations, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Table.Column("stations.v").(*dataframe.NumericColumn)
	if v.Values[0] != 10 || v.Values[1] != 20 {
		t.Fatalf("grouped geo join = %v, want [10 20]", v.Values)
	}
}

func TestGeoValidation(t *testing.T) {
	base := dataframe.MustNewTable("b",
		dataframe.NewNumeric("lon", []float64{0}),
		dataframe.NewCategorical("lat", []string{"x"}),
	)
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("lon", []float64{0}),
		dataframe.NewCategorical("lat", []string{"x"}),
		dataframe.NewNumeric("v", []float64{1}),
	)
	spec := geoSpec(0)
	if err := spec.Validate(base, foreign); err == nil {
		t.Fatal("categorical geo key should fail validation")
	}
	one := &Spec{
		Keys:   []KeyPair{{BaseColumn: "lon", ForeignColumn: "lon", Kind: Soft}},
		Method: GeoNearest,
	}
	if err := one.Validate(base, foreign); err == nil {
		t.Fatal("GeoNearest with one soft key should fail validation")
	}
}

// Property: geo nearest agrees with brute force on random point sets.
func TestGeoGridMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		pts := make([]geoPoint, n)
		for i := range pts {
			pts[i] = geoPoint{x: rng.NormFloat64() * 10, y: rng.NormFloat64() * 10, row: i}
		}
		grid := newGeoGrid(pts, 0)
		for q := 0; q < 10; q++ {
			x, y := rng.NormFloat64()*12, rng.NormFloat64()*12
			row, dist, ok := grid.nearest(x, y)
			if !ok {
				return false
			}
			bestDist := math.Inf(1)
			for _, p := range pts {
				if d := math.Hypot(p.x-x, p.y-y); d < bestDist {
					bestDist = d
				}
			}
			if math.Abs(dist-bestDist) > 1e-9 {
				return false
			}
			_ = row
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
