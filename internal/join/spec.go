// Package join implements ARDA's augmentation joins (§4 of the paper). Only
// LEFT joins are supported — the join must preserve every base-table row and
// add no rows — so one-to-many and many-to-many matches are reduced to
// *-to-one by pre-aggregating the foreign table on its join key. Hard keys
// match exactly; soft keys (time, location, age, …) match by proximity via
// nearest-neighbour or two-way nearest-neighbour interpolation, optionally
// after resampling a finer-grained time key to the base table's granularity.
// NULLs produced by unmatched rows are imputed (median for numeric, uniform
// random draw for categorical).
package join

import (
	"fmt"
	"math"

	"github.com/arda-ml/arda/internal/dataframe"
)

// KeyKind distinguishes exact-match keys from proximity-match keys.
type KeyKind int

const (
	// Hard keys join on exact value equality.
	Hard KeyKind = iota
	// Soft keys join on numeric/time proximity.
	Soft
)

// String returns the lowercase kind name.
func (k KeyKind) String() string {
	if k == Soft {
		return "soft"
	}
	return "hard"
}

// SoftMethod selects how a soft key is matched.
type SoftMethod int

const (
	// TwoWayNearest joins with the λ-interpolation of the closest foreign
	// rows below and above the base key value. It is the default (and in the
	// paper's Figure 5 usually the best) soft-join method.
	TwoWayNearest SoftMethod = iota
	// NearestNeighbor joins each base row with the single closest foreign
	// row (by soft-key distance), or NULLs if Tolerance is exceeded.
	NearestNeighbor
	// HardExact forces exact matching even for a soft-typed key (used by the
	// soft-join ablation in the paper's Figure 5).
	HardExact
)

// String returns the lowercase method name.
func (m SoftMethod) String() string {
	switch m {
	case NearestNeighbor:
		return "nearest"
	case TwoWayNearest:
		return "2-way nearest"
	case HardExact:
		return "hard"
	case GeoNearest:
		return "geo nearest"
	default:
		return fmt.Sprintf("SoftMethod(%d)", int(m))
	}
}

// KeyPair maps a base-table column onto a foreign-table column.
type KeyPair struct {
	BaseColumn    string
	ForeignColumn string
	Kind          KeyKind
}

// Spec describes one candidate join: which key columns align, how soft keys
// are matched, and how the foreign table is preprocessed. A composite key
// may mix hard and soft pairs, but at most one pair may be soft.
type Spec struct {
	// Keys is the (possibly composite) join key mapping.
	Keys []KeyPair
	// Method selects the soft-key matching strategy; ignored when every key
	// is hard.
	Method SoftMethod
	// Tolerance bounds the soft-key distance for NearestNeighbor matches;
	// 0 means unbounded. Expressed in the key's units (seconds for time).
	Tolerance float64
	// TimeResample aggregates a finer-grained foreign time key up to the
	// base table's granularity before joining.
	TimeResample bool
	// Prefix renames foreign columns to Prefix+name in the output to avoid
	// collisions; when empty, "<table>." is used.
	Prefix string
}

// Validate checks structural constraints of the spec against both tables.
func (s *Spec) Validate(base, foreign *dataframe.Table) error {
	if len(s.Keys) == 0 {
		return fmt.Errorf("join: spec for %q has no keys", foreign.Name())
	}
	if s.Method == GeoNearest {
		return geoValidate(s, base, foreign)
	}
	soft := 0
	for _, kp := range s.Keys {
		if !base.HasColumn(kp.BaseColumn) {
			return fmt.Errorf("join: base table %q has no column %q", base.Name(), kp.BaseColumn)
		}
		if !foreign.HasColumn(kp.ForeignColumn) {
			return fmt.Errorf("join: foreign table %q has no column %q", foreign.Name(), kp.ForeignColumn)
		}
		if kp.Kind == Soft {
			soft++
			bc := base.Column(kp.BaseColumn)
			fc := foreign.Column(kp.ForeignColumn)
			if bc.Kind() == dataframe.Categorical || fc.Kind() == dataframe.Categorical {
				return fmt.Errorf("join: soft key %q/%q must be numeric or time", kp.BaseColumn, kp.ForeignColumn)
			}
		}
	}
	if soft > 1 {
		return fmt.Errorf("join: spec for %q has %d soft keys; at most one is supported", foreign.Name(), soft)
	}
	for _, kp := range s.Keys {
		if err := checkKeyFinite(base, kp.BaseColumn); err != nil {
			return err
		}
		if err := checkKeyFinite(foreign, kp.ForeignColumn); err != nil {
			return err
		}
	}
	return nil
}

// checkKeyFinite rejects ±Inf in numeric key columns: Inf survives
// ParseFloat, compares equal to itself, and would silently hash into join
// keys and sort to the ends of soft-key scans, so it is almost always a
// data-corruption artifact rather than a legitimate key. NaN needs no guard
// here — numeric columns already treat NaN as missing, and rows with missing
// key components are dropped from the join.
func checkKeyFinite(t *dataframe.Table, name string) error {
	col, ok := t.Column(name).(*dataframe.NumericColumn)
	if !ok {
		return nil
	}
	for i, v := range col.Values {
		if math.IsInf(v, 0) {
			return &KeyValueError{Table: t.Name(), Column: name, Row: i, Value: v}
		}
	}
	return nil
}

// KeyValueError reports a join-key cell whose value cannot participate in
// key matching (currently: ±Inf in a numeric key column).
type KeyValueError struct {
	Table, Column string
	Row           int
	Value         float64
}

// Error implements the error interface.
func (e *KeyValueError) Error() string {
	return fmt.Sprintf("join: table %q key column %q has non-finite value %v at row %d", e.Table, e.Column, e.Value, e.Row)
}

// softKey returns the soft key pair and whether one exists.
func (s *Spec) softKey() (KeyPair, bool) {
	for _, kp := range s.Keys {
		if kp.Kind == Soft {
			return kp, true
		}
	}
	return KeyPair{}, false
}

// hardKeys returns the hard key pairs.
func (s *Spec) hardKeys() []KeyPair {
	out := make([]KeyPair, 0, len(s.Keys))
	for _, kp := range s.Keys {
		if kp.Kind == Hard {
			out = append(out, kp)
		}
	}
	return out
}
