package join

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/arda-ml/arda/internal/dataframe"
)

// Result describes an executed augmentation join.
type Result struct {
	// Table is the base table with the foreign table's feature columns
	// appended (LEFT JOIN semantics: exactly the base rows, in order).
	Table *dataframe.Table
	// Matched counts base rows that found a foreign match.
	Matched int
	// AddedColumns lists the appended column names.
	AddedColumns []string
}

// Execute performs the LEFT join described by spec, appending the foreign
// table's non-key columns (renamed with the spec prefix) to the base table.
// Foreign tables are pre-aggregated on the join key so the result has exactly
// the base table's rows. Unmatched rows hold missing values (impute after).
// rng drives categorical tie-breaking in two-way-nearest interpolation; it
// may be nil when the method is not TwoWayNearest.
func Execute(base, foreign *dataframe.Table, spec *Spec, rng *rand.Rand) (*Result, error) {
	return ExecuteCached(base, foreign, spec, rng, nil)
}

// ExecuteCached is Execute with a preparation cache: when the same foreign
// table was already aggregated/resampled under the same key set and
// granularity, the prepared table is reused instead of recomputed. A nil
// cache behaves exactly like Execute.
func ExecuteCached(base, foreign *dataframe.Table, spec *Spec, rng *rand.Rand, cache *PrepCache) (*Result, error) {
	if err := spec.Validate(base, foreign); err != nil {
		return nil, err
	}
	prefix := spec.Prefix
	if prefix == "" {
		prefix = foreign.Name() + "."
	}
	soft, hasSoft := spec.softKey()
	hard := spec.hardKeys()

	foreignKeyCols := make([]string, 0, len(spec.Keys))
	for _, kp := range spec.Keys {
		foreignKeyCols = append(foreignKeyCols, kp.ForeignColumn)
	}

	// Pre-aggregate the foreign table so every key is unique (reduces
	// one-to-many and many-to-many joins to the *-to-one case). The
	// preparation depends only on (foreign, keys, granularity) — never on the
	// base rows — so it is memoizable across batches and the materialize pass.
	var prepared *dataframe.Table
	var err error
	if hasSoft && spec.TimeResample && spec.Method != GeoNearest {
		gran := baseGranularity(base.Column(soft.BaseColumn))
		hardCols := make([]string, 0, len(hard))
		for _, kp := range hard {
			hardCols = append(hardCols, kp.ForeignColumn)
		}
		ck := prepSpec("resample", append([]string{soft.ForeignColumn}, hardCols...), gran)
		if prepared = cache.get(foreign, ck); prepared == nil {
			prepared, err = ResampleTime(foreign, soft.ForeignColumn, gran, hardCols)
			if err == nil {
				cache.put(foreign, ck, prepared)
			}
		}
	} else {
		ck := prepSpec("aggregate", foreignKeyCols, 0)
		if prepared = cache.get(foreign, ck); prepared == nil {
			prepared, err = AggregateByKey(foreign, foreignKeyCols)
			if err == nil {
				cache.put(foreign, ck, prepared)
			}
		}
	}
	if err != nil {
		return nil, err
	}

	switch {
	case spec.Method == GeoNearest:
		return geoJoin(base, prepared, spec, prefix)
	case !hasSoft || spec.Method == HardExact:
		return hardJoin(base, prepared, spec, prefix)
	default:
		return softJoin(base, prepared, spec, soft, hard, prefix, rng)
	}
}

// baseGranularity returns the time granularity (seconds) of a base key
// column, 1 for non-time columns.
func baseGranularity(c dataframe.Column) int64 {
	if tc, ok := c.(*dataframe.TimeColumn); ok {
		return Granularity(tc.Unix)
	}
	return 1
}

// hardJoin matches base rows to prepared foreign rows on exact composite-key
// equality, hashing keys when the key columns support it and falling back to
// string composite keys otherwise.
func hardJoin(base, foreign *dataframe.Table, spec *Spec, prefix string) (*Result, error) {
	baseCols := make([]dataframe.Column, len(spec.Keys))
	foreignCols := make([]dataframe.Column, len(spec.Keys))
	for i, kp := range spec.Keys {
		baseCols[i] = base.Column(kp.BaseColumn)
		foreignCols[i] = foreign.Column(kp.ForeignColumn)
	}
	match, matched, ok := hashHardMatch(baseCols, foreignCols, base.NumRows(), foreign.NumRows())
	if !ok {
		match, matched = stringHardMatch(baseCols, foreignCols, base.NumRows(), foreign.NumRows())
	}
	return assemble(base, foreign.Gather(match), spec, prefix, matched)
}

// stringHardMatch is the string-composite-key match path, used when the
// hashed plane cannot model the key columns or detected a hash collision.
func stringHardMatch(baseCols, foreignCols []dataframe.Column, nBase, nForeign int) (match []int, matched int) {
	index := make(map[string]int, nForeign)
	for i := 0; i < nForeign; i++ {
		if key, ok := compositeKey(foreignCols, i); ok {
			index[key] = i
		}
	}
	match = make([]int, nBase)
	for i := range match {
		match[i] = -1
		if key, ok := compositeKey(baseCols, i); ok {
			if j, found := index[key]; found {
				match[i] = j
				matched++
			}
		}
	}
	return match, matched
}

// softGroup holds a hard-key group's foreign rows sorted by soft-key value.
type softGroup struct {
	rows []int
	keys []float64
}

// buildSoftGroups groups foreign rows by hard composite key (hashed plane
// first, string keys on collision or unmodeled columns) and returns the
// groups plus a base-row lookup resolving each base row to its group.
func buildSoftGroups(baseHard, foreignHard []dataframe.Column, foreignSoftKey func(int) (float64, bool), nForeign int) (lookup func(int) *softGroup, all []*softGroup) {
	if hashJoinKeys {
		if h := newJoinHasher(baseHard, foreignHard); h != nil {
			groups := make(map[uint64]*softGroup)
			rep := make(map[uint64]int) // group hash -> representative foreign row
			collision := false
			for i := 0; i < nForeign; i++ {
				hk, ok := h.foreignKey(i)
				if !ok {
					continue
				}
				sk, ok := foreignSoftKey(i)
				if !ok {
					continue
				}
				g := groups[hk]
				if g == nil {
					g = &softGroup{}
					groups[hk] = g
					rep[hk] = i
					all = append(all, g)
				} else if !h.eqFF(i, rep[hk]) {
					collision = true
					break
				}
				g.rows = append(g.rows, i)
				g.keys = append(g.keys, sk)
			}
			if !collision {
				return func(i int) *softGroup {
					hk, ok := h.baseKey(i)
					if !ok {
						return nil
					}
					g := groups[hk]
					if g == nil || !h.eqBF(i, rep[hk]) {
						// A hit failing verification means the base key is
						// absent (no second group can own this hash).
						return nil
					}
					return g
				}, all
			}
			all = nil
		}
	}
	groups := make(map[string]*softGroup)
	for i := 0; i < nForeign; i++ {
		hk, ok := compositeKey(foreignHard, i)
		if !ok {
			continue
		}
		sk, ok := foreignSoftKey(i)
		if !ok {
			continue
		}
		g := groups[hk]
		if g == nil {
			g = &softGroup{}
			groups[hk] = g
			all = append(all, g)
		}
		g.rows = append(g.rows, i)
		g.keys = append(g.keys, sk)
	}
	return func(i int) *softGroup {
		hk, ok := compositeKey(baseHard, i)
		if !ok {
			return nil
		}
		return groups[hk]
	}, all
}

// softJoin matches base rows by hard-key equality plus soft-key proximity.
func softJoin(base, foreign *dataframe.Table, spec *Spec, soft KeyPair, hard []KeyPair, prefix string, rng *rand.Rand) (*Result, error) {
	baseHard := make([]dataframe.Column, len(hard))
	foreignHard := make([]dataframe.Column, len(hard))
	for i, kp := range hard {
		baseHard[i] = base.Column(kp.BaseColumn)
		foreignHard[i] = foreign.Column(kp.ForeignColumn)
	}
	baseSoftKey, err := dataframe.NumericKey(base.Column(soft.BaseColumn))
	if err != nil {
		return nil, err
	}
	foreignSoftKey, err := dataframe.NumericKey(foreign.Column(soft.ForeignColumn))
	if err != nil {
		return nil, err
	}

	lookup, all := buildSoftGroups(baseHard, foreignHard, foreignSoftKey, foreign.NumRows())
	for _, g := range all {
		order := make([]int, len(g.rows))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return g.keys[order[a]] < g.keys[order[b]] })
		rows := make([]int, len(order))
		keys := make([]float64, len(order))
		for p, o := range order {
			rows[p] = g.rows[o]
			keys[p] = g.keys[o]
		}
		g.rows, g.keys = rows, keys
	}

	n := base.NumRows()
	low := make([]int, n)
	high := make([]int, n)
	lambda := make([]float64, n)
	matched := 0
	for i := 0; i < n; i++ {
		low[i], high[i] = -1, -1
		x, ok := baseSoftKey(i)
		if !ok {
			continue
		}
		g := lookup(i)
		if g == nil || len(g.rows) == 0 {
			continue
		}
		// pos = first index with key >= x.
		pos := sort.SearchFloat64s(g.keys, x)
		switch spec.Method {
		case TwoWayNearest:
			lo, hi := pos-1, pos
			if hi < len(g.keys) && g.keys[hi] == x {
				// Exact hit: no interpolation needed.
				low[i], high[i], lambda[i] = g.rows[hi], g.rows[hi], 1
				matched++
				continue
			}
			switch {
			case lo < 0 && hi >= len(g.keys):
				continue
			case lo < 0:
				low[i], high[i], lambda[i] = g.rows[hi], g.rows[hi], 1
			case hi >= len(g.keys):
				low[i], high[i], lambda[i] = g.rows[lo], g.rows[lo], 1
			default:
				ylow, yhigh := g.keys[lo], g.keys[hi]
				lam := 1.0
				if yhigh > ylow {
					// x = λ·ylow + (1−λ)·yhigh  ⇒  λ = (yhigh−x)/(yhigh−ylow).
					lam = (yhigh - x) / (yhigh - ylow)
				}
				low[i], high[i], lambda[i] = g.rows[lo], g.rows[hi], lam
			}
			matched++
		default: // NearestNeighbor
			best, bestDist := -1, math.Inf(1)
			if pos < len(g.keys) {
				best, bestDist = g.rows[pos], math.Abs(g.keys[pos]-x)
			}
			if pos-1 >= 0 {
				if d := math.Abs(g.keys[pos-1] - x); d < bestDist {
					best, bestDist = g.rows[pos-1], d
				}
			}
			if best >= 0 && (spec.Tolerance <= 0 || bestDist <= spec.Tolerance) {
				low[i], high[i], lambda[i] = best, best, 1
				matched++
			}
		}
	}

	if spec.Method == TwoWayNearest {
		blended, err := blendRows(foreign, low, high, lambda, rng)
		if err != nil {
			return nil, err
		}
		return assemble(base, blended, spec, prefix, matched)
	}
	return assemble(base, foreign.Gather(low), spec, prefix, matched)
}

// blendRows builds a table whose row i is λ·foreign[low[i]] +
// (1−λ)·foreign[high[i]] for numeric/time columns; categorical values pick
// the low or high side uniformly at random (paper §4, two-way NN join). A
// foreign table violating the column invariants (duplicate names) surfaces
// as an error so the candidate can be quarantined instead of killing the run.
func blendRows(foreign *dataframe.Table, low, high []int, lambda []float64, rng *rand.Rand) (*dataframe.Table, error) {
	n := len(low)
	out := dataframe.MustNewTable(foreign.Name())
	for _, c := range foreign.Columns() {
		switch col := c.(type) {
		case *dataframe.NumericColumn:
			vals := make([]float64, n)
			for i := 0; i < n; i++ {
				if low[i] < 0 {
					vals[i] = math.NaN()
					continue
				}
				lo, hi := col.Values[low[i]], col.Values[high[i]]
				switch {
				case math.IsNaN(lo):
					vals[i] = hi
				case math.IsNaN(hi):
					vals[i] = lo
				default:
					vals[i] = lambda[i]*lo + (1-lambda[i])*hi
				}
			}
			if err := addBlended(out, dataframe.NewNumeric(c.Name(), vals)); err != nil {
				return nil, err
			}
		case *dataframe.TimeColumn:
			vals := make([]int64, n)
			for i := 0; i < n; i++ {
				if low[i] < 0 {
					vals[i] = dataframe.MissingTime
					continue
				}
				lo, hi := col.Unix[low[i]], col.Unix[high[i]]
				switch {
				case lo == dataframe.MissingTime:
					vals[i] = hi
				case hi == dataframe.MissingTime:
					vals[i] = lo
				default:
					vals[i] = int64(lambda[i]*float64(lo) + (1-lambda[i])*float64(hi))
				}
			}
			if err := addBlended(out, dataframe.NewTime(c.Name(), vals)); err != nil {
				return nil, err
			}
		case *dataframe.CategoricalColumn:
			codes := make([]int, n)
			for i := 0; i < n; i++ {
				if low[i] < 0 {
					codes[i] = -1
					continue
				}
				pick := low[i]
				if high[i] != low[i] && rng != nil && rng.Intn(2) == 1 {
					pick = high[i]
				}
				codes[i] = col.Codes[pick]
			}
			if err := addBlended(out, dataframe.NewCategoricalCodes(c.Name(), codes, col.Dict)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// assemble appends the matched foreign feature columns (all but the join
// keys) to the base table under the given prefix.
func assemble(base, matched *dataframe.Table, spec *Spec, prefix string, matchCount int) (*Result, error) {
	keyCols := make(map[string]bool, len(spec.Keys))
	for _, kp := range spec.Keys {
		keyCols[kp.ForeignColumn] = true
	}
	out := dataframe.MustNewTable(base.Name(), base.Columns()...)
	res := &Result{Table: out, Matched: matchCount}
	for _, c := range matched.Columns() {
		if keyCols[c.Name()] {
			continue
		}
		nc := c.WithName(prefix + c.Name())
		if err := out.AddColumn(nc); err != nil {
			return nil, fmt.Errorf("join: appending %q: %w", nc.Name(), err)
		}
		res.AddedColumns = append(res.AddedColumns, nc.Name())
	}
	return res, nil
}

// addBlended adds a column during blending, wrapping invariant violations
// (duplicate names, length mismatches) as join errors.
func addBlended(t *dataframe.Table, c dataframe.Column) error {
	if err := t.AddColumn(c); err != nil {
		return fmt.Errorf("join: blending %q: %w", c.Name(), err)
	}
	return nil
}
