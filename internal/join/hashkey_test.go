package join

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/testenv"
)

// withHashPlane runs fn with the hashed-key plane forced to the given state,
// restoring the previous state after.
func withHashPlane(enabled bool, fn func()) {
	prev := SetHashJoinKeys(enabled)
	defer SetHashJoinKeys(prev)
	fn()
}

// withHashMask runs fn with the given collision-forcing hash mask.
func withHashMask(mask uint64, fn func()) {
	prev := hashKeyMask
	hashKeyMask = mask
	defer func() { hashKeyMask = prev }()
	fn()
}

// requireTablesIdentical asserts a and b are bit-identical: same shape, same
// column names and kinds, and per-cell equality at the representation level
// (Float64bits for numerics, codes+dict strings for categoricals, Unix for
// times).
func requireTablesIdentical(t *testing.T, a, b *dataframe.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	bc := b.Columns()
	for ci, ca := range a.Columns() {
		cb := bc[ci]
		if ca.Name() != cb.Name() {
			t.Fatalf("column %d name: %q vs %q", ci, ca.Name(), cb.Name())
		}
		if ca.Kind() != cb.Kind() {
			t.Fatalf("column %q kind: %v vs %v", ca.Name(), ca.Kind(), cb.Kind())
		}
		switch colA := ca.(type) {
		case *dataframe.NumericColumn:
			colB := cb.(*dataframe.NumericColumn)
			for i := range colA.Values {
				if math.Float64bits(colA.Values[i]) != math.Float64bits(colB.Values[i]) {
					t.Fatalf("column %q row %d: %v (%#x) vs %v (%#x)", ca.Name(), i,
						colA.Values[i], math.Float64bits(colA.Values[i]),
						colB.Values[i], math.Float64bits(colB.Values[i]))
				}
			}
		case *dataframe.CategoricalColumn:
			colB := cb.(*dataframe.CategoricalColumn)
			for i := range colA.Codes {
				if colA.IsMissing(i) != colB.IsMissing(i) {
					t.Fatalf("column %q row %d: missing mismatch", ca.Name(), i)
				}
				if !colA.IsMissing(i) && colA.Dict[colA.Codes[i]] != colB.Dict[colB.Codes[i]] {
					t.Fatalf("column %q row %d: %q vs %q", ca.Name(), i,
						colA.Dict[colA.Codes[i]], colB.Dict[colB.Codes[i]])
				}
			}
		case *dataframe.TimeColumn:
			colB := cb.(*dataframe.TimeColumn)
			for i := range colA.Unix {
				if colA.Unix[i] != colB.Unix[i] {
					t.Fatalf("column %q row %d: %d vs %d", ca.Name(), i, colA.Unix[i], colB.Unix[i])
				}
			}
		}
	}
}

// runBothPlanes executes the join on the hashed and string planes with
// identically seeded RNGs and asserts bit-identical results.
func runBothPlanes(t *testing.T, base, foreign *dataframe.Table, spec *Spec) {
	t.Helper()
	var hashed, stringed *Result
	var errH, errS error
	withHashPlane(true, func() {
		hashed, errH = Execute(base, foreign, spec, rand.New(rand.NewSource(7)))
	})
	withHashPlane(false, func() {
		stringed, errS = Execute(base, foreign, spec, rand.New(rand.NewSource(7)))
	})
	if (errH == nil) != (errS == nil) {
		t.Fatalf("error mismatch: hashed=%v string=%v", errH, errS)
	}
	if errH != nil {
		return
	}
	if hashed.Matched != stringed.Matched {
		t.Fatalf("matched: hashed=%d string=%d", hashed.Matched, stringed.Matched)
	}
	requireTablesIdentical(t, hashed.Table, stringed.Table)
}

// equivalenceCases builds the (base, foreign, spec) fixtures shared by the
// plain equivalence test and the forced-collision fallback test.
func equivalenceCases() map[string]func() (*dataframe.Table, *dataframe.Table, *Spec) {
	return map[string]func() (*dataframe.Table, *dataframe.Table, *Spec){
		"hard categorical": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			base := dataframe.MustNewTable("b",
				dataframe.NewCategorical("city", []string{"nyc", "bos", "sfo", "nyc", ""}),
				dataframe.NewNumeric("x", []float64{1, 2, 3, 4, 5}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewCategorical("city", []string{"nyc", "bos", "lax"}),
				dataframe.NewNumeric("pop", []float64{8, 0.7, 4}))
			return base, foreign, &Spec{Keys: []KeyPair{{BaseColumn: "city", ForeignColumn: "city", Kind: Hard}}}
		},
		"hard numeric signed zero": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			nz := math.Copysign(0, -1)
			base := dataframe.MustNewTable("b",
				dataframe.NewNumeric("k", []float64{0, nz, 1.5, math.NaN(), -1.5}),
				dataframe.NewNumeric("x", []float64{1, 2, 3, 4, 5}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewNumeric("k", []float64{nz, 1.5, 2.5}),
				dataframe.NewNumeric("v", []float64{10, 20, 30}))
			return base, foreign, &Spec{Keys: []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Hard}}}
		},
		"hard time": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			base := dataframe.MustNewTable("b",
				dataframe.NewTime("ts", []int64{86400, 172800, dataframe.MissingTime, -86400}),
				dataframe.NewNumeric("x", []float64{1, 2, 3, 4}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewTime("ts", []int64{86400, -86400, 259200}),
				dataframe.NewNumeric("v", []float64{10, 20, 30}))
			return base, foreign, &Spec{
				Keys:         []KeyPair{{BaseColumn: "ts", ForeignColumn: "ts", Kind: Hard}},
				TimeResample: false,
			}
		},
		"composite with duplicates": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			base := dataframe.MustNewTable("b",
				dataframe.NewCategorical("a", []string{"x", "x", "y", "y"}),
				dataframe.NewNumeric("n", []float64{1, 2, 1, 2}),
				dataframe.NewNumeric("x", []float64{1, 2, 3, 4}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewCategorical("a", []string{"x", "x", "y", "z"}),
				dataframe.NewNumeric("n", []float64{2, 2, 1, 1}),
				dataframe.NewNumeric("v", []float64{10, 30, 20, 40}))
			return base, foreign, &Spec{Keys: []KeyPair{
				{BaseColumn: "a", ForeignColumn: "a", Kind: Hard},
				{BaseColumn: "n", ForeignColumn: "n", Kind: Hard},
			}}
		},
		"foreign dict remap": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			// Same category strings, different code assignment orders.
			base := dataframe.MustNewTable("b",
				dataframe.NewCategorical("c", []string{"alpha", "beta", "gamma"}),
				dataframe.NewNumeric("x", []float64{1, 2, 3}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewCategorical("c", []string{"gamma", "delta", "alpha"}),
				dataframe.NewNumeric("v", []float64{10, 20, 30}))
			return base, foreign, &Spec{Keys: []KeyPair{{BaseColumn: "c", ForeignColumn: "c", Kind: Hard}}}
		},
		"mixed kinds fall back": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			// Numeric base key vs time foreign key: the hasher refuses the
			// pair and both planes must agree via the string path.
			base := dataframe.MustNewTable("b",
				dataframe.NewNumeric("k", []float64{86400, 172800}),
				dataframe.NewNumeric("x", []float64{1, 2}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewTime("k", []int64{86400, 259200}),
				dataframe.NewNumeric("v", []float64{10, 20}))
			return base, foreign, &Spec{Keys: []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Hard}}}
		},
		"soft two-way nearest": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			base := dataframe.MustNewTable("b",
				dataframe.NewCategorical("g", []string{"a", "a", "b", "b"}),
				dataframe.NewNumeric("t", []float64{1, 5, 2, 9}),
				dataframe.NewNumeric("x", []float64{1, 2, 3, 4}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewCategorical("g", []string{"a", "a", "b", "b", "b"}),
				dataframe.NewNumeric("t", []float64{0, 10, 1, 3, 8}),
				dataframe.NewNumeric("v", []float64{10, 20, 30, 40, 50}))
			return base, foreign, &Spec{
				Keys: []KeyPair{
					{BaseColumn: "g", ForeignColumn: "g", Kind: Hard},
					{BaseColumn: "t", ForeignColumn: "t", Kind: Soft},
				},
				Method: TwoWayNearest,
			}
		},
		"soft nearest with tolerance": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			base := dataframe.MustNewTable("b",
				dataframe.NewCategorical("g", []string{"a", "b", "a"}),
				dataframe.NewNumeric("t", []float64{1, 2, 100}),
				dataframe.NewNumeric("x", []float64{1, 2, 3}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewCategorical("g", []string{"a", "b"}),
				dataframe.NewNumeric("t", []float64{1.5, 2.5}),
				dataframe.NewNumeric("v", []float64{10, 20}))
			return base, foreign, &Spec{
				Keys: []KeyPair{
					{BaseColumn: "g", ForeignColumn: "g", Kind: Hard},
					{BaseColumn: "t", ForeignColumn: "t", Kind: Soft},
				},
				Method:    NearestNeighbor,
				Tolerance: 2,
			}
		},
		"time resample": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			base := dataframe.MustNewTable("b",
				dataframe.NewTime("ts", []int64{86400, 172800, 259200}),
				dataframe.NewNumeric("x", []float64{1, 2, 3}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewTime("ts", []int64{86400, 86400 + 3600, 172800 + 7200, 300000}),
				dataframe.NewNumeric("v", []float64{10, 20, 30, 40}))
			return base, foreign, &Spec{
				Keys:         []KeyPair{{BaseColumn: "ts", ForeignColumn: "ts", Kind: Soft}},
				Method:       HardExact,
				TimeResample: true,
			}
		},
		"geo grouped": func() (*dataframe.Table, *dataframe.Table, *Spec) {
			base := dataframe.MustNewTable("b",
				dataframe.NewCategorical("g", []string{"a", "a", "b"}),
				dataframe.NewNumeric("lon", []float64{0, 5, 0}),
				dataframe.NewNumeric("lat", []float64{0, 5, 0}),
				dataframe.NewNumeric("x", []float64{1, 2, 3}))
			foreign := dataframe.MustNewTable("f",
				dataframe.NewCategorical("g", []string{"a", "a", "b"}),
				dataframe.NewNumeric("lon", []float64{1, 6, 2}),
				dataframe.NewNumeric("lat", []float64{0, 5, 1}),
				dataframe.NewNumeric("v", []float64{10, 20, 30}))
			return base, foreign, &Spec{
				Keys: []KeyPair{
					{BaseColumn: "g", ForeignColumn: "g", Kind: Hard},
					{BaseColumn: "lon", ForeignColumn: "lon", Kind: Soft},
					{BaseColumn: "lat", ForeignColumn: "lat", Kind: Soft},
				},
				Method: GeoNearest,
			}
		},
	}
}

// TestHashPlaneEquivalence proves every join flavor is bit-identical between
// the hashed-key and string-key planes.
func TestHashPlaneEquivalence(t *testing.T) {
	for name, mk := range equivalenceCases() {
		t.Run(name, func(t *testing.T) {
			base, foreign, spec := mk()
			runBothPlanes(t, base, foreign, spec)
		})
	}
}

// TestHashPlaneEquivalenceFuzz joins randomly generated tables on both planes
// and requires bit-identical output, covering duplicate keys, missing values,
// and adversarial float values (±0, tiny/huge magnitudes).
func TestHashPlaneEquivalenceFuzz(t *testing.T) {
	values := []float64{0, math.Copysign(0, -1), 1, -1, 1e-300, -1e300, 2.5, math.NaN(), 42}
	cats := []string{"", "a", "b", "c", "aa"}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nBase, nForeign := 30, 40
		num := func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = values[rng.Intn(len(values))]
			}
			return out
		}
		cat := func(n int) []string {
			out := make([]string, n)
			for i := range out {
				out[i] = cats[rng.Intn(len(cats))]
			}
			return out
		}
		base := dataframe.MustNewTable("b",
			dataframe.NewNumeric("k", num(nBase)),
			dataframe.NewCategorical("c", cat(nBase)),
			dataframe.NewNumeric("x", num(nBase)))
		foreign := dataframe.MustNewTable("f",
			dataframe.NewNumeric("k", num(nForeign)),
			dataframe.NewCategorical("c", cat(nForeign)),
			dataframe.NewNumeric("v", num(nForeign)))
		spec := &Spec{Keys: []KeyPair{
			{BaseColumn: "k", ForeignColumn: "k", Kind: Hard},
			{BaseColumn: "c", ForeignColumn: "c", Kind: Hard},
		}}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runBothPlanes(t, base, foreign, spec)
		})
	}
}

// TestHashPlaneForcedCollisions shrinks the hash mask so distinct keys
// constantly collide, proving the verification/fallback machinery still
// yields results bit-identical to the string plane.
func TestHashPlaneForcedCollisions(t *testing.T) {
	for _, mask := range []uint64{0, 0x3} {
		mask := mask
		t.Run(fmt.Sprintf("mask%#x", mask), func(t *testing.T) {
			withHashMask(mask, func() {
				for name, mk := range equivalenceCases() {
					t.Run(name, func(t *testing.T) {
						base, foreign, spec := mk()
						runBothPlanes(t, base, foreign, spec)
					})
				}
			})
		})
	}
}

// TestAggregateByKeyEquivalence checks grouped aggregation is identical on
// both planes, including under forced collisions.
func TestAggregateByKeyEquivalence(t *testing.T) {
	tbl := dataframe.MustNewTable("f",
		dataframe.NewCategorical("g", []string{"a", "b", "a", "", "b", "a"}),
		dataframe.NewNumeric("k", []float64{1, 1, 1, 2, math.Copysign(0, -1), 1}),
		dataframe.NewNumeric("v", []float64{10, 20, 30, 40, 50, 60}),
		dataframe.NewTime("ts", []int64{10, 20, 30, 40, dataframe.MissingTime, 60}),
		dataframe.NewCategorical("m", []string{"x", "y", "x", "y", "x", "y"}))
	check := func(t *testing.T) {
		var hashed, stringed *dataframe.Table
		var errH, errS error
		withHashPlane(true, func() { hashed, errH = AggregateByKey(tbl, []string{"g", "k"}) })
		withHashPlane(false, func() { stringed, errS = AggregateByKey(tbl, []string{"g", "k"}) })
		if errH != nil || errS != nil {
			t.Fatalf("errors: %v / %v", errH, errS)
		}
		requireTablesIdentical(t, hashed, stringed)
	}
	t.Run("full mask", check)
	t.Run("forced collisions", func(t *testing.T) {
		withHashMask(1, func() { check(t) })
	})
}

// largeKeyTables builds a pair of tables with enough rows that per-row
// allocation differences dominate fixed costs.
func largeKeyTables(n int) (*dataframe.Table, *dataframe.Table) {
	bk := make([]float64, n)
	bc := make([]string, n)
	bx := make([]float64, n)
	for i := range bk {
		bk[i] = float64(i % 97)
		bc[i] = fmt.Sprintf("cat%d", i%13)
		bx[i] = float64(i)
	}
	fk := make([]float64, n)
	fc := make([]string, n)
	fv := make([]float64, n)
	for i := range fk {
		fk[i] = float64(i % 89)
		fc[i] = fmt.Sprintf("cat%d", i%11)
		fv[i] = float64(2 * i)
	}
	base := dataframe.MustNewTable("b",
		dataframe.NewNumeric("k", bk),
		dataframe.NewCategorical("c", bc),
		dataframe.NewNumeric("x", bx))
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("k", fk),
		dataframe.NewCategorical("c", fc),
		dataframe.NewNumeric("v", fv))
	return base, foreign
}

// TestHashHardMatchAllocs is the allocation-regression gate for the
// composite-key hot loop: the hashed plane must allocate far less than the
// per-row string building it replaces.
func TestHashHardMatchAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	const n = 2000
	base, foreign := largeKeyTables(n)
	baseCols := []dataframe.Column{base.Column("k"), base.Column("c")}
	foreignCols := []dataframe.Column{foreign.Column("k"), foreign.Column("c")}

	hashAllocs := testing.AllocsPerRun(10, func() {
		if _, _, ok := hashHardMatch(baseCols, foreignCols, n, n); !ok {
			t.Fatal("hashHardMatch fell back unexpectedly")
		}
	})
	stringAllocs := testing.AllocsPerRun(10, func() {
		stringHardMatch(baseCols, foreignCols, n, n)
	})
	// The string plane allocates at least one composite key per row on both
	// sides; the hashed plane should cut total allocations by well over 2x.
	if hashAllocs*2 > stringAllocs {
		t.Fatalf("hashed plane allocates too much: %.0f allocs vs %.0f string-plane allocs",
			hashAllocs, stringAllocs)
	}
	if stringAllocs < n {
		t.Fatalf("string plane unexpectedly cheap (%.0f allocs) — baseline invalid", stringAllocs)
	}
}

// TestPrepCacheReuse verifies ExecuteCached prepares a foreign table once per
// (table, keys, granularity) and that cached reuse is bit-identical to a
// fresh execution.
func TestPrepCacheReuse(t *testing.T) {
	base, foreign := largeKeyTables(200)
	spec := &Spec{Keys: []KeyPair{
		{BaseColumn: "k", ForeignColumn: "k", Kind: Hard},
		{BaseColumn: "c", ForeignColumn: "c", Kind: Hard},
	}}
	cache := NewPrepCache()
	first, err := ExecuteCached(base, foreign, spec, rand.New(rand.NewSource(1)), cache)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", cache.Len())
	}
	second, err := ExecuteCached(base, foreign, spec, rand.New(rand.NewSource(1)), cache)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache grew to %d entries on reuse", cache.Len())
	}
	fresh, err := Execute(base, foreign, spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	requireTablesIdentical(t, first.Table, second.Table)
	requireTablesIdentical(t, first.Table, fresh.Table)
}
