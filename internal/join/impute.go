package join

import (
	"math"
	"math/rand"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/stats"
)

// Impute fills every missing value in the table in place, using the paper's
// simple strategies (§4 "Imputation"): numeric and time columns take the
// column median, categorical columns draw uniformly at random from the
// column's observed values. Columns that are entirely missing become all-zero
// (numeric), epoch (time), or stay missing (categorical with no observed
// values). It returns the number of cells filled.
func Impute(t *dataframe.Table, rng *rand.Rand) int {
	filled := 0
	for _, c := range t.Columns() {
		switch col := c.(type) {
		case *dataframe.NumericColumn:
			med := stats.Median(col.Values)
			if math.IsNaN(med) {
				med = 0
			}
			for i, v := range col.Values {
				if math.IsNaN(v) {
					col.Values[i] = med
					filled++
				}
			}
		case *dataframe.TimeColumn:
			vals := make([]float64, 0, len(col.Unix))
			for _, v := range col.Unix {
				if v != dataframe.MissingTime {
					vals = append(vals, float64(v))
				}
			}
			med := int64(0)
			if len(vals) > 0 {
				med = int64(stats.Median(vals))
			}
			for i, v := range col.Unix {
				if v == dataframe.MissingTime {
					col.Unix[i] = med
					filled++
				}
			}
		case *dataframe.CategoricalColumn:
			present := make([]int, 0, len(col.Codes))
			for _, code := range col.Codes {
				if code >= 0 {
					present = append(present, code)
				}
			}
			if len(present) == 0 {
				continue
			}
			for i, code := range col.Codes {
				if code < 0 {
					col.Codes[i] = present[rng.Intn(len(present))]
					filled++
				}
			}
		}
	}
	return filled
}
