package join

import (
	"math"

	"github.com/arda-ml/arda/internal/dataframe"
)

// The hashed-key data plane replaces per-row string composite keys with
// 64-bit hashes over the raw column bits: float64 bit patterns for numeric
// keys, Unix int64s for time keys, and dictionary codes for categorical keys
// (foreign codes remapped onto the base table's dictionary once per join).
// Every hash lookup is verified against the candidate row's actual typed
// values, so a 64-bit collision between distinct keys is detected rather than
// silently merging keys; detection aborts the hashed attempt and the caller
// reruns the operation on the original string-key path. Column kinds the
// hasher does not model (a base/foreign pair of different kinds, or an
// unknown Column implementation) also fall back to strings, keeping results
// identical to the string path in every case.

// hashJoinKeys gates the hashed-key fast path. Tests and benchmarks flip it
// to compare the hashed and string planes; production code leaves it on.
var hashJoinKeys = true

// hashKeyMask is ANDed into every composite hash. Tests shrink it to force
// collisions and exercise the verification/fallback machinery; production
// code leaves it all-ones.
var hashKeyMask = ^uint64(0)

// SetHashJoinKeys toggles the hashed-key plane (on by default) and returns
// the previous setting. Both planes produce identical results; the knob
// exists so tests and benchmarks outside this package can compare them. Not
// safe to flip while joins are running.
func SetHashJoinKeys(enabled bool) (prev bool) {
	prev = hashJoinKeys
	hashJoinKeys = enabled
	return prev
}

// mix64 is the SplitMix64 finalizer: a cheap invertible mixer whose output
// bits all depend on all input bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// keyCol is one key column prepared for hashing: direct slice access per kind
// plus, for categorical columns, a per-dictionary-entry canonical code so
// equal strings hash equally across the base and foreign dictionaries.
type keyCol struct {
	kind  dataframe.Kind
	num   []float64
	unix  []int64
	codes []int
	canon []int // categorical: canonical id per dictionary entry
}

// valueBits returns the hashable bit pattern of row i's value; ok is false
// when the value is missing.
func (kc *keyCol) valueBits(i int) (uint64, bool) {
	switch kc.kind {
	case dataframe.Numeric:
		v := kc.num[i]
		if math.IsNaN(v) {
			return 0, false
		}
		return math.Float64bits(v), true
	case dataframe.Time:
		v := kc.unix[i]
		if v == dataframe.MissingTime {
			return 0, false
		}
		return uint64(v), true
	default: // Categorical
		c := kc.codes[i]
		if c < 0 {
			return 0, false
		}
		return uint64(kc.canon[c]), true
	}
}

// valueEq reports whether row i of a equals row j of b under the same
// semantics the string key path uses: exact bit equality for numeric (the
// shortest round-trip formatting is injective on non-NaN floats, so bit
// equality and string equality coincide), exact int64 equality for time, and
// canonical-code equality for categorical values.
func valueEq(a *keyCol, i int, b *keyCol, j int) bool {
	switch a.kind {
	case dataframe.Numeric:
		av, bv := a.num[i], b.num[j]
		if math.IsNaN(av) || math.IsNaN(bv) {
			return false
		}
		return math.Float64bits(av) == math.Float64bits(bv)
	case dataframe.Time:
		av, bv := a.unix[i], b.unix[j]
		return av != dataframe.MissingTime && av == bv
	default: // Categorical
		ac, bc := a.codes[i], b.codes[j]
		if ac < 0 || bc < 0 {
			return false
		}
		return a.canon[ac] == b.canon[bc]
	}
}

// compositeHash combines the per-column value bits of row i into one 64-bit
// key; ok is false when any component is missing.
func compositeHash(cols []keyCol, i int) (uint64, bool) {
	h := uint64(0x9e3779b97f4a7c15)
	for k := range cols {
		b, ok := cols[k].valueBits(i)
		if !ok {
			return 0, false
		}
		h = mix64(h ^ (b + uint64(k+1)*0x9e3779b97f4a7c15))
	}
	return h & hashKeyMask, true
}

// keyEq reports whether the composite key of row i under a equals that of
// row j under b. a and b must be parallel column lists.
func keyEq(a []keyCol, i int, b []keyCol, j int) bool {
	for k := range a {
		if !valueEq(&a[k], i, &b[k], j) {
			return false
		}
	}
	return true
}

// canonicalCodes deduplicates a dictionary into canonical ids (first
// occurrence wins), extending the given map; it returns the per-entry mapping.
func canonicalCodes(dict []string, index map[string]int) []int {
	canon := make([]int, len(dict))
	for i, s := range dict {
		id, ok := index[s]
		if !ok {
			id = len(index)
			index[s] = id
		}
		canon[i] = id
	}
	return canon
}

// newKeyCol prepares a single column for hashing; ok is false for column
// implementations the hasher does not model. Categorical columns canonicalize
// through the shared index (nil creates a private one).
func newKeyCol(c dataframe.Column, index map[string]int) (keyCol, bool) {
	switch col := c.(type) {
	case *dataframe.NumericColumn:
		return keyCol{kind: dataframe.Numeric, num: col.Values}, true
	case *dataframe.TimeColumn:
		return keyCol{kind: dataframe.Time, unix: col.Unix}, true
	case *dataframe.CategoricalColumn:
		if index == nil {
			index = make(map[string]int, len(col.Dict))
		}
		return keyCol{
			kind:  dataframe.Categorical,
			codes: col.Codes,
			canon: canonicalCodes(col.Dict, index),
		}, true
	default:
		return keyCol{}, false
	}
}

// joinHasher hashes composite keys of aligned base/foreign key columns.
type joinHasher struct {
	base, foreign []keyCol
}

// newJoinHasher prepares paired key columns for hashing, or returns nil when
// any pair mixes kinds (the string path handles those rare specs).
func newJoinHasher(baseCols, foreignCols []dataframe.Column) *joinHasher {
	h := &joinHasher{
		base:    make([]keyCol, len(baseCols)),
		foreign: make([]keyCol, len(foreignCols)),
	}
	for i := range baseCols {
		if baseCols[i].Kind() != foreignCols[i].Kind() {
			return nil
		}
		var index map[string]int
		if bc, ok := baseCols[i].(*dataframe.CategoricalColumn); ok {
			// One shared index per pair: base dictionary entries claim
			// canonical ids first, foreign novelties extend them, so equal
			// strings agree across the two tables.
			index = make(map[string]int, len(bc.Dict))
		}
		kb, ok := newKeyCol(baseCols[i], index)
		if !ok {
			return nil
		}
		kf, ok := newKeyCol(foreignCols[i], index)
		if !ok {
			return nil
		}
		h.base[i], h.foreign[i] = kb, kf
	}
	return h
}

// baseKey returns base row i's composite hash.
func (h *joinHasher) baseKey(i int) (uint64, bool) { return compositeHash(h.base, i) }

// foreignKey returns foreign row i's composite hash.
func (h *joinHasher) foreignKey(i int) (uint64, bool) { return compositeHash(h.foreign, i) }

// eqBF verifies base row bi's key equals foreign row fi's key.
func (h *joinHasher) eqBF(bi, fi int) bool { return keyEq(h.base, bi, h.foreign, fi) }

// eqFF verifies two foreign rows share a key.
func (h *joinHasher) eqFF(i, j int) bool { return keyEq(h.foreign, i, h.foreign, j) }

// newGroupHasher prepares a single table's key columns for group hashing, or
// nil for unmodeled column implementations.
func newGroupHasher(cols []dataframe.Column) []keyCol {
	out := make([]keyCol, len(cols))
	for i, c := range cols {
		kc, ok := newKeyCol(c, nil)
		if !ok {
			return nil
		}
		out[i] = kc
	}
	return out
}

// hashGroups groups rows 0..n-1 by hashed composite key, in first-appearance
// order exactly like the string path. Rows with missing key components are
// skipped. ok is false when a verified hash collision between distinct keys
// is found (caller must rerun on the string path).
func hashGroups(cols []keyCol, n int) (groups [][]int, ok bool) {
	index := make(map[uint64]int, n)
	rep := make([]int, 0, 16) // group ordinal -> representative row
	for i := 0; i < n; i++ {
		key, present := compositeHash(cols, i)
		if !present {
			continue
		}
		g, seen := index[key]
		if !seen {
			g = len(groups)
			index[key] = g
			groups = append(groups, nil)
			rep = append(rep, i)
		} else if !keyEq(cols, i, cols, rep[g]) {
			return nil, false
		}
		groups[g] = append(groups[g], i)
	}
	return groups, true
}

// hashHardMatch builds the hashed-key LEFT-join match vector: match[i] is the
// foreign row whose key equals base row i's key (-1 when unmatched). ok is
// false when the spec is unsupported by the hasher or a verified collision
// occurred; the caller then reruns the string path.
func hashHardMatch(baseCols, foreignCols []dataframe.Column, nBase, nForeign int) (match []int, matched int, ok bool) {
	if !hashJoinKeys {
		return nil, 0, false
	}
	h := newJoinHasher(baseCols, foreignCols)
	if h == nil {
		return nil, 0, false
	}
	index := make(map[uint64]int, nForeign)
	for i := 0; i < nForeign; i++ {
		key, present := h.foreignKey(i)
		if !present {
			continue
		}
		if j, seen := index[key]; seen && !h.eqFF(i, j) {
			return nil, 0, false
		}
		// Duplicate keys overwrite, matching the string path's map semantics.
		index[key] = i
	}
	match = make([]int, nBase)
	for i := range match {
		match[i] = -1
		key, present := h.baseKey(i)
		if !present {
			continue
		}
		if j, found := index[key]; found && h.eqBF(i, j) {
			// A lookup hit that fails verification is a base key whose hash
			// equals a different foreign key's hash. No other foreign key can
			// own that hash (a second one would have collided above), so
			// "unmatched" is already the correct answer — no fallback needed.
			match[i] = j
			matched++
		}
	}
	return match, matched, true
}
