package join

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/arda-ml/arda/internal/dataframe"
)

// PrepCache memoizes Execute's foreign-table preparation (key aggregation or
// time resampling). The ARDA pipeline prepares the same candidate table at
// least twice — once while scoring batches against the coreset and again when
// materializing kept features over the full base table — and the preparation
// depends only on the foreign table, the key set, and the resample
// granularity, never on the base rows. Entries are keyed by the foreign
// table's identity (pointer), so the cache is only valid while candidate
// tables are not mutated; the pipeline guarantees that by joining into
// fresh/cloned work tables. Create one cache per Augment run and drop it with
// the run.
type PrepCache struct {
	mu     sync.Mutex
	m      map[prepKey]*dataframe.Table
	hits   atomic.Int64
	misses atomic.Int64
}

// CacheStats is a hit/miss snapshot of a per-run cache.
type CacheStats struct {
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that had to compute (and then store) an entry.
	Misses int64
}

// prepKey identifies one preparation of one foreign table.
type prepKey struct {
	table *dataframe.Table
	spec  string // mode + key columns + granularity
}

// NewPrepCache returns an empty preparation cache.
func NewPrepCache() *PrepCache {
	return &PrepCache{m: make(map[prepKey]*dataframe.Table)}
}

// prepSpec renders the preparation parameters as a cache-key string. Column
// names are length-prefixed so arbitrary names cannot alias two key sets.
func prepSpec(mode string, keyCols []string, gran int64) string {
	var b strings.Builder
	b.WriteString(mode)
	b.WriteByte(0)
	b.WriteString(strconv.FormatInt(gran, 10))
	for _, k := range keyCols {
		b.WriteByte(0)
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// get returns the cached preparation, or nil. A nil cache always misses.
func (c *PrepCache) get(t *dataframe.Table, spec string) *dataframe.Table {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	prepared := c.m[prepKey{t, spec}]
	c.mu.Unlock()
	if prepared == nil {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return prepared
}

// Stats returns the cache's hit/miss counts so far. Every miss is followed
// by exactly one put, so Misses == Len() iff no preparation was ever
// recomputed — the pipeline's prepare-once contract.
func (c *PrepCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// put stores a preparation. A nil cache drops it.
func (c *PrepCache) put(t *dataframe.Table, spec string, prepared *dataframe.Table) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[prepKey{t, spec}] = prepared
}

// Len returns the number of cached preparations.
func (c *PrepCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
