package join

import (
	"math"
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
)

func TestGranularity(t *testing.T) {
	cases := []struct {
		unix []int64
		want int64
	}{
		{[]int64{0, 86400, 172800}, 86400},
		{[]int64{0, 3600, 7200}, 3600},
		{[]int64{0, 60, 120}, 60},
		{[]int64{0, 61}, 1},
		{[]int64{dataframe.MissingTime, 86400}, 86400},
	}
	for _, c := range cases {
		if got := Granularity(c.unix); got != c.want {
			t.Fatalf("Granularity(%v) = %d, want %d", c.unix, got, c.want)
		}
	}
}

func TestAggregateByKey(t *testing.T) {
	tab := dataframe.MustNewTable("f",
		dataframe.NewCategorical("k", []string{"a", "a", "b", ""}),
		dataframe.NewNumeric("v", []float64{1, 3, 5, 99}),
		dataframe.NewTime("ts", []int64{0, 86400, 0, 0}),
	)
	agg, err := AggregateByKey(tab, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (missing keys dropped)", agg.NumRows())
	}
	v := agg.Column("v").(*dataframe.NumericColumn)
	if v.Values[0] != 2 { // mean(1, 3)
		t.Fatalf("aggregated v = %v", v.Values)
	}
	ts := agg.Column("ts").(*dataframe.TimeColumn)
	if ts.Unix[0] != 43200 { // mean of 0 and 86400
		t.Fatalf("aggregated ts = %v", ts.Unix[0])
	}
}

func TestAggregateSkipsNaN(t *testing.T) {
	tab := dataframe.MustNewTable("f",
		dataframe.NewCategorical("k", []string{"a", "a"}),
		dataframe.NewNumeric("v", []float64{math.NaN(), 4}),
	)
	agg, err := AggregateByKey(tab, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.Column("v").(*dataframe.NumericColumn).Values[0]; got != 4 {
		t.Fatalf("NaN-skipping mean = %v", got)
	}
}

func TestResampleTime(t *testing.T) {
	// Hourly data resampled to daily granularity: 48 hourly rows → 2 days.
	unix := make([]int64, 48)
	vals := make([]float64, 48)
	for i := range unix {
		unix[i] = int64(i) * 3600
		vals[i] = float64(i)
	}
	tab := dataframe.MustNewTable("w",
		dataframe.NewTime("ts", unix),
		dataframe.NewNumeric("v", vals),
	)
	out, err := ResampleTime(tab, "ts", 86400, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("resampled rows = %d, want 2", out.NumRows())
	}
	v := out.Column("v").(*dataframe.NumericColumn)
	// First day aggregates hours 0..23 → mean 11.5.
	if math.Abs(v.Values[0]-11.5) > 1e-9 && math.Abs(v.Values[1]-11.5) > 1e-9 {
		t.Fatalf("day means = %v", v.Values)
	}
	ts := out.Column("ts").(*dataframe.TimeColumn)
	if ts.Unix[0]%86400 != 0 {
		t.Fatalf("bucketed key not day-aligned: %d", ts.Unix[0])
	}
}

func TestResampleTimeInJoin(t *testing.T) {
	// Base at day granularity, foreign at hour granularity: Execute with
	// TimeResample should aggregate then hard-join cleanly.
	base := dataframe.MustNewTable("base",
		dataframe.NewTime("date", []int64{0, 86400}),
	)
	unix := make([]int64, 48)
	vals := make([]float64, 48)
	for i := range unix {
		unix[i] = int64(i) * 3600
		if i < 24 {
			vals[i] = 10
		} else {
			vals[i] = 20
		}
	}
	foreign := dataframe.MustNewTable("w",
		dataframe.NewTime("date", unix),
		dataframe.NewNumeric("temp", vals),
	)
	spec := &Spec{
		Keys:         []KeyPair{{BaseColumn: "date", ForeignColumn: "date", Kind: Soft}},
		Method:       HardExact,
		TimeResample: true,
	}
	res, err := Execute(base, foreign, spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	temp := res.Table.Column("w.temp").(*dataframe.NumericColumn)
	if temp.Values[0] != 10 || temp.Values[1] != 20 {
		t.Fatalf("resampled join temps = %v, want [10 20]", temp.Values)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 3, 2}, {-7, 3, -3}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Fatalf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestImpute(t *testing.T) {
	tab := dataframe.MustNewTable("t",
		dataframe.NewNumeric("v", []float64{1, math.NaN(), 3}),
		dataframe.NewCategorical("k", []string{"a", "", "b"}),
		dataframe.NewTime("ts", []int64{0, dataframe.MissingTime, 86400}),
	)
	rng := rand.New(rand.NewSource(1))
	filled := Impute(tab, rng)
	if filled != 3 {
		t.Fatalf("filled = %d, want 3", filled)
	}
	if tab.MissingCells() != 0 {
		t.Fatal("table still has missing cells after imputation")
	}
	if got := tab.Column("v").(*dataframe.NumericColumn).Values[1]; got != 2 {
		t.Fatalf("numeric imputation = %v, want median 2", got)
	}
	if got := tab.Column("ts").(*dataframe.TimeColumn).Unix[1]; got != 43200 {
		t.Fatalf("time imputation = %v, want median 43200", got)
	}
	code := tab.Column("k").(*dataframe.CategoricalColumn).Codes[1]
	if code < 0 || code > 1 {
		t.Fatalf("categorical imputation code = %d", code)
	}
}

func TestImputeAllMissingCategorical(t *testing.T) {
	tab := dataframe.MustNewTable("t",
		dataframe.NewCategorical("k", []string{"", ""}),
	)
	filled := Impute(tab, rand.New(rand.NewSource(1)))
	if filled != 0 {
		t.Fatal("no observed values: nothing to impute from")
	}
}
