package join

import (
	"fmt"
	"math"

	"github.com/arda-ml/arda/internal/dataframe"
)

// GeoNearest is the location-based soft join the paper leaves as future
// work (§9): a spec with exactly two soft key pairs — the x/y (or lon/lat)
// coordinates — matches each base row with the foreign row nearest in
// Euclidean distance, optionally within Tolerance, grouped by any hard keys.
const GeoNearest SoftMethod = 100

// geoValidate checks the structural constraints of a GeoNearest spec.
func geoValidate(s *Spec, base, foreign *dataframe.Table) error {
	soft := 0
	for _, kp := range s.Keys {
		if !base.HasColumn(kp.BaseColumn) {
			return fmt.Errorf("join: base table %q has no column %q", base.Name(), kp.BaseColumn)
		}
		if !foreign.HasColumn(kp.ForeignColumn) {
			return fmt.Errorf("join: foreign table %q has no column %q", foreign.Name(), kp.ForeignColumn)
		}
		if kp.Kind == Soft {
			soft++
			bc := base.Column(kp.BaseColumn)
			fc := foreign.Column(kp.ForeignColumn)
			if bc.Kind() != dataframe.Numeric || fc.Kind() != dataframe.Numeric {
				return fmt.Errorf("join: geo key %q/%q must be numeric", kp.BaseColumn, kp.ForeignColumn)
			}
		}
	}
	if soft != 2 {
		return fmt.Errorf("join: GeoNearest needs exactly 2 soft keys, got %d", soft)
	}
	return nil
}

// geoPoint is one foreign row's coordinates.
type geoPoint struct {
	x, y float64
	row  int
}

// geoGrid is a uniform-cell spatial index over a group's points.
type geoGrid struct {
	cell   float64
	points map[[2]int][]geoPoint
	all    []geoPoint
}

// newGeoGrid indexes points with a cell size adapted to the point density
// (or the tolerance when one is set).
func newGeoGrid(points []geoPoint, tolerance float64) *geoGrid {
	g := &geoGrid{points: make(map[[2]int][]geoPoint), all: points}
	if len(points) == 0 {
		g.cell = 1
		return g
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p.x)
		maxX = math.Max(maxX, p.x)
		minY = math.Min(minY, p.y)
		maxY = math.Max(maxY, p.y)
	}
	span := math.Max(maxX-minX, maxY-minY)
	g.cell = span / math.Max(1, math.Sqrt(float64(len(points))))
	if tolerance > 0 && (g.cell == 0 || tolerance < g.cell) {
		g.cell = tolerance
	}
	if g.cell <= 0 {
		g.cell = 1
	}
	for _, p := range points {
		key := g.key(p.x, p.y)
		g.points[key] = append(g.points[key], p)
	}
	return g
}

// key returns the cell coordinates of a point.
func (g *geoGrid) key(x, y float64) [2]int {
	return [2]int{int(math.Floor(x / g.cell)), int(math.Floor(y / g.cell))}
}

// nearest returns the row index of the closest indexed point to (x, y) and
// the distance, searching expanding rings of cells. ok is false when no
// point exists.
func (g *geoGrid) nearest(x, y float64) (int, float64, bool) {
	if len(g.all) == 0 {
		return -1, 0, false
	}
	center := g.key(x, y)
	bestRow, bestDist := -1, math.Inf(1)
	// Any point in a cell at Chebyshev ring > r is at Euclidean distance
	// > r·cell from the query, so once bestDist <= ring·cell the search is
	// complete. A ring bound guards against sparse grids; beyond it we
	// brute-force the remainder.
	maxRing := 2 + int(math.Sqrt(float64(len(g.all))))
	for ring := 0; ring <= maxRing; ring++ {
		for cx := center[0] - ring; cx <= center[0]+ring; cx++ {
			for cy := center[1] - ring; cy <= center[1]+ring; cy++ {
				// Only the ring boundary; inner cells were already scanned.
				if ring > 0 && cx != center[0]-ring && cx != center[0]+ring &&
					cy != center[1]-ring && cy != center[1]+ring {
					continue
				}
				for _, p := range g.points[[2]int{cx, cy}] {
					d := math.Hypot(p.x-x, p.y-y)
					if d < bestDist {
						bestRow, bestDist = p.row, d
					}
				}
			}
		}
		if bestRow >= 0 && bestDist <= float64(ring)*g.cell {
			return bestRow, bestDist, true
		}
	}
	// Sparse or far-away queries: brute-force to guarantee exactness.
	for _, p := range g.all {
		d := math.Hypot(p.x-x, p.y-y)
		if d < bestDist {
			bestRow, bestDist = p.row, d
		}
	}
	return bestRow, bestDist, bestRow >= 0
}

// geoJoin matches base rows to the nearest foreign row in 2-D coordinate
// space, grouped by hard keys.
func geoJoin(base, foreign *dataframe.Table, spec *Spec, prefix string) (*Result, error) {
	var softPairs []KeyPair
	for _, kp := range spec.Keys {
		if kp.Kind == Soft {
			softPairs = append(softPairs, kp)
		}
	}
	hard := spec.hardKeys()
	baseHard := make([]dataframe.Column, len(hard))
	foreignHard := make([]dataframe.Column, len(hard))
	for i, kp := range hard {
		baseHard[i] = base.Column(kp.BaseColumn)
		foreignHard[i] = foreign.Column(kp.ForeignColumn)
	}
	bx := base.Column(softPairs[0].BaseColumn).(*dataframe.NumericColumn)
	by := base.Column(softPairs[1].BaseColumn).(*dataframe.NumericColumn)
	fx := foreign.Column(softPairs[0].ForeignColumn).(*dataframe.NumericColumn)
	fy := foreign.Column(softPairs[1].ForeignColumn).(*dataframe.NumericColumn)

	lookup, groups := buildGeoGroups(baseHard, foreignHard, fx, fy, foreign.NumRows())
	grids := make([]*geoGrid, len(groups))
	for g, pts := range groups {
		grids[g] = newGeoGrid(pts, spec.Tolerance)
	}

	match := make([]int, base.NumRows())
	matched := 0
	for i := range match {
		match[i] = -1
		if bx.IsMissing(i) || by.IsMissing(i) {
			continue
		}
		g := lookup(i)
		if g < 0 {
			continue
		}
		grid := grids[g]
		row, dist, found := grid.nearest(bx.Values[i], by.Values[i])
		if found && (spec.Tolerance <= 0 || dist <= spec.Tolerance) {
			match[i] = row
			matched++
		}
	}
	return assemble(base, foreign.Gather(match), spec, prefix, matched)
}

// buildGeoGroups partitions present foreign coordinate rows by hard composite
// key (hashed plane first, string keys on collision or unmodeled columns) and
// returns the point groups plus a base-row lookup resolving each base row to
// its group index (-1 when the base key is missing or unmatched). With no
// hard keys every row lands in one group.
func buildGeoGroups(baseHard, foreignHard []dataframe.Column, fx, fy *dataframe.NumericColumn, nForeign int) (lookup func(int) int, groups [][]geoPoint) {
	nHard := len(foreignHard)
	if hashJoinKeys {
		if h := newJoinHasher(baseHard, foreignHard); h != nil {
			index := make(map[uint64]int)
			rep := make([]int, 0, 8) // group -> representative foreign row
			collision := false
			for i := 0; i < nForeign; i++ {
				if fx.IsMissing(i) || fy.IsMissing(i) {
					continue
				}
				hk, ok := h.foreignKey(i)
				if !ok && nHard > 0 {
					continue
				}
				g, seen := index[hk]
				if !seen {
					g = len(groups)
					index[hk] = g
					groups = append(groups, nil)
					rep = append(rep, i)
				} else if !h.eqFF(i, rep[g]) {
					collision = true
					break
				}
				groups[g] = append(groups[g], geoPoint{x: fx.Values[i], y: fy.Values[i], row: i})
			}
			if !collision {
				return func(i int) int {
					hk, ok := h.baseKey(i)
					if !ok && nHard > 0 {
						return -1
					}
					g, seen := index[hk]
					if !seen || !h.eqBF(i, rep[g]) {
						return -1
					}
					return g
				}, groups
			}
			groups = nil
		}
	}
	index := make(map[string]int)
	for i := 0; i < nForeign; i++ {
		if fx.IsMissing(i) || fy.IsMissing(i) {
			continue
		}
		hk, ok := compositeKey(foreignHard, i)
		if !ok && nHard > 0 {
			continue
		}
		g, seen := index[hk]
		if !seen {
			g = len(groups)
			index[hk] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], geoPoint{x: fx.Values[i], y: fy.Values[i], row: i})
	}
	return func(i int) int {
		hk, ok := compositeKey(baseHard, i)
		if !ok && nHard > 0 {
			return -1
		}
		g, seen := index[hk]
		if !seen {
			return -1
		}
		return g
	}, groups
}
