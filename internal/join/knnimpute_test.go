package join

import (
	"math"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
)

func TestKNNImputeNumeric(t *testing.T) {
	// Two tight clusters: a missing value in the low cluster must be filled
	// from low-cluster neighbours, not the global median.
	x := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	v := []float64{1, 1.1, math.NaN(), 9, 9.1, 9.2}
	tab := dataframe.MustNewTable("t",
		dataframe.NewNumeric("x", x),
		dataframe.NewNumeric("v", v),
	)
	filled := KNNImpute(tab, 2)
	if filled != 1 {
		t.Fatalf("filled = %d", filled)
	}
	got := tab.Column("v").(*dataframe.NumericColumn).Values[2]
	if got < 0.9 || got > 1.2 {
		t.Fatalf("cluster-local imputation = %v, want ~1.05 (global median would be ~5)", got)
	}
}

func TestKNNImputeCategorical(t *testing.T) {
	tab := dataframe.MustNewTable("t",
		dataframe.NewNumeric("x", []float64{0, 0.1, 0.2, 10, 10.1}),
		dataframe.NewCategorical("k", []string{"a", "a", "", "b", "b"}),
	)
	filled := KNNImpute(tab, 2)
	if filled != 1 {
		t.Fatalf("filled = %d", filled)
	}
	got, _ := tab.Column("k").(*dataframe.CategoricalColumn).Value(2)
	if got != "a" {
		t.Fatalf("neighbour mode = %q, want a", got)
	}
}

func TestKNNImputeTime(t *testing.T) {
	tab := dataframe.MustNewTable("t",
		dataframe.NewNumeric("x", []float64{0, 0.1, 0.2}),
		dataframe.NewTime("ts", []int64{100, dataframe.MissingTime, 200}),
	)
	filled := KNNImpute(tab, 2)
	if filled != 1 {
		t.Fatalf("filled = %d", filled)
	}
	got := tab.Column("ts").(*dataframe.TimeColumn).Unix[1]
	if got != 150 {
		t.Fatalf("time imputation = %v, want 150", got)
	}
}

func TestKNNImputeEmptyTable(t *testing.T) {
	tab := dataframe.MustNewTable("t", dataframe.NewNumeric("x", nil))
	if filled := KNNImpute(tab, 3); filled != 0 {
		t.Fatalf("filled = %d on empty table", filled)
	}
}
