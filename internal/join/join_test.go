package join

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arda-ml/arda/internal/dataframe"
)

func baseTable() *dataframe.Table {
	return dataframe.MustNewTable("base",
		dataframe.NewCategorical("city", []string{"nyc", "bos", "sfo", "nyc"}),
		dataframe.NewNumeric("x", []float64{1, 2, 3, 4}),
	)
}

func TestHardJoinSingleKey(t *testing.T) {
	base := baseTable()
	foreign := dataframe.MustNewTable("pop",
		dataframe.NewCategorical("city", []string{"nyc", "bos"}),
		dataframe.NewNumeric("population", []float64{8, 0.7}),
	)
	spec := &Spec{Keys: []KeyPair{{BaseColumn: "city", ForeignColumn: "city", Kind: Hard}}}
	res, err := Execute(base, foreign, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 4 {
		t.Fatalf("LEFT join must preserve base rows, got %d", res.Table.NumRows())
	}
	if res.Matched != 3 {
		t.Fatalf("matched = %d, want 3", res.Matched)
	}
	col := res.Table.Column("pop.population").(*dataframe.NumericColumn)
	if col.Values[0] != 8 || col.Values[3] != 8 || col.Values[1] != 0.7 {
		t.Fatalf("joined values = %v", col.Values)
	}
	if !col.IsMissing(2) {
		t.Fatal("unmatched row should be NULL")
	}
	// Foreign key column must not be duplicated into the output.
	if res.Table.HasColumn("pop.city") {
		t.Fatal("join key column leaked into output")
	}
}

func TestHardJoinOneToManyAggregates(t *testing.T) {
	base := baseTable()
	foreign := dataframe.MustNewTable("visits",
		dataframe.NewCategorical("city", []string{"nyc", "nyc", "bos"}),
		dataframe.NewNumeric("count", []float64{10, 20, 5}),
		dataframe.NewCategorical("kind", []string{"a", "a", "b"}),
	)
	spec := &Spec{Keys: []KeyPair{{BaseColumn: "city", ForeignColumn: "city", Kind: Hard}}}
	res, err := Execute(base, foreign, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := res.Table.Column("visits.count").(*dataframe.NumericColumn)
	if col.Values[0] != 15 {
		t.Fatalf("one-to-many should aggregate to mean 15, got %v", col.Values[0])
	}
	kind := res.Table.Column("visits.kind").(*dataframe.CategoricalColumn)
	if v, _ := kind.Value(0); v != "a" {
		t.Fatalf("mode aggregation = %q", v)
	}
}

func TestCompositeKeyJoin(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("a", []string{"x", "x", "y"}),
		dataframe.NewCategorical("b", []string{"1", "2", "1"}),
	)
	foreign := dataframe.MustNewTable("f",
		dataframe.NewCategorical("a", []string{"x", "y"}),
		dataframe.NewCategorical("b", []string{"2", "1"}),
		dataframe.NewNumeric("v", []float64{7, 9}),
	)
	spec := &Spec{Keys: []KeyPair{
		{BaseColumn: "a", ForeignColumn: "a", Kind: Hard},
		{BaseColumn: "b", ForeignColumn: "b", Kind: Hard},
	}}
	res, err := Execute(base, foreign, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Table.Column("f.v").(*dataframe.NumericColumn)
	if !v.IsMissing(0) || v.Values[1] != 7 || v.Values[2] != 9 {
		t.Fatalf("composite join values = %v", v.Values)
	}
}

func TestSoftNearestNeighborJoin(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewNumeric("k", []float64{10, 25, 99}),
	)
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("k", []float64{12, 20, 30}),
		dataframe.NewNumeric("v", []float64{1, 2, 3}),
	)
	spec := &Spec{
		Keys:   []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Soft}},
		Method: NearestNeighbor,
	}
	res, err := Execute(base, foreign, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Table.Column("f.v").(*dataframe.NumericColumn)
	if v.Values[0] != 1 { // 10 → nearest 12
		t.Fatalf("v[0] = %v", v.Values[0])
	}
	if v.Values[1] != 2 && v.Values[1] != 3 { // 25 is equidistant from 20, 30
		t.Fatalf("v[1] = %v", v.Values[1])
	}
	if v.Values[2] != 3 { // 99 → nearest 30
		t.Fatalf("v[2] = %v", v.Values[2])
	}
}

func TestSoftNearestNeighborTolerance(t *testing.T) {
	base := dataframe.MustNewTable("base", dataframe.NewNumeric("k", []float64{100}))
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("k", []float64{10}),
		dataframe.NewNumeric("v", []float64{1}),
	)
	spec := &Spec{
		Keys:      []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Soft}},
		Method:    NearestNeighbor,
		Tolerance: 5,
	}
	res, err := Execute(base, foreign, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Table.Column("f.v").IsMissing(0) {
		t.Fatal("match outside tolerance should be NULL")
	}
	if res.Matched != 0 {
		t.Fatalf("matched = %d", res.Matched)
	}
}

func TestTwoWayNearestInterpolation(t *testing.T) {
	base := dataframe.MustNewTable("base", dataframe.NewNumeric("k", []float64{15, 5, 45}))
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("k", []float64{10, 20, 40}),
		dataframe.NewNumeric("v", []float64{100, 200, 400}),
	)
	spec := &Spec{
		Keys:   []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Soft}},
		Method: TwoWayNearest,
	}
	rng := rand.New(rand.NewSource(1))
	res, err := Execute(base, foreign, spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Table.Column("f.v").(*dataframe.NumericColumn)
	// k=15 between 10 and 20: λ = (20−15)/10 = 0.5 → v = 0.5·100+0.5·200.
	if math.Abs(v.Values[0]-150) > 1e-9 {
		t.Fatalf("interpolated v[0] = %v, want 150", v.Values[0])
	}
	// k=5 below all keys → clamp to the lowest row.
	if v.Values[1] != 100 {
		t.Fatalf("below-range v = %v, want 100", v.Values[1])
	}
	// k=45 above all keys → clamp to the highest row.
	if v.Values[2] != 400 {
		t.Fatalf("above-range v = %v, want 400", v.Values[2])
	}
}

func TestTwoWayExactHit(t *testing.T) {
	base := dataframe.MustNewTable("base", dataframe.NewNumeric("k", []float64{20}))
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("k", []float64{10, 20}),
		dataframe.NewNumeric("v", []float64{1, 2}),
	)
	spec := &Spec{
		Keys:   []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Soft}},
		Method: TwoWayNearest,
	}
	res, err := Execute(base, foreign, spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Column("f.v").(*dataframe.NumericColumn).Values[0]; got != 2 {
		t.Fatalf("exact hit v = %v, want 2", got)
	}
}

func TestMixedCompositeSoftJoin(t *testing.T) {
	// Hard key on city plus soft key on time: each city's series is matched
	// independently.
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("city", []string{"a", "b"}),
		dataframe.NewNumeric("ts", []float64{15, 15}),
	)
	foreign := dataframe.MustNewTable("f",
		dataframe.NewCategorical("city", []string{"a", "a", "b", "b"}),
		dataframe.NewNumeric("ts", []float64{10, 20, 10, 20}),
		dataframe.NewNumeric("v", []float64{1, 3, 5, 7}),
	)
	spec := &Spec{
		Keys: []KeyPair{
			{BaseColumn: "city", ForeignColumn: "city", Kind: Hard},
			{BaseColumn: "ts", ForeignColumn: "ts", Kind: Soft},
		},
		Method: TwoWayNearest,
	}
	res, err := Execute(base, foreign, spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	v := res.Table.Column("f.v").(*dataframe.NumericColumn)
	if math.Abs(v.Values[0]-2) > 1e-9 || math.Abs(v.Values[1]-6) > 1e-9 {
		t.Fatalf("per-group interpolation = %v, want [2 6]", v.Values)
	}
}

func TestSpecValidation(t *testing.T) {
	base := baseTable()
	foreign := dataframe.MustNewTable("f",
		dataframe.NewCategorical("city", []string{"nyc"}),
		dataframe.NewNumeric("v", []float64{1}),
	)
	if err := (&Spec{}).Validate(base, foreign); err == nil {
		t.Fatal("empty key spec should fail validation")
	}
	bad := &Spec{Keys: []KeyPair{{BaseColumn: "city", ForeignColumn: "city", Kind: Soft}}}
	if err := bad.Validate(base, foreign); err == nil {
		t.Fatal("categorical soft key should fail validation")
	}
	missing := &Spec{Keys: []KeyPair{{BaseColumn: "nope", ForeignColumn: "city", Kind: Hard}}}
	if err := missing.Validate(base, foreign); err == nil {
		t.Fatal("missing base column should fail validation")
	}
}

// Property: LEFT join always preserves the base table's row count, whatever
// the foreign content.
func TestJoinPreservesRowsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBase := 1 + rng.Intn(30)
		nForeign := 1 + rng.Intn(30)
		baseKeys := make([]string, nBase)
		for i := range baseKeys {
			baseKeys[i] = string(rune('a' + rng.Intn(6)))
		}
		foreignKeys := make([]string, nForeign)
		vals := make([]float64, nForeign)
		for i := range foreignKeys {
			foreignKeys[i] = string(rune('a' + rng.Intn(8)))
			vals[i] = rng.NormFloat64()
		}
		base := dataframe.MustNewTable("b", dataframe.NewCategorical("k", baseKeys))
		foreign := dataframe.MustNewTable("f",
			dataframe.NewCategorical("k", foreignKeys),
			dataframe.NewNumeric("v", vals),
		)
		spec := &Spec{Keys: []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Hard}}}
		res, err := Execute(base, foreign, spec, rng)
		if err != nil {
			return false
		}
		return res.Table.NumRows() == nBase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidationRejectsInfKeys(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewNumeric("k", []float64{1, 2, 3}),
	)
	foreign := dataframe.MustNewTable("f",
		dataframe.NewNumeric("k", []float64{1, math.Inf(1), 3}),
		dataframe.NewNumeric("v", []float64{10, 20, 30}),
	)
	spec := &Spec{Keys: []KeyPair{{BaseColumn: "k", ForeignColumn: "k", Kind: Hard}}}
	err := spec.Validate(base, foreign)
	var kve *KeyValueError
	if !errors.As(err, &kve) || kve.Table != "f" || kve.Column != "k" || kve.Row != 1 {
		t.Fatalf("Validate = %v, want KeyValueError at f.k row 1", err)
	}
	// Execute goes through Validate, so the bad candidate errors instead of
	// hashing Inf into the key plane.
	if _, err := Execute(base, foreign, spec, nil); err == nil {
		t.Fatal("Execute accepted an Inf join key")
	}
	// NaN keys are legitimate: they are the missing-value encoding and the
	// affected rows simply do not match.
	nan := dataframe.MustNewTable("f2",
		dataframe.NewNumeric("k", []float64{1, math.NaN(), 3}),
		dataframe.NewNumeric("v", []float64{10, 20, 30}),
	)
	if err := spec.Validate(base, nan); err != nil {
		t.Fatalf("NaN key rejected: %v", err)
	}
}

// TestAggregateDuplicateColumnsError: a foreign table whose aggregation
// would rebuild duplicate column names must surface an error, not a panic.
func TestAggregateDuplicateColumnsError(t *testing.T) {
	// Tables can't normally hold duplicates, so aggregate a legitimate table
	// and confirm the non-panicking path end-to-end instead.
	foreign := dataframe.MustNewTable("f",
		dataframe.NewCategorical("city", []string{"nyc", "nyc", "bos"}),
		dataframe.NewNumeric("v", []float64{1, 3, 5}),
	)
	agg, err := AggregateByKey(foreign, []string{"city"})
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumRows() != 2 {
		t.Fatalf("aggregated rows = %d, want 2", agg.NumRows())
	}
}
