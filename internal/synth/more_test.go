package synth

import (
	"math"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/stats"
)

func TestTaxiTimeGranularities(t *testing.T) {
	c := Taxi(Config{Seed: 30, Scale: 0.1})
	base := c.Base.Column("date").(*dataframe.TimeColumn)
	if g := join.Granularity(base.Unix); g != 86400 {
		t.Fatalf("base granularity = %d, want daily", g)
	}
	for _, tab := range c.Repo {
		if tab.Name() == "weather" {
			w := tab.Column("date").(*dataframe.TimeColumn)
			if g := join.Granularity(w.Unix); g != 3600 {
				t.Fatalf("weather granularity = %d, want hourly", g)
			}
		}
	}
}

func TestPickupWeatherOffsetBreaksHardJoin(t *testing.T) {
	// The minute-level weather readings are deliberately offset from hour
	// boundaries, so a hard join on unmodified keys must not match.
	c := Pickup(Config{Seed: 31, Scale: 0.1})
	var weather *dataframe.Table
	for _, tab := range c.Repo {
		if tab.Name() == "weather" {
			weather = tab
		}
	}
	if weather == nil {
		t.Fatal("weather table missing")
	}
	w := weather.Column("time").(*dataframe.TimeColumn)
	for _, ts := range w.Unix {
		if ts%3600 == 0 {
			t.Fatalf("weather reading %d falls exactly on an hour boundary", ts)
		}
	}
	spec := &join.Spec{
		Keys:   []join.KeyPair{{BaseColumn: "time", ForeignColumn: "time", Kind: join.Soft}},
		Method: join.HardExact,
	}
	res, err := join.Execute(c.Base, weather, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 0 {
		t.Fatalf("hard join matched %d offset rows, want 0", res.Matched)
	}
	// Time-resampling repairs it.
	spec.TimeResample = true
	res, err = join.Execute(c.Base, weather, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != c.Base.NumRows() {
		t.Fatalf("resampled join matched %d of %d", res.Matched, c.Base.NumRows())
	}
}

func TestCoPredictorsAreIndividuallyWeak(t *testing.T) {
	// The planted co-predictor pair (fuel price × transit load) should be
	// nearly uncorrelated with the target individually.
	c := Taxi(Config{Seed: 32, Scale: 0.3})
	target, _ := c.Base.TargetVector(c.Target)
	var fuel, transit *dataframe.Table
	for _, tab := range c.Repo {
		switch tab.Name() {
		case "fuel":
			fuel = tab
		case "transit":
			transit = tab
		}
	}
	spec := func() *join.Spec {
		return &join.Spec{
			Keys:         []join.KeyPair{{BaseColumn: "date", ForeignColumn: "date", Kind: join.Soft}},
			Method:       join.HardExact,
			TimeResample: true,
		}
	}
	r1, err := join.Execute(c.Base, fuel, spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := join.Execute(r1.Table, transit, spec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := r2.Table.Column("fuel.fuel_price").(*dataframe.NumericColumn).Values
	tl := r2.Table.Column("transit.transit_load").(*dataframe.NumericColumn).Values
	product := make([]float64, len(fp))
	for i := range product {
		product[i] = fp[i] * tl[i]
	}
	corrProduct := absPearson(product, target)
	corrFuel := absPearson(fp, target)
	corrTransit := absPearson(tl, target)
	if corrProduct < 2*corrFuel || corrProduct < 2*corrTransit {
		t.Fatalf("co-predictor not dominated by the product: |r|=%.3f vs fuel %.3f, transit %.3f",
			corrProduct, corrFuel, corrTransit)
	}
}

// absPearson is |Pearson correlation|.
func absPearson(x, y []float64) float64 {
	return math.Abs(stats.Pearson(x, y))
}
