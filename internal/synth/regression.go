package synth

import (
	"fmt"
	"math"

	"math/rand"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/ml"
)

// Taxi generates the vehicle-collision regression corpus (paper §7.1: NYC
// Open Data base table + 29 joinable tables found via Auctus). The base has
// one row per (day, borough); the target depends on daily weather (stored at
// hourly granularity — exercising time resampling), city events, per-borough
// statistics, and a cross-table co-predictor pair (fuel price × transit
// load).
func Taxi(cfg Config) *Corpus {
	rng := cfg.rng()
	days := cfg.scale(365)
	boroughs := []string{"bronx", "brooklyn", "manhattan", "queens", "staten-island"}
	times := dailyTimes(days)

	// Planted daily signals.
	tempDay := addVec(seasonal(days, 365, 10, 0), smoothSeries(rng, days, 3))
	precipDay := make([]float64, days)
	precipSeries := smoothSeries(rng, days, 1.5)
	for i := range precipDay {
		precipDay[i] = maxf(precipSeries[i], 0)
	}
	attendance := make([]float64, days)
	for i := range attendance {
		attendance[i] = 500 + 1500*rng.Float64()
	}
	fuelPrice := smoothSeries(rng, days, 2)
	transitLoad := smoothSeries(rng, days, 2)
	population := map[string]float64{}
	roadMiles := map[string]float64{}
	for _, b := range boroughs {
		population[b] = 4e5 + rng.Float64()*2e6
		roadMiles[b] = 500 + rng.Float64()*1500
	}

	// Base table: one row per (day, borough).
	n := days * len(boroughs)
	date := make([]int64, n)
	borough := make([]string, n)
	patrols := make([]float64, n)
	roadClosures := make([]float64, n)
	target := make([]float64, n)
	r := 0
	for d := 0; d < days; d++ {
		weekday := float64((d % 7))
		weekdayEffect := 5 * math.Sin(2*math.Pi*weekday/7)
		for _, b := range boroughs {
			date[r] = times[d]
			borough[r] = b
			patrols[r] = 20 + 10*rng.Float64()
			roadClosures[r] = float64(rng.Intn(6))
			target[r] = 120 +
				0.9*patrols[r] +
				2.2*tempDay[d] -
				9*precipDay[d] +
				0.015*attendance[d] +
				4e-5*population[b] +
				1.8*fuelPrice[d]*transitLoad[d] +
				weekdayEffect +
				6*rng.NormFloat64()
			r++
		}
	}
	base := dataframe.MustNewTable("taxi",
		dataframe.NewTime("date", date),
		dataframe.NewCategorical("borough", borough),
		dataframe.NewNumeric("patrols", patrols),
		dataframe.NewNumeric("road_closures", roadClosures),
		dataframe.NewNumeric("collisions", target),
	)

	c := &Corpus{
		Name:           "taxi",
		Base:           base,
		Target:         "collisions",
		Task:           ml.Regression,
		RelevantTables: map[string]bool{},
	}

	// Relevant table 1: hourly weather (finer granularity than the base —
	// the join must resample it back to days).
	c.addRelevant(weatherHourly(rng, "weather", times, tempDay, precipDay))
	// Relevant table 2: daily city events.
	events := dataframe.MustNewTable("city_events",
		dataframe.NewTime("date", append([]int64{}, times...)),
		dataframe.NewNumeric("attendance", append([]float64{}, attendance...)),
	)
	noiseColumns(events, rng, 2, "event_stat")
	c.addRelevant(events)
	// Relevant table 3: per-borough statistics (hard categorical key).
	binfo := dataframe.MustNewTable("borough_info",
		dataframe.NewCategorical("borough", append([]string{}, boroughs...)),
		dataframe.NewNumeric("population", perKey(boroughs, population)),
		dataframe.NewNumeric("road_miles", perKey(boroughs, roadMiles)),
	)
	c.addRelevant(binfo)
	// Relevant tables 4 & 5: the co-predictor pair — individually weak,
	// jointly predictive.
	fuel := dataframe.MustNewTable("fuel",
		dataframe.NewTime("date", append([]int64{}, times...)),
		dataframe.NewNumeric("fuel_price", append([]float64{}, fuelPrice...)),
	)
	noiseColumns(fuel, rng, 1, "fuel_stat")
	c.addRelevant(fuel)
	transit := dataframe.MustNewTable("transit",
		dataframe.NewTime("date", append([]int64{}, times...)),
		dataframe.NewNumeric("transit_load", append([]float64{}, transitLoad...)),
	)
	noiseColumns(transit, rng, 1, "transit_stat")
	c.addRelevant(transit)

	// 24 irrelevant joinable tables + a few fully unrelated ones.
	for i := 0; i < 12; i++ {
		c.Repo = append(c.Repo, noiseTableTime(rng, fmt.Sprintf("open_data_%02d", i), "date", times, 2+rng.Intn(4)))
	}
	for i := 0; i < 12; i++ {
		c.Repo = append(c.Repo, noiseTableID(rng, fmt.Sprintf("city_table_%02d", i), "borough", boroughs, 2+rng.Intn(4)))
	}
	for i := 0; i < 3; i++ {
		c.Repo = append(c.Repo, unrelatedTable(rng, fmt.Sprintf("misc_%02d", i), 200, 3))
	}
	return c
}

// Pickup generates the hourly airport-pickup regression corpus (paper §7.1:
// LGA Yellow-cab pickups, Jan–Jun 2018, 23 joinable tables). The base is an
// hourly series; foreign tables live at hourly, minute (finer — resampled)
// and daily (coarser — matched by soft join) granularity, plus an hourly
// co-predictor pair (average fare × congestion).
func Pickup(cfg Config) *Corpus {
	rng := cfg.rng()
	days := cfg.scale(120)
	hours := days * 24
	times := make([]int64, hours)
	for i := range times {
		times[i] = epoch2018 + int64(i)*3600
	}

	arrivals := make([]float64, hours)
	tempHour := addVec(seasonal(hours, 24, 4, 0), smoothSeries(rng, hours, 2))
	precipHour := smoothSeries(rng, hours, 1)
	fare := smoothSeries(rng, hours, 1.5)
	congestion := smoothSeries(rng, hours, 1.5)
	attendanceDay := make([]float64, days)
	for d := range attendanceDay {
		attendanceDay[d] = 400 + 1600*rng.Float64()
	}
	for t := range arrivals {
		hod := t % 24
		arrivals[t] = 800 + 600*math.Sin(2*math.Pi*float64(hod)/24) + 120*rng.NormFloat64()
		if arrivals[t] < 0 {
			arrivals[t] = 0
		}
	}

	target := make([]float64, hours)
	weak := make([]float64, hours)
	for t := 0; t < hours; t++ {
		hod := float64(t % 24)
		weak[t] = rng.NormFloat64() * 2
		target[t] = 80 +
			0.04*arrivals[t] +
			1.5*tempHour[t] -
			6*maxf(precipHour[t], 0) +
			0.008*attendanceDay[t/24] +
			1.2*fare[t]*congestion[t] +
			10*math.Sin(2*math.Pi*hod/24) +
			0.3*weak[t] +
			4*rng.NormFloat64()
	}
	base := dataframe.MustNewTable("pickup",
		dataframe.NewTime("time", append([]int64{}, times...)),
		dataframe.NewNumeric("staff_on_shift", weak),
		dataframe.NewNumeric("pickups", target),
	)
	c := &Corpus{
		Name:           "pickup",
		Base:           base,
		Target:         "pickups",
		Task:           ml.Regression,
		RelevantTables: map[string]bool{},
	}

	// Relevant: hourly flight arrivals (same granularity).
	fl := dataframe.MustNewTable("flights",
		dataframe.NewTime("time", append([]int64{}, times...)),
		dataframe.NewNumeric("arrivals", append([]float64{}, arrivals...)),
	)
	noiseColumns(fl, rng, 2, "flight_stat")
	c.addRelevant(fl)
	// Relevant: minute-granularity weather (finer — must resample).
	c.addRelevant(weatherMinutes(rng, "weather", times, tempHour, precipHour))
	// Relevant: daily events (coarser — soft join matches nearest day).
	dayTimes := dailyTimes(days)
	ev := dataframe.MustNewTable("events",
		dataframe.NewTime("time", append([]int64{}, dayTimes...)),
		dataframe.NewNumeric("attendance", append([]float64{}, attendanceDay...)),
	)
	c.addRelevant(ev)
	// Relevant co-predictor pair.
	fares := dataframe.MustNewTable("fares",
		dataframe.NewTime("time", append([]int64{}, times...)),
		dataframe.NewNumeric("avg_fare", append([]float64{}, fare...)),
	)
	c.addRelevant(fares)
	cong := dataframe.MustNewTable("congestion",
		dataframe.NewTime("time", append([]int64{}, times...)),
		dataframe.NewNumeric("congestion_index", append([]float64{}, congestion...)),
	)
	c.addRelevant(cong)

	for i := 0; i < 16; i++ {
		c.Repo = append(c.Repo, noiseTableTime(rng, fmt.Sprintf("feed_%02d", i), "time", times, 2+rng.Intn(3)))
	}
	for i := 0; i < 2; i++ {
		c.Repo = append(c.Repo, unrelatedTable(rng, fmt.Sprintf("misc_%02d", i), 300, 3))
	}
	return c
}

// Poverty generates the county socio-economic regression corpus (paper §7.1:
// poverty indicators across US counties, 39 joinable tables). Joins are hard
// categorical keys at two levels (county and state), including a cross-level
// co-predictor (county manufacturing share × state tariff exposure).
func Poverty(cfg Config) *Corpus {
	rng := cfg.rng()
	counties := cfg.scale(1500)
	states := 50
	countyIDs := idStrings("county", counties)
	stateIDs := idStrings("state", states)

	countyState := make([]string, counties)
	unemployment := make([]float64, counties)
	collegeRate := make([]float64, counties)
	hsRate := make([]float64, counties)
	manufacturing := make([]float64, counties)
	for i := 0; i < counties; i++ {
		countyState[i] = stateIDs[rng.Intn(states)]
		unemployment[i] = 3 + 6*rng.Float64()
		collegeRate[i] = 0.15 + 0.4*rng.Float64()
		hsRate[i] = 0.6 + 0.35*rng.Float64()
		manufacturing[i] = rng.Float64() * 0.5
	}
	gdpGrowth := make([]float64, states)
	tariffExposure := make([]float64, states)
	minWage := make([]float64, states)
	for s := 0; s < states; s++ {
		gdpGrowth[s] = -1 + 5*rng.Float64()
		tariffExposure[s] = rng.Float64() * 2
		minWage[s] = 7 + 8*rng.Float64()
	}
	stateIdx := map[string]int{}
	for s, id := range stateIDs {
		stateIdx[id] = s
	}

	population := make([]float64, counties)
	target := make([]float64, counties)
	for i := 0; i < counties; i++ {
		s := stateIdx[countyState[i]]
		population[i] = 1e4 + rng.Float64()*9e5
		target[i] = 14 -
			22*(collegeRate[i]-0.3) +
			1.6*unemployment[i] -
			0.9*gdpGrowth[s] +
			7*manufacturing[i]*tariffExposure[s] -
			2e-6*population[i] +
			1.2*rng.NormFloat64()
	}
	base := dataframe.MustNewTable("poverty",
		dataframe.NewCategorical("county_id", append([]string{}, countyIDs...)),
		dataframe.NewCategorical("state", append([]string{}, countyState...)),
		dataframe.NewNumeric("population", population),
		dataframe.NewNumeric("poverty_rate", target),
	)
	c := &Corpus{
		Name:           "poverty",
		Base:           base,
		Target:         "poverty_rate",
		Task:           ml.Regression,
		RelevantTables: map[string]bool{},
	}

	un := dataframe.MustNewTable("unemployment",
		dataframe.NewCategorical("county_id", append([]string{}, countyIDs...)),
		dataframe.NewNumeric("unemployment_rate", unemployment),
	)
	noiseColumns(un, rng, 2, "labor_stat")
	c.addRelevant(un)
	edu := dataframe.MustNewTable("education",
		dataframe.NewCategorical("county_id", append([]string{}, countyIDs...)),
		dataframe.NewNumeric("college_rate", collegeRate),
		dataframe.NewNumeric("hs_grad_rate", hsRate),
	)
	c.addRelevant(edu)
	econ := dataframe.MustNewTable("state_economy",
		dataframe.NewCategorical("state", append([]string{}, stateIDs...)),
		dataframe.NewNumeric("gdp_growth", gdpGrowth),
		dataframe.NewNumeric("min_wage", minWage),
	)
	c.addRelevant(econ)
	ind := dataframe.MustNewTable("industry",
		dataframe.NewCategorical("county_id", append([]string{}, countyIDs...)),
		dataframe.NewNumeric("manufacturing_share", manufacturing),
	)
	c.addRelevant(ind)
	trade := dataframe.MustNewTable("trade",
		dataframe.NewCategorical("state", append([]string{}, stateIDs...)),
		dataframe.NewNumeric("tariff_exposure", tariffExposure),
	)
	c.addRelevant(trade)

	for i := 0; i < 22; i++ {
		c.Repo = append(c.Repo, noiseTableID(rng, fmt.Sprintf("census_%02d", i), "county_id", countyIDs, 2+rng.Intn(4)))
	}
	for i := 0; i < 12; i++ {
		c.Repo = append(c.Repo, noiseTableID(rng, fmt.Sprintf("state_table_%02d", i), "state", stateIDs, 2+rng.Intn(3)))
	}
	for i := 0; i < 3; i++ {
		c.Repo = append(c.Repo, unrelatedTable(rng, fmt.Sprintf("misc_%02d", i), 250, 3))
	}
	return c
}

// addRelevant registers a repo table carrying planted signal.
func (c *Corpus) addRelevant(t *dataframe.Table) {
	c.Repo = append(c.Repo, t)
	c.RelevantTables[t.Name()] = true
}

// weatherHourly expands daily weather signals into an hourly table (24 rows
// per day with small intra-day noise), forcing the join layer to resample.
func weatherHourly(rng *rand.Rand, name string, dayStarts []int64, tempDay, precipDay []float64) *dataframe.Table {
	n := len(dayStarts) * 24
	unix := make([]int64, n)
	temp := make([]float64, n)
	precip := make([]float64, n)
	wind := make([]float64, n)
	r := 0
	for d, start := range dayStarts {
		for h := 0; h < 24; h++ {
			unix[r] = start + int64(h)*3600
			temp[r] = tempDay[d] + rng.NormFloat64()*0.8
			p := precipDay[d] + rng.NormFloat64()*0.2
			if p < 0 {
				p = 0
			}
			precip[r] = p
			wind[r] = 5 + rng.Float64()*20
			r++
		}
	}
	return dataframe.MustNewTable(name,
		dataframe.NewTime("date", unix),
		dataframe.NewNumeric("temp", temp),
		dataframe.NewNumeric("precip", precip),
		dataframe.NewNumeric("wind", wind),
	)
}

// weatherMinutes expands hourly weather into a minute-granularity table
// (sampling every 10 minutes to bound size). Readings are offset from the
// hour boundary — like real sensor feeds — so a hard join on unmodified keys
// finds no exact matches and loses the signal (the paper's Figure 5 setup).
func weatherMinutes(rng *rand.Rand, name string, hourStarts []int64, tempHour, precipHour []float64) *dataframe.Table {
	per := 6 // every 10 minutes
	n := len(hourStarts) * per
	unix := make([]int64, n)
	temp := make([]float64, n)
	precip := make([]float64, n)
	r := 0
	for h, start := range hourStarts {
		for m := 0; m < per; m++ {
			unix[r] = start + int64(m)*600 + 300
			temp[r] = tempHour[h] + rng.NormFloat64()*0.3
			p := precipHour[h] + rng.NormFloat64()*0.1
			if p < 0 {
				p = 0
			}
			precip[r] = p
			r++
		}
	}
	return dataframe.MustNewTable(name,
		dataframe.NewTime("time", unix),
		dataframe.NewNumeric("temp", temp),
		dataframe.NewNumeric("precip", precip),
	)
}

// perKey maps ordered keys through a value map into a column slice.
func perKey(keys []string, vals map[string]float64) []float64 {
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = vals[k]
	}
	return out
}

// maxf returns the larger of a and b.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
