// Package synth generates the synthetic evaluation corpora that substitute
// for the paper's real-world datasets (Taxi, Pickup, Poverty, School S/L
// from NYC Open Data / DARPA D3M, plus the Kraken and Digits micro
// benchmarks). Each corpus is a base table with a prediction target and a
// repository of joinable candidate tables in which a known subset carries
// planted signal — the target is a function of features reachable only
// through the right joins — while the rest are irrelevant or only
// coincidentally joinable, exactly the noisy-discovery regime ARDA is
// designed for. The plant includes cross-table co-predictors (features
// useful only in combination), which drive the paper's Table 5 results.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/ml"
)

// Corpus is a generated benchmark dataset: a base table, its prediction
// target, and a repository of candidate tables.
type Corpus struct {
	// Name identifies the corpus ("taxi", "pickup", …).
	Name string
	// Base is the user's base table.
	Base *dataframe.Table
	// Target is the prediction column in Base.
	Target string
	// Task is the learning task implied by the target.
	Task ml.Task
	// Classes is the number of classes for classification corpora.
	Classes int
	// Repo is the data repository the discovery system searches.
	Repo []*dataframe.Table
	// RelevantTables is the ground-truth set of repo table names that carry
	// planted signal (used only for analysis, never by the pipeline).
	RelevantTables map[string]bool
}

// Config controls corpus generation.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Scale multiplies row counts (default 1.0); benchmarks use < 1 for
	// speed.
	Scale float64
}

func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	out := int(float64(n) * s)
	if out < 16 {
		out = 16
	}
	return out
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// day is one day in seconds.
const day = int64(86400)

// epoch2018 is 2018-01-01T00:00:00Z, the start of the synthetic timelines.
const epoch2018 = int64(1514764800)

// dailyTimes returns n consecutive daily timestamps.
func dailyTimes(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = epoch2018 + int64(i)*day
	}
	return out
}

// smoothSeries generates a zero-mean AR(1) series of length n with the given
// amplitude — a cheap stand-in for weather-like signals.
func smoothSeries(rng *rand.Rand, n int, amplitude float64) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v = 0.92*v + rng.NormFloat64()*0.4
		out[i] = v * amplitude
	}
	return out
}

// seasonal returns amplitude·sin(2π·i/period + phase) for i in [0, n).
func seasonal(n int, period, amplitude, phase float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amplitude * math.Sin(2*math.Pi*float64(i)/period+phase)
	}
	return out
}

// addVec returns the element-wise sum of the given equal-length series.
func addVec(series ...[]float64) []float64 {
	out := make([]float64, len(series[0]))
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// idStrings returns n ids "prefix-0000".."prefix-n-1".
func idStrings(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%04d", prefix, i)
	}
	return out
}

// noiseColumns appends k random numeric columns named like real attributes.
func noiseColumns(t *dataframe.Table, rng *rand.Rand, k int, nameSeed string) {
	n := t.NumRows()
	for j := 0; j < k; j++ {
		vals := make([]float64, n)
		scale := math.Exp(rng.NormFloat64())
		off := rng.NormFloat64() * 10
		for i := range vals {
			vals[i] = off + scale*rng.NormFloat64()
		}
		name := fmt.Sprintf("%s_%d", nameSeed, j)
		if err := t.AddColumn(dataframe.NewNumeric(name, vals)); err != nil {
			panic(err)
		}
	}
}

// noiseTableTime builds an irrelevant table keyed by a time column that
// overlaps the base timeline, with k random feature columns.
func noiseTableTime(rng *rand.Rand, name, keyName string, times []int64, k int) *dataframe.Table {
	// Subsample and jitter the timeline so containment is partial.
	rows := len(times) * (60 + rng.Intn(40)) / 100
	idx := rng.Perm(len(times))[:rows]
	unix := make([]int64, rows)
	for i, p := range idx {
		unix[i] = times[p]
	}
	t := dataframe.MustNewTable(name, dataframe.NewTime(keyName, unix))
	noiseColumns(t, rng, k, "metric")
	return t
}

// noiseTableID builds an irrelevant table keyed by a categorical id column
// drawn from ids (possibly partially overlapping), with k random features.
func noiseTableID(rng *rand.Rand, name, keyName string, ids []string, k int) *dataframe.Table {
	rows := len(ids) * (50 + rng.Intn(50)) / 100
	if rows < 4 {
		rows = len(ids)
	}
	idx := rng.Perm(len(ids))[:rows]
	vals := make([]string, rows)
	for i, p := range idx {
		vals[i] = ids[p]
	}
	t := dataframe.MustNewTable(name, dataframe.NewCategorical(keyName, vals))
	noiseColumns(t, rng, k, "stat")
	return t
}

// unrelatedTable builds a table that shares no keys with the base — pure
// repository noise that discovery should mostly skip.
func unrelatedTable(rng *rand.Rand, name string, rows, k int) *dataframe.Table {
	ids := make([]string, rows)
	for i := range ids {
		ids[i] = fmt.Sprintf("x%06d", rng.Intn(1<<30))
	}
	t := dataframe.MustNewTable(name, dataframe.NewCategorical("code", ids))
	noiseColumns(t, rng, k, "value")
	return t
}

// classify buckets a latent continuous score into k quantile classes
// ("grade-0".."grade-k-1").
func classify(latent []float64, k int, rng *rand.Rand) []string {
	sorted := append([]float64{}, latent...)
	// insertion of small noise prevents exact-tie pathologies at the cuts.
	for i := range sorted {
		sorted[i] += rng.NormFloat64() * 1e-9
	}
	tmp := append([]float64{}, sorted...)
	sort.Float64s(tmp)
	cuts := make([]float64, k-1)
	for c := 1; c < k; c++ {
		cuts[c-1] = tmp[c*len(tmp)/k]
	}
	out := make([]string, len(latent))
	for i, v := range latent {
		g := 0
		for g < k-1 && v >= cuts[g] {
			g++
		}
		out[i] = fmt.Sprintf("grade-%d", g)
	}
	return out
}

// mustAdd panics on AddColumn errors (generator shapes are static).
func mustAdd(t *dataframe.Table, c dataframe.Column) {
	if err := t.AddColumn(c); err != nil {
		panic(err)
	}
}
