package synth

import (
	"math"
	"math/rand"
	"sort"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/stats"
)

// Kraken generates the supercomputer-failure micro benchmark (paper §7.2):
// ~1000 samples of anonymized sensor/usage statistics with binary labels
// split 568/432, a noisy nonlinear decision boundary, and many weak or dead
// sensor channels. Only a subset of features carries signal — the benchmark
// measures how well selectors filter appended noise.
func Kraken(cfg Config) *ml.Dataset {
	rng := cfg.rng()
	n := 1000
	d := 56 // 12 informative sensors, 44 dead/weak channels
	x := make([]float64, n*d)
	latent := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] = rng.NormFloat64()
		}
		// Failure risk: thermal overload (nonlinear), load×fan interaction,
		// error-count drift, plus noise.
		latent[i] = 1.4*row[0]*row[0] +
			1.1*row[1]*row[2] +
			0.9*row[3] -
			0.8*row[4] +
			0.7*math.Abs(row[5]) +
			0.6*row[6]*row[7] +
			0.5*(row[8]+row[9]+row[10]+row[11]) +
			0.8*rng.NormFloat64()
	}
	// Threshold so 432 samples are positive (the paper's 568/432 split).
	sorted := append([]float64{}, latent...)
	sort.Float64s(sorted)
	cut := sorted[568]
	y := make([]float64, n)
	for i, v := range latent {
		if v >= cut {
			y[i] = 1
		}
	}
	ds, err := ml.NewDataset(x, n, d, y, ml.Classification, 2)
	if err != nil {
		panic(err)
	}
	return ds
}

// Digits generates the handwritten-digits micro benchmark substitute:
// 10 anisotropic Gaussian clusters in 64 dimensions with ~180 samples per
// class, quantized to the 0–16 intensity range of the sklearn original.
func Digits(cfg Config) *ml.Dataset {
	rng := cfg.rng()
	classes := 10
	perClass := 180
	d := 64
	n := classes * perClass
	// Per-class mean pattern and per-dimension spread.
	means := make([][]float64, classes)
	spreads := make([][]float64, classes)
	for k := 0; k < classes; k++ {
		means[k] = make([]float64, d)
		spreads[k] = make([]float64, d)
		for j := 0; j < d; j++ {
			means[k][j] = rng.Float64() * 16
			spreads[k][j] = 0.5 + 2.5*rng.Float64()
		}
	}
	x := make([]float64, n*d)
	y := make([]float64, n)
	r := 0
	for k := 0; k < classes; k++ {
		for s := 0; s < perClass; s++ {
			row := x[r*d : (r+1)*d]
			for j := 0; j < d; j++ {
				v := means[k][j] + spreads[k][j]*rng.NormFloat64()
				// Quantize and clamp to the 0–16 intensity range.
				v = math.Round(v)
				if v < 0 {
					v = 0
				}
				if v > 16 {
					v = 16
				}
				row[j] = v
			}
			y[r] = float64(k)
			r++
		}
	}
	ds, err := ml.NewDataset(x, n, d, y, ml.Classification, classes)
	if err != nil {
		panic(err)
	}
	return ds
}

// InjectNoise appends factor×d synthetic noise columns drawn from standard
// distributions with randomly-initialized parameters (the paper's extreme
// noise regime uses factor 10). It returns the augmented dataset and a mask
// marking which columns are original.
func InjectNoise(ds *ml.Dataset, factor int, seed int64) (*ml.Dataset, []bool) {
	rng := rand.New(rand.NewSource(seed))
	t := factor * ds.D
	d2 := ds.D + t
	x := make([]float64, ds.N*d2)
	for i := 0; i < ds.N; i++ {
		copy(x[i*d2:], ds.Row(i))
	}
	for c := 0; c < t; c++ {
		dist := stats.Distribution(rng.Intn(4))
		col := stats.SampleColumn(dist, ds.N, rng)
		for i := 0; i < ds.N; i++ {
			x[i*d2+ds.D+c] = col[i]
		}
	}
	out, err := ml.NewDataset(x, ds.N, d2, ds.Y, ds.Task, ds.Classes)
	if err != nil {
		panic(err)
	}
	mask := make([]bool, d2)
	for j := 0; j < ds.D; j++ {
		mask[j] = true
	}
	return out, mask
}
