package synth

import (
	"fmt"
	"math/rand"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/ml"
)

// schoolCorpus builds the school-performance classification corpus with the
// requested number of irrelevant joinable tables. The target is a 3-class
// grade derived from a latent score whose inputs live in foreign tables at
// two key levels (school and district), including a cross-level co-predictor
// (tutoring hours × district volunteer index).
func schoolCorpus(name string, cfg Config, noiseTables int) *Corpus {
	rng := cfg.rng()
	schools := cfg.scale(1600)
	districts := 80
	schoolIDs := idStrings("school", schools)
	districtIDs := idStrings("district", districts)

	schoolDistrict := make([]string, schools)
	avgExperience := make([]float64, schools)
	certifiedRate := make([]float64, schools)
	freeLunchRate := make([]float64, schools)
	eslRate := make([]float64, schools)
	tutoringHours := make([]float64, schools)
	enrollment := make([]float64, schools)
	ratio := make([]float64, schools)
	for i := 0; i < schools; i++ {
		schoolDistrict[i] = districtIDs[rng.Intn(districts)]
		avgExperience[i] = 2 + 18*rng.Float64()
		certifiedRate[i] = 0.5 + 0.5*rng.Float64()
		freeLunchRate[i] = rng.Float64()
		eslRate[i] = rng.Float64() * 0.4
		tutoringHours[i] = rng.Float64() * 4
		enrollment[i] = 100 + 1900*rng.Float64()
		ratio[i] = 10 + 20*rng.Float64()
	}
	funding := make([]float64, districts)
	volunteer := make([]float64, districts)
	for d := 0; d < districts; d++ {
		funding[d] = 6000 + 12000*rng.Float64()
		volunteer[d] = rng.Float64() * 3
	}
	districtIdx := map[string]int{}
	for d, id := range districtIDs {
		districtIdx[id] = d
	}

	latent := make([]float64, schools)
	for i := 0; i < schools; i++ {
		d := districtIdx[schoolDistrict[i]]
		latent[i] = 2*avgExperience[i] +
			20*certifiedRate[i] -
			25*freeLunchRate[i] +
			0.002*funding[d] +
			4*tutoringHours[i]*volunteer[d] -
			0.3*ratio[i] +
			3*rng.NormFloat64()
	}
	grades := classify(latent, 3, rng)

	base := dataframe.MustNewTable(name,
		dataframe.NewCategorical("school_id", append([]string{}, schoolIDs...)),
		dataframe.NewCategorical("district", append([]string{}, schoolDistrict...)),
		dataframe.NewNumeric("enrollment", enrollment),
		dataframe.NewNumeric("student_teacher_ratio", ratio),
		dataframe.NewCategorical("performance", grades),
	)
	c := &Corpus{
		Name:           name,
		Base:           base,
		Target:         "performance",
		Task:           ml.Classification,
		Classes:        3,
		RelevantTables: map[string]bool{},
	}

	teachers := dataframe.MustNewTable("teacher_stats",
		dataframe.NewCategorical("school_id", append([]string{}, schoolIDs...)),
		dataframe.NewNumeric("avg_experience", avgExperience),
		dataframe.NewNumeric("certified_rate", certifiedRate),
	)
	c.addRelevant(teachers)
	demo := dataframe.MustNewTable("demographics",
		dataframe.NewCategorical("school_id", append([]string{}, schoolIDs...)),
		dataframe.NewNumeric("free_lunch_rate", freeLunchRate),
		dataframe.NewNumeric("esl_rate", eslRate),
	)
	c.addRelevant(demo)
	fundingT := dataframe.MustNewTable("district_funding",
		dataframe.NewCategorical("district", append([]string{}, districtIDs...)),
		dataframe.NewNumeric("per_pupil_funding", funding),
	)
	c.addRelevant(fundingT)
	programs := dataframe.MustNewTable("programs",
		dataframe.NewCategorical("school_id", append([]string{}, schoolIDs...)),
		dataframe.NewNumeric("tutoring_hours", tutoringHours),
	)
	c.addRelevant(programs)
	community := dataframe.MustNewTable("community",
		dataframe.NewCategorical("district", append([]string{}, districtIDs...)),
		dataframe.NewNumeric("volunteer_index", volunteer),
	)
	c.addRelevant(community)

	addSchoolNoise(c, rng, noiseTables, schoolIDs, districtIDs)
	return c
}

// addSchoolNoise appends irrelevant joinable tables keyed by school or
// district, plus a small number of unrelated tables.
func addSchoolNoise(c *Corpus, rng *rand.Rand, count int, schoolIDs, districtIDs []string) {
	for i := 0; i < count; i++ {
		switch i % 3 {
		case 0, 1:
			c.Repo = append(c.Repo, noiseTableID(rng, fmt.Sprintf("edu_table_%03d", i), "school_id", schoolIDs, 2+rng.Intn(3)))
		default:
			c.Repo = append(c.Repo, noiseTableID(rng, fmt.Sprintf("district_table_%03d", i), "district", districtIDs, 2+rng.Intn(3)))
		}
	}
	for i := 0; i < 2; i++ {
		c.Repo = append(c.Repo, unrelatedTable(rng, fmt.Sprintf("misc_%02d", i), 200, 3))
	}
}

// SchoolS generates the small school corpus (paper: base + 16 joinable
// tables from the DataMart API).
func SchoolS(cfg Config) *Corpus { return schoolCorpus("school-s", cfg, 11) }

// SchoolL generates the large school corpus (paper: base + 350 joinable
// tables) — the stress test for join planning and table filtering.
func SchoolL(cfg Config) *Corpus { return schoolCorpus("school-l", cfg, 345) }
