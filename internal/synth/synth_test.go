package synth

import (
	"testing"

	"github.com/arda-ml/arda/internal/ml"
)

func checkCorpus(t *testing.T, c *Corpus, wantRepoMin int) {
	t.Helper()
	if c.Base == nil || c.Base.NumRows() == 0 {
		t.Fatal("empty base table")
	}
	if c.Base.Column(c.Target) == nil {
		t.Fatalf("target %q missing from base", c.Target)
	}
	if len(c.Repo) < wantRepoMin {
		t.Fatalf("repo has %d tables, want >= %d", len(c.Repo), wantRepoMin)
	}
	names := map[string]bool{}
	for _, tab := range c.Repo {
		if names[tab.Name()] {
			t.Fatalf("duplicate repo table name %q", tab.Name())
		}
		names[tab.Name()] = true
		if tab.NumRows() == 0 {
			t.Fatalf("repo table %q is empty", tab.Name())
		}
	}
	for name := range c.RelevantTables {
		if !names[name] {
			t.Fatalf("relevant table %q not in repo", name)
		}
	}
	if len(c.RelevantTables) < 3 {
		t.Fatalf("only %d relevant tables planted", len(c.RelevantTables))
	}
}

func TestTaxiCorpus(t *testing.T) {
	c := Taxi(Config{Seed: 1, Scale: 0.2})
	checkCorpus(t, c, 29)
	if c.Task != ml.Regression {
		t.Fatal("taxi should be regression")
	}
	if !c.RelevantTables["weather"] || !c.RelevantTables["borough_info"] {
		t.Fatalf("relevant set = %v", c.RelevantTables)
	}
	// Weather lives at hourly granularity while the base is daily.
	var weatherRows int
	for _, tab := range c.Repo {
		if tab.Name() == "weather" {
			weatherRows = tab.NumRows()
		}
	}
	days := 0
	for i := 0; i < c.Base.NumRows(); i++ {
		days++
	}
	if weatherRows == 0 || weatherRows%24 != 0 {
		t.Fatalf("weather rows = %d, want a multiple of 24", weatherRows)
	}
}

func TestPickupCorpus(t *testing.T) {
	c := Pickup(Config{Seed: 2, Scale: 0.2})
	checkCorpus(t, c, 23)
	if c.Task != ml.Regression {
		t.Fatal("pickup should be regression")
	}
}

func TestPovertyCorpus(t *testing.T) {
	c := Poverty(Config{Seed: 3, Scale: 0.2})
	checkCorpus(t, c, 39)
}

func TestSchoolCorpora(t *testing.T) {
	s := SchoolS(Config{Seed: 4, Scale: 0.2})
	checkCorpus(t, s, 16)
	if s.Task != ml.Classification || s.Classes != 3 {
		t.Fatalf("school task = %v classes = %d", s.Task, s.Classes)
	}
	// Classes should be roughly balanced (quantile cuts).
	col := s.Base.Column(s.Target)
	counts := map[string]int{}
	for i := 0; i < col.Len(); i++ {
		counts[col.StringAt(i)]++
	}
	if len(counts) != 3 {
		t.Fatalf("classes = %v", counts)
	}
	n := s.Base.NumRows()
	for g, cnt := range counts {
		if cnt < n/5 || cnt > n/2 {
			t.Fatalf("class %s count %d not balanced (n=%d)", g, cnt, n)
		}
	}
	l := SchoolL(Config{Seed: 5, Scale: 0.1})
	checkCorpus(t, l, 350)
}

func TestKrakenShape(t *testing.T) {
	ds := Kraken(Config{Seed: 6})
	if ds.N != 1000 || ds.Classes != 2 {
		t.Fatalf("kraken shape n=%d classes=%d", ds.N, ds.Classes)
	}
	ones := 0
	for i := 0; i < ds.N; i++ {
		if ds.Label(i) == 1 {
			ones++
		}
	}
	if ones != 432 {
		t.Fatalf("positive labels = %d, want 432 (paper's split)", ones)
	}
}

func TestDigitsShape(t *testing.T) {
	ds := Digits(Config{Seed: 7})
	if ds.Classes != 10 || ds.D != 64 {
		t.Fatalf("digits shape d=%d classes=%d", ds.D, ds.Classes)
	}
	// Values quantized to 0..16.
	for i := 0; i < ds.N*ds.D; i++ {
		v := ds.X[i]
		if v < 0 || v > 16 || v != float64(int(v)) {
			t.Fatalf("unquantized digit value %v", v)
		}
	}
}

func TestInjectNoise(t *testing.T) {
	ds := Kraken(Config{Seed: 8})
	aug, mask := InjectNoise(ds, 10, 9)
	if aug.D != ds.D*11 {
		t.Fatalf("augmented d = %d, want %d", aug.D, ds.D*11)
	}
	origs := 0
	for _, m := range mask {
		if m {
			origs++
		}
	}
	if origs != ds.D {
		t.Fatalf("mask marks %d originals, want %d", origs, ds.D)
	}
	// Original features are preserved verbatim.
	for i := 0; i < 20; i++ {
		for j := 0; j < ds.D; j++ {
			if aug.At(i, j) != ds.At(i, j) {
				t.Fatal("injection altered original features")
			}
		}
	}
}

func TestCorpusDeterminism(t *testing.T) {
	a := Taxi(Config{Seed: 10, Scale: 0.1})
	b := Taxi(Config{Seed: 10, Scale: 0.1})
	av, _ := a.Base.TargetVector(a.Target)
	bv, _ := b.Base.TargetVector(b.Target)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same seed must generate identical corpora")
		}
	}
}
