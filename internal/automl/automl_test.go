package automl

import (
	"math/rand"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/ml"
)

func separable(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n*3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		label := i % 2
		y[i] = float64(label)
		x[i*3] = float64(label)*3 + rng.NormFloat64()
		x[i*3+1] = rng.NormFloat64()
		x[i*3+2] = rng.NormFloat64()
	}
	ds, _ := ml.NewDataset(x, n, 3, y, ml.Classification, 2)
	return ds
}

func TestSearchFindsGoodPipeline(t *testing.T) {
	ds := separable(300, 1)
	res := Search(ds, Config{Budget: 3 * time.Second, MaxTrials: 12, Seed: 2})
	if res.Trials == 0 {
		t.Fatal("no trials ran")
	}
	if res.Score < 0.85 {
		t.Fatalf("best score = %v (%s)", res.Score, res.Description)
	}
	if res.Model == nil || res.Fit == nil {
		t.Fatal("winner not materialized")
	}
	// The returned model predicts sensibly on training rows.
	hits := 0
	for i := 0; i < ds.N; i++ {
		if int(res.Model.Predict(ds.Row(i))) == ds.Label(i) {
			hits++
		}
	}
	if float64(hits)/float64(ds.N) < 0.8 {
		t.Fatalf("winner training accuracy = %v", float64(hits)/float64(ds.N))
	}
}

func TestSearchRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	x := make([]float64, n*2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i*2] = rng.NormFloat64()
		x[i*2+1] = rng.NormFloat64()
		y[i] = 3*x[i*2] - x[i*2+1] + 0.1*rng.NormFloat64()
	}
	ds, _ := ml.NewDataset(x, n, 2, y, ml.Regression, 0)
	res := Search(ds, Config{Budget: 3 * time.Second, MaxTrials: 12, Seed: 4})
	if res.Score < 0.8 {
		t.Fatalf("regression search R² = %v (%s)", res.Score, res.Description)
	}
}

func TestDefaultEstimator(t *testing.T) {
	ds := separable(200, 5)
	m := DefaultEstimator(1)(ds)
	hits := 0
	for i := 0; i < ds.N; i++ {
		if int(m.Predict(ds.Row(i))) == ds.Label(i) {
			hits++
		}
	}
	if float64(hits)/float64(ds.N) < 0.9 {
		t.Fatal("default estimator underfits a separable problem")
	}
}

func TestBestOfForestAndSVM(t *testing.T) {
	ds := separable(300, 6)
	m, name := BestOfForestAndSVM(ds, 7)
	if m == nil || (name != "random forest" && name != "svm-rbf") {
		t.Fatalf("winner = %q", name)
	}
}
