// Package automl is ARDA's stand-in for the commercial/academic AutoML
// baselines the paper compares against (Azure AutoML, Alpine Meadow): a
// time-budgeted random search over model families and hyperparameters,
// scored on a stratified holdout split. It plays the same role as in the
// paper — a strong augmentation-blind estimator given a single table.
package automl

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/ml"
)

// Config bounds the search.
type Config struct {
	// Budget is the wall-clock budget (default 10s).
	Budget time.Duration
	// MaxTrials caps the number of candidate pipelines (default 64).
	MaxTrials int
	// Seed drives candidate sampling.
	Seed int64
}

// Result reports the winning pipeline.
type Result struct {
	// Fit retrains the winning pipeline on any dataset.
	Fit eval.Fitter
	// Model is the winning pipeline fitted on the full input.
	Model ml.Model
	// Score is the winner's holdout score during search.
	Score float64
	// Description names the winning pipeline and hyperparameters.
	Description string
	// Trials is the number of candidates evaluated.
	Trials int
}

// candidate is one sampled pipeline.
type candidate struct {
	desc string
	fit  eval.Fitter
}

// Search runs budgeted random search and returns the best pipeline found.
func Search(ds *ml.Dataset, cfg Config) *Result {
	if cfg.Budget <= 0 {
		cfg.Budget = 10 * time.Second
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	split := eval.TrainTestSplit(ds, 0.25, cfg.Seed)
	deadline := time.Now().Add(cfg.Budget)

	res := &Result{Score: -1}
	for trial := 0; trial < cfg.MaxTrials && time.Now().Before(deadline); trial++ {
		c := sample(ds.Task, rng, cfg.Seed+int64(trial))
		score := eval.HoldoutScore(ds, split, c.fit)
		res.Trials++
		if score > res.Score {
			res.Score = score
			res.Fit = c.fit
			res.Description = c.desc
		}
	}
	if res.Fit == nil {
		// Degenerate budget: fall back to a default forest.
		res.Fit = DefaultEstimator(cfg.Seed)
		res.Description = "random forest (fallback)"
	}
	res.Model = res.Fit(ds)
	return res
}

// sample draws one pipeline from the task's search space.
func sample(task ml.Task, rng *rand.Rand, seed int64) candidate {
	if task == ml.Classification {
		switch rng.Intn(5) {
		case 0:
			nt := 40 + rng.Intn(4)*40
			depth := 6 + rng.Intn(3)*4
			return candidate{
				desc: fmt.Sprintf("random forest (trees=%d depth=%d)", nt, depth),
				fit: func(d *ml.Dataset) ml.Model {
					return ml.FitForest(d, ml.ForestConfig{NTrees: nt, MaxDepth: depth, Seed: seed, Parallel: true})
				},
			}
		case 1:
			l2 := []float64{1e-4, 1e-3, 1e-2}[rng.Intn(3)]
			return candidate{
				desc: fmt.Sprintf("logistic regression (l2=%g)", l2),
				fit: func(d *ml.Dataset) ml.Model {
					return ml.FitLogistic(d, ml.LogisticConfig{L2: l2})
				},
			}
		case 2:
			lam := []float64{1e-4, 1e-3, 1e-2}[rng.Intn(3)]
			return candidate{
				desc: fmt.Sprintf("linear svm (lambda=%g)", lam),
				fit: func(d *ml.Dataset) ml.Model {
					return ml.FitLinearSVM(d, ml.SVMConfig{Lambda: lam, Seed: seed})
				},
			}
		case 3:
			k := []int{3, 5, 9, 15}[rng.Intn(4)]
			return candidate{
				desc: fmt.Sprintf("knn (k=%d)", k),
				fit:  func(d *ml.Dataset) ml.Model { return ml.FitKNN(d, k) },
			}
		default:
			hidden := []int{16, 32, 64}[rng.Intn(3)]
			return candidate{
				desc: fmt.Sprintf("mlp (hidden=%d)", hidden),
				fit: func(d *ml.Dataset) ml.Model {
					return ml.FitMLP(d, ml.MLPConfig{Hidden: []int{hidden}, Epochs: 40, Seed: seed})
				},
			}
		}
	}
	switch rng.Intn(5) {
	case 0:
		nt := 40 + rng.Intn(4)*40
		depth := 6 + rng.Intn(3)*4
		return candidate{
			desc: fmt.Sprintf("random forest (trees=%d depth=%d)", nt, depth),
			fit: func(d *ml.Dataset) ml.Model {
				return ml.FitForest(d, ml.ForestConfig{NTrees: nt, MaxDepth: depth, Seed: seed, Parallel: true})
			},
		}
	case 1:
		lam := []float64{1e-3, 1e-2, 1e-1, 1}[rng.Intn(4)]
		return candidate{
			desc: fmt.Sprintf("ridge (lambda=%g)", lam),
			fit: func(d *ml.Dataset) ml.Model {
				m, err := ml.FitRidge(d, lam)
				if err != nil {
					return ml.FitForest(d, ml.ForestConfig{NTrees: 20, MaxDepth: 8, Seed: seed})
				}
				return m
			},
		}
	case 2:
		lam := []float64{1e-3, 1e-2, 1e-1}[rng.Intn(3)]
		return candidate{
			desc: fmt.Sprintf("lasso (lambda=%g)", lam),
			fit: func(d *ml.Dataset) ml.Model {
				return ml.FitLasso(d, ml.LassoConfig{Lambda: lam})
			},
		}
	case 3:
		k := []int{3, 5, 9, 15}[rng.Intn(4)]
		return candidate{
			desc: fmt.Sprintf("knn (k=%d)", k),
			fit:  func(d *ml.Dataset) ml.Model { return ml.FitKNN(d, k) },
		}
	default:
		hidden := []int{16, 32, 64}[rng.Intn(3)]
		return candidate{
			desc: fmt.Sprintf("mlp (hidden=%d)", hidden),
			fit: func(d *ml.Dataset) ml.Model {
				return ml.FitMLP(d, ml.MLPConfig{Hidden: []int{hidden}, Epochs: 40, Seed: seed})
			},
		}
	}
}

// DefaultForestConfig is the forest configuration behind DefaultEstimator,
// exposed so the pipeline can declare the default estimator's shape to
// selectors that fast-path known forest estimators
// (featsel.ForestEstimatorAware).
func DefaultForestConfig(seed int64) ml.ForestConfig {
	return ml.ForestConfig{
		NTrees:   60,
		MaxDepth: 12,
		Seed:     seed,
		Parallel: true,
	}
}

// DefaultEstimator is the paper's "lightly auto-optimized random forest"
// default estimator, used by ARDA for feature-selection scoring and the
// final estimate.
func DefaultEstimator(seed int64) eval.Fitter {
	cfg := DefaultForestConfig(seed)
	return func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, cfg)
	}
}

// BestOfForestAndSVM mirrors the paper's final-estimate protocol for
// classification: train both a random forest and an RBF-kernel SVM and keep
// whichever scores better on a holdout split. For regression it returns the
// forest.
func BestOfForestAndSVM(ds *ml.Dataset, seed int64) (ml.Model, string) {
	forestFit := DefaultEstimator(seed)
	if ds.Task != ml.Classification || ds.N > 1500 {
		return forestFit(ds), "random forest"
	}
	split := eval.TrainTestSplit(ds, 0.25, seed)
	svmFit := func(d *ml.Dataset) ml.Model {
		return ml.FitRBFSVM(d, ml.RBFSVMConfig{Seed: seed})
	}
	fScore := eval.HoldoutScore(ds, split, forestFit)
	sScore := eval.HoldoutScore(ds, split, svmFit)
	if sScore > fScore {
		return svmFit(ds), "svm-rbf"
	}
	return forestFit(ds), "random forest"
}
