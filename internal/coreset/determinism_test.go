package coreset

import (
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/parallel"
)

// TestLeverageWorkersDeterminism asserts that the parallelized Gram build and
// per-row solves leave LeverageScores — and the sampled indices — bit-identical
// across worker counts.
func TestLeverageWorkersDeterminism(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	rng := rand.New(rand.NewSource(9))
	n, d := 400, 6
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	parallel.SetMaxWorkers(1)
	scores1, err := LeverageScores(x, n, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx1, err := LeverageIndices(x, n, d, 50, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}

	parallel.SetMaxWorkers(8)
	scores8, err := LeverageScores(x, n, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx8, err := LeverageIndices(x, n, d, 50, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}

	for i := range scores1 {
		if scores1[i] != scores8[i] {
			t.Fatalf("leverage score %d differs across worker counts: %v vs %v",
				i, scores1[i], scores8[i])
		}
	}
	for i := range idx1 {
		if idx1[i] != idx8[i] {
			t.Fatalf("sampled indices differ across worker counts: %v vs %v", idx1, idx8)
		}
	}
}
