package coreset

import (
	"math/rand"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/parallel"
)

// benchSpeedup times f on one worker and on every available core and reports
// the ratio as the "speedup_x" metric (≈1 on a single-core machine).
func benchSpeedup(b *testing.B, f func()) {
	defer parallel.SetMaxWorkers(0)
	min := func() time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 2; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	parallel.SetMaxWorkers(1)
	seq := min()
	parallel.SetMaxWorkers(0)
	par := min()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	b.StopTimer()
	// ResetTimer deletes user metrics, so report after the measured loop.
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_x")
	}
	b.ReportMetric(float64(parallel.MaxWorkers()), "workers")
}

// BenchmarkLeverageIndices measures leverage-score coreset construction —
// Gram build plus n independent ridge solves — at 1 worker vs all cores.
func BenchmarkLeverageIndices(b *testing.B) {
	rng := rand.New(rand.NewSource(81))
	n, d := 3000, 12
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	benchSpeedup(b, func() {
		if _, err := LeverageIndices(x, n, d, 300, rand.New(rand.NewSource(82))); err != nil {
			b.Fatal(err)
		}
	})
}
