package coreset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arda-ml/arda/internal/ml"
)

func TestUniformIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx := UniformIndices(100, 30, rng)
	if len(idx) != 30 {
		t.Fatalf("len = %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad index %d", i)
		}
		seen[i] = true
	}
	all := UniformIndices(10, 50, rng)
	if len(all) != 10 {
		t.Fatalf("oversized request should return all rows, got %d", len(all))
	}
}

func TestStratifiedIndicesBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 90% class 0, 10% class 1: a stratified sample keeps class 1 present.
	labels := make([]int, 1000)
	for i := 900; i < 1000; i++ {
		labels[i] = 1
	}
	idx := StratifiedIndices(labels, 2, 100, rng)
	count1 := 0
	for _, i := range idx {
		if labels[i] == 1 {
			count1++
		}
	}
	if count1 < 5 || count1 > 15 {
		t.Fatalf("minority class count = %d, want ~10", count1)
	}
}

func TestStratifiedGuaranteesRarestLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := make([]int, 500)
	labels[499] = 1 // single example of class 1
	idx := StratifiedIndices(labels, 2, 50, rng)
	found := false
	for _, i := range idx {
		if labels[i] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("stratified sample must include every observed label")
	}
}

func TestDefaultSize(t *testing.T) {
	if got := DefaultSize(100); got != 100 {
		t.Fatalf("DefaultSize(100) = %d", got)
	}
	if got := DefaultSize(10000); got != 1000 {
		t.Fatalf("DefaultSize(10000) = %d", got)
	}
	if got := DefaultSize(1000); got != 256 {
		t.Fatalf("DefaultSize(1000) = %d", got)
	}
}

func TestOSNAPNormPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d := 2000, 4
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	o := NewOSNAP(n, 400, rng)
	sx := o.Apply(x, n, d)
	// Column norms should be preserved within a modest factor.
	for j := 0; j < d; j++ {
		var orig, sk float64
		for i := 0; i < n; i++ {
			orig += x[i*d+j] * x[i*d+j]
		}
		for i := 0; i < o.L; i++ {
			sk += sx[i*d+j] * sx[i*d+j]
		}
		ratio := sk / orig
		if ratio < 0.6 || ratio > 1.6 {
			t.Fatalf("col %d norm ratio = %v", j, ratio)
		}
	}
}

func TestOSNAPVecMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 50
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	o := NewOSNAP(n, 10, rng)
	v := o.ApplyVec(y)
	m := o.Apply(y, n, 1)
	for i := range v {
		if math.Abs(v[i]-m[i]) > 1e-12 {
			t.Fatal("ApplyVec disagrees with Apply on a 1-column matrix")
		}
	}
}

func classificationDS(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n*2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = float64(i % 2)
		x[i*2] = rng.NormFloat64() + y[i]
		x[i*2+1] = rng.NormFloat64()
	}
	ds, _ := ml.NewDataset(x, n, 2, y, ml.Classification, 2)
	return ds
}

func TestSketchDatasetRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2 * x[i]
	}
	ds, _ := ml.NewDataset(x, n, 1, y, ml.Regression, 0)
	sk := SketchDataset(ds, 100, rng)
	if sk.N != 100 || sk.D != 1 {
		t.Fatalf("sketch shape = %dx%d", sk.N, sk.D)
	}
	// Linear structure survives sketching: y = 2x still holds exactly
	// because sketching is linear.
	for i := 0; i < sk.N; i++ {
		if math.Abs(sk.Y[i]-2*sk.At(i, 0)) > 1e-9 {
			t.Fatalf("sketched row %d broke linearity", i)
		}
	}
}

func TestSketchDatasetClassificationPerStratum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := classificationDS(400, 7)
	sk := SketchDataset(ds, 100, rng)
	if sk.N < 80 || sk.N > 120 {
		t.Fatalf("sketched rows = %d, want ~100", sk.N)
	}
	// Labels must remain valid class codes with both classes present.
	counts := map[int]int{}
	for i := 0; i < sk.N; i++ {
		counts[sk.Label(i)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("sketch lost a class stratum: %v", counts)
	}
}

func TestSampleStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := classificationDS(300, 8)
	u := Sample(ds, Uniform, 50, rng)
	if u.N != 50 {
		t.Fatalf("uniform sample size = %d", u.N)
	}
	s := Sample(ds, Stratified, 50, rng)
	if s.N < 45 || s.N > 55 {
		t.Fatalf("stratified sample size = %d", s.N)
	}
}

// Property: OSNAP embedding is linear — Π(a·x) = a·Π(x).
func TestOSNAPLinearityProperty(t *testing.T) {
	f := func(seed int64, scale float64) bool {
		if math.IsNaN(scale) || math.Abs(scale) > 1e100 {
			return true // avoid float overflow in the oracle itself
		}
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		y := make([]float64, n)
		sy := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			sy[i] = scale * y[i]
		}
		o := NewOSNAP(n, 8, rng)
		a := o.ApplyVec(y)
		b := o.ApplyVec(sy)
		for i := range a {
			if math.Abs(b[i]-scale*a[i]) > 1e-6*(1+math.Abs(scale)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if Uniform.String() != "uniform" || Stratified.String() != "stratified" || Sketch.String() != "sketch" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should still format")
	}
}

func TestSampleSketchFallsBackToUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := classificationDS(200, 9)
	// Sample is a row sampler; handed Sketch it must fall back to uniform.
	s := Sample(ds, Sketch, 50, rng)
	if s.N != 50 {
		t.Fatalf("fallback sample size = %d", s.N)
	}
}

func TestSampleDefaultSize(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := classificationDS(4000, 10)
	s := Sample(ds, Uniform, 0, rng)
	if s.N != DefaultSize(4000) {
		t.Fatalf("auto size = %d, want %d", s.N, DefaultSize(4000))
	}
}

func TestSketchDatasetOversizedKeepsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := classificationDS(50, 11)
	sk := SketchDataset(ds, 500, rng)
	if sk.N != 50 {
		t.Fatalf("oversized sketch should keep all rows, got %d", sk.N)
	}
}

func TestSketchDatasetTinyStratumKeptVerbatim(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// 99 rows class 0, 1 row class 1: the singleton stratum is passed
	// through unsketched.
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
	}
	y[99] = 1
	ds, _ := ml.NewDataset(x, 100, 1, y, ml.Classification, 2)
	sk := SketchDataset(ds, 20, rng)
	found := false
	for i := 0; i < sk.N; i++ {
		if sk.Label(i) == 1 && sk.At(i, 0) == 99 {
			found = true
		}
	}
	if !found {
		t.Fatal("singleton stratum should survive sketching verbatim")
	}
}
