// Package coreset implements ARDA's row-reduction strategies (§3.1 of the
// paper): uniform sampling, stratified sampling (per-label uniform), and
// OSNAP/count-sketch subspace embeddings. Sampling strategies operate on row
// indices and therefore can run before joins; sketching takes sparse linear
// combinations of rows and must run after joins (it is applied per label
// stratum for classification, analogous to stratified sampling).
package coreset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/arda-ml/arda/internal/ml"
)

// Strategy identifies a coreset construction.
type Strategy int

const (
	// Uniform draws rows uniformly without replacement.
	Uniform Strategy = iota
	// Stratified draws uniformly within each class label (classification
	// only; falls back to Uniform for regression).
	Stratified
	// Sketch applies an OSNAP subspace embedding after the join.
	Sketch
	// Leverage draws rows proportionally to their ridge leverage scores,
	// preferentially keeping influential/outlying rows (a specialized
	// construction in the sense of §3.1's coreset survey).
	Leverage
)

// String returns the lowercase strategy name.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Stratified:
		return "stratified"
	case Sketch:
		return "sketch"
	case Leverage:
		return "leverage"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultSize is the paper-style heuristic for an automatic coreset size:
// min(n, max(256, n/10)) rows.
func DefaultSize(n int) int {
	size := n / 10
	if size < 256 {
		size = 256
	}
	if size > n {
		size = n
	}
	return size
}

// UniformIndices draws size distinct row indices uniformly at random,
// returned in random order. If size >= n, all indices are returned.
func UniformIndices(n, size int, rng *rand.Rand) []int {
	if size >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.Perm(n)[:size]
}

// StratifiedIndices draws a per-label uniform sample of about size rows,
// allocating slots proportionally to label frequency but guaranteeing at
// least one row per observed label.
func StratifiedIndices(labels []int, numClasses, size int, rng *rand.Rand) []int {
	n := len(labels)
	if size >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	byClass := make([][]int, numClasses)
	for i, k := range labels {
		if k >= 0 && k < numClasses {
			byClass[k] = append(byClass[k], i)
		}
	}
	var out []int
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		want := int(math.Round(float64(size) * float64(len(idx)) / float64(n)))
		if want < 1 {
			want = 1
		}
		if want > len(idx) {
			want = len(idx)
		}
		perm := rng.Perm(len(idx))
		for _, p := range perm[:want] {
			out = append(out, idx[p])
		}
	}
	return out
}

// Sample reduces a dataset to about size rows with the given strategy.
// Sketch is not a row sample; use SketchDataset for it — Sample falls back to
// Uniform when given Sketch.
func Sample(ds *ml.Dataset, strategy Strategy, size int, rng *rand.Rand) *ml.Dataset {
	if size <= 0 {
		size = DefaultSize(ds.N)
	}
	switch strategy {
	case Stratified:
		if ds.Task == ml.Classification {
			labels := make([]int, ds.N)
			for i := range labels {
				labels[i] = ds.Label(i)
			}
			return ds.Subset(StratifiedIndices(labels, ds.Classes, size, rng))
		}
		return ds.Subset(UniformIndices(ds.N, size, rng))
	case Leverage:
		return LeverageSample(ds, size, rng)
	default:
		return ds.Subset(UniformIndices(ds.N, size, rng))
	}
}

// OSNAP is a sparse oblivious subspace embedding Π ∈ R^{ℓ×n} in which each
// input row is hashed into s buckets with ±1/√s signs (Definition 2 of the
// paper; s = ⌈log₂ n⌉ repetitions).
type OSNAP struct {
	// L is the embedding dimension (number of output rows).
	L int
	// buckets[i] and signs[i] hold the s (bucket, sign) pairs for input row i.
	buckets [][]int
	signs   [][]float64
	scale   float64
}

// NewOSNAP builds an OSNAP embedding for n input rows into l output rows.
func NewOSNAP(n, l int, rng *rand.Rand) *OSNAP {
	if l < 1 {
		l = 1
	}
	s := int(math.Ceil(math.Log2(float64(n + 1))))
	if s < 1 {
		s = 1
	}
	o := &OSNAP{
		L:       l,
		buckets: make([][]int, n),
		signs:   make([][]float64, n),
		scale:   1 / math.Sqrt(float64(s)),
	}
	for i := 0; i < n; i++ {
		o.buckets[i] = make([]int, s)
		o.signs[i] = make([]float64, s)
		for r := 0; r < s; r++ {
			o.buckets[i][r] = rng.Intn(l)
			if rng.Intn(2) == 0 {
				o.signs[i][r] = o.scale
			} else {
				o.signs[i][r] = -o.scale
			}
		}
	}
	return o
}

// Apply computes Π·X for a row-major n×d matrix, returning an ℓ×d matrix.
func (o *OSNAP) Apply(x []float64, n, d int) []float64 {
	out := make([]float64, o.L*d)
	for i := 0; i < n; i++ {
		row := x[i*d : (i+1)*d]
		for r, b := range o.buckets[i] {
			sign := o.signs[i][r]
			orow := out[b*d : (b+1)*d]
			for j, v := range row {
				orow[j] += sign * v
			}
		}
	}
	return out
}

// ApplyVec computes Π·y for a length-n vector.
func (o *OSNAP) ApplyVec(y []float64) []float64 {
	out := make([]float64, o.L)
	for i, v := range y {
		for r, b := range o.buckets[i] {
			out[b] += o.signs[i][r] * v
		}
	}
	return out
}

// SketchDataset applies an OSNAP embedding to a dataset, producing about size
// sketched rows. For regression the target is sketched along with the
// features. For classification, rows are sketched independently within each
// label stratum (mixing rows across labels would destroy the labels), and
// each sketched row keeps its stratum's label.
func SketchDataset(ds *ml.Dataset, size int, rng *rand.Rand) *ml.Dataset {
	if size <= 0 {
		size = DefaultSize(ds.N)
	}
	if size >= ds.N {
		return ds.Subset(allIndices(ds.N))
	}
	if ds.Task == ml.Regression {
		o := NewOSNAP(ds.N, size, rng)
		x := o.Apply(ds.X, ds.N, ds.D)
		y := o.ApplyVec(ds.Y)
		out, err := ml.NewDataset(x, o.L, ds.D, y, ds.Task, 0)
		if err != nil {
			panic(err)
		}
		return out
	}
	// Per-stratum sketching.
	byClass := make([][]int, ds.Classes)
	for i := 0; i < ds.N; i++ {
		byClass[ds.Label(i)] = append(byClass[ds.Label(i)], i)
	}
	var xOut []float64
	var yOut []float64
	rows := 0
	for k, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		want := int(math.Round(float64(size) * float64(len(idx)) / float64(ds.N)))
		if want < 1 {
			want = 1
		}
		if want >= len(idx) {
			// Stratum already small: keep its rows as-is.
			for _, i := range idx {
				xOut = append(xOut, ds.Row(i)...)
				yOut = append(yOut, float64(k))
				rows++
			}
			continue
		}
		sub := ds.Subset(idx)
		o := NewOSNAP(sub.N, want, rng)
		sx := o.Apply(sub.X, sub.N, sub.D)
		xOut = append(xOut, sx...)
		for r := 0; r < o.L; r++ {
			yOut = append(yOut, float64(k))
		}
		rows += o.L
	}
	out, err := ml.NewDataset(xOut, rows, ds.D, yOut, ds.Task, ds.Classes)
	if err != nil {
		panic(err)
	}
	return out
}

// allIndices returns 0..n-1.
func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
