package coreset

import (
	"math"
	"math/rand"

	"github.com/arda-ml/arda/internal/linalg"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/parallel"
)

// Leverage-score sampling is one of the "specialized coreset constructions"
// the paper's §3.1 points to ([55]): rows are drawn with probability
// proportional to their (ridge-regularized) statistical leverage
// τ_i = x_iᵀ(XᵀX + λI)⁻¹x_i, so influential/outlying rows — which uniform
// sampling is "agnostic to" — are kept with high probability. Intended for
// the base-table stage where rows vastly outnumber columns.

// LeverageScores computes ridge leverage scores for an n×d row-major matrix.
// lambda <= 0 selects a small scale-based default. Cost is O(nd² + d³).
func LeverageScores(x []float64, n, d int, lambda float64) ([]float64, error) {
	// Each worker owns one Gram row: entry (a, b) accumulates over rows i in
	// ascending order exactly as the sequential kernel did, so the Gram — and
	// everything downstream — is bit-identical for any worker count.
	gram := linalg.NewMatrix(d, d)
	parallel.ForEach(0, d, func(a int) {
		g := gram.Row(a)
		for i := 0; i < n; i++ {
			row := x[i*d : (i+1)*d]
			va := row[a]
			if va == 0 {
				continue
			}
			for b := a; b < d; b++ {
				g[b] += va * row[b]
			}
		}
	})
	for a := 0; a < d; a++ {
		for b := 0; b < a; b++ {
			gram.Set(a, b, gram.At(b, a))
		}
	}
	if lambda <= 0 {
		trace := 0.0
		for a := 0; a < d; a++ {
			trace += gram.At(a, a)
		}
		lambda = 1e-8 * trace / float64(d)
		if lambda <= 0 {
			lambda = 1e-8
		}
	}
	for a := 0; a < d; a++ {
		gram.Data[a*d+a] += lambda
	}
	l, err := linalg.CholeskyJittered(gram, 0)
	if err != nil {
		return nil, err
	}
	// The per-row solves dominate (O(nd²)) and are independent: each row's
	// leverage lands in its own slot, so they fan out across the pool.
	scores := make([]float64, n)
	parallel.Blocks(0, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x[i*d : (i+1)*d]
			sol := linalg.SolveCholesky(l, row)
			scores[i] = linalg.Dot(row, sol)
			if scores[i] < 0 {
				scores[i] = 0
			}
		}
	})
	return scores, nil
}

// LeverageIndices draws size row indices with probability proportional to
// leverage score (without replacement, via weighted reservoir-style
// exponential sorting). Rows with zero leverage fall back to a tiny floor so
// every row stays reachable.
func LeverageIndices(x []float64, n, d, size int, rng *rand.Rand) ([]int, error) {
	if size >= n {
		return allIndices(n), nil
	}
	scores, err := LeverageScores(x, n, d, 0)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, s := range scores {
		total += s
	}
	floor := 1e-12
	if total > 0 {
		floor = 1e-6 * total / float64(n)
	}
	// Weighted sampling without replacement (Efraimidis–Spirakis): order by
	// -ln(u)/w ascending and take the smallest `size` keys.
	type keyed struct {
		key float64
		i   int
	}
	keys := make([]keyed, n)
	for i, s := range scores {
		w := s + floor
		keys[i] = keyed{key: -math.Log(1-rng.Float64()) / w, i: i}
	}
	// Partial selection of the `size` smallest keys.
	for pos := 0; pos < size; pos++ {
		best := pos
		for j := pos + 1; j < n; j++ {
			if keys[j].key < keys[best].key {
				best = j
			}
		}
		keys[pos], keys[best] = keys[best], keys[pos]
	}
	out := make([]int, size)
	for pos := 0; pos < size; pos++ {
		out[pos] = keys[pos].i
	}
	return out, nil
}

// LeverageSample reduces a dataset to about size rows by leverage-score
// sampling over its (NaN-cleaned) feature matrix, falling back to uniform
// sampling if the Gram factorization fails.
func LeverageSample(ds *ml.Dataset, size int, rng *rand.Rand) *ml.Dataset {
	if size <= 0 {
		size = DefaultSize(ds.N)
	}
	if size >= ds.N {
		return ds.Subset(allIndices(ds.N))
	}
	idx, err := LeverageIndices(ds.X, ds.N, ds.D, size, rng)
	if err != nil {
		return ds.Subset(UniformIndices(ds.N, size, rng))
	}
	return ds.Subset(idx)
}
