package coreset

import (
	"math/rand"
	"testing"
)

func TestLeverageScoresFlagOutliers(t *testing.T) {
	// 200 rows clustered near the origin plus one far outlier: the outlier
	// must carry (much) more leverage.
	rng := rand.New(rand.NewSource(1))
	n, d := 201, 3
	x := make([]float64, n*d)
	for i := 0; i < 200; i++ {
		for j := 0; j < d; j++ {
			x[i*d+j] = rng.NormFloat64()
		}
	}
	for j := 0; j < d; j++ {
		x[200*d+j] = 50
	}
	scores, err := LeverageScores(x, n, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxNormal := 0.0
	for i := 0; i < 200; i++ {
		if scores[i] > maxNormal {
			maxNormal = scores[i]
		}
	}
	if scores[200] <= maxNormal {
		t.Fatalf("outlier leverage %v not above cluster max %v", scores[200], maxNormal)
	}
}

func TestLeverageScoresSumNearRank(t *testing.T) {
	// With λ → 0 and full-rank X, leverage scores sum to d.
	rng := rand.New(rand.NewSource(2))
	n, d := 300, 4
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	scores, err := LeverageScores(x, n, d, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	if sum < float64(d)-0.1 || sum > float64(d)+0.1 {
		t.Fatalf("leverage sum = %v, want ~%d", sum, d)
	}
}

func TestLeverageIndicesPrefersOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d := 400, 2
	x := make([]float64, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x[i*d+j] = rng.NormFloat64() * 0.1
		}
	}
	// Ten extreme rows.
	for i := 0; i < 10; i++ {
		x[i*d] = 100
	}
	hits := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		idx, err := LeverageIndices(x, n, d, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range idx {
			if i < 10 {
				hits++
			}
		}
	}
	// Uniform sampling would include each outlier with p = 0.1 → 1 of 10
	// per trial on average. Leverage sampling should catch nearly all 10.
	if hits < trials*7 {
		t.Fatalf("outliers sampled %d/%d times, want most", hits, trials*10)
	}
}

func TestLeverageIndicesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d := 100, 3
	x := make([]float64, n*d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	idx, err := LeverageIndices(x, n, d, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate index %d (sampling must be without replacement)", i)
		}
		seen[i] = true
	}
}

func TestLeverageSampleWiring(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := classificationDS(300, 5)
	out := Sample(ds, Leverage, 60, rng)
	if out.N != 60 {
		t.Fatalf("leverage sample size = %d", out.N)
	}
	if Leverage.String() != "leverage" {
		t.Fatal("strategy name")
	}
	// Oversized request returns everything.
	all := LeverageSample(ds, 1000, rng)
	if all.N != ds.N {
		t.Fatalf("oversized leverage sample = %d", all.N)
	}
}
