// Package atomicio provides crash-safe file writes: content lands in a
// temporary file in the destination directory, is flushed to stable storage,
// and is renamed into place, with the directory itself synced afterwards. A
// process killed at any point leaves either the complete previous file, the
// complete new file, or a stray *.tmp — never a truncated artifact under the
// final name. It is the write discipline shared by the checkpoint log, CSV
// output, and the NDJSON trace writer.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// TempSuffix is appended to the destination name for the in-progress file.
// Crash-recovery code may delete files carrying it; nothing else should.
const TempSuffix = ".tmp"

// WriteFile writes the output of write to path atomically: the callback
// streams into path+TempSuffix, which is fsynced, closed, and renamed over
// path; the parent directory is then fsynced so the rename itself is durable.
// On any error the temporary file is removed and path is untouched.
func WriteFile(path string, write func(io.Writer) error) error {
	tmp := path + TempSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomicio: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// WriteFileBytes is WriteFile for in-memory content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// SyncDir fsyncs a directory so that renames and unlinks inside it survive a
// crash. Filesystems that do not support directory fsync (some network and
// FUSE mounts) report EINVAL or ENOTSUP; those are ignored — the rename is
// still atomic there, just not yet durable, which is the best available.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncError(err) {
		return fmt.Errorf("atomicio: syncing directory %s: %w", dir, err)
	}
	return nil
}

// ignorableSyncError reports whether a directory-fsync failure is an
// unsupported-operation class error rather than a data-loss signal.
// EINVAL/ENOTSUP surface as *PathError wrapping syscall.Errno; matching the
// message avoids importing syscall constants that differ by GOOS.
func ignorableSyncError(err error) bool {
	s := err.Error()
	return strings.Contains(s, "invalid argument") || strings.Contains(s, "not supported")
}
