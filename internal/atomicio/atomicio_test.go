package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileBytesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileBytes(path, []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Fatalf("content = %q", got)
	}
	if _, err := os.Stat(path + TempSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Fatalf("content = %q", got)
	}
}

// A failing write callback must leave neither the destination (if absent
// before) nor the temp file behind.
func TestWriteFileErrorLeavesNoArtifacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	wantErr := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	for _, p := range []string{path, path + TempSuffix} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s exists after failed write", p)
		}
	}
}

// A failing rewrite must keep the previous complete file intact.
func TestWriteFileErrorKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileBytes(path, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error { return errors.New("boom") })
	if err == nil {
		t.Fatal("expected error")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "stable" {
		t.Fatalf("previous content lost: %q", got)
	}
}
