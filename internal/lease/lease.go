// Package lease implements crash-safe, fenced, per-run ownership over a
// shared filesystem — the coordination substrate that lets N ardad processes
// point at one state directory and partition the run queue without a
// coordinator.
//
// The protocol needs nothing beyond POSIX atomic namespace operations:
//
//   - Acquire writes a candidate lease document to a uniquely named temp file
//     and hard-links it to the canonical lease path. link(2) fails with
//     EEXIST when the name is taken, so exactly one contender wins a free
//     lease no matter how many race.
//   - An existing lease is stealable only when it is orphaned: past its
//     expiry time, or held by a process on this host that is no longer alive
//     (signal 0 probes the PID, so a SIGKILLed daemon's runs are adoptable
//     immediately instead of after a TTL). The steal renames the lease file
//     to a unique stale name — rename(2) succeeds for exactly one renamer —
//     and then links as if the lease were free.
//   - Renew extends the expiry, but self-fences first: if the on-disk lease
//     is no longer this owner's (stolen), or is this owner's but already
//     expired (the heartbeat arrived too late — clock skew, a paused
//     process), Renew returns ErrLeaseLost without writing. An expired lease
//     is never resurrected by its old owner, because a new owner may be
//     mid-steal.
//   - Check verifies ownership without extending it; state writers call it
//     immediately before every durable write so a stale owner fails with
//     ErrLeaseLost instead of corrupting the new owner's state.
//
// Fencing tokens make the residual TOCTOU windows harmless: every
// acquisition carries a strictly larger token (the caller persists it in the
// run record), so even if an old owner and a thief overlap for an instant,
// every fenced write re-reads the lease file and the lower token loses. The
// worst outcome of any race is duplicated compute, never divergent state.
package lease

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/arda-ml/arda/internal/atomicio"
	"github.com/arda-ml/arda/internal/faults"
)

// FileName is the canonical lease file name inside a run directory.
const FileName = "lease.json"

var (
	// ErrHeld reports an acquisition attempt on a lease held by a live owner.
	ErrHeld = errors.New("lease: held by a live owner")
	// ErrLeaseLost reports that this owner no longer holds the lease: it was
	// stolen after expiry, or expired before a renewal arrived (self-fence).
	// The holder must abandon the guarded resource without further writes.
	ErrLeaseLost = errors.New("lease: lost")
)

// Info is the persisted lease document.
type Info struct {
	// RunID names the guarded resource (informational).
	RunID string `json:"run_id,omitempty"`
	// Owner is the acquiring manager's unique identity string.
	Owner string `json:"owner"`
	// Host and PID locate the owning process for liveness probes.
	Host string `json:"host"`
	PID  int    `json:"pid"`
	// Token is the monotonic fencing token of this acquisition.
	Token int64 `json:"token"`
	// ExpiresUnixNS is the lease expiry as Unix nanoseconds.
	ExpiresUnixNS int64 `json:"expires_unix_ns"`
}

// Expired reports whether the lease's TTL has passed at now.
func (i Info) Expired(now time.Time) bool {
	return now.UnixNano() >= i.ExpiresUnixNS
}

// Orphaned reports whether the lease no longer protects anything: expired,
// or owned by a process on this host that is dead. A live lease on another
// host is never orphaned before expiry — PID liveness is only meaningful
// locally.
func (i Info) Orphaned(now time.Time) bool {
	if i.Expired(now) {
		return true
	}
	host, _ := os.Hostname()
	return i.Host == host && !pidAlive(i.PID)
}

// pidAlive probes a PID with signal 0: delivery errors other than ESRCH
// (e.g. EPERM) still prove the process exists.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	return !errors.Is(err, os.ErrProcessDone) && !errors.Is(err, syscall.ESRCH)
}

// Read parses the lease document at path. A missing file returns an error
// wrapping fs.ErrNotExist.
func Read(path string) (Info, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	var i Info
	if err := json.Unmarshal(raw, &i); err != nil {
		return Info{}, fmt.Errorf("lease: unreadable %s: %w", path, err)
	}
	return i, nil
}

// Live reports whether path holds a non-orphaned lease right now — the
// "someone is actively working on this" probe used to protect live runs'
// checkpoints from pruning.
func Live(path string) bool {
	i, err := Read(path)
	if err != nil {
		return false
	}
	return !i.Orphaned(time.Now())
}

// Options configures an acquisition.
type Options struct {
	// RunID names the guarded resource (informational, stored in the file).
	RunID string
	// Owner is the acquiring manager's unique identity. Required.
	Owner string
	// Token is the fencing token to stamp; callers must make it strictly
	// larger than every prior acquisition's (max of the record's persisted
	// fence and the previous lease's token, plus one).
	Token int64
	// TTL is the validity window one acquisition or renewal buys. Required.
	TTL time.Duration
	// Injector, when set, is probed at faults.SiteLeaseRenew (with Ordinal)
	// on every Renew — the chaos hook that models a delayed heartbeat.
	Injector *faults.Injector
	// Ordinal is the injection-site ordinal (typically the run's seq).
	Ordinal int
}

// ownerSeq disambiguates multiple managers in one process (tests).
var ownerSeq atomic.Int64

// DefaultOwner builds a process-unique owner identity: host:pid:n.
func DefaultOwner() string {
	host, _ := os.Hostname()
	return fmt.Sprintf("%s:%d:%d", host, os.Getpid(), ownerSeq.Add(1))
}

// Lease is one held (or formerly held) acquisition.
type Lease struct {
	path string
	opt  Options

	mu   sync.Mutex
	lost bool // set once Renew/Check observe loss, or on Release
}

// Acquire takes ownership of path: it links a candidate document into place
// (atomic, first contender wins) and, when an orphaned lease is in the way,
// steals it by renaming it aside (atomic, exactly one thief wins) before
// linking. A live lease returns ErrHeld.
func Acquire(path string, o Options) (*Lease, error) {
	if o.Owner == "" {
		return nil, fmt.Errorf("lease: Options.Owner is required")
	}
	if o.TTL <= 0 {
		return nil, fmt.Errorf("lease: Options.TTL must be positive")
	}
	host, _ := os.Hostname()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, FileName+".claim-*")
	if err != nil {
		return nil, err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	write := func() error {
		info := Info{
			RunID: o.RunID, Owner: o.Owner, Host: host, PID: os.Getpid(),
			Token: o.Token, ExpiresUnixNS: time.Now().Add(o.TTL).UnixNano(),
		}
		body, err := json.Marshal(&info)
		if err != nil {
			return err
		}
		if err := tmp.Truncate(0); err != nil {
			return err
		}
		if _, err := tmp.WriteAt(body, 0); err != nil {
			return err
		}
		return tmp.Sync()
	}
	if err := write(); err != nil {
		tmp.Close()
		return nil, err
	}
	defer tmp.Close()

	// Bounded contention loop: each pass either links (win), observes a live
	// holder (ErrHeld), or renames an orphaned lease aside and links again.
	for try := 0; try < 8; try++ {
		err := os.Link(tmpName, path)
		if err == nil {
			if serr := atomicio.SyncDir(dir); serr != nil {
				os.Remove(path)
				return nil, serr
			}
			return &Lease{path: path, opt: o}, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
		cur, rerr := Read(path)
		if rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // vanished between link and read: retry
			}
			return nil, rerr
		}
		if !cur.Orphaned(time.Now()) {
			return nil, fmt.Errorf("%w: %s holds %s (token %d)", ErrHeld, cur.Owner, path, cur.Token)
		}
		stale := fmt.Sprintf("%s.stale-%d-%d", path, os.Getpid(), time.Now().UnixNano())
		if rerr := os.Rename(path, stale); rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // another thief renamed first: race them for the link
			}
			return nil, rerr
		}
		os.Remove(stale)
		// Refresh the candidate's expiry before linking: the steal may have
		// waited out a contention round.
		if werr := write(); werr != nil {
			return nil, werr
		}
	}
	return nil, fmt.Errorf("%w: %s contended beyond retry bound", ErrHeld, path)
}

// Token returns the fencing token of this acquisition.
func (l *Lease) Token() int64 { return l.opt.Token }

// Owner returns the owner identity of this acquisition.
func (l *Lease) Owner() string { return l.opt.Owner }

// Lost reports whether this lease has been observed lost (or released).
func (l *Lease) Lost() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost
}

// markLost flags the lease and returns ErrLeaseLost.
func (l *Lease) markLost() error {
	l.lost = true
	return ErrLeaseLost
}

// verifyLocked re-reads the on-disk lease and classifies ownership. It
// returns the current info when the lease is still this owner's and
// unexpired; every other outcome marks the lease lost.
func (l *Lease) verifyLocked() (Info, error) {
	if l.lost {
		return Info{}, ErrLeaseLost
	}
	cur, err := Read(l.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Info{}, l.markLost()
		}
		return Info{}, err // transient read failure: ownership undecided
	}
	if cur.Owner != l.opt.Owner || cur.Token != l.opt.Token {
		return Info{}, l.markLost()
	}
	if cur.Expired(time.Now()) {
		// Self-fence: our own lease ran out before this renewal/check. A
		// thief may be mid-steal, so the old owner must never write again —
		// not even to resurrect the lease.
		return Info{}, l.markLost()
	}
	return cur, nil
}

// Renew extends the lease's expiry by the acquisition TTL. It probes the
// faults.SiteLeaseRenew injection site first (a Delay rule there models a
// heartbeat arriving late), then self-fences per verifyLocked before
// rewriting the document crash-safely. ErrLeaseLost is permanent; other
// errors (filesystem trouble) leave ownership undecided and may be retried
// on the next heartbeat.
func (l *Lease) Renew() error {
	if err := l.opt.Injector.Check(faults.SiteLeaseRenew, l.opt.Ordinal); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, err := l.verifyLocked()
	if err != nil {
		return err
	}
	cur.ExpiresUnixNS = time.Now().Add(l.opt.TTL).UnixNano()
	body, err := json.Marshal(&cur)
	if err != nil {
		return err
	}
	return atomicio.WriteFileBytes(l.path, body)
}

// Check verifies this owner still holds the lease without extending it.
// Fenced writers call it immediately before every durable write.
func (l *Lease) Check() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.verifyLocked()
	return err
}

// Release gives the lease up voluntarily: the file is removed (if still
// ours) and the lease is marked lost so later Renew/Check calls fail. A
// lease already lost releases as a no-op.
func (l *Lease) Release() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lost {
		return nil
	}
	cur, err := Read(l.path)
	l.lost = true
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	if cur.Owner != l.opt.Owner || cur.Token != l.opt.Token {
		return nil // someone else's now; leave it
	}
	return os.Remove(l.path)
}
