package lease

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/faults"
)

func leasePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), FileName)
}

// TestAcquireFirstWins races eight contenders for a free lease: the atomic
// link admits exactly one; the rest observe a live holder.
func TestAcquireFirstWins(t *testing.T) {
	path := leasePath(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var wins int
	var held int
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := Acquire(path, Options{Owner: DefaultOwner(), Token: 1, TTL: time.Minute})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				wins++
				if l.Token() != 1 {
					t.Errorf("winner token = %d, want 1", l.Token())
				}
			case errors.Is(err, ErrHeld):
				held++
			default:
				t.Errorf("contender %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 || held != 7 {
		t.Fatalf("wins=%d held=%d, want 1/7", wins, held)
	}
	info, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if info.Token != 1 || !Live(path) {
		t.Fatalf("lease not live with token 1: %+v", info)
	}
}

// TestStealExpiredFencesOldOwner: after expiry a higher-token acquisition
// steals the lease, and the old owner's Check and Renew observe loss
// without disturbing the new owner's file.
func TestStealExpiredFencesOldOwner(t *testing.T) {
	path := leasePath(t)
	o1, err := Acquire(path, Options{Owner: "o1", Token: 1, TTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("o1 acquire: %v", err)
	}
	// Before expiry the lease is firmly held.
	if _, err := Acquire(path, Options{Owner: "o2", Token: 2, TTL: time.Minute}); !errors.Is(err, ErrHeld) {
		t.Fatalf("pre-expiry steal: err = %v, want ErrHeld", err)
	}
	time.Sleep(80 * time.Millisecond)
	o2, err := Acquire(path, Options{Owner: "o2", Token: 2, TTL: time.Minute})
	if err != nil {
		t.Fatalf("post-expiry steal: %v", err)
	}
	if err := o1.Check(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("o1.Check = %v, want ErrLeaseLost", err)
	}
	if err := o1.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("o1.Renew = %v, want ErrLeaseLost", err)
	}
	if !o1.Lost() {
		t.Fatal("o1 not marked lost")
	}
	info, err := Read(path)
	if err != nil {
		t.Fatalf("Read after fenced renew: %v", err)
	}
	if info.Owner != "o2" || info.Token != 2 {
		t.Fatalf("o1's fenced renew disturbed the lease: %+v", info)
	}
	if err := o2.Check(); err != nil {
		t.Fatalf("o2.Check: %v", err)
	}
}

// TestRenewExtendsAndSelfFencesOnExpiry: a timely renewal extends the
// expiry; a renewal arriving after expiry self-fences even when nobody has
// stolen the lease yet.
func TestRenewExtendsAndSelfFencesOnExpiry(t *testing.T) {
	path := leasePath(t)
	l, err := Acquire(path, Options{Owner: "o1", Token: 1, TTL: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	before, _ := Read(path)
	time.Sleep(50 * time.Millisecond)
	if err := l.Renew(); err != nil {
		t.Fatalf("timely renew: %v", err)
	}
	after, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if after.ExpiresUnixNS <= before.ExpiresUnixNS {
		t.Fatalf("renew did not extend expiry: %d -> %d", before.ExpiresUnixNS, after.ExpiresUnixNS)
	}
	time.Sleep(300 * time.Millisecond) // past the renewed expiry
	if err := l.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("late renew = %v, want ErrLeaseLost (self-fence)", err)
	}
}

// TestRenewDelayFaultSelfFences is the clock-skew satellite at the lease
// level: a heartbeat delayed past the TTL (via the lease.renew fault site)
// must self-fence, and the old owner's late write must not clobber the
// thief's lease.
func TestRenewDelayFaultSelfFences(t *testing.T) {
	path := leasePath(t)
	inj := faults.New(1, faults.Rule{
		Stage: faults.SiteLeaseRenew, Ordinal: -1, Kind: faults.Delay, Delay: 250 * time.Millisecond,
	})
	o1, err := Acquire(path, Options{Owner: "o1", Token: 1, TTL: 120 * time.Millisecond, Injector: inj, Ordinal: 7})
	if err != nil {
		t.Fatalf("o1 acquire: %v", err)
	}
	renewErr := make(chan error, 1)
	go func() { renewErr <- o1.Renew() }() // sleeps 250ms at the fault site
	time.Sleep(170 * time.Millisecond)     // o1's lease is now expired, renew still sleeping
	o2, err := Acquire(path, Options{Owner: "o2", Token: 2, TTL: time.Minute})
	if err != nil {
		t.Fatalf("o2 steal during delayed heartbeat: %v", err)
	}
	if err := <-renewErr; !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("delayed renew = %v, want ErrLeaseLost", err)
	}
	info, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if info.Owner != "o2" || info.Token != 2 {
		t.Fatalf("late heartbeat clobbered thief's lease: %+v", info)
	}
	if err := o2.Check(); err != nil {
		t.Fatalf("o2.Check after o1's fenced renew: %v", err)
	}
	fired := inj.Fired()
	if len(fired) != 1 || fired[0].Stage != faults.SiteLeaseRenew || fired[0].Ordinal != 7 {
		t.Fatalf("fault log = %+v, want one lease.renew[7] firing", fired)
	}
}

// TestReleaseFreesLease: a released lease is immediately acquirable, and the
// releaser's subsequent Check fails.
func TestReleaseFreesLease(t *testing.T) {
	path := leasePath(t)
	o1, err := Acquire(path, Options{Owner: "o1", Token: 1, TTL: time.Minute})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := o1.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := o1.Check(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Check after Release = %v, want ErrLeaseLost", err)
	}
	if Live(path) {
		t.Fatal("released lease reported live")
	}
	if _, err := Acquire(path, Options{Owner: "o2", Token: 2, TTL: time.Minute}); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestDeadPIDOrphansImmediately: a lease held by a dead process on this host
// is adoptable before its TTL — the SIGKILLed-daemon takeover path.
func TestDeadPIDOrphansImmediately(t *testing.T) {
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot run `true`: %v", err)
	}
	deadPID := cmd.Process.Pid
	host, _ := os.Hostname()
	path := leasePath(t)
	info := Info{
		RunID: "r000001", Owner: "gone", Host: host, PID: deadPID,
		Token: 3, ExpiresUnixNS: time.Now().Add(time.Hour).UnixNano(),
	}
	body, _ := json.Marshal(&info)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if Live(path) {
		t.Fatal("dead-pid lease reported live")
	}
	l, err := Acquire(path, Options{Owner: "o2", Token: 4, TTL: time.Minute})
	if err != nil {
		t.Fatalf("takeover of dead-pid lease: %v", err)
	}
	if l.Token() != 4 {
		t.Fatalf("token = %d, want 4", l.Token())
	}
}

// TestConcurrentStealSingleWinner: eight thieves over one expired lease —
// the rename-aside step admits exactly one.
func TestConcurrentStealSingleWinner(t *testing.T) {
	path := leasePath(t)
	if _, err := Acquire(path, Options{Owner: "o0", Token: 1, TTL: 30 * time.Millisecond}); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	wins := map[string]bool{}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := DefaultOwner()
			_, err := Acquire(path, Options{Owner: owner, Token: 2, TTL: time.Minute})
			if err == nil {
				mu.Lock()
				wins[owner] = true
				mu.Unlock()
			} else if !errors.Is(err, ErrHeld) {
				t.Errorf("thief %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if len(wins) != 1 {
		t.Fatalf("%d thieves won, want exactly 1", len(wins))
	}
	info, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !wins[info.Owner] || info.Token != 2 {
		t.Fatalf("on-disk lease %+v does not match the winning thief %v", info, wins)
	}
	// No stale or claim debris left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != FileName {
			t.Fatalf("debris left after contention: %s", e.Name())
		}
	}
}
