package parallel

import "math/rand"

// SplitSeed deterministically derives an independent child seed from a parent
// seed and a work-item index using the SplitMix64 finalizer. Distinct indexes
// under the same parent produce decorrelated streams, and the derivation is a
// pure function of (seed, index), so seeded pipelines stay reproducible no
// matter how work items are scheduled across workers. Chain calls to derive
// deeper hierarchies: SplitSeed(SplitSeed(seed, batch), candidate).
func SplitSeed(seed, index int64) int64 {
	z := uint64(seed) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// RNG returns a fresh rand.Rand seeded by SplitSeed(seed, index) — the
// per-work-item generator of the determinism contract: every parallel work
// item owns its own stream and no two items ever share one.
func RNG(seed, index int64) *rand.Rand {
	return rand.New(rand.NewSource(SplitSeed(seed, index)))
}
