package parallel

import "sync"

// ScratchPool is a typed free list of reusable scratch workspaces for pool
// work items. It wraps sync.Pool, so idle workspaces are reclaimed by the
// garbage collector instead of pinning peak memory forever.
//
// The determinism contract of this package extends to scratch reuse: a
// workspace handed out by Get may hold arbitrary garbage from a previous
// work item, so users must either overwrite every cell they read or maintain
// an explicit cleared-on-Put invariant. Scratch contents must never leak
// into results except through such deterministic initialization.
type ScratchPool[T any] struct {
	p sync.Pool
}

// NewScratchPool returns a pool whose Get falls back to calling fresh when
// the free list is empty. fresh must not be nil.
func NewScratchPool[T any](fresh func() T) *ScratchPool[T] {
	return &ScratchPool[T]{p: sync.Pool{New: func() any { return fresh() }}}
}

// Get takes a workspace from the pool, creating one if none is free.
func (p *ScratchPool[T]) Get() T { return p.p.Get().(T) }

// Put returns a workspace to the pool for reuse.
func (p *ScratchPool[T]) Put(v T) { p.p.Put(v) }
