package parallel

import "sync"

// ScratchPool is a typed free list of reusable scratch workspaces for pool
// work items. It wraps sync.Pool, so idle workspaces are reclaimed by the
// garbage collector instead of pinning peak memory forever.
//
// The determinism contract of this package extends to scratch reuse: a
// workspace handed out by Get may hold arbitrary garbage from a previous
// work item, so users must either overwrite every cell they read or maintain
// an explicit cleared-on-Put invariant. Scratch contents must never leak
// into results except through such deterministic initialization.
type ScratchPool[T any] struct {
	p    sync.Pool
	size func(T) int

	// High-water tracking for sized pools, over a sliding pair of put
	// epochs so a one-off burst of large workspaces ages out instead of
	// setting the retention bar forever.
	mu      sync.Mutex
	puts    int
	curMax  int
	prevMax int
}

// scratchEpochPuts is how many Puts one high-water epoch spans.
const scratchEpochPuts = 64

// NewScratchPool returns a pool whose Get falls back to calling fresh when
// the free list is empty. fresh must not be nil.
func NewScratchPool[T any](fresh func() T) *ScratchPool[T] {
	return &ScratchPool[T]{p: sync.Pool{New: func() any { return fresh() }}}
}

// NewScratchPoolSized is NewScratchPool with a retention cap: size reports a
// workspace's retained footprint (e.g. summed slice capacities), and Put
// releases a workspace larger than twice the recent high-water mark to the
// garbage collector instead of pooling it. Long-lived pools shared across
// stages of very different scale (huge base-table forests, then many small
// sweep forests) stop pinning the largest stage's peak. Dropping affects
// memory only — Get transparently rebuilds via fresh, and reuse stays
// governed by the same overwrite-before-read contract.
func NewScratchPoolSized[T any](fresh func() T, size func(T) int) *ScratchPool[T] {
	p := NewScratchPool(fresh)
	p.size = size
	return p
}

// Get takes a workspace from the pool, creating one if none is free.
func (p *ScratchPool[T]) Get() T { return p.p.Get().(T) }

// Put returns a workspace to the pool for reuse — or, in a sized pool,
// drops it when it dwarfs the recent high-water mark (see
// NewScratchPoolSized).
func (p *ScratchPool[T]) Put(v T) {
	if p.size != nil && p.oversized(p.size(v)) {
		return
	}
	p.p.Put(v)
}

// oversized folds sz into the epoch high-water bookkeeping and reports
// whether it exceeds twice the high-water mark of the recent epochs
// (excluding sz itself, so the first workspace of any size is retained).
func (p *ScratchPool[T]) oversized(sz int) bool {
	p.mu.Lock()
	high := p.curMax
	if p.prevMax > high {
		high = p.prevMax
	}
	if sz > p.curMax {
		p.curMax = sz
	}
	p.puts++
	if p.puts >= scratchEpochPuts {
		p.puts = 0
		p.prevMax, p.curMax = p.curMax, 0
	}
	p.mu.Unlock()
	return high > 0 && sz > 2*high
}
