package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	defer SetMaxWorkers(0)
	for _, workers := range []int{0, 1, 2, 8} {
		n := 1000
		seen := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	calls := 0
	ForEach(4, 0, func(int) { calls++ })
	ForEach(4, -3, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("ForEach on empty range made %d calls", calls)
	}
}

// TestForEachNestedBounded exercises the oversubscription guard: nested
// ForEach calls from many concurrent parents must complete, cover every
// index, and never exceed the process-wide worker cap (parents + helpers).
func TestForEachNestedBounded(t *testing.T) {
	defer SetMaxWorkers(0)
	const cap = 4
	SetMaxWorkers(cap)
	var running, peak atomic.Int64
	track := func() func() {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		return func() { running.Add(-1) }
	}
	const parents, children = 6, 50
	var total atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parents; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ForEach(0, children, func(int) {
				done := track()
				defer done()
				ForEach(0, 4, func(int) { total.Add(1) })
			})
		}()
	}
	wg.Wait()
	if got := total.Load(); got != parents*children*4 {
		t.Fatalf("nested ForEach ran %d leaf items, want %d", got, parents*children*4)
	}
	// Each of the `parents` goroutines works inline regardless of the cap;
	// only helpers are capped, so the hard bound is parents + cap.
	if p := peak.Load(); p > parents+cap {
		t.Fatalf("peak concurrent workers %d exceeds bound %d", p, parents+cap)
	}
}

func TestMapOrderedResultsAndFirstError(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	vals, err := Map(0, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	errA, errB := errors.New("a"), errors.New("b")
	_, err = Map(0, 100, func(i int) (int, error) {
		switch i {
		case 97:
			return 0, errB
		case 13:
			return 0, errA
		}
		return i, nil
	})
	if err != errA {
		t.Fatalf("Map error = %v, want lowest-index error %v", err, errA)
	}
}

func TestMapReduceIndexOrder(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	got, err := MapReduce(0, 50, func(i int) (int, error) { return i, nil },
		[]int(nil), func(acc []int, v int) []int { return append(acc, v) })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reduction out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestBlocksFixedPartition(t *testing.T) {
	defer SetMaxWorkers(0)
	// The partition must depend only on (n, blockSize), not on workers.
	collect := func(workers int) [][2]int {
		var mu sync.Mutex
		var spans [][2]int
		Blocks(workers, 103, 10, func(lo, hi int) {
			mu.Lock()
			spans = append(spans, [2]int{lo, hi})
			mu.Unlock()
		})
		return spans
	}
	SetMaxWorkers(1)
	one := collect(1)
	SetMaxWorkers(8)
	eight := collect(0)
	if len(one) != 11 || len(eight) != 11 {
		t.Fatalf("block counts %d/%d, want 11", len(one), len(eight))
	}
	covered := make([]bool, 103)
	for _, s := range one {
		for i := s[0]; i < s[1]; i++ {
			if covered[i] {
				t.Fatalf("index %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestMapBlocksOrderedPartials(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	parts := MapBlocks(0, 1000, 64, func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	})
	total := 0
	for _, p := range parts {
		total += p
	}
	if total != 999*1000/2 {
		t.Fatalf("MapBlocks sum = %d", total)
	}
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	if SplitSeed(42, 7) != SplitSeed(42, 7) {
		t.Fatal("SplitSeed is not deterministic")
	}
	seen := map[int64]bool{}
	for i := int64(0); i < 10000; i++ {
		s := SplitSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different parents must derive different children")
	}
	a, b := RNG(5, 3), RNG(5, 3)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("RNG(seed, index) must be reproducible")
		}
	}
}

// TestForEachRaceStress drives many overlapping pools so `go test -race`
// exercises the slot accounting and index dispatch under contention.
func TestForEachRaceStress(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				out := make([]int64, 64)
				ForEach(0, 64, func(i int) { out[i] = int64(i) })
				for i, v := range out {
					if v != int64(i) {
						panic("lost write")
					}
					total.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if total.Load() != 16*20*64 {
		t.Fatal("stress iterations incomplete")
	}
}
