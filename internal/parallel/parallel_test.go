package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	defer SetMaxWorkers(0)
	for _, workers := range []int{0, 1, 2, 8} {
		n := 1000
		seen := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	calls := 0
	ForEach(4, 0, func(int) { calls++ })
	ForEach(4, -3, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("ForEach on empty range made %d calls", calls)
	}
}

// TestForEachNestedBounded exercises the oversubscription guard: nested
// ForEach calls from many concurrent parents must complete, cover every
// index, and never exceed the process-wide worker cap (parents + helpers).
func TestForEachNestedBounded(t *testing.T) {
	defer SetMaxWorkers(0)
	const cap = 4
	SetMaxWorkers(cap)
	var running, peak atomic.Int64
	track := func() func() {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		return func() { running.Add(-1) }
	}
	const parents, children = 6, 50
	var total atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parents; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ForEach(0, children, func(int) {
				done := track()
				defer done()
				ForEach(0, 4, func(int) { total.Add(1) })
			})
		}()
	}
	wg.Wait()
	if got := total.Load(); got != parents*children*4 {
		t.Fatalf("nested ForEach ran %d leaf items, want %d", got, parents*children*4)
	}
	// Each of the `parents` goroutines works inline regardless of the cap;
	// only helpers are capped, so the hard bound is parents + cap.
	if p := peak.Load(); p > parents+cap {
		t.Fatalf("peak concurrent workers %d exceeds bound %d", p, parents+cap)
	}
}

func TestMapOrderedResultsAndFirstError(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	vals, err := Map(0, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	errA, errB := errors.New("a"), errors.New("b")
	_, err = Map(0, 100, func(i int) (int, error) {
		switch i {
		case 97:
			return 0, errB
		case 13:
			return 0, errA
		}
		return i, nil
	})
	if err != errA {
		t.Fatalf("Map error = %v, want lowest-index error %v", err, errA)
	}
}

func TestMapReduceIndexOrder(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	got, err := MapReduce(0, 50, func(i int) (int, error) { return i, nil },
		[]int(nil), func(acc []int, v int) []int { return append(acc, v) })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reduction out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestBlocksFixedPartition(t *testing.T) {
	defer SetMaxWorkers(0)
	// The partition must depend only on (n, blockSize), not on workers.
	collect := func(workers int) [][2]int {
		var mu sync.Mutex
		var spans [][2]int
		Blocks(workers, 103, 10, func(lo, hi int) {
			mu.Lock()
			spans = append(spans, [2]int{lo, hi})
			mu.Unlock()
		})
		return spans
	}
	SetMaxWorkers(1)
	one := collect(1)
	SetMaxWorkers(8)
	eight := collect(0)
	if len(one) != 11 || len(eight) != 11 {
		t.Fatalf("block counts %d/%d, want 11", len(one), len(eight))
	}
	covered := make([]bool, 103)
	for _, s := range one {
		for i := s[0]; i < s[1]; i++ {
			if covered[i] {
				t.Fatalf("index %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestMapBlocksOrderedPartials(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	parts := MapBlocks(0, 1000, 64, func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	})
	total := 0
	for _, p := range parts {
		total += p
	}
	if total != 999*1000/2 {
		t.Fatalf("MapBlocks sum = %d", total)
	}
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	if SplitSeed(42, 7) != SplitSeed(42, 7) {
		t.Fatal("SplitSeed is not deterministic")
	}
	seen := map[int64]bool{}
	for i := int64(0); i < 10000; i++ {
		s := SplitSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different parents must derive different children")
	}
	a, b := RNG(5, 3), RNG(5, 3)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("RNG(seed, index) must be reproducible")
		}
	}
}

// TestForEachRaceStress drives many overlapping pools so `go test -race`
// exercises the slot accounting and index dispatch under contention.
func TestForEachRaceStress(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				out := make([]int64, 64)
				ForEach(0, 64, func(i int) { out[i] = int64(i) })
				for i, v := range out {
					if v != int64(i) {
						panic("lost write")
					}
					total.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if total.Load() != 16*20*64 {
		t.Fatal("stress iterations incomplete")
	}
}

// TestForEachPanicFirstOrdinalWins: a panic in a work item must surface on
// the calling goroutine as a recoverable *PanicError — never crash the
// process from a helper goroutine — and when several items panic, the lowest
// index must win at every worker count.
func TestForEachPanicFirstOrdinalWins(t *testing.T) {
	defer SetMaxWorkers(0)
	for _, workers := range []int{1, 8} {
		SetMaxWorkers(workers)
		var ran atomic.Int64
		err := func() (err *PanicError) {
			defer func() {
				p := recover()
				pe, ok := p.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %v, want *PanicError", workers, p)
				}
				err = pe
			}()
			ForEach(0, 100, func(i int) {
				ran.Add(1)
				if i == 23 || i == 71 {
					panic(i)
				}
			})
			return nil
		}()
		if err == nil || err.Index != 23 {
			t.Fatalf("workers=%d: panic index = %v, want 23", workers, err)
		}
		if v, ok := err.Value.(int); !ok || v != 23 {
			t.Fatalf("workers=%d: panic value = %v, want 23", workers, err.Value)
		}
		// Determinism requires every item to run even after a panic.
		if got := ran.Load(); got != 100 {
			t.Fatalf("workers=%d: %d items ran, want 100", workers, got)
		}
	}
}

// TestMapPanicBecomesError: Map converts a work-item panic into the error of
// that index, losing to lower-index ordinary errors deterministically.
func TestMapPanicBecomesError(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(8)
	_, err := Map(0, 50, func(i int) (int, error) {
		if i == 31 {
			panic("injected")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 31 {
		t.Fatalf("Map panic error = %v, want *PanicError at 31", err)
	}
	errLow := errors.New("low")
	_, err = Map(0, 50, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errLow
		case 31:
			panic("injected")
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("Map error = %v, want lowest-index error %v", err, errLow)
	}
}

// TestPanicErrorUnwrap: panic values that are errors stay reachable through
// errors.Is on the converted *PanicError.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := Map(0, 4, func(i int) (int, error) {
		if i == 2 {
			panic(sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through PanicError = false for %v", err)
	}
}

// TestForEachCtxCancelStopsClaiming: after cancellation, no new work items
// start and ForEachCtx reports ctx.Err() without draining the queue.
func TestForEachCtxCancelStopsClaiming(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(4)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 1000
	err := ForEachCtx(ctx, 0, n, func(i int) {
		if started.Add(1) == 5 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx = %v, want context.Canceled", err)
	}
	// 4 workers were mid-item at cancel time; far fewer than n may start after.
	if got := started.Load(); got > n/2 {
		t.Fatalf("%d of %d items started after cancellation", got, n)
	}
}

// TestForEachCtxNilAndComplete: a nil ctx never cancels, and a live ctx that
// is never canceled runs every item and returns nil.
func TestForEachCtxNilAndComplete(t *testing.T) {
	defer SetMaxWorkers(0)
	for _, ctx := range []context.Context{nil, context.Background()} {
		var ran atomic.Int64
		if err := ForEachCtx(ctx, 0, 100, func(int) { ran.Add(1) }); err != nil {
			t.Fatalf("ForEachCtx = %v, want nil", err)
		}
		if ran.Load() != 100 {
			t.Fatalf("ran %d of 100 items", ran.Load())
		}
	}
}

// TestMapCtxCanceled: MapCtx reports ctx.Err() when canceled mid-run.
func TestMapCtxCanceled(t *testing.T) {
	defer SetMaxWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, 0, 100, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx under canceled ctx = %v, want context.Canceled", err)
	}
}

// TestScratchPoolSizedRetention: a sized pool must keep workspaces near the
// recent high-water mark (including exactly 2× it) and drop ones that dwarf
// it, so a burst of oversized work cannot pin its peak in the free list.
func TestScratchPoolSizedRetention(t *testing.T) {
	fresh := func() []byte { return make([]byte, 8) }
	p := NewScratchPoolSized(fresh, func(b []byte) int { return cap(b) })

	// Establish a 100-byte high-water mark across one full epoch.
	for i := 0; i < scratchEpochPuts+1; i++ {
		p.Put(make([]byte, 100))
	}
	// Exactly 2× the mark is retained; the pool should hand it back.
	boundary := make([]byte, 200)
	p.Put(boundary)
	found := false
	for i := 0; i < scratchEpochPuts+2; i++ {
		if b := p.Get(); cap(b) == 200 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("workspace at exactly 2x the high-water mark was dropped")
	}

	// Far above the mark is dropped: no Get may ever see it again.
	for i := 0; i < 8; i++ {
		p.Put(make([]byte, 100))
	}
	p.Put(make([]byte, 100<<10))
	for i := 0; i < scratchEpochPuts+2; i++ {
		if b := p.Get(); cap(b) >= 100<<10 {
			t.Fatalf("oversized workspace (cap %d) was retained", cap(b))
		}
	}

	// The very first put of a fresh sized pool is always retained (no mark
	// to compare against yet).
	p2 := NewScratchPoolSized(fresh, func(b []byte) int { return cap(b) })
	p2.Put(make([]byte, 1<<20))
	if b := p2.Get(); cap(b) != 1<<20 {
		t.Fatal("first put must establish, not trip, the high-water mark")
	}
}

// TestScratchPoolSizedEpochAging: after two epochs of small puts, the old
// large mark ages out and large workspaces are dropped again.
func TestScratchPoolSizedEpochAging(t *testing.T) {
	p := NewScratchPoolSized(func() []byte { return nil }, func(b []byte) int { return cap(b) })
	p.Put(make([]byte, 1<<20)) // one huge burst workspace
	for i := 0; i < 2*scratchEpochPuts; i++ {
		p.Put(make([]byte, 64))
	}
	if !p.oversized(1 << 20) {
		t.Fatal("burst-sized workspace still within cap after the mark aged out")
	}
	if p.oversized(100) {
		t.Fatal("normal-sized workspace dropped")
	}
}
