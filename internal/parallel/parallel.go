// Package parallel is the repo-wide deterministic parallel execution
// substrate: a bounded worker pool with ForEach/Map/MapReduce/Blocks helpers
// plus seed splitting, so every work item derives its own rand.Rand from
// (seed, index) and results are bit-identical regardless of worker count.
//
// Two invariants make that determinism contract hold:
//
//  1. Work items never share mutable state: each item writes only its own
//     output slot (Map) or its own index range (Blocks), and any randomness
//     comes from SplitSeed/RNG keyed by the item index, never from a shared
//     stream.
//  2. Reductions happen in index order on the calling goroutine after all
//     items finish, and Blocks partitions depend only on (n, blockSize) —
//     never on the worker count — so floating-point summation order is fixed.
//
// The pool is hierarchical-oversubscription safe: a process-wide cap
// (MaxWorkers, default GOMAXPROCS) bounds the total number of concurrently
// running workers across all nested ForEach calls. A nested call that cannot
// acquire helper slots simply runs inline on its caller's goroutine, so
// forests growing inside parallel RIFS repetitions never explode the
// goroutine count and the pool can never deadlock.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers is the process-wide cap on concurrently running workers; helpers
// beyond it are not spawned and work runs inline instead.
var maxWorkers atomic.Int64

// inFlight counts helper goroutines currently running across all ForEach
// calls (the calling goroutines themselves are not counted).
var inFlight atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers caps the total number of concurrently working goroutines
// process-wide; n <= 0 resets the cap to GOMAXPROCS. It only affects
// scheduling, never results.
func SetMaxWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers returns the current process-wide worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// Workers resolves a requested worker count: values <= 0 select the
// process-wide maximum.
func Workers(requested int) int {
	if requested <= 0 {
		return MaxWorkers()
	}
	return requested
}

// acquire reserves one helper slot if the process-wide cap allows another
// concurrent worker beyond the caller; it never blocks.
func acquire() bool {
	for {
		cur := inFlight.Load()
		if cur+1 >= maxWorkers.Load() {
			return false
		}
		if inFlight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// release returns a helper slot.
func release() { inFlight.Add(-1) }

// ForEach runs fn(i) for every i in [0, n), using at most `workers`
// goroutines (workers <= 0 selects the process-wide maximum). The calling
// goroutine always participates, so ForEach makes progress even when the
// pool is saturated by outer calls; helper goroutines are only spawned while
// the process-wide cap has room. fn must confine its writes to per-index
// state for the results to be deterministic.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < w-1 && acquire(); h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Map runs fn for every index and returns the results in index order. If any
// invocations fail, the error of the lowest failing index is returned (a
// deterministic choice regardless of scheduling).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapReduce maps every index concurrently and folds the results into acc in
// strict index order on the calling goroutine, so non-associative reductions
// (floating-point sums) are bit-identical for any worker count.
func MapReduce[T, A any](workers, n int, fn func(i int) (T, error), acc A, reduce func(A, T) A) (A, error) {
	vals, err := Map(workers, n, fn)
	if err != nil {
		return acc, err
	}
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc, nil
}

// Blocks partitions [0, n) into contiguous blocks of blockSize indices (the
// last block may be short; blockSize <= 0 selects 64) and runs fn(lo, hi) for
// each block, concurrently. The partition depends only on n and blockSize —
// never on the worker count — so per-block partial results combined in block
// order are deterministic.
func Blocks(workers, n, blockSize int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if blockSize <= 0 {
		blockSize = 64
	}
	nb := (n + blockSize - 1) / blockSize
	ForEach(workers, nb, func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// MapBlocks partitions [0, n) like Blocks and returns one result per block in
// block order, for reductions that must combine per-block partials
// deterministically.
func MapBlocks[T any](workers, n, blockSize int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	if blockSize <= 0 {
		blockSize = 64
	}
	nb := (n + blockSize - 1) / blockSize
	out := make([]T, nb)
	ForEach(workers, nb, func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		out[b] = fn(lo, hi)
	})
	return out
}
