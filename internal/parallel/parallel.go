// Package parallel is the repo-wide deterministic parallel execution
// substrate: a bounded worker pool with ForEach/Map/MapReduce/Blocks helpers
// plus seed splitting, so every work item derives its own rand.Rand from
// (seed, index) and results are bit-identical regardless of worker count.
//
// Two invariants make that determinism contract hold:
//
//  1. Work items never share mutable state: each item writes only its own
//     output slot (Map) or its own index range (Blocks), and any randomness
//     comes from SplitSeed/RNG keyed by the item index, never from a shared
//     stream.
//  2. Reductions happen in index order on the calling goroutine after all
//     items finish, and Blocks partitions depend only on (n, blockSize) —
//     never on the worker count — so floating-point summation order is fixed.
//
// The pool is hierarchical-oversubscription safe: a process-wide cap
// (MaxWorkers, default GOMAXPROCS) bounds the total number of concurrently
// running workers across all nested ForEach calls. A nested call that cannot
// acquire helper slots simply runs inline on its caller's goroutine, so
// forests growing inside parallel RIFS repetitions never explode the
// goroutine count and the pool can never deadlock.
//
// The pool is also the fault boundary for worker code: a panic inside a work
// item never crashes the process from a helper goroutine. Panics are
// recovered per item and reported deterministically — the panic of the
// lowest panicking index wins, regardless of scheduling — either re-panicked
// on the calling goroutine (ForEach/Blocks, preserving sequential semantics)
// or returned as a *PanicError (Map and the *Ctx variants). The *Ctx
// variants additionally stop claiming new work items once the context is
// done, so a canceled pipeline returns promptly instead of draining the
// queue.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a pool work item, converted to an
// error at the pool boundary. Index is the work-item ordinal; when several
// items panic, the lowest index is reported so the error is deterministic
// for any worker count.
type PanicError struct {
	// Index is the panicking work item's ordinal.
	Index int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: work item %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Unwrap exposes panic values that already are errors to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// maxWorkers is the process-wide cap on concurrently running workers; helpers
// beyond it are not spawned and work runs inline instead.
var maxWorkers atomic.Int64

// inFlight counts helper goroutines currently running across all ForEach
// calls (the calling goroutines themselves are not counted).
var inFlight atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMaxWorkers caps the total number of concurrently working goroutines
// process-wide; n <= 0 resets the cap to GOMAXPROCS. It only affects
// scheduling, never results.
func SetMaxWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers.Store(int64(n))
}

// MaxWorkers returns the current process-wide worker cap.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// InFlight returns the number of helper goroutines currently running across
// all pool calls — the live worker-utilization signal for telemetry (the
// calling goroutines themselves are not counted, so a fully sequential run
// reads 0).
func InFlight() int { return int(inFlight.Load()) }

// Workers resolves a requested worker count: values <= 0 select the
// process-wide maximum.
func Workers(requested int) int {
	if requested <= 0 {
		return MaxWorkers()
	}
	return requested
}

// acquire reserves one helper slot if the process-wide cap allows another
// concurrent worker beyond the caller; it never blocks.
func acquire() bool {
	for {
		cur := inFlight.Load()
		if cur+1 >= maxWorkers.Load() {
			return false
		}
		if inFlight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// release returns a helper slot.
func release() { inFlight.Add(-1) }

// run is the shared dispatch loop: fn(i) for every i in [0, n) on at most
// `workers` goroutines, with per-item panic recovery. It returns the
// recovered panic of the lowest panicking index (nil if none panicked). All
// items run even after a panic — an early stop would make which panic wins
// depend on scheduling. A non-nil ctx makes workers stop claiming new items
// once the context is done; items already started always complete.
func run(ctx context.Context, workers, n int, fn func(i int)) *PanicError {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	var pmu sync.Mutex
	var first *PanicError
	item := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				stack := debug.Stack()
				pmu.Lock()
				if first == nil || i < first.Index {
					first = &PanicError{Index: i, Value: v, Stack: stack}
				}
				pmu.Unlock()
			}
		}()
		fn(i)
	}
	if w <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			item(i)
		}
		return first
	}
	var next atomic.Int64
	work := func() {
		for {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			item(i)
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < w-1 && acquire(); h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work()
	wg.Wait()
	return first
}

// ForEach runs fn(i) for every i in [0, n), using at most `workers`
// goroutines (workers <= 0 selects the process-wide maximum). The calling
// goroutine always participates, so ForEach makes progress even when the
// pool is saturated by outer calls; helper goroutines are only spawned while
// the process-wide cap has room. fn must confine its writes to per-index
// state for the results to be deterministic.
//
// A panic in fn is recovered at the pool boundary and re-panicked on the
// calling goroutine as a *PanicError wrapping the original value — the
// lowest panicking index wins deterministically — so a worker panic is
// recoverable by the caller instead of crashing the process from a helper
// goroutine.
func ForEach(workers, n int, fn func(i int)) {
	if pe := run(nil, workers, n, fn); pe != nil {
		panic(pe)
	}
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// workers stop claiming new work items (items already started complete) and
// ForEachCtx returns ctx.Err() instead of draining the queue. A panic in fn
// is returned as a *PanicError rather than re-panicked. A nil ctx never
// cancels.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if pe := run(ctx, workers, n, fn); pe != nil {
		return pe
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// Map runs fn for every index and returns the results in index order. If any
// invocations fail, the error of the lowest failing index is returned (a
// deterministic choice regardless of scheduling); a panic counts as that
// index failing with a *PanicError.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(nil, workers, n, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, remaining
// work items are skipped and ctx.Err() is returned. A nil ctx never cancels.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	pe := run(ctx, workers, n, func(i int) { out[i], errs[i] = fn(i) })
	if pe != nil && errs[pe.Index] == nil {
		errs[pe.Index] = pe
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapReduce maps every index concurrently and folds the results into acc in
// strict index order on the calling goroutine, so non-associative reductions
// (floating-point sums) are bit-identical for any worker count.
func MapReduce[T, A any](workers, n int, fn func(i int) (T, error), acc A, reduce func(A, T) A) (A, error) {
	return MapReduceCtx(nil, workers, n, fn, acc, reduce)
}

// MapReduceCtx is MapReduce with cooperative cancellation (see MapCtx).
func MapReduceCtx[T, A any](ctx context.Context, workers, n int, fn func(i int) (T, error), acc A, reduce func(A, T) A) (A, error) {
	vals, err := MapCtx(ctx, workers, n, fn)
	if err != nil {
		return acc, err
	}
	for _, v := range vals {
		acc = reduce(acc, v)
	}
	return acc, nil
}

// Blocks partitions [0, n) into contiguous blocks of blockSize indices (the
// last block may be short; blockSize <= 0 selects 64) and runs fn(lo, hi) for
// each block, concurrently. The partition depends only on n and blockSize —
// never on the worker count — so per-block partial results combined in block
// order are deterministic.
func Blocks(workers, n, blockSize int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if blockSize <= 0 {
		blockSize = 64
	}
	nb := (n + blockSize - 1) / blockSize
	ForEach(workers, nb, func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// MapBlocks partitions [0, n) like Blocks and returns one result per block in
// block order, for reductions that must combine per-block partials
// deterministically.
func MapBlocks[T any](workers, n, blockSize int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	if blockSize <= 0 {
		blockSize = 64
	}
	nb := (n + blockSize - 1) / blockSize
	out := make([]T, nb)
	ForEach(workers, nb, func(b int) {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		out[b] = fn(lo, hi)
	})
	return out
}
