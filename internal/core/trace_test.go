package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/synth"
)

// pipelineStages are the span names a full traced Augment run must cover —
// the paper's §6 cost breakdown.
var pipelineStages = []string{
	"prefilter", "coreset", "join", "impute", "select", "materialize", "evaluate",
}

// tracedRun runs a small Poverty pipeline with a trace attached.
func tracedRun(t *testing.T, workers int, trace *obs.Trace) *Result {
	t.Helper()
	corpus := synth.Poverty(synth.Config{Seed: 71, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		t.Fatal("discovery found nothing")
	}
	res, err := Augment(corpus.Base, cands, Options{
		Target:      corpus.Target,
		CoresetSize: 192,
		// A small budget forces several batches, so carried-forward columns
		// are re-encoded and the encode cache sees reuse.
		Budget:    48,
		Selector:  &featsel.RIFS{Config: featsel.RIFSConfig{K: 3, Forest: featsel.ForestRanker{NTrees: 15, MaxDepth: 6}}},
		Estimator: fastEstimator(1),
		Seed:      72,
		Workers:   workers,
		Trace:     trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAugmentTraceStageCoverage asserts a traced run yields a span tree
// covering every pipeline stage, with serial top-level stage durations
// summing to no more than the root, and the expected run counters.
func TestAugmentTraceStageCoverage(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	res := tracedRun(t, 0, obs.New("augment"))
	if res.Trace == nil {
		t.Fatal("Result.Trace not populated")
	}
	counts := res.Trace.SpanCounts()
	for _, stage := range pipelineStages {
		if counts[stage] == 0 {
			t.Fatalf("stage %q missing from span tree (have %v)", stage, counts)
		}
	}
	if counts["join.cand"] == 0 || counts["select.rep"] == 0 || counts["materialize.cand"] == 0 {
		t.Fatalf("per-item child spans missing: %v", counts)
	}

	// The root's direct children run serially, so their summed durations
	// cannot exceed the root span.
	var childSum int64
	for _, c := range res.Trace.Root.Children {
		childSum += int64(c.Dur)
	}
	if childSum > int64(res.Trace.Root.Dur) {
		t.Fatalf("top-level stage durations sum to %d > root %d", childSum, int64(res.Trace.Root.Dur))
	}

	// Counters: candidate attrition mirrors the Result fields, and the
	// caches report activity.
	c := res.Trace.Counters
	if c["candidates.considered"] != int64(res.CandidatesConsidered) ||
		c["candidates.after_dedupe"] != int64(res.CandidatesDeduped) {
		t.Fatalf("attrition counters %v disagree with Result (%d, %d)",
			c, res.CandidatesConsidered, res.CandidatesDeduped)
	}
	if c["join.rows_matched"] <= 0 || c["join.candidates_scored"] <= 0 {
		t.Fatalf("join counters empty: %v", c)
	}
	if c["encode_cache.hits"] <= 0 {
		t.Fatalf("encode cache saw no reuse: %v", c)
	}
	out := res.Trace.Render()
	for _, stage := range pipelineStages {
		if !strings.Contains(out, stage) {
			t.Fatalf("rendered tree missing %q:\n%s", stage, out)
		}
	}
}

// TestAugmentPrepCachePreparesOnce is the regression guard for the PR 2
// caching contract: a full run must prepare each candidate table exactly
// once per (keys, granularity) — every materialize-pass join of a kept
// candidate reuses the batch phase's preparation, so cache misses equal
// cache entries and the materialize pass adds only hits.
func TestAugmentPrepCachePreparesOnce(t *testing.T) {
	res := tracedRun(t, 0, obs.New("augment"))
	c := res.Trace.Counters
	misses, entries, hits := c["prep_cache.misses"], c["prep_cache.entries"], c["prep_cache.hits"]
	if entries == 0 {
		t.Fatal("prep cache never used")
	}
	if misses != entries {
		t.Fatalf("prep cache misses %d != entries %d: some table was prepared more than once", misses, entries)
	}
	if len(res.KeptTables) > 0 && hits == 0 {
		t.Fatalf("kept tables %v were materialized without any cache hit", res.KeptTables)
	}
}

// normalizeTree renders a span tree's structure — names, ordinals, labels,
// attributes, nesting — without durations, the scheduling-independent shape
// two runs of the same seeded pipeline must share.
func normalizeTree(s *obs.SpanStat, depth int, b *strings.Builder) {
	fmt.Fprintf(b, "%*s%s[%d] %s %v\n", depth*2, "", s.Name, s.Ord, s.Label, s.Attrs)
	for _, c := range s.Children {
		normalizeTree(c, depth+1, b)
	}
}

// TestAugmentTraceWorkersStructure runs the traced pipeline at 1 and 8
// workers and asserts identical span-tree structure and counters: tracing
// may never make observability output — let alone results — depend on
// scheduling.
func TestAugmentTraceWorkersStructure(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	shape := func(workers int) (string, map[string]int64) {
		res := tracedRun(t, workers, obs.New("augment"))
		var b strings.Builder
		normalizeTree(res.Trace.Root, 0, &b)
		return b.String(), res.Trace.Counters
	}
	one, oneC := shape(1)
	eight, eightC := shape(8)
	if one != eight {
		t.Fatalf("span tree structure differs between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s", one, eight)
	}
	for name, v := range oneC {
		if eightC[name] != v {
			t.Fatalf("counter %s differs: %d (1 worker) vs %d (8 workers)", name, v, eightC[name])
		}
	}
}

// TestAugmentTraceToggleBitIdentical asserts the tracing on/off toggle
// changes no result bit: same augmented CSV bytes, same scores, same kept
// columns.
func TestAugmentTraceToggleBitIdentical(t *testing.T) {
	plain := tracedRun(t, 0, nil)
	traced := tracedRun(t, 0, obs.New("augment"))

	if plain.Trace != nil {
		t.Fatal("untraced run must leave Result.Trace nil")
	}
	if plain.BaseScore != traced.BaseScore || plain.FinalScore != traced.FinalScore {
		t.Fatalf("scores differ with tracing: base %v vs %v, final %v vs %v",
			plain.BaseScore, traced.BaseScore, plain.FinalScore, traced.FinalScore)
	}
	var a, b bytes.Buffer
	if err := plain.Table.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := traced.Table.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("augmented table bytes differ with tracing on vs off")
	}
}
