package core

import (
	"fmt"
	"sort"

	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/discovery"
)

// Resource budgets: Options.MaxCells and Options.MaxCandidateBytes bound a
// run's projected working set. A run over budget does not fail — it walks a
// deterministic degradation ladder, shedding the least valuable work first:
//
//  1. tighten the tuple-ratio prefilter (halve τ, up to 4 times) — drops
//     the high-fanout candidates that inflate the joined width most;
//  2. shrink the coreset (halve, floor 64 rows) — the paper's own lever for
//     trading fidelity against cost;
//  3. cap candidates in descending discovery-score order — keep the most
//     promising prefix that fits.
//
// Every step is a pure function of (inputs, options), so the ladder takes
// identical steps at any worker count, and each step is recorded in
// Result.Degraded and the budget.* counters.

// budgetFloorCoreset is the smallest coreset the ladder will shrink to;
// below this the sample is too small for selection to mean anything.
const budgetFloorCoreset = 64

// maxTauTightenings caps rung 1 of the ladder.
const maxTauTightenings = 4

// estimateCells projects the working-set size in cells: coreset rows times
// the base width plus every column the admitted candidates could add.
func estimateCells(rows, baseCols int, cands []discovery.Candidate) int64 {
	cols := int64(baseCols)
	for _, c := range cands {
		added := c.Table.NumCols() - len(c.Keys)
		if added > 0 {
			cols += int64(added)
		}
	}
	return int64(rows) * cols
}

// estimateCandidateBytes sums the admitted candidate tables' cell counts at
// 8 bytes per cell, counting each distinct table once (several candidates
// may propose different keys into the same table).
func estimateCandidateBytes(cands []discovery.Candidate) int64 {
	seen := make(map[string]bool, len(cands))
	var total int64
	for _, c := range cands {
		name := c.Table.Name()
		if seen[name] {
			continue
		}
		seen[name] = true
		total += int64(c.Table.NumRows()) * int64(c.Table.NumCols()) * 8
	}
	return total
}

// applyBudgets runs the degradation ladder. It returns the admitted
// candidates (original order preserved), the possibly shrunk coreset size,
// the number of additional candidates removed by prefilter tightening (to
// keep Result.CandidatesFiltered honest), and the recorded steps.
func applyBudgets(baseRows, baseCols int, cands []discovery.Candidate, size int, opts *Options) ([]discovery.Candidate, int, int, []Degradation) {
	if opts.MaxCells <= 0 && opts.MaxCandidateBytes <= 0 {
		return cands, size, 0, nil
	}
	var degs []Degradation
	extraFiltered := 0
	rows := size
	if rows > baseRows || opts.CoresetStrategy == coreset.Sketch {
		rows = baseRows
	}

	// Rung 1: tighten the tuple-ratio prefilter. Only meaningful when the
	// prefilter is on (τ > 0) — inventing a τ the user didn't ask for would
	// change semantics beyond the budget's mandate.
	tau := opts.TupleRatioTau
	for i := 0; i < maxTauTightenings && opts.MaxCells > 0 && tau > 0; i++ {
		before := estimateCells(rows, baseCols, cands)
		if before <= opts.MaxCells {
			break
		}
		tau /= 2
		next, removed := FilterTupleRatio(baseRows, cands, tau)
		if len(next) == len(cands) {
			continue // no candidate crossed the tighter threshold; try again
		}
		cands = next
		extraFiltered += removed
		degs = append(degs, Degradation{
			Action: "tighten-tuple-ratio",
			Budget: "max-cells",
			Detail: fmt.Sprintf("τ=%g, %d candidates dropped", tau, removed),
			Before: before,
			After:  estimateCells(rows, baseCols, cands),
		})
	}

	// Rung 2: shrink the coreset.
	for opts.MaxCells > 0 && size > budgetFloorCoreset {
		before := estimateCells(rows, baseCols, cands)
		if before <= opts.MaxCells {
			break
		}
		size /= 2
		if size < budgetFloorCoreset {
			size = budgetFloorCoreset
		}
		if size < rows && opts.CoresetStrategy != coreset.Sketch {
			// Sketching joins on all rows (the sketch happens post-encode),
			// so a smaller sketch does not shrink the joined working set.
			rows = size
		}
		degs = append(degs, Degradation{
			Action: "shrink-coreset",
			Budget: "max-cells",
			Detail: fmt.Sprintf("coreset=%d rows", size),
			Before: before,
			After:  estimateCells(rows, baseCols, cands),
		})
	}

	// Rung 3: cap candidates by score. Admission walks candidates in
	// descending score (ties broken by original position, so the order is
	// total and deterministic) and keeps each one only if the running cells
	// and bytes estimates stay within every configured budget. The admitted
	// set keeps its original relative order — the join plan depends on it.
	cellsBefore := estimateCells(rows, baseCols, cands)
	bytesBefore := estimateCandidateBytes(cands)
	overCells := opts.MaxCells > 0 && cellsBefore > opts.MaxCells
	overBytes := opts.MaxCandidateBytes > 0 && bytesBefore > opts.MaxCandidateBytes
	if overCells || overBytes {
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return cands[order[a]].Score > cands[order[b]].Score
		})
		admitted := make([]bool, len(cands))
		cells := int64(rows) * int64(baseCols)
		var bytes int64
		seenBytes := make(map[string]bool)
		for _, i := range order {
			c := cands[i]
			addCells := int64(0)
			if added := c.Table.NumCols() - len(c.Keys); added > 0 {
				addCells = int64(rows) * int64(added)
			}
			addBytes := int64(0)
			if !seenBytes[c.Table.Name()] {
				addBytes = int64(c.Table.NumRows()) * int64(c.Table.NumCols()) * 8
			}
			if opts.MaxCells > 0 && cells+addCells > opts.MaxCells {
				continue
			}
			if opts.MaxCandidateBytes > 0 && bytes+addBytes > opts.MaxCandidateBytes {
				continue
			}
			admitted[i] = true
			cells += addCells
			bytes += addBytes
			seenBytes[c.Table.Name()] = true
		}
		kept := cands[:0:0]
		for i, c := range cands {
			if admitted[i] {
				kept = append(kept, c)
			}
		}
		budget := "max-cells"
		before := cellsBefore
		after := estimateCells(rows, baseCols, kept)
		if overBytes {
			budget = "max-candidate-bytes"
			before = bytesBefore
			after = estimateCandidateBytes(kept)
		}
		degs = append(degs, Degradation{
			Action: "cap-candidates",
			Budget: budget,
			Detail: fmt.Sprintf("admitted %d of %d candidates by score", len(kept), len(cands)),
			Before: before,
			After:  after,
		})
		cands = kept
	}
	return cands, size, extraFiltered, degs
}
