package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/testenv"
)

// TestCancelDuringJoin slows every join checkpoint with delay faults,
// cancels mid-batch, and asserts the run returns promptly (far sooner than
// draining the remaining candidates), with the typed ErrCanceled, a partial
// result snapshot, and no leaked goroutines.
func TestCancelDuringJoin(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	corpus, cands := chaosCorpus(t)

	const perJoin = 30 * time.Millisecond
	opts := chaosOptions(corpus, 4, faults.New(1,
		faults.Rule{Stage: "join", Ordinal: -1, Kind: faults.Delay, Delay: perJoin}))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * perJoin)
		cancel()
	}()
	start := time.Now()
	res, err := AugmentContext(ctx, corpus.Base, cands, opts)
	elapsed := time.Since(start)

	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("AugmentContext = %v, want ErrCanceled", err)
	}
	if res == nil || res.CandidatesConsidered == 0 {
		t.Fatalf("no partial result snapshot: %+v", res)
	}
	if res.Table != nil {
		t.Fatal("interrupted run must not claim a final table")
	}
	// Draining the queue would cost ~(candidates × perJoin); the join loop
	// checks the context per candidate, so the run must stop well short.
	planned := res.CandidatesDeduped - res.CandidatesFiltered
	drain := time.Duration(planned) * perJoin
	if planned > 8 && elapsed > drain/2 {
		t.Fatalf("canceled run took %v, drain would be %v — not prompt", elapsed, drain)
	}
}

// TestTimeoutDuringJoin is the Options.Timeout variant: the deadline fires
// mid-join and surfaces as the typed ErrDeadline.
func TestTimeoutDuringJoin(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	corpus, cands := chaosCorpus(t)

	opts := chaosOptions(corpus, 4, faults.New(1,
		faults.Rule{Stage: "join", Ordinal: -1, Kind: faults.Delay, Delay: 30 * time.Millisecond}))
	opts.Timeout = 75 * time.Millisecond

	res, err := AugmentContext(context.Background(), corpus.Base, cands, opts)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("AugmentContext = %v, want ErrDeadline", err)
	}
	if res == nil {
		t.Fatal("no partial result snapshot")
	}
}

// TestCancelDuringSelection cancels as soon as RIFS starts scoring subsets
// with the run estimator and asserts the typed error, a partial snapshot,
// and no leaked goroutines. In-flight estimator fits complete (the pool
// never aborts a started work item) but no further subsets are claimed.
func TestCancelDuringSelection(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	corpus, cands := chaosCorpus(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	inner := fastEstimator(1)
	opts := chaosOptions(corpus, 4, nil)
	opts.Estimator = eval.Fitter(func(ds *ml.Dataset) ml.Model {
		once.Do(cancel) // first estimator fit = selection has started
		return inner(ds)
	})

	res, err := AugmentContext(ctx, corpus.Base, cands, opts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("AugmentContext = %v, want ErrCanceled", err)
	}
	if res == nil || len(res.Batches) != 0 {
		t.Fatalf("selection was canceled mid-batch; batch reports should be empty: %+v", res)
	}
}

// TestCanceledBeforeStart: an already-canceled context stops the run at the
// first checkpoint with the typed error.
func TestCanceledBeforeStart(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AugmentContext(ctx, corpus.Base, cands, chaosOptions(corpus, 2, nil))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("AugmentContext = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("no partial result snapshot")
	}
}
