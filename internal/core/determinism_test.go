package core

import (
	"testing"

	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/synth"
)

// TestAugmentWorkersDeterminism runs the full pipeline twice — Workers=1 and
// Workers=8 — under one seed and asserts identical output: same kept columns,
// same kept tables, same scores. This is the end-to-end check of the
// per-stage seed-splitting contract (no stage's randomness may depend on
// scheduling or on what ran before it).
func TestAugmentWorkersDeterminism(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		t.Fatal("discovery found nothing")
	}
	run := func(workers int) *Result {
		res, err := Augment(corpus.Base, cands, Options{
			Target:      corpus.Target,
			CoresetSize: 192,
			Selector:    &featsel.RIFS{Config: featsel.RIFSConfig{K: 3, Forest: featsel.ForestRanker{NTrees: 15, MaxDepth: 6}}},
			Estimator:   fastEstimator(1),
			Seed:        62,
			KNNImpute:   3,
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	eight := run(8)

	if len(one.KeptColumns) != len(eight.KeptColumns) {
		t.Fatalf("kept columns differ: %v vs %v", one.KeptColumns, eight.KeptColumns)
	}
	for i := range one.KeptColumns {
		if one.KeptColumns[i] != eight.KeptColumns[i] {
			t.Fatalf("kept columns differ: %v vs %v", one.KeptColumns, eight.KeptColumns)
		}
	}
	for i := range one.KeptTables {
		if one.KeptTables[i] != eight.KeptTables[i] {
			t.Fatalf("kept tables differ: %v vs %v", one.KeptTables, eight.KeptTables)
		}
	}
	if one.BaseScore != eight.BaseScore || one.FinalScore != eight.FinalScore {
		t.Fatalf("scores differ across worker counts: base %v vs %v, final %v vs %v",
			one.BaseScore, eight.BaseScore, one.FinalScore, eight.FinalScore)
	}
}
