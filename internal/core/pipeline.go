package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/arda-ml/arda/internal/automl"
	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
)

// Seed-splitting stage tags: every randomized pipeline stage derives its own
// rand.Rand from (Options.Seed, stage, ids...) instead of advancing one
// shared stream. A shared *rand.Rand threaded through the stages was a latent
// hazard — any reordering, skipped candidate, or concurrency silently changed
// every downstream draw — whereas derived per-stage RNGs keep each stage's
// randomness independent of what ran before it.
const (
	seedStageCoreset int64 = iota + 1
	seedStageJoin
	seedStageImpute
	seedStageSketch
	seedStageMaterialize
	seedStageFinal
)

// stageSeed folds a stage/id path into the run seed via repeated seed
// splitting; stageRNG turns the result into an independent RNG. Split out so
// the seed-path uniqueness test exercises exactly the derivation the
// pipeline uses.
func stageSeed(seed int64, ids ...int64) int64 {
	for _, id := range ids {
		seed = parallel.SplitSeed(seed, id)
	}
	return seed
}

// stageRNG derives an independent RNG from the run seed and a stage/id path.
func stageRNG(seed int64, ids ...int64) *rand.Rand {
	return rand.New(rand.NewSource(stageSeed(seed, ids...)))
}

// Augment runs the full ARDA pipeline: prefilter and plan the candidate
// joins, execute them batch-by-batch against the coreset, select features
// against injected noise, materialize the kept features over the full base
// table, and report base-vs-augmented holdout scores.
func Augment(base *dataframe.Table, cands []discovery.Candidate, opts Options) (*Result, error) {
	return AugmentContext(context.Background(), base, cands, opts)
}

// AugmentContext is Augment under a context. Cancellation is cooperative:
// the context is checked at every stage boundary, before every candidate
// join, and inside the parallel loops of selection, so a canceled or
// deadline-bounded run stops promptly instead of draining its work queues.
// On interruption it returns the typed ErrCanceled or ErrDeadline together
// with a partial Result snapshot — the attrition counts, batch reports, and
// quarantine log accumulated so far (Result.Table and the scores are only
// set by a completed run). Options.Timeout > 0 additionally bounds the run's
// wall-clock duration. The context only gates scheduling: a run that
// completes is bit-identical to the same run without a context.
func AugmentContext(ctx context.Context, base *dataframe.Table, cands []discovery.Candidate, opts Options) (*Result, error) {
	start := time.Now()
	if err := opts.validate(base); err != nil {
		return nil, err
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	task, classes, err := TaskOf(base, opts.Target)
	if err != nil {
		return nil, err
	}
	if !opts.Selector.Supports(task) {
		return nil, fmt.Errorf("core: selector %q does not support %s tasks", opts.Selector.Name(), task)
	}
	if opts.Workers > 0 {
		parallel.SetMaxWorkers(opts.Workers)
	}
	estimator := opts.Estimator
	estForest := opts.EstimatorForest
	if estimator == nil {
		estimator = automl.DefaultEstimator(opts.Seed)
		fc := automl.DefaultForestConfig(opts.Seed)
		estForest = &fc
	}

	// Tracing is observational only: spans and counters never feed back into
	// the pipeline and draw no randomness, so every obs call below is a
	// no-op (and free) when opts.Trace is nil.
	tr := opts.Trace
	root := tr.Root()
	cRowsMatched := tr.Counter("join.rows_matched")
	cCandScored := tr.Counter("join.candidates_scored")
	cCandSkipped := tr.Counter("join.candidates_skipped")
	cFeatOffered := tr.Counter("select.features_offered")
	cFeatKept := tr.Counter("select.features_kept")
	// Pre-registered so metrics always carry the keys; RIFS adds to the
	// first when decided threshold buckets let it skip outstanding
	// repetitions, to the cache pair when the run-level split cache serves
	// (or cold-builds) presorted columns, and to the last when the sweep
	// schedules nested candidate forests as one cross-forest tree wave.
	tr.Counter("select.reps_short_circuited")
	tr.Counter("select.splitset_cache_hits")
	tr.Counter("select.splitset_cache_misses")
	tr.Counter("select.trees_scheduled")
	cQuarantined := tr.Counter("quarantine.total")
	cCkSaved := tr.Counter("checkpoint.saved")
	cCkFailed := tr.Counter("checkpoint.write_failures")
	// Latency histograms, pre-registered for the same reason: a live scrape
	// (`-metrics-addr`) must expose every stage's distribution from the first
	// request, not only after the stage first completes. Ended spans feed the
	// histogram of their name automatically; the last two are fed below span
	// granularity by ml tree fits and eval subset scoring.
	for _, h := range []string{
		"prefilter", "coreset", "batch", "join", "join.cand", "impute",
		"select", "select.rep", "select.sweep", "materialize",
		"materialize.cand", "evaluate", "select.tree_fit", "select.subset_score",
	} {
		tr.Histogram(h)
	}

	res := &Result{CandidatesConsidered: len(cands)}
	inj := opts.FaultInjector

	// Durability: ck is nil unless Options.CheckpointDir is set, and every
	// checkpoint call below no-ops on nil. Under Resume, rs holds the last
	// completed stage's cumulative state and doneRank its position in the
	// stage sequence; done() gates each region so the run re-executes only
	// what the snapshot does not already cover. The deterministic cheap
	// prefix (prefilter, plan, budget ladder) is always recomputed — the
	// fingerprint guarantees it comes out identical.
	ck, rs, resumeEntry, err := openRunLog(base, cands, &opts)
	if err != nil {
		return nil, err
	}
	doneRank := -1
	if resumeEntry != nil {
		doneRank = stageRank(resumeEntry.Stage, resumeEntry.Batch)
		res.ResumedFrom = stageLabel(*resumeEntry)
		res.Quarantined = rs.Quarantined
		res.Batches = rs.Batches
		res.SelectionElapsed = time.Duration(rs.SelectionNanos)
		opts.logf("resuming from checkpoint %s (%d stages on disk)", res.ResumedFrom, resumeEntry.Seq+1)
	}
	done := func(stage string, batch int) bool { return doneRank >= stageRank(stage, batch) }

	// Declared ahead of the stage regions so the snapshot closure can see
	// them as they come into existence.
	var accum *dataframe.Table
	var keptByCandidate [][]string
	saveCk := func(stage string, batch int, sseed int64, mut func(*runState)) {
		if ck == nil || done(stage, batch) {
			return
		}
		st := &runState{
			Accum:           accum,
			KeptByCandidate: keptByCandidate,
			Quarantined:     res.Quarantined,
			Batches:         res.Batches,
			Degraded:        res.Degraded,
			SelectionNanos:  int64(res.SelectionElapsed),
		}
		if mut != nil {
			mut(st)
		}
		seq := len(ck.Entries())
		// The fencing guard runs before anything touches disk: a stale owner
		// (lease lost to another process) must not write into a checkpoint
		// log the new owner is appending to. Skipping is the correct
		// response — the run is aborted separately at its next cancellation
		// point; here we only refuse the write.
		if opts.CheckpointGuard != nil {
			if err := opts.CheckpointGuard(); err != nil {
				cCkFailed.Add(1)
				opts.logf("checkpoint: fenced out of %s snapshot: %v", stage, err)
				return
			}
		}
		// A failed checkpoint write (injected or real) must never fail the
		// run — durability degrades, the run continues.
		if err := faultAt(inj, "checkpoint.write", seq); err != nil {
			cCkFailed.Add(1)
			opts.logf("checkpoint: skipping %s snapshot: %v", stage, err)
			return
		}
		if err := ck.Save(stage, batch, sseed, st); err != nil {
			cCkFailed.Add(1)
			opts.logf("checkpoint: writing %s snapshot: %v", stage, err)
			return
		}
		cCkSaved.Add(1)
	}

	span := root.Child("prefilter", 0)

	// The fault boundary: a candidate that faults is quarantined — recorded
	// and dropped — never fatal. partial finalizes the result snapshot for an
	// interrupted return.
	quarantine := func(name, stage string, reason error) {
		res.Quarantined = append(res.Quarantined, QuarantinedCandidate{Name: name, Stage: stage, Reason: reason.Error()})
		cQuarantined.Add(1)
		tr.Counter("quarantine." + stage).Add(1)
		opts.logf("quarantine: %s at %s: %v", name, stage, reason)
	}
	partial := func(err error) (*Result, error) {
		res.Elapsed = time.Since(start)
		// An interrupted run still finishes its trace: Finish closes the open
		// spans at their partial durations, emits the terminal metrics and run
		// event, and flushes the sinks — so -trace files and live /events
		// streams end valid (and complete) on cancellation or timeout too.
		res.Trace = tr.Finish()
		return res, err
	}
	cands = DedupeCandidates(base, cands)
	res.CandidatesDeduped = len(cands)
	cands, res.CandidatesFiltered = FilterTupleRatio(base.NumRows(), cands, opts.TupleRatioTau)

	size := opts.CoresetSize
	if size <= 0 {
		size = coreset.DefaultSize(base.NumRows())
	}

	// Resource budgets: over-budget runs degrade deterministically instead
	// of failing; the ladder's decisions depend only on inputs and options,
	// never on worker count or timing.
	var extraFiltered int
	cands, size, extraFiltered, res.Degraded = applyBudgets(base.NumRows(), base.NumCols(), cands, size, &opts)
	res.CandidatesFiltered += extraFiltered
	if len(res.Degraded) > 0 {
		tr.Counter("budget.degradations").Add(int64(len(res.Degraded)))
		for _, d := range res.Degraded {
			tr.Counter("budget." + d.Action).Add(1)
			opts.logf("budget: %s (%s): %s [%d -> %d]", d.Action, d.Budget, d.Detail, d.Before, d.After)
		}
	}
	tr.Gauge("budget.estimated_cells").Set(estimateCells(min(size, base.NumRows()), base.NumCols(), cands))
	tr.Gauge("budget.estimated_candidate_bytes").Set(estimateCandidateBytes(cands))

	span.SetInt("considered", int64(res.CandidatesConsidered))
	span.SetInt("after_dedupe", int64(res.CandidatesDeduped))
	span.SetInt("after_tuple_ratio", int64(len(cands)))
	tr.Gauge("candidates.considered").Set(int64(res.CandidatesConsidered))
	tr.Gauge("candidates.after_dedupe").Set(int64(res.CandidatesDeduped))
	tr.Gauge("candidates.after_tuple_ratio").Set(int64(len(cands)))
	span.End()
	saveCk("prefilter", -1, 0, nil)
	if err := interruptOf(ctx); err != nil {
		return partial(err)
	}

	budget := opts.Budget
	if budget <= 0 {
		budget = size
	}

	// Coreset: sampling strategies reduce rows before joining; sketching
	// must happen after the join, so the sketch strategy joins on all rows
	// and sketches each batch's numeric view. The clone matters: batch
	// imputation mutates columns in place and must never leak into the
	// caller's table. A resumed run restores the snapshot instead — the
	// restored table already carries every imputation to date.
	span = root.Child("coreset", 0)
	var joinBase *dataframe.Table
	if done("coreset", -1) {
		joinBase = rs.Accum
	} else {
		joinBase = base.Clone()
		if opts.CoresetStrategy != coreset.Sketch && size < base.NumRows() {
			rng := stageRNG(opts.Seed, seedStageCoreset)
			var idx []int
			switch {
			case opts.CoresetStrategy == coreset.Stratified && task == ml.Classification:
				labels := labelCodes(base, opts.Target)
				idx = coreset.StratifiedIndices(labels, classes, size, rng)
			case opts.CoresetStrategy == coreset.Leverage:
				view := base.ToNumericView(opts.Target)
				baseDS, err := ml.NewDataset(view.Data, view.Rows, view.Cols,
					make([]float64, view.Rows), ml.Regression, 0)
				if err == nil {
					baseDS.CleanNaNs()
					idx, err = coreset.LeverageIndices(baseDS.X, baseDS.N, baseDS.D, size, rng)
				}
				if err != nil || idx == nil {
					idx = coreset.UniformIndices(base.NumRows(), size, rng)
				}
			default:
				idx = coreset.UniformIndices(base.NumRows(), size, rng)
			}
			sort.Ints(idx)
			joinBase = base.Gather(idx)
		}
	}
	span.SetInt("rows_in", int64(base.NumRows()))
	span.SetInt("rows_out", int64(joinBase.NumRows()))
	span.End()
	saveCk("coreset", -1, stageSeed(opts.Seed, seedStageCoreset), func(st *runState) {
		st.Accum = joinBase
	})
	if err := interruptOf(ctx); err != nil {
		return partial(err)
	}

	plan := BuildPlan(cands, opts.Plan, budget)
	opts.logf("plan: %s, %d candidates in %d batches (budget %d features, coreset %d rows)",
		opts.Plan, len(cands), len(plan), budget, joinBase.NumRows())

	// prefixOf assigns each candidate a stable unique column prefix. Plan
	// batches partition the candidate list in order, so the ordinal of batch
	// bi, slot ci is batchOffset[bi]+ci — plain arithmetic instead of a map
	// keyed by formatted "bi/ci" strings.
	prefixOf := make([]string, len(cands))
	for i := range prefixOf {
		prefixOf[i] = fmt.Sprintf("t%d.", i)
	}
	batchOffset := make([]int, len(plan)+1)
	for bi := range plan {
		batchOffset[bi+1] = batchOffset[bi] + len(plan[bi].Candidates)
	}

	// Per-run caches: foreign-table preparations (aggregation/resampling) are
	// reused between the batch phase and materialization, and binarize plans
	// are reused across the batch loop's re-encodings of carried-forward
	// columns. Both are valid because candidate tables are never mutated and
	// work tables are only encoded fully imputed.
	prepCache := join.NewPrepCache()
	encCache := dataframe.NewEncodeCache()

	accum = dataframe.MustNewTable(joinBase.Name(), joinBase.Columns()...)
	keptByCandidate = make([][]string, len(cands)) // candidate ordinal -> kept source columns (unprefixed)
	if rs != nil && rs.KeptByCandidate != nil {
		copy(keptByCandidate, rs.KeptByCandidate)
	}

	for bi, batch := range plan {
		if done("select", bi) {
			// The snapshot already includes this batch's effects on accum,
			// keptByCandidate, and the batch reports.
			continue
		}
		batchSpan := root.Child("batch", bi)
		var joinedCands []joinedCandidate
		var tables []string
		newCols := 0
		var work *dataframe.Table
		if done("join", bi) {
			// Resuming mid-batch: rebuild work with the exact column aliasing
			// of an uninterrupted run — accum's own column objects plus the
			// snapshot's restored added columns.
			var rerr error
			work, joinedCands, tables, newCols, rerr = restoreBatch(rs, accum)
			if rerr != nil {
				batchSpan.End()
				return nil, rerr
			}
		} else {
			joinSpan := batchSpan.Child("join", 0)
			work = dataframe.MustNewTable(accum.Name(), accum.Columns()...)
			for ci, cand := range batch.Candidates {
				if err := interruptOf(ctx); err != nil {
					joinSpan.End()
					batchSpan.End()
					return partial(err)
				}
				ord := batchOffset[bi] + ci
				prefix := prefixOf[ord]
				spec := specFor(cand, opts, prefix)
				candSpan := joinSpan.Child("join.cand", ord)
				candSpan.SetLabel(cand.Table.Name())
				if cand.Table.NumRows() == 0 {
					// An empty candidate can only contribute all-NULL columns;
					// isolate it before it wastes a join.
					cCandSkipped.Add(1)
					quarantine(cand.Table.Name(), "join", fmt.Errorf("candidate table is empty"))
					candSpan.End()
					continue
				}
				// The per-attempt RNG re-derivation keeps retried joins
				// bit-identical to first-try successes.
				bi, ci := int64(bi), int64(ci)
				jr, err := guardedJoin(ctx, inj, "join", ord,
					func() *rand.Rand { return stageRNG(opts.Seed, seedStageJoin, bi, ci) },
					func(rng *rand.Rand) (*join.Result, error) {
						return join.ExecuteCached(work, cand.Table, spec, rng, prepCache)
					})
				if err != nil {
					if isInterrupt(err) {
						candSpan.End()
						joinSpan.End()
						batchSpan.End()
						return partial(mapInterrupt(err))
					}
					// A malformed candidate (discovery is noisy by design) is
					// quarantined, not fatal.
					cCandSkipped.Add(1)
					quarantine(cand.Table.Name(), "join", err)
					candSpan.End()
					continue
				}
				candSpan.SetInt("rows_matched", int64(jr.Matched))
				candSpan.SetInt("cols_added", int64(len(jr.AddedColumns)))
				candSpan.End()
				cCandScored.Add(1)
				cRowsMatched.Add(int64(jr.Matched))
				work = jr.Table
				joinedCands = append(joinedCands, joinedCandidate{ord, cand.Table.Name(), prefix, jr.AddedColumns})
				tables = append(tables, cand.Table.Name())
				newCols += len(jr.AddedColumns)
			}
			joinSpan.End()
			saveCk("join", bi, stageSeed(opts.Seed, seedStageJoin, int64(bi)), func(st *runState) {
				st.Added, st.AddedCols, st.Tables, st.NewCols = batchSnapshot(work, joinedCands, tables, newCols)
			})
		}
		if len(joinedCands) == 0 {
			batchSpan.End()
			continue
		}
		if err := interruptOf(ctx); err != nil {
			batchSpan.End()
			return partial(err)
		}
		// Impute/encode fault sites: these stages act on the whole work
		// table, so per-candidate fault attribution happens here — a
		// candidate faulted at either site has its joined columns dropped
		// before the stage runs and the batch continues without it.
		dropFaulted := func(stage string) {
			if inj == nil {
				return
			}
			live := joinedCands[:0]
			for _, a := range joinedCands {
				if err := faultAt(inj, stage, a.ordinal); err != nil {
					quarantine(a.name, stage, err)
					for _, c := range a.cols {
						work.DropColumn(c)
					}
					newCols -= len(a.cols)
					continue
				}
				live = append(live, a)
			}
			joinedCands = live
		}
		if !done("impute", bi) {
			dropFaulted("impute")
			span = batchSpan.Child("impute", 0)
			imputeTable(work, opts, stageRNG(opts.Seed, seedStageImpute, int64(bi)))
			span.End()
			saveCk("impute", bi, stageSeed(opts.Seed, seedStageImpute, int64(bi)), func(st *runState) {
				st.Added, st.AddedCols, st.Tables, st.NewCols = batchSnapshot(work, joinedCands, tables, newCols)
			})
		}

		dropFaulted("encode")
		if len(joinedCands) == 0 {
			batchSpan.End()
			continue
		}
		view := work.ToNumericViewCached(encCache, opts.Target)
		y, err := work.TargetVector(opts.Target)
		if err != nil {
			return nil, err
		}
		ds, err := ml.NewDataset(view.Data, view.Rows, view.Cols, y, task, classes)
		if err != nil {
			return nil, err
		}
		ds.CleanNaNs()
		if opts.CoresetStrategy == coreset.Sketch {
			ds = coreset.SketchDataset(ds, size, stageRNG(opts.Seed, seedStageSketch, int64(bi)))
		}

		selSpan := batchSpan.Child("select", 0)
		selSpan.SetInt("features_in", int64(ds.D))
		if sa, ok := opts.Selector.(obs.SpanAttacher); ok {
			sa.AttachSpan(selSpan)
		}
		if fa, ok := opts.Selector.(featsel.ForestEstimatorAware); ok && estForest != nil {
			fa.SetEstimatorForest(estForest)
		}
		selStart := time.Now()
		selected, err := selectWith(ctx, opts.Selector, ds, estimator, opts.Seed+int64(bi+1))
		res.SelectionElapsed += time.Since(selStart)
		if sa, ok := opts.Selector.(obs.SpanAttacher); ok {
			sa.AttachSpan(nil)
		}
		if fa, ok := opts.Selector.(featsel.ForestEstimatorAware); ok && estForest != nil {
			fa.SetEstimatorForest(nil)
		}
		if err != nil {
			if isInterrupt(err) {
				selSpan.End()
				batchSpan.End()
				return partial(mapInterrupt(err))
			}
			return nil, fmt.Errorf("core: feature selection on batch %d: %w", bi, err)
		}
		selSpan.SetInt("features_selected", int64(len(selected)))
		selSpan.End()
		cFeatOffered.Add(int64(newCols))

		report := BatchReport{Tables: tables, CandidateFeatures: newCols}
		keptSources := map[string]bool{}
		for _, j := range selected {
			name := view.Names[j]
			src := sourceColumn(name)
			for _, a := range joinedCands {
				if strings.HasPrefix(src, a.prefix) {
					if !keptSources[src] {
						keptSources[src] = true
						keptByCandidate[a.ordinal] = append(keptByCandidate[a.ordinal],
							strings.TrimPrefix(src, a.prefix))
						report.KeptFeatures = append(report.KeptFeatures, src)
					}
					break
				}
			}
		}
		// Carry kept columns forward so later batches can co-predict with
		// them.
		for _, name := range report.KeptFeatures {
			if col := work.Column(name); col != nil && !accum.HasColumn(name) {
				if err := accum.AddColumn(col); err != nil {
					return nil, err
				}
			}
		}
		if opts.KeepScores && len(report.KeptFeatures) > 0 {
			report.Score = holdoutScoreOf(accum, opts.Target, task, classes, estimator, opts.Seed)
		}
		cFeatKept.Add(int64(len(report.KeptFeatures)))
		opts.logf("batch %d/%d: %d tables, %d candidate features, kept %d",
			bi+1, len(plan), len(tables), newCols, len(report.KeptFeatures))
		res.Batches = append(res.Batches, report)
		saveCk("select", bi, opts.Seed+int64(bi+1), nil)
		batchSpan.End()
	}

	// Materialize kept features over the full base table. Clone so the
	// final imputation cannot mutate the caller's table. The stage region
	// includes the final imputation — its snapshot captures the fully
	// imputed table, so a resume never re-imputes.
	if err := interruptOf(ctx); err != nil {
		return partial(err)
	}
	var final *dataframe.Table
	if done("materialize", -1) {
		final = rs.Final
		res.KeptColumns = rs.KeptColumns
		res.KeptTables = rs.KeptTables
	} else {
		matSpan := root.Child("materialize", 0)
		final = base.Clone()
		seenTables := make(map[string]bool)
		for bi, batch := range plan {
			for ci, cand := range batch.Candidates {
				ord := batchOffset[bi] + ci
				kept := keptByCandidate[ord]
				if len(kept) == 0 {
					continue
				}
				if err := interruptOf(ctx); err != nil {
					matSpan.End()
					return partial(err)
				}
				prefix := prefixOf[ord]
				spec := specFor(cand, opts, prefix)
				candSpan := matSpan.Child("materialize.cand", ord)
				candSpan.SetLabel(cand.Table.Name())
				jr, err := guardedJoin(ctx, inj, "materialize", ord,
					func() *rand.Rand { return stageRNG(opts.Seed, seedStageMaterialize, int64(ord)) },
					func(rng *rand.Rand) (*join.Result, error) {
						return join.ExecuteCached(final, cand.Table, spec, rng, prepCache)
					})
				if err != nil {
					if isInterrupt(err) {
						candSpan.End()
						matSpan.End()
						return partial(mapInterrupt(err))
					}
					quarantine(cand.Table.Name(), "materialize", err)
					candSpan.End()
					continue
				}
				candSpan.SetInt("rows_matched", int64(jr.Matched))
				candSpan.SetInt("cols_kept", int64(len(kept)))
				candSpan.End()
				cRowsMatched.Add(int64(jr.Matched))
				keptSet := make(map[string]bool, len(kept))
				for _, k := range kept {
					keptSet[prefix+k] = true
				}
				next := jr.Table
				for _, name := range jr.AddedColumns {
					if !keptSet[name] {
						next.DropColumn(name)
					} else {
						res.KeptColumns = append(res.KeptColumns, name)
					}
				}
				final = next
				if !seenTables[cand.Table.Name()] {
					seenTables[cand.Table.Name()] = true
					res.KeptTables = append(res.KeptTables, cand.Table.Name())
				}
			}
		}
		matSpan.SetInt("cols_kept", int64(len(res.KeptColumns)))
		matSpan.End()
		if err := interruptOf(ctx); err != nil {
			return partial(err)
		}
		span = root.Child("impute", 0)
		imputeTable(final, opts, stageRNG(opts.Seed, seedStageFinal))
		span.End()
		saveCk("materialize", -1, stageSeed(opts.Seed, seedStageFinal), func(st *runState) {
			st.Final = final
			st.KeptColumns = res.KeptColumns
			st.KeptTables = res.KeptTables
		})
	}
	res.Table = final
	opts.logf("materialized %d kept columns from %d tables over %d rows",
		len(res.KeptColumns), len(res.KeptTables), final.NumRows())

	// Final estimate: base vs augmented holdout score under the same
	// estimator.
	if err := interruptOf(ctx); err != nil {
		return partial(err)
	}
	span = root.Child("evaluate", 0)
	if done("evaluate", -1) {
		res.BaseScore = rs.BaseScore
		res.FinalScore = rs.FinalScore
		res.EstimatorName = rs.EstimatorName
		res.Significance = rs.Significance
	} else {
		res.BaseScore = holdoutScoreOf(base, opts.Target, task, classes, estimator, opts.Seed)
		res.FinalScore = holdoutScoreOf(final, opts.Target, task, classes, estimator, opts.Seed)
		res.EstimatorName = "random forest"

		if opts.Significance > 0 {
			baseDS, errB := DatasetOf(base, opts.Target, task, classes)
			augDS, errA := DatasetOf(final, opts.Target, task, classes)
			if errB == nil && errA == nil {
				res.Significance = eval.TestAugmentation(baseDS, augDS, estimator, opts.Significance, opts.Seed)
			}
		}
		saveCk("evaluate", -1, 0, func(st *runState) {
			st.Final = final
			st.KeptColumns = res.KeptColumns
			st.KeptTables = res.KeptTables
			st.BaseScore = res.BaseScore
			st.FinalScore = res.FinalScore
			st.EstimatorName = res.EstimatorName
			st.Significance = res.Significance
		})
	}
	span.End()

	ps := prepCache.Stats()
	tr.Gauge("prep_cache.hits").Set(ps.Hits)
	tr.Gauge("prep_cache.misses").Set(ps.Misses)
	tr.Gauge("prep_cache.entries").Set(int64(prepCache.Len()))
	es := encCache.Stats()
	tr.Gauge("encode_cache.hits").Set(es.Hits)
	tr.Gauge("encode_cache.misses").Set(es.Misses)
	tr.Gauge("encode_cache.entries").Set(int64(encCache.Len()))

	res.Elapsed = time.Since(start)
	res.Trace = tr.Finish()
	return res, nil
}

// selectWith runs feature selection, preferring the selector's
// context-aware path when it implements featsel.ContextSelector so that a
// canceled run stops selection promptly.
func selectWith(ctx context.Context, sel featsel.Selector, ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	if cs, ok := sel.(featsel.ContextSelector); ok {
		return cs.SelectCtx(ctx, ds, est, seed)
	}
	return sel.Select(ds, est, seed)
}

// imputeTable applies the configured imputation strategy: kNN when enabled
// (falling back to simple imputation for anything kNN cannot fill), simple
// median/random otherwise.
func imputeTable(t *dataframe.Table, opts Options, rng *rand.Rand) {
	if opts.KNNImpute > 0 {
		join.KNNImpute(t, opts.KNNImpute)
	}
	join.Impute(t, rng)
}

// specFor builds the join spec for a candidate under the run options. Geo
// candidates override the run-wide soft method: they only make sense with
// GeoNearest matching.
func specFor(c discovery.Candidate, opts Options, prefix string) *join.Spec {
	method := opts.SoftMethod
	if c.Geo {
		method = join.GeoNearest
	}
	return &join.Spec{
		Keys:         c.Keys,
		Method:       method,
		Tolerance:    opts.Tolerance,
		TimeResample: !opts.DisableTimeResample,
		Prefix:       prefix,
	}
}

// sourceColumn maps a numeric-view feature name back to its table column:
// one-hot indicators "col=value" map to "col".
func sourceColumn(name string) string {
	if i := strings.LastIndex(name, "="); i > 0 {
		return name[:i]
	}
	return name
}

// labelCodes extracts integer class codes of the target column.
func labelCodes(t *dataframe.Table, target string) []int {
	c, _ := t.Column(target).(*dataframe.CategoricalColumn)
	if c == nil {
		return make([]int, t.NumRows())
	}
	return c.Codes
}

// holdoutScoreOf builds a numeric dataset from the table (imputing a copy if
// needed) and returns the estimator's holdout task score.
func holdoutScoreOf(t *dataframe.Table, target string, task ml.Task, classes int, est eval.Fitter, seed int64) float64 {
	ds, err := DatasetOf(t, target, task, classes)
	if err != nil {
		return 0
	}
	split := eval.TrainTestSplit(ds, 0.25, seed)
	return eval.HoldoutScore(ds, split, est)
}

// DatasetOf converts a table into an ml.Dataset for the given target,
// one-hot-encoding categoricals and mean-filling any remaining NaNs.
func DatasetOf(t *dataframe.Table, target string, task ml.Task, classes int) (*ml.Dataset, error) {
	view := t.ToNumericView(target)
	y, err := t.TargetVector(target)
	if err != nil {
		return nil, err
	}
	ds, err := ml.NewDataset(view.Data, view.Rows, view.Cols, y, task, classes)
	if err != nil {
		return nil, err
	}
	ds.CleanNaNs()
	return ds, nil
}
