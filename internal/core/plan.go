package core

import (
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
)

// Batch is one unit of the join plan: the candidates joined together before
// a feature-selection pass.
type Batch struct {
	Candidates []discovery.Candidate
	// EstimatedFeatures is the projected number of numeric feature columns
	// the batch contributes.
	EstimatedFeatures int
}

// EstimateFeatures projects how many numeric feature columns a candidate
// join adds: one per numeric/time column, and one per one-hot indicator for
// categorical columns (capped at dataframe.MaxOneHotCardinality), excluding
// the join-key columns.
func EstimateFeatures(c discovery.Candidate) int {
	keyCols := make(map[string]bool, len(c.Keys))
	for _, kp := range c.Keys {
		keyCols[kp.ForeignColumn] = true
	}
	total := 0
	for _, col := range c.Table.Columns() {
		if keyCols[col.Name()] {
			continue
		}
		switch cc := col.(type) {
		case *dataframe.CategoricalColumn:
			card := cc.Cardinality()
			if card > dataframe.MaxOneHotCardinality {
				card = dataframe.MaxOneHotCardinality
			}
			total += card
		default:
			total++
		}
	}
	return total
}

// BuildPlan groups score-ordered candidates into batches according to the
// plan kind and feature budget (§4 "Table grouping"). Candidates are assumed
// already sorted by descending discovery score. A single candidate exceeding
// the budget ships as its own batch (the paper's exception rule).
func BuildPlan(cands []discovery.Candidate, kind PlanKind, budget int) []Batch {
	switch kind {
	case TableJoin:
		out := make([]Batch, 0, len(cands))
		for _, c := range cands {
			out = append(out, Batch{
				Candidates:        []discovery.Candidate{c},
				EstimatedFeatures: EstimateFeatures(c),
			})
		}
		return out
	case FullMaterialization:
		if len(cands) == 0 {
			return nil
		}
		total := 0
		for _, c := range cands {
			total += EstimateFeatures(c)
		}
		return []Batch{{Candidates: cands, EstimatedFeatures: total}}
	default: // BudgetJoin
		var out []Batch
		var cur Batch
		for _, c := range cands {
			f := EstimateFeatures(c)
			if f >= budget {
				// Oversized table ships alone, flushing any open batch.
				if len(cur.Candidates) > 0 {
					out = append(out, cur)
					cur = Batch{}
				}
				out = append(out, Batch{Candidates: []discovery.Candidate{c}, EstimatedFeatures: f})
				continue
			}
			if cur.EstimatedFeatures+f > budget && len(cur.Candidates) > 0 {
				out = append(out, cur)
				cur = Batch{}
			}
			cur.Candidates = append(cur.Candidates, c)
			cur.EstimatedFeatures += f
		}
		if len(cur.Candidates) > 0 {
			out = append(out, cur)
		}
		return out
	}
}

// DedupeCandidates keeps at most one candidate per (table, key-set) pair and
// drops self-joins with the base table — by identity or by name, so a
// repository that happens to contain a copy of the base file cannot leak the
// target back in as a feature. Score order is preserved. Discovery may emit
// both a single-key and composite-key candidate for a table; both are kept
// (the paper's "multiple-option key join" joins on each key separately).
func DedupeCandidates(base *dataframe.Table, cands []discovery.Candidate) []discovery.Candidate {
	seen := make(map[string]bool)
	out := make([]discovery.Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Table == base || c.Table.Name() == base.Name() {
			continue
		}
		key := c.Table.Name()
		for _, kp := range c.Keys {
			key += "\x1f" + kp.BaseColumn + "=" + kp.ForeignColumn
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}
