package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/retry"
)

// Typed interruption sentinels: AugmentContext returns one of these (test
// with errors.Is) together with a partial Result snapshot when its context
// is canceled or its deadline passes mid-run.
var (
	// ErrCanceled reports a run stopped by context cancellation.
	ErrCanceled = errors.New("core: augmentation canceled")
	// ErrDeadline reports a run stopped by a context deadline (including
	// Options.Timeout).
	ErrDeadline = errors.New("core: augmentation deadline exceeded")
)

// Per-candidate retry policy for faults classified transient: a handful of
// quick deterministic attempts. The backoff is tiny because the faults being
// retried (injected transients, momentary resource blips) either clear
// immediately or keep failing — a long ladder would just stall the batch.
var candidateRetry = retry.Policy{Attempts: 3, Base: time.Millisecond}

// interruptOf maps the context's state to the typed sentinel: nil while the
// context is live (or nil), ErrDeadline/ErrCanceled once it is done.
func interruptOf(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	default:
		return ErrCanceled
	}
}

// isInterrupt reports whether err stems from cancellation or a deadline
// rather than from the work itself.
func isInterrupt(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}

// mapInterrupt converts raw context errors to the typed sentinels, passing
// other errors through.
func mapInterrupt(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	}
	return err
}

// recoveredError converts a recovered panic value into an error, keeping
// error panic values unwrappable (so an injected transient panic still
// classifies as transient and retries).
func recoveredError(v any) error {
	if err, ok := v.(error); ok {
		return fmt.Errorf("core: recovered panic: %w", err)
	}
	return fmt.Errorf("core: recovered panic: %v", v)
}

// faultAt probes the fault injector at (stage, ordinal) with panic
// containment, so a Panic-kind fault at a non-join site quarantines the
// candidate instead of crashing the run. Nil injectors are free.
func faultAt(inj *faults.Injector, stage string, ordinal int) (err error) {
	if inj == nil {
		return nil
	}
	defer func() {
		if v := recover(); v != nil {
			err = recoveredError(v)
		}
	}()
	return inj.Check(stage, ordinal)
}

// guardedJoin executes one candidate join inside the full fault boundary:
// injector checkpoint, panic containment, and transient-fault retry. mkRNG
// re-derives the stage RNG for every attempt — the RNG is attempt-local
// state, so a retried join draws exactly the sequence a first-try success
// would and the output stays bit-identical.
func guardedJoin(ctx context.Context, inj *faults.Injector, stage string, ordinal int,
	mkRNG func() *rand.Rand, fn func(*rand.Rand) (*join.Result, error)) (*join.Result, error) {
	var jr *join.Result
	err := retry.Do(ctx, candidateRetry, faults.IsTransient, func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = recoveredError(v)
			}
		}()
		if err := inj.Check(stage, ordinal); err != nil {
			return err
		}
		jr, err = fn(mkRNG())
		return err
	})
	if err != nil {
		return nil, err
	}
	return jr, nil
}
