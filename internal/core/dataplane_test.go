package core

import (
	"testing"

	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/synth"
)

// TestAugmentHashPlaneEquivalence runs the full pipeline with the hashed-key
// join plane on and off under one seed and asserts identical output — the
// end-to-end guarantee that the allocation-light data plane changed no
// result bit anywhere in the ARDA flow (joins, aggregation, resampling,
// selection, materialization, scoring).
func TestAugmentHashPlaneEquivalence(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		t.Fatal("discovery found nothing")
	}
	run := func(hashed bool) *Result {
		prev := join.SetHashJoinKeys(hashed)
		defer join.SetHashJoinKeys(prev)
		res, err := Augment(corpus.Base, cands, Options{
			Target:      corpus.Target,
			CoresetSize: 192,
			Selector:    &featsel.RIFS{Config: featsel.RIFSConfig{K: 3, Forest: featsel.ForestRanker{NTrees: 15, MaxDepth: 6}}},
			Estimator:   fastEstimator(1),
			Seed:        62,
			KNNImpute:   3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hashed := run(true)
	stringed := run(false)

	if len(hashed.KeptColumns) != len(stringed.KeptColumns) {
		t.Fatalf("kept columns differ: %v vs %v", hashed.KeptColumns, stringed.KeptColumns)
	}
	for i := range hashed.KeptColumns {
		if hashed.KeptColumns[i] != stringed.KeptColumns[i] {
			t.Fatalf("kept columns differ: %v vs %v", hashed.KeptColumns, stringed.KeptColumns)
		}
	}
	if len(hashed.KeptTables) != len(stringed.KeptTables) {
		t.Fatalf("kept tables differ: %v vs %v", hashed.KeptTables, stringed.KeptTables)
	}
	for i := range hashed.KeptTables {
		if hashed.KeptTables[i] != stringed.KeptTables[i] {
			t.Fatalf("kept tables differ: %v vs %v", hashed.KeptTables, stringed.KeptTables)
		}
	}
	if hashed.BaseScore != stringed.BaseScore || hashed.FinalScore != stringed.FinalScore {
		t.Fatalf("scores differ across key planes: base %v vs %v, final %v vs %v",
			hashed.BaseScore, stringed.BaseScore, hashed.FinalScore, stringed.FinalScore)
	}
}

// TestAugmentKeptTablesDeduped asserts KeptTables lists each contributing
// foreign table once even when several of its candidate joins keep columns.
func TestAugmentKeptTablesDeduped(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		t.Fatal("discovery found nothing")
	}
	res, err := Augment(corpus.Base, cands, Options{
		Target:      corpus.Target,
		CoresetSize: 192,
		Selector:    &featsel.RIFS{Config: featsel.RIFSConfig{K: 3, Forest: featsel.ForestRanker{NTrees: 15, MaxDepth: 6}}},
		Estimator:   fastEstimator(1),
		Seed:        62,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(res.KeptTables))
	for _, name := range res.KeptTables {
		if seen[name] {
			t.Fatalf("table %q listed twice in KeptTables %v", name, res.KeptTables)
		}
		seen[name] = true
	}
}
