package core

import (
	"testing"

	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/synth"
)

// BenchmarkCheckpointOverhead runs the same small pipeline with durability
// off ("plain") and on ("checkpointed"). benchjson pairs the two variants
// into a headline overhead ratio for BENCH_checkpoint.json.
func BenchmarkCheckpointOverhead(b *testing.B) {
	defer parallel.SetMaxWorkers(0)
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		b.Fatal("discovery found nothing")
	}
	run := func(b *testing.B, dir string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := chaosOptions(corpus, 0, nil)
			opts.CheckpointDir = dir
			if _, err := Augment(corpus.Base, cands, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, "") })
	b.Run("checkpointed", func(b *testing.B) { run(b, b.TempDir()) })
}
