package core

import (
	"fmt"
	"testing"
)

// TestStageSeedPathUniqueness guards the seed-splitting contract underneath
// every stage RNG: across the stage/id paths the pipeline actually derives —
// coreset, per-(batch, candidate) joins, per-batch imputation and sketching,
// per-ordinal materialization, the final imputation, and one nesting level
// of per-repetition selector splits — no two distinct paths may collide on
// the derived seed, for a sampled set of run seeds. A collision would
// silently correlate two stages' randomness and undermine the determinism
// guarantees the worker pool relies on.
func TestStageSeedPathUniqueness(t *testing.T) {
	const maxBatch, maxCand = 48, 48
	for _, runSeed := range []int64{0, 1, 2, 7, 42, -1, -13, 1 << 40, -(1 << 52)} {
		seen := make(map[int64]string, 1<<14)
		add := func(path string, ids ...int64) {
			s := stageSeed(runSeed, ids...)
			if prev, dup := seen[s]; dup {
				t.Fatalf("run seed %d: stage paths %s and %s derive the same seed %d",
					runSeed, prev, path, s)
			}
			seen[s] = path
		}
		add("coreset", seedStageCoreset)
		add("final-impute", seedStageFinal)
		for bi := int64(0); bi < maxBatch; bi++ {
			add(fmt.Sprintf("impute/%d", bi), seedStageImpute, bi)
			add(fmt.Sprintf("sketch/%d", bi), seedStageSketch, bi)
			for ci := int64(0); ci < maxCand; ci++ {
				add(fmt.Sprintf("join/%d/%d", bi, ci), seedStageJoin, bi, ci)
			}
		}
		for ord := int64(0); ord < maxBatch*maxCand; ord++ {
			add(fmt.Sprintf("materialize/%d", ord), seedStageMaterialize, ord)
		}
	}
}
