// Package core implements the end-to-end ARDA pipeline (§3 of the paper):
// coreset construction over the base table, join planning under a feature
// budget, batch join execution with imputation, feature selection (RIFS by
// default), optional Tuple-Ratio prefiltering, materialization of the kept
// features over the full base table, and the final model estimate.
package core

import (
	"fmt"
	"time"

	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
)

// PlanKind selects the table-grouping strategy for the join plan (§4 "Table
// grouping").
type PlanKind int

const (
	// BudgetJoin batches as many tables as fit the feature budget — the
	// paper's default, balancing co-predictor discovery against noise.
	BudgetJoin PlanKind = iota
	// TableJoin considers one table at a time in priority order.
	TableJoin
	// FullMaterialization joins every candidate table before selection.
	FullMaterialization
)

// String returns the plan name.
func (p PlanKind) String() string {
	switch p {
	case TableJoin:
		return "table-join"
	case FullMaterialization:
		return "full materialization"
	default:
		return "budget-join"
	}
}

// Options configures an ARDA run.
type Options struct {
	// Target is the base-table column to predict. Required.
	Target string
	// CoresetStrategy selects the row-reduction method (§3.1); default
	// Uniform.
	CoresetStrategy coreset.Strategy
	// CoresetSize is the number of coreset rows; 0 picks
	// coreset.DefaultSize.
	CoresetSize int
	// Plan selects the table-grouping strategy; default BudgetJoin.
	Plan PlanKind
	// Budget is the maximum number of features considered per batch; 0
	// defaults to the coreset size.
	Budget int
	// Selector is the feature-selection method; nil defaults to RIFS.
	Selector featsel.Selector
	// Estimator scores candidate subsets during selection; nil defaults to
	// the lightly-optimized random forest.
	Estimator eval.Fitter
	// EstimatorForest optionally declares a custom Estimator to be
	// ml.FitForest under exactly this configuration, letting selectors that
	// implement featsel.ForestEstimatorAware fit the threshold sweep's nested
	// candidate forests in one cross-forest tree wave over a shared split
	// cache. Purely a fast path — selection output is identical with or
	// without it — but declaring a config that does not match Estimator
	// breaks selection. Ignored when Estimator is nil: the default estimator
	// declares its own configuration.
	EstimatorForest *ml.ForestConfig
	// TupleRatioTau enables Kumar et al.'s Tuple-Ratio prefilter when > 0:
	// candidate tables with nS/nR > τ are dropped before joining (§7.3).
	TupleRatioTau float64
	// SoftMethod selects how soft keys are matched; default TwoWayNearest.
	SoftMethod join.SoftMethod
	// TimeResample aggregates finer-grained foreign time keys to the base
	// granularity before joining; default true (set DisableTimeResample to
	// turn off).
	DisableTimeResample bool
	// Tolerance bounds soft-key nearest-neighbour distance (0 = unbounded).
	Tolerance float64
	// Seed drives every random choice in the run. Each stage (coreset
	// sampling, each join, each imputation, selection) derives its own RNG
	// from the seed by deterministic splitting, so results depend only on the
	// seed — never on execution order or the worker count.
	Seed int64
	// Workers caps the process-wide worker pool used by the parallel stages
	// (RIFS repetitions, forests, leverage scores, kNN imputation, linalg
	// kernels); 0 keeps the current cap (GOMAXPROCS by default). The cap only
	// affects speed: a run's output is bit-identical for any value.
	Workers int
	// KeepScores records per-batch selection scores in the result when true.
	KeepScores bool
	// KNNImpute switches imputation from the paper's simple median/random
	// strategy to k-nearest-neighbour imputation (§9 "sophisticated methods
	// for data imputation"); the value is k (0 disables).
	KNNImpute int
	// Significance runs a paired bootstrap test of the final augmentation
	// against the base table (§9 "statistical significance tests for
	// augmented features"); the value is the number of bootstrap resamples
	// (0 disables).
	Significance int
	// CheckpointDir, when set, makes the run durable: after every pipeline
	// stage (prefilter, coreset, each batch's join/impute/select,
	// materialize, evaluate) the run's state is snapshotted crash-safely into
	// this directory via internal/checkpoint. A process killed at any instant
	// leaves the directory describing the completed-stage prefix; rerunning
	// with Resume continues from there. Unset (the default) costs nothing.
	CheckpointDir string
	// Resume continues a prior run from the checkpoints in CheckpointDir.
	// The recorded fingerprint — a digest of the base table, every candidate,
	// and all semantic options (Workers, Timeout, and observability hooks are
	// excluded) — must match this run's, otherwise ErrCheckpointMismatch;
	// damaged checkpoint bytes yield ErrCheckpointCorrupt. An empty
	// CheckpointDir with Resume set simply starts fresh. A resumed run's
	// Result is bit-identical to an uninterrupted run at any worker count.
	Resume bool
	// CheckpointGuard, when set alongside CheckpointDir, is consulted
	// immediately before every checkpoint write; a non-nil return skips the
	// write (counted as a write failure, never fatal — the run continues).
	// The multi-process daemon passes a lease-fencing probe here so a stale
	// owner whose run was taken over cannot corrupt the new owner's
	// checkpoint log. Like the observability hooks, it is excluded from the
	// resume fingerprint.
	CheckpointGuard func() error
	// MaxCells bounds the projected working-set size in table cells
	// (coreset rows × total columns under consideration) when > 0. Instead of
	// failing, a run over budget degrades deterministically — tighten the
	// tuple-ratio prefilter, shrink the coreset, then cap candidates in
	// descending score order — and records each step in Result.Degraded.
	MaxCells int64
	// MaxCandidateBytes bounds the estimated bytes of admitted candidate
	// tables when > 0: candidates are admitted in descending score order
	// until the cumulative estimate would exceed the budget, and the cut is
	// recorded in Result.Degraded.
	MaxCandidateBytes int64
	// Timeout bounds the run's wall-clock duration when > 0: AugmentContext
	// derives a deadline from it (and Augment from context.Background()), and
	// a run that exceeds it stops at the next checkpoint with ErrDeadline and
	// a partial Result. 0 means no timeout.
	Timeout time.Duration
	// FaultInjector, when set, fires deterministic faults (errors, panics,
	// delays) at the pipeline's per-candidate checkpoints — the chaos-testing
	// hook. Faulted candidates are quarantined, not fatal. nil (the default)
	// makes every checkpoint a free no-op.
	FaultInjector *faults.Injector
	// Logf, when set, receives progress lines (batch starts, selections,
	// materialization) during the run.
	Logf func(format string, args ...any)
	// Trace, when set, receives hierarchical stage spans (prefilter, coreset,
	// per-batch join/impute/select, materialize, evaluate) and run counters;
	// Augment finishes the trace and stores the snapshot in Result.Trace.
	// Create one obs.Trace per run. Tracing only observes: output is
	// bit-identical with Trace nil (the default, which costs nothing) or set.
	// When Augment returns an error alongside a partial Result (cancellation,
	// timeout, a fatal stage error), the trace is finished too: open spans
	// close at their partial durations, sinks flush, and Result.Trace holds
	// the partial snapshot — so interrupted runs still leave valid -trace
	// files and terminated event streams. Only a nil Result (options or
	// checkpoint-open errors, before the pipeline starts) leaves the trace
	// unfinished for the caller.
	Trace *obs.Trace
}

// logf forwards to Options.Logf when configured.
func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// validate applies defaults and checks requirements against the base table.
func (o *Options) validate(base *dataframe.Table) error {
	if o.Target == "" {
		return fmt.Errorf("core: Options.Target is required")
	}
	if base.Column(o.Target) == nil {
		return fmt.Errorf("core: base table %q has no target column %q", base.Name(), o.Target)
	}
	if o.Selector == nil {
		o.Selector = &featsel.RIFS{}
	}
	if o.Resume && o.CheckpointDir == "" {
		return fmt.Errorf("core: Options.Resume requires Options.CheckpointDir")
	}
	return nil
}

// TaskOf infers the learning task from the target column: categorical
// targets yield classification, numeric/time targets regression.
func TaskOf(base *dataframe.Table, target string) (ml.Task, int, error) {
	c := base.Column(target)
	if c == nil {
		return 0, 0, fmt.Errorf("core: base table %q has no target column %q", base.Name(), target)
	}
	if cc, ok := c.(*dataframe.CategoricalColumn); ok {
		return ml.Classification, cc.Cardinality(), nil
	}
	return ml.Regression, 0, nil
}

// BatchReport records one executed join-plan batch.
type BatchReport struct {
	// Tables lists the foreign tables joined in the batch.
	Tables []string
	// CandidateFeatures is the number of new feature columns the batch
	// offered.
	CandidateFeatures int
	// KeptFeatures lists the new columns the selector kept.
	KeptFeatures []string
	// Score is the selection-time holdout score after keeping the features
	// (recorded when Options.KeepScores).
	Score float64
}

// QuarantinedCandidate records one candidate table isolated by the fault
// boundary: instead of failing the run, the candidate was dropped at the
// named stage and the run continued without it.
type QuarantinedCandidate struct {
	// Name is the candidate table's name.
	Name string
	// Stage is the pipeline stage that faulted: "join", "impute", "encode",
	// or "materialize".
	Stage string
	// Reason is the fault description (error text or recovered panic).
	Reason string
}

// Degradation records one deterministic step the run took to fit a resource
// budget (Options.MaxCells / Options.MaxCandidateBytes) instead of failing.
// The ladder is a pure function of the inputs and options, so the same run
// degrades identically at any worker count.
type Degradation struct {
	// Action names the ladder rung taken: "tighten-tuple-ratio",
	// "shrink-coreset", or "cap-candidates".
	Action string
	// Budget names the exceeded budget that forced the step: "max-cells" or
	// "max-candidate-bytes".
	Budget string
	// Detail describes the step (e.g. the new τ or coreset size).
	Detail string
	// Before and After are the projected resource figure (cells or bytes)
	// around the step.
	Before, After int64
}

// Result is the output of an ARDA run.
type Result struct {
	// Table is the full base table with every kept feature column appended
	// and imputed.
	Table *dataframe.Table
	// KeptColumns lists the augmentation columns in Table beyond the base.
	KeptColumns []string
	// KeptTables lists foreign tables that contributed at least one kept
	// column, deduplicated, in first-contribution order.
	KeptTables []string
	// BaseScore and FinalScore are holdout scores of the final estimator on
	// the base table alone and on the augmented table.
	BaseScore, FinalScore float64
	// EstimatorName names the winning final estimator.
	EstimatorName string
	// Batches reports each executed batch.
	Batches []BatchReport
	// Quarantined lists candidates isolated by the fault boundary (malformed
	// tables, empty tables, injected faults), in quarantine order. A
	// quarantined candidate contributes nothing to Table; everything else in
	// the run is unaffected by its failure.
	Quarantined []QuarantinedCandidate
	// CandidatesConsidered, CandidatesDeduped, and CandidatesFiltered report
	// the prefilter attrition: candidates as passed in, remaining after
	// deduplication, and removed by the Tuple-Ratio prefilter (so the count
	// entering the join plan is CandidatesDeduped - CandidatesFiltered).
	CandidatesConsidered, CandidatesDeduped, CandidatesFiltered int
	// Elapsed is the total wall-clock duration.
	Elapsed time.Duration
	// SelectionElapsed is the time spent inside feature selection.
	SelectionElapsed time.Duration
	// Degraded lists the resource-budget degradation steps taken, in order,
	// when Options.MaxCells or Options.MaxCandidateBytes forced the run to
	// shed work; empty when the run fit its budgets.
	Degraded []Degradation
	// ResumedFrom names the checkpoint stage the run continued from (e.g.
	// "coreset" or "select[2]") when Options.Resume found usable state;
	// empty for a run executed start to finish.
	ResumedFrom string
	// Significance holds the paired bootstrap comparison of the augmented
	// model against the base model when Options.Significance > 0.
	Significance *eval.SignificanceResult
	// Trace is the finished observability snapshot — the stage-cost span
	// tree plus run counters — when Options.Trace was set; nil otherwise.
	// Render it with Trace.Render() or aggregate with Trace.StageTotals().
	Trace *obs.RunStats
}
