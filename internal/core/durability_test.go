package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/arda-ml/arda/internal/checkpoint"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/testenv"
)

// resultKey flattens the deterministic parts of a Result for equality
// comparison: kept features, scores, batch reports, quarantines, degradation
// steps, and the full augmented table contents. Timing fields are excluded.
func resultKey(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("kept:")
	b.WriteString(strings.Join(r.KeptColumns, ","))
	b.WriteString("|tables:")
	b.WriteString(strings.Join(r.KeptTables, ","))
	writeF := func(f float64) {
		fmt.Fprintf(&b, "|%016x", math.Float64bits(f))
	}
	writeF(r.BaseScore)
	writeF(r.FinalScore)
	for _, br := range r.Batches {
		b.WriteString("|batch:")
		b.WriteString(strings.Join(br.Tables, ","))
		b.WriteString("/")
		b.WriteString(strings.Join(br.KeptFeatures, ","))
		writeF(br.Score)
	}
	for _, q := range quarantineKeys(r.Quarantined) {
		b.WriteString("|q:")
		b.WriteString(q)
	}
	for _, d := range r.Degraded {
		b.WriteString("|deg:" + d.Action + "/" + d.Budget + "/" + d.Detail)
	}
	if r.Table != nil {
		fmt.Fprintf(&b, "|digest:%016x", r.Table.Digest())
	}
	return b.String()
}

// cloneCheckpointDir copies a checkpoint run directory for destructive
// truncation without touching the original.
func cloneCheckpointDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCheckpointResumeBitIdenticalAtEveryBoundary is the crash/resume
// determinism suite. One checkpointed run lays down every stage snapshot;
// truncating the log to its first n entries reproduces exactly the on-disk
// state of a process killed right after its nth stage checkpoint. For every
// boundary — including before the first checkpoint — a resumed run (in a
// fresh in-process "process": new Log, new injector-free options) must
// produce a Result bit-identical to the uninterrupted baseline, at both 1
// and 8 workers.
func TestCheckpointResumeBitIdenticalAtEveryBoundary(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)

	// Uncheckpointed baseline.
	baseOpts := chaosOptions(corpus, 1, nil)
	baseline, err := Augment(corpus.Base, cands, baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := resultKey(t, baseline)

	// Full checkpointed run: output must be unchanged by checkpointing.
	ckDir := t.TempDir()
	full := chaosOptions(corpus, 1, nil)
	full.CheckpointDir = ckDir
	ckRes, err := Augment(corpus.Base, cands, full)
	if err != nil {
		t.Fatal(err)
	}
	if got := resultKey(t, ckRes); got != want {
		t.Fatalf("checkpointing changed the result:\n got %s\nwant %s", got, want)
	}
	log, err := checkpoint.Open(ckDir, runFingerprint(corpus.Base, cands, &full))
	if err != nil {
		t.Fatal(err)
	}
	entries := log.Entries()
	if len(entries) < 5 {
		t.Fatalf("only %d stage checkpoints written: %+v", len(entries), entries)
	}
	stages := map[string]bool{}
	for _, e := range entries {
		stages[e.Stage] = true
	}
	for _, s := range []string{"prefilter", "coreset", "join", "impute", "select", "materialize", "evaluate"} {
		if !stages[s] {
			t.Fatalf("no %q checkpoint in %+v", s, entries)
		}
	}

	for n := 0; n <= len(entries); n++ {
		for _, workers := range []int{1, 8} {
			dir := cloneCheckpointDir(t, ckDir)
			if n < len(entries) {
				if err := checkpoint.Truncate(dir, n); err != nil {
					t.Fatal(err)
				}
			}
			opts := chaosOptions(corpus, workers, nil)
			opts.CheckpointDir = dir
			opts.Resume = true
			res, err := Augment(corpus.Base, cands, opts)
			if err != nil {
				t.Fatalf("resume at boundary %d (workers=%d): %v", n, workers, err)
			}
			if got := resultKey(t, res); got != want {
				t.Fatalf("resume at boundary %d (workers=%d) diverged:\n got %s\nwant %s", n, workers, got, want)
			}
			if n == 0 && res.ResumedFrom != "" {
				t.Fatalf("boundary 0 should run fresh, got ResumedFrom=%q", res.ResumedFrom)
			}
			if n > 0 && res.ResumedFrom == "" {
				t.Fatalf("boundary %d did not report ResumedFrom", n)
			}
		}
	}
}

// TestCheckpointResumeWithQuarantine crashes a faulted run at every stage
// boundary: the quarantine list accumulated before the crash must persist
// through the manifest and the resumed Result must match the uninterrupted
// faulted baseline exactly.
func TestCheckpointResumeWithQuarantine(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)
	rules := []faults.Rule{
		faults.At(faults.Error, "join", 2),
		faults.At(faults.Panic, "join", 5),
		faults.At(faults.Error, "impute", 7),
		faults.At(faults.Error, "encode", 9),
		faults.At(faults.Panic, "materialize", 0),
	}
	mkInj := func() *faults.Injector { return faults.New(99, rules...) }

	baseline, err := Augment(corpus.Base, cands, chaosOptions(corpus, 1, mkInj()))
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Quarantined) == 0 {
		t.Fatal("faulted baseline quarantined nothing; the test would prove nothing")
	}
	want := resultKey(t, baseline)

	ckDir := t.TempDir()
	full := chaosOptions(corpus, 1, mkInj())
	full.CheckpointDir = ckDir
	if _, err := Augment(corpus.Base, cands, full); err != nil {
		t.Fatal(err)
	}
	log, err := checkpoint.Open(ckDir, runFingerprint(corpus.Base, cands, &full))
	if err != nil {
		t.Fatal(err)
	}
	entries := log.Entries()

	for n := 1; n <= len(entries); n++ {
		dir := cloneCheckpointDir(t, ckDir)
		if n < len(entries) {
			if err := checkpoint.Truncate(dir, n); err != nil {
				t.Fatal(err)
			}
		}
		// A fresh injector models the restarted process: same rules, zeroed
		// attempt counters. Determinism holds because each (stage, ordinal)
		// site runs inside exactly one stage region, so a site either
		// replayed entirely before the crash (its quarantine persisted in
		// the snapshot) or runs entirely after resume.
		opts := chaosOptions(corpus, 8, mkInj())
		opts.CheckpointDir = dir
		opts.Resume = true
		res, err := Augment(corpus.Base, cands, opts)
		if err != nil {
			t.Fatalf("faulted resume at boundary %d: %v", n, err)
		}
		if got := resultKey(t, res); got != want {
			t.Fatalf("faulted resume at boundary %d diverged:\n got %s\nwant %s", n, got, want)
		}
	}
}

// An interrupted checkpointed run must be resumable: cancel mid-run, then
// finish with Resume and get the uninterrupted result.
func TestCheckpointResumeAfterCancel(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)

	baseline, err := Augment(corpus.Base, cands, chaosOptions(corpus, 1, nil))
	if err != nil {
		t.Fatal(err)
	}

	ckDir := t.TempDir()
	opts := chaosOptions(corpus, 1, nil)
	opts.CheckpointDir = ckDir
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first stage boundary
	if _, err := AugmentContext(ctx, corpus.Base, cands, opts); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run err = %v, want ErrCanceled", err)
	}

	opts.Resume = true
	res, err := Augment(corpus.Base, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultKey(t, res), resultKey(t, baseline); got != want {
		t.Fatalf("resume after cancel diverged:\n got %s\nwant %s", got, want)
	}
}

// Resume against checkpoints from different inputs or options must refuse
// with the typed mismatch error, and rerunning without Resume must recover
// cleanly by starting fresh.
func TestResumeFingerprintMismatch(t *testing.T) {
	corpus, cands := chaosCorpus(t)
	ckDir := t.TempDir()
	opts := chaosOptions(corpus, 1, nil)
	opts.CheckpointDir = ckDir
	if _, err := Augment(corpus.Base, cands, opts); err != nil {
		t.Fatal(err)
	}

	changed := opts
	changed.Seed = opts.Seed + 1
	changed.Resume = true
	if _, err := Augment(corpus.Base, cands, changed); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}

	// Clean fallback: without Resume the stale run is swept and the run
	// succeeds.
	changed.Resume = false
	if _, err := Augment(corpus.Base, cands, changed); err != nil {
		t.Fatalf("fresh run over stale checkpoints failed: %v", err)
	}
}

// Resume over damaged checkpoint bytes must refuse with the typed corrupt
// error naming the damaged shard.
func TestResumeCorruptShard(t *testing.T) {
	corpus, cands := chaosCorpus(t)
	ckDir := t.TempDir()
	opts := chaosOptions(corpus, 1, nil)
	opts.CheckpointDir = ckDir
	if _, err := Augment(corpus.Base, cands, opts); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	var shard string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".shard") {
			shard = e.Name()
			break
		}
	}
	raw, err := os.ReadFile(filepath.Join(ckDir, shard))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(filepath.Join(ckDir, shard), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	_, err = Augment(corpus.Base, cands, opts)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
	if !strings.Contains(err.Error(), shard) {
		t.Fatalf("error does not name the shard: %v", err)
	}
}

// Resume pointed at an empty directory is a fresh run, not an error.
func TestResumeEmptyDirRunsFresh(t *testing.T) {
	corpus, cands := chaosCorpus(t)
	opts := chaosOptions(corpus, 1, nil)
	opts.CheckpointDir = t.TempDir()
	opts.Resume = true
	res, err := Augment(corpus.Base, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom != "" {
		t.Fatalf("fresh run reports ResumedFrom=%q", res.ResumedFrom)
	}
	if res.Table == nil {
		t.Fatal("fresh run under Resume produced no table")
	}
}

// Resume without a checkpoint directory is a configuration error.
func TestResumeRequiresCheckpointDir(t *testing.T) {
	corpus, cands := chaosCorpus(t)
	opts := chaosOptions(corpus, 1, nil)
	opts.Resume = true
	if _, err := Augment(corpus.Base, cands, opts); err == nil {
		t.Fatal("Resume without CheckpointDir should error")
	}
}

// An injected checkpoint.write fault must degrade durability, never the run:
// the run completes with the same result, just fewer snapshots.
func TestCheckpointWriteFaultTolerated(t *testing.T) {
	corpus, cands := chaosCorpus(t)
	baseline, err := Augment(corpus.Base, cands, chaosOptions(corpus, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOptions(corpus, 1, faults.New(7, faults.At(faults.Error, "checkpoint.write", 1)))
	opts.CheckpointDir = t.TempDir()
	res, err := Augment(corpus.Base, cands, opts)
	if err != nil {
		t.Fatalf("run with failing checkpoint write: %v", err)
	}
	if got, want := resultKey(t, res), resultKey(t, baseline); got != want {
		t.Fatalf("checkpoint write fault changed the result:\n got %s\nwant %s", got, want)
	}
	// The skipped snapshot must be absent, the rest present and loadable.
	log, err := checkpoint.Open(opts.CheckpointDir, runFingerprint(corpus.Base, cands, &opts))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Entries()) == 0 {
		t.Fatal("no checkpoints written at all")
	}
}

// An injected checkpoint.load fault surfaces as the typed corrupt error.
func TestCheckpointLoadFaultIsCorrupt(t *testing.T) {
	corpus, cands := chaosCorpus(t)
	opts := chaosOptions(corpus, 1, nil)
	opts.CheckpointDir = t.TempDir()
	if _, err := Augment(corpus.Base, cands, opts); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	opts.FaultInjector = faults.New(7, faults.At(faults.Error, "checkpoint.load", -1))
	if _, err := Augment(corpus.Base, cands, opts); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
}
