package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"time"

	"github.com/arda-ml/arda/internal/checkpoint"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/eval"
)

// Typed checkpoint failures surfaced by AugmentContext when Options.Resume
// finds an unusable run directory. They alias the internal/checkpoint
// sentinels so errors.Is works on either. The clean fallback is rerunning
// without Resume: Create sweeps the stale state and starts fresh.
var (
	// ErrCheckpointCorrupt reports checkpoint bytes that fail integrity
	// verification (CRC mismatch, truncation, undecodable shard).
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrCheckpointMismatch reports a structurally valid checkpoint recorded
	// for different inputs or options than this run's.
	ErrCheckpointMismatch = checkpoint.ErrMismatch
)

// Durable runs snapshot cumulative pipeline state after every stage. Each
// shard is self-sufficient: resume loads only the LAST completed stage's
// shard and recomputes the cheap deterministic prefix (prefilter, plan,
// degradation ladder) from the original inputs — which the fingerprint
// guarantees are unchanged — so no shard needs to serialize the candidate
// tables themselves.
//
// The one subtle invariant is column aliasing. The batch loop's `work` table
// shares column OBJECTS with `accum` (and imputation mutates them in place),
// which is how a batch's imputation of base columns becomes visible to later
// batches. A snapshot therefore stores `accum` and the batch's added columns
// separately, and restore rebuilds `work` by re-aliasing the restored accum's
// columns and appending the restored added columns — reproducing the exact
// sharing an uninterrupted run has at that point.

// runState is the gob-encoded payload of every checkpoint shard: the
// cumulative pipeline state at one stage boundary. Fields past the point the
// snapshot was taken are zero.
type runState struct {
	// Accum is the carried-forward working table: the coreset base plus every
	// kept column so far, including all in-place imputations to date.
	Accum *dataframe.Table
	// KeptByCandidate maps candidate ordinal -> kept source columns.
	KeptByCandidate [][]string
	// Quarantined, Batches, Degraded, and SelectionNanos mirror the Result
	// accumulation at the snapshot point.
	Quarantined    []QuarantinedCandidate
	Batches        []BatchReport
	Degraded       []Degradation
	SelectionNanos int64
	// Added, AddedCols, Tables, and NewCols capture the mid-batch join state
	// ("join"/"impute" snapshots): which candidates joined, the columns they
	// contributed (as a standalone table), and the batch counters.
	Added     []addedCandidate
	AddedCols *dataframe.Table
	Tables    []string
	NewCols   int
	// Final and the kept lists are set by the "materialize" snapshot.
	Final       *dataframe.Table
	KeptColumns []string
	KeptTables  []string
	// The score block is set by the "evaluate" snapshot, making it a complete
	// Result.
	BaseScore, FinalScore float64
	EstimatorName         string
	Significance          *eval.SignificanceResult
}

// addedCandidate is the wire form of one joined candidate's batch bookkeeping.
type addedCandidate struct {
	Ordinal int
	Name    string
	Prefix  string
	Cols    []string
}

// stageRank linearizes the stage sequence so "how far did the run get" is a
// single comparison. Per-batch stages interleave as join/impute/select per
// batch ordinal; materialize and evaluate order after every batch.
func stageRank(stage string, batch int) int {
	switch stage {
	case "prefilter":
		return 0
	case "coreset":
		return 1
	case "join":
		return 2 + batch*3
	case "impute":
		return 3 + batch*3
	case "select":
		return 4 + batch*3
	case "materialize":
		return math.MaxInt32 - 1
	case "evaluate":
		return math.MaxInt32
	}
	return -1
}

// stageLabel renders a checkpoint entry for Result.ResumedFrom.
func stageLabel(e checkpoint.Entry) string {
	if e.Batch >= 0 {
		return fmt.Sprintf("%s[%d]", e.Stage, e.Batch)
	}
	return e.Stage
}

// runFingerprint digests everything that determines a run's output: the base
// table, every candidate (table contents, keys, score, kind flags), and the
// semantic options. Workers, Timeout, CheckpointDir/Resume, and the
// observability and fault-injection hooks are deliberately excluded — a
// checkpointed run may be resumed at a different worker count, under a
// different timeout, or with different logging, and still produce the
// identical Result.
func runFingerprint(base *dataframe.Table, cands []discovery.Candidate, o *Options) string {
	h := fnv.New64a()
	var scratch [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		h.Write(scratch[:])
	}
	selector := ""
	if o.Selector != nil {
		selector = o.Selector.Name()
	}
	fmt.Fprintf(h, "v1|target=%s|coreset=%d/%d|plan=%d|budget=%d|tau=%g|soft=%d|noresample=%t|tol=%g|seed=%d|knn=%d|sig=%d|keepscores=%t|maxcells=%d|maxbytes=%d|sel=%s|customest=%t|",
		o.Target, o.CoresetStrategy, o.CoresetSize, o.Plan, o.Budget,
		o.TupleRatioTau, o.SoftMethod, o.DisableTimeResample, o.Tolerance,
		o.Seed, o.KNNImpute, o.Significance, o.KeepScores,
		o.MaxCells, o.MaxCandidateBytes, selector, o.Estimator != nil)
	writeU64(base.Digest())
	writeU64(uint64(len(cands)))
	for _, c := range cands {
		writeU64(c.Table.Digest())
		for _, k := range c.Keys {
			fmt.Fprintf(h, "%s>%s/%d|", k.BaseColumn, k.ForeignColumn, k.Kind)
		}
		writeU64(math.Float64bits(c.Score))
		fmt.Fprintf(h, "soft=%t|geo=%t|", c.Soft, c.Geo)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// openRunLog sets up the checkpoint log per the options: nil when durability
// is off, a fresh log otherwise, and — under Resume — the prior run's log
// with its last snapshot loaded and verified. An empty directory under
// Resume starts fresh rather than erroring; corrupt or mismatched state is a
// typed error, never a silent partial reuse.
func openRunLog(base *dataframe.Table, cands []discovery.Candidate, o *Options) (*checkpoint.Log, *runState, *checkpoint.Entry, error) {
	if o.CheckpointDir == "" {
		return nil, nil, nil, nil
	}
	fp := runFingerprint(base, cands, o)
	runID := fmt.Sprintf("arda-%s-%d", fp[:8], time.Now().UnixNano())
	if !o.Resume {
		ck, err := checkpoint.Create(o.CheckpointDir, runID, fp, o.Seed)
		return ck, nil, nil, err
	}
	ck, err := checkpoint.Open(o.CheckpointDir, fp)
	if errors.Is(err, os.ErrNotExist) {
		ck, err = checkpoint.Create(o.CheckpointDir, runID, fp, o.Seed)
		return ck, nil, nil, err
	}
	if err != nil {
		return nil, nil, nil, err
	}
	entry, ok := ck.Latest()
	if !ok {
		// A valid but empty log: the prior run died before its first
		// checkpoint. Resume is simply a fresh run appending to it.
		return ck, nil, nil, nil
	}
	if err := faultAt(o.FaultInjector, "checkpoint.load", entry.Seq); err != nil {
		return nil, nil, nil, fmt.Errorf("checkpoint: shard %s: %v: %w", entry.Shard, err, ErrCheckpointCorrupt)
	}
	st := &runState{}
	if err := ck.Load(entry.Seq, st); err != nil {
		return nil, nil, nil, err
	}
	return ck, st, &entry, nil
}

// restoreBatch rebuilds the batch loop's mid-batch state from a "join" or
// "impute" snapshot: work re-aliases the restored accum's columns (so
// subsequent in-place imputation propagates exactly as in an uninterrupted
// run) and then appends the batch's restored added columns.
func restoreBatch(st *runState, accum *dataframe.Table) (*dataframe.Table, []joinedCandidate, []string, int, error) {
	work := dataframe.MustNewTable(accum.Name(), accum.Columns()...)
	if st.AddedCols != nil {
		for _, col := range st.AddedCols.Columns() {
			if err := work.AddColumn(col); err != nil {
				return nil, nil, nil, 0, fmt.Errorf("core: restoring batch columns: %w", err)
			}
		}
	}
	jcs := make([]joinedCandidate, 0, len(st.Added))
	for _, a := range st.Added {
		jcs = append(jcs, joinedCandidate{ordinal: a.Ordinal, name: a.Name, prefix: a.Prefix, cols: a.Cols})
	}
	return work, jcs, st.Tables, st.NewCols, nil
}

// joinedCandidate is the batch loop's bookkeeping for one successfully
// joined candidate: its plan ordinal, table name, column prefix, and the
// columns the join added to work.
type joinedCandidate struct {
	ordinal int
	name    string
	prefix  string
	cols    []string
}

// batchSnapshot converts the batch loop's live state into the snapshot wire
// form: the added-candidate records plus a standalone table referencing the
// added columns (still living inside work; gob deep-copies them on encode).
func batchSnapshot(work *dataframe.Table, jcs []joinedCandidate, tables []string, newCols int) ([]addedCandidate, *dataframe.Table, []string, int) {
	added := make([]addedCandidate, 0, len(jcs))
	t := dataframe.MustNewTable("added")
	for _, a := range jcs {
		added = append(added, addedCandidate{Ordinal: a.ordinal, Name: a.name, Prefix: a.prefix, Cols: a.cols})
		for _, name := range a.cols {
			if col := work.Column(name); col != nil {
				// Prefixes make the names unique, so AddColumn cannot fail.
				_ = t.AddColumn(col)
			}
		}
	}
	return added, t, tables, newCols
}
