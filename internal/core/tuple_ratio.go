package core

import (
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
)

// TupleRatio computes Kumar et al.'s ratio nS/nR for a candidate join: the
// number of base-table training examples divided by the size of the
// foreign-key domain (the count of distinct join-key values in the foreign
// table). The associated decision rule states that a foreign table is highly
// unlikely to help a predictive model when the ratio exceeds a tuned
// threshold τ.
func TupleRatio(baseRows int, c discovery.Candidate) float64 {
	domain := KeyDomainSize(c)
	if domain == 0 {
		return 0
	}
	return float64(baseRows) / float64(domain)
}

// KeyDomainSize counts distinct (composite) join-key values in the
// candidate's foreign table.
func KeyDomainSize(c discovery.Candidate) int {
	cols := make([]dataframe.Column, 0, len(c.Keys))
	for _, kp := range c.Keys {
		col := c.Table.Column(kp.ForeignColumn)
		if col == nil {
			return 0
		}
		cols = append(cols, col)
	}
	seen := make(map[string]bool)
	for i := 0; i < c.Table.NumRows(); i++ {
		key, ok := compositeKeyOf(cols, i)
		if !ok {
			continue
		}
		seen[key] = true
	}
	return len(seen)
}

// compositeKeyOf renders row i's composite key for domain counting.
func compositeKeyOf(cols []dataframe.Column, i int) (string, bool) {
	out := ""
	for n, c := range cols {
		if c.IsMissing(i) {
			return "", false
		}
		if n > 0 {
			out += "\x1f"
		}
		out += c.StringAt(i)
	}
	return out, true
}

// FilterTupleRatio drops candidates whose tuple ratio exceeds tau, returning
// the survivors and the number of distinct tables removed.
func FilterTupleRatio(baseRows int, cands []discovery.Candidate, tau float64) ([]discovery.Candidate, int) {
	if tau <= 0 {
		return cands, 0
	}
	removedTables := make(map[string]bool)
	keptTables := make(map[string]bool)
	out := make([]discovery.Candidate, 0, len(cands))
	for _, c := range cands {
		if TupleRatio(baseRows, c) > tau {
			removedTables[c.Table.Name()] = true
			continue
		}
		keptTables[c.Table.Name()] = true
		out = append(out, c)
	}
	removed := 0
	for name := range removedTables {
		if !keptTables[name] {
			removed++
		}
	}
	return out, removed
}
