package core

import (
	"math"
	"strings"
	"testing"

	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/synth"
)

// fastRIFS keeps end-to-end option tests quick.
func fastRIFS() featsel.Selector {
	return &featsel.RIFS{Config: featsel.RIFSConfig{
		K:      3,
		Forest: featsel.ForestRanker{NTrees: 15, MaxDepth: 7},
	}}
}

func TestAugmentSketchCoreset(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 51, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	res, err := Augment(corpus.Base, cands, Options{
		Target:          corpus.Target,
		CoresetStrategy: coreset.Sketch,
		CoresetSize:     160,
		Selector:        fastRIFS(),
		Estimator:       fastEstimator(3),
		Seed:            52,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != corpus.Base.NumRows() {
		t.Fatal("sketch pipeline must still materialize full base rows")
	}
	if res.FinalScore <= res.BaseScore {
		t.Fatalf("sketch pipeline did not improve: %.3f -> %.3f", res.BaseScore, res.FinalScore)
	}
}

func TestAugmentTableJoinPlan(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 53, Scale: 0.15})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	res, err := Augment(corpus.Base, cands, Options{
		Target:      corpus.Target,
		Plan:        TableJoin,
		CoresetSize: 160,
		Selector:    fastRIFS(),
		Estimator:   fastEstimator(4),
		Seed:        54,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Table-join runs one batch per candidate.
	if len(res.Batches) < 10 {
		t.Fatalf("table-join ran only %d batches for %d candidates",
			len(res.Batches), res.CandidatesConsidered)
	}
}

func TestAugmentFullMaterializationPlan(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 55, Scale: 0.15})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	res, err := Augment(corpus.Base, cands, Options{
		Target:      corpus.Target,
		Plan:        FullMaterialization,
		CoresetSize: 160,
		Selector:    fastRIFS(),
		Estimator:   fastEstimator(5),
		Seed:        56,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 {
		t.Fatalf("full materialization ran %d batches, want 1", len(res.Batches))
	}
}

func TestAugmentTupleRatioFilterRemovesTables(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 57, Scale: 0.15})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	// A tiny tau removes everything with a large base/domain ratio —
	// including the state-keyed tables (50 distinct keys vs hundreds of
	// base rows).
	res, err := Augment(corpus.Base, cands, Options{
		Target:        corpus.Target,
		TupleRatioTau: 1.5,
		CoresetSize:   160,
		Selector:      fastRIFS(),
		Estimator:     fastEstimator(6),
		Seed:          58,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesFiltered == 0 {
		t.Fatal("tau=1.5 should remove the state-level tables")
	}
	for _, name := range res.KeptTables {
		if name == "state_economy" || name == "trade" {
			t.Fatalf("table %s should have been prefiltered", name)
		}
	}
}

func TestAugmentKeepScores(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 59, Scale: 0.15})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	res, err := Augment(corpus.Base, cands, Options{
		Target:      corpus.Target,
		CoresetSize: 160,
		Selector:    fastRIFS(),
		Estimator:   fastEstimator(7),
		KeepScores:  true,
		Seed:        60,
	})
	if err != nil {
		t.Fatal(err)
	}
	recorded := false
	for _, b := range res.Batches {
		if len(b.KeptFeatures) > 0 && b.Score > 0 {
			recorded = true
		}
	}
	if !recorded {
		t.Fatal("KeepScores did not record any batch score")
	}
}

func TestAugmentColumnPrefixes(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.15})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	res, err := Augment(corpus.Base, cands, Options{
		Target:      corpus.Target,
		CoresetSize: 160,
		Selector:    fastRIFS(),
		Estimator:   fastEstimator(8),
		Seed:        62,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range res.KeptColumns {
		if !strings.HasPrefix(col, "t") || !strings.Contains(col, ".") {
			t.Fatalf("kept column %q lacks the per-candidate prefix", col)
		}
		if !res.Table.HasColumn(col) {
			t.Fatalf("kept column %q missing from the materialized table", col)
		}
	}
	// All base columns must survive untouched.
	for _, name := range corpus.Base.ColumnNames() {
		if !res.Table.HasColumn(name) {
			t.Fatalf("base column %q lost during augmentation", name)
		}
	}
}

func TestSourceColumn(t *testing.T) {
	cases := map[string]string{
		"t3.temp":       "t3.temp",
		"t3.city=NYC":   "t3.city",
		"t3.city=<oth>": "t3.city",
		"plain":         "plain",
	}
	for in, want := range cases {
		if got := sourceColumn(in); got != want {
			t.Fatalf("sourceColumn(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSpecForDefaults(t *testing.T) {
	cand := discovery.Candidate{Keys: []join.KeyPair{{BaseColumn: "a", ForeignColumn: "b"}}}
	spec := specFor(cand, Options{}, "p.")
	if spec.Prefix != "p." || spec.TimeResample != true {
		t.Fatalf("spec defaults wrong: %+v", spec)
	}
	spec = specFor(cand, Options{DisableTimeResample: true, Tolerance: 5}, "q.")
	if spec.TimeResample || spec.Tolerance != 5 {
		t.Fatalf("spec overrides wrong: %+v", spec)
	}
}

func TestAugmentKNNImputeAndSignificance(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 63, Scale: 0.15})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	res, err := Augment(corpus.Base, cands, Options{
		Target:       corpus.Target,
		CoresetSize:  160,
		Selector:     fastRIFS(),
		Estimator:    fastEstimator(9),
		KNNImpute:    5,
		Significance: 200,
		Seed:         64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Significance == nil {
		t.Fatal("significance test not recorded")
	}
	if res.Significance.AugScore <= res.Significance.BaseScore {
		t.Fatalf("significance point estimates inverted: %+v", res.Significance)
	}
	if !res.Significance.Significant(0.1) {
		t.Fatalf("planted-signal augmentation should be significant: p=%v", res.Significance.PValue)
	}
	if res.Table.MissingCells() != 0 {
		t.Fatal("kNN+simple imputation left missing cells")
	}
}

func TestAugmentTransitiveCandidates(t *testing.T) {
	// Build a corpus whose only strong signal is two hops away, then verify
	// the pipeline exploits the widened transitive candidate.
	corpus := synth.Poverty(synth.Config{Seed: 65, Scale: 0.15})
	// Strip the directly-joinable signal tables, keep noise + the base.
	var repo []*dataframe.Table
	for _, tab := range corpus.Repo {
		if !corpus.RelevantTables[tab.Name()] || tab.Name() == "state_economy" {
			repo = append(repo, tab)
		}
	}
	// state_economy is reachable via the base's state column directly; to
	// force a second hop, rename the base's state column so only a mapping
	// table links them.
	base := dataframe.MustNewTable(corpus.Base.Name(),
		corpus.Base.Column("county_id"),
		corpus.Base.Column("population"),
		corpus.Base.Column(corpus.Target),
	)
	mapping := dataframe.MustNewTable("county_state",
		corpus.Base.Column("county_id"),
		corpus.Base.Column("state").WithName("state"),
	)
	repo = append(repo, mapping)

	direct := discovery.Discover(base, repo, corpus.Target, discovery.Options{})
	for _, c := range direct {
		if c.Table.Name() == "state_economy" {
			t.Fatal("scenario broken: state_economy directly reachable")
		}
	}
	trans := discovery.Transitive(base, repo, corpus.Target, discovery.TransitiveOptions{}, nil)
	if len(trans) == 0 {
		t.Fatal("no transitive candidates")
	}
	all := append(direct, trans...)
	res, err := Augment(base, all, Options{
		Target:      corpus.Target,
		CoresetSize: 160,
		Selector:    fastRIFS(),
		Estimator:   fastEstimator(10),
		Seed:        66,
	})
	if err != nil {
		t.Fatal(err)
	}
	foundVia := false
	for _, col := range res.KeptColumns {
		if strings.Contains(col, "via.state_economy.") {
			foundVia = true
		}
	}
	if !foundVia {
		t.Fatalf("transitive gdp feature not kept; kept = %v", res.KeptColumns)
	}
}

func TestAugmentDoesNotMutateInput(t *testing.T) {
	// Base table with missing values, no coreset reduction (size >= rows):
	// imputation during the run must not leak into the caller's table.
	base := dataframe.MustNewTable("b",
		dataframe.NewCategorical("k", []string{"a", "b", "c", "d"}),
		dataframe.NewNumeric("x", []float64{1, math.NaN(), 3, 4}),
		dataframe.NewNumeric("y", []float64{1, 2, 3, 4}),
	)
	foreign := dataframe.MustNewTable("f",
		dataframe.NewCategorical("k", []string{"a", "b"}),
		dataframe.NewNumeric("v", []float64{10, 20}),
	)
	cands := discovery.Discover(base, []*dataframe.Table{foreign}, "y", discovery.Options{})
	before := base.MissingCells()
	_, err := Augment(base, cands, Options{
		Target:    "y",
		Selector:  featsel.AllFeatures{},
		Estimator: fastEstimator(11),
		Seed:      67,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.MissingCells() != before {
		t.Fatalf("Augment mutated the caller's table: missing %d -> %d",
			before, base.MissingCells())
	}
}
