package core

import (
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/synth"
)

// BenchmarkObsOverhead runs the same School pipeline with telemetry off
// ("plain") and with the full plane on ("telemetry": trace + histograms +
// live event stream + runtime sampler). benchjson pairs the two variants
// into the headline overhead ratio for BENCH_obs.json; the PR contract is
// that telemetry costs ≲3%.
func BenchmarkObsOverhead(b *testing.B) {
	defer parallel.SetMaxWorkers(0)
	corpus := synth.SchoolL(synth.Config{Seed: 61, Scale: 0.15})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		b.Fatal("discovery found nothing")
	}
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := chaosOptions(corpus, 0, nil)
			if _, err := Augment(corpus.Base, cands, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("telemetry", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Mirrors what -metrics-addr attaches: an event-stream subscriber
			// (8192 slots hold this run's full stream) and the runtime
			// sampler at the metrics server's 250ms interval.
			stream := obs.NewStreamSink(0)
			sub := stream.Subscribe(1 << 13)
			tr := obs.New("augment", stream)
			sampler := obs.StartRuntimeSampler(tr, 250*time.Millisecond, map[string]func() int64{
				"workers.in_flight": func() int64 { return int64(parallel.InFlight()) },
			})
			opts := chaosOptions(corpus, 0, nil)
			opts.Trace = tr
			if _, err := Augment(corpus.Base, cands, opts); err != nil {
				b.Fatal(err)
			}
			sampler.Stop()
			for range sub.Events() {
			}
		}
	})
}
