package core

import (
	"fmt"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/synth"
)

// budgetCandidate fabricates a candidate with the given score and shape;
// the join key takes `domain` distinct values (controls the tuple ratio).
func budgetCandidate(name string, score float64, rows, cols int) discovery.Candidate {
	return budgetCandidateDomain(name, score, rows, cols, 1)
}

func budgetCandidateDomain(name string, score float64, rows, cols, domain int) discovery.Candidate {
	keys := make([]float64, rows)
	for i := range keys {
		keys[i] = float64(i % domain)
	}
	tcols := make([]dataframe.Column, 0, cols)
	tcols = append(tcols, dataframe.NewNumeric("k", keys))
	for j := 1; j < cols; j++ {
		tcols = append(tcols, dataframe.NewNumeric(fmt.Sprintf("c%d", j), make([]float64, rows)))
	}
	return discovery.Candidate{
		Table: dataframe.MustNewTable(name, tcols...),
		Keys:  []join.KeyPair{{BaseColumn: "k", ForeignColumn: "k"}},
		Score: score,
	}
}

func TestApplyBudgetsNoBudgetsNoChange(t *testing.T) {
	cands := []discovery.Candidate{budgetCandidate("a", 1, 100, 5)}
	opts := &Options{}
	got, size, extra, degs := applyBudgets(1000, 10, cands, 200, opts)
	if len(got) != 1 || size != 200 || extra != 0 || degs != nil {
		t.Fatalf("no-budget run changed: %d cands, size %d, extra %d, degs %v", len(got), size, extra, degs)
	}
}

func TestApplyBudgetsShrinksCoreset(t *testing.T) {
	cands := []discovery.Candidate{budgetCandidate("a", 1, 100, 11)}
	// 10 added cols + 10 base cols = 20 cols; 512 rows * 20 = 10240 cells.
	// MaxCells 4000 forces two halvings: 256*20=5120, 128*20=2560.
	opts := &Options{MaxCells: 4000}
	got, size, _, degs := applyBudgets(1000, 10, cands, 512, opts)
	if len(got) != 1 {
		t.Fatalf("candidate dropped unexpectedly")
	}
	if size != 128 {
		t.Fatalf("size = %d, want 128", size)
	}
	var shrinks int
	for _, d := range degs {
		if d.Action == "shrink-coreset" {
			shrinks++
			if d.Budget != "max-cells" || d.Before <= d.After {
				t.Fatalf("bad degradation record: %+v", d)
			}
		}
	}
	if shrinks != 2 {
		t.Fatalf("shrink steps = %d, want 2 (%+v)", shrinks, degs)
	}
}

func TestApplyBudgetsCoresetFloor(t *testing.T) {
	cands := []discovery.Candidate{budgetCandidate("a", 1, 100, 101)}
	opts := &Options{MaxCells: 1} // unsatisfiable by shrinking alone
	_, size, _, degs := applyBudgets(1000, 10, cands, 512, opts)
	if size < budgetFloorCoreset {
		t.Fatalf("size %d fell below floor %d", size, budgetFloorCoreset)
	}
	// The ladder must then cap candidates rather than fail.
	last := degs[len(degs)-1]
	if last.Action != "cap-candidates" {
		t.Fatalf("final rung = %+v, want cap-candidates", last)
	}
}

func TestApplyBudgetsCapsByScoreKeepingOrder(t *testing.T) {
	// Three candidates; scores favor the first and third. A budget with room
	// for base + two candidates must keep exactly those two, in their
	// original relative order.
	cands := []discovery.Candidate{
		budgetCandidate("hi1", 0.9, 10, 3), // 2 added cols
		budgetCandidate("lo", 0.1, 10, 3),
		budgetCandidate("hi2", 0.8, 10, 3),
	}
	// rows=64 (floor), base 2 cols -> base 128 cells; each candidate adds
	// 64*2=128 cells. Cap at base+2 candidates = 128+256 = 384.
	opts := &Options{MaxCells: 384}
	got, _, _, degs := applyBudgets(64, 2, cands, 64, opts)
	if len(got) != 2 || got[0].Table.Name() != "hi1" || got[1].Table.Name() != "hi2" {
		names := make([]string, len(got))
		for i, c := range got {
			names[i] = c.Table.Name()
		}
		t.Fatalf("admitted %v, want [hi1 hi2]", names)
	}
	last := degs[len(degs)-1]
	if last.Action != "cap-candidates" || last.Budget != "max-cells" {
		t.Fatalf("degradation = %+v", last)
	}
}

func TestApplyBudgetsCandidateBytes(t *testing.T) {
	// Each table: 100 rows * 3 cols * 8 = 2400 bytes. Budget 5000 admits two
	// by score.
	cands := []discovery.Candidate{
		budgetCandidate("a", 0.5, 100, 3),
		budgetCandidate("b", 0.9, 100, 3),
		budgetCandidate("c", 0.7, 100, 3),
	}
	opts := &Options{MaxCandidateBytes: 5000}
	got, _, _, degs := applyBudgets(1000, 5, cands, 200, opts)
	if len(got) != 2 || got[0].Table.Name() != "b" || got[1].Table.Name() != "c" {
		names := make([]string, len(got))
		for i, c := range got {
			names[i] = c.Table.Name()
		}
		t.Fatalf("admitted %v, want [b c]", names)
	}
	if degs[len(degs)-1].Budget != "max-candidate-bytes" {
		t.Fatalf("degradation = %+v", degs)
	}
}

func TestApplyBudgetsTightensTauFirst(t *testing.T) {
	// Tuple ratio = baseRows / keyDomain: a small-domain candidate has a
	// high ratio. With base 100 rows, "narrowkey" (domain 10, ratio 10) sits
	// between the user's τ=16 and the first halving to 8, so rung 1 drops it
	// while "widekey" (domain 50, ratio 2) survives.
	cands := []discovery.Candidate{
		budgetCandidateDomain("narrowkey", 0.9, 600, 40, 10),
		budgetCandidateDomain("widekey", 0.8, 150, 3, 50),
	}
	// Projected: 100 rows × (5 base + 39 + 2 added) = 4600 cells; cap at
	// 1000 so the run is over budget until narrowkey goes.
	opts := &Options{MaxCells: 1000, TupleRatioTau: 16}
	got, _, extra, degs := applyBudgets(100, 5, cands, 100, opts)
	if extra == 0 {
		t.Fatalf("τ tightening removed nothing: %+v", degs)
	}
	if len(got) != 1 || got[0].Table.Name() != "widekey" {
		t.Fatalf("admitted %d candidates, want only widekey (%+v)", len(got), degs)
	}
	if degs[0].Action != "tighten-tuple-ratio" || degs[0].Budget != "max-cells" {
		t.Fatalf("first rung = %+v, want tighten-tuple-ratio", degs[0])
	}
}

// The degradation ladder must be bit-identical at any worker count and
// visible in the budget.* counters, and a budgeted run must still complete
// end to end.
func TestBudgetDegradationDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})

	run := func(workers int) (*Result, *obs.RunStats) {
		tr := obs.New("budget")
		opts := chaosOptions(corpus, workers, nil)
		opts.MaxCells = 20_000
		opts.MaxCandidateBytes = 256 << 10
		opts.Trace = tr
		res, err := Augment(corpus.Base, cands, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, res.Trace
	}
	one, stats := run(1)
	if len(one.Degraded) == 0 {
		t.Fatal("budgets did not force degradation; tighten the test budgets")
	}
	if one.Table == nil {
		t.Fatal("degraded run did not complete")
	}
	var counted int64
	for name, v := range stats.Counters {
		if len(name) > 7 && name[:7] == "budget." {
			counted += v
		}
	}
	if counted == 0 {
		t.Fatalf("no budget.* counters recorded: %v", stats.Counters)
	}

	eight, _ := run(8)
	if len(one.Degraded) != len(eight.Degraded) {
		t.Fatalf("degradation steps differ across workers: %v vs %v", one.Degraded, eight.Degraded)
	}
	for i := range one.Degraded {
		if one.Degraded[i] != eight.Degraded[i] {
			t.Fatalf("degradation step %d differs: %+v vs %+v", i, one.Degraded[i], eight.Degraded[i])
		}
	}
	k1, k8 := resultKey(t, one), resultKey(t, eight)
	if k1 != k8 {
		t.Fatalf("budgeted run diverged across workers:\n%s\n%s", k1, k8)
	}
}
