package core

import (
	"context"
	"sort"
	"testing"

	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/synth"
)

// chaosCorpus builds the shared chaos-test fixture.
func chaosCorpus(t *testing.T) (*synth.Corpus, []discovery.Candidate) {
	t.Helper()
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.2})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		t.Fatal("discovery found nothing")
	}
	return corpus, cands
}

// chaosOptions is the fast-pipeline configuration used by every chaos test.
func chaosOptions(corpus *synth.Corpus, workers int, inj *faults.Injector) Options {
	return Options{
		Target:        corpus.Target,
		CoresetSize:   192,
		Selector:      &featsel.RIFS{Config: featsel.RIFSConfig{K: 3, Forest: featsel.ForestRanker{NTrees: 15, MaxDepth: 6}}},
		Estimator:     fastEstimator(1),
		Seed:          62,
		Workers:       workers,
		FaultInjector: inj,
	}
}

// quarantineKey flattens a quarantine record for set comparison.
func quarantineKeys(qs []QuarantinedCandidate) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.Stage + "/" + q.Name
	}
	sort.Strings(out)
	return out
}

// TestChaosQuarantinesExactlyFaultedCandidates injects faults into four
// stages — join errors, a join panic, an impute fault, an encode fault, and
// a materialize fault — and asserts the run completes, quarantines exactly
// the faulted candidates, and produces identical results at 1 and 8 workers.
func TestChaosQuarantinesExactlyFaultedCandidates(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)

	rules := []faults.Rule{
		faults.At(faults.Error, "join", 2),
		faults.At(faults.Panic, "join", 5),
		faults.At(faults.Error, "impute", 7),
		faults.At(faults.Error, "encode", 9),
		faults.At(faults.Panic, "materialize", 0),
	}
	run := func(workers int) *Result {
		res, err := AugmentContext(context.Background(), corpus.Base, cands,
			chaosOptions(corpus, workers, faults.New(99, rules...)))
		if err != nil {
			t.Fatalf("workers=%d: chaos run failed: %v", workers, err)
		}
		return res
	}
	one := run(1)

	// The run must complete and quarantine one candidate per fired rule —
	// no more, no fewer — each at the stage its rule targeted.
	byStage := map[string]int{}
	for _, q := range one.Quarantined {
		byStage[q.Stage]++
	}
	if byStage["join"] != 2 || byStage["impute"] != 1 || byStage["encode"] != 1 || byStage["materialize"] != 1 {
		t.Fatalf("quarantine by stage = %v, want join:2 impute:1 encode:1 materialize:1 (%v)", byStage, one.Quarantined)
	}
	// Faulted candidates carry the fault reason; every quarantined entry
	// here must be injected, since the corpus itself is clean.
	for _, q := range one.Quarantined {
		if q.Reason == "" {
			t.Fatalf("quarantined %s/%s has empty reason", q.Stage, q.Name)
		}
	}
	// The materialize fault must not have removed the candidate's features
	// from the selection report — it faulted after selection — but a
	// quarantined candidate contributes nothing further.
	if one.Table == nil || one.FinalScore == 0 {
		t.Fatal("chaos run did not produce a final table and score")
	}

	// Bit-identical at 8 workers: same quarantine set, same kept features,
	// same scores.
	eight := run(8)
	q1, q8 := quarantineKeys(one.Quarantined), quarantineKeys(eight.Quarantined)
	if len(q1) != len(q8) {
		t.Fatalf("quarantine sets differ across workers: %v vs %v", q1, q8)
	}
	for i := range q1 {
		if q1[i] != q8[i] {
			t.Fatalf("quarantine sets differ across workers: %v vs %v", q1, q8)
		}
	}
	if len(one.KeptColumns) != len(eight.KeptColumns) {
		t.Fatalf("kept columns differ: %v vs %v", one.KeptColumns, eight.KeptColumns)
	}
	for i := range one.KeptColumns {
		if one.KeptColumns[i] != eight.KeptColumns[i] {
			t.Fatalf("kept columns differ: %v vs %v", one.KeptColumns, eight.KeptColumns)
		}
	}
	if one.BaseScore != eight.BaseScore || one.FinalScore != eight.FinalScore {
		t.Fatalf("scores differ across worker counts: base %v vs %v, final %v vs %v",
			one.BaseScore, eight.BaseScore, one.FinalScore, eight.FinalScore)
	}
}

// TestChaosZeroInjectionBitIdentical asserts that wiring a no-rule injector
// (and a nil injector) changes nothing: the quarantine machinery must be
// invisible when no fault fires.
func TestChaosZeroInjectionBitIdentical(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)

	plain, err := Augment(corpus.Base, cands, chaosOptions(corpus, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	empty, err := Augment(corpus.Base, cands, chaosOptions(corpus, 4, faults.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Quarantined) != 0 || len(empty.Quarantined) != 0 {
		t.Fatalf("clean corpus quarantined candidates: %v / %v", plain.Quarantined, empty.Quarantined)
	}
	if len(plain.KeptColumns) != len(empty.KeptColumns) {
		t.Fatalf("kept columns differ: %v vs %v", plain.KeptColumns, empty.KeptColumns)
	}
	for i := range plain.KeptColumns {
		if plain.KeptColumns[i] != empty.KeptColumns[i] {
			t.Fatalf("kept columns differ: %v vs %v", plain.KeptColumns, empty.KeptColumns)
		}
	}
	if plain.BaseScore != empty.BaseScore || plain.FinalScore != empty.FinalScore {
		t.Fatalf("scores differ: base %v vs %v, final %v vs %v",
			plain.BaseScore, empty.BaseScore, plain.FinalScore, empty.FinalScore)
	}
}

// TestChaosTransientFaultRetriesBitIdentical injects a transient fault that
// clears after two attempts: the retry must succeed and — because the stage
// RNG is re-derived per attempt — the result must be bit-identical to a run
// with no fault at all.
func TestChaosTransientFaultRetriesBitIdentical(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)

	clean, err := Augment(corpus.Base, cands, chaosOptions(corpus, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(5,
		faults.Rule{Stage: "join", Ordinal: 3, Kind: faults.Error, Times: 2, Transient: true})
	retried, err := Augment(corpus.Base, cands, chaosOptions(corpus, 4, inj))
	if err != nil {
		t.Fatal(err)
	}
	if len(retried.Quarantined) != 0 {
		t.Fatalf("transient fault was quarantined instead of retried: %v", retried.Quarantined)
	}
	fired := inj.Fired()
	if len(fired) < 2 {
		t.Fatalf("transient fault fired %d times, want >= 2 (retry attempts)", len(fired))
	}
	if len(clean.KeptColumns) != len(retried.KeptColumns) {
		t.Fatalf("kept columns differ after retry: %v vs %v", clean.KeptColumns, retried.KeptColumns)
	}
	for i := range clean.KeptColumns {
		if clean.KeptColumns[i] != retried.KeptColumns[i] {
			t.Fatalf("kept columns differ after retry: %v vs %v", clean.KeptColumns, retried.KeptColumns)
		}
	}
	if clean.BaseScore != retried.BaseScore || clean.FinalScore != retried.FinalScore {
		t.Fatalf("scores differ after retry: base %v vs %v, final %v vs %v",
			clean.BaseScore, retried.BaseScore, clean.FinalScore, retried.FinalScore)
	}
}

// TestChaosWorkerPanicDoesNotCrash floods every join checkpoint with panics:
// the run must survive (no process crash), quarantining every candidate and
// returning an augmentation-free result.
func TestChaosWorkerPanicDoesNotCrash(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	corpus, cands := chaosCorpus(t)

	res, err := Augment(corpus.Base, cands,
		chaosOptions(corpus, 8, faults.New(3, faults.MatchAll(faults.Panic))))
	if err != nil {
		t.Fatalf("all-panic run failed instead of quarantining: %v", err)
	}
	planned := res.CandidatesDeduped - res.CandidatesFiltered
	if len(res.Quarantined) != planned {
		t.Fatalf("quarantined %d of %d planned candidates", len(res.Quarantined), planned)
	}
	if len(res.KeptColumns) != 0 {
		t.Fatalf("kept columns from fully-quarantined run: %v", res.KeptColumns)
	}
	if res.Table == nil {
		t.Fatal("no result table")
	}
}
