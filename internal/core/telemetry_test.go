package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/testenv"
)

// histCounts reduces a traced run's histogram snapshot to name → observation
// count, the scheduling-independent part of the distribution (bucket contents
// are wall-clock and may differ between runs).
func histCounts(t *testing.T, workers int) map[string]int64 {
	t.Helper()
	res := tracedRun(t, workers, obs.New("augment"))
	if res.Trace == nil || len(res.Trace.Histograms) == 0 {
		t.Fatal("traced run produced no histograms")
	}
	counts := map[string]int64{}
	for name, st := range res.Trace.Histograms {
		counts[name] = st.Count
	}
	return counts
}

// TestTelemetryHistogramCountsWorkerInvariant asserts the histogram registry
// exposes the same latency families with identical observation counts at 1
// and 8 workers: every span observes its duration exactly once regardless of
// scheduling, so only bucket placement (wall-clock) may vary.
func TestTelemetryHistogramCountsWorkerInvariant(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	one := histCounts(t, 1)
	eight := histCounts(t, 8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("histogram observation counts differ:\n1 worker:  %v\n8 workers: %v", one, eight)
	}
	// The stage histograms pre-registered by the pipeline must all have fired,
	// as must the per-item and per-model families threaded through the layers.
	for _, name := range append(append([]string{}, pipelineStages...),
		"join.cand", "select.rep", "materialize.cand", "select.tree_fit", "select.subset_score") {
		if one[name] == 0 {
			t.Fatalf("histogram %q never observed (have %v)", name, one)
		}
	}
}

// streamShape runs the traced pipeline with a StreamSink attached and
// returns the scheduling-independent shape of the event stream: the sorted
// multiset of (type, name, path) triples, plus the drained subscription for
// completeness checks.
func streamShape(t *testing.T, workers int) ([]string, []obs.Event) {
	t.Helper()
	stream := obs.NewStreamSink(0)
	// A buffer larger than the run's event count makes "fast subscriber"
	// deterministic: nothing can drop, no concurrent reader races the run.
	sub := stream.Subscribe(1 << 16)
	tracedRun(t, workers, obs.New("augment", stream))
	var evs []obs.Event
	for ev := range sub.Events() {
		evs = append(evs, ev)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d events", sub.Dropped())
	}
	if int64(len(evs)) != stream.Emitted() {
		t.Fatalf("fast subscriber saw %d of %d emitted events", len(evs), stream.Emitted())
	}
	shape := make([]string, len(evs))
	for i, ev := range evs {
		shape[i] = fmt.Sprintf("%s|%s|%s", ev.Type, ev.Name, ev.Path)
	}
	sort.Strings(shape)
	return shape, evs
}

// TestTelemetryStreamStructureWorkerInvariant asserts a live event stream is
// structure-identical at 1 and 8 workers — same multiset of (type, name,
// path) — terminates with exactly one run event, and that a fast subscriber
// sees every emitted event with zero drops.
func TestTelemetryStreamStructureWorkerInvariant(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()

	one, evs := streamShape(t, 1)
	eight, _ := streamShape(t, 8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("event stream shape differs between 1 and 8 workers (%d vs %d events)", len(one), len(eight))
	}

	if len(evs) == 0 {
		t.Fatal("stream delivered no events")
	}
	if last := evs[len(evs)-1]; last.Type != obs.EventRun {
		t.Fatalf("stream must terminate with the run event, got %q %q", last.Type, last.Name)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Type]++
	}
	if kinds[obs.EventRun] != 1 {
		t.Fatalf("want exactly one run event, got %d", kinds[obs.EventRun])
	}
	for _, k := range []string{obs.EventSpan, obs.EventCounter, obs.EventHist} {
		if kinds[k] == 0 {
			t.Fatalf("stream missing %q events: %v", k, kinds)
		}
	}
}

// TestTelemetryInterruptedRunFlushesTrace kills a run mid-join (delay faults
// plus a timed cancel) and asserts the interruption still publishes complete
// telemetry: Result.Trace holds the partial snapshot, the -trace NDJSON file
// is atomically renamed into place, every line parses as an event, and the
// stream ends with the terminal run event. This is the crash-observability
// contract behind cmd/arda's exit-code-2 path.
func TestTelemetryInterruptedRunFlushesTrace(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	corpus, cands := chaosCorpus(t)

	path := filepath.Join(t.TempDir(), "partial.ndjson")
	sink, err := obs.NewNDJSONFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	stream := obs.NewStreamSink(0)

	const perJoin = 30 * time.Millisecond
	opts := chaosOptions(corpus, 4, faults.New(1,
		faults.Rule{Stage: "join", Ordinal: -1, Kind: faults.Delay, Delay: perJoin}))
	opts.Trace = obs.New("augment", sink, stream)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * perJoin)
		cancel()
	}()
	res, err := AugmentContext(ctx, corpus.Base, cands, opts)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("AugmentContext = %v, want ErrCanceled", err)
	}
	if res == nil || res.Trace == nil {
		t.Fatal("interrupted run must still snapshot its trace")
	}

	// The file sink publishes under the final name only on Flush, so its
	// existence proves the interrupted trace was finished, not abandoned.
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("interrupted run left no published trace file: %v", err)
	}
	defer f.Close()
	var last obs.Event
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			t.Fatalf("trace file line %d is empty", lines+1)
		}
		var ev obs.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("trace file line %d invalid: %v", lines+1, err)
		}
		last = ev
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("published trace file is empty")
	}
	if last.Type != obs.EventRun {
		t.Fatalf("trace file must end with the run event, got %q %q", last.Type, last.Name)
	}

	// The stream sink was flushed too: a post-flush subscriber replays the
	// recorded history through an already-closed channel.
	sub := stream.Subscribe(0)
	replayed := 0
	for range sub.Events() {
		replayed++
	}
	if replayed == 0 {
		t.Fatal("flushed stream replayed no history")
	}
}
