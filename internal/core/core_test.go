package core

import (
	"testing"

	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/synth"
)

func TestTaskOf(t *testing.T) {
	tab := dataframe.MustNewTable("t",
		dataframe.NewCategorical("c", []string{"a", "b"}),
		dataframe.NewNumeric("r", []float64{1, 2}),
	)
	task, classes, err := TaskOf(tab, "c")
	if err != nil || task != ml.Classification || classes != 2 {
		t.Fatalf("TaskOf(c) = %v %d %v", task, classes, err)
	}
	task, _, err = TaskOf(tab, "r")
	if err != nil || task != ml.Regression {
		t.Fatalf("TaskOf(r) = %v %v", task, err)
	}
	if _, _, err := TaskOf(tab, "absent"); err == nil {
		t.Fatal("absent target should error")
	}
}

func candidateFor(tab *dataframe.Table, baseCol, foreignCol string, rows int) discovery.Candidate {
	return discovery.Candidate{
		Table: tab,
		Keys:  []join.KeyPair{{BaseColumn: baseCol, ForeignColumn: foreignCol, Kind: join.Hard}},
		Score: 1,
	}
}

func TestEstimateFeatures(t *testing.T) {
	tab := dataframe.MustNewTable("f",
		dataframe.NewCategorical("k", []string{"a", "b"}),
		dataframe.NewNumeric("v", []float64{1, 2}),
		dataframe.NewCategorical("c", []string{"x", "y"}),
	)
	c := candidateFor(tab, "k", "k", 2)
	// v (1) + c binarized (2 categories) = 3; key k excluded.
	if got := EstimateFeatures(c); got != 3 {
		t.Fatalf("EstimateFeatures = %d, want 3", got)
	}
}

func TestBuildPlanBudget(t *testing.T) {
	mk := func(name string, numeric int) discovery.Candidate {
		cols := []dataframe.Column{dataframe.NewCategorical("k", []string{"a"})}
		for i := 0; i < numeric; i++ {
			cols = append(cols, dataframe.NewNumeric(name+string(rune('a'+i)), []float64{1}))
		}
		return candidateFor(dataframe.MustNewTable(name, cols...), "k", "k", 1)
	}
	cands := []discovery.Candidate{mk("t1", 3), mk("t2", 3), mk("t3", 3), mk("big", 20)}
	batches := BuildPlan(cands, BudgetJoin, 7)
	// t1+t2 fit budget 7 (3+3=6); t3 starts a new batch; big ships alone.
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if len(batches[0].Candidates) != 2 || batches[0].EstimatedFeatures != 6 {
		t.Fatalf("batch 0 = %+v", batches[0])
	}
	if len(batches[2].Candidates) != 1 || batches[2].Candidates[0].Table.Name() != "big" {
		t.Fatal("oversized table should ship alone")
	}

	tj := BuildPlan(cands, TableJoin, 7)
	if len(tj) != 4 {
		t.Fatalf("table-join batches = %d", len(tj))
	}
	fm := BuildPlan(cands, FullMaterialization, 7)
	if len(fm) != 1 || len(fm[0].Candidates) != 4 {
		t.Fatalf("full-materialization batches = %+v", fm)
	}
	if got := BuildPlan(nil, FullMaterialization, 7); got != nil {
		t.Fatal("empty plan should be nil")
	}
}

func TestTupleRatioAndFilter(t *testing.T) {
	small := dataframe.MustNewTable("small",
		dataframe.NewCategorical("k", []string{"a", "b"}),
		dataframe.NewNumeric("v", []float64{1, 2}),
	)
	big := dataframe.MustNewTable("big",
		dataframe.NewCategorical("k", []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}),
		dataframe.NewNumeric("v", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
	)
	cs := candidateFor(small, "k", "k", 2)
	cb := candidateFor(big, "k", "k", 10)
	// Base of 100 rows: ratios 50 and 10.
	if got := TupleRatio(100, cs); got != 50 {
		t.Fatalf("TupleRatio(small) = %v", got)
	}
	if got := TupleRatio(100, cb); got != 10 {
		t.Fatalf("TupleRatio(big) = %v", got)
	}
	kept, removed := FilterTupleRatio(100, []discovery.Candidate{cs, cb}, 20)
	if len(kept) != 1 || kept[0].Table.Name() != "big" || removed != 1 {
		t.Fatalf("filter kept %d removed %d", len(kept), removed)
	}
	// tau <= 0 disables filtering.
	kept, removed = FilterTupleRatio(100, []discovery.Candidate{cs, cb}, 0)
	if len(kept) != 2 || removed != 0 {
		t.Fatal("tau=0 should disable the filter")
	}
}

func TestDedupeCandidates(t *testing.T) {
	tab := dataframe.MustNewTable("f",
		dataframe.NewCategorical("k", []string{"a"}),
		dataframe.NewNumeric("v", []float64{1}),
	)
	c := candidateFor(tab, "k", "k", 1)
	base := dataframe.MustNewTable("base", dataframe.NewCategorical("k", []string{"a"}))
	out := DedupeCandidates(base, []discovery.Candidate{c, c, {Table: base}})
	if len(out) != 1 {
		t.Fatalf("dedupe kept %d, want 1", len(out))
	}
}

// fastEstimator keeps end-to-end tests quick.
func fastEstimator(seed int64) eval.Fitter {
	return func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 20, MaxDepth: 8, Seed: seed, Parallel: true})
	}
}

func TestAugmentEndToEndPoverty(t *testing.T) {
	corpus := synth.Poverty(synth.Config{Seed: 41, Scale: 0.3})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	if len(cands) == 0 {
		t.Fatal("discovery found nothing")
	}
	res, err := Augment(corpus.Base, cands, Options{
		Target:      corpus.Target,
		CoresetSize: 256,
		Selector:    &featsel.RIFS{Config: featsel.RIFSConfig{K: 4, Forest: featsel.ForestRanker{NTrees: 20, MaxDepth: 8}}},
		Estimator:   fastEstimator(1),
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != corpus.Base.NumRows() {
		t.Fatal("augmented table must preserve base rows")
	}
	if len(res.KeptColumns) == 0 {
		t.Fatal("augmentation kept no columns on a corpus with planted signal")
	}
	if res.FinalScore <= res.BaseScore {
		t.Fatalf("augmentation did not improve: base=%.3f final=%.3f", res.BaseScore, res.FinalScore)
	}
	// At least one kept table must be genuinely relevant.
	foundRelevant := false
	for _, name := range res.KeptTables {
		if corpus.RelevantTables[name] {
			foundRelevant = true
		}
	}
	if !foundRelevant {
		t.Fatalf("kept tables %v contain no planted-signal table", res.KeptTables)
	}
}

func TestAugmentClassificationStratified(t *testing.T) {
	corpus := synth.SchoolS(synth.Config{Seed: 43, Scale: 0.25})
	cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
	res, err := Augment(corpus.Base, cands, Options{
		Target:          corpus.Target,
		CoresetStrategy: coreset.Stratified,
		CoresetSize:     256,
		Selector:        &featsel.RIFS{Config: featsel.RIFSConfig{K: 4, Forest: featsel.ForestRanker{NTrees: 20, MaxDepth: 8}}},
		Estimator:       fastEstimator(2),
		Seed:            44,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalScore <= res.BaseScore {
		t.Fatalf("classification augmentation did not improve: base=%.3f final=%.3f",
			res.BaseScore, res.FinalScore)
	}
}

func TestAugmentRequiresTarget(t *testing.T) {
	base := dataframe.MustNewTable("b", dataframe.NewNumeric("x", []float64{1}))
	if _, err := Augment(base, nil, Options{}); err == nil {
		t.Fatal("missing target should error")
	}
	if _, err := Augment(base, nil, Options{Target: "nope"}); err == nil {
		t.Fatal("absent target column should error")
	}
}

func TestAugmentSelectorTaskMismatch(t *testing.T) {
	base := dataframe.MustNewTable("b",
		dataframe.NewCategorical("y", []string{"a", "b"}),
		dataframe.NewNumeric("x", []float64{1, 2}),
	)
	sel, _ := featsel.New(featsel.MethodLasso) // regression-only
	if _, err := Augment(base, nil, Options{Target: "y", Selector: sel}); err == nil {
		t.Fatal("lasso on classification should be rejected")
	}
}

func TestDedupeCandidatesDropsSameNamedTable(t *testing.T) {
	// A repository holding a copy of the base file (same table name) must
	// never become a join candidate — it would leak the target back in.
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("k", []string{"a", "b"}),
		dataframe.NewNumeric("y", []float64{1, 2}),
	)
	copyOfBase := dataframe.MustNewTable("base",
		dataframe.NewCategorical("k", []string{"a", "b"}),
		dataframe.NewNumeric("y", []float64{1, 2}),
	)
	c := candidateFor(copyOfBase, "k", "k", 2)
	out := DedupeCandidates(base, []discovery.Candidate{c})
	if len(out) != 0 {
		t.Fatal("same-named table must be dropped to prevent target leakage")
	}
}
