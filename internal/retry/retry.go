// Package retry is the repo's one bounded-retry loop: deterministic capped
// exponential backoff around an operation, retrying only failures the
// caller's classifier deems worth another attempt. It exists so the three
// places that need retries — the pipeline's per-candidate quarantine loop
// (internal/core via faults.Retry), tracecheck's connect-to-a-starting-server
// loop, and ardad's transient-run-failure supervisor — share one semantics
// instead of three hand-rolled sleeps.
//
// Determinism matters to the first consumer: the backoff schedule is a pure
// function of the policy (base << try, capped at Max), never jittered, so a
// retried pipeline operation re-runs on a schedule independent of wall clock
// and worker count. Context cancellation aborts a backoff wait immediately.
package retry

import (
	"context"
	"time"
)

// Policy describes one retry schedule.
type Policy struct {
	// Attempts is the maximum number of tries (including the first). Values
	// < 1 mean 1, except 0-with-context: Attempts <= 0 retries without an
	// attempt bound, stopping only when the context is done — the "wait for a
	// server to come up" shape. Callers without a context must set Attempts.
	Attempts int
	// Base is the first backoff; try n waits Base << (n-1). 0 retries
	// immediately.
	Base time.Duration
	// Max caps a single backoff when > 0; 0 leaves the doubling uncapped.
	Max time.Duration
}

// Backoff returns the wait before try (1-based; try 1 has no wait): the
// capped exponential Base << (try-2).
func (p Policy) Backoff(try int) time.Duration {
	if try <= 1 || p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 2; i < try; i++ {
		d <<= 1
		if p.Max > 0 && d >= p.Max {
			return p.Max
		}
		if d <= 0 { // overflow
			return maxDuration(p.Max)
		}
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

func maxDuration(max time.Duration) time.Duration {
	if max > 0 {
		return max
	}
	return 1<<63 - 1
}

// Always classifies every error as retryable — for loops bounded by a
// context deadline rather than by the error's nature.
func Always(error) bool { return true }

// Do runs fn up to p.Attempts times, retrying only errors for which
// retryable reports true, waiting p.Backoff between tries. A done ctx aborts
// the wait (and the next try) with ctx.Err(); a nil ctx never aborts.
// Non-retryable errors and success return immediately. The returned error is
// fn's last, so exhausting attempts surfaces the underlying failure, not a
// generic "retries exhausted".
func Do(ctx context.Context, p Policy, retryable func(error) bool, fn func() error) error {
	unbounded := p.Attempts <= 0 && ctx != nil
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	var err error
	for try := 1; unbounded || try <= p.Attempts; try++ {
		if wait := p.Backoff(try); wait > 0 {
			t := time.NewTimer(wait)
			if ctx != nil {
				select {
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				case <-t.C:
				}
			} else {
				<-t.C
			}
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if err = fn(); err == nil || retryable == nil || !retryable(err) {
			return err
		}
	}
	return err
}
