package retry

import "sync"

// Jitter is a small seeded uniform-jitter source for spreading retry hints
// across a bounded window — the HTTP layer draws Retry-After values from it
// so a burst of rejected clients does not thundering-herd the re-admission
// window by all coming back on the same second.
//
// It is deliberately separate from Policy: the pipeline's retry schedule
// stays a pure, never-jittered function of the policy (see the package
// comment), while client-facing hints want decorrelation. The stream is a
// pure function of the seed — tests can assert exact draws — but callers
// share one Jitter per process, so the draw a given request sees depends on
// request order. Safe for concurrent use.
type Jitter struct {
	mu    sync.Mutex
	state uint64
}

// NewJitter returns a jitter source seeded deterministically from seed.
func NewJitter(seed int64) *Jitter {
	j := &Jitter{state: uint64(seed)}
	j.next() // decorrelate trivial seeds (0, 1, ...) immediately
	return j
}

// next advances the SplitMix64 stream.
func (j *Jitter) next() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn draws a uniform integer in [0, n); n <= 0 returns 0.
func (j *Jitter) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(j.next() % uint64(n))
}

// Seconds draws base + [0, spread) — the bounded Retry-After shape: never
// below base (clients must not retry early), never at or beyond base+spread.
func (j *Jitter) Seconds(base, spread int) int {
	return base + j.Intn(spread)
}
