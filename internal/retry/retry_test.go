package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errTransient = errors.New("transient")

func TestDoSucceedsAfterRetries(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 3, Base: time.Microsecond}, Always, func() error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on call 3", err, calls)
	}
}

func TestDoNonRetryableReturnsImmediately(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5, Base: time.Microsecond},
		func(err error) bool { return !errors.Is(err, boom) },
		func() error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want boom after 1", err, calls)
	}
}

func TestDoExhaustsAttemptsReturnsLastError(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 3, Base: time.Microsecond}, Always, func() error {
		calls++
		return errTransient
	})
	if !errors.Is(err, errTransient) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want transient after 3", err, calls)
	}
}

func TestDoHonorsContextDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := Do(ctx, Policy{Attempts: 3, Base: time.Hour}, Always, func() error {
		calls++
		return errTransient
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do under canceled ctx = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("Do kept calling (%d) after cancellation", calls)
	}
}

func TestDoPreCanceledContextNeverCalls(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{Attempts: 3}, Always, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("Do = %v after %d calls, want context.Canceled after 0", err, calls)
	}
}

func TestDoNilContextBounded(t *testing.T) {
	calls := 0
	err := Do(nil, Policy{Attempts: 2, Base: time.Microsecond}, Always, func() error {
		calls++
		return errTransient
	})
	if !errors.Is(err, errTransient) || calls != 2 {
		t.Fatalf("Do(nil ctx) = %v after %d calls, want transient after 2", err, calls)
	}
}

func TestDoUnboundedStopsAtDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	calls := 0
	err := Do(ctx, Policy{Base: time.Millisecond, Max: time.Millisecond}, Always, func() error {
		calls++
		return errTransient
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unbounded Do = %v, want deadline exceeded", err)
	}
	if calls < 2 {
		t.Fatalf("unbounded Do made only %d calls before the deadline", calls)
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 45 * time.Millisecond}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 45 * time.Millisecond, 45 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	uncapped := Policy{Base: time.Millisecond}
	if got := uncapped.Backoff(5); got != 8*time.Millisecond {
		t.Fatalf("uncapped Backoff(5) = %v, want 8ms", got)
	}
	if got := (Policy{}).Backoff(3); got != 0 {
		t.Fatalf("zero-base Backoff(3) = %v, want 0", got)
	}
}

func TestBackoffOverflowCapped(t *testing.T) {
	p := Policy{Base: time.Duration(1) << 55, Max: time.Hour}
	if got := p.Backoff(60); got != time.Hour {
		t.Fatalf("overflowing Backoff = %v, want Max", got)
	}
	unc := Policy{Base: time.Duration(1) << 62}
	if got := unc.Backoff(10); got <= 0 {
		t.Fatalf("uncapped overflow Backoff = %v, want positive", got)
	}
}
