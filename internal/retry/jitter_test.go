package retry

import (
	"sync"
	"testing"
)

// TestJitterBoundsAndDeterminism: draws stay within [base, base+spread), the
// stream is a pure function of the seed, and degenerate spreads are safe.
func TestJitterBoundsAndDeterminism(t *testing.T) {
	a, b := NewJitter(42), NewJitter(42)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		va, vb := a.Seconds(1, 4), b.Seconds(1, 4)
		if va != vb {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, va, vb)
		}
		if va < 1 || va >= 5 {
			t.Fatalf("draw %d: %d outside [1, 5)", i, va)
		}
		seen[va] = true
	}
	if len(seen) < 4 {
		t.Fatalf("1000 draws hit only %d of 4 values: %v", len(seen), seen)
	}
	if got := NewJitter(7).Seconds(5, 0); got != 5 {
		t.Fatalf("zero spread: got %d, want 5", got)
	}
	if got := NewJitter(7).Intn(-3); got != 0 {
		t.Fatalf("negative n: got %d, want 0", got)
	}
}

// TestJitterConcurrent exercises the lock under the race detector.
func TestJitterConcurrent(t *testing.T) {
	j := NewJitter(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if v := j.Seconds(1, 3); v < 1 || v >= 4 {
					t.Errorf("out of bounds: %d", v)
				}
			}
		}()
	}
	wg.Wait()
}
