package obs

import (
	"sync"
	"sync/atomic"
)

// defaultStreamHistory is how many events a StreamSink replays to late
// subscribers when constructed with NewStreamSink(0). A full traced run on
// the largest synthetic corpus emits a few thousand events (one per ended
// span plus the terminal metrics), so the default comfortably holds a whole
// run.
const defaultStreamHistory = 16384

// StreamSink is the live event bus of the telemetry plane: a Sink that fans
// every emitted event out to any number of subscribers over bounded
// channels, with deterministic drop accounting instead of blocking. It is
// the substrate for streaming run progress (the `/events` NDJSON endpoint
// today, ardad's SSE tomorrow).
//
// Three properties matter to callers:
//
//   - Emit never blocks and never allocates once the history buffer is full:
//     a subscriber whose channel is full loses that event and its drop
//     counter increments, so delivered + dropped == emitted holds exactly
//     per subscription.
//   - The sink records the first historyCap events and replays them to every
//     new subscriber before any live event, so a subscriber that connects
//     mid-run still sees the run from the start (in emission order).
//   - Flush (called once by Trace.Finish) closes every subscriber channel,
//     so range-loops over Subscription.Events terminate when the run does.
type StreamSink struct {
	mu         sync.Mutex
	history    []Event
	historyCap int
	overflowed int64 // events emitted after history filled (not replayable)
	emitted    int64
	subs       []*Subscription
	closed     bool
}

// NewStreamSink returns a stream bus whose replay buffer holds historyCap
// events (<= 0 means the default). The sink is usable immediately;
// subscribers may attach before or after it is wired into a Trace.
func NewStreamSink(historyCap int) *StreamSink {
	if historyCap <= 0 {
		historyCap = defaultStreamHistory
	}
	return &StreamSink{
		history:    make([]Event, 0, historyCap),
		historyCap: historyCap,
	}
}

// Emit implements Sink: record into the replay buffer (until full) and
// offer the event to every subscriber without blocking.
func (s *StreamSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.emitted++
	if len(s.history) < s.historyCap {
		s.history = append(s.history, ev)
	} else {
		s.overflowed++
	}
	for _, sub := range s.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
		}
	}
}

// Flush implements Sink: it marks the stream complete and closes every
// subscriber channel. Events emitted after Flush are discarded. Flush is
// idempotent.
func (s *StreamSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, sub := range s.subs {
		close(sub.ch)
	}
	s.subs = nil
	return nil
}

// Emitted returns how many events the sink has accepted so far.
func (s *StreamSink) Emitted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitted
}

// Overflowed returns how many events arrived after the replay buffer filled
// (they still reached live subscribers but are invisible to later ones).
func (s *StreamSink) Overflowed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overflowed
}

// Subscribe attaches a new subscriber and replays the recorded history into
// its channel before any live event. buf bounds the channel capacity
// available for live events beyond the replay (<= 0 means 256); a
// subscriber that cannot keep up loses events (counted, never blocking the
// pipeline). Subscribing to an already-flushed sink returns a subscription
// whose channel delivers the recorded history and is already closed.
func (s *StreamSink) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 256
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The channel always has room for the full replay, so history is never
	// dropped — only live events compete for the remaining buf slots.
	sub := &Subscription{s: s, ch: make(chan Event, len(s.history)+buf)}
	for _, ev := range s.history {
		sub.ch <- ev
	}
	if s.closed {
		close(sub.ch)
		return sub
	}
	s.subs = append(s.subs, sub)
	return sub
}

// Subscription is one subscriber's view of a StreamSink.
type Subscription struct {
	s       *StreamSink
	ch      chan Event
	dropped atomic.Int64
}

// Events returns the receive channel: recorded history first, then live
// events, closed when the trace finishes (or the subscription is closed).
func (u *Subscription) Events() <-chan Event { return u.ch }

// Dropped returns how many live events this subscriber lost to a full
// channel. For any subscription attached before the first emit,
// delivered + Dropped() == StreamSink.Emitted() holds exactly.
func (u *Subscription) Dropped() int64 { return u.dropped.Load() }

// Close detaches the subscription and closes its channel; safe to call
// concurrently with Emit, idempotent, and a no-op after the sink flushed
// (Flush already closed the channel).
func (u *Subscription) Close() {
	u.s.mu.Lock()
	defer u.s.mu.Unlock()
	if u.s.closed {
		return
	}
	for i, sub := range u.s.subs {
		if sub == u {
			u.s.subs = append(u.s.subs[:i], u.s.subs[i+1:]...)
			close(u.ch)
			return
		}
	}
}
