package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(-5) // bucket 0
	h.Observe(0)  // bucket 0
	h.Observe(1)  // bucket 1: [1,2)
	h.Observe(2)  // bucket 2: [2,4)
	h.Observe(3)  // bucket 2
	h.Observe(4)  // bucket 3: [4,8)
	h.Observe(1 << 40)

	st := h.Snapshot()
	if st.Count != 7 {
		t.Fatalf("count = %d, want 7", st.Count)
	}
	if st.Sum != -5+0+1+2+3+4+(1<<40) {
		t.Fatalf("sum = %d", st.Sum)
	}
	if len(st.Buckets) != 42 {
		t.Fatalf("buckets trimmed to %d, want 42 (highest bit length of 2^40)", len(st.Buckets))
	}
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 41: 1}
	for i, c := range st.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of 100ns (bucket [64,128)) and 1 of 1e9ns.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	h.Observe(1_000_000_000)
	st := h.Snapshot()
	p50 := st.Quantile(0.50)
	if p50 < 64 || p50 > 128 {
		t.Fatalf("p50 = %d, want within [64,128]", p50)
	}
	p99 := st.Quantile(0.99)
	if p99 < 64 || p99 > 128 {
		t.Fatalf("p99 = %d, want within [64,128] (100/101 observations there)", p99)
	}
	p999 := st.Quantile(0.9999)
	if p999 < 1<<29 || p999 > 1<<30 {
		t.Fatalf("p99.99 = %d, want inside the 1e9 bucket [2^29,2^30]", p999)
	}
	if q := (HistogramStat{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(20)
	b.Observe(1 << 20)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Sum != 30+(1<<20) {
		t.Fatalf("merged count/sum = %d/%d", sa.Count, sa.Sum)
	}
	if len(sa.Buckets) != 22 {
		t.Fatalf("merged buckets = %d, want 22", len(sa.Buckets))
	}
	// Merge must not alias the source's bucket slice.
	sb.Buckets[21] = 99
	if sa.Buckets[21] != 1 {
		t.Fatal("merge aliased the source buckets")
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram count != 0")
	}
	if st := h.Snapshot(); st.Count != 0 || st.Buckets != nil {
		t.Fatalf("nil snapshot = %+v", st)
	}
}

// TestHistogramConcurrentDeterminism: the same multiset of observed values
// yields bit-identical bucket counts whether observed sequentially or from
// eight goroutines — the histogram side of the worker-count determinism
// contract (wall-clock *durations* differ across runs; recorded *values*
// bucket identically).
func TestHistogramConcurrentDeterminism(t *testing.T) {
	values := make([]int64, 4096)
	for i := range values {
		values[i] = int64(i) * 37 % 100000
	}
	var seq Histogram
	for _, v := range values {
		seq.Observe(v)
	}
	var par Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(values); i += 8 {
				par.Observe(values[i])
			}
		}(g)
	}
	wg.Wait()
	if !reflect.DeepEqual(seq.Snapshot(), par.Snapshot()) {
		t.Fatalf("sequential vs 8-goroutine snapshots differ:\n%+v\n%+v",
			seq.Snapshot(), par.Snapshot())
	}
}

func TestTraceHistogramRegistryAndSpanAuto(t *testing.T) {
	tr := New("run")
	tr.Histogram("fit").Observe(7)
	tr.Histogram("fit").Observe(9)
	sp := tr.Root().Child("join", 1)
	sp.End()
	stats := tr.Finish()
	if h := stats.Histograms["fit"]; h.Count != 2 || h.Sum != 16 {
		t.Fatalf("fit histogram = %+v", h)
	}
	// Ended spans observe their duration into the histogram of their name.
	if h := stats.Histograms["join"]; h.Count != 1 {
		t.Fatalf("join span histogram = %+v", h)
	}
	if h := stats.Histograms["run"]; h.Count != 1 {
		t.Fatalf("root span histogram = %+v", h)
	}
	var nilTr *Trace
	if nilTr.Histogram("x") != nil || nilTr.Histograms() != nil || nilTr.Snapshot() != nil {
		t.Fatal("nil trace must return nil histogram handles")
	}
}
