package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanStat is one node of the immutable span-tree snapshot. Children are
// ordered by (Ord, Name), never by completion time, so two runs of the same
// seeded pipeline produce structurally identical snapshots for any worker
// count.
type SpanStat struct {
	// Name is the stage name ("join", "select", …).
	Name string `json:"name"`
	// Ord is the caller-assigned ordinal among same-named siblings.
	Ord int `json:"ord"`
	// Label is the optional human-readable label (e.g. a table name).
	Label string `json:"label,omitempty"`
	// Dur is the span's monotonic duration.
	Dur time.Duration `json:"dur_ns"`
	// Attrs holds the span's integer attributes.
	Attrs map[string]int64 `json:"attrs,omitempty"`
	// Children are the nested spans.
	Children []*SpanStat `json:"children,omitempty"`
}

// RunStats is the machine-readable outcome of a traced run: the span tree
// plus final counter/gauge values. It is a plain value — safe to retain,
// serialize, or render after the trace is finished.
type RunStats struct {
	// Name is the root span's name.
	Name string `json:"name"`
	// Elapsed is the root span's duration.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Root is the span tree.
	Root *SpanStat `json:"root"`
	// Counters holds the final counter and gauge values by name.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Histograms holds the latency/size distributions by name (stage and
	// per-item span durations, per-tree fit times, subset-score latencies).
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// snapshot freezes the trace's span tree and metrics.
func (t *Trace) snapshot() *RunStats {
	root := t.root.stat()
	return &RunStats{
		Name:       t.root.name,
		Elapsed:    root.Dur,
		Root:       root,
		Counters:   t.Metrics(),
		Histograms: t.Histograms(),
	}
}

// stat converts the span subtree into its snapshot form.
func (s *Span) stat() *SpanStat {
	s.mu.Lock()
	st := &SpanStat{Name: s.name, Ord: s.ord, Label: s.label, Dur: s.dur}
	if !s.ended {
		st.Dur = time.Since(s.start)
	}
	if len(s.attrs) > 0 {
		st.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			st.Attrs[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		st.Children = append(st.Children, c.stat())
	}
	sort.SliceStable(st.Children, func(i, j int) bool {
		if st.Children[i].Ord != st.Children[j].Ord {
			return st.Children[i].Ord < st.Children[j].Ord
		}
		return st.Children[i].Name < st.Children[j].Name
	})
	return st
}

// StageTotals sums span durations by span name across the whole tree — the
// per-stage cost breakdown of the run. Nested stages accumulate under their
// own name: a per-candidate "join.cand" span counts toward "join.cand", not
// toward its parent "join" (whose duration already covers it).
func (r *RunStats) StageTotals() map[string]time.Duration {
	totals := make(map[string]time.Duration)
	var walk func(*SpanStat)
	walk = func(s *SpanStat) {
		totals[s.Name] += s.Dur
		for _, c := range s.Children {
			walk(c)
		}
	}
	if r.Root != nil {
		walk(r.Root)
	}
	return totals
}

// SpanCounts counts spans by name across the whole tree.
func (r *RunStats) SpanCounts() map[string]int {
	counts := make(map[string]int)
	var walk func(*SpanStat)
	walk = func(s *SpanStat) {
		counts[s.Name]++
		for _, c := range s.Children {
			walk(c)
		}
	}
	if r.Root != nil {
		walk(r.Root)
	}
	return counts
}

// Render draws the stage-cost tree and the counters, aligned for terminal
// output:
//
//	augment                          812.3ms
//	├─ prefilter                       0.1ms
//	├─ batch                          97.2ms
//	│  ├─ join                        12.0ms  rows_matched=192
//	…
//	counters:
//	  join.rows_matched              1920
func (r *RunStats) Render() string {
	var b strings.Builder
	if r.Root != nil {
		renderSpan(&b, r.Root, "", "")
	}
	if len(r.Counters) > 0 {
		b.WriteString("counters:\n")
		names := make([]string, 0, len(r.Counters))
		for name := range r.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-34s %d\n", name, r.Counters[name])
		}
	}
	if len(r.Histograms) > 0 {
		b.WriteString("histograms:                          count      p50      p95      p99\n")
		names := make([]string, 0, len(r.Histograms))
		for name := range r.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := r.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-34s %5d %7.1fms %7.1fms %7.1fms\n",
				name, h.Count,
				float64(h.Quantile(0.50))/1e6,
				float64(h.Quantile(0.95))/1e6,
				float64(h.Quantile(0.99))/1e6)
		}
	}
	return b.String()
}

// renderSpan draws one node and recurses with box-drawing guides.
func renderSpan(b *strings.Builder, s *SpanStat, prefix, childPrefix string) {
	name := s.Name
	if s.Ord > 0 {
		name = fmt.Sprintf("%s[%d]", s.Name, s.Ord)
	}
	if s.Label != "" {
		name += " (" + s.Label + ")"
	}
	head := prefix + name
	fmt.Fprintf(b, "%-40s %9.1fms", head, float64(s.Dur.Microseconds())/1000)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "  %s=%d", k, s.Attrs[k])
		}
	}
	b.WriteByte('\n')
	for i, c := range s.Children {
		guide, cont := "├─ ", "│  "
		if i == len(s.Children)-1 {
			guide, cont = "└─ ", "   "
		}
		renderSpan(b, c, childPrefix+guide, childPrefix+cont)
	}
}
