package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/arda-ml/arda/internal/atomicio"
)

func TestNDJSONFileSinkPublishesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	// Simulate a previous complete run's trace: it must survive until the new
	// run's Flush.
	if err := os.WriteFile(path, []byte("{\"type\":\"run\",\"name\":\"old\",\"dur_us\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewNDJSONFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit(Event{Type: EventSpan, Name: "join", DurUS: 10})
	s.Emit(Event{Type: EventRun, Name: "augment", DurUS: 42})

	// Mid-run: final path still holds the old trace, prefix lives in .tmp.
	old, err := os.ReadFile(path)
	if err != nil || len(old) == 0 || !json.Valid(old[:len(old)-1]) {
		t.Fatalf("final path clobbered mid-run: %q, %v", old, err)
	}
	if _, err := os.Stat(path + atomicio.TempSuffix); err != nil {
		t.Fatalf("no in-progress temp file: %v", err)
	}

	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("second flush not idempotent: %v", err)
	}
	if _, err := os.Stat(path + atomicio.TempSuffix); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", sc.Text(), err)
		}
		names = append(names, ev.Name)
	}
	if len(names) != 2 || names[0] != "join" || names[1] != "augment" {
		t.Fatalf("published events = %v, want [join augment]", names)
	}

	// Emits after Flush are dropped, not written anywhere.
	s.Emit(Event{Type: EventSpan, Name: "late"})
	got, _ := os.ReadFile(path)
	if len(got) == 0 || string(got) == "" {
		t.Fatal("trace vanished")
	}
}

func TestNDJSONFileSinkWorksWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	s, err := NewNDJSONFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New("run", s)
	sp := tr.Root().Child("stage", 0)
	sp.End()
	tr.Finish() // flushes the sink → publishes the file
	if err := s.Flush(); err != nil {
		t.Fatalf("publish failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("trace not published: %v", err)
	}
}
