package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"github.com/arda-ml/arda/internal/atomicio"
)

// NDJSONFileSink streams events as NDJSON into a temporary file (path +
// atomicio.TempSuffix by default) and atomically renames the complete stream
// over path on Flush. The final name therefore only ever holds a complete
// trace: a crashed run leaves its partial prefix under the temporary name
// (still valid NDJSON, line by line) and whatever complete trace a previous
// run left in place.
type NDJSONFileSink struct {
	mu     sync.Mutex
	path   string
	tmp    string
	f      *os.File
	enc    *json.Encoder
	err    error
	closed bool
}

// NewNDJSONFileSink opens the sink's temporary file at the conventional
// path + atomicio.TempSuffix. The caller must Flush (directly or via
// Trace.Finish) to publish the trace under path.
func NewNDJSONFileSink(path string) (*NDJSONFileSink, error) {
	return NewNDJSONFileSinkAt(path, path+atomicio.TempSuffix)
}

// NewNDJSONFileSinkAt opens the sink's temporary file at an explicit tmp
// path (which must live on the same filesystem as path, normally the same
// directory). Callers whose destination may be written by several processes
// at once — e.g. a run re-attempted by a peer daemon while its stale owner
// is still streaming — pass a writer-unique tmp so concurrent sinks never
// truncate each other's in-progress file; the atomic rename on Flush still
// decides the single published trace.
func NewNDJSONFileSinkAt(path, tmp string) (*NDJSONFileSink, error) {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &NDJSONFileSink{path: path, tmp: tmp, f: f, enc: json.NewEncoder(f)}, nil
}

// Emit implements Sink; the first write error sticks and is reported by
// Flush. Events arriving after Flush are dropped.
func (s *NDJSONFileSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Flush implements Sink: it syncs and closes the temporary file, renames it
// over the destination, and syncs the directory. Flush is idempotent; calls
// after the first return the outcome of the publish.
func (s *NDJSONFileSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	tmp := s.tmp
	if s.err != nil {
		s.f.Close()
		os.Remove(tmp)
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		os.Remove(tmp)
		s.err = err
		return err
	}
	if err := s.f.Close(); err != nil {
		os.Remove(tmp)
		s.err = err
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		s.err = err
		return err
	}
	s.err = atomicio.SyncDir(filepath.Dir(s.path))
	return s.err
}

// Path returns the destination path the sink publishes to.
func (s *NDJSONFileSink) Path() string { return s.path }
