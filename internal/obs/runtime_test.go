package obs

import (
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/testenv"
)

func TestRuntimeSamplerGauges(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	tr := New("run")
	var calls int
	rs := StartRuntimeSampler(tr, time.Millisecond, map[string]func() int64{
		"workers.in_flight": func() int64 { calls++; return int64(calls) },
	})
	// The first sample is synchronous, so gauges exist before any tick.
	m := tr.Metrics()
	if m["runtime.goroutines"] <= 0 {
		t.Fatalf("runtime.goroutines = %d after synchronous sample", m["runtime.goroutines"])
	}
	if m["runtime.heap_alloc_bytes"] <= 0 {
		t.Fatalf("runtime.heap_alloc_bytes = %d", m["runtime.heap_alloc_bytes"])
	}
	if m["workers.in_flight"] != 1 {
		t.Fatalf("extra gauge = %d, want 1 (first synchronous sample)", m["workers.in_flight"])
	}
	// Wait for at least one ticked sample.
	deadline := time.Now().Add(5 * time.Second)
	for tr.Metrics()["workers.in_flight"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	rs.Stop()
	rs.Stop() // idempotent
	final := tr.Metrics()["workers.in_flight"]
	time.Sleep(5 * time.Millisecond)
	if got := tr.Metrics()["workers.in_flight"]; got != final {
		t.Fatalf("sampler still running after Stop: %d -> %d", final, got)
	}
	tr.Finish()
}

func TestRuntimeSamplerNilTrace(t *testing.T) {
	rs := StartRuntimeSampler(nil, time.Millisecond, nil)
	if rs != nil {
		t.Fatal("nil trace must return a nil sampler")
	}
	rs.Stop() // nil-safe
}
