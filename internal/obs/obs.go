// Package obs is the pipeline observability layer: hierarchical spans with
// monotonic durations, typed counters and gauges, and pluggable sinks
// (no-op, in-memory collector, NDJSON writer). The ARDA pipeline threads a
// *Trace through every stage — prefilter, coreset, per-batch join execution,
// imputation, feature selection, materialization, final evaluation — so a
// run can be broken down the way the paper's §6 evaluation reports costs.
//
// Two contracts shape the design:
//
//  1. Zero cost when off: every method is nil-receiver safe, so a nil *Trace
//     (the default) makes instrumentation a no-op without branching at call
//     sites and without allocating — guarded by AllocsPerRun tests.
//  2. Determinism: tracing never draws randomness and never feeds back into
//     the pipeline, so results are bit-identical with tracing on or off; and
//     spans carry caller-assigned ordinals with children normalized in
//     (ordinal, name) order at snapshot time, so the span tree's structure is
//     identical for any worker count even though spans from parallel work
//     items end in scheduling order.
package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one run's observability root: a span tree plus a counter/gauge
// registry, streaming events to the configured sinks. Create one per
// pipeline run with New and finish it exactly once with Finish. A nil
// *Trace disables all instrumentation at zero cost.
type Trace struct {
	root  *Span
	start time.Time
	sinks []Sink

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	done     bool
}

// New starts a trace whose root span is named name. Events stream to the
// given sinks as spans end; no sinks means the trace only accumulates the
// in-memory tree returned by Finish.
func New(name string, sinks ...Sink) *Trace {
	t := &Trace{
		start:    time.Now(),
		sinks:    sinks,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	t.root = &Span{trace: t, name: name, start: t.start}
	return t
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Counter returns the named cumulative counter, registering it on first use.
// A nil trace returns a nil counter, whose methods are no-ops.
func (t *Trace) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.counters[name]
	if c == nil {
		c = &Counter{name: name}
		t.counters[name] = c
	}
	return c
}

// Gauge returns the named last-value gauge, registering it on first use. A
// nil trace returns a nil gauge, whose methods are no-ops.
func (t *Trace) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g := t.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		t.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency/size distribution, registering it on
// first use. A nil trace returns a nil histogram, whose methods are no-ops.
// Every ended span also observes its duration into the histogram named
// after the span, so per-stage and per-item distributions exist without
// explicit calls; Histogram is for distributions below span granularity
// (per-tree fit times, per-subset score latencies).
func (t *Trace) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		t.hists[name] = h
	}
	return h
}

// Histograms returns a snapshot of every registered histogram by name.
func (t *Trace) Histograms() map[string]HistogramStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	hists := make([]*Histogram, 0, len(t.hists))
	for _, h := range t.hists {
		hists = append(hists, h)
	}
	t.mu.Unlock()
	out := make(map[string]HistogramStat, len(hists))
	for _, h := range hists {
		out[h.name] = h.Snapshot()
	}
	return out
}

// Snapshot freezes the trace's current state — span tree (open spans report
// elapsed-so-far), metrics, and histograms — without ending anything. This
// is the live view behind /statusz; Finish returns the terminal snapshot.
// A nil trace returns nil.
func (t *Trace) Snapshot() *RunStats {
	if t == nil {
		return nil
	}
	return t.snapshot()
}

// Finish ends the root span (and any still-open descendants), emits the
// counter/gauge values and a final "run" event to the sinks, flushes them,
// and returns the run snapshot. Finish is idempotent; calls after the first
// return a fresh snapshot of the same finished tree. A nil trace returns
// nil.
func (t *Trace) Finish() *RunStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	first := !t.done
	t.done = true
	t.mu.Unlock()
	if first {
		t.root.endAt(time.Now())
		for _, ev := range t.metricEvents() {
			t.emit(ev)
		}
		t.emit(Event{
			Type:    EventRun,
			Name:    t.root.name,
			DurUS:   t.root.Duration().Microseconds(),
			StartUS: 0,
		})
		for _, s := range t.sinks {
			s.Flush()
		}
	}
	return t.snapshot()
}

// metricEvents renders every counter and gauge as an event, in sorted name
// order so sink output is stable.
func (t *Trace) metricEvents() []Event {
	vals := t.Metrics()
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	evs := make([]Event, 0, len(names))
	for _, name := range names {
		evs = append(evs, Event{Type: EventCounter, Name: name, Value: vals[name]})
	}
	hists := t.Histograms()
	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		st := hists[name]
		evs = append(evs, Event{
			Type:  EventHist,
			Name:  name,
			Value: st.Count,
			Attrs: map[string]int64{
				"sum_ns": st.Sum,
				"p50_ns": st.Quantile(0.50),
				"p95_ns": st.Quantile(0.95),
				"p99_ns": st.Quantile(0.99),
			},
		})
	}
	return evs
}

// Metrics returns the current counter and gauge values by name.
func (t *Trace) Metrics() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters)+len(t.gauges))
	for name, c := range t.counters {
		out[name] = c.Value()
	}
	for name, g := range t.gauges {
		out[name] = g.Value()
	}
	return out
}

// emit streams one event to every sink.
func (t *Trace) emit(ev Event) {
	for _, s := range t.sinks {
		s.Emit(ev)
	}
}

// Span is one timed region of the pipeline. Spans nest: Child starts a
// sub-span, End stops the clock and emits a span event. Creating children
// from concurrent goroutines is safe; the caller-assigned ordinal (the work
// item's deterministic index — batch number, candidate ordinal, repetition)
// fixes the tree structure independent of scheduling. All methods are
// nil-receiver safe no-ops.
type Span struct {
	trace  *Trace
	parent *Span
	name   string
	ord    int
	start  time.Time

	mu       sync.Mutex
	label    string
	dur      time.Duration
	ended    bool
	children []*Span
	attrs    map[string]int64
}

// Child starts a sub-span. ord is the caller's deterministic ordinal among
// same-named siblings (batch index, candidate ordinal, repetition number);
// snapshots order siblings by (ord, name), so the tree structure never
// depends on goroutine scheduling.
// Trace returns the trace this span records into (nil for a nil span). It
// lets code that was handed only a span — e.g. a selector via SpanAttacher —
// bump trace-level counters without threading the Trace separately; the
// whole chain span.Trace().Counter(...).Add(...) is nil-safe.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

func (s *Span) Child(name string, ord int) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, parent: s, name: name, ord: ord, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock (monotonic duration) and emits a span event to
// the trace's sinks. End is idempotent; only the first call sets the
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endAt(time.Now())
}

// endAt ends the span — and any still-open children, so a Finish on a
// partially-instrumented run never reports zero durations — then emits it.
func (s *Span) endAt(now time.Time) {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = now.Sub(s.start)
	children := s.children
	s.mu.Unlock()
	for _, c := range children {
		c.endAt(now)
	}
	if s.trace != nil {
		// Every ended span feeds the histogram named after it, so stage and
		// per-item latency distributions (join.cand, select.rep, …) fall out
		// of the existing span structure. The observation *count* per name is
		// scheduling-independent even though the durations are not.
		s.trace.Histogram(s.name).Observe(int64(s.dur))
		s.trace.emit(s.event())
	}
}

// event renders the span as a sink event.
func (s *Span) event() Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var attrs map[string]int64
	if len(s.attrs) > 0 {
		attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
	}
	return Event{
		Type:    EventSpan,
		Name:    s.name,
		Path:    s.path(),
		Ord:     s.ord,
		Label:   s.label,
		StartUS: s.start.Sub(s.trace.start).Microseconds(),
		DurUS:   s.dur.Microseconds(),
		Attrs:   attrs,
	}
}

// path renders the slash-separated location of the span from the root;
// ordinals > 0 are rendered as name[ord] so sibling paths stay distinct.
func (s *Span) path() string {
	var segs []string
	for sp := s; sp != nil; sp = sp.parent {
		seg := sp.name
		if sp.ord > 0 {
			seg = seg + "[" + strconv.Itoa(sp.ord) + "]"
		}
		segs = append(segs, seg)
	}
	var b []byte
	for i := len(segs) - 1; i >= 0; i-- {
		if len(b) > 0 {
			b = append(b, '/')
		}
		b = append(b, segs[i]...)
	}
	return string(b)
}

// SetLabel attaches a human-readable label (e.g. the joined table's name).
func (s *Span) SetLabel(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = label
	s.mu.Unlock()
}

// SetInt attaches one integer attribute (rows matched, features injected…)
// to the span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// Duration returns the span's monotonic duration (elapsed-so-far while the
// span is still open; 0 for a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// SpanAttacher is implemented by pipeline components that emit child spans
// under the stage span that invokes them — e.g. the RIFS selector's
// per-repetition spans. The pipeline attaches the current stage span before
// calling the component and detaches (attaches nil) afterwards; components
// must treat a nil span as tracing-off.
type SpanAttacher interface {
	AttachSpan(*Span)
}

// Counter is a cumulative metric. Add is atomic, allocation-free, and safe
// from any goroutine; totals are order-independent sums, so counter values
// are deterministic for any worker count.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter; a nil counter is a no-op.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current total (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric (candidates after dedupe, coreset rows…).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the gauge value; a nil gauge is a no-op.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
