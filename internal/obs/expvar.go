package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// published holds the trace currently exported via expvar.
var published atomic.Pointer[Trace]

// publishOnce guards the one-time expvar registration (expvar.Publish panics
// on duplicate names).
var publishOnce sync.Once

// PublishExpvar exports the trace's counters and gauges as the expvar map
// variable "arda.counters" (served on /debug/vars by any net/http server
// using the default mux, e.g. the -pprof endpoint of cmd/arda). Calling it
// again swaps which trace is exported; a nil trace unpublishes the values
// while keeping the variable registered.
func PublishExpvar(t *Trace) {
	published.Store(t)
	publishOnce.Do(func() {
		expvar.Publish("arda.counters", expvar.Func(func() any {
			return published.Load().Metrics()
		}))
	})
}
