package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of every Histogram: bucket i holds
// the values whose bit length is i, i.e. [2^(i-1), 2^i). 64 buckets cover
// the full non-negative int64 range, so nanosecond latencies from single
// digits to centuries land without configuration.
const histBuckets = 64

// Histogram is a lock-free latency/size distribution with power-of-two
// bucket bounds. Observe is atomic and allocation-free, safe from any
// goroutine; bucket totals are order-independent sums, so two runs that
// observe the same multiset of values produce bit-identical histograms
// regardless of worker count or scheduling (the determinism contract the
// 1-vs-8-worker suite leans on). All methods are nil-receiver safe no-ops,
// matching Counter and Gauge.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 for v <= 0 (and for v == 1,
// whose bit length is 1 — bucket 1's range [1,2) holds it), otherwise the
// value's bit length.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..63 for positive int64
}

// BucketUpper returns bucket i's exclusive upper bound: 2^i, with bucket 0
// meaning "zero or negative" (upper bound 1 would be wrong — it reports 0).
// The last bucket's bound saturates at MaxInt64.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1 << uint(i)
}

// Observe folds one value into the distribution; a nil histogram is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveSince observes the elapsed nanoseconds from start to now — the
// one-liner for timing a region: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot freezes the distribution into a plain value. Concurrent Observe
// calls may land between field loads, so a snapshot taken mid-run is only
// approximately consistent; snapshots after the last Observe are exact.
func (h *Histogram) Snapshot() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	st := HistogramStat{Count: h.count.Load(), Sum: h.sum.Load()}
	top := -1
	var raw [histBuckets]int64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			top = i
		}
	}
	if top >= 0 {
		st.Buckets = append([]int64(nil), raw[:top+1]...)
	}
	return st
}

// HistogramStat is the immutable snapshot of a Histogram: observation count,
// value sum, and per-bucket counts trimmed after the highest non-empty
// bucket (bucket i spans [2^(i-1), 2^i); bucket 0 holds <= 0). It is a
// plain value — safe to retain, serialize, merge, and query after the run.
type HistogramStat struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Buckets holds per-bucket observation counts, trimmed after the last
	// non-empty bucket.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Merge folds another snapshot into this one (per-bucket addition) — the
// reduction for aggregating histograms across runs or shards.
func (s *HistogramStat) Merge(o HistogramStat) {
	s.Count += o.Count
	s.Sum += o.Sum
	if len(o.Buckets) > len(s.Buckets) {
		grown := make([]int64, len(o.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
}

// Mean returns the average observed value (0 when empty).
func (s HistogramStat) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket — the standard Prometheus-style estimate,
// with error bounded by the power-of-two bucket width (< 2x). Returns 0 for
// an empty snapshot.
func (s HistogramStat) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(BucketUpper(i))
			if i == 0 {
				hi = 0
			}
			return int64(lo + (hi-lo)*(target-cum)/float64(c))
		}
		cum = next
	}
	return BucketUpper(len(s.Buckets) - 1)
}
