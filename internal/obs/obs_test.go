package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	col := &Collector{}
	tr := New("run", col)
	a := tr.Root().Child("a", 0)
	a1 := a.Child("a1", 0)
	a1.SetInt("rows", 7)
	a1.End()
	a.End()
	b := tr.Root().Child("b", 1)
	b.SetLabel("tbl")
	b.End()
	tr.Counter("hits").Add(3)
	tr.Counter("hits").Add(2)
	tr.Gauge("size").Set(11)
	stats := tr.Finish()

	if stats.Name != "run" || stats.Root == nil {
		t.Fatalf("bad stats root: %+v", stats)
	}
	if len(stats.Root.Children) != 2 {
		t.Fatalf("want 2 children, got %d", len(stats.Root.Children))
	}
	if stats.Root.Children[0].Name != "a" || stats.Root.Children[1].Name != "b" {
		t.Fatalf("children out of order: %v", stats.Root.Children)
	}
	if stats.Root.Children[1].Label != "tbl" {
		t.Fatalf("label lost: %+v", stats.Root.Children[1])
	}
	if got := stats.Root.Children[0].Children[0].Attrs["rows"]; got != 7 {
		t.Fatalf("attr rows = %d, want 7", got)
	}
	if stats.Counters["hits"] != 5 || stats.Counters["size"] != 11 {
		t.Fatalf("counters = %v", stats.Counters)
	}
	// Each span's duration must cover its children (serial here).
	if stats.Root.Dur < stats.Root.Children[0].Dur {
		t.Fatalf("root %v shorter than child %v", stats.Root.Dur, stats.Root.Children[0].Dur)
	}
	// The collector saw every span, the counters, and one terminal run event.
	evs := col.Events()
	var spans, counters, runs int
	for _, ev := range evs {
		switch ev.Type {
		case EventSpan:
			spans++
		case EventCounter:
			counters++
		case EventRun:
			runs++
		}
	}
	if spans != 4 || counters != 2 || runs != 1 {
		t.Fatalf("event mix spans=%d counters=%d runs=%d, want 4/2/1", spans, counters, runs)
	}
	if evs[len(evs)-1].Type != EventRun {
		t.Fatalf("run event not last: %v", evs[len(evs)-1])
	}
}

// TestConcurrentChildrenDeterministicOrder creates children from many
// goroutines and asserts the snapshot orders them by ordinal, not by
// completion order.
func TestConcurrentChildrenDeterministicOrder(t *testing.T) {
	tr := New("run")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(ord int) {
			defer wg.Done()
			s := root.Child("item", ord)
			s.SetInt("ord", int64(ord))
			s.End()
		}(i)
	}
	wg.Wait()
	stats := tr.Finish()
	if len(stats.Root.Children) != 64 {
		t.Fatalf("want 64 children, got %d", len(stats.Root.Children))
	}
	for i, c := range stats.Root.Children {
		if c.Ord != i || c.Attrs["ord"] != int64(i) {
			t.Fatalf("child %d has ord %d", i, c.Ord)
		}
	}
}

func TestFinishEndsOpenSpans(t *testing.T) {
	tr := New("run")
	open := tr.Root().Child("open", 0)
	_ = open
	stats := tr.Finish()
	if len(stats.Root.Children) != 1 || stats.Root.Children[0].Dur < 0 {
		t.Fatalf("open span not closed in snapshot: %+v", stats.Root.Children)
	}
	// Idempotent: a second Finish returns the same structure.
	again := tr.Finish()
	if len(again.Root.Children) != 1 {
		t.Fatalf("second Finish lost spans")
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Root().Child("x", 0)
	sp.SetInt("k", 1)
	sp.SetLabel("l")
	sp.End()
	tr.Counter("c").Add(1)
	tr.Gauge("g").Set(1)
	if tr.Root() != nil || tr.Finish() != nil || tr.Metrics() != nil {
		t.Fatal("nil trace must produce nothing")
	}
	if sp.Duration() != 0 || tr.Counter("c").Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

func TestNDJSONSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := New("run", NewNDJSONSink(&buf))
	s := tr.Root().Child("join", 2)
	s.SetInt("rows_matched", 5)
	s.End()
	tr.Counter("join.rows_matched").Add(5)
	tr.Finish()

	// Six lines: the child span, the root span, the counter, the two
	// span-duration histograms, the run event.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 NDJSON lines, got %d:\n%s", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Type != EventSpan || ev.Name != "join" || ev.Ord != 2 ||
		ev.Path != "run/join[2]" || ev.Attrs["rows_matched"] != 5 {
		t.Fatalf("span event wrong: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil || ev.Type != EventRun {
		t.Fatalf("last line not a run event: %v %+v", err, ev)
	}
}

func TestRenderAndStageTotals(t *testing.T) {
	tr := New("augment")
	j := tr.Root().Child("join", 0)
	time.Sleep(time.Millisecond)
	j.End()
	j2 := tr.Root().Child("join", 1)
	j2.End()
	stats := tr.Finish()

	totals := stats.StageTotals()
	if totals["join"] <= 0 || totals["join"] > totals["augment"]*2 {
		t.Fatalf("join total %v implausible (root %v)", totals["join"], totals["augment"])
	}
	if stats.SpanCounts()["join"] != 2 {
		t.Fatalf("span counts: %v", stats.SpanCounts())
	}
	out := stats.Render()
	if !strings.Contains(out, "augment") || !strings.Contains(out, "join[1]") {
		t.Fatalf("render missing spans:\n%s", out)
	}
}

func TestPublishExpvar(t *testing.T) {
	tr := New("run")
	tr.Counter("x").Add(9)
	PublishExpvar(tr)
	PublishExpvar(tr) // idempotent
	tr.Finish()
}
