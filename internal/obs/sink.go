package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event types.
const (
	// EventSpan records one ended span.
	EventSpan = "span"
	// EventCounter records one final counter or gauge value.
	EventCounter = "counter"
	// EventHist records one final histogram: Value is the observation
	// count, Attrs carries sum_ns and the p50/p95/p99 estimates.
	EventHist = "hist"
	// EventRun is the terminal event: the whole run's duration. Exactly one
	// per finished trace, always last.
	EventRun = "run"
)

// Event is one observability record — the unit sinks consume and the NDJSON
// line schema (validated by cmd/tracecheck):
//
//	{"type":"span","name":"join","path":"augment/batch[2]/join","ord":0,
//	 "start_us":1042,"dur_us":3187,"attrs":{"rows_matched":192}}
//	{"type":"counter","name":"join.rows_matched","value":1920}
//	{"type":"run","name":"augment","dur_us":812345}
type Event struct {
	Type    string           `json:"type"`
	Name    string           `json:"name"`
	Path    string           `json:"path,omitempty"`
	Ord     int              `json:"ord,omitempty"`
	Label   string           `json:"label,omitempty"`
	StartUS int64            `json:"start_us,omitempty"`
	DurUS   int64            `json:"dur_us"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
	Value   int64            `json:"value,omitempty"`
}

// Sink consumes a trace's event stream. Emit may be called from any
// goroutine (spans end where their work runs); Flush is called once, from
// Finish, after the last Emit.
type Sink interface {
	Emit(Event)
	Flush() error
}

// NopSink discards every event — the explicit do-nothing sink for callers
// that want the in-memory span tree (Trace.Finish) without any streaming.
type NopSink struct{}

// Emit implements Sink.
func (NopSink) Emit(Event) {}

// Flush implements Sink.
func (NopSink) Flush() error { return nil }

// Collector buffers every event in memory, for tests and for callers that
// post-process a run's events (e.g. the stage-timing bench report).
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Flush implements Sink.
func (c *Collector) Flush() error { return nil }

// Events returns a copy of everything emitted so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// NDJSONSink streams events as newline-delimited JSON, one Event per line.
// Lines are written as spans end, so a crashed run still leaves a usable
// prefix; line order within a parallel stage follows completion order (the
// span tree structure is recoverable from the path fields regardless).
type NDJSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
	err error
}

// NewNDJSONSink returns a sink writing NDJSON to w. The caller owns w and
// closes it after Trace.Finish.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{enc: json.NewEncoder(w), w: w}
}

// Emit implements Sink; the first write error sticks and is reported by
// Flush.
func (s *NDJSONSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Flush implements Sink: it reports the first write error, and syncs when
// the writer supports it.
func (s *NDJSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if f, ok := s.w.(interface{ Sync() error }); ok {
		return f.Sync()
	}
	return nil
}
