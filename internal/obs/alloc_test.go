package obs

import (
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

// TestNilTraceAllocs guards the zero-cost-when-off contract: with tracing
// disabled (nil *Trace — the pipeline default), every instrumentation call
// that can sit on or near a hot path must be allocation-free, so the
// data-plane AllocsPerRun budgets of the join inner loop and subset scoring
// are unchanged by the observability layer.
func TestNilTraceAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	var tr *Trace
	var c *Counter
	var g *Gauge
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Root().Child("join", 3)
		s.SetInt("rows", 1)
		s.SetLabel("t")
		s.End()
		c.Add(1)
		g.Set(1)
		_ = c.Value()
		_ = sp.Duration()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace instrumentation allocates %.1f per run, want 0", allocs)
	}
}

// TestCounterAddAllocs: live counters are atomic adds — no allocation after
// registration, so bulk counter bumps are safe anywhere.
func TestCounterAddAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	tr := New("run")
	c := tr.Counter("x")
	allocs := testing.AllocsPerRun(1000, func() { c.Add(1) })
	if allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f per run, want 0", allocs)
	}
	tr.Finish()
}
