package obs

import (
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

// TestNilTraceAllocs guards the zero-cost-when-off contract: with tracing
// disabled (nil *Trace — the pipeline default), every instrumentation call
// that can sit on or near a hot path must be allocation-free, so the
// data-plane AllocsPerRun budgets of the join inner loop and subset scoring
// are unchanged by the observability layer.
func TestNilTraceAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	var tr *Trace
	var c *Counter
	var g *Gauge
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Root().Child("join", 3)
		s.SetInt("rows", 1)
		s.SetLabel("t")
		s.End()
		c.Add(1)
		g.Set(1)
		_ = c.Value()
		_ = sp.Duration()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace instrumentation allocates %.1f per run, want 0", allocs)
	}
}

// TestCounterAddAllocs: live counters are atomic adds — no allocation after
// registration, so bulk counter bumps are safe anywhere.
func TestCounterAddAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	tr := New("run")
	c := tr.Counter("x")
	allocs := testing.AllocsPerRun(1000, func() { c.Add(1) })
	if allocs != 0 {
		t.Fatalf("Counter.Add allocates %.1f per run, want 0", allocs)
	}
	tr.Finish()
}

// TestHistogramObserveAllocs: Observe is three atomic adds — zero
// allocations both live and on the nil (tracing-off) handle, so per-tree
// and per-score observations are safe inside the selection hot loop.
func TestHistogramObserveAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	var off *Histogram
	if allocs := testing.AllocsPerRun(1000, func() { off.Observe(7) }); allocs != 0 {
		t.Fatalf("nil Histogram.Observe allocates %.1f per run, want 0", allocs)
	}
	tr := New("run")
	h := tr.Histogram("x")
	var v int64
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(v); v++ }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f per run, want 0", allocs)
	}
	tr.Finish()
}

// TestStreamEmitAllocs: once the replay buffer is full, Emit is pure
// bookkeeping — a saturated subscriber costs an atomic add, not an
// allocation — so a slow /events reader cannot add GC pressure to a run.
func TestStreamEmitAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	s := NewStreamSink(1)
	sub := s.Subscribe(1)
	ev := Event{Type: EventSpan, Name: "x"}
	s.Emit(ev) // fills the history buffer
	s.Emit(ev) // fills the subscriber channel (capacity 1+1, one replayed)
	if allocs := testing.AllocsPerRun(1000, func() { s.Emit(ev) }); allocs != 0 {
		t.Fatalf("saturated StreamSink.Emit allocates %.1f per run, want 0", allocs)
	}
	s.Flush()
	for range sub.Events() {
	}
}
