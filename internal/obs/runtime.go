package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSampler is a background goroutine that periodically folds Go
// runtime health (heap, GC, goroutine count) and caller-supplied gauges
// (e.g. worker-pool utilization) into a trace's gauge registry, so a live
// scrape of the trace sees fresh values without the pipeline carrying any
// sampling code.
//
// The sampler is strictly additive observability: it only Sets gauges, whose
// names are namespaced under "runtime." and the caller's extra names, so it
// never perturbs pipeline counters or results. Because gauge values are
// wall-clock dependent, deterministic paths (the 1-vs-8-worker suite) must
// simply not start a sampler — it is opt-in, wired only by live-serving
// surfaces like `arda -metrics-addr`.
type RuntimeSampler struct {
	tr       *Trace
	interval time.Duration
	extra    map[string]func() int64
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// StartRuntimeSampler begins sampling into tr every interval (<= 0 means
// 500ms). extra maps gauge names to sampling callbacks invoked on the same
// cadence. One sample is taken synchronously before returning, so the
// gauges exist immediately. Returns nil (a no-op handle) for a nil trace.
func StartRuntimeSampler(tr *Trace, interval time.Duration, extra map[string]func() int64) *RuntimeSampler {
	if tr == nil {
		return nil
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	rs := &RuntimeSampler{
		tr:       tr,
		interval: interval,
		extra:    extra,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	rs.sample()
	go rs.loop()
	return rs
}

func (rs *RuntimeSampler) loop() {
	defer close(rs.done)
	tick := time.NewTicker(rs.interval)
	defer tick.Stop()
	for {
		select {
		case <-rs.stop:
			rs.sample() // final sample so end-of-run scrapes are fresh
			return
		case <-tick.C:
			rs.sample()
		}
	}
}

// sample reads the runtime and the extra callbacks once.
func (rs *RuntimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs.tr.Gauge("runtime.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	rs.tr.Gauge("runtime.heap_objects").Set(int64(ms.HeapObjects))
	rs.tr.Gauge("runtime.total_alloc_bytes").Set(int64(ms.TotalAlloc))
	rs.tr.Gauge("runtime.num_gc").Set(int64(ms.NumGC))
	rs.tr.Gauge("runtime.gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	rs.tr.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	for name, fn := range rs.extra {
		rs.tr.Gauge(name).Set(fn())
	}
}

// Stop halts the sampler after one final sample and waits for the goroutine
// to exit. Idempotent; a nil handle is a no-op.
func (rs *RuntimeSampler) Stop() {
	if rs == nil {
		return
	}
	rs.once.Do(func() {
		close(rs.stop)
		<-rs.done
	})
}
