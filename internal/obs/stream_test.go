package obs

import (
	"strconv"
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

func emitN(s *StreamSink, n int) {
	for i := 0; i < n; i++ {
		s.Emit(Event{Type: EventSpan, Name: "e" + strconv.Itoa(i), Ord: i})
	}
}

// drain reads the channel to closure and returns everything received.
func drain(sub *Subscription) []Event {
	var out []Event
	for ev := range sub.Events() {
		out = append(out, ev)
	}
	return out
}

func TestStreamFastSubscriberSeesEverything(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	s := NewStreamSink(0)
	sub := s.Subscribe(1024)
	emitN(s, 500)
	s.Flush()
	got := drain(sub)
	if len(got) != 500 {
		t.Fatalf("fast subscriber got %d events, want 500", len(got))
	}
	for i, ev := range got {
		if ev.Ord != i {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", sub.Dropped())
	}
	if s.Emitted() != 500 {
		t.Fatalf("emitted = %d, want 500", s.Emitted())
	}
}

// TestStreamSlowSubscriberDropsDeterministically: a subscriber that never
// reads keeps exactly its channel capacity and loses the rest, with the
// loss counted — delivered + dropped == emitted, exactly.
func TestStreamSlowSubscriberDropsDeterministically(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	s := NewStreamSink(0)
	sub := s.Subscribe(16) // capacity 16, no reader until after Flush
	emitN(s, 500)
	s.Flush()
	got := drain(sub)
	if len(got) != 16 {
		t.Fatalf("slow subscriber got %d events, want exactly its buffer of 16", len(got))
	}
	if sub.Dropped() != 500-16 {
		t.Fatalf("dropped = %d, want %d", sub.Dropped(), 500-16)
	}
	if int64(len(got))+sub.Dropped() != s.Emitted() {
		t.Fatalf("delivered(%d) + dropped(%d) != emitted(%d)",
			len(got), sub.Dropped(), s.Emitted())
	}
}

// TestStreamHistoryReplay: a subscriber attaching mid-run first receives
// every event recorded so far, then the live tail — so /events readers that
// connect after the run started still see the run from the beginning.
func TestStreamHistoryReplay(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	s := NewStreamSink(0)
	emitN(s, 100)
	late := s.Subscribe(64)
	emitN(s, 10)
	s.Flush()
	got := drain(late)
	if len(got) != 110 {
		t.Fatalf("late subscriber got %d events, want 110 (100 replayed + 10 live)", len(got))
	}
	if got[0].Name != "e0" || got[99].Name != "e99" || got[100].Name != "e0" {
		t.Fatalf("replay order wrong: %s %s %s", got[0].Name, got[99].Name, got[100].Name)
	}
	if sub := s.Subscribe(4); len(drain(sub)) != 110 {
		t.Fatal("post-flush subscriber must still receive the recorded history")
	}
}

// TestStreamHistoryOverflow: the replay buffer stops recording at capacity;
// live subscribers still get everything, and the overflow is counted.
func TestStreamHistoryOverflow(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	s := NewStreamSink(8)
	live := s.Subscribe(64)
	emitN(s, 20)
	s.Flush()
	if n := len(drain(live)); n != 20 {
		t.Fatalf("live subscriber got %d, want all 20", n)
	}
	if s.Overflowed() != 12 {
		t.Fatalf("overflowed = %d, want 12", s.Overflowed())
	}
	if n := len(drain(s.Subscribe(4))); n != 8 {
		t.Fatalf("late subscriber got %d, want the 8 recorded", n)
	}
}

func TestStreamSubscriptionClose(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	s := NewStreamSink(0)
	a := s.Subscribe(4)
	b := s.Subscribe(1024)
	emitN(s, 2)
	a.Close()
	a.Close() // idempotent
	emitN(s, 3)
	s.Flush()
	a.Close() // no-op after flush
	if n := len(drain(a)); n != 2 {
		t.Fatalf("closed subscription got %d, want only the 2 pre-close events", n)
	}
	if n := len(drain(b)); n != 5 {
		t.Fatalf("surviving subscription got %d, want 5", n)
	}
}

// TestStreamSinkOnTrace: wired into a real trace, subscribers see span
// events as spans end and the stream terminates at Finish with the run
// event last.
func TestStreamSinkOnTrace(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	s := NewStreamSink(0)
	sub := s.Subscribe(0)
	tr := New("run", s)
	tr.Root().Child("join", 1).End()
	tr.Counter("c").Add(2)
	tr.Finish()
	got := drain(sub)
	if len(got) == 0 || got[len(got)-1].Type != EventRun {
		t.Fatalf("stream must end with the run event, got %+v", got)
	}
	var sawSpan, sawHist, sawCounter bool
	for _, ev := range got {
		switch ev.Type {
		case EventSpan:
			sawSpan = true
		case EventHist:
			sawHist = true
		case EventCounter:
			sawCounter = true
		}
	}
	if !sawSpan || !sawHist || !sawCounter {
		t.Fatalf("stream missing event kinds: span=%v hist=%v counter=%v",
			sawSpan, sawHist, sawCounter)
	}
}
