package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/testenv"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"join.rows_matched": "arda_join_rows_matched",
		"select.rep":        "arda_select_rep",
		"workers.in_flight": "arda_workers_in_flight",
		"weird-name 1":      "arda_weird_name_1",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	var h obs.Histogram
	h.Observe(100) // bucket 7, upper bound 128ns = 1.28e-07s
	h.Observe(100)
	h.Observe(1 << 30) // bucket 31, upper 2^31ns ≈ 2.147s
	var b strings.Builder
	if err := WritePrometheus(&b, map[string]int64{"x.y": 3}, map[string]obs.HistogramStat{"join": h.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE arda_x_y untyped\narda_x_y 3\n",
		"# TYPE arda_join_seconds histogram\n",
		`arda_join_seconds_bucket{le="1.28e-07"} 2`,
		`arda_join_seconds_bucket{le="2.147483648"} 3`,
		`arda_join_seconds_bucket{le="+Inf"} 3`,
		"arda_join_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestServerEndToEnd runs a trace behind a live server: /metrics scrapes
// mid-run (gauges + histograms present), /statusz renders the live tree,
// and /events streams history + live events, terminating at Finish.
func TestServerEndToEnd(t *testing.T) {
	defer testenv.NoGoroutineLeak(t)()
	stream := obs.NewStreamSink(0)
	tr := obs.New("augment", stream)
	srv, err := NewServer("127.0.0.1:0", tr, stream)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// Some spans before the scrape, one left open.
	tr.Root().Child("prefilter", 0).End()
	join := tr.Root().Child("join", 0)
	join.Child("join.cand", 1).End()

	// Connect the event stream mid-run: history must replay.
	evResp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := evResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}

	body := get(t, base+"/metrics")
	for _, want := range []string{
		"arda_runtime_goroutines",
		"arda_workers_in_flight",
		"arda_workers_max",
		"arda_prefilter_seconds_bucket",
		"arda_prefilter_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	statusz := get(t, base+"/statusz")
	if !strings.Contains(statusz, "run: augment") || !strings.Contains(statusz, "prefilter") {
		t.Errorf("/statusz missing live tree:\n%s", statusz)
	}

	// Finish the run; the event stream must drain and close.
	join.End()
	tr.Counter("join.rows_matched").Add(42)
	tr.Finish()

	sc := bufio.NewScanner(evResp.Body)
	var events []obs.Event
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	evResp.Body.Close()
	if len(events) == 0 || events[len(events)-1].Type != obs.EventRun {
		t.Fatalf("event stream must end with the run event; got %d events", len(events))
	}
	if events[0].Name != "prefilter" {
		t.Fatalf("history replay missing: first event %+v", events[0])
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed server must refuse connections.
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(b)
}
