package metrics

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// DefaultShutdownTimeout is how long Handle.Shutdown waits for in-flight
// requests before force-closing the listener, when the caller passes 0.
const DefaultShutdownTimeout = 5 * time.Second

// Handle is the shared listener lifecycle for the repo's HTTP planes: it
// owns one bound listener plus its http.Server, serves in a background
// goroutine, and shuts down gracefully — http.Server.Shutdown under a
// deadline (letting in-flight requests, including long-lived /events
// streams, drain) with a hard Close fallback when the deadline passes. Both
// the per-run telemetry server (metrics.Server) and the ardad daemon serve
// through it, so "stop accepting, drain, then close" behaves identically
// everywhere.
type Handle struct {
	ln  net.Listener
	srv *http.Server
}

// Listen binds addr and starts serving handler in a background goroutine.
// The returned handle is already serving; stop it with Shutdown.
func Listen(addr string, handler http.Handler) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listening on %s: %w", addr, err)
	}
	h := &Handle{ln: ln, srv: &http.Server{Handler: handler}}
	go h.srv.Serve(ln)
	return h, nil
}

// Addr returns the bound listen address (useful with ":0"). Safe on nil.
func (h *Handle) Addr() string {
	if h == nil {
		return ""
	}
	return h.ln.Addr().String()
}

// Shutdown stops accepting new connections and waits up to timeout (0 means
// DefaultShutdownTimeout) for in-flight requests to finish; connections
// still open at the deadline are force-closed. Safe on nil and idempotent.
func (h *Handle) Shutdown(timeout time.Duration) error {
	if h == nil {
		return nil
	}
	if timeout <= 0 {
		timeout = DefaultShutdownTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil {
		return h.srv.Close()
	}
	return nil
}
