// Package metrics is the live telemetry surface of a run: a hand-rolled
// (stdlib-only) Prometheus text exposition of a trace's counters, gauges,
// and histograms, and an HTTP server wiring it — plus a live stage-tree view
// and an NDJSON event stream — behind `arda -metrics-addr`. It is strictly
// read-only over internal/obs: scraping never perturbs the pipeline.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/arda-ml/arda/internal/obs"
)

// namePrefix namespaces every exposed metric, per Prometheus convention.
const namePrefix = "arda_"

// sanitizeMetricName maps an obs metric name (dotted, e.g.
// "join.rows_matched") onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]* and prepends the arda_ prefix.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(namePrefix) + len(name))
	b.WriteString(namePrefix)
	// The prefix guarantees the name starts with a letter, so digits are
	// legal everywhere in the remainder.
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the metric map and histogram snapshots in the
// Prometheus text exposition format (version 0.0.4). Scalar metrics are
// exposed as untyped samples; histograms (observed in nanoseconds) are
// exposed as cumulative-bucket histograms in seconds under a _seconds
// suffix, per Prometheus base-unit convention. Output is sorted by name so
// consecutive scrapes diff cleanly.
func WritePrometheus(w io.Writer, metrics map[string]int64, hists map[string]obs.HistogramStat) error {
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s untyped\n%s %d\n", pn, pn, metrics[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		if err := writeHistogram(w, sanitizeMetricName(name)+"_seconds", hists[name]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one nanosecond histogram as a Prometheus
// seconds-based histogram family: cumulative _bucket{le=...} samples over
// the non-empty power-of-two bounds, a +Inf bucket, _sum, and _count.
func writeHistogram(w io.Writer, pn string, h obs.HistogramStat) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		// Empty leading/inner buckets still matter for cumulative counts but
		// emitting all 64 bounds per histogram would bloat the scrape; skip
		// bounds that add nothing new.
		if c == 0 {
			continue
		}
		le := strconv.FormatFloat(float64(obs.BucketUpper(i))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		pn, h.Count,
		pn, strconv.FormatFloat(float64(h.Sum)/1e9, 'g', -1, 64),
		pn, h.Count)
	return err
}
