package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
)

// samplerInterval is the runtime-sampler cadence for served traces: fast
// enough that a scraper sees live heap/worker numbers, slow enough that
// ReadMemStats stays invisible in profiles.
const samplerInterval = 250 * time.Millisecond

// Server is the live telemetry endpoint for one run:
//
//	/metrics — Prometheus text exposition of counters, gauges, histograms
//	/statusz — the rendered live stage tree + attrition counters
//	/events  — the run's NDJSON event stream (replayed from the start,
//	           then live, closing when the run finishes)
//
// It owns a runtime sampler feeding heap/GC/goroutine gauges and worker-pool
// utilization into the trace, so scrapes always see fresh values. The
// sampler makes gauge values wall-clock dependent, which is why serving is
// opt-in (`-metrics-addr`) and never wired in deterministic test paths.
type Server struct {
	h       *Handle
	tr      *obs.Trace
	stream  *obs.StreamSink
	sampler *obs.RuntimeSampler
}

// NewServer listens on addr and starts serving tr's telemetry. stream must
// be one of tr's sinks (it feeds /events); a nil stream disables /events
// with 404s. The returned server is already running; stop it with Close.
func NewServer(addr string, tr *obs.Trace, stream *obs.StreamSink) (*Server, error) {
	s := &Server{tr: tr, stream: stream}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/events", s.handleEvents)
	h, err := Listen(addr, mux)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	s.h = h
	s.sampler = obs.StartRuntimeSampler(tr, samplerInterval, map[string]func() int64{
		"workers.in_flight": func() int64 { return int64(parallel.InFlight()) },
		"workers.max":       func() int64 { return int64(parallel.MaxWorkers()) },
	})
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.h.Addr() }

// Close stops the sampler and shuts the server down gracefully via the
// shared listener lifecycle, waiting up to DefaultShutdownTimeout for
// in-flight requests (an /events stream drains once the trace finished).
// Safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.sampler.Stop()
	return s.h.Shutdown(0)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.tr.Metrics(), s.tr.Histograms())
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap := s.tr.Snapshot()
	fmt.Fprintf(w, "run: %s\nelapsed: %s\n\n", snap.Name, snap.Elapsed.Round(time.Millisecond))
	fmt.Fprint(w, snap.Render())
}

// handleEvents streams the run's events as NDJSON: the recorded history
// first (so a scraper that connects mid-run sees the run from the start),
// then live events, terminating when the trace finishes or the client goes
// away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.stream == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers so clients know they are connected
	}
	sub := s.stream.Subscribe(4096)
	defer sub.Close()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
