package linalg

import (
	"math/rand"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/parallel"
)

// benchSpeedup times f on one worker and on every available core, reports
// the ratio as the "speedup_x" metric, and leaves f running at full width
// for the measured loop. On a multi-core machine the metric shows the win;
// on one core it honestly reports ~1.
func benchSpeedup(b *testing.B, f func()) {
	defer parallel.SetMaxWorkers(0)
	min := func() time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	parallel.SetMaxWorkers(1)
	seq := min()
	parallel.SetMaxWorkers(0)
	par := min()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	b.StopTimer()
	// ResetTimer deletes user metrics, so report after the measured loop.
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_x")
	}
	b.ReportMetric(float64(parallel.MaxWorkers()), "workers")
}

func randMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// BenchmarkMul measures the row-blocked parallel matrix product at 1 worker
// vs all cores (shapes like the RIFS covariance path: a few hundred square).
func BenchmarkMul(b *testing.B) {
	a := randMatrix(256, 256, 1)
	c := randMatrix(256, 256, 2)
	benchSpeedup(b, func() { Mul(a, c) })
}

// BenchmarkMulABt measures the transpose-free Gram kernel used by the
// moment-matched injector (Σ = C·Cᵀ).
func BenchmarkMulABt(b *testing.B) {
	c := randMatrix(384, 64, 3)
	benchSpeedup(b, func() { MulABt(c, c) })
}

// BenchmarkTranspose measures the row-scattered parallel transpose.
func BenchmarkTranspose(b *testing.B) {
	m := randMatrix(512, 512, 4)
	benchSpeedup(b, func() { m.T() })
}
