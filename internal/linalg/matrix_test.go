package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulBasics(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", at)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	y := a.MulVec([]float64{1, -1})
	if y[0] != -1 || y[1] != -1 {
		t.Fatalf("MulVec = %v", y)
	}
}

func spdMatrix(rng *rand.Rand, n int) *Matrix {
	// A = B·Bᵀ + n·I is SPD.
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += float64(n)
	}
	return a
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := spdMatrix(rng, 8)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A = L·Lᵀ.
	rec := Mul(l, l.T())
	for i := range a.Data {
		if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8 {
			t.Fatalf("LLᵀ differs at %d: %v vs %v", i, rec.Data[i], a.Data[i])
		}
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := a.MulVec(x)
	got := SolveCholesky(l, b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("solve[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotSPD")
	}
}

func TestCholeskyJitteredRecovers(t *testing.T) {
	// Singular PSD matrix: rank 1.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	l, err := CholeskyJittered(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.At(0, 0) <= 0 {
		t.Fatal("jittered factor should be valid")
	}
}

func TestSolveSPDMultiRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := spdMatrix(rng, 6)
	x := NewMatrix(6, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b := Mul(a, x)
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if math.Abs(got.Data[i]-x.Data[i]) > 1e-7 {
			t.Fatalf("SolveSPD[%d] = %v, want %v", i, got.Data[i], x.Data[i])
		}
	}
}

func TestRidgeSolveShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d := 100, 4
	x := NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	true4 := []float64{2, -1, 0.5, 0}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = Dot(x.Row(i), true4) + 0.01*rng.NormFloat64()
	}
	w, err := RidgeSolve(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for j := range true4 {
		if math.Abs(w[j]-true4[j]) > 0.05 {
			t.Fatalf("ridge w[%d] = %v, want %v", j, w[j], true4[j])
		}
	}
	// Heavy regularization shrinks toward zero.
	wBig, err := RidgeSolve(x, y, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(wBig) > 0.1*Norm2(w) {
		t.Fatalf("heavy ridge did not shrink: %v vs %v", Norm2(wBig), Norm2(w))
	}
}

func TestMVNSamplerMoments(t *testing.T) {
	mu := []float64{1, -2}
	sigma := FromRows([][]float64{{2, 0.8}, {0.8, 1}})
	s, err := NewMVNSampler(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	const n = 20000
	sum := []float64{0, 0}
	var c00, c01, c11 float64
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		sum[0] += v[0]
		sum[1] += v[1]
		d0, d1 := v[0]-mu[0], v[1]-mu[1]
		c00 += d0 * d0
		c01 += d0 * d1
		c11 += d1 * d1
	}
	m0, m1 := sum[0]/n, sum[1]/n
	if math.Abs(m0-1) > 0.05 || math.Abs(m1+2) > 0.05 {
		t.Fatalf("sample mean = %v, %v", m0, m1)
	}
	if math.Abs(c00/n-2) > 0.1 || math.Abs(c01/n-0.8) > 0.1 || math.Abs(c11/n-1) > 0.1 {
		t.Fatalf("sample cov = %v %v %v", c00/n, c01/n, c11/n)
	}
}

func TestMean(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	mu := Mean(m)
	if mu[0] != 2 || mu[1] != 3 {
		t.Fatalf("Mean = %v", mu)
	}
}

// Property: solving A·x = A·x0 recovers x0 for random SPD A.
func TestSolveRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		a := spdMatrix(rng, n)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		b := a.MulVec(x0)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := SolveCholesky(l, b)
		for i := range x0 {
			if math.Abs(x[i]-x0[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows = %dx%d", m.Rows, m.Cols)
	}
}

func TestVectorHelpers(t *testing.T) {
	v := []float64{3, 4}
	if got := Norm2(v); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	dst := []float64{1, 1}
	AddScaled(dst, 2, v)
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("AddScaled = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 3.5 || dst[1] != 4.5 {
		t.Fatalf("Scale = %v", dst)
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square Cholesky should error")
	}
}

func TestMVNSamplerDimensionMismatch(t *testing.T) {
	if _, err := NewMVNSampler([]float64{1, 2}, NewMatrix(3, 3)); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] == 99 {
		t.Fatal("Clone must copy storage")
	}
}
