// Package linalg provides the dense linear-algebra primitives ARDA needs:
// row-major matrices, matrix products, Cholesky factorization and solves,
// regularized least squares, and multivariate-normal sampling for the
// moment-matched random feature injection of RIFS.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/arda-ml/arda/internal/parallel"
)

// kernelBlockRows sizes the row blocks handed to the worker pool so each
// block carries roughly kernelBlockFlops multiply-adds: tiny matrices stay on
// one goroutine (block covers all rows), large ones split. The partition
// depends only on the matrix shape, keeping results worker-count independent.
func kernelBlockRows(rowCost int) int {
	const kernelBlockFlops = 1 << 14
	if rowCost < 1 {
		rowCost = 1
	}
	rows := kernelBlockFlops / rowCost
	if rows < 1 {
		rows = 1
	}
	return rows
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: row %d has %d entries, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a subslice of the backing array.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix. Input rows are scattered into
// output columns concurrently; every input row writes a disjoint stride, so
// the result is independent of the worker count.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	parallel.Blocks(0, m.Rows, kernelBlockRows(m.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j, v := range row {
				out.Data[j*m.Rows+i] = v
			}
		}
	})
	return out
}

// Mul returns the product a·b. Output rows are computed concurrently by row
// blocks; each row's accumulation order is the same as the sequential kernel,
// so results are bit-identical for any worker count.
func Mul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes a·b into out (which must be a.Rows×b.Cols), zeroing it
// first — same arithmetic as Mul, without the per-call allocation.
func MulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul dims %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: mul out dims %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	parallel.Blocks(0, a.Rows, kernelBlockRows(a.Cols*b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MulABt returns the product a·bᵀ without materializing the transpose:
// out[i][j] = ⟨a.Row(i), b.Row(j)⟩. Output rows are computed concurrently;
// each entry is a single ordered dot product, so results are bit-identical
// for any worker count.
func MulABt(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: mulabt dims %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	parallel.Blocks(0, a.Rows, kernelBlockRows(a.Cols*b.Rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			j := 0
			for ; j+4 <= len(orow); j += 4 {
				orow[j], orow[j+1], orow[j+2], orow[j+3] =
					Dot4(arow, b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3))
			}
			for ; j < len(orow); j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// MulVec returns the product m·x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	parallel.Blocks(0, m.Rows, kernelBlockRows(m.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Dot(m.Row(i), x)
		}
	})
	return out
}

// Dot returns the inner product of equal-length vectors. The loop is
// unrolled 4× into a single accumulator — the additions happen in exactly
// the sequential order of the plain loop, so the result is bit-identical;
// the explicit re-slice just lifts the bounds checks out of the body.
func Dot(a, b []float64) float64 {
	b = b[:len(a)]
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Dot4 returns the four inner products ⟨a,b0⟩…⟨a,b3⟩ in one pass over a.
// Each product uses its own accumulator updated in plain sequential order,
// so every result is bit-identical to a separate Dot call — but the four
// independent dependency chains hide floating-point add latency, which a
// lone running sum cannot. Gram-style kernels (many dot products sharing one
// left vector) are latency-bound, not bandwidth-bound, making this the
// profitable shape.
func Dot4(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	b3 = b3[:len(a)]
	for i, v := range a {
		s0 += v * b0[i]
		s1 += v * b1[i]
		s2 += v * b2[i]
		s3 += v * b3[i]
	}
	return
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AddScaled adds alpha*src to dst in place.
func AddScaled(dst []float64, alpha float64, src []float64) {
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// Scale multiplies every entry of v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// ErrNotSPD is returned by Cholesky when the input is not (numerically)
// symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A. Only the lower triangle of A is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(a.Rows, a.Rows)
	if err := choleskyInto(l, a); err != nil {
		return nil, err
	}
	return l, nil
}

// choleskyInto factors a into the caller-provided l (n×n). Only entries on
// or below l's diagonal are written, and the algorithm only reads entries it
// wrote during this call, so l may hold garbage from a previous solve — no
// clearing needed.
func choleskyInto(l, a *Matrix) error {
	n := a.Rows
	// Row-slice addressing with the same accumulation order as the textbook
	// At/Set form (sequential k), so results are bit-identical to it — this
	// sits on the IRLS hot path, where indexing overhead dominated.
	for j := 0; j < n; j++ {
		lj := l.Row(j)[:j+1]
		d := a.At(j, j)
		for _, v := range lj[:j] {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		d = math.Sqrt(d)
		lj[j] = d
		acol := a.Data[j:]
		// The column update dots every lower row against lj. Four rows per
		// pass — each output with its own accumulator in plain sequential
		// order, so each is bit-identical to the one-row form — hide the
		// dependent-subtract latency the lone running sum serializes on.
		i := j + 1
		for ; i+4 <= n; i += 4 {
			r0 := l.Row(i)[:j+1]
			r1 := l.Row(i+1)[:j+1]
			r2 := l.Row(i+2)[:j+1]
			r3 := l.Row(i+3)[:j+1]
			s0 := acol[i*n]
			s1 := acol[(i+1)*n]
			s2 := acol[(i+2)*n]
			s3 := acol[(i+3)*n]
			for k, v := range lj[:j] {
				s0 -= r0[k] * v
				s1 -= r1[k] * v
				s2 -= r2[k] * v
				s3 -= r3[k] * v
			}
			r0[j] = s0 / d
			r1[j] = s1 / d
			r2[j] = s2 / d
			r3[j] = s3 / d
		}
		for ; i < n; i++ {
			li := l.Row(i)[:j+1]
			s := acol[i*n]
			for k, v := range li[:j] {
				s -= v * lj[k]
			}
			li[j] = s / d
		}
	}
	return nil
}

// CholeskyJittered computes a Cholesky factor of a + jitter·I, doubling the
// jitter (starting from start, or a scale-based default if start <= 0) until
// factorization succeeds or the jitter exceeds the matrix scale by a large
// factor.
func CholeskyJittered(a *Matrix, start float64) (*Matrix, error) {
	l := NewMatrix(a.Rows, a.Rows)
	if err := choleskyJitteredInto(l, a.Clone(), a, start); err != nil {
		return nil, err
	}
	return l, nil
}

// choleskyJitteredInto is CholeskyJittered with caller-provided buffers:
// l receives the factor, work must already hold a copy of a (it is consumed
// as jitter scratch). Same jitter sequence, same arithmetic.
func choleskyJitteredInto(l, work, a *Matrix, start float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	scale := 0.0
	for i := 0; i < a.Rows; i++ {
		if v := math.Abs(a.At(i, i)); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	jitter := start
	if jitter <= 0 {
		jitter = 1e-10 * scale
	}
	for iter := 0; iter < 60; iter++ {
		err := choleskyInto(l, work)
		if err == nil {
			return nil
		}
		for i := 0; i < work.Rows; i++ {
			work.Set(i, i, a.At(i, i)+jitter)
		}
		jitter *= 4
		if jitter > 1e6*scale {
			break
		}
	}
	return ErrNotSPD
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A, by forward
// then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	x := make([]float64, l.Rows)
	solveCholeskyInto(l, b, make([]float64, l.Rows), x)
	return x
}

// solveCholeskyInto is SolveCholesky with caller-provided scratch: y holds
// the forward-substitution intermediate, x receives the solution.
func solveCholeskyInto(l *Matrix, b, y, x []float64) {
	n := l.Rows
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k, v := range row[:i] {
			s -= v * y[k]
		}
		y[i] = s / row[i]
	}
	data := l.Data
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		// Walk column i below the diagonal (stride n), same order as the
		// At form.
		for k := i + 1; k < n; k++ {
			s -= data[k*n+i] * x[k]
		}
		x[i] = s / data[i*n+i]
	}
}

// SolveSPD solves A·X = B for symmetric positive-definite A (jittered if
// needed), where B has one column per solve.
func SolveSPD(a, b *Matrix) (*Matrix, error) {
	var s SPDSolver
	out, err := s.Solve(a, b)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SPDSolver solves a sequence of same-shape SPD systems (e.g. successive
// IRLS iterations) reusing its factorization and solution buffers, so only
// the first Solve allocates. Arithmetic is identical to SolveSPD. The
// returned matrix is owned by the solver and valid until the next Solve;
// clone it to retain.
type SPDSolver struct {
	work, l, out *Matrix
	col, y, x    []float64
}

// reuseMatrix returns m resized to r×c, reallocating only on growth. The
// contents are unspecified; callers must fully overwrite what they read.
func reuseMatrix(m *Matrix, r, c int) *Matrix {
	if m == nil || cap(m.Data) < r*c {
		return NewMatrix(r, c)
	}
	m.Rows, m.Cols, m.Data = r, c, m.Data[:r*c]
	return m
}

func reuseVec(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// Solve solves A·X = B like SolveSPD, into the solver's reused buffers.
func (s *SPDSolver) Solve(a, b *Matrix) (*Matrix, error) {
	n := a.Rows
	s.work = reuseMatrix(s.work, n, n)
	copy(s.work.Data, a.Data)
	s.l = reuseMatrix(s.l, n, n)
	if err := choleskyJitteredInto(s.l, s.work, a, 0); err != nil {
		return nil, err
	}
	s.out = reuseMatrix(s.out, n, b.Cols)
	s.col = reuseVec(s.col, n)
	s.y = reuseVec(s.y, n)
	s.x = reuseVec(s.x, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			s.col[i] = b.At(i, j)
		}
		solveCholeskyInto(s.l, s.col, s.y, s.x)
		for i := 0; i < n; i++ {
			s.out.Set(i, j, s.x[i])
		}
	}
	return s.out, nil
}

// RidgeSolve solves the regularized least squares problem
// min_w ‖X·w − y‖² + lambda‖w‖² via the normal equations
// (XᵀX + lambda·I)w = Xᵀy. X is n×d with d expected modest (use dual or
// sketching for wide problems).
func RidgeSolve(x *Matrix, y []float64, lambda float64) ([]float64, error) {
	d := x.Cols
	xtx := NewMatrix(d, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			out := xtx.Row(a)
			for b := 0; b < d; b++ {
				out[b] += va * row[b]
			}
		}
	}
	for a := 0; a < d; a++ {
		xtx.Data[a*d+a] += lambda
	}
	xty := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		AddScaled(xty, y[i], row)
	}
	l, err := CholeskyJittered(xtx, 0)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, xty), nil
}

// MVNSampler draws samples from N(mu, sigma) using a jittered Cholesky factor
// of sigma.
type MVNSampler struct {
	mu []float64
	l  *Matrix
}

// NewMVNSampler prepares a sampler for N(mu, sigma). sigma must be square
// with dimension len(mu); a small jitter is added if it is not strictly
// positive definite.
func NewMVNSampler(mu []float64, sigma *Matrix) (*MVNSampler, error) {
	if sigma.Rows != len(mu) || sigma.Cols != len(mu) {
		return nil, fmt.Errorf("linalg: MVN dims mu=%d sigma=%dx%d", len(mu), sigma.Rows, sigma.Cols)
	}
	l, err := CholeskyJittered(sigma, 0)
	if err != nil {
		return nil, err
	}
	return &MVNSampler{mu: mu, l: l}, nil
}

// Sample draws one vector from the distribution.
func (s *MVNSampler) Sample(rng *rand.Rand) []float64 {
	n := len(s.mu)
	out := make([]float64, n)
	s.SampleTo(rng, out, make([]float64, n))
	return out
}

// SampleTo draws one vector into dst using z as standard-normal scratch
// (both of the sampler's dimension). It consumes exactly the NormFloat64
// stream Sample would and writes the same values, so callers can reuse
// buffers across draws without changing a single output bit.
func (s *MVNSampler) SampleTo(rng *rand.Rand, dst, z []float64) {
	n := len(s.mu)
	for i := 0; i < n; i++ {
		z[i] = rng.NormFloat64()
	}
	copy(dst, s.mu)
	for i := 0; i < n; i++ {
		row := s.l.Row(i)
		acc := dst[i]
		for k := 0; k <= i; k++ {
			acc += row[k] * z[k]
		}
		dst[i] = acc
	}
}

// Mean returns the column-wise mean of m as a vector of length Cols.
func Mean(m *Matrix) []float64 {
	mu := make([]float64, m.Cols)
	if m.Rows == 0 {
		return mu
	}
	for i := 0; i < m.Rows; i++ {
		AddScaled(mu, 1, m.Row(i))
	}
	Scale(mu, 1/float64(m.Rows))
	return mu
}
