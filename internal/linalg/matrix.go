// Package linalg provides the dense linear-algebra primitives ARDA needs:
// row-major matrices, matrix products, Cholesky factorization and solves,
// regularized least squares, and multivariate-normal sampling for the
// moment-matched random feature injection of RIFS.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/arda-ml/arda/internal/parallel"
)

// kernelBlockRows sizes the row blocks handed to the worker pool so each
// block carries roughly kernelBlockFlops multiply-adds: tiny matrices stay on
// one goroutine (block covers all rows), large ones split. The partition
// depends only on the matrix shape, keeping results worker-count independent.
func kernelBlockRows(rowCost int) int {
	const kernelBlockFlops = 1 << 14
	if rowCost < 1 {
		rowCost = 1
	}
	rows := kernelBlockFlops / rowCost
	if rows < 1 {
		rows = 1
	}
	return rows
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: row %d has %d entries, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a subslice of the backing array.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix. Input rows are scattered into
// output columns concurrently; every input row writes a disjoint stride, so
// the result is independent of the worker count.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	parallel.Blocks(0, m.Rows, kernelBlockRows(m.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j, v := range row {
				out.Data[j*m.Rows+i] = v
			}
		}
	})
	return out
}

// Mul returns the product a·b. Output rows are computed concurrently by row
// blocks; each row's accumulation order is the same as the sequential kernel,
// so results are bit-identical for any worker count.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul dims %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	parallel.Blocks(0, a.Rows, kernelBlockRows(a.Cols*b.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MulABt returns the product a·bᵀ without materializing the transpose:
// out[i][j] = ⟨a.Row(i), b.Row(j)⟩. Output rows are computed concurrently;
// each entry is a single ordered dot product, so results are bit-identical
// for any worker count.
func MulABt(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: mulabt dims %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	parallel.Blocks(0, a.Rows, kernelBlockRows(a.Cols*b.Rows), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := range orow {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// MulVec returns the product m·x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: mulvec dims %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	parallel.Blocks(0, m.Rows, kernelBlockRows(m.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Dot(m.Row(i), x)
		}
	})
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AddScaled adds alpha*src to dst in place.
func AddScaled(dst []float64, alpha float64, src []float64) {
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// Scale multiplies every entry of v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// ErrNotSPD is returned by Cholesky when the input is not (numerically)
// symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A. Only the lower triangle of A is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	// Row-slice addressing with the same accumulation order as the textbook
	// At/Set form (sequential k), so results are bit-identical to it — this
	// sits on the IRLS hot path, where indexing overhead dominated.
	for j := 0; j < n; j++ {
		lj := l.Row(j)[:j+1]
		d := a.At(j, j)
		for _, v := range lj[:j] {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		lj[j] = d
		acol := a.Data[j:]
		for i := j + 1; i < n; i++ {
			li := l.Row(i)[:j+1]
			s := acol[i*n]
			for k, v := range li[:j] {
				s -= v * lj[k]
			}
			li[j] = s / d
		}
	}
	return l, nil
}

// CholeskyJittered computes a Cholesky factor of a + jitter·I, doubling the
// jitter (starting from start, or a scale-based default if start <= 0) until
// factorization succeeds or the jitter exceeds the matrix scale by a large
// factor.
func CholeskyJittered(a *Matrix, start float64) (*Matrix, error) {
	scale := 0.0
	for i := 0; i < a.Rows; i++ {
		if v := math.Abs(a.At(i, i)); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	jitter := start
	if jitter <= 0 {
		jitter = 1e-10 * scale
	}
	work := a.Clone()
	for iter := 0; iter < 60; iter++ {
		l, err := Cholesky(work)
		if err == nil {
			return l, nil
		}
		for i := 0; i < work.Rows; i++ {
			work.Set(i, i, a.At(i, i)+jitter)
		}
		jitter *= 4
		if jitter > 1e6*scale {
			break
		}
	}
	return nil, ErrNotSPD
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A, by forward
// then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k, v := range row[:i] {
			s -= v * y[k]
		}
		y[i] = s / row[i]
	}
	x := make([]float64, n)
	data := l.Data
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		// Walk column i below the diagonal (stride n), same order as the
		// At form.
		for k := i + 1; k < n; k++ {
			s -= data[k*n+i] * x[k]
		}
		x[i] = s / data[i*n+i]
	}
	return x
}

// SolveSPD solves A·X = B for symmetric positive-definite A (jittered if
// needed), where B has one column per solve.
func SolveSPD(a, b *Matrix) (*Matrix, error) {
	l, err := CholeskyJittered(a, 0)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(a.Rows, b.Cols)
	col := make([]float64, a.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x := SolveCholesky(l, col)
		for i := 0; i < a.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// RidgeSolve solves the regularized least squares problem
// min_w ‖X·w − y‖² + lambda‖w‖² via the normal equations
// (XᵀX + lambda·I)w = Xᵀy. X is n×d with d expected modest (use dual or
// sketching for wide problems).
func RidgeSolve(x *Matrix, y []float64, lambda float64) ([]float64, error) {
	d := x.Cols
	xtx := NewMatrix(d, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			out := xtx.Row(a)
			for b := 0; b < d; b++ {
				out[b] += va * row[b]
			}
		}
	}
	for a := 0; a < d; a++ {
		xtx.Data[a*d+a] += lambda
	}
	xty := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		AddScaled(xty, y[i], row)
	}
	l, err := CholeskyJittered(xtx, 0)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, xty), nil
}

// MVNSampler draws samples from N(mu, sigma) using a jittered Cholesky factor
// of sigma.
type MVNSampler struct {
	mu []float64
	l  *Matrix
}

// NewMVNSampler prepares a sampler for N(mu, sigma). sigma must be square
// with dimension len(mu); a small jitter is added if it is not strictly
// positive definite.
func NewMVNSampler(mu []float64, sigma *Matrix) (*MVNSampler, error) {
	if sigma.Rows != len(mu) || sigma.Cols != len(mu) {
		return nil, fmt.Errorf("linalg: MVN dims mu=%d sigma=%dx%d", len(mu), sigma.Rows, sigma.Cols)
	}
	l, err := CholeskyJittered(sigma, 0)
	if err != nil {
		return nil, err
	}
	return &MVNSampler{mu: mu, l: l}, nil
}

// Sample draws one vector from the distribution.
func (s *MVNSampler) Sample(rng *rand.Rand) []float64 {
	n := len(s.mu)
	out := make([]float64, n)
	s.SampleTo(rng, out, make([]float64, n))
	return out
}

// SampleTo draws one vector into dst using z as standard-normal scratch
// (both of the sampler's dimension). It consumes exactly the NormFloat64
// stream Sample would and writes the same values, so callers can reuse
// buffers across draws without changing a single output bit.
func (s *MVNSampler) SampleTo(rng *rand.Rand, dst, z []float64) {
	n := len(s.mu)
	for i := 0; i < n; i++ {
		z[i] = rng.NormFloat64()
	}
	copy(dst, s.mu)
	for i := 0; i < n; i++ {
		row := s.l.Row(i)
		acc := dst[i]
		for k := 0; k <= i; k++ {
			acc += row[k] * z[k]
		}
		dst[i] = acc
	}
}

// Mean returns the column-wise mean of m as a vector of length Cols.
func Mean(m *Matrix) []float64 {
	mu := make([]float64, m.Cols)
	if m.Rows == 0 {
		return mu
	}
	for i := 0; i < m.Rows; i++ {
		AddScaled(mu, 1, m.Row(i))
	}
	Scale(mu, 1/float64(m.Rows))
	return mu
}
