package featsel

import (
	"context"
	"errors"

	"testing"

	"github.com/arda-ml/arda/internal/ml"
)

func TestRIFSRStarSeparatesSignal(t *testing.T) {
	ds := planted(ml.Classification, 300, 3, 30, 31)
	r := &RIFS{Config: RIFSConfig{K: 6, Forest: ForestRanker{NTrees: 25, MaxDepth: 8}}}
	rstar, err := r.RStar(ds, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rstar) != ds.D {
		t.Fatalf("rstar length = %d", len(rstar))
	}
	for j := 0; j < 3; j++ {
		if rstar[j] < 0.5 {
			t.Fatalf("signal feature %d has r* = %v, want >= 0.5", j, rstar[j])
		}
	}
	// Most noise features should rarely beat all injected noise.
	weak := 0
	for j := 3; j < ds.D; j++ {
		if rstar[j] < 0.5 {
			weak++
		}
	}
	if weak < (ds.D-3)*2/3 {
		t.Fatalf("only %d/%d noise features below 0.5", weak, ds.D-3)
	}
}

func TestRIFSSelectKeepsSignal(t *testing.T) {
	ds := planted(ml.Regression, 250, 3, 27, 33)
	r := &RIFS{Config: RIFSConfig{K: 6, Forest: ForestRanker{NTrees: 25, MaxDepth: 8}}}
	sel, err := r.Select(ds, fastForest(6), 34)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("RIFS selected nothing on a dataset with clear signal")
	}
	keep := map[int]bool{}
	for _, j := range sel {
		keep[j] = true
	}
	hits := 0
	for j := 0; j < 3; j++ {
		if keep[j] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("RIFS kept %d/3 signal features: %v", hits, sel)
	}
	// Selection should be clearly smaller than the full feature set (with
	// only K=6 repetitions the r* estimates are coarse, so allow some slack).
	if len(sel) > ds.D*2/3 {
		t.Fatalf("RIFS kept %d/%d features — not selective", len(sel), ds.D)
	}
}

func TestRIFSSimpleInjection(t *testing.T) {
	ds := planted(ml.Classification, 200, 2, 10, 35)
	r := &RIFS{Config: RIFSConfig{
		K:         4,
		Injection: SimpleDistributions,
		Forest:    ForestRanker{NTrees: 20, MaxDepth: 6},
	}}
	rstar, err := r.RStar(ds, 36)
	if err != nil {
		t.Fatal(err)
	}
	if rstar[0] < 0.5 || rstar[1] < 0.5 {
		t.Fatalf("simple-injection r* lost the signal: %v", rstar[:2])
	}
}

func TestRIFSDeterministic(t *testing.T) {
	ds := planted(ml.Classification, 150, 2, 8, 37)
	r := &RIFS{Config: RIFSConfig{K: 3, Forest: ForestRanker{NTrees: 10, MaxDepth: 5}}}
	a, err := r.RStar(ds, 38)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RStar(ds, 38)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("same seed must give identical r*")
		}
	}
}

func TestInjectIntoShape(t *testing.T) {
	ds := planted(ml.Regression, 50, 1, 2, 39)
	inject := func(repSeed int64, col int, out []float64) {
		for i := range out {
			out[i] = float64(col)
		}
	}
	const tcols = 4
	d2 := ds.D + tcols
	x := make([]float64, ds.N*d2)
	for i := 0; i < ds.N; i++ {
		copy(x[i*d2:i*d2+ds.D], ds.Row(i))
	}
	cols := make([]float64, tcols*ds.N)
	injectInto(x, ds.N, ds.D, tcols, inject, 1, cols)
	// The columnar scratch retains each injected column for presorting.
	for c := 0; c < tcols; c++ {
		if cols[c*ds.N] != float64(c) {
			t.Fatal("columnar copy missing after injection")
		}
	}
	aug := &ml.Dataset{X: x, N: ds.N, D: d2, Y: ds.Y, Task: ds.Task, Classes: ds.Classes}
	// Original features preserved, injected values in place.
	for i := 0; i < ds.N; i++ {
		for j := 0; j < ds.D; j++ {
			if aug.At(i, j) != ds.At(i, j) {
				t.Fatal("original features modified by injection")
			}
		}
		if aug.At(i, ds.D+2) != 2 {
			t.Fatal("injected column misplaced")
		}
	}
}

func TestRIFSSupportsBothTasks(t *testing.T) {
	r := &RIFS{}
	if !r.Supports(ml.Classification) || !r.Supports(ml.Regression) {
		t.Fatal("RIFS must support both tasks")
	}
	if r.Name() != "RIFS" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestSweepThresholdsMonotoneStop(t *testing.T) {
	rstar := []float64{1.0, 1.0, 0.6, 0.3, 0.1}
	thresholds := []float64{0.2, 0.5, 0.9}
	// Scores: 4 features → 0.7, 3 features → 0.8 (improves), 2 features →
	// 0.75 (drops): the sweep must return the 3-feature subset.
	score := func(cols []int) float64 {
		switch len(cols) {
		case 4:
			return 0.7
		case 3:
			return 0.8
		default:
			return 0.75
		}
	}
	got, err := sweepThresholds(nil, rstar, thresholds, 2, score)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("sweep returned %d features, want 3 (stop before the drop)", len(got))
	}
}

func TestSweepThresholdsEmpty(t *testing.T) {
	rstar := []float64{0.1, 0.05}
	got, err := sweepThresholds(nil, rstar, []float64{0.5, 0.9}, 2, func([]int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("no feature clears the thresholds, want nil, got %v", got)
	}
}

func TestSweepThresholdsMonotoneImprovementGoesToEnd(t *testing.T) {
	rstar := []float64{1.0, 0.8, 0.6, 0.4}
	calls := 0
	score := func(cols []int) float64 {
		calls++
		return 1 - float64(len(cols))*0.1 // fewer features always better
	}
	// workers=1: the calls counter below is unsynchronized, and the count
	// assertion checks that duplicate subsets are scored once.
	got, err := sweepThresholds(nil, rstar, []float64{0.3, 0.5, 0.7, 0.9}, 1, score)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("monotone improvement should reach the tightest threshold, got %d features", len(got))
	}
	if calls != 4 {
		t.Fatalf("expected 4 scorer calls, got %d", calls)
	}
}

// TestRIFSSelectCtxCanceled: an already-canceled context stops SelectCtx
// with the context error before any repetition work is done, and a live
// context returns exactly what Select returns.
func TestRIFSSelectCtxCanceled(t *testing.T) {
	ds := planted(ml.Regression, 120, 2, 12, 41)
	r := &RIFS{Config: RIFSConfig{K: 4, Forest: ForestRanker{NTrees: 10, MaxDepth: 5}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.SelectCtx(ctx, ds, fastForest(6), 42); !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectCtx under canceled ctx = %v, want context.Canceled", err)
	}
	want, err := r.Select(ds, fastForest(6), 42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.SelectCtx(context.Background(), ds, fastForest(6), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SelectCtx = %v, Select = %v; must be identical", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SelectCtx = %v, Select = %v; must be identical", got, want)
		}
	}
}
