package featsel

import (
	"context"
	"fmt"
	"math"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/linalg"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/stats"
)

// InjectionKind selects the random-feature generation strategy of Algorithm 2.
type InjectionKind int

const (
	// MomentMatched fits N(µ, Σ) to the empirical feature-vector moments and
	// injects i.i.d. samples — the aggressive strategy for inputs where true
	// signal is a small fraction of the features.
	MomentMatched InjectionKind = iota
	// SimpleDistributions cycles through standard Normal / Bernoulli /
	// Uniform / Poisson noise columns — sufficient when most features are
	// real signal.
	SimpleDistributions
)

// String returns the injection kind name.
func (k InjectionKind) String() string {
	if k == SimpleDistributions {
		return "simple"
	}
	return "moment-matched"
}

// RIFSConfig tunes random-injection feature selection.
type RIFSConfig struct {
	// Eta is the fraction of random features injected, t = ⌈η·d⌉ (default
	// 0.2, the paper's setting).
	Eta float64
	// K is the number of injection repetitions (default 10).
	K int
	// Nu weights the random-forest ranking against the sparse-regression
	// ranking in the aggregate (default 0.5).
	Nu float64
	// Thresholds is the increasing threshold set T of Algorithm 3 (default
	// {0.2, 0.4, 0.6, 0.8, 1.0}).
	Thresholds []float64
	// Injection selects the Algorithm 2 strategy (default MomentMatched).
	Injection InjectionKind
	// MomentMatchCap bounds the rows used to fit N(µ, Σ); above it the
	// sampler fits on a row subsample (default 768). The covariance is n×n,
	// so this caps the Cholesky cost.
	MomentMatchCap int
	// Forest configures the forest half of the ranking ensemble.
	Forest ForestRanker
	// Sparse configures the ℓ2,1 half of the ranking ensemble.
	Sparse ml.Sparse21Config
	// Workers bounds the goroutines used for the K injection repetitions,
	// the ranking ensemble, and the threshold sweep; 0 uses the process-wide
	// parallel.MaxWorkers. Every repetition derives its RNGs from
	// (seed, repetition) and counts merge in repetition order, so the
	// selected features are identical for any worker count.
	Workers int
}

func (c *RIFSConfig) defaults() {
	if c.Eta <= 0 {
		c.Eta = 0.2
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Nu <= 0 || c.Nu >= 1 {
		c.Nu = 0.5
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if c.MomentMatchCap <= 0 {
		c.MomentMatchCap = 768
	}
	if c.Forest.NTrees <= 0 {
		c.Forest.NTrees = 40
	}
	if c.Forest.MaxDepth <= 0 {
		c.Forest.MaxDepth = 10
	}
	if c.Sparse.MaxRows == 0 {
		c.Sparse.MaxRows = 256
	}
}

// RIFS is the paper's random-injection feature selection (Algorithms 1–3):
// repeatedly append synthetic noise columns, rank all columns with a
// ν-weighted ensemble of random-forest importances and ℓ2,1 sparse-regression
// norms, score each real feature by how often it outranks every injected
// column, and pick the survivor threshold by a monotone holdout sweep.
type RIFS struct {
	Config RIFSConfig

	// span is the current stage span for per-repetition child spans,
	// injected by the pipeline via AttachSpan; nil means tracing off.
	span *obs.Span
}

// AttachSpan implements obs.SpanAttacher: subsequent Select calls emit one
// child span per injection repetition (with features_injected /
// features_outranked attributes) plus a threshold-sweep span under s. Spans
// only observe the run — selection output is bit-identical with tracing on
// or off. Attach nil to detach. Not safe to call concurrently with Select.
func (r *RIFS) AttachSpan(s *obs.Span) { r.span = s }

// Name implements Selector.
func (r *RIFS) Name() string { return "RIFS" }

// Supports implements Selector: both tasks.
func (r *RIFS) Supports(ml.Task) bool { return true }

// Select implements Selector.
func (r *RIFS) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	return r.SelectCtx(nil, ds, est, seed)
}

// SelectCtx implements ContextSelector: Select with cooperative
// cancellation. Once ctx is done the injection repetitions and the threshold
// sweep stop claiming work and ctx.Err() is returned; a nil ctx never
// cancels. The context only gates scheduling — a run that completes returns
// exactly what Select would.
func (r *RIFS) SelectCtx(ctx context.Context, ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	rstar, err := r.rstarCtx(ctx, ds, seed)
	if err != nil {
		return nil, err
	}
	cfg := r.Config
	cfg.defaults()
	scorer := newSubsetScorer(ds, est, seed)
	sweepSpan := r.span.Child("select.sweep", 0)
	selected, err := sweepThresholds(ctx, rstar, cfg.Thresholds, cfg.Workers, scorer.score)
	if err != nil {
		sweepSpan.End()
		return nil, err
	}
	sweepSpan.SetInt("features_kept", int64(len(selected)))
	sweepSpan.End()
	return selected, nil
}

// sweepThresholds is Algorithm 3's wrapper: walk the increasing threshold
// set, keeping the subset {j : r*_j ≥ τ} while its holdout score stays
// monotone, and return the last subset before the score decreases (nil when
// even the loosest threshold selects nothing).
//
// The candidate subsets are nested — a tighter threshold always selects a
// subset of a looser one — so the list ends at the first empty subset and a
// subset is identified by its size. Distinct subsets are scored concurrently
// (speculatively past the sequential stopping point; scoring is deterministic
// on a fixed holdout split) and the monotone walk then replays over the
// precomputed scores, returning exactly what the sequential sweep would.
func sweepThresholds(ctx context.Context, rstar, thresholds []float64, workers int, score func([]int) float64) ([]int, error) {
	var subsets [][]int
	for _, tau := range thresholds {
		var subset []int
		for j, v := range rstar {
			if v >= tau {
				subset = append(subset, j)
			}
		}
		if len(subset) == 0 {
			break
		}
		subsets = append(subsets, subset)
	}
	if len(subsets) == 0 {
		return nil, nil
	}
	var uniq [][]int
	for _, s := range subsets {
		if len(uniq) == 0 || len(uniq[len(uniq)-1]) != len(s) {
			uniq = append(uniq, s)
		}
	}
	scores := make([]float64, len(uniq))
	if err := parallel.ForEachCtx(ctx, workers, len(uniq), func(i int) { scores[i] = score(uniq[i]) }); err != nil {
		return nil, err
	}
	bySize := make(map[int]float64, len(uniq))
	for i, s := range uniq {
		bySize[len(s)] = scores[i]
	}
	var prev []int
	prevScore := math.Inf(-1)
	for _, subset := range subsets {
		sc := bySize[len(subset)]
		if sc < prevScore {
			break
		}
		prev, prevScore = subset, sc
	}
	return prev, nil
}

// RStar runs the injection repetitions of Algorithm 1 and returns, per real
// feature, the fraction of repetitions in which it outranked every injected
// random feature.
func (r *RIFS) RStar(ds *ml.Dataset, seed int64) ([]float64, error) {
	return r.rstarCtx(nil, ds, seed)
}

// rstarCtx is RStar with cooperative cancellation over the K repetitions.
func (r *RIFS) rstarCtx(ctx context.Context, ds *ml.Dataset, seed int64) ([]float64, error) {
	cfg := r.Config
	cfg.defaults()
	d := ds.D
	t := int(math.Ceil(cfg.Eta * float64(d)))
	if t < 1 {
		t = 1
	}
	inject, err := r.newInjector(ds, seed)
	if err != nil {
		return nil, err
	}
	// The K repetitions are independent: each derives every RNG it touches
	// from (seed, rep) and produces a private outranked-noise indicator
	// vector. Repetitions run concurrently on the worker pool and the counts
	// merge in repetition order, so r* is identical for any worker count.
	counts, err := parallel.MapReduceCtx(ctx, cfg.Workers, cfg.K,
		func(rep int) ([]float64, error) {
			repSpan := r.span.Child("select.rep", rep)
			defer repSpan.End()
			repSeed := parallel.SplitSeed(seed, int64(rep))
			aug, err := injectColumns(ds, t, inject, repSeed)
			if err != nil {
				return nil, err
			}
			agg, err := r.aggregateRanking(aug, repSeed)
			if err != nil {
				return nil, err
			}
			maxNoise := math.Inf(-1)
			for j := d; j < d+t; j++ {
				if agg[j] > maxNoise {
					maxNoise = agg[j]
				}
			}
			beats := make([]float64, d)
			outranked := int64(0)
			for j := 0; j < d; j++ {
				if agg[j] > maxNoise {
					beats[j] = 1
					outranked++
				}
			}
			repSpan.SetInt("features_injected", int64(t))
			repSpan.SetInt("features_outranked", outranked)
			return beats, nil
		},
		make([]float64, d),
		func(acc, beats []float64) []float64 {
			for j := range acc {
				acc[j] += beats[j]
			}
			return acc
		})
	if err != nil {
		return nil, err
	}
	for j := range counts {
		counts[j] /= float64(cfg.K)
	}
	return counts, nil
}

// aggregateRanking computes the ν-weighted ensemble ranking (normalized rank
// combination of forest importances and sparse-regression row norms) over
// every column of aug.
func (r *RIFS) aggregateRanking(aug *ml.Dataset, seed int64) ([]float64, error) {
	cfg := r.Config
	cfg.defaults()
	// The two ensemble halves are independent; run them as two concurrent
	// work items (each seeded identically to the sequential path).
	var rfScores, srScores []float64
	var rfErr, srErr error
	parallel.ForEach(cfg.Workers, 2, func(half int) {
		if half == 0 {
			rfScores, rfErr = cfg.Forest.Rank(aug, seed)
		} else {
			sr := &SparseRegressionRanker{Config: cfg.Sparse}
			srScores, srErr = sr.Rank(aug, seed)
		}
	})
	if rfErr != nil {
		return nil, fmt.Errorf("featsel: rifs forest ranking: %w", rfErr)
	}
	if srErr != nil {
		return nil, fmt.Errorf("featsel: rifs sparse ranking: %w", srErr)
	}
	rfRank := RanksOf(rfScores)
	srRank := RanksOf(srScores)
	agg := make([]float64, aug.D)
	for j := range agg {
		agg[j] = cfg.Nu*rfRank[j] + (1-cfg.Nu)*srRank[j]
	}
	return agg, nil
}

// injector produces one synthetic noise column per call.
type injector func(repSeed int64, col int) []float64

// newInjector builds the Algorithm 2 sampler for ds.
func (r *RIFS) newInjector(ds *ml.Dataset, seed int64) (injector, error) {
	cfg := r.Config
	cfg.defaults()
	if cfg.Injection == SimpleDistributions {
		return func(repSeed int64, col int) []float64 {
			rng := parallel.RNG(repSeed, int64(col))
			dist := stats.Distribution(col % 4)
			return stats.SampleColumn(dist, ds.N, rng)
		}, nil
	}
	// Moment-matched injection: µ is the mean feature vector (length n),
	// Σ the empirical covariance of the d feature columns (n×n), both fit on
	// at most MomentMatchCap rows. Columns are z-scored first — on raw data
	// the largest-scale column dominates Σ, collapsing it to (near) rank one
	// so every injected column becomes a clone of a single direction that
	// both rankers trivially bury, which would let arbitrary noise "beat all
	// injected features".
	rows := ds.N
	rowIdx := make([]int, rows)
	for i := range rowIdx {
		rowIdx[i] = i
	}
	if rows > cfg.MomentMatchCap {
		rng := newRNG(seed + 7)
		rowIdx = rng.Perm(ds.N)[:cfg.MomentMatchCap]
		rows = cfg.MomentMatchCap
	}
	n, d := rows, ds.D
	// Standardize each column over the fit rows.
	std := make([]float64, n*d)
	for j := 0; j < d; j++ {
		sum, sq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := ds.At(rowIdx[i], j)
			sum += v
			sq += v * v
		}
		mean := sum / float64(n)
		sd := math.Sqrt(math.Max(sq/float64(n)-mean*mean, 0))
		if sd < 1e-12 {
			sd = 1
		}
		for i := 0; i < n; i++ {
			std[i*d+j] = (ds.At(rowIdx[i], j) - mean) / sd
		}
	}
	mu := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			mu[i] += std[i*d+j]
		}
	}
	linalg.Scale(mu, 1/float64(d))
	// Σ = C·Cᵀ/d where C is the row-centered standardized matrix; MulABt
	// computes the n×n Gram on the worker pool by row blocks. std is not
	// needed afterwards, so centering happens in place.
	centered := &linalg.Matrix{Rows: n, Cols: d, Data: std}
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= mu[i]
		}
	}
	sigma := linalg.MulABt(centered, centered)
	linalg.Scale(sigma.Data, 1/float64(d))
	sampler, err := linalg.NewMVNSampler(mu, sigma)
	if err != nil {
		return nil, fmt.Errorf("featsel: rifs moment-matched sampler: %w", err)
	}
	full := rows == ds.N
	return func(repSeed int64, col int) []float64 {
		rng := parallel.RNG(repSeed, int64(col))
		s := sampler.Sample(rng)
		if full {
			return s
		}
		// The sampler was fit on a row subsample; tile the sampled pattern
		// across all rows (values beyond the fit rows cycle through s).
		out := make([]float64, ds.N)
		for i := range out {
			out[i] = s[i%len(s)]
		}
		return out
	}, nil
}

// injectColumns appends t synthetic columns to ds, returning a new dataset
// of width d+t that shares the label vector.
func injectColumns(ds *ml.Dataset, t int, inject injector, repSeed int64) (*ml.Dataset, error) {
	d2 := ds.D + t
	x := make([]float64, ds.N*d2)
	for i := 0; i < ds.N; i++ {
		copy(x[i*d2:], ds.Row(i))
	}
	for c := 0; c < t; c++ {
		col := inject(repSeed, c)
		if len(col) != ds.N {
			return nil, fmt.Errorf("featsel: injected column has %d rows, want %d", len(col), ds.N)
		}
		for i := 0; i < ds.N; i++ {
			x[i*d2+ds.D+c] = col[i]
		}
	}
	return ml.NewDataset(x, ds.N, d2, ds.Y, ds.Task, ds.Classes)
}
