package featsel

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/linalg"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/stats"
)

// InjectionKind selects the random-feature generation strategy of Algorithm 2.
type InjectionKind int

const (
	// MomentMatched fits N(µ, Σ) to the empirical feature-vector moments and
	// injects i.i.d. samples — the aggressive strategy for inputs where true
	// signal is a small fraction of the features.
	MomentMatched InjectionKind = iota
	// SimpleDistributions cycles through standard Normal / Bernoulli /
	// Uniform / Poisson noise columns — sufficient when most features are
	// real signal.
	SimpleDistributions
)

// String returns the injection kind name.
func (k InjectionKind) String() string {
	if k == SimpleDistributions {
		return "simple"
	}
	return "moment-matched"
}

// RIFSConfig tunes random-injection feature selection.
type RIFSConfig struct {
	// Eta is the fraction of random features injected, t = ⌈η·d⌉ (default
	// 0.2, the paper's setting).
	Eta float64
	// K is the number of injection repetitions (default 10).
	K int
	// Nu weights the random-forest ranking against the sparse-regression
	// ranking in the aggregate. The paper permits ν ∈ [0, 1] and the
	// endpoints are meaningful: ν = 1 ranks with the forest alone and ν = 0
	// with the sparse regression alone (the unused ensemble half is skipped
	// entirely). Because 0 is also Go's zero value, an explicit sparse-only
	// configuration must set NuSet; an unset Nu defaults to 0.5.
	Nu float64
	// NuSet marks Nu as explicitly configured, distinguishing an intentional
	// Nu of 0 (sparse-regression-only ranking) from an unset field.
	NuSet bool
	// Thresholds is the increasing threshold set T of Algorithm 3 (default
	// {0.2, 0.4, 0.6, 0.8, 1.0}).
	Thresholds []float64
	// Injection selects the Algorithm 2 strategy (default MomentMatched).
	Injection InjectionKind
	// MomentMatchCap bounds the rows used to fit N(µ, Σ); above it the
	// sampler fits on a row subsample (default 768). The covariance is n×n,
	// so this caps the Cholesky cost.
	MomentMatchCap int
	// Forest configures the forest half of the ranking ensemble.
	Forest ForestRanker
	// Sparse configures the ℓ2,1 half of the ranking ensemble.
	Sparse ml.Sparse21Config
	// Workers bounds the goroutines used for the K injection repetitions,
	// the ranking ensemble, and the threshold sweep; 0 uses the process-wide
	// parallel.MaxWorkers. Every repetition derives its RNGs from
	// (seed, repetition) and counts merge in repetition order, so the
	// selected features are identical for any worker count.
	Workers int
	// SweepForest, when non-nil, declares that the estimator passed to
	// Select is a random forest fitted with exactly this configuration. The
	// threshold sweep then presorts the train columns once and fits every
	// nested candidate forest in one flattened cross-forest tree wave
	// (eval.SubsetEvaluator.ScoreForestWave) instead of invoking the opaque
	// Fitter per subset. Scores — and therefore the selected features — are
	// bit-identical either way, so this is purely a fast path; setting it
	// for an estimator that is not this exact forest breaks selection.
	SweepForest *ml.ForestConfig
}

func (c *RIFSConfig) defaults() {
	if c.Eta <= 0 {
		c.Eta = 0.2
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.Nu == 0 && !c.NuSet {
		c.Nu = 0.5
	}
	if c.Nu < 0 || c.Nu > 1 {
		c.Nu = 0.5
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if c.MomentMatchCap <= 0 {
		c.MomentMatchCap = 768
	}
	if c.Forest.NTrees <= 0 {
		c.Forest.NTrees = 40
	}
	if c.Forest.MaxDepth <= 0 {
		c.Forest.MaxDepth = 10
	}
	if c.Sparse.MaxRows == 0 {
		c.Sparse.MaxRows = 256
	}
}

// RIFS is the paper's random-injection feature selection (Algorithms 1–3):
// repeatedly append synthetic noise columns, rank all columns with a
// ν-weighted ensemble of random-forest importances and ℓ2,1 sparse-regression
// norms, score each real feature by how often it outranks every injected
// column, and pick the survivor threshold by a monotone holdout sweep.
type RIFS struct {
	Config RIFSConfig

	// span is the current stage span for per-repetition child spans,
	// injected by the pipeline via AttachSpan; nil means tracing off.
	span *obs.Span

	// Injector cache: the moment-matched sampler standardizes the feature
	// matrix and factors an n×n covariance, which depends only on (ds, seed)
	// — not on the repetition — so consecutive calls over the same dataset
	// (RStar then Select, or retries) reuse the fit instead of redoing it.
	injMu   sync.Mutex
	injDS   *ml.Dataset
	injSeed int64
	inj     injector
}

// AttachSpan implements obs.SpanAttacher: subsequent Select calls emit one
// child span per injection repetition (with features_injected /
// features_outranked attributes) plus a threshold-sweep span under s. Spans
// only observe the run — selection output is bit-identical with tracing on
// or off. Attach nil to detach. Not safe to call concurrently with Select.
func (r *RIFS) AttachSpan(s *obs.Span) { r.span = s }

// ForestEstimatorAware is implemented by selectors whose wrapper search can
// exploit knowing that the estimator is a random forest with a specific
// configuration. The pipeline forwards its estimator's forest config through
// this interface when it has one; the declaration is an optimization hint
// only and must never change what gets selected.
type ForestEstimatorAware interface {
	SetEstimatorForest(fc *ml.ForestConfig)
}

// SetEstimatorForest implements ForestEstimatorAware: it declares the
// Fitter passed to Select to be ml.FitForest under fc, enabling the sweep's
// cross-forest wave fast path. Pass nil to revert to the opaque-estimator
// path. Not safe to call concurrently with Select.
func (r *RIFS) SetEstimatorForest(fc *ml.ForestConfig) { r.Config.SweepForest = fc }

// Name implements Selector.
func (r *RIFS) Name() string { return "RIFS" }

// Supports implements Selector: both tasks.
func (r *RIFS) Supports(ml.Task) bool { return true }

// Select implements Selector.
func (r *RIFS) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	return r.SelectCtx(nil, ds, est, seed)
}

// SelectCtx implements ContextSelector: Select with cooperative
// cancellation. Once ctx is done the injection repetitions and the threshold
// sweep stop claiming work and ctx.Err() is returned; a nil ctx never
// cancels. The context only gates scheduling — a run that completes returns
// exactly what Select would.
func (r *RIFS) SelectCtx(ctx context.Context, ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	cfg := r.Config
	cfg.defaults()
	// Selection only consumes r* through ≥-threshold bucket membership, so
	// rstarCtx may stop early once every bucket is decided (see allDecided).
	rstar, err := r.rstarCtx(ctx, ds, seed, cfg.Thresholds)
	if err != nil {
		return nil, err
	}
	sweepSpan := r.span.Child("select.sweep", 0)
	selected, err := r.sweep(ctx, ds, est, seed, rstar, &cfg)
	if err != nil {
		sweepSpan.End()
		return nil, err
	}
	sweepSpan.SetInt("features_kept", int64(len(selected)))
	sweepSpan.End()
	return selected, nil
}

// sweep is Algorithm 3: walk the increasing threshold set, keeping the
// subset {j : r*_j ≥ τ} while its holdout score stays monotone. The nested
// candidate subsets are all contained in the loosest one, so the base
// columns are gathered from ds once (eval.SubsetEvaluator) and each tighter
// subset re-gathers from that compact matrix.
func (r *RIFS) sweep(ctx context.Context, ds *ml.Dataset, est eval.Fitter, seed int64, rstar []float64, cfg *RIFSConfig) ([]int, error) {
	subsets, uniq := thresholdSubsets(rstar, cfg.Thresholds)
	if len(uniq) == 0 {
		return nil, nil
	}
	// The same fixed stratified split all of this run's evaluations share,
	// so subset comparisons are apples-to-apples.
	split := eval.TrainTestSplit(ds, 0.25, seed)
	ev := eval.NewSubsetEvaluator(ds, split, est, uniq[0])
	ev.AttachHistogram(r.span.Trace().Histogram("select.subset_score"))
	// Distinct subsets are scored concurrently (speculatively past the
	// sequential stopping point; scoring is deterministic on the fixed
	// split), then the monotone walk replays over the precomputed scores,
	// returning exactly what the sequential sweep would.
	var scores []float64
	if fc := cfg.SweepForest; fc != nil {
		// The estimator is a declared forest: presort the train columns once
		// and fit every candidate forest in one flattened tree wave. The wave
		// is a single barrier, so cancellation is checked at its edges.
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		posSets := make([][]int, len(uniq))
		for i := range uniq {
			posSets[i] = positionsIn(uniq[0], uniq[i])
		}
		var trees int
		wcfg := *fc
		wcfg.TreeDur = r.span.Trace().Histogram("select.tree_fit")
		scores, trees = ev.ScoreForestWave(posSets, wcfg, cfg.Workers)
		tr := r.span.Trace()
		tr.Counter("select.trees_scheduled").Add(int64(trees))
		st := ev.SplitCacheStats()
		tr.Counter("select.splitset_cache_hits").Add(st.Hits)
		tr.Counter("select.splitset_cache_misses").Add(st.Misses)
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
	} else {
		scores = make([]float64, len(uniq))
		err := parallel.ForEachCtx(ctx, cfg.Workers, len(uniq), func(i int) {
			scores[i] = ev.ScoreAt(positionsIn(uniq[0], uniq[i]))
		})
		if err != nil {
			return nil, err
		}
	}
	return monotoneWalk(subsets, uniq, scores), nil
}

// ctxErr is ctx.Err() tolerating the package's nil-context convention.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// sweepThresholds is the callback-scored form of Algorithm 3's wrapper,
// kept for callers that bring their own subset scorer: walk the increasing
// threshold set, keeping the subset {j : r*_j ≥ τ} while its holdout score
// stays monotone, and return the last subset before the score decreases
// (nil when even the loosest threshold selects nothing).
func sweepThresholds(ctx context.Context, rstar, thresholds []float64, workers int, score func([]int) float64) ([]int, error) {
	subsets, uniq := thresholdSubsets(rstar, thresholds)
	if len(uniq) == 0 {
		return nil, nil
	}
	scores := make([]float64, len(uniq))
	if err := parallel.ForEachCtx(ctx, workers, len(uniq), func(i int) { scores[i] = score(uniq[i]) }); err != nil {
		return nil, err
	}
	return monotoneWalk(subsets, uniq, scores), nil
}

// thresholdSubsets materializes Algorithm 3's candidate subsets: for each
// threshold τ (ascending), the features with r* ≥ τ. The subsets are nested
// — a tighter threshold always selects a subset of a looser one — so the
// list ends at the first empty subset; uniq holds one representative per
// distinct size (a subset is identified by its size).
func thresholdSubsets(rstar, thresholds []float64) (subsets, uniq [][]int) {
	for _, tau := range thresholds {
		var subset []int
		for j, v := range rstar {
			if v >= tau {
				subset = append(subset, j)
			}
		}
		if len(subset) == 0 {
			break
		}
		subsets = append(subsets, subset)
	}
	for _, s := range subsets {
		if len(uniq) == 0 || len(uniq[len(uniq)-1]) != len(s) {
			uniq = append(uniq, s)
		}
	}
	return subsets, uniq
}

// monotoneWalk replays the sequential threshold walk over precomputed
// scores, returning the last subset before the score first decreases.
func monotoneWalk(subsets, uniq [][]int, scores []float64) []int {
	bySize := make(map[int]float64, len(uniq))
	for i, s := range uniq {
		bySize[len(s)] = scores[i]
	}
	var prev []int
	prevScore := math.Inf(-1)
	for _, subset := range subsets {
		sc := bySize[len(subset)]
		if sc < prevScore {
			break
		}
		prev, prevScore = subset, sc
	}
	return prev
}

// positionsIn maps sub's columns to their positions in base. Both slices are
// ascending and sub ⊆ base (nested threshold subsets), so a single merge
// walk suffices.
func positionsIn(base, sub []int) []int {
	pos := make([]int, len(sub))
	b := 0
	for i, c := range sub {
		for base[b] != c {
			b++
		}
		pos[i] = b
	}
	return pos
}

// RStar runs the injection repetitions of Algorithm 1 and returns, per real
// feature, the fraction of repetitions in which it outranked every injected
// random feature. All K repetitions always run (r* values are the output
// here, so no repetition can be skipped).
func (r *RIFS) RStar(ds *ml.Dataset, seed int64) ([]float64, error) {
	return r.rstarCtx(nil, ds, seed, nil)
}

// rstarCtx is RStar with cooperative cancellation over the K repetitions.
//
// When thresholds is non-nil the caller only consumes r* through the bucket
// memberships {r*_j ≥ τ}, which lets outstanding repetitions be skipped once
// every membership is arithmetically decided: a feature with c outranking
// repetitions so far and R still outstanding is certainly in a bucket
// needing cNeed when c ≥ cNeed and certainly out when c+R < cNeed. The
// repetitions run in a fixed wave schedule with the decision point checked
// between waves, so the skip decision depends only on merged counts — never
// on timing or worker count — and the returned fractions (skipped counts
// over the full K) land in exactly the buckets the complete run would put
// them in. Skipped repetitions surface as the select.reps_short_circuited
// trace counter.
func (r *RIFS) rstarCtx(ctx context.Context, ds *ml.Dataset, seed int64, thresholds []float64) ([]float64, error) {
	cfg := r.Config
	cfg.defaults()
	// Every ranking-forest tree fit in the repetitions lands in the run's
	// per-tree latency histogram (nil — free — when tracing is off).
	cfg.Forest.TreeDur = r.span.Trace().Histogram("select.tree_fit")
	d := ds.D
	t := int(math.Ceil(cfg.Eta * float64(d)))
	if t < 1 {
		t = 1
	}
	inject, err := r.injectorFor(ds, seed)
	if err != nil {
		return nil, err
	}
	n, d2 := ds.N, d+t
	// Run-level split cache: the d real columns are presorted exactly once
	// per run and every repetition's forest reads them through a per-rep
	// view, so only the t refreshed noise columns are presorted per
	// repetition (inside the workspace's reusable buffers). The sparse half
	// ignores the attachment. Skipped entirely at ν = 0, where no forest
	// ever fits. The cold build happens before the repetition fan-out, so
	// the hit/miss counters are independent of worker count.
	useViews := cfg.Nu > 0
	var scache *ml.SplitCache
	var realIdx []int
	if useViews {
		scache = ml.NewSplitCache(ds)
		realIdx = make([]int, d)
		for j := range realIdx {
			realIdx[j] = j
		}
		scache.Columns(realIdx, true)
	}
	// Pooled augmented-dataset workspaces: the first d columns hold the real
	// features and are written once per workspace; repetitions reusing a
	// workspace only refill the t noise columns. The pool is per-call, so a
	// workspace's base columns always belong to this ds.
	type repWorkspace struct {
		x      []float64        // n×d2 row-major augmented design
		base   bool             // real columns already written
		noiseV []float64        // t×n columnar copies of the injected columns
		noiseO []int32          // t×n noise presort order buffers
		noise  []ml.SplitColumn // t presorted noise column headers
	}
	pool := parallel.NewScratchPool(func() *repWorkspace {
		ws := &repWorkspace{x: make([]float64, n*d2), noiseV: make([]float64, t*n)}
		if useViews {
			ws.noiseO = make([]int32, t*n)
			ws.noise = make([]ml.SplitColumn, t)
		}
		return ws
	})
	// Each repetition derives every RNG it touches from (seed, rep) and
	// produces a private outranked-noise indicator vector; indicators merge
	// in repetition order, so counts are identical for any worker count.
	runRep := func(rep int) ([]byte, error) {
		repSpan := r.span.Child("select.rep", rep)
		defer repSpan.End()
		repSeed := parallel.SplitSeed(seed, int64(rep))
		ws := pool.Get()
		defer pool.Put(ws)
		if !ws.base {
			for i := 0; i < n; i++ {
				copy(ws.x[i*d2:i*d2+d], ds.Row(i))
			}
			ws.base = true
		}
		injectInto(ws.x, n, d, t, inject, repSeed, ws.noiseV)
		aug := &ml.Dataset{X: ws.x, N: n, D: d2, Y: ds.Y, Task: ds.Task, Classes: ds.Classes}
		if useViews {
			for c := 0; c < t; c++ {
				ws.noise[c] = ml.NewSplitColumn(ws.noiseV[c*n:(c+1)*n], ws.noiseO[c*n:(c+1)*n])
			}
			aug.AttachSplits(scache.View(scache.Columns(realIdx, true), ws.noise))
		}
		agg, err := r.aggregateRanking(&cfg, aug, repSeed)
		if err != nil {
			return nil, err
		}
		maxNoise := math.Inf(-1)
		for j := d; j < d+t; j++ {
			if agg[j] > maxNoise {
				maxNoise = agg[j]
			}
		}
		beats := make([]byte, d)
		outranked := int64(0)
		for j := 0; j < d; j++ {
			if agg[j] > maxNoise {
				beats[j] = 1
				outranked++
			}
		}
		repSpan.SetInt("features_injected", int64(t))
		repSpan.SetInt("features_outranked", outranked)
		return beats, nil
	}

	counts := make([]int, d)
	need := neededCounts(thresholds, cfg.K)
	waves := repSchedule(cfg.K, need)
	// A schedule that collapsed to one barrier-free wave can never
	// short-circuit, so reps_short_circuited == 0 is structural there, not a
	// near-miss; the span records which case a trace is looking at.
	r.span.SetInt("rep_waves", int64(len(waves)))
	if len(waves) == 1 && need != nil {
		r.span.SetInt("rep_schedule_collapsed", 1)
	}
	done, skipped := 0, 0
	for _, wave := range waves {
		if done > 0 && allDecided(counts, need, cfg.K-done) {
			skipped = cfg.K - done
			break
		}
		_, err := parallel.MapReduceCtx(ctx, cfg.Workers, wave,
			func(i int) ([]byte, error) { return runRep(done + i) },
			counts,
			func(acc []int, beats []byte) []int {
				for j, b := range beats {
					acc[j] += int(b)
				}
				return acc
			})
		if err != nil {
			return nil, err
		}
		done += wave
	}
	r.span.Trace().Counter("select.reps_short_circuited").Add(int64(skipped))
	if scache != nil {
		st := scache.Stats()
		tr := r.span.Trace()
		tr.Counter("select.splitset_cache_hits").Add(st.Hits)
		tr.Counter("select.splitset_cache_misses").Add(st.Misses)
	}
	rstar := make([]float64, d)
	for j, c := range counts {
		rstar[j] = float64(c) / float64(cfg.K)
	}
	return rstar, nil
}

// waveSize is the base repetition schedule early termination checks
// against: the first wave runs ⌈K/2⌉ repetitions, each later wave half of
// what remains (at least one). The schedule depends only on (done, K), so
// the decision points are the same for every worker count.
func waveSize(done, k int) int {
	if done == 0 {
		return (k + 1) / 2
	}
	if w := (k - done) / 2; w > 1 {
		return w
	}
	return 1
}

// repSchedule returns the wave sizes the K repetitions run in. Wave
// boundaries only exist at decision points where early termination is
// arithmetically possible for at least one count value, so configurations
// whose (K, thresholds) can never decide early — e.g. small K with the
// default threshold grid — collapse to a single barrier-free wave and pay
// nothing for the machinery. Depends only on (k, need): deterministic.
func repSchedule(k int, need []int) []int {
	if need == nil {
		return []int{k}
	}
	var waves []int
	done := 0
	for done < k {
		w := waveSize(done, k)
		for done+w < k && !decidablePoint(done+w, k, need) {
			w += waveSize(done+w, k)
		}
		waves = append(waves, w)
		done += w
	}
	return waves
}

// decidablePoint reports whether, after done of k repetitions, some count
// value could have every threshold bucket decided — i.e. whether checking
// allDecided there can ever pay off.
func decidablePoint(done, k int, need []int) bool {
	for c := 0; c <= done; c++ {
		if countDecided(c, need, k-done) {
			return true
		}
	}
	return false
}

// neededCounts maps each threshold τ to the minimum repetition count c with
// c/K ≥ τ: feature j belongs to τ's subset iff its final count reaches it.
// Returns nil when thresholds is nil (no early termination).
func neededCounts(thresholds []float64, k int) []int {
	if thresholds == nil {
		return nil
	}
	need := make([]int, 0, len(thresholds))
	for _, tau := range thresholds {
		c := int(math.Ceil(tau * float64(k)))
		if c < 0 {
			c = 0
		}
		// Fix up floating-point edges of the ceil so c is exactly the
		// smallest count whose fraction clears τ under float64 division.
		for c > 0 && float64(c-1)/float64(k) >= tau {
			c--
		}
		for c <= k && float64(c)/float64(k) < tau {
			c++
		}
		need = append(need, c)
	}
	return need
}

// allDecided reports whether, with rem repetitions outstanding, every
// feature's membership in every threshold bucket is already fixed.
func allDecided(counts, need []int, rem int) bool {
	for _, c := range counts {
		if !countDecided(c, need, rem) {
			return false
		}
	}
	return true
}

// countDecided reports whether a feature with count c has every threshold
// bucket decided with rem repetitions outstanding: c ≥ cNeed can never fall
// out of the bucket, and c+rem < cNeed can never get in.
func countDecided(c int, need []int, rem int) bool {
	for _, cn := range need {
		if c < cn && c+rem >= cn {
			return false
		}
	}
	return true
}

// aggregateRanking computes the ν-weighted ensemble ranking (normalized rank
// combination of forest importances and sparse-regression row norms) over
// every column of aug. At the ν endpoints only the weighted half is fitted:
// the other half's weight is exactly zero, so its ranking cannot move the
// aggregate, and skipping it returns bit-identical values.
func (r *RIFS) aggregateRanking(cfg *RIFSConfig, aug *ml.Dataset, seed int64) ([]float64, error) {
	var rfScores, srScores []float64
	var rfErr, srErr error
	switch {
	case cfg.Nu == 1:
		rfScores, rfErr = cfg.Forest.Rank(aug, seed)
	case cfg.Nu == 0:
		sr := &SparseRegressionRanker{Config: cfg.Sparse}
		srScores, srErr = sr.Rank(aug, seed)
	default:
		// The two ensemble halves are independent; run them as two
		// concurrent work items (each seeded identically to the sequential
		// path).
		parallel.ForEach(cfg.Workers, 2, func(half int) {
			if half == 0 {
				rfScores, rfErr = cfg.Forest.Rank(aug, seed)
			} else {
				sr := &SparseRegressionRanker{Config: cfg.Sparse}
				srScores, srErr = sr.Rank(aug, seed)
			}
		})
	}
	if rfErr != nil {
		return nil, fmt.Errorf("featsel: rifs forest ranking: %w", rfErr)
	}
	if srErr != nil {
		return nil, fmt.Errorf("featsel: rifs sparse ranking: %w", srErr)
	}
	agg := make([]float64, aug.D)
	switch {
	case cfg.Nu == 1:
		copy(agg, RanksOf(rfScores))
	case cfg.Nu == 0:
		copy(agg, RanksOf(srScores))
	default:
		rfRank := RanksOf(rfScores)
		srRank := RanksOf(srScores)
		for j := range agg {
			agg[j] = cfg.Nu*rfRank[j] + (1-cfg.Nu)*srRank[j]
		}
	}
	return agg, nil
}

// injector fills out (length ds.N) with one synthetic noise column.
type injector func(repSeed int64, col int, out []float64)


// injectInto fills the noise block of the row-major augmented design x
// (n rows, stride d+t, real features occupying columns [0, d)) with the t
// injected columns for repSeed. cols is t×n scratch; each injected column is
// drawn into its cols[c*n:(c+1)*n] slot before the strided scatter, leaving a
// columnar copy behind for callers that presort the noise columns. Only the
// noise block of x is written, so a workspace's real columns survive across
// repetitions untouched.
func injectInto(x []float64, n, d, t int, inject injector, repSeed int64, cols []float64) {
	d2 := d + t
	for c := 0; c < t; c++ {
		col := cols[c*n : (c+1)*n]
		inject(repSeed, c, col)
		for i := 0; i < n; i++ {
			x[i*d2+d+c] = col[i]
		}
	}
}

// injectorFor returns the Algorithm 2 sampler for (ds, seed), reusing the
// cached one when the pipeline asks repeatedly for the same pair.
func (r *RIFS) injectorFor(ds *ml.Dataset, seed int64) (injector, error) {
	r.injMu.Lock()
	defer r.injMu.Unlock()
	if r.inj != nil && r.injDS == ds && r.injSeed == seed {
		return r.inj, nil
	}
	inj, err := r.newInjector(ds, seed)
	if err != nil {
		return nil, err
	}
	r.injDS, r.injSeed, r.inj = ds, seed, inj
	return inj, nil
}

// newInjector builds the Algorithm 2 sampler for ds.
func (r *RIFS) newInjector(ds *ml.Dataset, seed int64) (injector, error) {
	cfg := r.Config
	cfg.defaults()
	if cfg.Injection == SimpleDistributions {
		return func(repSeed int64, col int, out []float64) {
			rng := parallel.RNG(repSeed, int64(col))
			dist := stats.Distribution(col % 4)
			stats.SampleColumnInto(dist, rng, out)
		}, nil
	}
	// Moment-matched injection: µ is the mean feature vector (length n),
	// Σ the empirical covariance of the d feature columns (n×n), both fit on
	// at most MomentMatchCap rows. Columns are z-scored first — on raw data
	// the largest-scale column dominates Σ, collapsing it to (near) rank one
	// so every injected column becomes a clone of a single direction that
	// both rankers trivially bury, which would let arbitrary noise "beat all
	// injected features".
	rows := ds.N
	rowIdx := make([]int, rows)
	for i := range rowIdx {
		rowIdx[i] = i
	}
	if rows > cfg.MomentMatchCap {
		rng := newRNG(seed + 7)
		rowIdx = rng.Perm(ds.N)[:cfg.MomentMatchCap]
		rows = cfg.MomentMatchCap
	}
	n, d := rows, ds.D
	// Standardize each column over the fit rows.
	std := make([]float64, n*d)
	for j := 0; j < d; j++ {
		sum, sq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := ds.At(rowIdx[i], j)
			sum += v
			sq += v * v
		}
		mean := sum / float64(n)
		sd := math.Sqrt(math.Max(sq/float64(n)-mean*mean, 0))
		if sd < 1e-12 {
			sd = 1
		}
		for i := 0; i < n; i++ {
			std[i*d+j] = (ds.At(rowIdx[i], j) - mean) / sd
		}
	}
	mu := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			mu[i] += std[i*d+j]
		}
	}
	linalg.Scale(mu, 1/float64(d))
	// Σ = C·Cᵀ/d where C is the row-centered standardized matrix; MulABt
	// computes the n×n Gram on the worker pool by row blocks. std is not
	// needed afterwards, so centering happens in place.
	centered := &linalg.Matrix{Rows: n, Cols: d, Data: std}
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= mu[i]
		}
	}
	sigma := linalg.MulABt(centered, centered)
	linalg.Scale(sigma.Data, 1/float64(d))
	sampler, err := linalg.NewMVNSampler(mu, sigma)
	if err != nil {
		return nil, fmt.Errorf("featsel: rifs moment-matched sampler: %w", err)
	}
	// Pooled draw scratch: SampleTo consumes the same NormFloat64 stream
	// Sample would, so buffer reuse cannot change a drawn column.
	type drawScratch struct{ s, z []float64 }
	drawPool := parallel.NewScratchPool(func() *drawScratch {
		return &drawScratch{s: make([]float64, n), z: make([]float64, n)}
	})
	full := rows == ds.N
	return func(repSeed int64, col int, out []float64) {
		rng := parallel.RNG(repSeed, int64(col))
		sc := drawPool.Get()
		sampler.SampleTo(rng, sc.s, sc.z)
		if full {
			copy(out, sc.s)
		} else {
			// The sampler was fit on a row subsample; tile the sampled
			// pattern across all rows (values beyond the fit rows cycle
			// through the draw).
			for i := range out {
				out[i] = sc.s[i%n]
			}
		}
		drawPool.Put(sc)
	}, nil
}
