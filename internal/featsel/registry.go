package featsel

import (
	"fmt"

	"github.com/arda-ml/arda/internal/ml"
)

// Method identifies a feature-selection method by the paper's name.
type Method string

// The feature-selection methods evaluated in the paper's §7.
const (
	MethodRIFS      Method = "RIFS"
	MethodForest    Method = "random forest"
	MethodSparse    Method = "sparse regression"
	MethodLasso     Method = "lasso"
	MethodLogistic  Method = "logistic reg"
	MethodLinearSVC Method = "linear svc"
	MethodFTest     Method = "f-test"
	MethodMutual    Method = "mutual info"
	MethodRelief    Method = "relief"
	MethodForward   Method = "forward selection"
	MethodBackward  Method = "backward selection"
	MethodRFE       Method = "rfe"
	MethodAll       Method = "all features"
)

// AllMethods lists every method in the paper's table order.
func AllMethods() []Method {
	return []Method{
		MethodRIFS, MethodForest, MethodSparse, MethodLasso, MethodLogistic,
		MethodLinearSVC, MethodFTest, MethodMutual, MethodRelief,
		MethodForward, MethodBackward, MethodRFE, MethodAll,
	}
}

// New constructs the named selector with paper-default parameters.
func New(m Method) (Selector, error) {
	switch m {
	case MethodRIFS:
		return &RIFS{}, nil
	case MethodForest:
		return &RankingSelector{Ranker: &ForestRanker{}}, nil
	case MethodSparse:
		return &RankingSelector{Ranker: &SparseRegressionRanker{}}, nil
	case MethodLasso:
		return &RankingSelector{Ranker: &LassoRanker{}}, nil
	case MethodLogistic:
		return &RankingSelector{Ranker: &LogisticRanker{}}, nil
	case MethodLinearSVC:
		return &RankingSelector{Ranker: &LinearSVCRanker{}}, nil
	case MethodFTest:
		return &RankingSelector{Ranker: &FTestRanker{}}, nil
	case MethodMutual:
		return &RankingSelector{Ranker: &MutualInfoRanker{}}, nil
	case MethodRelief:
		return &RankingSelector{Ranker: &ReliefRanker{}}, nil
	case MethodForward:
		return &ForwardSelector{}, nil
	case MethodBackward:
		return &BackwardSelector{}, nil
	case MethodRFE:
		return &RFESelector{}, nil
	case MethodAll:
		return AllFeatures{}, nil
	default:
		return nil, fmt.Errorf("featsel: unknown method %q", m)
	}
}

// MethodsFor returns the methods applicable to a task, in table order.
func MethodsFor(task ml.Task) []Method {
	var out []Method
	for _, m := range AllMethods() {
		sel, err := New(m)
		if err != nil {
			continue
		}
		if sel.Supports(task) {
			out = append(out, m)
		}
	}
	return out
}
