package featsel

import (
	"testing"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
)

// TestSweepForestWaveMatchesOpaque: declaring the estimator's forest config
// (SweepForest) switches the threshold sweep to the cross-forest wave fast
// path; the selected features must be identical to the opaque-Fitter path.
func TestSweepForestWaveMatchesOpaque(t *testing.T) {
	for _, task := range []ml.Task{ml.Classification, ml.Regression} {
		ds := planted(task, 140, 2, 14, 29)
		base := RIFSConfig{K: 4, Forest: ForestRanker{NTrees: 10, MaxDepth: 5}}
		est := fastForest(3)
		fc := ml.ForestConfig{NTrees: 15, MaxDepth: 6, Seed: 3} // == fastForest(3)

		want, err := (&RIFS{Config: base}).Select(ds, est, 42)
		if err != nil {
			t.Fatal(err)
		}
		fast := &RIFS{Config: base}
		fast.SetEstimatorForest(&fc)
		got, err := fast.Select(ds, est, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("task %v: wave selected %v, opaque selected %v", task, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("task %v: wave selected %v, opaque selected %v", task, got, want)
			}
		}

		// Detaching must restore the opaque path (and the same answer).
		fast.SetEstimatorForest(nil)
		again, err := fast.Select(ds, est, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(want) {
			t.Fatalf("task %v: detached selector returned %v, want %v", task, again, want)
		}
	}
}

// TestRStarCacheCounters: the run-level split cache must cold-build each real
// column exactly once (d misses from the prewarm) and serve every repetition
// from the cache (K·d hits), independent of scheduling.
func TestRStarCacheCounters(t *testing.T) {
	ds := planted(ml.Classification, 130, 2, 10, 7)
	tr := obs.New("test")
	r := &RIFS{Config: RIFSConfig{K: 4, Forest: ForestRanker{NTrees: 8, MaxDepth: 5}}}
	r.AttachSpan(tr.Root())
	if _, err := r.Select(ds, fastForest(5), 42); err != nil {
		t.Fatal(err)
	}
	r.AttachSpan(nil)
	m := tr.Metrics()
	d := int64(ds.D)
	if m["select.splitset_cache_misses"] != d {
		t.Fatalf("cache misses = %d, want exactly d=%d (one cold build per real column)",
			m["select.splitset_cache_misses"], d)
	}
	if want := 4 * d; m["select.splitset_cache_hits"] != want {
		t.Fatalf("cache hits = %d, want K·d=%d", m["select.splitset_cache_hits"], want)
	}
}

// TestSweepWaveCounters: with a declared estimator forest the sweep must
// report the trees it scheduled and the cache traffic of the wave.
func TestSweepWaveCounters(t *testing.T) {
	ds := planted(ml.Regression, 140, 2, 12, 11)
	tr := obs.New("test")
	fc := ml.ForestConfig{NTrees: 15, MaxDepth: 6, Seed: 3}
	r := &RIFS{Config: RIFSConfig{K: 4, Forest: ForestRanker{NTrees: 8, MaxDepth: 5}, SweepForest: &fc}}
	r.AttachSpan(tr.Root())
	sel, err := r.Select(ds, fastForest(3), 42)
	if err != nil {
		t.Fatal(err)
	}
	r.AttachSpan(nil)
	m := tr.Metrics()
	if len(sel) > 0 && m["select.trees_scheduled"] == 0 {
		t.Fatal("sweep selected features but scheduled no trees")
	}
	if m["select.trees_scheduled"]%int64(fc.NTrees) != 0 {
		t.Fatalf("trees_scheduled = %d, want a multiple of NTrees=%d",
			m["select.trees_scheduled"], fc.NTrees)
	}
}

// TestThresholdSubsetsDuplicateScores: duplicate r* values straddling a
// threshold must bucket together, and uniq must deduplicate by subset size.
func TestThresholdSubsetsDuplicateScores(t *testing.T) {
	rstar := []float64{0.4, 0.4, 0.8, 0.2}
	subsets, uniq := thresholdSubsets(rstar, []float64{0.4, 0.6, 0.8})
	if len(subsets) != 3 {
		t.Fatalf("got %d subsets, want 3", len(subsets))
	}
	if len(subsets[0]) != 3 || subsets[0][0] != 0 || subsets[0][1] != 1 || subsets[0][2] != 2 {
		t.Fatalf("loosest subset = %v, want [0 1 2] (both 0.4 features clear τ=0.4)", subsets[0])
	}
	for _, s := range subsets[1:] {
		if len(s) != 1 || s[0] != 2 {
			t.Fatalf("tight subset = %v, want [2]", s)
		}
	}
	if len(uniq) != 2 {
		t.Fatalf("got %d uniq subsets, want 2 (sizes 3 and 1)", len(uniq))
	}

	// A tie in scores is not a decrease: the walk must advance through it.
	got := monotoneWalk(subsets, uniq, []float64{0.5, 0.5})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("tied scores: walk returned %v, want [2] (equal score advances)", got)
	}
}

// TestThresholdSubsetsAllBelow: when no feature clears even the loosest
// threshold there are no candidate subsets at all.
func TestThresholdSubsetsAllBelow(t *testing.T) {
	subsets, uniq := thresholdSubsets([]float64{0.1, 0.0, 0.15}, []float64{0.2, 0.4})
	if subsets != nil || uniq != nil {
		t.Fatalf("subsets = %v, uniq = %v; want none", subsets, uniq)
	}
}

// TestSweepSingleFeatureBase: a base subset of one feature survives the
// sweep machinery (positionsIn on a singleton, tighter thresholds empty).
func TestSweepSingleFeatureBase(t *testing.T) {
	if pos := positionsIn([]int{7}, []int{7}); len(pos) != 1 || pos[0] != 0 {
		t.Fatalf("positionsIn singleton = %v, want [0]", pos)
	}
	got, err := sweepThresholds(nil, []float64{0.9}, []float64{0.5, 0.95}, 1,
		func(cols []int) float64 { return float64(len(cols)) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-feature sweep = %v, want [0]", got)
	}
}
