package featsel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/ml"
)

// planted builds a dataset with `signal` informative features followed by
// `noise` pure-noise features.
func planted(task ml.Task, n, signal, noise int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := signal + noise
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x[i*d : (i+1)*d]
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if task == ml.Classification {
			label := i % 2
			y[i] = float64(label)
			for j := 0; j < signal; j++ {
				row[j] += float64(label) * 2
			}
		} else {
			for j := 0; j < signal; j++ {
				y[i] += 2 * row[j]
			}
			y[i] += 0.2 * rng.NormFloat64()
		}
	}
	classes := 0
	if task == ml.Classification {
		classes = 2
	}
	ds, err := ml.NewDataset(x, n, d, y, task, classes)
	if err != nil {
		panic(err)
	}
	return ds
}

// fastForest is a small estimator for wrapper tests.
func fastForest(seed int64) eval.Fitter {
	return func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, ml.ForestConfig{NTrees: 15, MaxDepth: 6, Seed: seed})
	}
}

// signalOnTop checks that every signal feature outranks every noise feature.
func signalOnTop(t *testing.T, name string, scores []float64, signal int) {
	t.Helper()
	noiseMax := math.Inf(-1)
	for j := signal; j < len(scores); j++ {
		if scores[j] > noiseMax {
			noiseMax = scores[j]
		}
	}
	for j := 0; j < signal; j++ {
		if scores[j] <= noiseMax {
			t.Fatalf("%s: signal score %v (feature %d) not above noise max %v",
				name, scores[j], j, noiseMax)
		}
	}
}

func TestRanksOf(t *testing.T) {
	r := RanksOf([]float64{10, 30, 20})
	if r[1] != 1 || r[0] != 0 || math.Abs(r[2]-0.5) > 1e-12 {
		t.Fatalf("ranks = %v", r)
	}
	// Ties share the mean rank.
	tied := RanksOf([]float64{5, 5, 1})
	if tied[0] != tied[1] || tied[2] != 0 {
		t.Fatalf("tied ranks = %v", tied)
	}
	// NaNs rank lowest.
	withNaN := RanksOf([]float64{math.NaN(), 2})
	if withNaN[0] != 0 || withNaN[1] != 1 {
		t.Fatalf("NaN ranks = %v", withNaN)
	}
}

func TestOrder(t *testing.T) {
	o := Order([]float64{1, 9, 5})
	if o[0] != 1 || o[1] != 2 || o[2] != 0 {
		t.Fatalf("order = %v", o)
	}
}

func TestFTestRankerBothTasks(t *testing.T) {
	r := &FTestRanker{}
	for _, task := range []ml.Task{ml.Classification, ml.Regression} {
		ds := planted(task, 300, 2, 6, 10)
		scores, err := r.Rank(ds, 1)
		if err != nil {
			t.Fatal(err)
		}
		signalOnTop(t, "f-test "+task.String(), scores, 2)
	}
}

func TestMutualInfoRanker(t *testing.T) {
	r := &MutualInfoRanker{}
	ds := planted(ml.Classification, 400, 2, 6, 11)
	scores, err := r.Rank(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	signalOnTop(t, "mutual info", scores, 2)
}

func TestForestRanker(t *testing.T) {
	r := &ForestRanker{NTrees: 30}
	ds := planted(ml.Regression, 300, 2, 6, 12)
	scores, err := r.Rank(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	signalOnTop(t, "random forest", scores, 2)
}

func TestSparseRegressionRanker(t *testing.T) {
	r := &SparseRegressionRanker{}
	ds := planted(ml.Regression, 200, 2, 10, 13)
	scores, err := r.Rank(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	signalOnTop(t, "sparse regression", scores, 2)
}

func TestLassoRankerRegressionOnly(t *testing.T) {
	r := &LassoRanker{}
	ds := planted(ml.Regression, 200, 2, 6, 14)
	scores, err := r.Rank(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	signalOnTop(t, "lasso", scores, 2)
	cds := planted(ml.Classification, 50, 1, 1, 14)
	if _, err := r.Rank(cds, 1); err == nil {
		t.Fatal("lasso must reject classification")
	}
	if r.Supports(ml.Classification) {
		t.Fatal("lasso Supports(classification) should be false")
	}
}

func TestLogisticAndSVCRankersClassificationOnly(t *testing.T) {
	ds := planted(ml.Classification, 300, 2, 6, 15)
	for _, r := range []Ranker{&LogisticRanker{}, &LinearSVCRanker{}} {
		scores, err := r.Rank(ds, 1)
		if err != nil {
			t.Fatal(err)
		}
		signalOnTop(t, r.Name(), scores, 2)
		if r.Supports(ml.Regression) {
			t.Fatalf("%s should not support regression", r.Name())
		}
	}
}

func TestReliefRankerClassification(t *testing.T) {
	r := &ReliefRanker{K: 5, Samples: 100}
	ds := planted(ml.Classification, 250, 2, 5, 16)
	scores, err := r.Rank(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	signalOnTop(t, "relief", scores, 2)
}

func TestReliefRankerRegression(t *testing.T) {
	r := &ReliefRanker{K: 7, Samples: 120}
	ds := planted(ml.Regression, 250, 2, 4, 17)
	scores, err := r.Rank(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	// RReliefF is noisier; require signal features in the top half.
	order := Order(scores)
	top := map[int]bool{}
	for _, j := range order[:3] {
		top[j] = true
	}
	if !top[0] && !top[1] {
		t.Fatalf("rrelief lost both signal features: order = %v", order)
	}
}

func TestChiSquaredRanker(t *testing.T) {
	// Chi² needs non-negative features.
	n := 200
	d := 4
	x := make([]float64, n*d)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < n; i++ {
		label := i % 2
		y[i] = float64(label)
		x[i*d] = float64(label*3) + rng.Float64()
		for j := 1; j < d; j++ {
			x[i*d+j] = rng.Float64() * 3
		}
	}
	ds, _ := ml.NewDataset(x, n, d, y, ml.Classification, 2)
	r := &ChiSquaredRanker{}
	scores, err := r.Rank(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	signalOnTop(t, "chi-squared", scores, 1)
}

func TestExponentialSearchFindsPlantedSize(t *testing.T) {
	ds := planted(ml.Classification, 400, 4, 28, 19)
	order := make([]int, ds.D)
	for i := range order {
		order[i] = i // signal first: the ideal ordering
	}
	sel := ExponentialSearch(ds, order, fastForest(1), 20)
	if len(sel) < 2 || len(sel) > 16 {
		t.Fatalf("selected %d features from ideal ordering, want a small prefix", len(sel))
	}
	for _, j := range sel[:2] {
		if j >= 4 {
			t.Fatalf("top of selection should be signal features, got %v", sel)
		}
	}
}

func TestRankingSelectorEndToEnd(t *testing.T) {
	ds := planted(ml.Regression, 300, 3, 20, 21)
	s := &RankingSelector{Ranker: &FTestRanker{}}
	sel, err := s.Select(ds, fastForest(2), 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("selector returned nothing")
	}
	hits := 0
	for _, j := range sel {
		if j < 3 {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("selected %v, want most signal features", sel)
	}
}

func TestForwardSelector(t *testing.T) {
	ds := planted(ml.Classification, 300, 2, 10, 23)
	s := &ForwardSelector{MaxFeatures: 6, MaxCandidates: -1}
	sel, err := s.Select(ds, fastForest(3), 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("forward selection chose nothing")
	}
	if sel[0] >= 2 {
		t.Fatalf("first greedy pick %d should be a signal feature", sel[0])
	}
}

func TestBackwardSelector(t *testing.T) {
	ds := planted(ml.Classification, 200, 2, 6, 25)
	s := &BackwardSelector{MaxCandidates: -1}
	sel, err := s.Select(ds, fastForest(4), 26)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) < 2 {
		t.Fatalf("backward elimination kept %d features", len(sel))
	}
	keep := map[int]bool{}
	for _, j := range sel {
		keep[j] = true
	}
	if !keep[0] && !keep[1] {
		t.Fatal("backward elimination removed all signal features")
	}
}

func TestRFESelector(t *testing.T) {
	ds := planted(ml.Classification, 300, 2, 14, 27)
	s := &RFESelector{}
	sel, err := s.Select(ds, fastForest(5), 28)
	if err != nil {
		t.Fatal(err)
	}
	keep := map[int]bool{}
	for _, j := range sel {
		keep[j] = true
	}
	if !keep[0] || !keep[1] {
		t.Fatalf("rfe dropped signal features: %v", sel)
	}
}

func TestRegistry(t *testing.T) {
	for _, m := range AllMethods() {
		sel, err := New(m)
		if err != nil {
			t.Fatalf("New(%s): %v", m, err)
		}
		if sel.Name() != string(m) {
			t.Fatalf("selector name %q != method %q", sel.Name(), m)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown method should error")
	}
	clsMethods := MethodsFor(ml.Classification)
	for _, m := range clsMethods {
		if m == MethodLasso {
			t.Fatal("lasso should be excluded for classification")
		}
	}
	regMethods := MethodsFor(ml.Regression)
	for _, m := range regMethods {
		if m == MethodLogistic || m == MethodLinearSVC {
			t.Fatalf("%s should be excluded for regression", m)
		}
	}
}
