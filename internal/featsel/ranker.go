// Package featsel implements every feature-selection method evaluated in the
// ARDA paper (§5–§6): filter rankers (F-test, mutual information,
// chi-squared), embedded rankers (random forest importances, ℓ2,1 sparse
// regression, lasso, logistic regression, linear SVM, Relief), wrapper
// searches (forward selection, backward elimination, recursive feature
// elimination, and the Bentley–Yao exponential/binary subset search), and the
// paper's contribution: RIFS, random-injection feature selection.
package featsel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/stats"
)

// Ranker scores every feature of a dataset; higher scores indicate more
// promising features.
type Ranker interface {
	// Name returns the paper's name for the method.
	Name() string
	// Rank returns one score per feature column of ds.
	Rank(ds *ml.Dataset, seed int64) ([]float64, error)
	// Supports reports whether the ranker applies to the task (e.g. lasso is
	// regression-only, logistic regression classification-only).
	Supports(task ml.Task) bool
}

// RanksOf converts raw scores into normalized ranks in [0, 1]: the best
// feature gets 1, the worst 0, ties share the mean of their positions. NaN
// scores rank lowest.
func RanksOf(scores []float64) []float64 {
	n := len(scores)
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if math.IsNaN(sa) {
			return true
		}
		if math.IsNaN(sb) {
			return false
		}
		return sa < sb
	})
	for pos := 0; pos < n; {
		end := pos + 1
		for end < n && scores[order[end]] == scores[order[pos]] {
			end++
		}
		mean := float64(pos+end-1) / 2 / float64(n-1)
		for p := pos; p < end; p++ {
			out[order[p]] = mean
		}
		pos = end
	}
	return out
}

// Order returns feature indices sorted by descending score (ties broken by
// index for determinism).
func Order(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if math.IsNaN(sa) {
			sa = math.Inf(-1)
		}
		if math.IsNaN(sb) {
			sb = math.Inf(-1)
		}
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// ForestRanker ranks features by random-forest mean-decrease-impurity.
type ForestRanker struct {
	// NTrees, MaxDepth configure the ranking forest (defaults 60, 12).
	NTrees, MaxDepth int
	// TreeDur, when non-nil, observes each ranking tree's fit latency —
	// RIFS threads the run's "select.tree_fit" histogram here.
	TreeDur *obs.Histogram
}

// Name implements Ranker.
func (r *ForestRanker) Name() string { return "random forest" }

// Supports implements Ranker: both tasks.
func (r *ForestRanker) Supports(ml.Task) bool { return true }

// Rank implements Ranker.
func (r *ForestRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	nTrees := r.NTrees
	if nTrees <= 0 {
		nTrees = 60
	}
	depth := r.MaxDepth
	if depth <= 0 {
		depth = 12
	}
	f := ml.FitForest(ds, ml.ForestConfig{
		NTrees:   nTrees,
		MaxDepth: depth,
		Seed:     seed,
		Parallel: true,
		TreeDur:  r.TreeDur,
	})
	return f.Importances(), nil
}

// SparseRegressionRanker ranks features by the row norms of the ℓ2,1
// sparse-regression solution (§6.2).
type SparseRegressionRanker struct {
	Config ml.Sparse21Config
}

// Name implements Ranker.
func (r *SparseRegressionRanker) Name() string { return "sparse regression" }

// Supports implements Ranker: both tasks.
func (r *SparseRegressionRanker) Supports(ml.Task) bool { return true }

// Rank implements Ranker.
func (r *SparseRegressionRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	cfg := r.Config
	cfg.Seed = seed
	if cfg.MaxRows == 0 {
		cfg.MaxRows = 256
	}
	res, err := ml.SolveSparse21(ds, cfg)
	if err != nil {
		return nil, fmt.Errorf("featsel: sparse regression: %w", err)
	}
	return res.RowNorms, nil
}

// LassoRanker ranks features by |coefficient| of a lasso fit (regression
// tasks only, as in the paper's Table 1).
type LassoRanker struct {
	Lambda float64
}

// Name implements Ranker.
func (r *LassoRanker) Name() string { return "lasso" }

// Supports implements Ranker: regression only.
func (r *LassoRanker) Supports(t ml.Task) bool { return t == ml.Regression }

// Rank implements Ranker.
func (r *LassoRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	if ds.Task != ml.Regression {
		return nil, fmt.Errorf("featsel: lasso ranks regression tasks only")
	}
	m := ml.FitLasso(ds, ml.LassoConfig{Lambda: r.Lambda})
	out := make([]float64, ds.D)
	for j, w := range m.Coefficients() {
		out[j] = math.Abs(w)
	}
	return out, nil
}

// LogisticRanker ranks features by per-feature weight norm of a softmax
// regression (classification only).
type LogisticRanker struct {
	Config ml.LogisticConfig
}

// Name implements Ranker.
func (r *LogisticRanker) Name() string { return "logistic reg" }

// Supports implements Ranker: classification only.
func (r *LogisticRanker) Supports(t ml.Task) bool { return t == ml.Classification }

// Rank implements Ranker.
func (r *LogisticRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	if ds.Task != ml.Classification {
		return nil, fmt.Errorf("featsel: logistic regression ranks classification tasks only")
	}
	m := ml.FitLogistic(ds, r.Config)
	return m.FeatureWeights(), nil
}

// LinearSVCRanker ranks features by per-feature weight norm of a linear SVM
// (classification only).
type LinearSVCRanker struct {
	Config ml.SVMConfig
}

// Name implements Ranker.
func (r *LinearSVCRanker) Name() string { return "linear svc" }

// Supports implements Ranker: classification only.
func (r *LinearSVCRanker) Supports(t ml.Task) bool { return t == ml.Classification }

// Rank implements Ranker.
func (r *LinearSVCRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	if ds.Task != ml.Classification {
		return nil, fmt.Errorf("featsel: linear SVC ranks classification tasks only")
	}
	cfg := r.Config
	cfg.Seed = seed
	m := ml.FitLinearSVM(ds, cfg)
	return m.FeatureWeights(), nil
}

// FTestRanker ranks features by the ANOVA F statistic (classification) or
// the univariate regression F statistic.
type FTestRanker struct{}

// Name implements Ranker.
func (r *FTestRanker) Name() string { return "f-test" }

// Supports implements Ranker: both tasks.
func (r *FTestRanker) Supports(ml.Task) bool { return true }

// Rank implements Ranker.
func (r *FTestRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	out := make([]float64, ds.D)
	col := make([]float64, ds.N)
	if ds.Task == ml.Classification {
		labels := make([]int, ds.N)
		for i := range labels {
			labels[i] = ds.Label(i)
		}
		for j := 0; j < ds.D; j++ {
			extractCol(ds, j, col)
			out[j] = stats.FClassif(col, labels, ds.Classes)
		}
		return out, nil
	}
	for j := 0; j < ds.D; j++ {
		extractCol(ds, j, col)
		out[j] = stats.FRegression(col, ds.Y)
	}
	return out, nil
}

// MutualInfoRanker ranks features by binned mutual information with the
// target (the target itself is binned for regression).
type MutualInfoRanker struct {
	// Bins is the maximum number of equal-frequency bins (default 16).
	Bins int
}

// Name implements Ranker.
func (r *MutualInfoRanker) Name() string { return "mutual info" }

// Supports implements Ranker: both tasks.
func (r *MutualInfoRanker) Supports(ml.Task) bool { return true }

// Rank implements Ranker.
func (r *MutualInfoRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	bins := r.Bins
	if bins <= 0 {
		bins = 16
	}
	var labels []int
	var numLabels int
	if ds.Task == ml.Classification {
		labels = make([]int, ds.N)
		for i := range labels {
			labels[i] = ds.Label(i)
		}
		numLabels = ds.Classes
	} else {
		labels, numLabels = stats.EqualFrequencyBins(ds.Y, bins)
	}
	out := make([]float64, ds.D)
	col := make([]float64, ds.N)
	for j := 0; j < ds.D; j++ {
		extractCol(ds, j, col)
		xb, nx := stats.EqualFrequencyBins(col, bins)
		out[j] = stats.MutualInformation(xb, nx, labels, numLabels)
	}
	return out, nil
}

// ChiSquaredRanker ranks non-negative features by the chi-squared statistic
// against class labels.
type ChiSquaredRanker struct{}

// Name implements Ranker.
func (r *ChiSquaredRanker) Name() string { return "chi-squared" }

// Supports implements Ranker: classification only.
func (r *ChiSquaredRanker) Supports(t ml.Task) bool { return t == ml.Classification }

// Rank implements Ranker.
func (r *ChiSquaredRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	if ds.Task != ml.Classification {
		return nil, fmt.Errorf("featsel: chi-squared ranks classification tasks only")
	}
	labels := make([]int, ds.N)
	for i := range labels {
		labels[i] = ds.Label(i)
	}
	out := make([]float64, ds.D)
	col := make([]float64, ds.N)
	for j := 0; j < ds.D; j++ {
		extractCol(ds, j, col)
		out[j] = stats.ChiSquared(col, labels, ds.Classes)
	}
	return out, nil
}

// extractCol copies feature column j of ds into dst.
func extractCol(ds *ml.Dataset, j int, dst []float64) {
	for i := 0; i < ds.N; i++ {
		dst[i] = ds.At(i, j)
	}
}

// shuffled returns a permutation RNG seeded deterministically.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
