package featsel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arda-ml/arda/internal/ml"
)

func TestExponentialSearchTinyFeatureSet(t *testing.T) {
	ds := planted(ml.Classification, 60, 1, 0, 41)
	sel := ExponentialSearch(ds, []int{0}, fastForest(1), 42)
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("single-feature search = %v", sel)
	}
}

func TestExponentialSearchAllGood(t *testing.T) {
	// Every feature informative: search should keep growing to the full set
	// or stop harmlessly — never return an empty set.
	ds := planted(ml.Regression, 120, 6, 0, 43)
	order := []int{0, 1, 2, 3, 4, 5}
	sel := ExponentialSearch(ds, order, fastForest(2), 44)
	if len(sel) < 2 {
		t.Fatalf("selected %d features from an all-signal set", len(sel))
	}
}

func TestAllFeaturesSelector(t *testing.T) {
	ds := planted(ml.Regression, 30, 1, 4, 45)
	sel, err := AllFeatures{}.Select(ds, fastForest(3), 46)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != ds.D {
		t.Fatalf("all-features returned %d of %d", len(sel), ds.D)
	}
	for i, j := range sel {
		if i != j {
			t.Fatal("all-features must return the identity selection")
		}
	}
}

func TestBackwardSelectorMaxRounds(t *testing.T) {
	ds := planted(ml.Classification, 120, 2, 20, 47)
	s := &BackwardSelector{MaxCandidates: 5, MaxRounds: 3}
	sel, err := s.Select(ds, fastForest(4), 48)
	if err != nil {
		t.Fatal(err)
	}
	// At most 3 removals from 22 features.
	if len(sel) < ds.D-3 {
		t.Fatalf("MaxRounds 3 removed %d features", ds.D-len(sel))
	}
}

func TestForwardSelectorMaxFeatures(t *testing.T) {
	ds := planted(ml.Classification, 150, 6, 2, 49)
	s := &ForwardSelector{MaxFeatures: 3, MaxCandidates: -1}
	sel, err := s.Select(ds, fastForest(5), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) > 3 {
		t.Fatalf("MaxFeatures 3 selected %d", len(sel))
	}
}

// Property: Order returns a permutation sorted by descending score.
func TestOrderProperty(t *testing.T) {
	f := func(scores []float64) bool {
		o := Order(scores)
		if len(o) != len(scores) {
			return false
		}
		seen := make([]bool, len(scores))
		for _, j := range o {
			if j < 0 || j >= len(scores) || seen[j] {
				return false
			}
			seen[j] = true
		}
		for i := 1; i < len(o); i++ {
			a, b := scores[o[i-1]], scores[o[i]]
			// NaNs sort last; otherwise non-increasing.
			if !isNaN(a) && !isNaN(b) && a < b {
				return false
			}
			if isNaN(a) && !isNaN(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RanksOf is equivariant under permutation — permuting the scores
// permutes the ranks identically.
func TestRanksPermutationProperty(t *testing.T) {
	f := func(scores []float64, seed int64) bool {
		if len(scores) < 2 {
			return true
		}
		ranks := RanksOf(scores)
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(scores))
		shuffled := make([]float64, len(scores))
		for i, p := range perm {
			shuffled[i] = scores[p]
		}
		shuffledRanks := RanksOf(shuffled)
		for i, p := range perm {
			if shuffledRanks[i] != ranks[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// isNaN avoids importing math just for the property.
func isNaN(v float64) bool { return v != v }
