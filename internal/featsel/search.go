package featsel

import (
	"context"
	"fmt"
	"math"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/ml"
)

// Selector chooses a subset of feature columns that should improve a
// downstream model. est is the estimator used by wrapper-style searches to
// score candidate subsets on a holdout split.
type Selector interface {
	// Name returns the paper's name for the method.
	Name() string
	// Supports reports whether the selector applies to the task.
	Supports(task ml.Task) bool
	// Select returns the chosen feature column indices (ascending order not
	// guaranteed; may be empty when nothing helps).
	Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error)
}

// ContextSelector is a Selector that also supports cooperative cancellation.
// The pipeline prefers SelectCtx when the configured selector implements it,
// so a canceled or deadline-bounded run stops selection promptly instead of
// draining the repetition queue. The context must only gate scheduling: a
// SelectCtx call that completes must return exactly what Select would, so
// selection stays bit-identical whether or not a context is supplied.
type ContextSelector interface {
	Selector
	// SelectCtx is Select under ctx; once ctx is done it returns ctx.Err()
	// (possibly wrapped). A nil ctx never cancels.
	SelectCtx(ctx context.Context, ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error)
}

// subsetScorer evaluates feature subsets on a fixed holdout split with
// memoization keyed by the subset's prefix length in a fixed order.
type subsetScorer struct {
	ds    *ml.Dataset
	split eval.Split
	est   eval.Fitter
}

// newSubsetScorer fixes a stratified holdout split for all evaluations of a
// single selector run, so subset comparisons are apples-to-apples.
func newSubsetScorer(ds *ml.Dataset, est eval.Fitter, seed int64) *subsetScorer {
	return &subsetScorer{ds: ds, split: eval.TrainTestSplit(ds, 0.25, seed), est: est}
}

// score trains est on the training side restricted to cols and returns the
// holdout task score. Scoring gathers the subset straight from the dataset
// into pooled scratch (eval.HoldoutSubsetScore) instead of materializing a
// fresh matrix per candidate subset.
func (s *subsetScorer) score(cols []int) float64 {
	if len(cols) == 0 {
		return math.Inf(-1)
	}
	return eval.HoldoutSubsetScore(s.ds, s.split, s.est, cols)
}

// ExponentialSearch implements the paper's §6.3 subset search over a feature
// ordering: test 2, 4, 8, … features until the holdout score first decreases
// at 2^k, then binary-search [2^(k−1), 2^k] (Bentley–Yao); the best size seen
// wins.
func ExponentialSearch(ds *ml.Dataset, order []int, est eval.Fitter, seed int64) []int {
	scorer := newSubsetScorer(ds, est, seed)
	cache := map[int]float64{}
	at := func(k int) float64 {
		if k <= 0 {
			return math.Inf(-1)
		}
		if k > len(order) {
			k = len(order)
		}
		if v, ok := cache[k]; ok {
			return v
		}
		v := scorer.score(order[:k])
		cache[k] = v
		return v
	}
	bestK, bestScore := 0, math.Inf(-1)
	consider := func(k int) {
		if k > len(order) {
			k = len(order)
		}
		if s := at(k); s > bestScore {
			bestK, bestScore = k, s
		}
	}
	prev := math.Inf(-1)
	k := 2
	decreasedAt := 0
	for {
		if k > len(order) {
			k = len(order)
		}
		s := at(k)
		consider(k)
		if s < prev {
			decreasedAt = k
			break
		}
		prev = s
		if k == len(order) {
			break
		}
		k *= 2
	}
	if decreasedAt > 2 {
		lo, hi := decreasedAt/2, decreasedAt
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			consider(mid)
			if at(mid) >= at(lo) {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	if bestK == 0 {
		bestK = minInt(2, len(order))
	}
	out := make([]int, bestK)
	copy(out, order[:bestK])
	return out
}

// RankingSelector pairs a Ranker with the exponential subset search — the
// construction the paper uses for random forest, sparse regression, mutual
// information, logistic regression, lasso, relief, linear SVM and f-test.
type RankingSelector struct {
	Ranker Ranker
}

// Name implements Selector.
func (s *RankingSelector) Name() string { return s.Ranker.Name() }

// Supports implements Selector.
func (s *RankingSelector) Supports(t ml.Task) bool { return s.Ranker.Supports(t) }

// Select implements Selector.
func (s *RankingSelector) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	scores, err := s.Ranker.Rank(ds, seed)
	if err != nil {
		return nil, err
	}
	return ExponentialSearch(ds, Order(scores), est, seed), nil
}

// AllFeatures is the no-selection baseline ("all features" rows in the
// paper's tables).
type AllFeatures struct{}

// Name implements Selector.
func (AllFeatures) Name() string { return "all features" }

// Supports implements Selector.
func (AllFeatures) Supports(ml.Task) bool { return true }

// Select implements Selector.
func (AllFeatures) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	out := make([]int, ds.D)
	for i := range out {
		out[i] = i
	}
	return out, nil
}

// ForwardSelector greedily adds the feature whose addition most improves the
// holdout score, stopping when no candidate improves it (§5 wrapper model).
type ForwardSelector struct {
	// MaxFeatures bounds the subset size (default min(d, 64)).
	MaxFeatures int
	// MaxCandidates caps candidates evaluated per round (random subsample;
	// default 40; <= 0 means all remaining features).
	MaxCandidates int
}

// Name implements Selector.
func (s *ForwardSelector) Name() string { return "forward selection" }

// Supports implements Selector.
func (s *ForwardSelector) Supports(ml.Task) bool { return true }

// Select implements Selector.
func (s *ForwardSelector) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	maxF := s.MaxFeatures
	if maxF <= 0 {
		maxF = minInt(ds.D, 64)
	}
	maxC := s.MaxCandidates
	if maxC == 0 {
		maxC = 40
	}
	scorer := newSubsetScorer(ds, est, seed)
	rng := newRNG(seed + 1)
	selected := []int{}
	inSet := make([]bool, ds.D)
	current := math.Inf(-1)
	for len(selected) < maxF {
		remaining := make([]int, 0, ds.D)
		for j := 0; j < ds.D; j++ {
			if !inSet[j] {
				remaining = append(remaining, j)
			}
		}
		if len(remaining) == 0 {
			break
		}
		if maxC > 0 && len(remaining) > maxC {
			rng.Shuffle(len(remaining), func(a, b int) {
				remaining[a], remaining[b] = remaining[b], remaining[a]
			})
			remaining = remaining[:maxC]
		}
		bestJ, bestScore := -1, current
		for _, j := range remaining {
			cand := append(append([]int{}, selected...), j)
			if sc := scorer.score(cand); sc > bestScore {
				bestJ, bestScore = j, sc
			}
		}
		if bestJ < 0 {
			break
		}
		selected = append(selected, bestJ)
		inSet[bestJ] = true
		current = bestScore
	}
	return selected, nil
}

// BackwardSelector starts from all features and greedily removes the feature
// whose removal most improves (or least degrades, above tolerance) the
// holdout score, stopping when no removal improves it.
type BackwardSelector struct {
	// MaxCandidates caps removal candidates evaluated per round (random
	// subsample; default 30; <= 0 means all).
	MaxCandidates int
	// MinFeatures stops elimination at this subset size (default 2).
	MinFeatures int
	// MaxRounds bounds elimination rounds (0 = unlimited). True backward
	// elimination is O(d²) model fits — the paper reports it as by far the
	// slowest method — so harnesses set a budget.
	MaxRounds int
}

// Name implements Selector.
func (s *BackwardSelector) Name() string { return "backward selection" }

// Supports implements Selector.
func (s *BackwardSelector) Supports(ml.Task) bool { return true }

// Select implements Selector.
func (s *BackwardSelector) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	minF := s.MinFeatures
	if minF <= 0 {
		minF = 2
	}
	maxC := s.MaxCandidates
	if maxC == 0 {
		maxC = 30
	}
	scorer := newSubsetScorer(ds, est, seed)
	rng := newRNG(seed + 2)
	selected := make([]int, ds.D)
	for i := range selected {
		selected[i] = i
	}
	current := scorer.score(selected)
	for round := 0; len(selected) > minF; round++ {
		if s.MaxRounds > 0 && round >= s.MaxRounds {
			break
		}
		cands := make([]int, len(selected))
		for i := range cands {
			cands[i] = i // positions within selected
		}
		if maxC > 0 && len(cands) > maxC {
			rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
			cands = cands[:maxC]
		}
		bestPos, bestScore := -1, current
		for _, pos := range cands {
			trial := make([]int, 0, len(selected)-1)
			trial = append(trial, selected[:pos]...)
			trial = append(trial, selected[pos+1:]...)
			if sc := scorer.score(trial); sc >= bestScore {
				bestPos, bestScore = pos, sc
			}
		}
		if bestPos < 0 {
			break
		}
		selected = append(selected[:bestPos], selected[bestPos+1:]...)
		current = bestScore
	}
	return selected, nil
}

// RFESelector is recursive feature elimination with a random-forest ranker:
// repeatedly drop the lowest-importance fraction, tracking the best holdout
// subset.
type RFESelector struct {
	// DropFrac is the fraction removed per round (default 0.2).
	DropFrac float64
	// MinFeatures stops elimination at this size (default 2).
	MinFeatures int
	// Ranker overrides the per-round ranker (default ForestRanker).
	Ranker Ranker
}

// Name implements Selector.
func (s *RFESelector) Name() string { return "rfe" }

// Supports implements Selector.
func (s *RFESelector) Supports(ml.Task) bool { return true }

// Select implements Selector.
func (s *RFESelector) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	drop := s.DropFrac
	if drop <= 0 || drop >= 1 {
		drop = 0.2
	}
	minF := s.MinFeatures
	if minF <= 0 {
		minF = 2
	}
	ranker := s.Ranker
	if ranker == nil {
		ranker = &ForestRanker{}
	}
	scorer := newSubsetScorer(ds, est, seed)
	selected := make([]int, ds.D)
	for i := range selected {
		selected[i] = i
	}
	best := append([]int{}, selected...)
	bestScore := scorer.score(selected)
	round := 0
	for len(selected) > minF {
		round++
		sub := ds.View(selected)
		scores, err := ranker.Rank(sub, seed+int64(round))
		if err != nil {
			return nil, fmt.Errorf("featsel: rfe round %d: %w", round, err)
		}
		order := Order(scores) // descending within sub-index space
		keep := len(selected) - maxInt(1, int(float64(len(selected))*drop))
		if keep < minF {
			keep = minF
		}
		next := make([]int, keep)
		for i := 0; i < keep; i++ {
			next[i] = selected[order[i]]
		}
		selected = next
		if sc := scorer.score(selected); sc > bestScore {
			bestScore = sc
			best = append(best[:0], selected...)
		}
	}
	return best, nil
}

// minInt returns the smaller of a and b.
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
