package featsel

import (
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/parallel"
)

// benchSpeedup times f on one worker and on every available core and reports
// the ratio as the "speedup_x" metric (≈1 on a single-core machine).
func benchSpeedup(b *testing.B, f func()) {
	defer parallel.SetMaxWorkers(0)
	min := func() time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 2; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	parallel.SetMaxWorkers(1)
	seq := min()
	parallel.SetMaxWorkers(0)
	par := min()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f()
	}
	b.StopTimer()
	// ResetTimer deletes user metrics, so report after the measured loop.
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_x")
	}
	b.ReportMetric(float64(parallel.MaxWorkers()), "workers")
}

// BenchmarkRStar measures the K parallel injection repetitions of RIFS —
// the pipeline's dominant cost (paper §7, Figure 4) — at 1 worker vs all
// cores. The selected r* vector is identical either way; only wall-clock
// changes.
func BenchmarkRStar(b *testing.B) {
	ds := planted(ml.Classification, 300, 3, 30, 71)
	r := &RIFS{Config: RIFSConfig{K: 8, Forest: ForestRanker{NTrees: 20, MaxDepth: 8}}}
	benchSpeedup(b, func() {
		if _, err := r.RStar(ds, 72); err != nil {
			b.Fatal(err)
		}
	})
}
