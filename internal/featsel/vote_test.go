package featsel

import (
	"testing"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/ml"
)

// fixedSelector returns a canned selection (for ensemble-logic tests).
type fixedSelector struct {
	name string
	cols []int
	task ml.Task
	all  bool
}

func (f *fixedSelector) Name() string { return f.name }
func (f *fixedSelector) Supports(t ml.Task) bool {
	return f.all || t == f.task
}
func (f *fixedSelector) Select(*ml.Dataset, eval.Fitter, int64) ([]int, error) {
	return f.cols, nil
}

func TestVoteMajority(t *testing.T) {
	ds := planted(ml.Classification, 40, 2, 3, 90)
	v := &VoteSelector{Selectors: []Selector{
		&fixedSelector{name: "a", cols: []int{0, 1, 2}, all: true},
		&fixedSelector{name: "b", cols: []int{0, 1, 3}, all: true},
		&fixedSelector{name: "c", cols: []int{0, 4}, all: true},
	}}
	got, err := v.Select(ds, fastForest(1), 91)
	if err != nil {
		t.Fatal(err)
	}
	// Majority of 3 = 2 votes: features 0 (3 votes) and 1 (2 votes).
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("majority vote = %v, want [0 1]", got)
	}
}

func TestVoteMinVotesOverride(t *testing.T) {
	ds := planted(ml.Classification, 40, 2, 3, 92)
	v := &VoteSelector{
		MinVotes: 1, // union
		Selectors: []Selector{
			&fixedSelector{name: "a", cols: []int{0}, all: true},
			&fixedSelector{name: "b", cols: []int{4}, all: true},
		},
	}
	got, err := v.Select(ds, fastForest(2), 93)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("union vote = %v", got)
	}
}

func TestVoteSkipsUnsupportedMembers(t *testing.T) {
	ds := planted(ml.Regression, 40, 1, 2, 94)
	v := &VoteSelector{Selectors: []Selector{
		&fixedSelector{name: "clf-only", cols: []int{2}, task: ml.Classification},
		&fixedSelector{name: "reg", cols: []int{0}, task: ml.Regression},
	}}
	got, err := v.Select(ds, fastForest(3), 95)
	if err != nil {
		t.Fatal(err)
	}
	// Only the regression member votes; majority of 1 is 1.
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("vote with abstention = %v", got)
	}
	if !v.Supports(ml.Classification) || !v.Supports(ml.Regression) {
		t.Fatal("ensemble should support any task a member supports")
	}
}

func TestVoteNoApplicableMembers(t *testing.T) {
	ds := planted(ml.Regression, 20, 1, 1, 96)
	v := &VoteSelector{Selectors: []Selector{
		&fixedSelector{name: "clf-only", cols: []int{0}, task: ml.Classification},
	}}
	if _, err := v.Select(ds, fastForest(4), 97); err == nil {
		t.Fatal("no applicable member should error")
	}
}

func TestVoteRealSelectorsParallel(t *testing.T) {
	ds := planted(ml.Classification, 250, 3, 17, 98)
	v := &VoteSelector{
		Parallel: true,
		Selectors: []Selector{
			&RankingSelector{Ranker: &FTestRanker{}},
			&RankingSelector{Ranker: &MutualInfoRanker{}},
			&RankingSelector{Ranker: &ForestRanker{NTrees: 20}},
		},
	}
	got, err := v.Select(ds, fastForest(5), 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("ensemble selected nothing")
	}
	keep := map[int]bool{}
	for _, j := range got {
		keep[j] = true
	}
	hits := 0
	for j := 0; j < 3; j++ {
		if keep[j] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("ensemble lost the signal: %v", got)
	}
}
