package featsel

import (
	"math"
	"testing"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/obs"
)

// TestNuDefaulting pins the NuSet sentinel semantics: a zero Nu is "unset"
// (defaults to 0.5) unless NuSet marks it as an intentional sparse-only
// endpoint; out-of-range values fall back to 0.5.
func TestNuDefaulting(t *testing.T) {
	cases := []struct {
		name string
		cfg  RIFSConfig
		want float64
	}{
		{"unset", RIFSConfig{}, 0.5},
		{"explicit_zero", RIFSConfig{Nu: 0, NuSet: true}, 0},
		{"explicit_one", RIFSConfig{Nu: 1}, 1},
		{"mid", RIFSConfig{Nu: 0.3}, 0.3},
		{"below_range", RIFSConfig{Nu: -0.2, NuSet: true}, 0.5},
		{"above_range", RIFSConfig{Nu: 1.5}, 0.5},
	}
	for _, tc := range cases {
		tc.cfg.defaults()
		if tc.cfg.Nu != tc.want {
			t.Fatalf("%s: Nu defaulted to %v, want %v", tc.name, tc.cfg.Nu, tc.want)
		}
	}
}

// TestNuEndpointsExact: at ν = 1 the aggregate ranking must equal the forest
// ranking alone, and at ν = 0 (with NuSet) the sparse ranking alone —
// bit-identical, since the skipped half's weight is exactly zero.
func TestNuEndpointsExact(t *testing.T) {
	ds := planted(ml.Regression, 120, 2, 10, 5)
	r := &RIFS{}

	cfg := RIFSConfig{Nu: 1, Forest: ForestRanker{NTrees: 10, MaxDepth: 6}}
	cfg.defaults()
	agg, err := r.aggregateRanking(&cfg, ds, 17)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := cfg.Forest.Rank(ds, 17)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range RanksOf(rf) {
		if agg[j] != want {
			t.Fatalf("nu=1: agg[%d] = %v, want forest rank %v", j, agg[j], want)
		}
	}

	cfg = RIFSConfig{Nu: 0, NuSet: true, Forest: ForestRanker{NTrees: 10, MaxDepth: 6}}
	cfg.defaults()
	agg, err = r.aggregateRanking(&cfg, ds, 17)
	if err != nil {
		t.Fatal(err)
	}
	sr := &SparseRegressionRanker{Config: cfg.Sparse}
	ss, err := sr.Rank(ds, 17)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range RanksOf(ss) {
		if agg[j] != want {
			t.Fatalf("nu=0: agg[%d] = %v, want sparse rank %v", j, agg[j], want)
		}
	}
}

// TestNuEndpointsSelect: both endpoints must run end to end and return a
// valid subset of feature indices.
func TestNuEndpointsSelect(t *testing.T) {
	ds := planted(ml.Regression, 150, 2, 12, 41)
	for _, cfg := range []RIFSConfig{
		{Nu: 1, K: 4, Forest: ForestRanker{NTrees: 10, MaxDepth: 6}},
		{Nu: 0, NuSet: true, K: 4, Forest: ForestRanker{NTrees: 10, MaxDepth: 6}},
	} {
		r := &RIFS{Config: cfg}
		sel, err := r.Select(ds, fastForest(3), 42)
		if err != nil {
			t.Fatalf("nu=%v: %v", cfg.Nu, err)
		}
		for _, j := range sel {
			if j < 0 || j >= ds.D {
				t.Fatalf("nu=%v: selected column %d out of range", cfg.Nu, j)
			}
		}
	}
}

// TestNeededCounts pins the threshold → minimum-count mapping, including the
// floating-point fix-up at exact multiples.
func TestNeededCounts(t *testing.T) {
	if neededCounts(nil, 10) != nil {
		t.Fatal("nil thresholds must disable early termination")
	}
	def := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	got := neededCounts(def, 10)
	for i, want := range []int{2, 4, 6, 8, 10} {
		if got[i] != want {
			t.Fatalf("K=10 need[%d] = %d, want %d", i, got[i], want)
		}
	}
	got = neededCounts(def, 4)
	for i, want := range []int{1, 2, 3, 4, 4} {
		if got[i] != want {
			t.Fatalf("K=4 need[%d] = %d, want %d", i, got[i], want)
		}
	}
	// Definitional check across K: need[τ] is the smallest c whose float64
	// fraction clears τ, under the same division rstar uses.
	for k := 1; k <= 12; k++ {
		for _, tau := range []float64{0.1, 1.0 / 3, 0.5, 0.75, 0.9, 1} {
			c := neededCounts([]float64{tau}, k)[0]
			if c > 0 && float64(c-1)/float64(k) >= tau {
				t.Fatalf("K=%d tau=%v: need %d not minimal", k, tau, c)
			}
			if c <= k && float64(c)/float64(k) < tau {
				t.Fatalf("K=%d tau=%v: need %d does not clear tau", k, tau, c)
			}
		}
	}
}

// TestCountDecidedEnumeration brute-forces the decision rule: a count is
// decided iff every possible completion (0..rem more hits) lands in the same
// threshold buckets.
func TestCountDecidedEnumeration(t *testing.T) {
	k := 10
	need := neededCounts([]float64{0.2, 0.4, 0.6, 0.8, 1.0}, k)
	for done := 0; done <= k; done++ {
		rem := k - done
		for c := 0; c <= done; c++ {
			// A final count can be anything in [c, c+rem]; membership is
			// undecided iff some bucket flips across those completions.
			undecided := false
			for _, cn := range need {
				for extra := 0; extra <= rem; extra++ {
					if (c+extra >= cn) != (c >= cn) {
						undecided = true
					}
				}
			}
			if countDecided(c, need, rem) != !undecided {
				t.Fatalf("done=%d c=%d: countDecided=%v, enumeration says undecided=%v",
					done, c, countDecided(c, need, rem), undecided)
			}
		}
	}
}

// TestRepSchedule pins the wave schedule: barriers only exist at decision
// points where termination is arithmetically possible, so K=4 with the
// default grid runs as one barrier-free wave while K=10 checks once at 9.
func TestRepSchedule(t *testing.T) {
	if w := repSchedule(7, nil); len(w) != 1 || w[0] != 7 {
		t.Fatalf("nil need: schedule %v, want [7]", w)
	}
	def := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if w := repSchedule(4, neededCounts(def, 4)); len(w) != 1 || w[0] != 4 {
		t.Fatalf("K=4 default grid: schedule %v, want the single wave [4]", w)
	}
	if w := repSchedule(10, neededCounts(def, 10)); len(w) != 2 || w[0] != 9 || w[1] != 1 {
		t.Fatalf("K=10 default grid: schedule %v, want [9 1]", w)
	}
	// Every schedule must cover exactly k repetitions, and every interior
	// barrier must sit at a decidable point.
	for k := 1; k <= 16; k++ {
		for _, ths := range [][]float64{def, {0.5}, {0.25, 0.75}, {1.0}} {
			need := neededCounts(ths, k)
			sum := 0
			for _, w := range repSchedule(k, need) {
				if w <= 0 {
					t.Fatalf("K=%d %v: non-positive wave", k, ths)
				}
				sum += w
				if sum < k && !decidablePoint(sum, k, need) {
					t.Fatalf("K=%d %v: barrier at non-decidable point %d", k, ths, sum)
				}
			}
			if sum != k {
				t.Fatalf("K=%d %v: schedule covers %d reps", k, ths, sum)
			}
		}
	}
}

// TestShortCircuitBucketEquivalence: the thresholds-aware r* path may skip
// repetitions, but every feature must land in exactly the threshold buckets
// the full run puts it in — that is all Select consumes.
func TestShortCircuitBucketEquivalence(t *testing.T) {
	ds := planted(ml.Classification, 200, 3, 20, 13)
	thresholds := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	r := &RIFS{Config: RIFSConfig{K: 10, Forest: ForestRanker{NTrees: 10, MaxDepth: 6}}}
	full, err := r.RStar(ds, 55)
	if err != nil {
		t.Fatal(err)
	}
	r2 := &RIFS{Config: r.Config}
	tr := obs.New("test")
	root := tr.Root()
	r2.AttachSpan(root)
	short, err := r2.rstarCtx(nil, ds, 55, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	for j := range full {
		for _, tau := range thresholds {
			if (full[j] >= tau) != (short[j] >= tau) {
				t.Fatalf("feature %d: bucket tau=%v differs (full r*=%v, short r*=%v)",
					j, tau, full[j], short[j])
			}
		}
	}
	if c := tr.Counter("select.reps_short_circuited").Value(); c < 0 || c >= 10 {
		t.Fatalf("short-circuit counter %d out of range [0, 10)", c)
	}
}

// TestRStarNeverShortCircuits: the r*-returning entry point passes nil
// thresholds, so all K repetitions always run and exact fractions come back.
func TestRStarNeverShortCircuits(t *testing.T) {
	ds := planted(ml.Classification, 150, 2, 10, 19)
	r := &RIFS{Config: RIFSConfig{K: 5, Forest: ForestRanker{NTrees: 8, MaxDepth: 5}}}
	rstar, err := r.RStar(ds, 23)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range rstar {
		scaled := v * 5
		if math.Abs(scaled-math.Round(scaled)) > 1e-12 {
			t.Fatalf("r*[%d] = %v is not a multiple of 1/K", j, v)
		}
	}
}
