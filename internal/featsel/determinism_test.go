package featsel

import (
	"testing"

	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/parallel"
)

// TestRIFSWorkersDeterminism asserts the seed-splitting contract end to end:
// RStar and Select must produce bit-identical output whether the repetitions,
// ranking halves, and threshold sweep run on one worker or eight.
func TestRIFSWorkersDeterminism(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	ds := planted(ml.Classification, 200, 3, 20, 51)
	r := &RIFS{Config: RIFSConfig{K: 4, Forest: ForestRanker{NTrees: 15, MaxDepth: 6}}}

	parallel.SetMaxWorkers(1)
	rstar1, err := r.RStar(ds, 52)
	if err != nil {
		t.Fatal(err)
	}
	sel1, err := r.Select(ds, fastForest(7), 53)
	if err != nil {
		t.Fatal(err)
	}

	parallel.SetMaxWorkers(8)
	rstar8, err := r.RStar(ds, 52)
	if err != nil {
		t.Fatal(err)
	}
	sel8, err := r.Select(ds, fastForest(7), 53)
	if err != nil {
		t.Fatal(err)
	}

	for j := range rstar1 {
		if rstar1[j] != rstar8[j] {
			t.Fatalf("r*[%d] differs across worker counts: %v vs %v", j, rstar1[j], rstar8[j])
		}
	}
	if len(sel1) != len(sel8) {
		t.Fatalf("selected %d features with 1 worker, %d with 8: %v vs %v",
			len(sel1), len(sel8), sel1, sel8)
	}
	for i := range sel1 {
		if sel1[i] != sel8[i] {
			t.Fatalf("selection differs across worker counts: %v vs %v", sel1, sel8)
		}
	}
}

// TestVoteWorkersDeterminism: the vote ensemble must agree across worker
// counts too — members write indexed slots and derive member-indexed seeds.
func TestVoteWorkersDeterminism(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	ds := planted(ml.Regression, 150, 2, 10, 54)
	mk := func() *VoteSelector {
		return &VoteSelector{
			Selectors: []Selector{
				&RankingSelector{Ranker: &FTestRanker{}},
				&RankingSelector{Ranker: &MutualInfoRanker{}},
				&RankingSelector{Ranker: &ForestRanker{NTrees: 10, MaxDepth: 5}},
			},
			Parallel: true,
		}
	}
	parallel.SetMaxWorkers(1)
	one, err := mk().Select(ds, fastForest(8), 55)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetMaxWorkers(8)
	eight, err := mk().Select(ds, fastForest(8), 55)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(eight) {
		t.Fatalf("vote differs: %v vs %v", one, eight)
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("vote differs: %v vs %v", one, eight)
		}
	}
}
