package featsel

import (
	"fmt"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/parallel"
)

// VoteSelector runs several feature-selection methods simultaneously (§3:
// "ARDA considers various types of feature selection algorithms that can be
// run simultaneously") and keeps the features selected by at least MinVotes
// of them. Selectors that do not support the task abstain. Members run
// concurrently when Parallel is set.
type VoteSelector struct {
	// Selectors are the ensemble members.
	Selectors []Selector
	// MinVotes is the agreement threshold; 0 means a strict majority of the
	// applicable members.
	MinVotes int
	// Parallel runs members concurrently.
	Parallel bool
}

// Name implements Selector.
func (s *VoteSelector) Name() string { return "vote" }

// Supports implements Selector: the ensemble applies when at least one
// member does.
func (s *VoteSelector) Supports(task ml.Task) bool {
	for _, sel := range s.Selectors {
		if sel.Supports(task) {
			return true
		}
	}
	return false
}

// Select implements Selector.
func (s *VoteSelector) Select(ds *ml.Dataset, est eval.Fitter, seed int64) ([]int, error) {
	var members []Selector
	for _, sel := range s.Selectors {
		if sel.Supports(ds.Task) {
			members = append(members, sel)
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("featsel: vote ensemble has no member supporting %s", ds.Task)
	}
	// Members run on the shared worker pool: each writes only its own result
	// slot and derives its seed from its member index, so the vote is
	// identical for any worker count.
	results := make([][]int, len(members))
	errs := make([]error, len(members))
	workers := 1
	if s.Parallel {
		workers = 0 // process-wide maximum
	}
	parallel.ForEach(workers, len(members), func(i int) {
		results[i], errs[i] = members[i].Select(ds, est, seed+int64(i)*31)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("featsel: vote member %s: %w", members[i].Name(), err)
		}
	}
	min := s.MinVotes
	if min <= 0 {
		min = len(members)/2 + 1
	}
	votes := make([]int, ds.D)
	for _, cols := range results {
		for _, j := range cols {
			if j >= 0 && j < ds.D {
				votes[j]++
			}
		}
	}
	var out []int
	for j, v := range votes {
		if v >= min {
			out = append(out, j)
		}
	}
	return out, nil
}
