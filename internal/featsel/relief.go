package featsel

import (
	"math"
	"sort"

	"github.com/arda-ml/arda/internal/ml"
)

// ReliefRanker implements ReliefF for classification and RReliefF for
// regression: features are weighted by how well they separate each sampled
// instance from its nearest misses relative to its nearest hits.
type ReliefRanker struct {
	// K is the number of nearest hits/misses per instance (default 10).
	K int
	// Samples is the number of instances sampled (default min(n, 200)).
	Samples int
}

// Name implements Ranker.
func (r *ReliefRanker) Name() string { return "relief" }

// Supports implements Ranker: both tasks.
func (r *ReliefRanker) Supports(ml.Task) bool { return true }

// Rank implements Ranker.
func (r *ReliefRanker) Rank(ds *ml.Dataset, seed int64) ([]float64, error) {
	k := r.K
	if k <= 0 {
		k = 10
	}
	m := r.Samples
	if m <= 0 {
		m = 200
	}
	if m > ds.N {
		m = ds.N
	}
	ranges := featureRanges(ds)
	rng := newRNG(seed)
	sample := rng.Perm(ds.N)[:m]

	if ds.Task == ml.Classification {
		return reliefF(ds, sample, k, ranges), nil
	}
	return rreliefF(ds, sample, k, ranges), nil
}

// featureRanges returns max−min per feature (1 for constant features) for
// diff normalization.
func featureRanges(ds *ml.Dataset) []float64 {
	out := make([]float64, ds.D)
	for j := 0; j < ds.D; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < ds.N; i++ {
			v := ds.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 1e-12 {
			out[j] = hi - lo
		} else {
			out[j] = 1
		}
	}
	return out
}

// neighborsOf returns the indices of the k nearest rows to row i (excluding
// i itself) under range-normalized Manhattan distance, optionally filtered by
// a predicate.
func neighborsOf(ds *ml.Dataset, ranges []float64, i, k int, keep func(j int) bool) []int {
	type cand struct {
		j int
		d float64
	}
	cands := make([]cand, 0, ds.N)
	ri := ds.Row(i)
	for j := 0; j < ds.N; j++ {
		if j == i || (keep != nil && !keep(j)) {
			continue
		}
		rj := ds.Row(j)
		dist := 0.0
		for f := 0; f < ds.D; f++ {
			dist += math.Abs(ri[f]-rj[f]) / ranges[f]
		}
		cands = append(cands, cand{j, dist})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for p := 0; p < k; p++ {
		out[p] = cands[p].j
	}
	return out
}

// reliefF is the multiclass ReliefF update of Kononenko.
func reliefF(ds *ml.Dataset, sample []int, k int, ranges []float64) []float64 {
	w := make([]float64, ds.D)
	prior := make([]float64, ds.Classes)
	for i := 0; i < ds.N; i++ {
		prior[ds.Label(i)]++
	}
	for c := range prior {
		prior[c] /= float64(ds.N)
	}
	mk := float64(len(sample) * k)
	for _, i := range sample {
		yi := ds.Label(i)
		hits := neighborsOf(ds, ranges, i, k, func(j int) bool { return ds.Label(j) == yi })
		for _, h := range hits {
			rh := ds.Row(h)
			ri := ds.Row(i)
			for f := 0; f < ds.D; f++ {
				w[f] -= math.Abs(ri[f]-rh[f]) / ranges[f] / mk
			}
		}
		for c := 0; c < ds.Classes; c++ {
			if c == yi || prior[c] == 0 {
				continue
			}
			weight := prior[c] / (1 - prior[yi])
			misses := neighborsOf(ds, ranges, i, k, func(j int) bool { return ds.Label(j) == c })
			for _, ms := range misses {
				rm := ds.Row(ms)
				ri := ds.Row(i)
				for f := 0; f < ds.D; f++ {
					w[f] += weight * math.Abs(ri[f]-rm[f]) / ranges[f] / mk
				}
			}
		}
	}
	return w
}

// rreliefF is the regression variant (Robnik-Šikonja & Kononenko): feature
// weight = P(diff feature | diff target)·P(diff target) decomposition using
// accumulated soft counts over the k nearest neighbours.
func rreliefF(ds *ml.Dataset, sample []int, k int, ranges []float64) []float64 {
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, y := range ds.Y {
		if y < yLo {
			yLo = y
		}
		if y > yHi {
			yHi = y
		}
	}
	yRange := yHi - yLo
	if yRange <= 1e-12 {
		yRange = 1
	}
	ndc := 0.0
	nda := make([]float64, ds.D)
	ndcda := make([]float64, ds.D)
	for _, i := range sample {
		nn := neighborsOf(ds, ranges, i, k, nil)
		ri := ds.Row(i)
		for _, j := range nn {
			rj := ds.Row(j)
			dy := math.Abs(ds.Y[i]-ds.Y[j]) / yRange
			ndc += dy
			for f := 0; f < ds.D; f++ {
				da := math.Abs(ri[f]-rj[f]) / ranges[f]
				nda[f] += da
				ndcda[f] += dy * da
			}
		}
	}
	w := make([]float64, ds.D)
	total := float64(len(sample) * k)
	for f := 0; f < ds.D; f++ {
		if ndc > 0 && total-ndc > 0 {
			w[f] = ndcda[f]/ndc - (nda[f]-ndcda[f])/(total-ndc)
		}
	}
	return w
}
