// Package discovery is ARDA's stand-in for an external join-discovery system
// such as Aurum or NYU Auctus. Given a base table and a repository of
// candidate tables, it proposes candidate joins — (base column, foreign
// table, foreign column) triples — scored by value containment and
// column-name affinity, and classifies each key as hard (exact match) or
// soft (proximity match, e.g. time). Exactly like its real counterparts, it
// is deliberately recall-oriented: the candidate list is large and noisy, and
// pruning useless joins is downstream ARDA's job.
package discovery

import (
	"math"
	"sort"
	"strings"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/join"
)

// Candidate is one proposed join between the base table and a repository
// table.
type Candidate struct {
	// Table is the foreign table.
	Table *dataframe.Table
	// Keys maps base columns onto foreign columns; len > 1 for composite
	// keys.
	Keys []join.KeyPair
	// Score is the discovery relevancy estimate in [0, ~1.3]: value
	// containment plus a name-affinity bonus. Higher is more promising.
	Score float64
	// Soft reports whether any key pair requires proximity matching.
	Soft bool
	// Geo marks a two-soft-key location candidate (lat/lon pair) that must
	// be executed with join.GeoNearest.
	Geo bool
}

// Options tunes candidate generation.
type Options struct {
	// MinContainment is the minimum fraction of distinct base key values
	// that must appear in the foreign column for a hard candidate (default
	// 0.05).
	MinContainment float64
	// MaxValueSample caps the number of distinct values compared per column
	// (default 5000).
	MaxValueSample int
	// NameBonus is the score bonus for matching column names (default 0.3).
	NameBonus float64
	// UseMinHash estimates value containment from MinHash signatures
	// instead of exact set intersection — O(k) per column pair after a
	// one-time signature build, the way Aurum-style profilers scale to
	// large repositories. Estimates carry ~±0.1 error.
	UseMinHash bool
}

func (o *Options) defaults() {
	if o.MinContainment <= 0 {
		o.MinContainment = 0.05
	}
	if o.MaxValueSample <= 0 {
		o.MaxValueSample = 5000
	}
	if o.NameBonus <= 0 {
		o.NameBonus = 0.3
	}
}

// Discover proposes candidate joins from the base table into every table of
// the repository, ranked by descending score. The target column is never
// used as a key.
func Discover(base *dataframe.Table, repo []*dataframe.Table, target string, opts Options) []Candidate {
	opts.defaults()
	var sigs *sigCache
	if opts.UseMinHash {
		sigs = &sigCache{limit: opts.MaxValueSample, cache: map[dataframe.Column]*MinHash{}}
	}
	var out []Candidate
	for _, foreign := range repo {
		cands := discoverTable(base, foreign, target, opts, sigs)
		out = append(out, cands...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}

// sigCache memoizes per-column MinHash signatures for one Discover call.
type sigCache struct {
	limit int
	cache map[dataframe.Column]*MinHash
}

// of returns (building if needed) the signature of a column.
func (s *sigCache) of(c dataframe.Column) *MinHash {
	if sig, ok := s.cache[c]; ok {
		return sig
	}
	sig := columnSignature(c, s.limit)
	s.cache[c] = sig
	return sig
}

// discoverTable proposes candidates between one base/foreign table pair:
// every sufficiently-overlapping column pair individually, plus a composite
// candidate when several hard pairs hit the same table.
func discoverTable(base, foreign *dataframe.Table, target string, opts Options, sigs *sigCache) []Candidate {
	var pairs []join.KeyPair
	var scores []float64
	for _, bc := range base.Columns() {
		if bc.Name() == target {
			continue
		}
		for _, fc := range foreign.Columns() {
			kp, score, ok := matchColumns(bc, fc, opts, sigs)
			if !ok {
				continue
			}
			pairs = append(pairs, kp)
			scores = append(scores, score)
		}
	}
	var out []Candidate
	for i, kp := range pairs {
		out = append(out, Candidate{
			Table: foreign,
			Keys:  []join.KeyPair{kp},
			Score: scores[i],
			Soft:  kp.Kind == join.Soft,
		})
	}
	// Composite candidate: all hard pairs with distinct base and foreign
	// columns, when there are at least two.
	var comp []join.KeyPair
	compScore := 0.0
	usedBase := map[string]bool{}
	usedForeign := map[string]bool{}
	for i, kp := range pairs {
		if kp.Kind != join.Hard || usedBase[kp.BaseColumn] || usedForeign[kp.ForeignColumn] {
			continue
		}
		comp = append(comp, kp)
		compScore += scores[i]
		usedBase[kp.BaseColumn] = true
		usedForeign[kp.ForeignColumn] = true
	}
	if len(comp) >= 2 {
		out = append(out, Candidate{
			Table: foreign,
			Keys:  comp,
			Score: compScore / float64(len(comp)) * 1.1,
		})
	}
	if geo, ok := geoCandidate(base, foreign, target, opts); ok {
		out = append(out, geo)
	}
	return out
}

// geoCoordinateNames lists normalized name fragments identifying latitude
// and longitude columns.
var geoLatNames = []string{"lat", "latitude"}
var geoLonNames = []string{"lon", "lng", "longitude"}

// findCoordinate returns the first numeric column whose normalized name
// matches one of the fragments.
func findCoordinate(t *dataframe.Table, fragments []string, exclude string) *dataframe.NumericColumn {
	for _, c := range t.Columns() {
		if c.Name() == exclude {
			continue
		}
		nc, ok := c.(*dataframe.NumericColumn)
		if !ok {
			continue
		}
		name := normalizeName(c.Name())
		for _, f := range fragments {
			if name == f || strings.HasSuffix(name, f) || strings.HasPrefix(name, f) {
				return nc
			}
		}
	}
	return nil
}

// geoCandidate proposes a location-based join when both tables carry a
// lat/lon coordinate pair with overlapping extents.
func geoCandidate(base, foreign *dataframe.Table, target string, opts Options) (Candidate, bool) {
	bLat := findCoordinate(base, geoLatNames, target)
	bLon := findCoordinate(base, geoLonNames, target)
	fLat := findCoordinate(foreign, geoLatNames, "")
	fLon := findCoordinate(foreign, geoLonNames, "")
	if bLat == nil || bLon == nil || fLat == nil || fLon == nil {
		return Candidate{}, false
	}
	ovLat := rangeOverlap(numericRange(bLat), numericRange(fLat))
	ovLon := rangeOverlap(numericRange(bLon), numericRange(fLon))
	if ovLat <= 0 || ovLon <= 0 {
		return Candidate{}, false
	}
	return Candidate{
		Table: foreign,
		Keys: []join.KeyPair{
			{BaseColumn: bLon.Name(), ForeignColumn: fLon.Name(), Kind: join.Soft},
			{BaseColumn: bLat.Name(), ForeignColumn: fLat.Name(), Kind: join.Soft},
		},
		Score: (ovLat + ovLon) / 2,
		Soft:  true,
		Geo:   true,
	}, true
}

// matchColumns scores one base/foreign column pair as a potential key.
// When sigs is non-nil, containment is estimated from MinHash signatures.
func matchColumns(bc, fc dataframe.Column, opts Options, sigs *sigCache) (join.KeyPair, float64, bool) {
	nameScore := nameAffinity(bc.Name(), fc.Name()) * opts.NameBonus
	kp := join.KeyPair{BaseColumn: bc.Name(), ForeignColumn: fc.Name()}
	containmentOf := func() float64 {
		if sigs != nil {
			return sigs.of(bc).Containment(sigs.of(fc))
		}
		switch bc.Kind() {
		case dataframe.Categorical:
			return containment(categoricalSet(bc.(*dataframe.CategoricalColumn), opts.MaxValueSample),
				categoricalSet(fc.(*dataframe.CategoricalColumn), opts.MaxValueSample))
		default:
			return containment(numericSet(bc.(*dataframe.NumericColumn), opts.MaxValueSample),
				numericSet(fc.(*dataframe.NumericColumn), opts.MaxValueSample))
		}
	}
	switch {
	case bc.Kind() == dataframe.Time && fc.Kind() == dataframe.Time:
		// Time keys are soft; score by range overlap.
		ov := rangeOverlap(timeRange(bc), timeRange(fc))
		if ov <= 0 && nameScore == 0 {
			return kp, 0, false
		}
		kp.Kind = join.Soft
		return kp, ov + nameScore, true
	case bc.Kind() == dataframe.Categorical && fc.Kind() == dataframe.Categorical:
		cont := containmentOf()
		if cont < opts.MinContainment {
			return kp, 0, false
		}
		kp.Kind = join.Hard
		return kp, cont + nameScore, true
	case bc.Kind() == dataframe.Numeric && fc.Kind() == dataframe.Numeric:
		// Numeric keys: exact containment suggests a hard (integer id) key;
		// otherwise a name match with range overlap suggests a soft key.
		cont := containmentOf()
		if cont >= opts.MinContainment {
			kp.Kind = join.Hard
			return kp, cont + nameScore, true
		}
		if nameScore > 0 {
			ov := rangeOverlap(numericRange(bc), numericRange(fc))
			if ov > 0 {
				kp.Kind = join.Soft
				return kp, 0.5*ov + nameScore, true
			}
		}
		return kp, 0, false
	default:
		return kp, 0, false
	}
}

// nameAffinity returns 1 for equal normalized names, 0.5 when one contains
// the other, 0 otherwise.
func nameAffinity(a, b string) float64 {
	na, nb := normalizeName(a), normalizeName(b)
	switch {
	case na == nb && na != "":
		return 1
	case na != "" && nb != "" && (strings.Contains(na, nb) || strings.Contains(nb, na)):
		return 0.5
	default:
		return 0
	}
}

// normalizeName lowercases and strips separators.
func normalizeName(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		switch r {
		case '_', '-', ' ', '.':
			return -1
		}
		return r
	}, s)
}

// containment returns |A ∩ B| / |A|.
func containment(a, b map[string]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	hits := 0
	for v := range a {
		if b[v] {
			hits++
		}
	}
	return float64(hits) / float64(len(a))
}

// categoricalSet collects up to limit distinct values of a categorical
// column.
func categoricalSet(c *dataframe.CategoricalColumn, limit int) map[string]bool {
	out := make(map[string]bool)
	for _, code := range c.Codes {
		if code >= 0 {
			out[c.Dict[code]] = true
			if len(out) >= limit {
				break
			}
		}
	}
	return out
}

// numericSet collects up to limit distinct formatted values of a numeric
// column.
func numericSet(c *dataframe.NumericColumn, limit int) map[string]bool {
	out := make(map[string]bool)
	for i := range c.Values {
		if s, ok := keyStringNumeric(c, i); ok {
			out[s] = true
			if len(out) >= limit {
				break
			}
		}
	}
	return out
}

// keyStringNumeric formats a present numeric value for set comparison.
func keyStringNumeric(c *dataframe.NumericColumn, i int) (string, bool) {
	if c.IsMissing(i) {
		return "", false
	}
	// Match join's canonical numeric key formatting.
	return dataframe.NewNumeric("", c.Values[i:i+1]).StringAt(0), true
}

// numericRange returns [min, max] of a numeric column.
func numericRange(c dataframe.Column) [2]float64 {
	col := c.(*dataframe.NumericColumn)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range col.Values {
		if col.IsMissing(i) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return [2]float64{lo, hi}
}

// timeRange returns [min, max] of a time column in seconds.
func timeRange(c dataframe.Column) [2]float64 {
	col := c.(*dataframe.TimeColumn)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range col.Unix {
		if v == dataframe.MissingTime {
			continue
		}
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return [2]float64{lo, hi}
}

// rangeOverlap returns the overlap fraction of interval a within interval b
// scaled to a's width (0 when disjoint or degenerate).
func rangeOverlap(a, b [2]float64) float64 {
	if a[0] > a[1] || b[0] > b[1] {
		return 0
	}
	lo := math.Max(a[0], b[0])
	hi := math.Min(a[1], b[1])
	if hi <= lo {
		return 0
	}
	width := a[1] - a[0]
	if width <= 0 {
		return 1
	}
	return (hi - lo) / width
}
