package discovery

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/arda-ml/arda/internal/dataframe"
)

func setOf(vals ...string) map[string]bool {
	out := map[string]bool{}
	for _, v := range vals {
		out[v] = true
	}
	return out
}

func TestMinHashIdenticalSets(t *testing.T) {
	a := NewMinHash(setOf("x", "y", "z"))
	b := NewMinHash(setOf("x", "y", "z"))
	if j := a.Jaccard(b); j != 1 {
		t.Fatalf("identical sets Jaccard = %v", j)
	}
	if c := a.Containment(b); c != 1 {
		t.Fatalf("identical sets containment = %v", c)
	}
}

func TestMinHashDisjointSets(t *testing.T) {
	a := NewMinHash(setOf("a", "b", "c"))
	b := NewMinHash(setOf("x", "y", "z"))
	if j := a.Jaccard(b); j > 0.05 {
		t.Fatalf("disjoint sets Jaccard = %v", j)
	}
}

func TestMinHashEmptySet(t *testing.T) {
	a := NewMinHash(nil)
	b := NewMinHash(setOf("x"))
	if a.Jaccard(b) != 0 || a.Containment(b) != 0 {
		t.Fatal("empty set should have zero similarity")
	}
}

func TestMinHashContainmentSubset(t *testing.T) {
	// A ⊂ B with |A|=50, |B|=500: containment of A in B is 1.
	av := map[string]bool{}
	bv := map[string]bool{}
	for i := 0; i < 500; i++ {
		v := fmt.Sprintf("v%04d", i)
		bv[v] = true
		if i < 50 {
			av[v] = true
		}
	}
	a := NewMinHash(av)
	b := NewMinHash(bv)
	if c := a.Containment(b); c < 0.75 {
		t.Fatalf("subset containment estimate = %v, want near 1", c)
	}
	// Reverse direction: only 10% of B is in A.
	if c := b.Containment(a); c > 0.3 {
		t.Fatalf("superset containment estimate = %v, want near 0.1", c)
	}
}

// Property: the Jaccard estimate tracks the exact Jaccard within sampling
// error on random set pairs.
func TestMinHashJaccardAccuracyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := 200 + rng.Intn(400)
		av := map[string]bool{}
		bv := map[string]bool{}
		pa := 0.2 + 0.6*rng.Float64()
		pb := 0.2 + 0.6*rng.Float64()
		inter, union := 0, 0
		for i := 0; i < universe; i++ {
			v := fmt.Sprintf("u%05d", i)
			inA := rng.Float64() < pa
			inB := rng.Float64() < pb
			if inA {
				av[v] = true
			}
			if inB {
				bv[v] = true
			}
			if inA && inB {
				inter++
			}
			if inA || inB {
				union++
			}
		}
		if union == 0 {
			return true
		}
		exact := float64(inter) / float64(union)
		est := NewMinHash(av).Jaccard(NewMinHash(bv))
		// 128 coordinates: tolerate ~4 standard errors.
		return math.Abs(est-exact) < 0.35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverWithMinHashFindsSameTopCandidate(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("city", []string{"nyc", "bos", "sfo", "chi", "lax"}),
		dataframe.NewNumeric("y", []float64{1, 2, 3, 4, 5}),
	)
	good := dataframe.MustNewTable("pop",
		dataframe.NewCategorical("city", []string{"nyc", "bos", "sfo", "chi", "lax", "mia"}),
		dataframe.NewNumeric("population", []float64{8, 0.7, 0.9, 2.7, 4, 0.5}),
	)
	junk := dataframe.MustNewTable("junk",
		dataframe.NewCategorical("code", []string{"q1", "q2"}),
		dataframe.NewNumeric("v", []float64{1, 2}),
	)
	exact := Discover(base, []*dataframe.Table{good, junk}, "y", Options{})
	approx := Discover(base, []*dataframe.Table{good, junk}, "y", Options{UseMinHash: true})
	if len(exact) == 0 || len(approx) == 0 {
		t.Fatal("discovery returned nothing")
	}
	if exact[0].Table.Name() != approx[0].Table.Name() {
		t.Fatalf("minhash changed the top candidate: %s vs %s",
			exact[0].Table.Name(), approx[0].Table.Name())
	}
	for _, c := range approx {
		if c.Table.Name() == "junk" {
			t.Fatal("minhash discovery admitted a non-overlapping table")
		}
	}
}
