package discovery

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
)

// transitiveScenario builds a two-hop corpus: the base joins to a mapping
// table (county → region), and only the mapping table joins to the economy
// table (region → gdp) that actually carries signal.
func transitiveScenario() (base *dataframe.Table, repo []*dataframe.Table) {
	const counties = 60
	const regions = 6
	countyIDs := make([]string, counties)
	regionOf := make([]string, counties)
	gdp := map[string]float64{}
	for r := 0; r < regions; r++ {
		gdp[fmt.Sprintf("region-%d", r)] = float64(r * 10)
	}
	target := make([]float64, counties)
	for i := 0; i < counties; i++ {
		countyIDs[i] = fmt.Sprintf("county-%02d", i)
		regionOf[i] = fmt.Sprintf("region-%d", i%regions)
		target[i] = 5 + 2*gdp[regionOf[i]]
	}
	base = dataframe.MustNewTable("base",
		dataframe.NewCategorical("county", append([]string{}, countyIDs...)),
		dataframe.NewNumeric("y", target),
	)
	mapping := dataframe.MustNewTable("mapping",
		dataframe.NewCategorical("county", append([]string{}, countyIDs...)),
		dataframe.NewCategorical("region", append([]string{}, regionOf...)),
	)
	regionNames := make([]string, regions)
	gdpVals := make([]float64, regions)
	for r := 0; r < regions; r++ {
		regionNames[r] = fmt.Sprintf("region-%d", r)
		gdpVals[r] = gdp[regionNames[r]]
	}
	economy := dataframe.MustNewTable("economy",
		dataframe.NewCategorical("region", regionNames),
		dataframe.NewNumeric("gdp", gdpVals),
	)
	return base, []*dataframe.Table{mapping, economy}
}

func TestTransitiveReachesSecondHop(t *testing.T) {
	base, repo := transitiveScenario()

	// Direct discovery cannot reach the economy table (no shared key with
	// the base).
	direct := Discover(base, repo, "y", Options{})
	for _, c := range direct {
		if c.Table.Name() == "economy" {
			t.Fatal("economy should not be directly joinable")
		}
	}

	rng := rand.New(rand.NewSource(1))
	trans := Transitive(base, repo, "y", TransitiveOptions{}, rng)
	if len(trans) == 0 {
		t.Fatal("no transitive candidates found")
	}
	var widened Candidate
	found := false
	for _, c := range trans {
		if strings.HasPrefix(c.Table.Name(), "mapping+") {
			widened = c
			found = true
		}
	}
	if !found {
		t.Fatalf("no widened mapping candidate; got %v", names(trans))
	}
	if !widened.Table.HasColumn("via.economy.gdp") {
		t.Fatalf("widened table lacks transitive gdp column: %v", widened.Table.ColumnNames())
	}
	// The widened table must still join the base on the original key.
	if widened.Keys[0].BaseColumn != "county" {
		t.Fatalf("widened candidate keys = %v", widened.Keys)
	}
	// Transitive gdp values must be correct: region i%6 → gdp 10·(i%6).
	gdpCol := widened.Table.Column("via.economy.gdp").(*dataframe.NumericColumn)
	countyCol := widened.Table.Column("county").(*dataframe.CategoricalColumn)
	for i := 0; i < widened.Table.NumRows(); i++ {
		name, _ := countyCol.Value(i)
		var idx int
		fmt.Sscanf(name, "county-%d", &idx)
		if want := float64((idx % 6) * 10); gdpCol.Values[i] != want {
			t.Fatalf("row %d (%s): gdp %v, want %v", i, name, gdpCol.Values[i], want)
		}
	}
}

func TestTransitiveScoresBelowDirect(t *testing.T) {
	base, repo := transitiveScenario()
	rng := rand.New(rand.NewSource(2))
	direct := Discover(base, repo, "y", Options{})
	trans := Transitive(base, repo, "y", TransitiveOptions{}, rng)
	if len(direct) == 0 || len(trans) == 0 {
		t.Fatal("scenario should produce both kinds")
	}
	if trans[0].Score >= direct[0].Score {
		t.Fatalf("transitive score %v should rank below its direct hop %v",
			trans[0].Score, direct[0].Score)
	}
}

func names(cs []Candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Table.Name()
	}
	return out
}
