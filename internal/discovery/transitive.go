package discovery

import (
	"fmt"
	"math/rand"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/join"
)

// TransitiveOptions tunes two-hop candidate discovery.
type TransitiveOptions struct {
	// Options configures the underlying single-hop discovery.
	Options
	// MaxIntermediates bounds how many first-hop tables are expanded
	// (highest-scored first; default 8).
	MaxIntermediates int
	// MaxPerIntermediate bounds second-hop joins materialized per
	// intermediate table (default 4).
	MaxPerIntermediate int
	// MinScore drops hops whose discovery score falls below it (default
	// 0.3).
	MinScore float64
}

func (o *TransitiveOptions) defaults() {
	o.Options.defaults()
	if o.MaxIntermediates <= 0 {
		o.MaxIntermediates = 8
	}
	if o.MaxPerIntermediate <= 0 {
		o.MaxPerIntermediate = 4
	}
	if o.MinScore <= 0 {
		o.MinScore = 0.3
	}
}

// Transitive implements the paper's §9 future-work item: augmentation via
// transitive joins. Signal two hops away — base → A on one key, A → B on
// another — is unreachable by single joins, so for the strongest first-hop
// candidates A it discovers tables B joinable with A, materializes A⋈B as a
// new candidate table (B's columns prefixed "via.<B>."), and returns
// candidates joining the base table onto these widened intermediates. The
// returned candidates compose with regular ones and run through the normal
// ARDA pipeline, whose feature selection decides — exactly as for direct
// joins — whether the transitively-reached features earn their keep.
func Transitive(base *dataframe.Table, repo []*dataframe.Table, target string, opts TransitiveOptions, rng *rand.Rand) []Candidate {
	opts.defaults()
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	firstHop := Discover(base, repo, target, opts.Options)
	expanded := 0
	var out []Candidate
	seen := map[string]bool{}
	for _, first := range firstHop {
		if expanded >= opts.MaxIntermediates {
			break
		}
		if first.Score < opts.MinScore || seen[first.Table.Name()] {
			continue
		}
		seen[first.Table.Name()] = true
		expanded++

		// Discover second hops from the intermediate table. Its own key
		// columns stay eligible — they are exactly what links onward tables.
		var rest []*dataframe.Table
		for _, t := range repo {
			if t != first.Table && t != base {
				rest = append(rest, t)
			}
		}
		second := Discover(first.Table, rest, "", opts.Options)
		joined := 0
		widened := first.Table
		var hops []string
		for _, hop := range second {
			if joined >= opts.MaxPerIntermediate {
				break
			}
			if hop.Score < opts.MinScore {
				break // score-ordered: everything after is weaker
			}
			spec := &join.Spec{
				Keys:         hop.Keys,
				Method:       join.TwoWayNearest,
				TimeResample: true,
				Prefix:       fmt.Sprintf("via.%s.", hop.Table.Name()),
			}
			res, err := join.Execute(widened, hop.Table, spec, rng)
			if err != nil {
				continue
			}
			widened = res.Table
			hops = append(hops, hop.Table.Name())
			joined++
		}
		if joined == 0 {
			continue
		}
		widened.SetName(fmt.Sprintf("%s+%dhop", first.Table.Name(), joined))
		out = append(out, Candidate{
			Table: widened,
			Keys:  first.Keys,
			// Transitive candidates rank below their direct first hop: the
			// extra hop adds both reach and noise.
			Score: first.Score * 0.9,
			Soft:  first.Soft,
		})
		_ = hops
	}
	return out
}
