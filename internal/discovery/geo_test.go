package discovery

import (
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/join"
)

func geoBase() *dataframe.Table {
	return dataframe.MustNewTable("trips",
		dataframe.NewNumeric("pickup_lon", []float64{-74.0, -73.9, -73.95}),
		dataframe.NewNumeric("pickup_lat", []float64{40.7, 40.75, 40.72}),
		dataframe.NewNumeric("y", []float64{1, 2, 3}),
	)
}

func TestGeoCandidateDiscovered(t *testing.T) {
	base := geoBase()
	stations := dataframe.MustNewTable("stations",
		dataframe.NewNumeric("lon", []float64{-74.0, -73.9}),
		dataframe.NewNumeric("lat", []float64{40.7, 40.76}),
		dataframe.NewNumeric("capacity", []float64{10, 20}),
	)
	cands := Discover(base, []*dataframe.Table{stations}, "y", Options{})
	var geo *Candidate
	for i := range cands {
		if cands[i].Geo {
			geo = &cands[i]
		}
	}
	if geo == nil {
		t.Fatal("no geo candidate discovered for overlapping lat/lon pairs")
	}
	if len(geo.Keys) != 2 || geo.Keys[0].Kind != join.Soft || geo.Keys[1].Kind != join.Soft {
		t.Fatalf("geo keys = %+v", geo.Keys)
	}
	if geo.Keys[0].BaseColumn != "pickup_lon" || geo.Keys[1].BaseColumn != "pickup_lat" {
		t.Fatalf("geo key columns = %+v", geo.Keys)
	}
}

func TestGeoCandidateRequiresOverlap(t *testing.T) {
	base := geoBase()
	farAway := dataframe.MustNewTable("tokyo_stations",
		dataframe.NewNumeric("lon", []float64{139.6, 139.8}),
		dataframe.NewNumeric("lat", []float64{35.6, 35.7}),
		dataframe.NewNumeric("capacity", []float64{10, 20}),
	)
	cands := Discover(base, []*dataframe.Table{farAway}, "y", Options{})
	for _, c := range cands {
		if c.Geo {
			t.Fatal("disjoint coordinate extents should not yield a geo candidate")
		}
	}
}

func TestGeoCandidateNeedsBothCoordinates(t *testing.T) {
	base := geoBase()
	lonOnly := dataframe.MustNewTable("halfgeo",
		dataframe.NewNumeric("lon", []float64{-74.0, -73.9}),
		dataframe.NewNumeric("v", []float64{1, 2}),
	)
	cands := Discover(base, []*dataframe.Table{lonOnly}, "y", Options{})
	for _, c := range cands {
		if c.Geo {
			t.Fatal("a lone longitude column should not yield a geo candidate")
		}
	}
}
