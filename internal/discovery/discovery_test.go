package discovery

import (
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/join"
)

func TestDiscoverFindsCategoricalKey(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("city", []string{"nyc", "bos", "sfo"}),
		dataframe.NewNumeric("y", []float64{1, 2, 3}),
	)
	good := dataframe.MustNewTable("pop",
		dataframe.NewCategorical("city", []string{"nyc", "bos", "sfo", "lax"}),
		dataframe.NewNumeric("population", []float64{8, 0.7, 0.9, 4}),
	)
	bad := dataframe.MustNewTable("junk",
		dataframe.NewCategorical("code", []string{"q1", "q2"}),
		dataframe.NewNumeric("v", []float64{1, 2}),
	)
	cands := Discover(base, []*dataframe.Table{good, bad}, "y", Options{})
	if len(cands) == 0 {
		t.Fatal("no candidates discovered")
	}
	top := cands[0]
	if top.Table.Name() != "pop" || top.Keys[0].BaseColumn != "city" {
		t.Fatalf("top candidate = %v onto %s", top.Keys, top.Table.Name())
	}
	if top.Keys[0].Kind != join.Hard {
		t.Fatal("categorical overlap should be a hard key")
	}
	for _, c := range cands {
		if c.Table.Name() == "junk" {
			t.Fatal("non-overlapping table should produce no candidate")
		}
	}
}

func TestDiscoverTimeIsSoft(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewTime("date", []int64{0, 86400, 172800}),
		dataframe.NewNumeric("y", []float64{1, 2, 3}),
	)
	weather := dataframe.MustNewTable("weather",
		dataframe.NewTime("ts", []int64{3600, 90000}),
		dataframe.NewNumeric("temp", []float64{10, 12}),
	)
	cands := Discover(base, []*dataframe.Table{weather}, "y", Options{})
	if len(cands) == 0 {
		t.Fatal("time overlap should be discovered")
	}
	if !cands[0].Soft || cands[0].Keys[0].Kind != join.Soft {
		t.Fatal("time key should be soft")
	}
}

func TestDiscoverExcludesTarget(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("y", []string{"a", "b"}),
	)
	other := dataframe.MustNewTable("other",
		dataframe.NewCategorical("y", []string{"a", "b"}),
		dataframe.NewNumeric("v", []float64{1, 2}),
	)
	cands := Discover(base, []*dataframe.Table{other}, "y", Options{})
	if len(cands) != 0 {
		t.Fatal("target column must never be used as a key")
	}
}

func TestDiscoverComposite(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewCategorical("a", []string{"x", "y", "z"}),
		dataframe.NewCategorical("b", []string{"1", "2", "3"}),
		dataframe.NewNumeric("t", []float64{0, 0, 0}),
	)
	foreign := dataframe.MustNewTable("f",
		dataframe.NewCategorical("a", []string{"x", "y", "z"}),
		dataframe.NewCategorical("b", []string{"1", "2", "3"}),
		dataframe.NewNumeric("v", []float64{1, 2, 3}),
	)
	cands := Discover(base, []*dataframe.Table{foreign}, "t", Options{})
	foundComposite := false
	for _, c := range cands {
		if len(c.Keys) == 2 {
			foundComposite = true
		}
	}
	if !foundComposite {
		t.Fatal("two overlapping hard keys should yield a composite candidate")
	}
}

func TestNameAffinity(t *testing.T) {
	if nameAffinity("pickup_date", "PickupDate") != 1 {
		t.Fatal("normalized equal names should score 1")
	}
	if nameAffinity("date", "pickup_date") != 0.5 {
		t.Fatal("containment should score 0.5")
	}
	if nameAffinity("foo", "bar") != 0 {
		t.Fatal("unrelated names should score 0")
	}
}

func TestNumericHardKeyByContainment(t *testing.T) {
	base := dataframe.MustNewTable("base",
		dataframe.NewNumeric("zip", []float64{10001, 10002, 10003}),
		dataframe.NewNumeric("y", []float64{1, 2, 3}),
	)
	foreign := dataframe.MustNewTable("zips",
		dataframe.NewNumeric("zip", []float64{10001, 10002, 10003, 10004}),
		dataframe.NewNumeric("income", []float64{1, 2, 3, 4}),
	)
	cands := Discover(base, []*dataframe.Table{foreign}, "y", Options{})
	found := false
	for _, c := range cands {
		if c.Keys[0].BaseColumn == "zip" && c.Keys[0].Kind == join.Hard {
			found = true
		}
	}
	if !found {
		t.Fatal("integer-id containment should yield a hard numeric key")
	}
}
