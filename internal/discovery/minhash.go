package discovery

import (
	"hash/fnv"
	"math"

	"github.com/arda-ml/arda/internal/dataframe"
)

// MinHash signatures let discovery estimate value overlap between columns
// without materializing distinct-value sets — the profiling trick systems
// like Aurum use to scale join discovery to large repositories. A signature
// is the minimum of k independent hash permutations over the column's
// distinct values; the fraction of agreeing coordinates between two
// signatures estimates their Jaccard similarity, which combined with the
// set sizes yields a containment estimate.
type MinHash struct {
	mins []uint64
	// Size is the number of distinct values hashed (needed to convert
	// Jaccard to containment).
	Size int
}

// minHashK is the signature width; 128 coordinates give a Jaccard standard
// error of about 1/√128 ≈ 0.09.
const minHashK = 128

// hashParams are the per-coordinate universal-hash multipliers/offsets,
// generated once from a fixed seed so signatures are comparable across
// calls.
var hashA, hashB = func() ([minHashK]uint64, [minHashK]uint64) {
	var a, b [minHashK]uint64
	// xorshift64 with a fixed seed for reproducible parameters.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < minHashK; i++ {
		a[i] = next() | 1 // odd multiplier
		b[i] = next()
	}
	return a, b
}()

// NewMinHash computes the signature of a string set.
func NewMinHash(values map[string]bool) *MinHash {
	m := &MinHash{mins: make([]uint64, minHashK), Size: len(values)}
	for i := range m.mins {
		m.mins[i] = math.MaxUint64
	}
	for v := range values {
		h := fnv.New64a()
		h.Write([]byte(v))
		base := h.Sum64()
		for i := 0; i < minHashK; i++ {
			hv := hashA[i]*base + hashB[i]
			if hv < m.mins[i] {
				m.mins[i] = hv
			}
		}
	}
	return m
}

// Jaccard estimates |A∩B| / |A∪B| from two signatures.
func (m *MinHash) Jaccard(other *MinHash) float64 {
	if m.Size == 0 || other.Size == 0 {
		return 0
	}
	agree := 0
	for i := range m.mins {
		if m.mins[i] == other.mins[i] {
			agree++
		}
	}
	return float64(agree) / float64(minHashK)
}

// Containment estimates |A∩B| / |A| (how much of this signature's set
// appears in the other's) using the Jaccard estimate and the set sizes:
// |A∩B| = J·(|A|+|B|)/(1+J).
func (m *MinHash) Containment(other *MinHash) float64 {
	if m.Size == 0 {
		return 0
	}
	j := m.Jaccard(other)
	inter := j * float64(m.Size+other.Size) / (1 + j)
	c := inter / float64(m.Size)
	if c > 1 {
		c = 1
	}
	return c
}

// columnSignature builds the MinHash of a column's distinct values (up to
// the discovery value-sample cap).
func columnSignature(c dataframe.Column, limit int) *MinHash {
	switch col := c.(type) {
	case *dataframe.CategoricalColumn:
		return NewMinHash(categoricalSet(col, limit))
	case *dataframe.NumericColumn:
		return NewMinHash(numericSet(col, limit))
	default:
		return NewMinHash(nil)
	}
}
