// Package stats provides the statistical primitives ARDA's filter-style
// feature selectors and random feature injection rely on: summary moments,
// Pearson correlation, ANOVA F statistics, chi-squared statistics, binned
// mutual information, and samplers for the standard distributions used to
// inject synthetic noise features.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, ignoring NaNs. It returns 0 for an
// all-NaN or empty slice.
func Mean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			s += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Variance returns the population variance of xs, ignoring NaNs.
func Variance(xs []float64) float64 {
	mu := Mean(xs)
	s, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			d := x - mu
			s += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs, ignoring NaNs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs ignoring NaNs, or NaN when no values are
// present.
func Median(xs []float64) float64 {
	vals := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			vals = append(vals, x)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	m := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[m]
	}
	return (vals[m-1] + vals[m]) / 2
}

// Pearson returns the Pearson correlation coefficient between x and y,
// skipping pairs where either value is NaN. It returns 0 when either series
// is constant.
func Pearson(x, y []float64) float64 {
	var sx, sy, sxx, syy, sxy float64
	n := 0
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	cov := sxy - sx*sy/fn
	vx := sxx - sx*sx/fn
	vy := syy - sy*sy/fn
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// FRegression returns the F statistic of a univariate regression of y on x:
// F = r²/(1−r²)·(n−2), the statistic scikit-learn's f_regression computes.
func FRegression(x, y []float64) float64 {
	r := Pearson(x, y)
	n := float64(len(x))
	den := 1 - r*r
	if den <= 1e-12 {
		return math.Inf(1)
	}
	return r * r / den * (n - 2)
}

// FClassif returns the one-way ANOVA F statistic of feature x grouped by the
// integer class labels in y. NaN feature values are skipped.
func FClassif(x []float64, y []int, numClasses int) float64 {
	if numClasses < 2 {
		return 0
	}
	sums := make([]float64, numClasses)
	sqs := make([]float64, numClasses)
	counts := make([]int, numClasses)
	total, totalSq, n := 0.0, 0.0, 0
	for i, v := range x {
		if math.IsNaN(v) || y[i] < 0 || y[i] >= numClasses {
			continue
		}
		sums[y[i]] += v
		sqs[y[i]] += v * v
		counts[y[i]]++
		total += v
		totalSq += v * v
		n++
	}
	if n <= numClasses {
		return 0
	}
	grand := total / float64(n)
	ssBetween, ssWithin := 0.0, 0.0
	groups := 0
	for k := 0; k < numClasses; k++ {
		if counts[k] == 0 {
			continue
		}
		groups++
		mk := sums[k] / float64(counts[k])
		ssBetween += float64(counts[k]) * (mk - grand) * (mk - grand)
		ssWithin += sqs[k] - sums[k]*sums[k]/float64(counts[k])
	}
	if groups < 2 {
		return 0
	}
	dfB := float64(groups - 1)
	dfW := float64(n - groups)
	if ssWithin <= 1e-12 {
		if ssBetween <= 1e-12 {
			return 0
		}
		return math.Inf(1)
	}
	return (ssBetween / dfB) / (ssWithin / dfW)
}

// ChiSquared returns the chi-squared statistic between a non-negative feature
// x (treated as frequency mass, as in sklearn's chi2) and integer class
// labels.
func ChiSquared(x []float64, y []int, numClasses int) float64 {
	observed := make([]float64, numClasses)
	classTotal := make([]float64, numClasses)
	featureTotal := 0.0
	n := 0.0
	for i, v := range x {
		if math.IsNaN(v) || y[i] < 0 || y[i] >= numClasses {
			continue
		}
		if v < 0 {
			v = -v
		}
		observed[y[i]] += v
		classTotal[y[i]]++
		featureTotal += v
		n++
	}
	if n == 0 || featureTotal == 0 {
		return 0
	}
	chi := 0.0
	for k := 0; k < numClasses; k++ {
		expected := featureTotal * classTotal[k] / n
		if expected <= 0 {
			continue
		}
		d := observed[k] - expected
		chi += d * d / expected
	}
	return chi
}

// EqualFrequencyBins assigns each value of x to one of up to maxBins
// equal-frequency bins, returning bin indices (NaNs get bin -1) and the
// number of bins actually used.
func EqualFrequencyBins(x []float64, maxBins int) ([]int, int) {
	type pair struct {
		v float64
		i int
	}
	pairs := make([]pair, 0, len(x))
	for i, v := range x {
		if !math.IsNaN(v) {
			pairs = append(pairs, pair{v, i})
		}
	}
	bins := make([]int, len(x))
	for i := range bins {
		bins[i] = -1
	}
	if len(pairs) == 0 {
		return bins, 0
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
	k := maxBins
	if k > len(pairs) {
		k = len(pairs)
	}
	// Quantile cut points; duplicates collapse so binning is a pure function
	// of the value even with heavy ties.
	var cuts []float64
	for b := 1; b < k; b++ {
		c := pairs[b*len(pairs)/k].v
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	for _, p := range pairs {
		// Upper bound: bin = number of cuts <= v (cuts are deduplicated).
		b := sort.SearchFloat64s(cuts, p.v)
		if b < len(cuts) && cuts[b] == p.v {
			b++
		}
		bins[p.i] = b
	}
	return bins, len(cuts) + 1
}

// MutualInformation estimates the mutual information (in nats) between
// discretized feature bins xb (with nx states) and labels y (with ny states).
// Entries with negative bin or label are skipped.
func MutualInformation(xb []int, nx int, y []int, ny int) float64 {
	if nx <= 0 || ny <= 0 {
		return 0
	}
	joint := make([]float64, nx*ny)
	px := make([]float64, nx)
	py := make([]float64, ny)
	n := 0.0
	for i := range xb {
		if xb[i] < 0 || y[i] < 0 || xb[i] >= nx || y[i] >= ny {
			continue
		}
		joint[xb[i]*ny+y[i]]++
		px[xb[i]]++
		py[y[i]]++
		n++
	}
	if n == 0 {
		return 0
	}
	mi := 0.0
	for a := 0; a < nx; a++ {
		for b := 0; b < ny; b++ {
			j := joint[a*ny+b]
			if j == 0 {
				continue
			}
			mi += j / n * math.Log(j*n/(px[a]*py[b]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// Distribution identifies one of the standard noise distributions the paper
// uses for random feature injection.
type Distribution int

const (
	// Normal is the standard normal distribution N(0, 1).
	Normal Distribution = iota
	// Bernoulli is the Bernoulli(p) distribution with random p.
	Bernoulli
	// Uniform is the uniform distribution on a random interval.
	Uniform
	// Poisson is the Poisson(λ) distribution with random λ.
	Poisson
)

// SampleColumn draws an n-vector from the distribution, with per-column
// randomly-initialized parameters as in the paper's micro benchmarks.
func SampleColumn(d Distribution, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	SampleColumnInto(d, rng, out)
	return out
}

// SampleColumnInto is SampleColumn writing into a caller-owned buffer: it
// draws the same random stream and fully overwrites out, so reusing a
// scratch column across draws cannot change a single value.
func SampleColumnInto(d Distribution, rng *rand.Rand, out []float64) {
	switch d {
	case Normal:
		mu := rng.NormFloat64()
		sigma := 0.5 + rng.Float64()*2
		for i := range out {
			out[i] = mu + sigma*rng.NormFloat64()
		}
	case Bernoulli:
		p := 0.1 + 0.8*rng.Float64()
		for i := range out {
			if rng.Float64() < p {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
	case Uniform:
		lo := rng.NormFloat64() * 2
		width := 0.5 + rng.Float64()*4
		for i := range out {
			out[i] = lo + width*rng.Float64()
		}
	case Poisson:
		lambda := 0.5 + rng.Float64()*9.5
		for i := range out {
			out[i] = float64(poisson(lambda, rng))
		}
	default:
		for i := range out {
			out[i] = 0
		}
	}
}

// poisson draws a Poisson(lambda) variate with Knuth's method (adequate for
// the small lambdas used in noise injection).
func poisson(lambda float64, rng *rand.Rand) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
