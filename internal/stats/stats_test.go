package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceMedian(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 3}
	if got := Mean(xs); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Variance = %v", got)
	}
	if got := Median(xs); got != 2 {
		t.Fatalf("Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
	if !math.IsNaN(Median([]float64{math.NaN()})) {
		t.Fatal("all-NaN median should be NaN")
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect corr = %v", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorr = %v", got)
	}
	if got := Pearson(x, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Fatalf("constant series corr = %v", got)
	}
	// NaN pairs are skipped.
	withNaN := []float64{2, math.NaN(), 6, 8, 10}
	if got := Pearson(x, withNaN); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NaN-skipping corr = %v", got)
	}
}

func TestFClassifSeparates(t *testing.T) {
	// Class 0 around 0, class 1 around 10: huge F. Random noise: small F.
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := make([]float64, n)
	noise := make([]float64, n)
	y := make([]int, n)
	for i := range x {
		y[i] = i % 2
		x[i] = float64(y[i])*10 + rng.NormFloat64()
		noise[i] = rng.NormFloat64()
	}
	fGood := FClassif(x, y, 2)
	fBad := FClassif(noise, y, 2)
	if fGood < 100*fBad {
		t.Fatalf("F signal=%v noise=%v", fGood, fBad)
	}
}

func TestFRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	noise := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 3*x[i] + 0.1*rng.NormFloat64()
		noise[i] = rng.NormFloat64()
	}
	if FRegression(x, y) < 100*FRegression(noise, y) {
		t.Fatal("F-regression fails to separate signal from noise")
	}
}

func TestChiSquared(t *testing.T) {
	y := []int{0, 0, 1, 1}
	strong := []float64{5, 5, 0, 0}
	weak := []float64{1, 1, 1, 1}
	if ChiSquared(strong, y, 2) <= ChiSquared(weak, y, 2) {
		t.Fatal("chi² should prefer class-concentrated mass")
	}
}

func TestEqualFrequencyBins(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	bins, k := EqualFrequencyBins(x, 4)
	if k != 4 {
		t.Fatalf("bins used = %d, want 4", k)
	}
	// Monotone assignment.
	for i := 1; i < len(x); i++ {
		if bins[i] < bins[i-1] {
			t.Fatalf("bins not monotone: %v", bins)
		}
	}
	// Ties share a bin.
	tied, _ := EqualFrequencyBins([]float64{1, 1, 1, 1, 2, 2}, 3)
	for i := 1; i < 4; i++ {
		if tied[i] != tied[0] {
			t.Fatalf("tied values split bins: %v", tied)
		}
	}
	// NaNs get -1.
	withNaN, _ := EqualFrequencyBins([]float64{math.NaN(), 1}, 2)
	if withNaN[0] != -1 {
		t.Fatalf("NaN bin = %d", withNaN[0])
	}
	empty, k := EqualFrequencyBins([]float64{math.NaN()}, 2)
	if k != 0 || empty[0] != -1 {
		t.Fatal("all-NaN input should produce no bins")
	}
}

func TestMutualInformation(t *testing.T) {
	// Perfectly informative feature vs independent feature.
	y := []int{0, 1, 0, 1, 0, 1, 0, 1}
	same := []int{0, 1, 0, 1, 0, 1, 0, 1}
	indep := []int{0, 0, 1, 1, 0, 0, 1, 1}
	miSame := MutualInformation(same, 2, y, 2)
	miIndep := MutualInformation(indep, 2, y, 2)
	if math.Abs(miSame-math.Log(2)) > 1e-9 {
		t.Fatalf("MI(identical) = %v, want ln2", miSame)
	}
	if miIndep > 1e-9 {
		t.Fatalf("MI(independent) = %v, want 0", miIndep)
	}
}

func TestSampleColumnDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []Distribution{Normal, Bernoulli, Uniform, Poisson} {
		col := SampleColumn(d, 500, rng)
		if len(col) != 500 {
			t.Fatalf("dist %d: len = %d", d, len(col))
		}
		switch d {
		case Bernoulli:
			for _, v := range col {
				if v != 0 && v != 1 {
					t.Fatalf("Bernoulli value %v", v)
				}
			}
		case Poisson:
			for _, v := range col {
				if v < 0 || v != math.Trunc(v) {
					t.Fatalf("Poisson value %v", v)
				}
			}
		}
	}
}

// Property: binning is a pure function of value — equal values always share
// a bin.
func TestBinsValueFunctionProperty(t *testing.T) {
	f := func(raw []float64, dup uint8) bool {
		if len(raw) < 2 {
			return true
		}
		// Duplicate one value somewhere else in the slice.
		i := int(dup) % len(raw)
		j := (i + 1) % len(raw)
		raw[j] = raw[i]
		bins, _ := EqualFrequencyBins(raw, 4)
		if math.IsNaN(raw[i]) {
			return bins[i] == -1 && bins[j] == -1
		}
		return bins[i] == bins[j]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonSamplerMean(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Poisson column means should track their (random) λ ∈ [0.5, 10]; just
	// check values are plausible counts with a sane average.
	col := SampleColumn(Poisson, 5000, rng)
	mean := Mean(col)
	if mean < 0.2 || mean > 12 {
		t.Fatalf("poisson sample mean = %v", mean)
	}
}

func TestFClassifDegenerate(t *testing.T) {
	if got := FClassif([]float64{1, 2}, []int{0, 0}, 1); got != 0 {
		t.Fatalf("single-class F = %v", got)
	}
	// All values identical in every class → F = 0.
	if got := FClassif([]float64{3, 3, 3, 3}, []int{0, 1, 0, 1}, 2); got != 0 {
		t.Fatalf("constant-feature F = %v", got)
	}
}

func TestFRegressionPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := FRegression(x, x); !math.IsInf(got, 1) {
		t.Fatalf("perfect-fit F = %v, want +Inf", got)
	}
}

func TestMutualInformationEmpty(t *testing.T) {
	if got := MutualInformation(nil, 0, nil, 0); got != 0 {
		t.Fatalf("empty MI = %v", got)
	}
	if got := MutualInformation([]int{-1}, 2, []int{0}, 2); got != 0 {
		t.Fatalf("all-skipped MI = %v", got)
	}
}
