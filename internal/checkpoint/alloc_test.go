package checkpoint

import (
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

// With checkpointing disabled the pipeline holds a nil *Log; Save on it must
// be free — zero allocations — so Options.CheckpointDir unset costs nothing
// on the hot path.
func TestNilLogSaveZeroAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	var l *Log
	p := samplePayload(0)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := l.Save("prefilter", -1, 0, &p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil Log.Save allocates %.1f per call, want 0", allocs)
	}
}
