package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// makeLog creates a run log with one saved stage in dir and backdates its
// manifest by age.
func makeLog(t *testing.T, dir string, age time.Duration) {
	t.Helper()
	l, err := Create(dir, "run", "fp", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Save("coreset", -1, 0, struct{ X int }{1}); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-age)
	if err := os.Chtimes(filepath.Join(dir, ManifestName), old, old); err != nil {
		t.Fatal(err)
	}
}

func TestPruneSubdirectoryLogs(t *testing.T) {
	root := t.TempDir()
	makeLog(t, filepath.Join(root, "r1"), 48*time.Hour)
	makeLog(t, filepath.Join(root, "r2"), 30*time.Hour)
	makeLog(t, filepath.Join(root, "r3"), time.Minute)

	pruned, err := Prune(root, 24*time.Hour, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 2 {
		t.Fatalf("pruned %v, want r1 and r2", pruned)
	}
	for _, gone := range []string{"r1", "r2"} {
		if _, err := os.Stat(filepath.Join(root, gone)); !os.IsNotExist(err) {
			t.Fatalf("stale log %s still present (err=%v)", gone, err)
		}
	}
	if _, err := os.Stat(filepath.Join(root, "r3", ManifestName)); err != nil {
		t.Fatalf("fresh log r3 was pruned: %v", err)
	}
}

func TestPruneKeepLatestExemptsNewest(t *testing.T) {
	root := t.TempDir()
	makeLog(t, filepath.Join(root, "old"), 72*time.Hour)
	makeLog(t, filepath.Join(root, "older"), 96*time.Hour)

	pruned, err := Prune(root, 24*time.Hour, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != "older" {
		t.Fatalf("pruned %v, want [older]", pruned)
	}
	if _, err := os.Stat(filepath.Join(root, "old", ManifestName)); err != nil {
		t.Fatalf("keepLatest log pruned: %v", err)
	}
}

func TestPruneDirItselfAsLog(t *testing.T) {
	dir := t.TempDir()
	makeLog(t, dir, 48*time.Hour)
	// A foreign file must survive the sweep.
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	pruned, err := Prune(dir, 24*time.Hour, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != "." {
		t.Fatalf("pruned %v, want [.]", pruned)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("manifest still present after prune (err=%v)", err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file removed by prune: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("dir itself removed: %v", err)
	}
}

func TestPruneNoops(t *testing.T) {
	dir := t.TempDir()
	makeLog(t, filepath.Join(dir, "r1"), 48*time.Hour)
	if pruned, err := Prune(dir, 0, 0, nil); err != nil || pruned != nil {
		t.Fatalf("Prune(maxAge=0) = %v, %v, want no-op", pruned, err)
	}
	if pruned, err := Prune(filepath.Join(dir, "missing"), time.Hour, 0, nil); err != nil || pruned != nil {
		t.Fatalf("Prune(missing dir) = %v, %v, want no-op", pruned, err)
	}
	// Fresh logs and non-log directories are untouched.
	if err := os.MkdirAll(filepath.Join(dir, "plain"), 0o755); err != nil {
		t.Fatal(err)
	}
	if pruned, err := Prune(dir, 100*time.Hour, 0, nil); err != nil || len(pruned) != 0 {
		t.Fatalf("Prune(all fresh) = %v, %v, want nothing pruned", pruned, err)
	}
}

func TestPruneLeavesForeignFilesInSubdir(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "r1")
	makeLog(t, sub, 48*time.Hour)
	if err := os.WriteFile(filepath.Join(sub, "result.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	pruned, err := Prune(root, 24*time.Hour, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != "r1" {
		t.Fatalf("pruned %v, want [r1]", pruned)
	}
	if _, err := os.Stat(filepath.Join(sub, "result.json")); err != nil {
		t.Fatalf("foreign file removed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sub, ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("manifest survived prune (err=%v)", err)
	}
}

// TestPruneSkipExemptsLiveLogs: the skip hook protects named logs from the
// age sweep — the multi-process daemon passes a lease-liveness probe here so
// a slow run owned by another process keeps its resume state.
func TestPruneSkipExemptsLiveLogs(t *testing.T) {
	root := t.TempDir()
	makeLog(t, filepath.Join(root, "r1"), 48*time.Hour)
	makeLog(t, filepath.Join(root, "r2"), 48*time.Hour)

	pruned, err := Prune(root, 24*time.Hour, 0, func(rel string) bool { return rel == "r1" })
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != "r2" {
		t.Fatalf("pruned %v, want [r2] (r1 skipped)", pruned)
	}
	if _, err := os.Stat(filepath.Join(root, "r1", ManifestName)); err != nil {
		t.Fatalf("skipped log r1 was pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "r2")); !os.IsNotExist(err) {
		t.Fatalf("unskipped log r2 still present (err=%v)", err)
	}
}

func TestPruneThenResumeStartsFresh(t *testing.T) {
	dir := t.TempDir()
	makeLog(t, dir, 48*time.Hour)
	if _, err := Prune(dir, 24*time.Hour, 0, nil); err != nil {
		t.Fatal(err)
	}
	// A pruned directory must look like "nothing to resume".
	if _, err := Open(dir, "fp"); !os.IsNotExist(err) {
		t.Fatalf("Open after prune = %v, want os.ErrNotExist", err)
	}
}
