// Package checkpoint is a crash-safe, stage-granular run log: the durability
// substrate behind core.Options.CheckpointDir. A Log owns one run directory
// holding a manifest plus one gob "shard" per completed pipeline stage; every
// file is written with the temp-file + fsync + rename + dir-fsync discipline
// (internal/atomicio), so a process killed at any instant leaves the
// directory describing some prefix of completed stages — never a torn state.
//
// Integrity is layered: the manifest carries its own CRC-32 (any bit flip or
// truncation of the manifest is detected), and records a CRC-32 and byte size
// for every shard (any bit flip or truncation of a shard is detected before
// its gob payload is decoded). Stale or foreign checkpoints are fenced by a
// caller-supplied fingerprint — a digest of everything that determines the
// run's output — verified on Open. Violations surface as the typed
// ErrCorrupt and ErrMismatch; the package never panics on hostile input and
// never returns partially decoded state.
//
// The Log is nil-receiver safe: a nil *Log turns Save into a free no-op, so
// the pipeline's hot path pays nothing when checkpointing is disabled.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"github.com/arda-ml/arda/internal/atomicio"
)

// Typed failures; test with errors.Is. Wrapped errors name the offending
// file (manifest or shard).
var (
	// ErrCorrupt reports a checkpoint whose manifest or shard bytes fail
	// integrity verification (CRC mismatch, truncation, undecodable payload).
	ErrCorrupt = errors.New("checkpoint: corrupt")
	// ErrMismatch reports a structurally valid checkpoint recorded under a
	// different fingerprint — it belongs to different inputs or options and
	// must not seed a resume.
	ErrMismatch = errors.New("checkpoint: fingerprint mismatch")
)

// ManifestName is the manifest file inside a run directory.
const ManifestName = "MANIFEST.arda"

// manifestMagic heads the manifest file; the hex field is the CRC-32 (IEEE)
// of everything after the first newline.
const manifestMagic = "arda-checkpoint v1 crc="

// shardSuffix names shard files; Create removes stale ones.
const shardSuffix = ".shard"

// Entry records one completed stage in the manifest, in completion order.
type Entry struct {
	// Stage is the pipeline stage name ("prefilter", "coreset", "join",
	// "impute", "select", "materialize", "evaluate").
	Stage string
	// Batch is the plan-batch ordinal for per-batch stages, -1 otherwise.
	Batch int
	// Seq is the entry's 0-based position in the stage sequence.
	Seq int
	// StageSeed is the derived RNG seed the stage ran under (0 for stages
	// that draw no randomness) — recorded for replay diagnostics.
	StageSeed int64
	// Shard is the payload file name within the run directory.
	Shard string
	// CRC is the IEEE CRC-32 of the shard file's bytes.
	CRC uint32
	// Bytes is the shard file's size.
	Bytes int64
}

// manifest is the JSON document inside ManifestName.
type manifest struct {
	RunID       string
	Fingerprint string
	Seed        int64
	Entries     []Entry
}

// Log is one run's checkpoint directory. Methods are intended for the single
// goroutine driving the pipeline's stage sequence; a nil *Log no-ops Save
// and reports no entries.
type Log struct {
	dir string
	man manifest
}

// Create initializes dir as a fresh run log, creating the directory if
// needed and removing any previous run's manifest, shards, and stray temp
// files. Only files the checkpoint log owns are touched; anything else in
// dir is left alone.
func Create(dir, runID, fingerprint string, seed int64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if name == ManifestName || strings.HasSuffix(name, shardSuffix) ||
			strings.HasSuffix(name, shardSuffix+atomicio.TempSuffix) ||
			name == ManifestName+atomicio.TempSuffix {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("checkpoint: clearing stale %s: %w", name, err)
			}
		}
	}
	l := &Log{dir: dir, man: manifest{RunID: runID, Fingerprint: fingerprint, Seed: seed}}
	if err := l.writeManifest(); err != nil {
		return nil, err
	}
	return l, nil
}

// Open loads an existing run log for resume and verifies it: manifest CRC,
// per-entry invariants, shard presence, sizes, and CRCs, then the
// fingerprint. It returns ErrCorrupt or ErrMismatch (wrapped with the
// offending file name) on any violation, and os.ErrNotExist when dir holds
// no manifest at all — the caller may treat that as "nothing to resume".
func Open(dir, fingerprint string) (*Log, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	man, err := parseManifest(raw)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, man: *man}
	seen := make(map[string]bool, len(man.Entries))
	for i, e := range man.Entries {
		if e.Seq != i || e.Shard == "" || e.Shard != filepath.Base(e.Shard) || seen[e.Shard] {
			return nil, fmt.Errorf("checkpoint: %s: entry %d (%s) malformed: %w", ManifestName, i, e.Stage, ErrCorrupt)
		}
		seen[e.Shard] = true
		if err := l.verifyShard(e); err != nil {
			return nil, err
		}
	}
	if man.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint: %s: recorded fingerprint %s does not match this run's %s: %w",
			ManifestName, man.Fingerprint, fingerprint, ErrMismatch)
	}
	return l, nil
}

// parseManifest checks the self-CRC header and decodes the JSON body.
func parseManifest(raw []byte) (*manifest, error) {
	nl := bytes.IndexByte(raw, '\n')
	header := ""
	if nl >= 0 {
		header = string(raw[:nl])
	}
	if nl < 0 || !strings.HasPrefix(header, manifestMagic) {
		return nil, fmt.Errorf("checkpoint: %s: missing or mangled header: %w", ManifestName, ErrCorrupt)
	}
	var want uint32
	if _, err := fmt.Sscanf(strings.TrimPrefix(header, manifestMagic), "%08x", &want); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: unreadable header CRC: %w", ManifestName, ErrCorrupt)
	}
	body := raw[nl+1:]
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("checkpoint: %s: CRC %08x, manifest records %08x: %w", ManifestName, got, want, ErrCorrupt)
	}
	var man manifest
	if err := json.Unmarshal(body, &man); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %v: %w", ManifestName, err, ErrCorrupt)
	}
	return &man, nil
}

// verifyShard checks one shard file's existence, size, and CRC against its
// manifest entry.
func (l *Log) verifyShard(e Entry) error {
	raw, err := os.ReadFile(filepath.Join(l.dir, e.Shard))
	if err != nil {
		return fmt.Errorf("checkpoint: shard %s: %v: %w", e.Shard, err, ErrCorrupt)
	}
	if int64(len(raw)) != e.Bytes {
		return fmt.Errorf("checkpoint: shard %s: %d bytes, manifest records %d: %w", e.Shard, len(raw), e.Bytes, ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(raw); got != e.CRC {
		return fmt.Errorf("checkpoint: shard %s: CRC %08x, manifest records %08x: %w", e.Shard, got, e.CRC, ErrCorrupt)
	}
	return nil
}

// Save appends one completed stage: the payload is gob-encoded, written
// crash-safely as a new shard, and then the manifest is rewritten (also
// crash-safely) to reference it — so a crash between the two writes leaves
// the previous manifest, which simply does not know about the new shard. A
// nil *Log returns nil immediately without allocating.
func (l *Log) Save(stage string, batch int, stageSeed int64, payload any) error {
	if l == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("checkpoint: encoding %s stage: %w", stage, err)
	}
	seq := len(l.man.Entries)
	shard := shardName(seq, stage, batch)
	data := buf.Bytes()
	if err := atomicio.WriteFileBytes(filepath.Join(l.dir, shard), data); err != nil {
		return fmt.Errorf("checkpoint: writing shard %s: %w", shard, err)
	}
	l.man.Entries = append(l.man.Entries, Entry{
		Stage:     stage,
		Batch:     batch,
		Seq:       seq,
		StageSeed: stageSeed,
		Shard:     shard,
		CRC:       crc32.ChecksumIEEE(data),
		Bytes:     int64(len(data)),
	})
	if err := l.writeManifest(); err != nil {
		// Roll the in-memory view back so a later Save does not reference a
		// shard the on-disk manifest never acknowledged under a reused seq.
		l.man.Entries = l.man.Entries[:seq]
		return err
	}
	return nil
}

// Load decodes the shard of entry seq into target after re-verifying its
// size and CRC. Corruption (including undecodable gob) reports ErrCorrupt
// with the shard name.
func (l *Log) Load(seq int, target any) error {
	if l == nil || seq < 0 || seq >= len(l.man.Entries) {
		return fmt.Errorf("checkpoint: no entry %d: %w", seq, ErrCorrupt)
	}
	e := l.man.Entries[seq]
	if err := l.verifyShard(e); err != nil {
		return err
	}
	raw, err := os.ReadFile(filepath.Join(l.dir, e.Shard))
	if err != nil {
		return fmt.Errorf("checkpoint: shard %s: %v: %w", e.Shard, err, ErrCorrupt)
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(target); err != nil {
		return fmt.Errorf("checkpoint: shard %s: decoding: %v: %w", e.Shard, err, ErrCorrupt)
	}
	return nil
}

// Entries returns a copy of the completed-stage records in completion order.
func (l *Log) Entries() []Entry {
	if l == nil {
		return nil
	}
	out := make([]Entry, len(l.man.Entries))
	copy(out, l.man.Entries)
	return out
}

// Latest returns the last completed stage entry, if any.
func (l *Log) Latest() (Entry, bool) {
	if l == nil || len(l.man.Entries) == 0 {
		return Entry{}, false
	}
	return l.man.Entries[len(l.man.Entries)-1], true
}

// RunID returns the run identifier recorded at Create.
func (l *Log) RunID() string {
	if l == nil {
		return ""
	}
	return l.man.RunID
}

// Seed returns the run seed recorded at Create.
func (l *Log) Seed() int64 {
	if l == nil {
		return 0
	}
	return l.man.Seed
}

// Dir returns the run directory.
func (l *Log) Dir() string {
	if l == nil {
		return ""
	}
	return l.dir
}

// Truncate rewinds the log in dir to its first n entries, rewriting the
// manifest atomically and deleting the dropped shards. It is the "roll back
// to stage n" primitive — also exactly the on-disk state of a run killed
// right after its nth stage checkpoint, which the crash/resume suite uses to
// exercise every stage boundary from one completed run.
func Truncate(dir string, n int) error {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return err
	}
	man, err := parseManifest(raw)
	if err != nil {
		return err
	}
	if n < 0 || n > len(man.Entries) {
		return fmt.Errorf("checkpoint: truncate to %d of %d entries", n, len(man.Entries))
	}
	dropped := man.Entries[n:]
	man.Entries = man.Entries[:n]
	l := &Log{dir: dir, man: *man}
	if err := l.writeManifest(); err != nil {
		return err
	}
	for _, e := range dropped {
		if err := os.Remove(filepath.Join(dir, e.Shard)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return atomicio.SyncDir(dir)
}

// writeManifest rewrites the manifest crash-safely with a fresh self-CRC.
func (l *Log) writeManifest() error {
	body, err := json.MarshalIndent(&l.man, "", "  ")
	if err != nil {
		return err
	}
	head := fmt.Sprintf("%s%08x\n", manifestMagic, crc32.ChecksumIEEE(body))
	if err := atomicio.WriteFileBytes(filepath.Join(l.dir, ManifestName), append([]byte(head), body...)); err != nil {
		return fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	return nil
}

// shardName builds a shard file name: sequence, stage, and batch (when the
// stage is per-batch) — e.g. "003-join.b001.shard".
func shardName(seq int, stage string, batch int) string {
	if batch >= 0 {
		return fmt.Sprintf("%03d-%s.b%03d%s", seq, stage, batch, shardSuffix)
	}
	return fmt.Sprintf("%03d-%s%s", seq, stage, shardSuffix)
}
