package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/arda-ml/arda/internal/atomicio"
)

// Prune garbage-collects stale run logs so a long-running daemon's per-run
// checkpoint directories do not grow without bound. It recognizes two
// layouts: dir may itself be one run log (MANIFEST.arda at its top level —
// the `arda -checkpoint-dir` shape), and any immediate subdirectory of dir
// holding a manifest is an independent run log (the `ardad` per-run shape).
//
// A log is stale when its manifest was last written more than maxAge ago;
// the keepLatest most recently written logs are exempt regardless of age
// (keepLatest <= 0 exempts none). Pruning a log removes only the files the
// checkpoint package owns — manifest, shards, stray temp files — and then
// the containing subdirectory if that leaves it empty; foreign files are
// never touched. dir itself is never removed, only emptied of checkpoint
// files when it is a stale log.
//
// Pruning is safe to race with future runs: a pruned directory is
// indistinguishable from one that never checkpointed, and resume treats
// "nothing to resume" as a fresh start — losing a checkpoint costs recompute
// time, never correctness. maxAge <= 0 disables pruning (no-op, nil error).
// The names of the pruned logs (relative to dir) are returned.
//
// skip, when non-nil, exempts logs by relative name ("" for dir itself)
// regardless of age. Multi-process daemons pass a liveness probe here so a
// slow-but-alive run owned by another process — whose checkpoint mtimes can
// legitimately be older than the TTL while it holds a live lease — cannot
// have its resume state pruned out from under it.
func Prune(dir string, maxAge time.Duration, keepLatest int, skip func(rel string) bool) ([]string, error) {
	if maxAge <= 0 {
		return nil, nil
	}
	type log struct {
		rel   string // "" for dir itself
		path  string // directory containing the manifest
		mtime time.Time
	}
	var logs []log
	stat := func(rel, path string) {
		fi, err := os.Stat(filepath.Join(path, ManifestName))
		if err != nil {
			return
		}
		logs = append(logs, log{rel: rel, path: path, mtime: fi.ModTime()})
	}
	stat("", dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			stat(e.Name(), filepath.Join(dir, e.Name()))
		}
	}
	// Newest first; the keepLatest head is exempt from the age check.
	sort.Slice(logs, func(i, j int) bool { return logs[i].mtime.After(logs[j].mtime) })
	cutoff := time.Now().Add(-maxAge)
	var pruned []string
	for i, l := range logs {
		if i < keepLatest || !l.mtime.Before(cutoff) {
			continue
		}
		if skip != nil && skip(l.rel) {
			continue
		}
		if err := removeLogFiles(l.path); err != nil {
			return pruned, err
		}
		if l.rel != "" {
			// Remove the now-empty per-run directory; a directory still holding
			// foreign files is deliberately left in place.
			if err := os.Remove(l.path); err != nil && !errors.Is(err, os.ErrNotExist) {
				if rest, rerr := os.ReadDir(l.path); rerr == nil && len(rest) > 0 {
					pruned = append(pruned, l.rel)
					continue
				}
				return pruned, err
			}
		}
		name := l.rel
		if name == "" {
			name = "."
		}
		pruned = append(pruned, name)
	}
	if len(pruned) > 0 {
		// Make the deletions durable the same way writes are.
		if err := atomicio.SyncDir(dir); err != nil {
			return pruned, err
		}
	}
	return pruned, nil
}

// removeLogFiles deletes the checkpoint-owned files of one run log: the
// manifest, every shard, and stray temp files — the same ownership rule
// Create applies when clearing a directory for reuse.
func removeLogFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if ownedFile(name) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// ownedFile reports whether the checkpoint package owns a file of this name
// inside a run log directory.
func ownedFile(name string) bool {
	return name == ManifestName ||
		strings.HasSuffix(name, shardSuffix) ||
		strings.HasSuffix(name, shardSuffix+atomicio.TempSuffix) ||
		name == ManifestName+atomicio.TempSuffix
}
