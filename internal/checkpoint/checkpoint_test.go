package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/arda-ml/arda/internal/dataframe"
)

// payload mirrors the shape core snapshots: a table plus scalar progress.
type payload struct {
	Accum *dataframe.Table
	Kept  []string
	Round int
}

func samplePayload(round int) payload {
	return payload{
		Accum: dataframe.MustNewTable("accum",
			dataframe.NewNumeric("x", []float64{1, 2, 3}),
			dataframe.NewCategorical("c", []string{"a", "b", "a"}),
		),
		Kept:  []string{"x", "cand.y"},
		Round: round,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, "run-1", "fp-abc", 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Save("prefilter", -1, 0, samplePayload(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Save("join", 0, 101, samplePayload(1)); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, "fp-abc")
	if err != nil {
		t.Fatal(err)
	}
	if re.RunID() != "run-1" || re.Seed() != 42 {
		t.Fatalf("identity lost: runID=%q seed=%d", re.RunID(), re.Seed())
	}
	last, ok := re.Latest()
	if !ok || last.Stage != "join" || last.Batch != 0 || last.Seq != 1 || last.StageSeed != 101 {
		t.Fatalf("latest entry = %+v", last)
	}
	var got payload
	if err := re.Load(1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Round != 1 || len(got.Kept) != 2 || got.Accum == nil {
		t.Fatalf("payload = %+v", got)
	}
	if got.Accum.Digest() != samplePayload(1).Accum.Digest() {
		t.Fatal("table changed across checkpoint round trip")
	}
}

func TestSaveResumeAppendContinues(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, "r", "fp", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Save("prefilter", -1, 0, samplePayload(0)); err != nil {
		t.Fatal(err)
	}
	// A resumed process appends where the first left off.
	re, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Save("coreset", -1, 7, samplePayload(1)); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	entries := re2.Entries()
	if len(entries) != 2 || entries[1].Stage != "coreset" || entries[1].Seq != 1 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestOpenNoManifestIsNotExist(t *testing.T) {
	if _, err := Open(t.TempDir(), "fp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestOpenFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, "r", "fp-old", 1); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, "fp-new")
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
	if !strings.Contains(err.Error(), "fp-old") || !strings.Contains(err.Error(), "fp-new") {
		t.Fatalf("mismatch error should show both fingerprints: %v", err)
	}
}

func TestCreateClearsStaleRun(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, "old", "fp", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Save("prefilter", -1, 0, samplePayload(0)); err != nil {
		t.Fatal(err)
	}
	// A stray temp file from a crashed write must be swept too, and an
	// unrelated file must survive.
	if err := os.WriteFile(filepath.Join(dir, "000-x.shard.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, "new", "fp2", 2); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := map[string]bool{ManifestName: true, "notes.txt": true}
	if len(names) != 2 || !want[names[0]] || !want[names[1]] {
		t.Fatalf("dir after Create = %v", names)
	}
	re, err := Open(dir, "fp2")
	if err != nil {
		t.Fatal(err)
	}
	if re.RunID() != "new" || len(re.Entries()) != 0 {
		t.Fatalf("stale state leaked: runID=%q entries=%d", re.RunID(), len(re.Entries()))
	}
}

func TestTruncateRewindsAndDeletesShards(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, "r", "fp", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, stage := range []string{"prefilter", "coreset", "join"} {
		if err := l.Save(stage, -1, int64(i), samplePayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Truncate(dir, 1); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	entries := re.Entries()
	if len(entries) != 1 || entries[0].Stage != "prefilter" {
		t.Fatalf("entries after truncate = %+v", entries)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f.Name(), shardSuffix) && f.Name() != entries[0].Shard {
			t.Fatalf("dropped shard %s not deleted", f.Name())
		}
	}
	// Truncate to 0 = run that crashed before its first checkpoint.
	if err := Truncate(dir, 0); err != nil {
		t.Fatal(err)
	}
	re0, err := Open(dir, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(re0.Entries()) != 0 {
		t.Fatal("truncate to 0 left entries")
	}
	if err := Truncate(dir, 5); err == nil {
		t.Fatal("truncate past end should error")
	}
}

func TestNilLogNoOps(t *testing.T) {
	var l *Log
	if err := l.Save("prefilter", -1, 0, samplePayload(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Latest(); ok {
		t.Fatal("nil log has a latest entry")
	}
	if l.Entries() != nil || l.RunID() != "" || l.Seed() != 0 || l.Dir() != "" {
		t.Fatal("nil log accessors not zero")
	}
	if err := l.Load(0, &payload{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil log Load err = %v", err)
	}
}

func TestLoadOutOfRange(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, "r", "fp", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Load(0, &payload{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
