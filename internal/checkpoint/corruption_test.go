package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildRun lays down a three-stage checkpoint in dir and returns its files.
func buildRun(t *testing.T, dir string) []string {
	t.Helper()
	l, err := Create(dir, "run", "fp", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, stage := range []string{"prefilter", "coreset", "join"} {
		batch := -1
		if stage == "join" {
			batch = 0
		}
		if err := l.Save(stage, batch, int64(i), samplePayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// corrupt writes a mutated copy of the named file and reports whether Open
// (and, for surviving logs, Load of every entry) rejects the run with
// ErrCorrupt naming the file. Both truncation and single-bit flips must be
// caught — a checkpoint that resumes from mangled bytes is worse than no
// checkpoint at all.
func TestOpenRejectsEveryTruncationAndBitFlip(t *testing.T) {
	baseDir := t.TempDir()
	files := buildRun(t, baseDir)
	for _, name := range files {
		raw, err := os.ReadFile(filepath.Join(baseDir, name))
		if err != nil {
			t.Fatal(err)
		}
		// Truncations at several depths, including empty.
		for _, cut := range []int{0, 1, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
			if cut >= len(raw) {
				continue
			}
			assertRejected(t, baseDir, name, raw[:cut], "truncate@"+name)
		}
		// A bit flip in every region of the file: step through the bytes,
		// flipping one bit each time.
		step := len(raw)/64 + 1
		for off := 0; off < len(raw); off += step {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x40
			assertRejected(t, baseDir, name, mut, "bitflip@"+name)
		}
	}
}

// assertRejected clones the run, applies the mutation, and requires a typed
// ErrCorrupt that names the mangled file — never a panic, never a clean Open
// over bad bytes.
func assertRejected(t *testing.T, srcDir, victim string, mutated []byte, label string) {
	t.Helper()
	dir := t.TempDir()
	cloneRun(t, srcDir, dir)
	if err := os.WriteFile(filepath.Join(dir, victim), mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", label, r)
		}
	}()
	l, err := Open(dir, "fp")
	if err == nil {
		// Open passing is only acceptable if every Load still verifies; for a
		// CRC-covered format it should never happen, so treat it as silent
		// acceptance.
		for seq := range l.Entries() {
			if lerr := l.Load(seq, &payload{}); lerr != nil {
				err = lerr
				break
			}
		}
		if err == nil {
			t.Fatalf("%s: corruption accepted silently", label)
		}
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: err = %v, want ErrCorrupt", label, err)
	}
	if !strings.Contains(err.Error(), victim) {
		t.Fatalf("%s: error does not name the corrupt file: %v", label, err)
	}
}

func cloneRun(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A deleted shard with an intact manifest must also be rejected.
func TestOpenRejectsMissingShard(t *testing.T) {
	dir := t.TempDir()
	files := buildRun(t, dir)
	var shard string
	for _, f := range files {
		if strings.HasSuffix(f, shardSuffix) {
			shard = f
			break
		}
	}
	if shard == "" {
		t.Fatal("no shard written")
	}
	if err := os.Remove(filepath.Join(dir, shard)); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, "fp")
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), shard) {
		t.Fatalf("err = %v, want ErrCorrupt naming %s", err, shard)
	}
}

// FuzzParseManifest hammers the manifest parser with arbitrary bytes: it must
// return (typed) errors or a valid manifest, never panic.
func FuzzParseManifest(f *testing.F) {
	dir := f.TempDir()
	if _, err := Create(dir, "run", "fp", 7); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte(manifestMagic + "00000000\n{}"))
	f.Add([]byte("arda-checkpoint v1 crc=zzzzzzzz\n{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := parseManifest(data)
		if err != nil && man != nil {
			t.Fatal("error with non-nil manifest")
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped parse error: %v", err)
		}
	})
}
