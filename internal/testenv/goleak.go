package testenv

import (
	"runtime"
	"testing"
	"time"
)

// NoGoroutineLeak snapshots the goroutine count and returns a check to defer:
// it fails the test if the count has not returned to the baseline within a
// short grace period. The grace period matters — a canceled parallel stage
// returns to the caller before its helper goroutines finish their in-flight
// work items, so the check polls instead of sampling once. On failure it
// dumps all goroutine stacks so the leaked goroutine is identifiable.
//
//	defer testenv.NoGoroutineLeak(t)()
func NoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d goroutines before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	}
}
