//go:build race

package testenv

// RaceEnabled reports whether the race detector is compiled into the binary.
const RaceEnabled = true
