// Package testenv exposes build-environment facts tests adapt to. The main
// consumer is the allocation-regression suite: testing.AllocsPerRun counts
// the race detector's own bookkeeping allocations, so alloc tests skip when
// RaceEnabled is true and run in the dedicated non-race `make alloc` gate.
package testenv
