// Package runqueue is the run-management core of the augmentation service: a
// bounded, tenant-fair admission queue feeding a crash-tolerant supervisor
// that executes ARDA runs on the shared worker pool — optionally as one of N
// cooperating processes over a single shared state directory.
//
// Robustness invariants, in the order they were designed:
//
//   - No accepted run is ever lost. A run's record is persisted crash-safely
//     (internal/atomicio) under the state directory before Submit
//     acknowledges it, every state transition rewrites it, and Open requeues
//     any run found in a non-terminal state — so a `kill -9` of the daemon
//     at any instant is recovered by a restart over the same directory.
//   - Recovery is bit-identical. Each run checkpoints through the ordinary
//     pipeline machinery (internal/checkpoint) into a per-run directory, and
//     a requeued run resumes from its last completed stage; the checkpoint
//     layer's fingerprint + resume guarantees make the recovered result
//     identical to an uninterrupted run at any worker count.
//   - Admission is bounded and fair. The queue holds at most QueueCap
//     waiting runs globally and TenantQueueCap per tenant lane; submits
//     beyond either are rejected (ErrQueueFull / TenantLimitError → HTTP
//     429) rather than buffered without bound, and a draining manager
//     rejects everything (ErrDraining → HTTP 503) while in-flight runs
//     finish or checkpoint. Dispatch is deficit round-robin across tenant
//     lanes — DRRQuantum runs per lane per visit, with TenantMaxInFlight
//     capping each lane's concurrent executions — so a flood from one
//     tenant cannot starve the others.
//   - Failure is contained. Each run executes in a panic-isolated region;
//     transient failures retry with capped exponential backoff
//     (internal/retry); a run that still fails is marked failed without
//     affecting its neighbors. The chaos fault sites faults.SiteServerAdmit
//     and faults.SiteServerPersist let tests fire admission and persistence
//     failures deterministically.
//   - Ownership is leased and fenced (Config.LeaseTTL > 0). In shared-dir
//     mode every run is owned via a crash-safe filesystem lease
//     (internal/lease): admission acquires it, a heartbeat renews it at
//     TTL/3, and every record/checkpoint write re-verifies it first. A
//     reaper adopts runs whose lease is orphaned — expired, or held by a
//     dead process on this host — re-admitting them under a strictly larger
//     fencing token (a takeover). A stale owner observes lease.ErrLeaseLost
//     at its next fenced write or heartbeat and abandons without writing,
//     so two processes never corrupt one run's state; the worst race
//     outcome is duplicated compute, resolved by the higher token.
//
// Accounting is exact: every admitted, requeued, or taken-over run is, at
// all times, in exactly one of queued / running / completed / failed /
// canceled / lost, and the obs counters (queue.admitted, queue.requeued,
// lease.takeovers, queue.completed, queue.failed, queue.canceled,
// lease.lost, queue.rejected_full, queue.rejected_draining,
// queue.rejected_tenant) plus the queue.depth / queue.running gauges
// reconcile against that partition — the chaos suite asserts it in-process
// and the multi-daemon gate asserts it across SIGKILLed processes.
package runqueue

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/arda-ml/arda/internal/atomicio"
	"github.com/arda-ml/arda/internal/checkpoint"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/lease"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/retry"
)

// Typed admission failures; the HTTP layer maps them to 429 and 503.
var (
	// ErrQueueFull reports a submission rejected because the waiting queue is
	// at capacity.
	ErrQueueFull = errors.New("runqueue: queue full")
	// ErrDraining reports a submission rejected because the manager is
	// draining (or closed) and no longer admits runs.
	ErrDraining = errors.New("runqueue: draining, not admitting runs")
	// ErrNotFound reports an unknown run ID.
	ErrNotFound = errors.New("runqueue: no such run")
	// ErrNotOwned reports an operation (cancel) on a live run owned by
	// another process sharing the state directory; the HTTP layer maps it to
	// 409.
	ErrNotOwned = errors.New("runqueue: run is owned by another process")
)

// TenantLimitError reports a submission rejected by a per-tenant admission
// bound (queue cap or lane-table capacity); the HTTP layer maps it to 429
// with the tenant named in the body.
type TenantLimitError struct {
	Tenant string
	Reason string
}

// Error implements the error interface.
func (e *TenantLimitError) Error() string {
	return fmt.Sprintf("runqueue: tenant %q: %s", e.Tenant, e.Reason)
}

// maxLanes bounds the tenant-lane table so adversarial tenant-name floods
// cannot grow manager memory without bound.
const maxLanes = 256

// State is a run's lifecycle position.
type State string

const (
	// StateQueued: admitted, persisted, waiting for a supervisor slot. Also
	// the state a preempted, crash-interrupted, or taken-over run returns to.
	StateQueued State = "queued"
	// StateRunning: executing on the worker pool.
	StateRunning State = "running"
	// StateCompleted: finished successfully; result.json is published.
	StateCompleted State = "completed"
	// StateFailed: exhausted its retries (or exceeded its budget) and gave up.
	StateFailed State = "failed"
	// StateCanceled: terminated by a cancel request.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is an end state.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// RunResult is the deterministic summary of a completed run — everything a
// client needs to verify bit-identity without downloading the table. Scores
// are exact (float64 round-trips through JSON) and TableDigest fingerprints
// the full augmented table, so two runs are output-identical iff their
// RunResults match on the deterministic fields (Elapsed/Selection/ResumedFrom
// are informational).
type RunResult struct {
	BaseScore   float64  `json:"base_score"`
	FinalScore  float64  `json:"final_score"`
	KeptColumns []string `json:"kept_columns"`
	KeptTables  []string `json:"kept_tables"`
	TableDigest string   `json:"table_digest"`
	Rows        int      `json:"rows"`
	Cols        int      `json:"cols"`
	Quarantined int      `json:"quarantined"`
	Degraded    int      `json:"degraded"`
	ResumedFrom string   `json:"resumed_from,omitempty"`
	ElapsedMS   int64    `json:"elapsed_ms"`
	SelectionMS int64    `json:"selection_ms"`
}

// Record is one run's persisted document: the spec plus lifecycle state.
// It is rewritten crash-safely on every transition, and — in shared-dir
// mode — only ever by the process holding the run's lease, under the fence
// token recorded here.
type Record struct {
	ID   string `json:"id"`
	Seq  int64  `json:"seq"`
	Spec Spec   `json:"spec"`
	// Tenant is the resolved admission lane (spec tenant or the daemon
	// default).
	Tenant      string     `json:"tenant,omitempty"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	Attempts    int        `json:"attempts"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   time.Time  `json:"started_at,omitempty"`
	FinishedAt  time.Time  `json:"finished_at,omitempty"`
	Result      *RunResult `json:"result,omitempty"`
	// Fence is the monotonic fencing token of the current owner's lease
	// acquisition; every takeover persists a strictly larger one.
	Fence int64 `json:"fence,omitempty"`
	// Takeovers counts ownership changes (informational).
	Takeovers int `json:"takeovers,omitempty"`
}

// Config configures a Manager.
type Config struct {
	// StateDir is the daemon's durable root: runs/<id>/ record + result +
	// trace (+ lease), checkpoints/<id>/ pipeline checkpoints. Required. In
	// lease mode (LeaseTTL > 0) several processes may share one StateDir.
	StateDir string
	// DataDir is the default CSV corpus for specs that do not name one.
	DataDir string
	// QueueCap bounds the waiting queue globally; <= 0 means 16.
	QueueCap int
	// Concurrency is the number of runs executing at once; <= 0 means 2.
	// Concurrent runs share the process-wide worker pool.
	Concurrency int
	// Workers caps the shared worker pool for every run; 0 keeps the current
	// cap. Results are bit-identical at any value.
	Workers int
	// RunTimeout is the default per-run wall-clock budget for specs without
	// their own; 0 leaves runs unbounded.
	RunTimeout time.Duration
	// MaxCells / MaxCandidateBytes are default resource budgets for specs
	// without their own; 0 leaves them unbounded.
	MaxCells          int64
	MaxCandidateBytes int64
	// RetryAttempts/RetryBase/RetryMax shape the transient-failure retry of a
	// run (capped exponential backoff); zero values mean 3 attempts, 100ms
	// base, 2s cap.
	RetryAttempts int
	RetryBase     time.Duration
	RetryMax      time.Duration
	// CheckpointTTL, when > 0, prunes per-run checkpoint directories whose
	// last write is older than this at Open (checkpoint.Prune). Directories
	// whose run holds a live lease are never pruned.
	CheckpointTTL time.Duration
	// DefaultTenant is the admission lane for specs that name no tenant;
	// empty means "default".
	DefaultTenant string
	// TenantQueueCap bounds each tenant lane's waiting runs; <= 0 applies
	// QueueCap (i.e. only the global bound).
	TenantQueueCap int
	// TenantMaxInFlight caps each tenant's concurrently executing runs;
	// <= 0 means unlimited (bounded only by Concurrency).
	TenantMaxInFlight int
	// DRRQuantum is the deficit-round-robin quantum: how many runs one lane
	// may dispatch per visit before the scheduler moves on; <= 0 means 1.
	// It bounds how long a backlogged lane can hold the dispatcher, and
	// therefore any other lane's queue wait, to quantum runs per competitor.
	DRRQuantum int
	// LeaseTTL, when > 0, enables shared-state-dir mode: every run is owned
	// via a filesystem lease with this TTL, heartbeat-renewed at TTL/3, and
	// a reaper adopts runs whose lease is orphaned. 0 (the default) keeps
	// the single-process behavior with no lease files.
	LeaseTTL time.Duration
	// Owner overrides this manager's lease identity (tests); empty derives a
	// process-unique one.
	Owner string
	// Injector fires deterministic faults at the server's admission,
	// persistence, and lease-renewal sites and inside every run's pipeline —
	// the chaos hook.
	Injector *faults.Injector
	// Trace receives the queue's metrics (counters, gauges, wait/run
	// histograms). Typically the daemon's long-lived trace; nil disables.
	Trace *obs.Trace
	// Logf receives operational progress lines.
	Logf func(format string, args ...any)
}

// persistRetry is the backoff for crash-safe record writes: short, capped,
// and bounded — a persistence failure that survives it fails the transition.
var persistRetry = retry.Policy{Attempts: 3, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}

// run is the in-memory view of one run.
type run struct {
	rec    Record
	tenant string
	// cancel interrupts the executing pipeline; non-nil only while running.
	cancel func()
	// claimed is set (under the manager lock) the instant a supervisor pops
	// the run off its lane, closing the window where Cancel could see a
	// "queued" run that no supervisor will ever observe as canceled.
	claimed bool
	// userCanceled / drainPreempted disambiguate why the context died:
	// a user cancel terminates the run, a drain preemption requeues it.
	userCanceled   bool
	drainPreempted bool
	// lease is this process's ownership of the run (lease mode); nil after
	// release or outside lease mode.
	lease *lease.Lease
	// leaseLost marks a run fenced out of this process's custody: another
	// owner holds it now, so this process must not write its state again.
	// Set (and counted into lease.lost) exactly once.
	leaseLost bool
	// stream is the live event bus of the current execution attempt (nil
	// before the run first starts). It survives past completion so late
	// subscribers replay the final attempt's events.
	stream *obs.StreamSink
}

// lane is one tenant's admission queue plus its DRR dispatch state.
type lane struct {
	name string
	fifo []*run
	// credit is the lane's remaining deficit-round-robin allowance in the
	// current visit; refilled to the quantum when the scheduler arrives with
	// work, zeroed when the lane empties or is skipped.
	credit int
	// running counts the lane's executing runs (the TenantMaxInFlight gate).
	running int

	gDepth, gRunning     *obs.Gauge
	cAdmitted, cRejected *obs.Counter
	hWait                *obs.Histogram
}

// Manager owns the lanes, the supervisors, and the state directory.
type Manager struct {
	cfg       Config
	tr        *obs.Trace
	leaseMode bool
	owner     string
	quantum   int

	gDepth, gRunning                    *obs.Gauge
	cAdmitted, cRequeued                *obs.Counter
	cCompleted, cFailed, cCanceled      *obs.Counter
	cRejectedFull, cRejectedDraining    *obs.Counter
	cRejectedTenant                     *obs.Counter
	cRetried, cPruned, cPersistFailures *obs.Counter
	cTakeovers, cLost                   *obs.Counter
	cLeaseAcquired, cLeaseRenewals      *obs.Counter
	gLeasesHeld                         *obs.Gauge
	hWait, hRun                         *obs.Histogram

	mu       sync.Mutex
	cond     *sync.Cond
	runs     map[string]*run
	lanes    map[string]*lane
	order    []string // lane visit order (creation order)
	cursor   int      // DRR position in order
	nextSeq  int64
	running  int
	draining bool
	closed   bool
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// validTenant reports whether s is an acceptable tenant-lane name: 1–32
// characters of [a-z0-9_-], starting alphanumeric. The charset keeps metric
// names (tenant.<name>.admitted) and the HTTP surface unambiguous.
func validTenant(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-'
		if !ok || (i == 0 && (c == '_' || c == '-')) {
			return false
		}
	}
	return true
}

// Open loads (or initializes) the state directory, requeues every run left
// in a non-terminal state by a previous process (in lease mode: adopts every
// orphaned run, leaving live peers' runs alone), prunes stale checkpoint
// directories per Config.CheckpointTTL, and starts the supervisors — plus,
// in lease mode, the heartbeat and reaper loops. The returned manager is
// accepting submissions; stop it with Close.
func Open(cfg Config) (*Manager, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("runqueue: Config.StateDir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	if !validTenant(cfg.DefaultTenant) {
		return nil, fmt.Errorf("runqueue: bad Config.DefaultTenant %q", cfg.DefaultTenant)
	}
	if cfg.DRRQuantum <= 0 {
		cfg.DRRQuantum = 1
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "runs"), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "checkpoints"), 0o755); err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		parallel.SetMaxWorkers(cfg.Workers)
	}
	tr := cfg.Trace
	if tr == nil {
		// Counters back the exact-accounting contract, so the queue keeps
		// its own sink-less trace when the daemon does not supply one.
		tr = obs.New("runqueue")
	}
	m := &Manager{
		cfg:               cfg,
		leaseMode:         cfg.LeaseTTL > 0,
		owner:             cfg.Owner,
		quantum:           cfg.DRRQuantum,
		gDepth:            tr.Gauge("queue.depth"),
		gRunning:          tr.Gauge("queue.running"),
		cAdmitted:         tr.Counter("queue.admitted"),
		cRequeued:         tr.Counter("queue.requeued"),
		cCompleted:        tr.Counter("queue.completed"),
		cFailed:           tr.Counter("queue.failed"),
		cCanceled:         tr.Counter("queue.canceled"),
		cRejectedFull:     tr.Counter("queue.rejected_full"),
		cRejectedDraining: tr.Counter("queue.rejected_draining"),
		cRejectedTenant:   tr.Counter("queue.rejected_tenant"),
		cRetried:          tr.Counter("queue.run_retries"),
		cPruned:           tr.Counter("queue.checkpoints_pruned"),
		cPersistFailures:  tr.Counter("queue.persist_failures"),
		cTakeovers:        tr.Counter("lease.takeovers"),
		cLost:             tr.Counter("lease.lost"),
		cLeaseAcquired:    tr.Counter("lease.acquired"),
		cLeaseRenewals:    tr.Counter("lease.renewals"),
		gLeasesHeld:       tr.Gauge("lease.held"),
		hWait:             tr.Histogram("queue.wait"),
		hRun:              tr.Histogram("queue.run"),
		runs:              make(map[string]*run),
		lanes:             make(map[string]*lane),
		stopCh:            make(chan struct{}),
	}
	if m.owner == "" {
		m.owner = lease.DefaultOwner()
	}
	m.cond = sync.NewCond(&m.mu)
	m.tr = tr
	// Pre-register the default lane so /metrics exposes the arda_tenant_*
	// family from the first scrape, before any submission.
	m.laneForLocked(cfg.DefaultTenant)
	if err := m.recover(); err != nil {
		return nil, err
	}
	if m.leaseMode {
		// Adopt whatever a dead process (possibly our own previous
		// incarnation) left orphaned before supervisors start.
		m.reapOnce()
	}
	// The prune skip hook protects any run directory holding a live lease:
	// a slow-but-alive run on a peer process keeps its resume state even
	// when its checkpoint mtimes exceed the TTL.
	skip := func(rel string) bool {
		if rel == "" {
			return false
		}
		return lease.Live(filepath.Join(cfg.StateDir, "runs", rel, lease.FileName))
	}
	if pruned, err := checkpoint.Prune(filepath.Join(cfg.StateDir, "checkpoints"), cfg.CheckpointTTL, 0, skip); err != nil {
		m.logf("checkpoint prune: %v", err)
	} else if len(pruned) > 0 {
		m.cPruned.Add(int64(len(pruned)))
		m.logf("pruned %d stale checkpoint directories", len(pruned))
	}
	for i := 0; i < cfg.Concurrency; i++ {
		m.wg.Add(1)
		go m.supervise()
	}
	if m.leaseMode {
		m.wg.Add(2)
		go m.heartbeats()
		go m.reaper()
	}
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// runDir / ckDir / leasePath locate one run's durable artifacts.
func (m *Manager) runDir(id string) string {
	return filepath.Join(m.cfg.StateDir, "runs", id)
}
func (m *Manager) ckDir(id string) string {
	return filepath.Join(m.cfg.StateDir, "checkpoints", id)
}
func (m *Manager) leasePath(id string) string {
	return filepath.Join(m.runDir(id), lease.FileName)
}

// resolveTenant returns the admission lane for a spec.
func (m *Manager) resolveTenant(spec Spec) string {
	if spec.Tenant != "" {
		return spec.Tenant
	}
	return m.cfg.DefaultTenant
}

// laneForLocked returns (creating on first use) the named tenant lane with
// its metric instruments registered. Callers must hold m.mu — except during
// Open, before any goroutine exists.
func (m *Manager) laneForLocked(name string) *lane {
	if l, ok := m.lanes[name]; ok {
		return l
	}
	l := &lane{
		name:      name,
		gDepth:    m.tr.Gauge("tenant." + name + ".depth"),
		gRunning:  m.tr.Gauge("tenant." + name + ".running"),
		cAdmitted: m.tr.Counter("tenant." + name + ".admitted"),
		cRejected: m.tr.Counter("tenant." + name + ".rejected"),
		hWait:     m.tr.Histogram("tenant." + name + ".wait"),
	}
	m.lanes[name] = l
	m.order = append(m.order, name)
	return l
}

// totalQueuedLocked is the global waiting-run count across lanes.
func (m *Manager) totalQueuedLocked() int {
	n := 0
	for _, l := range m.lanes {
		n += len(l.fifo)
	}
	return n
}

// enqueueLocked appends a run to its tenant lane and refreshes the gauges.
func (m *Manager) enqueueLocked(r *run) {
	l := m.laneForLocked(r.tenant)
	l.fifo = append(l.fifo, r)
	l.gDepth.Set(int64(len(l.fifo)))
	m.gDepth.Set(int64(m.totalQueuedLocked()))
}

// removeFromLaneLocked takes a queued run out of its lane (cancel, lease
// loss); returns whether it was present.
func (m *Manager) removeFromLaneLocked(r *run) bool {
	l, ok := m.lanes[r.tenant]
	if !ok {
		return false
	}
	for i, q := range l.fifo {
		if q == r {
			l.fifo = append(l.fifo[:i], l.fifo[i+1:]...)
			l.gDepth.Set(int64(len(l.fifo)))
			m.gDepth.Set(int64(m.totalQueuedLocked()))
			return true
		}
	}
	return false
}

// nextLocked is the deficit-round-robin dispatcher: visit lanes in creation
// order from the cursor; a lane with dispatchable work (non-empty, under its
// in-flight quota) refills its credit to the quantum when exhausted and
// yields its FIFO head; a lane with nothing dispatchable forfeits its credit
// and is skipped. The cursor advances when a lane's credit (or backlog) runs
// out, so no lane holds the dispatcher for more than quantum consecutive
// runs while others wait — which bounds any tenant's queue delay under a
// competing flood to quantum runs per backlogged competitor.
func (m *Manager) nextLocked() *run {
	for scanned := 0; scanned < len(m.order); {
		if m.cursor >= len(m.order) {
			m.cursor = 0
		}
		l := m.lanes[m.order[m.cursor]]
		blocked := m.cfg.TenantMaxInFlight > 0 && l.running >= m.cfg.TenantMaxInFlight
		if len(l.fifo) == 0 || blocked {
			l.credit = 0
			m.cursor++
			scanned++
			continue
		}
		if l.credit <= 0 {
			l.credit = m.quantum
		}
		r := l.fifo[0]
		l.fifo = l.fifo[1:]
		l.credit--
		if l.credit <= 0 || len(l.fifo) == 0 {
			if len(l.fifo) == 0 {
				l.credit = 0
			}
			m.cursor++
		}
		l.gDepth.Set(int64(len(l.fifo)))
		m.gDepth.Set(int64(m.totalQueuedLocked()))
		return r
	}
	return nil
}

// updateLeaseGaugeLocked recounts held leases.
func (m *Manager) updateLeaseGaugeLocked() {
	var n int64
	for _, r := range m.runs {
		if r.lease != nil && !r.leaseLost {
			n++
		}
	}
	m.gLeasesHeld.Set(n)
}

// parseSeq extracts the numeric sequence from a run-directory name (r%06d).
func parseSeq(name string) (int64, bool) {
	if len(name) < 2 || name[0] != 'r' {
		return 0, false
	}
	n, err := strconv.ParseInt(name[1:], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// recover scans the state directory. In single-process mode it rebuilds the
// in-memory table and requeues every non-terminal run in original admission
// order, exactly as before. In lease mode it only advances nextSeq past
// every existing run directory — adoption of orphaned runs is the reaper's
// job (reapOnce), because a non-terminal record here may be live on a peer.
// Run records that cannot be parsed are skipped with a log line (a torn
// write cannot happen — records are written atomically — so an unreadable
// record means external damage, and dropping it is better than refusing to
// start).
func (m *Manager) recover() error {
	root := filepath.Join(m.cfg.StateDir, "runs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	var requeue []*run
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name()); ok && seq >= m.nextSeq {
			m.nextSeq = seq + 1
		}
		if m.leaseMode {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(root, e.Name(), "run.json"))
		if err != nil {
			m.logf("recover: skipping %s: %v", e.Name(), err)
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			m.logf("recover: skipping %s: unreadable record: %v", e.Name(), err)
			continue
		}
		r := &run{rec: rec, tenant: m.recordTenant(rec)}
		m.runs[rec.ID] = r
		if rec.Seq >= m.nextSeq {
			m.nextSeq = rec.Seq + 1
		}
		if !rec.State.Terminal() {
			requeue = append(requeue, r)
		}
	}
	sort.Slice(requeue, func(i, j int) bool { return requeue[i].rec.Seq < requeue[j].rec.Seq })
	for _, r := range requeue {
		r.rec.State = StateQueued
		if err := m.persist(r); err != nil {
			m.logf("recover: persisting requeued %s: %v", r.rec.ID, err)
		}
		m.enqueueLocked(r)
		m.cRequeued.Add(1)
		m.logf("requeued %s (%s/%s) from previous process", r.rec.ID, r.rec.Spec.Base, r.rec.Spec.Target)
	}
	return nil
}

// recordTenant resolves a persisted record's lane: the recorded one if
// present (admission stamped it), else re-resolved from the spec.
func (m *Manager) recordTenant(rec Record) string {
	if rec.Tenant != "" && validTenant(rec.Tenant) {
		return rec.Tenant
	}
	return m.resolveTenant(rec.Spec)
}

// persist writes the run's record crash-safely, retrying transient
// persistence faults with capped backoff. The faults.SiteServerPersist site
// is probed on every attempt so the chaos suite can fire deterministic
// persistence failures. In lease mode the write is fenced: the run's lease
// is re-verified immediately before it, and a lost lease aborts with
// lease.ErrLeaseLost, leaving the new owner's on-disk state untouched.
func (m *Manager) persist(r *run) error {
	m.mu.Lock()
	rec := r.rec
	lse := r.lease
	m.mu.Unlock()
	if lse != nil {
		if err := lse.Check(); err != nil {
			return err
		}
	}
	body, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	dir := m.runDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err = retry.Do(nil, persistRetry, faults.IsTransient, func() error {
		if err := m.cfg.Injector.Check(faults.SiteServerPersist, int(rec.Seq)); err != nil {
			return err
		}
		return atomicio.WriteFileBytes(filepath.Join(dir, "run.json"), body)
	})
	if err != nil {
		m.cPersistFailures.Add(1)
	}
	return err
}

// allocSeqLocked claims the next run sequence. In lease mode the claim is
// the atomic creation of the run directory itself — exactly one process
// sharing the state dir wins each number; losers advance and retry — so
// concurrent daemons partition the ID space without coordination.
func (m *Manager) allocSeqLocked() (int64, string, error) {
	for {
		seq := m.nextSeq
		m.nextSeq++
		id := fmt.Sprintf("r%06d", seq)
		if !m.leaseMode {
			return seq, id, nil
		}
		err := os.Mkdir(m.runDir(id), 0o755)
		if err == nil {
			return seq, id, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return 0, "", err
		}
		// A peer claimed this number; keep walking.
	}
}

// Submit validates and admits one run: the record is persisted (in lease
// mode: under a freshly acquired ownership lease) before the submission is
// acknowledged, so an accepted run survives any crash. Admission failures
// are typed: ErrQueueFull (global bound), *TenantLimitError (lane bound),
// ErrDraining (manager shutting down), spec validation errors, and injected
// admission faults.
func (m *Manager) Submit(spec Spec) (Record, error) {
	if err := spec.Validate(); err != nil {
		return Record{}, err
	}
	if spec.Dir == "" && m.cfg.DataDir == "" {
		return Record{}, fmt.Errorf("runqueue: spec.dir is required (daemon has no default data directory)")
	}
	tenant := m.resolveTenant(spec)

	m.mu.Lock()
	if m.draining || m.closed {
		m.cRejectedDraining.Add(1)
		m.mu.Unlock()
		return Record{}, ErrDraining
	}
	if m.totalQueuedLocked() >= m.cfg.QueueCap {
		m.cRejectedFull.Add(1)
		m.mu.Unlock()
		return Record{}, ErrQueueFull
	}
	if _, ok := m.lanes[tenant]; !ok && len(m.lanes) >= maxLanes {
		m.cRejectedTenant.Add(1)
		m.mu.Unlock()
		return Record{}, &TenantLimitError{Tenant: tenant, Reason: fmt.Sprintf("tenant-lane table full (%d lanes)", maxLanes)}
	}
	l := m.laneForLocked(tenant)
	laneCap := m.cfg.TenantQueueCap
	if laneCap <= 0 {
		laneCap = m.cfg.QueueCap
	}
	if len(l.fifo) >= laneCap {
		l.cRejected.Add(1)
		m.cRejectedTenant.Add(1)
		m.mu.Unlock()
		return Record{}, &TenantLimitError{Tenant: tenant, Reason: fmt.Sprintf("tenant queue at capacity (%d)", laneCap)}
	}
	seq, id, err := m.allocSeqLocked()
	m.mu.Unlock()
	if err != nil {
		return Record{}, err
	}
	// Best-effort removal of a lease-mode run directory claimed but never
	// persisted (admission failed below): an empty directory is harmless to
	// every scanner, this just keeps the tree tidy.
	abandonDir := func() {
		if m.leaseMode {
			os.Remove(m.leasePath(id))
			os.Remove(m.runDir(id))
		}
	}

	// The admission fault site runs outside the lock: Delay-kind faults
	// sleep, and a sleeping admission must not stall the whole queue.
	if err := m.cfg.Injector.Check(faults.SiteServerAdmit, int(seq)); err != nil {
		abandonDir()
		return Record{}, fmt.Errorf("runqueue: admission: %w", err)
	}

	r := &run{
		rec: Record{
			ID:          id,
			Seq:         seq,
			Spec:        spec,
			Tenant:      tenant,
			State:       StateQueued,
			SubmittedAt: time.Now(),
		},
		tenant: tenant,
	}
	if m.leaseMode {
		lse, err := lease.Acquire(m.leasePath(id), lease.Options{
			RunID: id, Owner: m.owner, Token: 1, TTL: m.cfg.LeaseTTL,
			Injector: m.cfg.Injector, Ordinal: int(seq),
		})
		if err != nil {
			abandonDir()
			return Record{}, fmt.Errorf("runqueue: leasing %s: %w", id, err)
		}
		r.lease = lse
		r.rec.Fence = lse.Token()
		m.cLeaseAcquired.Add(1)
	}
	if err := m.persist(r); err != nil {
		if r.lease != nil {
			r.lease.Release()
		}
		abandonDir()
		return Record{}, fmt.Errorf("runqueue: persisting admission: %w", err)
	}

	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return m.admitDuringDrain(r)
	}
	if m.totalQueuedLocked() >= m.cfg.QueueCap {
		m.mu.Unlock()
		return m.rejectPersisted(r, ErrQueueFull, "rejected: queue filled during admission")
	}
	if len(l.fifo) >= laneCap {
		m.mu.Unlock()
		return m.rejectPersisted(r, &TenantLimitError{Tenant: tenant, Reason: fmt.Sprintf("tenant queue filled during admission (%d)", laneCap)}, "rejected: tenant queue filled during admission")
	}
	m.runs[id] = r
	m.enqueueLocked(r)
	depth := m.totalQueuedLocked()
	m.cAdmitted.Add(1)
	l.cAdmitted.Add(1)
	m.updateLeaseGaugeLocked()
	rec := r.rec
	m.cond.Broadcast()
	m.mu.Unlock()
	m.logf("admitted %s (%s/%s) tenant %s, queue depth %d", rec.ID, rec.Spec.Base, rec.Spec.Target, tenant, depth)
	return rec, nil
}

// admitDuringDrain resolves the admission/drain race for a run already
// persisted when the drain was observed. In lease mode the run is ACCEPTED:
// its record is durable and its lease is released, which is precisely the
// hand-off contract — a peer's reaper (or the next process over this state
// dir) adopts it. The draining process never forgets a persisted record. In
// single-process mode there is no peer to hand off to, so the record is
// terminal-ized as canceled and the submission rejected with ErrDraining.
func (m *Manager) admitDuringDrain(r *run) (Record, error) {
	if !m.leaseMode {
		r.rec.State = StateCanceled
		r.rec.Error = "rejected: admission raced drain"
		r.rec.FinishedAt = time.Now()
		if err := m.persist(r); err != nil {
			m.logf("persisting drain-raced %s: %v", r.rec.ID, err)
		}
		m.cRejectedDraining.Add(1)
		return Record{}, ErrDraining
	}
	if err := r.lease.Release(); err != nil {
		m.logf("releasing drain-raced %s: %v", r.rec.ID, err)
	}
	m.mu.Lock()
	r.lease = nil
	m.runs[r.rec.ID] = r
	m.cAdmitted.Add(1)
	m.laneForLocked(r.tenant).cAdmitted.Add(1)
	rec := r.rec
	m.mu.Unlock()
	m.logf("admitted %s during drain: lease released for hand-off to a peer", rec.ID)
	return rec, nil
}

// rejectPersisted terminal-izes a persisted-but-not-enqueued run (capacity
// filled during admission) so a restart does not resurrect it, and returns
// the typed rejection.
func (m *Manager) rejectPersisted(r *run, rejection error, reason string) (Record, error) {
	m.mu.Lock()
	r.rec.State = StateCanceled
	r.rec.Error = reason
	r.rec.FinishedAt = time.Now()
	lse := r.lease
	m.mu.Unlock()
	if err := m.persist(r); err != nil {
		m.logf("persisting overflow-raced %s: %v", r.rec.ID, err)
	}
	if lse != nil {
		lse.Release()
		m.mu.Lock()
		r.lease = nil
		m.mu.Unlock()
	}
	if errors.Is(rejection, ErrQueueFull) {
		m.cRejectedFull.Add(1)
	} else {
		m.cRejectedTenant.Add(1)
	}
	return Record{}, rejection
}

// readRecord loads one run's persisted record from disk — how a lease-mode
// manager answers for runs owned by its peers. The id is validated as a
// plain run-directory name so HTTP path values cannot traverse.
func (m *Manager) readRecord(id string) (Record, error) {
	if _, ok := parseSeq(id); !ok || id != filepath.Base(id) {
		return Record{}, ErrNotFound
	}
	raw, err := os.ReadFile(filepath.Join(m.runDir(id), "run.json"))
	if err != nil {
		return Record{}, ErrNotFound
	}
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return Record{}, ErrNotFound
	}
	return rec, nil
}

// Get returns a snapshot of one run's record. In lease mode a run this
// process does not own (a peer's, or one fenced away from us) is answered
// from its on-disk record, so any daemon over the shared state dir can
// answer for any run.
func (m *Manager) Get(id string) (Record, error) {
	m.mu.Lock()
	r, ok := m.runs[id]
	if ok && !r.leaseLost {
		rec := r.rec
		m.mu.Unlock()
		return rec, nil
	}
	m.mu.Unlock()
	if !m.leaseMode {
		return Record{}, ErrNotFound
	}
	return m.readRecord(id)
}

// List returns snapshots of every known run in admission order — in lease
// mode, merged with the on-disk records of runs owned by peer processes.
func (m *Manager) List() []Record {
	m.mu.Lock()
	recs := make(map[string]Record, len(m.runs))
	for id, r := range m.runs {
		if !r.leaseLost {
			recs[id] = r.rec
		}
	}
	m.mu.Unlock()
	if m.leaseMode {
		entries, err := os.ReadDir(filepath.Join(m.cfg.StateDir, "runs"))
		if err == nil {
			for _, e := range entries {
				if !e.IsDir() {
					continue
				}
				if _, ok := recs[e.Name()]; ok {
					continue
				}
				if rec, err := m.readRecord(e.Name()); err == nil {
					recs[e.Name()] = rec
				}
			}
		}
	}
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Cancel terminates one run: a queued run is removed from its lane and
// marked canceled immediately; a running run's context is canceled and the
// supervisor marks it canceled when the pipeline stops (promptly, at the
// next stage boundary). Canceling a terminal run is a no-op. A live run
// owned by a peer process returns ErrNotOwned — cancel it through its
// owner.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	r, ok := m.runs[id]
	if !ok || r.leaseLost {
		m.mu.Unlock()
		if !m.leaseMode {
			return Record{}, ErrNotFound
		}
		rec, err := m.readRecord(id)
		if err != nil {
			return Record{}, err
		}
		if rec.State.Terminal() {
			return rec, nil
		}
		return rec, ErrNotOwned
	}
	switch {
	case r.rec.State == StateQueued && r.claimed:
		// A supervisor already popped the run and is about to execute it:
		// treat it as running so the cancellation reaches the pipeline
		// context instead of racing the queued→running transition.
		r.userCanceled = true
		if r.cancel != nil {
			r.cancel()
		}
		rec := r.rec
		m.mu.Unlock()
		return rec, nil
	case r.rec.State == StateQueued:
		m.removeFromLaneLocked(r)
		r.rec.State = StateCanceled
		r.rec.Error = "canceled while queued"
		r.rec.FinishedAt = time.Now()
		m.cCanceled.Add(1)
		lse := r.lease
		rec := r.rec
		m.mu.Unlock()
		if err := m.persist(r); err != nil {
			m.logf("persisting canceled %s: %v", id, err)
		}
		if lse != nil {
			lse.Release()
			m.mu.Lock()
			r.lease = nil
			m.updateLeaseGaugeLocked()
			m.mu.Unlock()
		}
		return rec, nil
	case r.rec.State == StateRunning:
		r.userCanceled = true
		if r.cancel != nil {
			r.cancel()
		}
		rec := r.rec
		m.mu.Unlock()
		return rec, nil
	default:
		rec := r.rec
		m.mu.Unlock()
		return rec, nil
	}
}

// Stream returns the live event bus of the run's current (or last) execution
// attempt and the path of its persisted NDJSON trace. The stream is nil for
// a run that has not started in this process; the trace file exists whenever
// an attempt ran to a flush (including interrupted attempts).
func (m *Manager) Stream(id string) (*obs.StreamSink, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		if m.leaseMode {
			// A peer's run: no live stream here, but the persisted trace may
			// exist (the caller stats it).
			if _, err := m.readRecordLockedless(id); err == nil {
				return nil, filepath.Join(m.runDir(id), "trace.ndjson"), nil
			}
		}
		return nil, "", ErrNotFound
	}
	return r.stream, filepath.Join(m.runDir(id), "trace.ndjson"), nil
}

// readRecordLockedless is readRecord without touching m.mu (Stream holds it).
func (m *Manager) readRecordLockedless(id string) (Record, error) {
	return m.readRecord(id)
}

// TablePath returns the augmented table written for a completed keep_table
// run.
func (m *Manager) TablePath(id string) string {
	return filepath.Join(m.runDir(id), "table.csv")
}

// LaneAccounting is one tenant lane's live occupancy and counters.
type LaneAccounting struct {
	Tenant             string
	Queued, Running    int64
	Admitted, Rejected int64
}

// Accounting is the queue's exact bookkeeping snapshot.
type Accounting struct {
	Admitted, Requeued, Takeovers     int64
	Completed, Failed, Canceled, Lost int64
	RejectedFull, RejectedDraining    int64
	RejectedTenant                    int64
	Queued, Running                   int64
	LeasesHeld, LeaseRenewals         int64
	Lanes                             []LaneAccounting
}

// Accounting returns the current counters plus live queue occupancy. At any
// quiescent point
//
//	Admitted + Requeued + Takeovers ==
//	    Completed + Failed + Canceled + Queued + Running + Lost
//
// holds exactly (requeued and taken-over runs are re-admissions of earlier
// admits, counted once per process that queued them; lost runs left this
// process's custody when their lease was stolen and are owned — and counted
// — by their new owner).
func (m *Manager) Accounting() Accounting {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Queued is counted from run states, not lane lengths: a drain-preempted
	// or drain-admitted run is in the queued state (persisted for the next
	// process) but no longer in any of this process's lanes. Runs fenced out
	// of our custody are excluded — their new owner counts them.
	var queued int64
	for _, r := range m.runs {
		if r.rec.State == StateQueued && !r.leaseLost {
			queued++
		}
	}
	a := Accounting{
		Admitted:         m.cAdmitted.Value(),
		Requeued:         m.cRequeued.Value(),
		Takeovers:        m.cTakeovers.Value(),
		Completed:        m.cCompleted.Value(),
		Failed:           m.cFailed.Value(),
		Canceled:         m.cCanceled.Value(),
		Lost:             m.cLost.Value(),
		RejectedFull:     m.cRejectedFull.Value(),
		RejectedDraining: m.cRejectedDraining.Value(),
		RejectedTenant:   m.cRejectedTenant.Value(),
		Queued:           queued,
		Running:          int64(m.running),
		LeasesHeld:       m.gLeasesHeld.Value(),
		LeaseRenewals:    m.cLeaseRenewals.Value(),
	}
	for _, name := range m.order {
		l := m.lanes[name]
		a.Lanes = append(a.Lanes, LaneAccounting{
			Tenant:   name,
			Queued:   int64(len(l.fifo)),
			Running:  int64(l.running),
			Admitted: l.cAdmitted.Value(),
			Rejected: l.cRejected.Value(),
		})
	}
	sort.Slice(a.Lanes, func(i, j int) bool { return a.Lanes[i].Tenant < a.Lanes[j].Tenant })
	return a
}

// Draining reports whether the manager has stopped admitting runs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining || m.closed
}

// Drain stops admission and waits up to timeout for in-flight runs to
// finish. Runs still executing at the deadline are preempted: their contexts
// are canceled, the pipeline stops at its next stage boundary (its
// checkpoint already holds every completed stage), and the run returns to
// the queued state so the next process resumes it. Queued runs stay queued
// on disk — and in lease mode their leases are released immediately, so a
// live peer adopts them without waiting for this process to exit. Drain
// returns once no run is executing; it is idempotent.
func (m *Manager) Drain(timeout time.Duration) error {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	// Hand queued runs off right away (lease mode): they are persisted, no
	// local supervisor will ever claim them, and a freed lease is the signal
	// peers adopt on.
	var handoff []*run
	if m.leaseMode {
		for _, r := range m.runs {
			if r.rec.State == StateQueued && !r.claimed && r.lease != nil && !r.leaseLost {
				handoff = append(handoff, r)
			}
		}
	}
	m.mu.Unlock()
	for _, r := range handoff {
		m.mu.Lock()
		lse := r.lease
		r.lease = nil
		m.updateLeaseGaugeLocked()
		m.mu.Unlock()
		if lse != nil {
			if err := lse.Release(); err != nil {
				m.logf("releasing %s for hand-off: %v", r.rec.ID, err)
			} else {
				m.logf("drain: released lease of queued %s for hand-off", r.rec.ID)
			}
		}
	}
	m.logf("draining: admission closed, waiting up to %s for in-flight runs", timeout)

	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		n := m.running
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Deadline passed: preempt. The pipeline checkpoints at every stage
	// boundary, so cancellation loses at most the in-progress stage.
	m.mu.Lock()
	for _, r := range m.runs {
		if r.rec.State == StateRunning && r.cancel != nil {
			r.drainPreempted = true
			r.cancel()
		}
	}
	m.mu.Unlock()
	m.logf("drain deadline passed: preempting in-flight runs at their next stage boundary")

	// Preempted pipelines return promptly; bound the wait defensively so a
	// wedged run cannot hang shutdown forever.
	force := time.Now().Add(timeout + 10*time.Second)
	for {
		m.mu.Lock()
		n := m.running
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		if time.Now().After(force) {
			return fmt.Errorf("runqueue: %d runs still executing after drain preemption", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close drains (with the given timeout) and stops the supervisors, the
// heartbeat, and the reaper. After Close returns, no manager goroutine is
// left running.
func (m *Manager) Close(drainTimeout time.Duration) error {
	err := m.Drain(drainTimeout)
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.wg.Wait()
	return err
}

// supervise is one supervisor loop: claim the next DRR-dispatched run,
// execute, repeat, until the manager drains or closes.
func (m *Manager) supervise() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var r *run
		for {
			if m.closed || m.draining {
				m.mu.Unlock()
				return
			}
			if r = m.nextLocked(); r != nil {
				break
			}
			m.cond.Wait()
		}
		r.claimed = true
		l := m.laneForLocked(r.tenant)
		l.running++
		l.gRunning.Set(int64(l.running))
		m.running++
		m.gRunning.Set(int64(m.running))
		m.mu.Unlock()

		m.execute(r)

		m.mu.Lock()
		m.running--
		m.gRunning.Set(int64(m.running))
		l.running--
		l.gRunning.Set(int64(l.running))
		// An in-flight quota slot freed: wake dispatchers that skipped this
		// lane while it was at its cap.
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// heartbeats renews every held lease at TTL/3 — one loop for all runs, so a
// manager holds O(1) timers regardless of load. A renewal observing loss
// fences the run out of our custody (markLost); other renewal errors are
// logged and retried next tick, with the TTL as the real deadline.
func (m *Manager) heartbeats() {
	defer m.wg.Done()
	interval := m.cfg.LeaseTTL / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
		}
		type held struct {
			r   *run
			lse *lease.Lease
		}
		m.mu.Lock()
		var list []held
		for _, r := range m.runs {
			if r.lease != nil && !r.leaseLost && !r.rec.State.Terminal() {
				list = append(list, held{r, r.lease})
			}
		}
		m.mu.Unlock()
		for _, h := range list {
			err := h.lse.Renew()
			switch {
			case err == nil:
				m.cLeaseRenewals.Add(1)
			case errors.Is(err, lease.ErrLeaseLost):
				m.markLost(h.r)
			default:
				m.logf("renewing lease of %s: %v", h.r.rec.ID, err)
			}
		}
	}
}

// markLost fences a run out of this process's custody, exactly once: the
// queued copy leaves its lane, the running copy's pipeline is canceled (it
// observes lease.ErrLeaseLost semantics at its next boundary and abandons),
// and the lease.lost counter takes the run out of our accounting partition —
// its new owner counts it from here on.
func (m *Manager) markLost(r *run) {
	m.mu.Lock()
	if r.leaseLost || r.rec.State.Terminal() || r.lease == nil {
		m.mu.Unlock()
		return
	}
	r.leaseLost = true
	cancel := r.cancel
	if r.rec.State == StateQueued && !r.claimed {
		m.removeFromLaneLocked(r)
	}
	m.cLost.Add(1)
	m.updateLeaseGaugeLocked()
	id := r.rec.ID
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	m.logf("lease lost for %s: fenced out, abandoning to the new owner", id)
}

// reaper periodically adopts orphaned runs (reapOnce) at TTL/2.
func (m *Manager) reaper() {
	defer m.wg.Done()
	interval := m.cfg.LeaseTTL / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.reapOnce()
		}
	}
}

// reapOnce scans the shared runs directory for non-terminal records whose
// lease is orphaned — released, expired, or held by a dead process on this
// host — and adopts each: acquire the lease under a strictly larger fencing
// token, persist the record back to queued under the new fence, and enqueue
// it locally. Exactly one contender wins each adoption (the lease acquire is
// atomic); losers skip. The old owner, if it still breathes anywhere, is
// fenced: its next heartbeat or state write observes the newer token and
// abandons.
func (m *Manager) reapOnce() {
	root := filepath.Join(m.cfg.StateDir, "runs")
	entries, err := os.ReadDir(root)
	if err != nil {
		m.logf("reap: %v", err)
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		m.mu.Lock()
		if m.draining || m.closed {
			m.mu.Unlock()
			return
		}
		if r, ok := m.runs[id]; ok && !r.leaseLost {
			m.mu.Unlock()
			continue // ours (live, terminal, or handed off) — not adoptable here
		}
		m.mu.Unlock()

		rec, err := m.readRecord(id)
		if err != nil {
			continue // not yet persisted, or damaged: nothing to adopt
		}
		if rec.State.Terminal() {
			continue
		}
		lp := m.leasePath(id)
		if lease.Live(lp) {
			continue // a live peer owns it
		}
		prev, _ := lease.Read(lp) // token floor even when orphaned
		token := rec.Fence
		if prev.Token > token {
			token = prev.Token
		}
		token++
		lse, err := lease.Acquire(lp, lease.Options{
			RunID: id, Owner: m.owner, Token: token, TTL: m.cfg.LeaseTTL,
			Injector: m.cfg.Injector, Ordinal: int(rec.Seq),
		})
		if err != nil {
			continue // lost the adoption race
		}
		prevOwner := prev.Owner
		if prevOwner == "" {
			prevOwner = "(released)"
		}
		// Sweep the previous owner's orphaned in-progress trace files; it is
		// dead or fenced, and its sink (if somehow still open) keeps writing
		// harmlessly into the unlinked inode.
		if stale, err := filepath.Glob(filepath.Join(m.runDir(id), "trace.ndjson.tmp*")); err == nil {
			for _, f := range stale {
				os.Remove(f)
			}
		}
		rec.State = StateQueued
		rec.Error = ""
		rec.StartedAt = time.Time{}
		rec.Fence = token
		rec.Takeovers++
		r := &run{rec: rec, tenant: m.recordTenant(rec), lease: lse}
		if err := m.persist(r); err != nil {
			m.logf("reap: persisting takeover of %s: %v", id, err)
			lse.Release()
			continue
		}
		m.mu.Lock()
		if m.draining || m.closed {
			m.mu.Unlock()
			lse.Release()
			return
		}
		m.runs[id] = r
		m.enqueueLocked(r)
		m.cTakeovers.Add(1)
		m.cLeaseAcquired.Add(1)
		m.updateLeaseGaugeLocked()
		m.cond.Broadcast()
		m.mu.Unlock()
		m.logf("takeover %s (fence %d) from %s", id, token, prevOwner)
	}
}
