// Package runqueue is the run-management core of the augmentation service: a
// bounded FIFO admission queue feeding a crash-tolerant supervisor that
// executes ARDA runs on the shared worker pool.
//
// Robustness invariants, in the order they were designed:
//
//   - No accepted run is ever lost. A run's record is persisted crash-safely
//     (internal/atomicio) under the state directory before Submit
//     acknowledges it, every state transition rewrites it, and Open requeues
//     any run found in a non-terminal state — so a `kill -9` of the daemon
//     at any instant is recovered by a restart over the same directory.
//   - Recovery is bit-identical. Each run checkpoints through the ordinary
//     pipeline machinery (internal/checkpoint) into a per-run directory, and
//     a requeued run resumes from its last completed stage; the checkpoint
//     layer's fingerprint + resume guarantees make the recovered result
//     identical to an uninterrupted run at any worker count.
//   - Admission is bounded. The queue holds at most QueueCap waiting runs;
//     submits beyond that are rejected (ErrQueueFull → HTTP 429) rather than
//     buffered without bound, and a draining manager rejects everything
//     (ErrDraining → HTTP 503) while in-flight runs finish or checkpoint.
//   - Failure is contained. Each run executes in a panic-isolated region;
//     transient failures retry with capped exponential backoff
//     (internal/retry); a run that still fails is marked failed without
//     affecting its neighbors. The chaos fault sites faults.SiteServerAdmit
//     and faults.SiteServerPersist let tests fire admission and persistence
//     failures deterministically.
//
// Accounting is exact: every admitted or requeued run is, at all times, in
// exactly one of queued / running / completed / failed / canceled, and the
// obs counters (queue.admitted, queue.requeued, queue.completed,
// queue.failed, queue.canceled, queue.rejected_full,
// queue.rejected_draining) plus the queue.depth / queue.running gauges
// reconcile against that partition — the chaos suite asserts it.
package runqueue

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/arda-ml/arda/internal/atomicio"
	"github.com/arda-ml/arda/internal/checkpoint"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/retry"
)

// Typed admission failures; the HTTP layer maps them to 429 and 503.
var (
	// ErrQueueFull reports a submission rejected because the waiting queue is
	// at capacity.
	ErrQueueFull = errors.New("runqueue: queue full")
	// ErrDraining reports a submission rejected because the manager is
	// draining (or closed) and no longer admits runs.
	ErrDraining = errors.New("runqueue: draining, not admitting runs")
	// ErrNotFound reports an unknown run ID.
	ErrNotFound = errors.New("runqueue: no such run")
)

// State is a run's lifecycle position.
type State string

const (
	// StateQueued: admitted, persisted, waiting for a supervisor slot. Also
	// the state a preempted or crash-interrupted run returns to.
	StateQueued State = "queued"
	// StateRunning: executing on the worker pool.
	StateRunning State = "running"
	// StateCompleted: finished successfully; result.json is published.
	StateCompleted State = "completed"
	// StateFailed: exhausted its retries (or exceeded its budget) and gave up.
	StateFailed State = "failed"
	// StateCanceled: terminated by a cancel request.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is an end state.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// RunResult is the deterministic summary of a completed run — everything a
// client needs to verify bit-identity without downloading the table. Scores
// are exact (float64 round-trips through JSON) and TableDigest fingerprints
// the full augmented table, so two runs are output-identical iff their
// RunResults match on the deterministic fields (Elapsed/Selection/ResumedFrom
// are informational).
type RunResult struct {
	BaseScore   float64  `json:"base_score"`
	FinalScore  float64  `json:"final_score"`
	KeptColumns []string `json:"kept_columns"`
	KeptTables  []string `json:"kept_tables"`
	TableDigest string   `json:"table_digest"`
	Rows        int      `json:"rows"`
	Cols        int      `json:"cols"`
	Quarantined int      `json:"quarantined"`
	Degraded    int      `json:"degraded"`
	ResumedFrom string   `json:"resumed_from,omitempty"`
	ElapsedMS   int64    `json:"elapsed_ms"`
	SelectionMS int64    `json:"selection_ms"`
}

// Record is one run's persisted document: the spec plus lifecycle state.
// It is rewritten crash-safely on every transition.
type Record struct {
	ID          string     `json:"id"`
	Seq         int64      `json:"seq"`
	Spec        Spec       `json:"spec"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	Attempts    int        `json:"attempts"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   time.Time  `json:"started_at,omitempty"`
	FinishedAt  time.Time  `json:"finished_at,omitempty"`
	Result      *RunResult `json:"result,omitempty"`
}

// Config configures a Manager.
type Config struct {
	// StateDir is the daemon's durable root: runs/<id>/ record + result +
	// trace, checkpoints/<id>/ pipeline checkpoints. Required.
	StateDir string
	// DataDir is the default CSV corpus for specs that do not name one.
	DataDir string
	// QueueCap bounds the waiting queue; <= 0 means 16.
	QueueCap int
	// Concurrency is the number of runs executing at once; <= 0 means 2.
	// Concurrent runs share the process-wide worker pool.
	Concurrency int
	// Workers caps the shared worker pool for every run; 0 keeps the current
	// cap. Results are bit-identical at any value.
	Workers int
	// RunTimeout is the default per-run wall-clock budget for specs without
	// their own; 0 leaves runs unbounded.
	RunTimeout time.Duration
	// MaxCells / MaxCandidateBytes are default resource budgets for specs
	// without their own; 0 leaves them unbounded.
	MaxCells          int64
	MaxCandidateBytes int64
	// RetryAttempts/RetryBase/RetryMax shape the transient-failure retry of a
	// run (capped exponential backoff); zero values mean 3 attempts, 100ms
	// base, 2s cap.
	RetryAttempts int
	RetryBase     time.Duration
	RetryMax      time.Duration
	// CheckpointTTL, when > 0, prunes per-run checkpoint directories whose
	// last write is older than this at Open (checkpoint.Prune).
	CheckpointTTL time.Duration
	// Injector fires deterministic faults at the server's admission and
	// persistence sites and inside every run's pipeline — the chaos hook.
	Injector *faults.Injector
	// Trace receives the queue's metrics (counters, gauges, wait/run
	// histograms). Typically the daemon's long-lived trace; nil disables.
	Trace *obs.Trace
	// Logf receives operational progress lines.
	Logf func(format string, args ...any)
}

// persistRetry is the backoff for crash-safe record writes: short, capped,
// and bounded — a persistence failure that survives it fails the transition.
var persistRetry = retry.Policy{Attempts: 3, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}

// run is the in-memory view of one run.
type run struct {
	rec Record
	// cancel interrupts the executing pipeline; non-nil only while running.
	cancel func()
	// claimed is set (under the manager lock) the instant a supervisor pops
	// the run off the queue, closing the window where Cancel could see a
	// "queued" run that no supervisor will ever observe as canceled.
	claimed bool
	// userCanceled / drainPreempted disambiguate why the context died:
	// a user cancel terminates the run, a drain preemption requeues it.
	userCanceled   bool
	drainPreempted bool
	// stream is the live event bus of the current execution attempt (nil
	// before the run first starts). It survives past completion so late
	// subscribers replay the final attempt's events.
	stream *obs.StreamSink
}

// Manager owns the queue, the supervisors, and the state directory.
type Manager struct {
	cfg Config

	gDepth, gRunning                    *obs.Gauge
	cAdmitted, cRequeued                *obs.Counter
	cCompleted, cFailed, cCanceled      *obs.Counter
	cRejectedFull, cRejectedDraining    *obs.Counter
	cRetried, cPruned, cPersistFailures *obs.Counter
	hWait, hRun                         *obs.Histogram

	mu       sync.Mutex
	cond     *sync.Cond
	runs     map[string]*run
	queue    []*run // FIFO of queued runs
	nextSeq  int64
	running  int
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// Open loads (or initializes) the state directory, requeues every run left
// in a non-terminal state by a previous process, prunes stale checkpoint
// directories per Config.CheckpointTTL, and starts the supervisors. The
// returned manager is accepting submissions; stop it with Close.
func Open(cfg Config) (*Manager, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("runqueue: Config.StateDir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "runs"), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "checkpoints"), 0o755); err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		parallel.SetMaxWorkers(cfg.Workers)
	}
	tr := cfg.Trace
	if tr == nil {
		// Counters back the exact-accounting contract, so the queue keeps
		// its own sink-less trace when the daemon does not supply one.
		tr = obs.New("runqueue")
	}
	m := &Manager{
		cfg:               cfg,
		gDepth:            tr.Gauge("queue.depth"),
		gRunning:          tr.Gauge("queue.running"),
		cAdmitted:         tr.Counter("queue.admitted"),
		cRequeued:         tr.Counter("queue.requeued"),
		cCompleted:        tr.Counter("queue.completed"),
		cFailed:           tr.Counter("queue.failed"),
		cCanceled:         tr.Counter("queue.canceled"),
		cRejectedFull:     tr.Counter("queue.rejected_full"),
		cRejectedDraining: tr.Counter("queue.rejected_draining"),
		cRetried:          tr.Counter("queue.run_retries"),
		cPruned:           tr.Counter("queue.checkpoints_pruned"),
		cPersistFailures:  tr.Counter("queue.persist_failures"),
		hWait:             tr.Histogram("queue.wait"),
		hRun:              tr.Histogram("queue.run"),
		runs:              make(map[string]*run),
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.recover(); err != nil {
		return nil, err
	}
	if pruned, err := checkpoint.Prune(filepath.Join(cfg.StateDir, "checkpoints"), cfg.CheckpointTTL, 0); err != nil {
		m.logf("checkpoint prune: %v", err)
	} else if len(pruned) > 0 {
		m.cPruned.Add(int64(len(pruned)))
		m.logf("pruned %d stale checkpoint directories", len(pruned))
	}
	for i := 0; i < cfg.Concurrency; i++ {
		m.wg.Add(1)
		go m.supervise()
	}
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// runDir / ckDir locate one run's durable artifacts.
func (m *Manager) runDir(id string) string {
	return filepath.Join(m.cfg.StateDir, "runs", id)
}
func (m *Manager) ckDir(id string) string {
	return filepath.Join(m.cfg.StateDir, "checkpoints", id)
}

// recover scans the state directory, rebuilding the in-memory table and
// requeueing every non-terminal run in original admission order. Run records
// that cannot be parsed are skipped with a log line (a torn write cannot
// happen — records are written atomically — so an unreadable record means
// external damage, and dropping it is better than refusing to start).
func (m *Manager) recover() error {
	root := filepath.Join(m.cfg.StateDir, "runs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	var requeue []*run
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(root, e.Name(), "run.json"))
		if err != nil {
			m.logf("recover: skipping %s: %v", e.Name(), err)
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			m.logf("recover: skipping %s: unreadable record: %v", e.Name(), err)
			continue
		}
		r := &run{rec: rec}
		m.runs[rec.ID] = r
		if rec.Seq >= m.nextSeq {
			m.nextSeq = rec.Seq + 1
		}
		if !rec.State.Terminal() {
			requeue = append(requeue, r)
		}
	}
	sort.Slice(requeue, func(i, j int) bool { return requeue[i].rec.Seq < requeue[j].rec.Seq })
	for _, r := range requeue {
		r.rec.State = StateQueued
		if err := m.persist(r); err != nil {
			m.logf("recover: persisting requeued %s: %v", r.rec.ID, err)
		}
		m.queue = append(m.queue, r)
		m.cRequeued.Add(1)
		m.logf("requeued %s (%s/%s) from previous process", r.rec.ID, r.rec.Spec.Base, r.rec.Spec.Target)
	}
	m.gDepth.Set(int64(len(m.queue)))
	return nil
}

// persist writes the run's record crash-safely, retrying transient
// persistence faults with capped backoff. The faults.SiteServerPersist site
// is probed on every attempt so the chaos suite can fire deterministic
// persistence failures.
func (m *Manager) persist(r *run) error {
	rec := r.rec
	body, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	dir := m.runDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err = retry.Do(nil, persistRetry, faults.IsTransient, func() error {
		if err := m.cfg.Injector.Check(faults.SiteServerPersist, int(rec.Seq)); err != nil {
			return err
		}
		return atomicio.WriteFileBytes(filepath.Join(dir, "run.json"), body)
	})
	if err != nil {
		m.cPersistFailures.Add(1)
	}
	return err
}

// Submit validates and admits one run: the record is persisted before the
// submission is acknowledged, so an accepted run survives any crash.
// Admission failures are typed: ErrQueueFull (bounded queue at capacity),
// ErrDraining (manager shutting down), spec validation errors, and injected
// admission faults.
func (m *Manager) Submit(spec Spec) (Record, error) {
	if err := spec.Validate(); err != nil {
		return Record{}, err
	}
	if spec.Dir == "" && m.cfg.DataDir == "" {
		return Record{}, fmt.Errorf("runqueue: spec.dir is required (daemon has no default data directory)")
	}
	m.mu.Lock()
	if m.draining || m.closed {
		m.cRejectedDraining.Add(1)
		m.mu.Unlock()
		return Record{}, ErrDraining
	}
	if len(m.queue) >= m.cfg.QueueCap {
		m.cRejectedFull.Add(1)
		m.mu.Unlock()
		return Record{}, ErrQueueFull
	}
	seq := m.nextSeq
	m.nextSeq++
	m.mu.Unlock()

	// The admission fault site runs outside the lock: Delay-kind faults
	// sleep, and a sleeping admission must not stall the whole queue.
	if err := m.cfg.Injector.Check(faults.SiteServerAdmit, int(seq)); err != nil {
		return Record{}, fmt.Errorf("runqueue: admission: %w", err)
	}

	r := &run{rec: Record{
		ID:          fmt.Sprintf("r%06d", seq),
		Seq:         seq,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now(),
	}}
	if err := m.persist(r); err != nil {
		return Record{}, fmt.Errorf("runqueue: persisting admission: %w", err)
	}

	m.mu.Lock()
	if m.draining || m.closed {
		// Drain began while we were persisting: reject rather than enqueue a
		// run no supervisor will pick up; the orphan record on disk is
		// terminal-ized so a restart does not resurrect a rejected run.
		m.mu.Unlock()
		r.rec.State = StateCanceled
		r.rec.Error = "rejected: admission raced drain"
		r.rec.FinishedAt = time.Now()
		if err := m.persist(r); err != nil {
			m.logf("persisting drain-raced %s: %v", r.rec.ID, err)
		}
		m.cRejectedDraining.Add(1)
		return Record{}, ErrDraining
	}
	if len(m.queue) >= m.cfg.QueueCap {
		m.mu.Unlock()
		r.rec.State = StateCanceled
		r.rec.Error = "rejected: queue filled during admission"
		r.rec.FinishedAt = time.Now()
		if err := m.persist(r); err != nil {
			m.logf("persisting overflow-raced %s: %v", r.rec.ID, err)
		}
		m.cRejectedFull.Add(1)
		return Record{}, ErrQueueFull
	}
	m.runs[r.rec.ID] = r
	m.queue = append(m.queue, r)
	depth := len(m.queue)
	m.gDepth.Set(int64(depth))
	m.cAdmitted.Add(1)
	rec := r.rec
	m.cond.Broadcast()
	m.mu.Unlock()
	m.logf("admitted %s (%s/%s), queue depth %d", rec.ID, rec.Spec.Base, rec.Spec.Target, depth)
	return rec, nil
}

// Get returns a snapshot of one run's record.
func (m *Manager) Get(id string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return Record{}, ErrNotFound
	}
	return r.rec, nil
}

// List returns snapshots of every known run in admission order.
func (m *Manager) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.runs))
	for _, r := range m.runs {
		out = append(out, r.rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Cancel terminates one run: a queued run is removed from the queue and
// marked canceled immediately; a running run's context is canceled and the
// supervisor marks it canceled when the pipeline stops (promptly, at the
// next stage boundary). Canceling a terminal run is a no-op.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	r, ok := m.runs[id]
	if !ok {
		m.mu.Unlock()
		return Record{}, ErrNotFound
	}
	switch {
	case r.rec.State == StateQueued && r.claimed:
		// A supervisor already popped the run and is about to execute it:
		// treat it as running so the cancellation reaches the pipeline
		// context instead of racing the queued→running transition.
		r.userCanceled = true
		if r.cancel != nil {
			r.cancel()
		}
		rec := r.rec
		m.mu.Unlock()
		return rec, nil
	case r.rec.State == StateQueued:
		for i, q := range m.queue {
			if q == r {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.gDepth.Set(int64(len(m.queue)))
		r.rec.State = StateCanceled
		r.rec.Error = "canceled while queued"
		r.rec.FinishedAt = time.Now()
		m.cCanceled.Add(1)
		rec := r.rec
		m.mu.Unlock()
		if err := m.persist(r); err != nil {
			m.logf("persisting canceled %s: %v", id, err)
		}
		return rec, nil
	case r.rec.State == StateRunning:
		r.userCanceled = true
		if r.cancel != nil {
			r.cancel()
		}
		rec := r.rec
		m.mu.Unlock()
		return rec, nil
	default:
		rec := r.rec
		m.mu.Unlock()
		return rec, nil
	}
}

// Stream returns the live event bus of the run's current (or last) execution
// attempt and the path of its persisted NDJSON trace. The stream is nil for
// a run that has not started in this process; the trace file exists whenever
// an attempt ran to a flush (including interrupted attempts).
func (m *Manager) Stream(id string) (*obs.StreamSink, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	if !ok {
		return nil, "", ErrNotFound
	}
	return r.stream, filepath.Join(m.runDir(id), "trace.ndjson"), nil
}

// TablePath returns the augmented table written for a completed keep_table
// run.
func (m *Manager) TablePath(id string) string {
	return filepath.Join(m.runDir(id), "table.csv")
}

// Accounting is the queue's exact bookkeeping snapshot.
type Accounting struct {
	Admitted, Requeued             int64
	Completed, Failed, Canceled    int64
	RejectedFull, RejectedDraining int64
	Queued, Running                int64
}

// Accounting returns the current counters plus live queue occupancy. At any
// quiescent point Admitted+Requeued == Completed+Failed+Canceled+Queued+
// Running holds exactly (requeued runs are re-admissions of earlier admits,
// counted once per process that queued them).
func (m *Manager) Accounting() Accounting {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Queued is counted from run states, not queue length: a drain-preempted
	// run is back in the queued state (persisted for the next process) but no
	// longer in this process's queue slice.
	var queued int64
	for _, r := range m.runs {
		if r.rec.State == StateQueued {
			queued++
		}
	}
	return Accounting{
		Admitted:         m.cAdmitted.Value(),
		Requeued:         m.cRequeued.Value(),
		Completed:        m.cCompleted.Value(),
		Failed:           m.cFailed.Value(),
		Canceled:         m.cCanceled.Value(),
		RejectedFull:     m.cRejectedFull.Value(),
		RejectedDraining: m.cRejectedDraining.Value(),
		Queued:           queued,
		Running:          int64(m.running),
	}
}

// Draining reports whether the manager has stopped admitting runs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining || m.closed
}

// Drain stops admission and waits up to timeout for in-flight runs to
// finish. Runs still executing at the deadline are preempted: their contexts
// are canceled, the pipeline stops at its next stage boundary (its
// checkpoint already holds every completed stage), and the run returns to
// the queued state so the next process resumes it. Queued runs stay queued
// on disk. Drain returns once no run is executing; it is idempotent.
func (m *Manager) Drain(timeout time.Duration) error {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.logf("draining: admission closed, waiting up to %s for in-flight runs", timeout)

	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		n := m.running
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Deadline passed: preempt. The pipeline checkpoints at every stage
	// boundary, so cancellation loses at most the in-progress stage.
	m.mu.Lock()
	for _, r := range m.runs {
		if r.rec.State == StateRunning && r.cancel != nil {
			r.drainPreempted = true
			r.cancel()
		}
	}
	m.mu.Unlock()
	m.logf("drain deadline passed: preempting in-flight runs at their next stage boundary")

	// Preempted pipelines return promptly; bound the wait defensively so a
	// wedged run cannot hang shutdown forever.
	force := time.Now().Add(timeout + 10*time.Second)
	for {
		m.mu.Lock()
		n := m.running
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		if time.Now().After(force) {
			return fmt.Errorf("runqueue: %d runs still executing after drain preemption", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close drains (with the given timeout) and stops the supervisors. After
// Close returns, no manager goroutine is left running.
func (m *Manager) Close(drainTimeout time.Duration) error {
	err := m.Drain(drainTimeout)
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	return err
}

// supervise is one supervisor loop: claim the FIFO head, execute, repeat,
// until the manager drains or closes.
func (m *Manager) supervise() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.closed && !m.draining && len(m.queue) == 0 {
			m.cond.Wait()
		}
		if m.closed || m.draining {
			m.mu.Unlock()
			return
		}
		r := m.queue[0]
		m.queue = m.queue[1:]
		r.claimed = true
		m.gDepth.Set(int64(len(m.queue)))
		m.running++
		m.gRunning.Set(int64(m.running))
		m.mu.Unlock()

		m.execute(r)

		m.mu.Lock()
		m.running--
		m.gRunning.Set(int64(m.running))
		m.mu.Unlock()
	}
}
