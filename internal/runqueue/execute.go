package runqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"github.com/arda-ml/arda/internal/atomicio"
	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/lease"
	"github.com/arda-ml/arda/internal/obs"
	"github.com/arda-ml/arda/internal/retry"
)

// execute drives one claimed run from queued to a terminal state (or back to
// queued, if a drain preempts it; or abandoned, if its lease is stolen). It
// owns the run's full failure surface: panics in the attempt are contained
// and converted to errors, transient failures retry with capped exponential
// backoff, and every state transition persists — fenced, in lease mode —
// before execute returns the supervisor to the queue.
func (m *Manager) execute(r *run) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	m.mu.Lock()
	if r.leaseLost {
		// Fenced out between the queue pop and here: the new owner has it.
		id := r.rec.ID
		m.mu.Unlock()
		m.logf("abandoned %s before start: lease lost to another owner", id)
		return
	}
	r.rec.State = StateRunning
	r.rec.StartedAt = time.Now()
	r.rec.Error = ""
	r.cancel = cancel
	if r.userCanceled {
		// Canceled in the claim window between the queue pop and here: the
		// attempt below starts with a dead context and stops immediately.
		cancel()
	}
	wait := r.rec.StartedAt.Sub(r.rec.SubmittedAt)
	l := m.lanes[r.tenant]
	m.mu.Unlock()
	m.hWait.Observe(int64(wait))
	if l != nil {
		l.hWait.Observe(int64(wait))
	}
	if err := m.persist(r); err != nil {
		if errors.Is(err, lease.ErrLeaseLost) {
			m.markLost(r)
			m.abandonRun(r)
			return
		}
		m.logf("persisting running %s: %v", r.rec.ID, err)
	}
	m.logf("started %s after %s queued", r.rec.ID, wait.Round(time.Millisecond))

	policy := retry.Policy{Attempts: m.cfg.RetryAttempts, Base: m.cfg.RetryBase, Max: m.cfg.RetryMax}
	var res *RunResult
	var err error
	start := time.Now()
	for try := 1; ; try++ {
		res, err = m.attempt(ctx, r)
		if err == nil || !faults.IsTransient(err) || try >= policy.Attempts {
			break
		}
		// Transient failure with budget left: back off (abandoning the wait
		// if the run is canceled meanwhile) and go again. The next attempt
		// resumes from the run's checkpoint, so retries never repeat stages
		// that already completed.
		m.cRetried.Add(1)
		m.logf("%s attempt %d failed (transient): %v — retrying", r.rec.ID, try, err)
		if wait := policy.Backoff(try + 1); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		if ctx.Err() != nil {
			err = core.ErrCanceled
			break
		}
	}
	m.hRun.Observe(int64(time.Since(start)))

	m.mu.Lock()
	r.cancel = nil
	preempted := r.drainPreempted && !r.userCanceled
	lost := r.leaseLost
	m.mu.Unlock()

	switch {
	case lost || errors.Is(err, lease.ErrLeaseLost):
		// Fenced out mid-run (heartbeat observed the theft, or a fenced write
		// did): the new owner resumes from the shared checkpoint. Nothing is
		// persisted here — writing now would fight the new owner's state.
		if !lost {
			m.markLost(r)
		}
		m.abandonRun(r)
	case err == nil:
		m.finishRun(r, StateCompleted, res, "")
	case errors.Is(err, core.ErrCanceled) && preempted:
		// Drain preemption: the run's checkpoint holds every completed stage;
		// return it to the queue so the next process resumes it.
		m.requeueRun(r)
	case errors.Is(err, core.ErrCanceled):
		m.finishRun(r, StateCanceled, nil, err.Error())
	default:
		m.finishRun(r, StateFailed, nil, err.Error())
	}
}

// abandonRun is the stale-owner exit: the run's lease was stolen, its new
// owner carries it (and its accounting) from here, and this process must not
// touch its durable state again. markLost already counted the departure.
func (m *Manager) abandonRun(r *run) {
	m.mu.Lock()
	id := r.rec.ID
	fence := r.rec.Fence
	m.mu.Unlock()
	m.logf("abandoned %s: lease lost to another owner (had fence %d)", id, fence)
}

// finishRun persists a terminal transition and settles the run's durable
// artifacts: a completed run publishes result.json and discards its
// checkpoint directory (nothing left to resume); failed and canceled runs
// keep theirs for postmortem or resubmission. In lease mode the transition
// is fenced twice — a verification here, and the persist's own check — so a
// stale owner abandons instead of overwriting the new owner's record; only
// a fenced, persisted transition is counted and logged as completed.
func (m *Manager) finishRun(r *run, state State, res *RunResult, errMsg string) {
	m.mu.Lock()
	lse := r.lease
	m.mu.Unlock()
	if lse != nil {
		if err := lse.Check(); err != nil {
			m.markLost(r)
			m.abandonRun(r)
			return
		}
	}

	m.mu.Lock()
	r.rec.State = state
	r.rec.Error = errMsg
	r.rec.FinishedAt = time.Now()
	r.rec.Result = res
	rec := r.rec
	m.mu.Unlock()

	if state == StateCompleted {
		body, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			err = retry.Do(nil, persistRetry, faults.IsTransient, func() error {
				if ferr := m.cfg.Injector.Check(faults.SiteServerPersist, int(rec.Seq)); ferr != nil {
					return ferr
				}
				return atomicio.WriteFileBytes(filepath.Join(m.runDir(rec.ID), "result.json"), body)
			})
		}
		if err != nil {
			// The record still carries the result; losing result.json costs a
			// convenience file, not the run.
			m.cPersistFailures.Add(1)
			m.logf("publishing result for %s: %v", rec.ID, err)
		}
		if err := os.RemoveAll(m.ckDir(rec.ID)); err != nil {
			m.logf("clearing checkpoints for %s: %v", rec.ID, err)
		}
	}
	if err := m.persist(r); err != nil {
		if errors.Is(err, lease.ErrLeaseLost) {
			m.markLost(r)
			m.abandonRun(r)
			return
		}
		m.logf("persisting %s %s: %v", state, rec.ID, err)
	}
	switch state {
	case StateCompleted:
		m.cCompleted.Add(1)
		m.logf("completed %s: base %.4f → augmented %.4f, %d columns kept",
			rec.ID, res.BaseScore, res.FinalScore, len(res.KeptColumns))
	case StateFailed:
		m.cFailed.Add(1)
		m.logf("failed %s: %s", rec.ID, errMsg)
	case StateCanceled:
		m.cCanceled.Add(1)
		m.logf("canceled %s", rec.ID)
	}
	if lse != nil {
		lse.Release()
		m.mu.Lock()
		r.lease = nil
		m.updateLeaseGaugeLocked()
		m.mu.Unlock()
	}
}

// requeueRun returns a drain-preempted run to the queued state on disk. It
// is not re-added to the in-memory queue — the manager is draining and its
// supervisors are exiting — but the persisted state makes the next Open
// requeue it. In lease mode the run's lease is released after the fenced
// persist, so a live peer adopts it immediately instead of waiting for this
// process to exit.
func (m *Manager) requeueRun(r *run) {
	m.mu.Lock()
	r.rec.State = StateQueued
	r.rec.StartedAt = time.Time{}
	r.rec.Error = ""
	lse := r.lease
	m.mu.Unlock()
	if err := m.persist(r); err != nil {
		if errors.Is(err, lease.ErrLeaseLost) {
			m.markLost(r)
			m.abandonRun(r)
			return
		}
		m.logf("persisting preempted %s: %v", r.rec.ID, err)
	}
	if lse != nil {
		if err := lse.Release(); err != nil {
			m.logf("releasing preempted %s: %v", r.rec.ID, err)
		}
		m.mu.Lock()
		r.lease = nil
		m.updateLeaseGaugeLocked()
		m.mu.Unlock()
	}
	m.logf("preempted %s: checkpointed, will resume on restart", r.rec.ID)
}

// fencedSink gates an NDJSON trace sink's publication on the run's lease:
// events stream through untouched, but the atomic rename that publishes
// trace.ndjson is skipped once the lease is lost. The pipeline flushes its
// sinks itself (Trace.Finish, even on error), so the fence must live inside
// the sink — a stale owner's finish would otherwise publish a partial trace
// over (or race) the new owner's.
type fencedSink struct {
	inner obs.Sink
	lse   *lease.Lease
}

func (s *fencedSink) Emit(ev obs.Event) { s.inner.Emit(ev) }

func (s *fencedSink) Flush() error {
	if s.lse != nil && s.lse.Check() != nil {
		return nil
	}
	return s.inner.Flush()
}

// sanitizeOwner maps a lease owner identity (host:pid:seq) to a filename-
// safe tag for the owner-unique trace tmp name.
func sanitizeOwner(owner string) string {
	b := []byte(owner)
	for i, c := range b {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.'
		if !ok {
			b[i] = '-'
		}
	}
	return string(b)
}

// attempt executes the spec once, end to end, under a fresh per-attempt
// trace whose event stream is both subscribable live (Manager.Stream) and
// persisted as trace.ndjson in the run directory. Panics anywhere in the
// attempt — CSV loading, discovery, the pipeline — are contained here and
// returned as errors, so one poisoned run cannot take down the daemon. In
// lease mode the attempt is fenced end to end: every checkpoint write
// re-verifies the lease (core.Options.CheckpointGuard), the final outputs
// are written only after a last verification, and a lost lease suppresses
// even the trace flush — the new owner's artifacts win everywhere.
func (m *Manager) attempt(ctx context.Context, r *run) (res *RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("runqueue: run panicked: %v", p)
		}
	}()

	m.mu.Lock()
	spec := r.rec.Spec
	id := r.rec.ID
	seq := r.rec.Seq
	lse := r.lease
	m.mu.Unlock()

	// The attempt-level fault site: chaos tests fire transient faults here to
	// exercise the supervisor's retry loop around whole attempts.
	if err := m.cfg.Injector.Check(faults.SiteServerRun, int(seq)); err != nil {
		return nil, err
	}

	// A fresh trace per attempt: the pipeline finishes its trace even on
	// error, so attempts cannot share one. The stream sink replays history to
	// late subscribers; the file sink publishes atomically on Flush.
	stream := obs.NewStreamSink(0)
	tracePath := filepath.Join(m.runDir(id), "trace.ndjson")
	traceTmp := tracePath + ".tmp"
	if lse != nil {
		// Owner-unique tmp: a peer re-attempting this run after a takeover
		// must never truncate the stale owner's still-open in-progress file
		// (or vice versa). The fenced Flush's rename decides the winner.
		traceTmp = fmt.Sprintf("%s.tmp-%s", tracePath, sanitizeOwner(m.owner))
	}
	fileSink, ferr := obs.NewNDJSONFileSinkAt(tracePath, traceTmp)
	if ferr != nil {
		return nil, fmt.Errorf("runqueue: creating trace sink: %w", ferr)
	}
	guarded := &fencedSink{inner: fileSink, lse: lse}
	trace := obs.New("augment", stream, guarded)
	m.mu.Lock()
	r.stream = stream
	m.mu.Unlock()
	defer func() {
		if perr := guarded.Flush(); perr != nil && err == nil {
			m.logf("publishing trace for %s: %v", id, perr)
		}
	}()

	dir := spec.Dir
	if dir == "" {
		dir = m.cfg.DataDir
	}
	tables, err := loadCSVDir(dir)
	if err != nil {
		return nil, fmt.Errorf("runqueue: loading %s: %w", dir, err)
	}
	var base *dataframe.Table
	repo := make([]*dataframe.Table, 0, len(tables))
	for _, t := range tables {
		if t.Name() == spec.Base {
			base = t
		} else {
			repo = append(repo, t)
		}
	}
	if base == nil {
		return nil, fmt.Errorf("runqueue: base table %q not found in %s (%d tables)", spec.Base, dir, len(tables))
	}
	cands := discovery.Discover(base, repo, spec.Target, discovery.Options{})
	if spec.Transitive {
		rng := rand.New(rand.NewSource(spec.seed()))
		cands = append(cands, discovery.Transitive(base, repo, spec.Target, discovery.TransitiveOptions{}, rng)...)
	}

	opts, err := spec.options(m.cfg)
	if err != nil {
		return nil, err
	}
	opts.CheckpointDir = m.ckDir(id)
	opts.Resume = true // an empty checkpoint directory starts fresh
	opts.FaultInjector = m.cfg.Injector
	opts.Trace = trace
	if lse != nil {
		opts.CheckpointGuard = lse.Check
	}

	out, err := core.AugmentContext(ctx, base, cands, opts)
	if err != nil {
		return nil, err
	}
	if lse != nil {
		// Last fence before publishing outputs: a stolen lease means the new
		// owner computes (bit-identical) outputs of its own — ours must not
		// land next to its record.
		if cerr := lse.Check(); cerr != nil {
			return nil, cerr
		}
	}
	res = &RunResult{
		BaseScore:   out.BaseScore,
		FinalScore:  out.FinalScore,
		KeptColumns: out.KeptColumns,
		KeptTables:  out.KeptTables,
		TableDigest: fmt.Sprintf("%016x", out.Table.Digest()),
		Rows:        out.Table.NumRows(),
		Cols:        out.Table.NumCols(),
		Quarantined: len(out.Quarantined),
		Degraded:    len(out.Degraded),
		ResumedFrom: out.ResumedFrom,
		ElapsedMS:   out.Elapsed.Milliseconds(),
		SelectionMS: out.SelectionElapsed.Milliseconds(),
	}
	if spec.KeepTable {
		if werr := out.Table.WriteCSVFile(m.TablePath(id)); werr != nil {
			return nil, fmt.Errorf("runqueue: writing table: %w", werr)
		}
	}
	return res, nil
}
