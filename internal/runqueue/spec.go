package runqueue

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
)

// Spec is one augmentation request, the JSON body of a run submission. It
// mirrors the arda CLI's pipeline knobs; zero values mean the same defaults
// the CLI applies. Workers is deliberately absent — the worker pool is
// process-wide and owned by the daemon, and results are bit-identical at any
// worker count, so a request has no business sizing it.
type Spec struct {
	// Dir is the CSV corpus directory; empty uses the daemon's -dir.
	Dir string `json:"dir,omitempty"`
	// Tenant names the admission lane this run queues in (lowercase
	// alphanumeric, '-' or '_', 32 chars max); empty uses the daemon's
	// default lane. Tenants share the workers but are dispatched fairly:
	// deficit round-robin across lanes, with per-lane queue caps and
	// in-flight quotas.
	Tenant string `json:"tenant,omitempty"`
	// Base names the base table (CSV file name without extension). Required.
	Base string `json:"base"`
	// Target is the prediction column in the base table. Required.
	Target string `json:"target"`
	// Selector is the feature-selection method (featsel.Method); default RIFS.
	Selector string `json:"selector,omitempty"`
	// Plan is the join plan: budget | table | full.
	Plan string `json:"plan,omitempty"`
	// Coreset is the row-reduction strategy: uniform | stratified | sketch |
	// leverage.
	Coreset string `json:"coreset,omitempty"`
	// Size is the coreset size (0 = automatic).
	Size int `json:"size,omitempty"`
	// Budget is the per-batch feature budget (0 = coreset size).
	Budget int `json:"budget,omitempty"`
	// Tau enables the Tuple-Ratio prefilter when > 0.
	Tau float64 `json:"tau,omitempty"`
	// Seed drives every random choice; 0 means 1 (the CLI default).
	Seed int64 `json:"seed,omitempty"`
	// Soft selects the soft-key join method: 2way | nearest | hard.
	Soft string `json:"soft,omitempty"`
	// Transitive also discovers two-hop candidates.
	Transitive bool `json:"transitive,omitempty"`
	// KNNImpute switches to k-NN imputation with this k (0 = median/random).
	KNNImpute int `json:"knn_impute,omitempty"`
	// Significance is the bootstrap resample count (0 = off).
	Significance int `json:"significance,omitempty"`
	// Timeout bounds the run's wall clock as a Go duration string ("90s");
	// empty applies the daemon's default run budget.
	Timeout string `json:"timeout,omitempty"`
	// MaxCells bounds the working set in cells (0 = daemon default).
	MaxCells int64 `json:"max_cells,omitempty"`
	// MaxCandidateBytes bounds admitted candidate bytes (0 = daemon default).
	MaxCandidateBytes int64 `json:"max_candidate_bytes,omitempty"`
	// KeepTable also writes the augmented table (table.csv in the run
	// directory) for download.
	KeepTable bool `json:"keep_table,omitempty"`
}

// Validate checks the spec is executable before admission, so malformed
// requests are rejected at submit time (HTTP 400) instead of failing later
// inside the queue.
func (s *Spec) Validate() error {
	if s.Base == "" {
		return fmt.Errorf("runqueue: spec.base is required")
	}
	if s.Target == "" {
		return fmt.Errorf("runqueue: spec.target is required")
	}
	if s.Tenant != "" && !validTenant(s.Tenant) {
		return fmt.Errorf("runqueue: bad spec.tenant %q (want 1-32 chars of [a-z0-9_-], starting alphanumeric)", s.Tenant)
	}
	if _, err := s.planKind(); err != nil {
		return err
	}
	if _, err := s.coresetStrategy(); err != nil {
		return err
	}
	if _, err := s.softMethod(); err != nil {
		return err
	}
	if s.Selector != "" {
		if _, err := featsel.New(featsel.Method(s.Selector)); err != nil {
			return fmt.Errorf("runqueue: %w", err)
		}
	}
	if _, err := s.timeout(); err != nil {
		return err
	}
	return nil
}

func (s *Spec) planKind() (core.PlanKind, error) {
	switch s.Plan {
	case "", "budget":
		return core.BudgetJoin, nil
	case "table":
		return core.TableJoin, nil
	case "full":
		return core.FullMaterialization, nil
	}
	return 0, fmt.Errorf("runqueue: unknown plan %q", s.Plan)
}

func (s *Spec) coresetStrategy() (coreset.Strategy, error) {
	switch s.Coreset {
	case "", "uniform":
		return coreset.Uniform, nil
	case "stratified":
		return coreset.Stratified, nil
	case "sketch":
		return coreset.Sketch, nil
	case "leverage":
		return coreset.Leverage, nil
	}
	return 0, fmt.Errorf("runqueue: unknown coreset strategy %q", s.Coreset)
}

func (s *Spec) softMethod() (join.SoftMethod, error) {
	switch s.Soft {
	case "", "2way":
		return join.TwoWayNearest, nil
	case "nearest":
		return join.NearestNeighbor, nil
	case "hard":
		return join.HardExact, nil
	}
	return 0, fmt.Errorf("runqueue: unknown soft-join method %q", s.Soft)
}

func (s *Spec) timeout() (time.Duration, error) {
	if s.Timeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s.Timeout)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("runqueue: bad timeout %q", s.Timeout)
	}
	return d, nil
}

// seed returns the effective run seed (the CLI defaults to 1, not 0).
func (s *Spec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// options builds the pipeline options for one execution of the spec.
// Defaults for timeout and the resource budgets come from the manager
// config; checkpointing, tracing, workers, and injectors are wired by the
// supervisor.
func (s *Spec) options(defaults Config) (core.Options, error) {
	plan, err := s.planKind()
	if err != nil {
		return core.Options{}, err
	}
	strat, err := s.coresetStrategy()
	if err != nil {
		return core.Options{}, err
	}
	soft, err := s.softMethod()
	if err != nil {
		return core.Options{}, err
	}
	timeout, err := s.timeout()
	if err != nil {
		return core.Options{}, err
	}
	if timeout == 0 {
		timeout = defaults.RunTimeout
	}
	maxCells := s.MaxCells
	if maxCells == 0 {
		maxCells = defaults.MaxCells
	}
	maxBytes := s.MaxCandidateBytes
	if maxBytes == 0 {
		maxBytes = defaults.MaxCandidateBytes
	}
	opts := core.Options{
		Target:            s.Target,
		CoresetStrategy:   strat,
		CoresetSize:       s.Size,
		Plan:              plan,
		Budget:            s.Budget,
		TupleRatioTau:     s.Tau,
		SoftMethod:        soft,
		Seed:              s.seed(),
		KNNImpute:         s.KNNImpute,
		Significance:      s.Significance,
		Timeout:           timeout,
		MaxCells:          maxCells,
		MaxCandidateBytes: maxBytes,
	}
	if s.Selector != "" {
		sel, err := featsel.New(featsel.Method(s.Selector))
		if err != nil {
			return core.Options{}, err
		}
		opts.Selector = sel
	}
	return opts, nil
}

// loadCSVDir loads every *.csv file in dir as a table, sorted by name — the
// same deterministic load order the arda CLI uses, so a daemon run over a
// directory is bit-identical to the CLI run over it.
func loadCSVDir(dir string) ([]*dataframe.Table, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(strings.ToLower(e.Name()), ".csv") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	tables := make([]*dataframe.Table, 0, len(names))
	for _, name := range names {
		t, err := dataframe.ReadCSVFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", name, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
