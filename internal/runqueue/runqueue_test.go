package runqueue

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/dataframe"
	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/synth"
	"github.com/arda-ml/arda/internal/testenv"
)

// writeCorpus materializes the shared test corpus as a CSV directory and
// returns (dir, base table name, target column).
func writeCorpus(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	corpus := synth.Poverty(synth.Config{Seed: 61, Scale: 0.15})
	write := func(tb *dataframe.Table) {
		t.Helper()
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	write(corpus.Base)
	for _, tb := range corpus.Repo {
		write(tb)
	}
	return dir, corpus.Base.Name(), corpus.Target
}

// fastSpec returns a spec that runs the full pipeline in about a second.
func fastSpec(dataDir, base, target string) Spec {
	return Spec{Dir: dataDir, Base: base, Target: target, Size: 128, Seed: 7}
}

// openManager opens a manager over fresh state with test-friendly defaults
// applied on top of overrides.
func openManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitState polls until the run reaches a terminal state (or the wanted one).
func waitTerminal(t *testing.T, m *Manager, id string, timeout time.Duration) Record {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in state %s after %s", id, rec.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitRunning polls until the run leaves the queue.
func waitRunning(t *testing.T, m *Manager, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == StateRunning {
			return
		}
		if rec.State.Terminal() {
			t.Fatalf("run %s reached %s before running", id, rec.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never started (state %s)", id, rec.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitSettled polls until no run is executing. A run's terminal state is
// visible (Get, waitTerminal) one persist before its terminal counter is
// incremented and the supervisor releases its slot, so tests asserting exact
// counter values must let the bookkeeping catch up first.
func waitSettled(t *testing.T, m *Manager, timeout time.Duration) Accounting {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		a := m.Accounting()
		if a.Running == 0 {
			return a
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never settled: %+v", a)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkAccounting asserts the exact queue partition: every admitted,
// requeued, or taken-over run is in exactly one live or terminal state — or
// was fenced out of this process's custody (lost) and is its new owner's to
// count.
func checkAccounting(t *testing.T, m *Manager) {
	t.Helper()
	a := m.Accounting()
	in := a.Admitted + a.Requeued + a.Takeovers
	out := a.Completed + a.Failed + a.Canceled + a.Queued + a.Running + a.Lost
	if in != out {
		t.Fatalf("queue accounting violated: admitted %d + requeued %d + takeovers %d != completed %d + failed %d + canceled %d + queued %d + running %d + lost %d",
			a.Admitted, a.Requeued, a.Takeovers, a.Completed, a.Failed, a.Canceled, a.Queued, a.Running, a.Lost)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)
	m := openManager(t, Config{})

	rec, err := m.Submit(fastSpec(dataDir, base, target))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" || rec.State != StateQueued {
		t.Fatalf("Submit returned %+v, want queued with an ID", rec)
	}

	final := waitTerminal(t, m, rec.ID, 2*time.Minute)
	if final.State != StateCompleted {
		t.Fatalf("run finished %s (%s), want completed", final.State, final.Error)
	}
	if final.Result == nil || final.Result.TableDigest == "" || final.Result.FinalScore == 0 {
		t.Fatalf("completed run carries no result: %+v", final.Result)
	}

	// Durable artifacts: record, published result, published trace; the
	// checkpoint directory is gone (nothing left to resume). The artifacts
	// land between the state flip and the supervisor releasing its slot, so
	// settle first.
	waitSettled(t, m, time.Minute)
	runDir := filepath.Join(m.cfg.StateDir, "runs", rec.ID)
	for _, f := range []string{"run.json", "result.json", "trace.ndjson"} {
		if _, err := os.Stat(filepath.Join(runDir, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	if _, err := os.Stat(filepath.Join(m.cfg.StateDir, "checkpoints", rec.ID)); !os.IsNotExist(err) {
		t.Fatalf("checkpoints not cleared after completion (err=%v)", err)
	}
	var onDisk Record
	raw, err := os.ReadFile(filepath.Join(runDir, "run.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateCompleted || onDisk.Result == nil || onDisk.Result.TableDigest != final.Result.TableDigest {
		t.Fatalf("persisted record diverges from in-memory: %+v", onDisk)
	}

	checkAccounting(t, m)
	if a := waitSettled(t, m, time.Minute); a.Admitted != 1 || a.Completed != 1 {
		t.Fatalf("accounting = %+v, want 1 admitted 1 completed", a)
	}
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestQueueBoundsCancelAndValidation(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)
	// Slow every join so the first run occupies the single slot long enough
	// to observe queue behavior deterministically.
	inj := faults.New(1, faults.Rule{Stage: "join", Ordinal: -1, Kind: faults.Delay, Delay: 80 * time.Millisecond})
	m := openManager(t, Config{QueueCap: 1, Concurrency: 1, Injector: inj})

	// Malformed specs are rejected at the door.
	if _, err := m.Submit(Spec{Target: target}); err == nil {
		t.Fatal("spec without base was admitted")
	}
	if _, err := m.Submit(Spec{Dir: dataDir, Base: base, Target: target, Plan: "bogus"}); err == nil {
		t.Fatal("spec with unknown plan was admitted")
	}

	first, err := m.Submit(fastSpec(dataDir, base, target))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, first.ID, time.Minute)
	second, err := m.Submit(fastSpec(dataDir, base, target))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(fastSpec(dataDir, base, target)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}

	// Canceling the queued run frees the slot immediately.
	if rec, err := m.Cancel(second.ID); err != nil || rec.State != StateCanceled {
		t.Fatalf("Cancel(queued) = %+v, %v, want canceled", rec, err)
	}
	if _, err := m.Cancel("r999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(unknown) = %v, want ErrNotFound", err)
	}

	// Canceling the running run stops it at the next boundary.
	if _, err := m.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, first.ID, time.Minute)
	if final.State != StateCanceled {
		t.Fatalf("canceled run finished %s, want canceled", final.State)
	}
	// Canceling a terminal run is a no-op.
	if rec, err := m.Cancel(first.ID); err != nil || rec.State != StateCanceled {
		t.Fatalf("Cancel(terminal) = %+v, %v", rec, err)
	}

	checkAccounting(t, m)
	a := waitSettled(t, m, time.Minute)
	if a.RejectedFull != 1 || a.Canceled != 2 || a.Admitted != 2 {
		t.Fatalf("accounting = %+v, want 2 admitted, 2 canceled, 1 rejected_full", a)
	}
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestDrainRejectsAndPreemptedRunResumesIdentically(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)
	spec := fastSpec(dataDir, base, target)

	// Reference: the same spec run to completion uninterrupted.
	ref := openManager(t, Config{})
	refRec, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitTerminal(t, ref, refRec.ID, 2*time.Minute)
	if refFinal.State != StateCompleted {
		t.Fatalf("reference run %s: %s", refFinal.State, refFinal.Error)
	}
	if err := ref.Close(time.Minute); err != nil {
		t.Fatal(err)
	}

	// Interrupted: start the run, drain with a deadline far shorter than the
	// run, and verify it is preempted back to queued on disk.
	state := t.TempDir()
	inj := faults.New(1, faults.Rule{Stage: "join", Ordinal: -1, Kind: faults.Delay, Delay: 40 * time.Millisecond})
	m1 := openManager(t, Config{StateDir: state, Injector: inj})
	rec, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m1, rec.ID, time.Minute)
	time.Sleep(50 * time.Millisecond) // let it make some progress
	if err := m1.Drain(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !m1.Draining() {
		t.Fatal("manager not draining after Drain")
	}
	if _, err := m1.Submit(spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	preempted, err := m1.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if preempted.State != StateQueued {
		t.Fatalf("preempted run in state %s, want queued for restart", preempted.State)
	}
	checkAccounting(t, m1)
	if err := m1.Close(time.Minute); err != nil {
		t.Fatal(err)
	}

	// Restart over the same state directory: the run requeues and resumes
	// from its checkpoint to the identical result.
	m2 := openManager(t, Config{StateDir: state})
	resumed, err := m2.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.State.Terminal() && resumed.State != StateCompleted {
		t.Fatalf("requeued run in state %s after restart", resumed.State)
	}
	final := waitTerminal(t, m2, rec.ID, 2*time.Minute)
	if final.State != StateCompleted {
		t.Fatalf("resumed run finished %s (%s), want completed", final.State, final.Error)
	}
	a := waitSettled(t, m2, time.Minute)
	if a.Requeued != 1 || a.Completed != 1 {
		t.Fatalf("restart accounting = %+v, want 1 requeued 1 completed", a)
	}
	checkAccounting(t, m2)

	got, want := final.Result, refFinal.Result
	if got.TableDigest != want.TableDigest || got.BaseScore != want.BaseScore ||
		got.FinalScore != want.FinalScore || len(got.KeptColumns) != len(want.KeptColumns) {
		t.Fatalf("resumed result diverges from uninterrupted run:\n  resumed: %+v\n  reference: %+v", got, want)
	}
	if err := m2.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionAndPersistenceFaults(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)

	// A hard admission fault rejects the submission; nothing is admitted.
	inj := faults.New(3, faults.Rule{Stage: faults.SiteServerAdmit, Ordinal: -1, Kind: faults.Error})
	m := openManager(t, Config{Injector: inj})
	if _, err := m.Submit(fastSpec(dataDir, base, target)); err == nil {
		t.Fatal("submission survived an admission fault")
	}
	if a := m.Accounting(); a.Admitted != 0 {
		t.Fatalf("accounting after rejected admission = %+v", a)
	}
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}

	// Transient persistence faults are absorbed by the retry loop: the run
	// is admitted and completes.
	inj2 := faults.New(3, faults.Rule{
		Stage: faults.SiteServerPersist, Ordinal: -1, Kind: faults.Error,
		Transient: true, Times: 1,
	})
	m2 := openManager(t, Config{Injector: inj2})
	rec, err := m2.Submit(fastSpec(dataDir, base, target))
	if err != nil {
		t.Fatalf("submission failed under transient persist fault: %v", err)
	}
	final := waitTerminal(t, m2, rec.ID, 2*time.Minute)
	if final.State != StateCompleted {
		t.Fatalf("run under transient persist faults finished %s (%s)", final.State, final.Error)
	}
	checkAccounting(t, m2)
	if err := m2.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestTransientRunFailureRetriesToCompletion(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)

	// A transient fault at the attempt-level site fails whole attempts (the
	// pipeline's per-candidate quarantine never does); the supervisor's
	// retry loop must absorb it and complete the run.
	inj := faults.New(5, faults.Rule{
		Stage: faults.SiteServerRun, Ordinal: -1, Kind: faults.Error, Transient: true, Times: 2,
	})
	m := openManager(t, Config{Injector: inj, RetryBase: time.Millisecond})
	rec, err := m.Submit(fastSpec(dataDir, base, target))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, rec.ID, 2*time.Minute)
	if final.State != StateCompleted {
		t.Fatalf("run finished %s (%s), want completed after transient retries", final.State, final.Error)
	}
	checkAccounting(t, m)
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestRunHardFailureIsContained(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, _, target := writeCorpus(t)
	m := openManager(t, Config{})

	// A run over a nonexistent base table fails; the daemon and its queue
	// survive and the failure is recorded.
	bad, err := m.Submit(Spec{Dir: dataDir, Base: "no-such-table", Target: target, Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, bad.ID, time.Minute)
	if final.State != StateFailed || final.Error == "" {
		t.Fatalf("bad run finished %s (%q), want failed with a reason", final.State, final.Error)
	}
	checkAccounting(t, m)
	if a := waitSettled(t, m, time.Minute); a.Failed != 1 {
		t.Fatalf("accounting = %+v, want 1 failed", a)
	}
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverSkipsTerminalAndCorruptRecords(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	state := t.TempDir()
	dataDir, base, target := writeCorpus(t)

	// Seed the state directory by hand: one completed record, one corrupt
	// record, one interrupted (running) record.
	writeRec := func(id string, rec Record) {
		t.Helper()
		dir := filepath.Join(state, "runs", id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "run.json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	spec := fastSpec(dataDir, base, target)
	writeRec("r000001", Record{ID: "r000001", Seq: 1, Spec: spec, State: StateCompleted,
		Result: &RunResult{TableDigest: "cafe"}})
	writeRec("r000002", Record{ID: "r000002", Seq: 2, Spec: spec, State: StateRunning})
	if err := os.MkdirAll(filepath.Join(state, "runs", "r000003"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(state, "runs", "r000003", "run.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := openManager(t, Config{StateDir: state})
	// The completed record is visible untouched; the corrupt one is skipped;
	// the interrupted one requeues and completes.
	if rec, err := m.Get("r000001"); err != nil || rec.State != StateCompleted {
		t.Fatalf("completed record after recover: %+v, %v", rec, err)
	}
	if _, err := m.Get("r000003"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt record resurrected: %v", err)
	}
	final := waitTerminal(t, m, "r000002", 2*time.Minute)
	if final.State != StateCompleted {
		t.Fatalf("interrupted run finished %s (%s), want completed", final.State, final.Error)
	}
	// New submissions get sequence numbers beyond every recovered record.
	rec, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq <= 2 {
		t.Fatalf("post-recovery Seq = %d, want > 2", rec.Seq)
	}
	if _, err := m.Cancel(rec.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, rec.ID, time.Minute)
	checkAccounting(t, m)
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

func TestStreamExposesRunEvents(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)
	m := openManager(t, Config{})

	rec, err := m.Submit(fastSpec(dataDir, base, target))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, rec.ID, 2*time.Minute)
	stream, path, err := m.Stream(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stream == nil {
		t.Fatal("no stream for an executed run")
	}
	if stream.Emitted() == 0 {
		t.Fatal("run stream emitted no events")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not published: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("trace file empty")
	}
	if _, _, err := m.Stream("r424242"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stream(unknown) = %v, want ErrNotFound", err)
	}
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}
