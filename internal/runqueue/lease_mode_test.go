package runqueue

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/faults"
	"github.com/arda-ml/arda/internal/lease"
	"github.com/arda-ml/arda/internal/parallel"
	"github.com/arda-ml/arda/internal/testenv"
)

// failFastSpec returns a spec that is admitted fine but fails within
// milliseconds of starting (unknown base table) — the cheapest way to push
// real dispatch traffic through the lanes.
func failFastSpec(dataDir, target, tenant string) Spec {
	return Spec{Dir: dataDir, Base: "no-such-table", Target: target, Size: 64, Tenant: tenant}
}

// TestTenantFairDispatchUnderFlood floods one tenant lane and checks the
// deficit-round-robin dispatcher interleaves the other tenant's runs instead
// of draining the flood first: with quantum 1 the k-th competing run starts
// after at most 2k+1 flood runs — the DRR bound on queue wait — where a FIFO
// would start it after all of them.
func TestTenantFairDispatchUnderFlood(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, _, target := writeCorpus(t)

	// The blocker (seq 0, default lane) holds the single supervisor while the
	// flood is submitted, so dispatch order is decided by the scheduler, not
	// submission timing.
	inj := faults.New(21, faults.Rule{
		Stage: faults.SiteServerRun, Ordinal: 0, Kind: faults.Delay, Delay: 500 * time.Millisecond,
	})
	m := openManager(t, Config{QueueCap: 32, Concurrency: 1, DRRQuantum: 1, Injector: inj})

	blocker, err := m.Submit(failFastSpec(dataDir, target, ""))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID, time.Minute)

	var flood, other []string
	for i := 0; i < 6; i++ {
		rec, err := m.Submit(failFastSpec(dataDir, target, "flood"))
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, rec.ID)
	}
	for i := 0; i < 3; i++ {
		rec, err := m.Submit(failFastSpec(dataDir, target, "victim"))
		if err != nil {
			t.Fatal(err)
		}
		other = append(other, rec.ID)
	}
	for _, id := range append(append([]string{}, flood...), other...) {
		waitTerminal(t, m, id, time.Minute)
	}

	// Order every flood-phase run by dispatch time and find where the victim
	// tenant's runs landed.
	type started struct {
		id     string
		tenant string
		at     time.Time
	}
	var all []started
	for _, id := range append(append([]string{}, flood...), other...) {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.StartedAt.IsZero() {
			t.Fatalf("run %s has no StartedAt", id)
		}
		all = append(all, started{id, rec.Tenant, rec.StartedAt})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].at.Before(all[j].at) })
	k := 0
	for pos, s := range all {
		if s.tenant != "victim" {
			continue
		}
		k++
		// DRR with quantum 1 alternates lanes, so the k-th victim run starts
		// at position ≤ 2k (1-indexed); allow one slot of slack.
		if pos+1 > 2*k+1 {
			order := make([]string, len(all))
			for i, s := range all {
				order[i] = s.tenant
			}
			t.Fatalf("victim run %d dispatched at position %d (> %d): starvation; order %v", k, pos+1, 2*k+1, order)
		}
	}
	if k != 3 {
		t.Fatalf("saw %d victim runs, want 3", k)
	}

	checkAccounting(t, m)
	a := m.Accounting()
	var fl, vi LaneAccounting
	for _, l := range a.Lanes {
		switch l.Tenant {
		case "flood":
			fl = l
		case "victim":
			vi = l
		}
	}
	if fl.Admitted != 6 || vi.Admitted != 3 {
		t.Fatalf("lane accounting = flood %+v victim %+v, want 6 and 3 admitted", fl, vi)
	}
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestTenantCapsAndInFlightQuota covers the per-tenant admission bounds: the
// lane queue cap rejects with a typed *TenantLimitError, a malformed tenant
// name is rejected at validation, and TenantMaxInFlight keeps a lane's
// concurrent executions at its quota even when global concurrency has room.
func TestTenantCapsAndInFlightQuota(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, _, target := writeCorpus(t)

	// Lane cap: hold the only supervisor with a blocker, then overfill one lane.
	inj := faults.New(22, faults.Rule{
		Stage: faults.SiteServerRun, Ordinal: 0, Kind: faults.Delay, Delay: 300 * time.Millisecond,
	})
	m := openManager(t, Config{QueueCap: 8, Concurrency: 1, TenantQueueCap: 1, Injector: inj})
	blocker, err := m.Submit(failFastSpec(dataDir, target, ""))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, blocker.ID, time.Minute)
	first, err := m.Submit(failFastSpec(dataDir, target, "acme"))
	if err != nil {
		t.Fatal(err)
	}
	var tle *TenantLimitError
	if _, err := m.Submit(failFastSpec(dataDir, target, "acme")); !errors.As(err, &tle) || tle.Tenant != "acme" {
		t.Fatalf("over-cap submit = %v, want *TenantLimitError for acme", err)
	}
	// Another tenant still has room.
	second, err := m.Submit(failFastSpec(dataDir, target, "beta"))
	if err != nil {
		t.Fatalf("other tenant rejected by acme's cap: %v", err)
	}
	if _, err := m.Submit(Spec{Dir: dataDir, Base: "x", Target: target, Tenant: "Bad Tenant!"}); err == nil {
		t.Fatal("malformed tenant name was admitted")
	}
	for _, id := range []string{blocker.ID, first.ID, second.ID} {
		waitTerminal(t, m, id, time.Minute)
	}
	checkAccounting(t, m)
	if a := m.Accounting(); a.RejectedTenant != 1 {
		t.Fatalf("accounting = %+v, want 1 rejected_tenant", a)
	}
	if err := m.Close(time.Minute); err != nil {
		t.Fatal(err)
	}

	// In-flight quota: two slow runs in one lane, two supervisors — the lane
	// must never have more than its quota of 1 executing.
	inj2 := faults.New(23, faults.Rule{
		Stage: faults.SiteServerRun, Ordinal: -1, Kind: faults.Delay, Delay: 150 * time.Millisecond,
	})
	m2 := openManager(t, Config{Concurrency: 2, TenantMaxInFlight: 1, Injector: inj2})
	var ids []string
	for i := 0; i < 2; i++ {
		rec, err := m2.Submit(failFastSpec(dataDir, target, "acme"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		a := m2.Accounting()
		for _, l := range a.Lanes {
			if l.Tenant == "acme" && l.Running > 1 {
				t.Fatalf("lane acme running %d, quota is 1", l.Running)
			}
		}
		done := 0
		for _, id := range ids {
			if rec, err := m2.Get(id); err == nil && rec.State.Terminal() {
				done++
			}
		}
		if done == len(ids) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quota-gated runs never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	checkAccounting(t, m2)
	if err := m2.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseSkewTakeoverBitIdentical is the clock-skew drill: manager m1's
// heartbeat is delayed past the lease TTL (a fault at lease.renew), its
// lease expires mid-run, and peer m2 — sharing the state dir — must adopt
// the run under a higher fence and complete it bit-identically to an
// undisturbed reference, while m1 self-fences: it observes ErrLeaseLost,
// abandons without a single further state write, and books the run as lost.
func TestLeaseSkewTakeoverBitIdentical(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)
	spec := fastSpec(dataDir, base, target)

	// Reference: same spec, single manager, no faults.
	ref := openManager(t, Config{})
	refRec, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refFinal := waitTerminal(t, ref, refRec.ID, 2*time.Minute)
	if refFinal.State != StateCompleted {
		t.Fatalf("reference run %s: %s", refFinal.State, refFinal.Error)
	}
	if err := ref.Close(time.Minute); err != nil {
		t.Fatal(err)
	}

	state := t.TempDir()
	// m1: every heartbeat renewal stalls past the TTL, and the run attempt
	// itself stalls long enough for the lease to lapse before any output.
	inj := faults.New(24,
		faults.Rule{Stage: faults.SiteLeaseRenew, Ordinal: -1, Kind: faults.Delay, Delay: 700 * time.Millisecond, Times: 3},
		faults.Rule{Stage: faults.SiteServerRun, Ordinal: -1, Kind: faults.Delay, Delay: 600 * time.Millisecond},
	)
	m1 := openManager(t, Config{StateDir: state, LeaseTTL: 300 * time.Millisecond, Owner: "m1", Injector: inj})
	rec, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fence != 1 {
		t.Fatalf("admission fence = %d, want 1", rec.Fence)
	}
	waitRunning(t, m1, rec.ID, time.Minute)

	m2 := openManager(t, Config{StateDir: state, LeaseTTL: 300 * time.Millisecond, Owner: "m2"})
	final := waitTerminal(t, m2, rec.ID, 2*time.Minute)
	if final.State != StateCompleted {
		t.Fatalf("taken-over run finished %s (%s), want completed", final.State, final.Error)
	}
	if final.Fence < 2 || final.Takeovers < 1 {
		t.Fatalf("takeover not fenced: fence %d takeovers %d, want >= 2 and >= 1", final.Fence, final.Takeovers)
	}
	got, want := final.Result, refFinal.Result
	if got.TableDigest != want.TableDigest || got.BaseScore != want.BaseScore || got.FinalScore != want.FinalScore {
		t.Fatalf("taken-over result diverges from reference:\n  takeover: %+v\n  reference: %+v", got, want)
	}

	// The old owner must observe the loss (heartbeat or fenced write) and
	// book the run as lost — never as completed.
	deadline := time.Now().Add(time.Minute)
	for {
		a := m1.Accounting()
		if a.Lost == 1 {
			break
		}
		if a.Completed != 0 || a.Failed != 0 {
			t.Fatalf("stale owner terminalized a stolen run: %+v", a)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale owner never observed the lease loss: %+v", a)
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkAccounting(t, m1)
	checkAccounting(t, m2)
	a2 := waitSettled(t, m2, time.Minute)
	if a2.Takeovers != 1 || a2.Completed != 1 {
		t.Fatalf("new owner accounting = %+v, want 1 takeover 1 completed", a2)
	}

	// The stale owner's next persist attempt must have been fenced: the
	// record on disk is the new owner's completed one, fence intact.
	onDisk, err := m2.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateCompleted || onDisk.Fence != final.Fence {
		t.Fatalf("on-disk record clobbered by stale owner: %+v", onDisk)
	}
	if err := m1.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}

// TestDrainAdmissionRaceHandsOffLease pins the drain/admission race in lease
// mode: a submission whose persist is in flight when the drain starts must
// either reject cleanly or persist-and-acknowledge — and on the accept path
// the draining process releases the run's lease so a later process adopts
// it, rather than holding a record it will never execute.
func TestDrainAdmissionRaceHandsOffLease(t *testing.T) {
	defer parallel.SetMaxWorkers(0)
	defer testenv.NoGoroutineLeak(t)()
	dataDir, base, target := writeCorpus(t)
	spec := fastSpec(dataDir, base, target)
	state := t.TempDir()

	// The first persist (the admission write, seq 0) stalls long enough for
	// Drain to win the race.
	inj := faults.New(25, faults.Rule{
		Stage: faults.SiteServerPersist, Ordinal: 0, Kind: faults.Delay, Delay: 200 * time.Millisecond, Times: 1,
	})
	m1 := openManager(t, Config{StateDir: state, LeaseTTL: time.Second, Owner: "m1", Injector: inj})

	type res struct {
		rec Record
		err error
	}
	done := make(chan res, 1)
	go func() {
		rec, err := m1.Submit(spec)
		done <- res{rec, err}
	}()
	time.Sleep(50 * time.Millisecond) // submission is mid-persist now
	if err := m1.Drain(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("drain-raced submission = %v, want accepted with lease handed off", r.err)
	}

	// The record is durable and queued; the lease is gone (released for
	// adoption), not held by the draining process.
	onDisk, err := m1.Get(r.rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateQueued {
		t.Fatalf("handed-off run in state %s, want queued", onDisk.State)
	}
	if lease.Live(filepath.Join(state, "runs", r.rec.ID, lease.FileName)) {
		t.Fatal("draining process still holds the hand-off lease")
	}
	if _, err := os.Stat(filepath.Join(state, "runs", r.rec.ID, "run.json")); err != nil {
		t.Fatalf("handed-off record not durable: %v", err)
	}
	checkAccounting(t, m1)
	if err := m1.Close(time.Minute); err != nil {
		t.Fatal(err)
	}

	// The next process over the state dir adopts and completes it.
	m2 := openManager(t, Config{StateDir: state, LeaseTTL: 200 * time.Millisecond, Owner: "m2"})
	final := waitTerminal(t, m2, r.rec.ID, 2*time.Minute)
	if final.State != StateCompleted {
		t.Fatalf("adopted run finished %s (%s), want completed", final.State, final.Error)
	}
	if final.Takeovers != 1 || final.Fence < 2 {
		t.Fatalf("adoption not fenced: %+v", final)
	}
	checkAccounting(t, m2)
	if a := waitSettled(t, m2, time.Minute); a.Takeovers != 1 || a.Completed != 1 {
		t.Fatalf("adopter accounting = %+v, want 1 takeover 1 completed", a)
	}
	if err := m2.Close(time.Minute); err != nil {
		t.Fatal(err)
	}
}
