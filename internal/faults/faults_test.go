package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilInjectorNoops(t *testing.T) {
	var in *Injector
	if err := in.Check("join", 0); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if got := in.Fired(); got != nil {
		t.Fatalf("nil injector recorded faults: %v", got)
	}
}

func TestCheckMatching(t *testing.T) {
	in := New(1,
		At(Error, "join", 2),
		Rule{Stage: "impute", Ordinal: -1, Kind: Error},
	)
	if err := in.Check("join", 1); err != nil {
		t.Fatalf("non-matching ordinal fired: %v", err)
	}
	if err := in.Check("select", 2); err != nil {
		t.Fatalf("non-matching stage fired: %v", err)
	}
	err := in.Check("join", 2)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Stage != "join" || ie.Ordinal != 2 {
		t.Fatalf("Check(join, 2) = %v, want injected error at join[2]", err)
	}
	// Wildcard ordinal matches every impute site.
	for _, ord := range []int{0, 5, 99} {
		if err := in.Check("impute", ord); err == nil {
			t.Fatalf("wildcard rule missed impute[%d]", ord)
		}
	}
	if n := len(in.Fired()); n != 4 {
		t.Fatalf("fired log has %d entries, want 4", n)
	}
}

func TestCheckPanicKind(t *testing.T) {
	in := New(1, At(Panic, "join", 0))
	defer func() {
		p := recover()
		ie, ok := p.(*InjectedError)
		if !ok || ie.Stage != "join" {
			t.Fatalf("recovered %v, want *InjectedError at join", p)
		}
	}()
	in.Check("join", 0)
	t.Fatal("Panic rule did not panic")
}

func TestCheckDelayKind(t *testing.T) {
	in := New(1, Rule{Stage: "join", Ordinal: 0, Kind: Delay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Check("join", 0); err != nil {
		t.Fatalf("delay fault returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay fault slept %v, want >= 20ms", d)
	}
}

func TestTimesBoundsAttempts(t *testing.T) {
	in := New(1, Rule{Stage: "join", Ordinal: 3, Kind: Error, Times: 2, Transient: true})
	for attempt := 1; attempt <= 2; attempt++ {
		err := in.Check("join", 3)
		if err == nil {
			t.Fatalf("attempt %d did not fire", attempt)
		}
		if !IsTransient(err) {
			t.Fatalf("attempt %d error not transient: %v", attempt, err)
		}
	}
	if err := in.Check("join", 3); err != nil {
		t.Fatalf("attempt 3 should succeed after Times=2, got %v", err)
	}
}

func TestProbDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		in := New(seed, Rule{Ordinal: -1, Kind: Error, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Check("join", i) != nil
		}
		return out
	}
	a, b := fire(7), fire(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed disagrees at ordinal %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d sites; want a nontrivial subset", fired, len(a))
	}
	c := fire(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

func TestIsTransientClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Fatal("nil error classified transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error classified transient")
	}
	tr := &InjectedError{Stage: "join", Transient: true}
	if !IsTransient(tr) {
		t.Fatal("transient injected error not classified")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", tr)) {
		t.Fatal("wrapped transient error not classified")
	}
	if IsTransient(&InjectedError{Stage: "join"}) {
		t.Fatal("non-transient injected error classified transient")
	}
}

func TestRetryTransient(t *testing.T) {
	in := New(1, Rule{Stage: "join", Ordinal: 0, Kind: Error, Times: 2, Transient: true})
	calls := 0
	err := Retry(context.Background(), 3, time.Microsecond, func() error {
		calls++
		return in.Check("join", 0)
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want success on call 3", err, calls)
	}
}

func TestRetryNonTransientReturnsImmediately(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), 5, time.Microsecond, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("Retry = %v after %d calls, want boom after 1", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, time.Microsecond, func() error {
		calls++
		return &InjectedError{Stage: "join", Transient: true}
	})
	if err == nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want transient error after 3", err, calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, 3, time.Hour, func() error {
		calls++
		return &InjectedError{Transient: true}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry under canceled ctx = %v, want context.Canceled", err)
	}
	if calls > 1 {
		t.Fatalf("Retry kept calling (%d) after cancellation", calls)
	}
}
