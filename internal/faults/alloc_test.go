package faults

import (
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

// TestInjectionOffAllocs guards the production path: the pipeline calls
// Check unconditionally at every fault checkpoint, so with injection off —
// a nil *Injector, the default — and with an injector whose rules do not
// match, the checkpoint must be allocation-free.
func TestInjectionOffAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	var nilInj *Injector
	miss := New(1, At(Error, "join", 2), Rule{Stage: "impute", Ordinal: -1, Kind: Error})
	allocs := testing.AllocsPerRun(1000, func() {
		if err := nilInj.Check("join", 3); err != nil {
			t.Fatal("nil injector fired")
		}
		if err := miss.Check("select", 3); err != nil {
			t.Fatal("non-matching injector fired")
		}
	})
	if allocs != 0 {
		t.Fatalf("injection-off checkpoint allocates %.1f per run, want 0", allocs)
	}
}
