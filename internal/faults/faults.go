// Package faults is a seeded, deterministic fault-injection substrate for
// chaos-testing the ARDA pipeline. An Injector holds a list of rules, each
// matching an injection site — a (stage, ordinal) pair such as ("join", 3) —
// and firing one of three fault kinds: an error return, a panic, or a delay.
// The pipeline calls Check at every fault-isolated operation; a nil *Injector
// (the production default) makes every checkpoint a zero-allocation no-op.
//
// Determinism is the core contract: whether a fault fires depends only on the
// injector's seed, its rules, and the site's (stage, ordinal, attempt)
// coordinates — never on wall-clock time, goroutine scheduling, or worker
// count — so a chaos run quarantines exactly the same candidates at any
// parallelism level and can be replayed bit-identically from its seed.
package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/arda-ml/arda/internal/retry"
)

// Kind selects what a matching rule does at its injection site.
type Kind int

const (
	// Error makes Check return an *InjectedError.
	Error Kind = iota
	// Panic makes Check panic with an *InjectedError.
	Panic
	// Delay makes Check sleep for the rule's Delay, then succeed.
	Delay
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	default:
		return "error"
	}
}

// Rule matches injection sites and describes the fault to fire there. The
// zero value of the match fields is permissive: an empty Stage matches every
// stage and a negative Ordinal matches every ordinal, so construct rules with
// MatchAll (or set Ordinal explicitly) rather than relying on Ordinal's zero
// value, which matches only ordinal 0.
type Rule struct {
	// Stage matches the checkpoint's stage name exactly; "" matches all.
	Stage string
	// Ordinal matches the checkpoint's work-item ordinal; negative matches
	// all.
	Ordinal int
	// Kind is the fault fired at matching sites.
	Kind Kind
	// Prob, when in (0, 1), fires the fault only at sites whose deterministic
	// (seed, stage, ordinal) roll lands below it; 0 or >= 1 always fires.
	Prob float64
	// Times, when > 0, fires only on the site's first Times attempts, so a
	// retried operation eventually succeeds; 0 fires on every attempt.
	Times int
	// Transient marks injected errors as retryable (IsTransient reports true).
	Transient bool
	// Delay is the sleep duration of Delay faults (default 1ms).
	Delay time.Duration
}

// Injection-site names outside the pipeline's per-candidate stages. The
// augmentation service probes these so its chaos suite can fire admission
// and queue-persistence failures deterministically: SiteServerAdmit is
// checked with the submission sequence number before a run is accepted, and
// SiteServerPersist with the same ordinal at every crash-safe run-record
// write (transient persist faults are retried; persistent ones fail the
// transition).
// SiteServerRun is probed once at the start of every run execution attempt,
// with the run's sequence number: a transient fault there exercises the
// supervisor's whole-attempt retry-with-backoff loop, which the pipeline's
// own per-candidate quarantine never escalates to.
// SiteLeaseRenew is probed (with the run's sequence number) on every lease
// heartbeat renewal: a Delay rule there models a heartbeat arriving after
// the lease TTL — the clock-skew scenario — and must make the old owner
// self-fence with lease.ErrLeaseLost instead of resurrecting its lease.
const (
	SiteServerAdmit   = "server.admit"
	SiteServerPersist = "server.persist"
	SiteServerRun     = "server.run"
	SiteLeaseRenew    = "lease.renew"
)

// MatchAll returns a rule of the given kind matching every site.
func MatchAll(kind Kind) Rule { return Rule{Ordinal: -1, Kind: kind} }

// At returns a rule of the given kind matching exactly one site.
func At(kind Kind, stage string, ordinal int) Rule {
	return Rule{Stage: stage, Ordinal: ordinal, Kind: kind}
}

// Fired records one fault that actually fired, for test assertions.
type Fired struct {
	Stage   string
	Ordinal int
	// Attempt is 1-based: the Nth Check at this site that matched a rule.
	Attempt int
	Kind    Kind
}

// site keys the per-site attempt counters.
type site struct {
	stage   string
	ordinal int
}

// Injector fires faults at matching checkpoints. Create one with New, wire
// it into a run (core.Options.FaultInjector), and inspect Fired afterwards.
// All methods are safe for concurrent use and nil-receiver safe.
type Injector struct {
	seed  int64
	rules []Rule

	mu       sync.Mutex
	attempts map[site]int
	fired    []Fired
}

// New returns an injector firing the given rules; probability rolls derive
// from seed. No rules means no faults ever fire.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: rules, attempts: make(map[site]int)}
}

// Check runs the (stage, ordinal) checkpoint: the first matching rule fires
// its fault — an error return, a panic, or a sleep. No matching rule (and a
// nil injector) returns nil. The decision is a pure function of the
// injector's seed, rules, and the site's attempt count.
func (in *Injector) Check(stage string, ordinal int) error {
	if in == nil {
		return nil
	}
	for i := range in.rules {
		r := &in.rules[i]
		if r.Stage != "" && r.Stage != stage {
			continue
		}
		if r.Ordinal >= 0 && r.Ordinal != ordinal {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !in.roll(stage, ordinal, i, r.Prob) {
			continue
		}
		attempt := in.bump(stage, ordinal)
		if r.Times > 0 && attempt > r.Times {
			return nil
		}
		in.record(Fired{Stage: stage, Ordinal: ordinal, Attempt: attempt, Kind: r.Kind})
		ie := &InjectedError{Stage: stage, Ordinal: ordinal, Attempt: attempt, Transient: r.Transient}
		switch r.Kind {
		case Panic:
			panic(ie)
		case Delay:
			d := r.Delay
			if d <= 0 {
				d = time.Millisecond
			}
			time.Sleep(d)
			return nil
		default:
			return ie
		}
	}
	return nil
}

// bump increments and returns the site's 1-based attempt count.
func (in *Injector) bump(stage string, ordinal int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	k := site{stage, ordinal}
	in.attempts[k]++
	return in.attempts[k]
}

// record appends to the fired log.
func (in *Injector) record(f Fired) {
	in.mu.Lock()
	in.fired = append(in.fired, f)
	in.mu.Unlock()
}

// Fired returns a copy of the faults fired so far. Order follows checkpoint
// execution; sites probed from concurrent goroutines may interleave, so
// assertions over parallel stages should compare sets.
func (in *Injector) Fired() []Fired {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Fired, len(in.fired))
	copy(out, in.fired)
	return out
}

// roll is the deterministic probability draw for (seed, stage, ordinal,
// rule): a SplitMix64 finalizer over an FNV-1a fold of the coordinates,
// mapped to [0, 1).
func (in *Injector) roll(stage string, ordinal, rule int, prob float64) bool {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(stage); i++ {
		h = (h ^ uint64(stage[i])) * prime64
	}
	h ^= uint64(in.seed)
	h = (h ^ uint64(int64(ordinal))) * prime64
	h = (h ^ uint64(int64(rule))) * prime64
	h += 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/(1<<53) < prob
}

// InjectedError is the error (and panic value) produced by a firing fault.
type InjectedError struct {
	Stage   string
	Ordinal int
	Attempt int
	// Transient reports whether the fault models a retryable condition.
	Transient bool
}

// Error implements the error interface.
func (e *InjectedError) Error() string {
	kind := "fault"
	if e.Transient {
		kind = "transient fault"
	}
	return fmt.Sprintf("faults: injected %s at %s[%d] attempt %d", kind, e.Stage, e.Ordinal, e.Attempt)
}

// transienter is the classification interface: any error whose chain exposes
// IsTransient() == true is considered retryable.
type transienter interface{ IsTransient() bool }

// IsTransient implements the transienter classification for injected errors.
func (e *InjectedError) IsTransient() bool { return e.Transient }

// IsTransient reports whether err's chain contains an error classified
// transient (retry may succeed). Injected transient faults and any error
// implementing IsTransient() bool qualify.
func IsTransient(err error) bool {
	var tr transienter
	return errors.As(err, &tr) && tr.IsTransient()
}

// Retry runs fn up to attempts times, retrying only failures classified
// transient by IsTransient, with deterministic exponential backoff (base,
// 2·base, 4·base, …) between tries. A done ctx aborts the wait and returns
// ctx.Err(); non-transient errors (and success) return immediately. attempts
// < 1 is treated as 1. It is the transient-classified specialization of
// retry.Do, kept for callers that already speak this signature.
func Retry(ctx context.Context, attempts int, base time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	return retry.Do(ctx, retry.Policy{Attempts: attempts, Base: base}, IsTransient, fn)
}
