package experiments

import (
	"strings"
	"testing"
)

// TestAllHarnessesTiny runs every table/figure harness once at the tiny
// scale and checks structural invariants (row counts, render output). It is
// the integration test for the whole reproduction pipeline; skip with
// -short.
func TestAllHarnessesTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep is slow")
	}
	seed := int64(77)

	t.Run("figure3", func(t *testing.T) {
		r, err := Figure3(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		// 6 systems × 5 datasets.
		if len(r.Rows) != 30 {
			t.Fatalf("figure 3 rows = %d, want 30", len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.System == "base table" && row.ImprovementPct != 0 {
				t.Fatal("base table must be the zero line")
			}
		}
		if !strings.Contains(r.Render(), "ARDA") {
			t.Fatal("render missing ARDA row")
		}
	})

	t.Run("table1", func(t *testing.T) {
		r, err := Table1(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		// 5 reference rows + 12 methods per dataset × 5 datasets.
		if len(r.Rows) != 5*17 {
			t.Fatalf("table 1 rows = %d, want 85", len(r.Rows))
		}
		nas := 0
		for _, row := range r.Rows {
			if row.NA {
				nas++
			}
		}
		// lasso n/a on 2 classification datasets; linear svc + logistic reg
		// n/a on 3 regression datasets.
		if nas != 2+3*2 {
			t.Fatalf("n/a cells = %d, want 8", nas)
		}
		out := r.Render()
		if !strings.Contains(out, "n/a") || !strings.Contains(out, "RIFS") {
			t.Fatal("table 1 render incomplete")
		}
		if !strings.Contains(r.RenderFigure4(), "improvement") {
			t.Fatal("figure 4 render incomplete")
		}
	})

	t.Run("table2", func(t *testing.T) {
		r, err := Table2(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) == 0 {
			t.Fatal("table 2 empty")
		}
		datasets := map[string]bool{}
		for _, row := range r.Rows {
			datasets[row.Dataset] = true
		}
		for _, want := range []string{"school-s", "digits", "kraken"} {
			if !datasets[want] {
				t.Fatalf("table 2 missing dataset %s", want)
			}
		}
	})

	t.Run("table3", func(t *testing.T) {
		r, err := Table3(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !r.SketchOnly {
			t.Fatal("table 3 should render sketch-only")
		}
		// 9 methods × 3 regression datasets.
		if len(r.Rows) != 27 {
			t.Fatalf("table 3 rows = %d, want 27", len(r.Rows))
		}
	})

	t.Run("figure5", func(t *testing.T) {
		r, err := Figure5(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		// 8 methods × 4 variants × 2 datasets.
		if len(r.Rows) != 64 {
			t.Fatalf("figure 5 rows = %d, want 64", len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.Error < 0 {
				t.Fatalf("negative MAE on %s/%s", row.Dataset, row.Method)
			}
		}
	})

	t.Run("table4", func(t *testing.T) {
		r, err := Table4(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 5 {
			t.Fatalf("table 4 rows = %d, want 5", len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.Tau <= 0 || row.Speedup <= 0 {
				t.Fatalf("degenerate row %+v", row)
			}
		}
	})

	t.Run("table5", func(t *testing.T) {
		r, err := Table5(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		// 4 methods × 4 datasets.
		if len(r.Rows) != 16 {
			t.Fatalf("table 5 rows = %d, want 16", len(r.Rows))
		}
	})

	t.Run("ablation", func(t *testing.T) {
		r, err := RIFSAblation(tiny, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 11 {
			t.Fatalf("ablation rows = %d, want 11", len(r.Rows))
		}
		if !strings.Contains(r.Render(), "moment-matched") {
			t.Fatal("ablation render incomplete")
		}
	})
}
