package experiments

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labeled values as a horizontal ASCII bar chart, the
// plotted companion to the figure tables. Negative values extend left of the
// zero axis.
func BarChart(title string, labels []string, values []float64, unit string) string {
	const width = 40
	maxAbs := 0.0
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	hasNeg := false
	for _, v := range values {
		if v < 0 {
			hasNeg = true
		}
	}
	for i, v := range values {
		bars := int(math.Round(math.Abs(v) / maxAbs * width))
		fmt.Fprintf(&b, "%-*s ", labelWidth, labels[i])
		if hasNeg {
			if v < 0 {
				fmt.Fprintf(&b, "%*s|", width, strings.Repeat("#", bars))
				b.WriteString(strings.Repeat(" ", width))
			} else {
				fmt.Fprintf(&b, "%*s|%s", width, "", strings.Repeat("#", bars))
				b.WriteString(strings.Repeat(" ", width-bars))
			}
		} else {
			b.WriteString(strings.Repeat("#", bars))
			b.WriteString(strings.Repeat(" ", width-bars))
		}
		fmt.Fprintf(&b, "  %.2f%s\n", v, unit)
	}
	return b.String()
}

// RenderChart draws Figure 3 as grouped bars: one block per dataset, one bar
// per system.
func (r *Figure3Result) RenderChart() string {
	var b strings.Builder
	b.WriteString("Figure 3 (chart): achieved augmentation by system\n")
	current := ""
	var labels []string
	var values []float64
	flush := func() {
		if current == "" {
			return
		}
		b.WriteString(BarChart(current, labels, values, "%"))
		b.WriteByte('\n')
		labels, values = nil, nil
	}
	for _, row := range r.Rows {
		if row.Dataset != current {
			flush()
			current = row.Dataset
		}
		labels = append(labels, row.System)
		values = append(values, row.ImprovementPct)
	}
	flush()
	return b.String()
}

// RenderChart draws Figure 6 as per-dataset bars of selected-feature counts,
// annotated with the original-feature fraction.
func (r *MicroResult) RenderChart() string {
	var b strings.Builder
	b.WriteString("Figure 6 (chart): features selected per method\n")
	current := ""
	var labels []string
	var values []float64
	flush := func() {
		if current == "" {
			return
		}
		b.WriteString(BarChart(current, labels, values, " selected"))
		b.WriteByte('\n')
		labels, values = nil, nil
	}
	for _, row := range r.Rows {
		if row.Selected == 0 {
			continue
		}
		if row.Dataset != current {
			flush()
			current = row.Dataset
		}
		frac := float64(row.OriginalSelected) / float64(row.Selected)
		labels = append(labels, fmt.Sprintf("%s (%.0f%% real)", row.Method, 100*frac))
		values = append(values, float64(row.Selected))
	}
	flush()
	return b.String()
}
