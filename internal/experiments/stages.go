package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/obs"
)

// PipelineStages lists the canonical stage names of a traced Augment run in
// pipeline order — the rows of the paper's §6 cost breakdown (join
// execution vs. selection vs. everything around them).
var PipelineStages = []string{
	"prefilter", "coreset", "join", "impute", "select", "materialize", "evaluate",
}

// StageCost is one stage's aggregate over a run.
type StageCost struct {
	// Millis is the summed duration of every span with the stage's name.
	Millis float64 `json:"ms"`
	// Spans counts those spans (e.g. one "select" per batch).
	Spans int `json:"spans"`
}

// StageRun is one corpus's stage-resolved timing breakdown.
type StageRun struct {
	Corpus string `json:"corpus"`
	// ElapsedMillis is the whole run (the root span).
	ElapsedMillis float64 `json:"elapsed_ms"`
	// Stages maps canonical stage names to their aggregate cost.
	Stages map[string]StageCost `json:"stages"`
	// Counters holds the run's final counter/gauge values.
	Counters map[string]int64 `json:"counters"`
}

// StagesResult is the stage-timing report (the source of BENCH_stages.json):
// per-corpus, per-stage wall-clock costs measured through the observability
// layer rather than ad-hoc stopwatches.
type StagesResult struct {
	// Seed is the run seed; Scale the corpus scale factor.
	Seed  int64      `json:"seed"`
	Scale float64    `json:"scale"`
	Runs  []StageRun `json:"runs"`
}

// StageBreakdown runs a traced RIFS pipeline over the paper's five corpora
// and aggregates each run's span tree into per-stage costs. One extra
// school-s run pins K to 10 repetitions regardless of scale: the reduced
// scales' smaller K collapses the repetition schedule to a single
// barrier-free wave (where select.reps_short_circuited is structurally
// zero), so the variant keeps the short-circuit machinery observable in the
// published numbers.
func StageBreakdown(s Scale, seed int64) (*StagesResult, error) {
	out := &StagesResult{Seed: seed, Scale: s.Corpus}
	runOne := func(spec CorpusSpec, label string, k int) error {
		corpus := s.Generate(spec, seed)
		sel, err := s.Selector(featsel.MethodRIFS)
		if err != nil {
			return err
		}
		if k > 0 {
			sel.(*featsel.RIFS).Config.K = k
		}
		fc := s.EstimatorForest(seed)
		cands := discovery.Discover(corpus.Base, corpus.Repo, corpus.Target, discovery.Options{})
		trace := obs.New("augment")
		res, err := core.Augment(corpus.Base, cands, core.Options{
			Target:          corpus.Target,
			CoresetSize:     s.CoresetSize,
			Selector:        sel,
			Estimator:       s.Estimator(seed),
			EstimatorForest: &fc,
			Seed:            seed,
			Trace:           trace,
		})
		if err != nil {
			return fmt.Errorf("experiments: stage breakdown on %s: %w", label, err)
		}
		totals := res.Trace.StageTotals()
		spans := res.Trace.SpanCounts()
		run := StageRun{
			Corpus:        label,
			ElapsedMillis: millis(res.Trace.Elapsed),
			Stages:        make(map[string]StageCost, len(PipelineStages)),
			Counters:      res.Trace.Counters,
		}
		for _, stage := range PipelineStages {
			run.Stages[stage] = StageCost{Millis: millis(totals[stage]), Spans: spans[stage]}
		}
		out.Runs = append(out.Runs, run)
		return nil
	}
	for _, spec := range RealWorld() {
		if err := runOne(spec, spec.Name, 0); err != nil {
			return nil, err
		}
	}
	for _, spec := range RealWorld() {
		if spec.Name != "school-s" {
			continue
		}
		if err := runOne(spec, "school-s-k10", 10); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// millis converts a duration to fractional milliseconds.
func millis(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// JSON renders the result as the BENCH_stages.json document.
func (r *StagesResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render draws the per-stage cost table: one corpus per row, one stage per
// column, milliseconds.
func (r *StagesResult) Render() string {
	var b strings.Builder
	b.WriteString("Per-stage pipeline cost (ms), RIFS selector\n\n")
	fmt.Fprintf(&b, "%-10s %9s", "corpus", "total")
	for _, stage := range PipelineStages {
		fmt.Fprintf(&b, " %11s", stage)
	}
	b.WriteByte('\n')
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-10s %9.0f", run.Corpus, run.ElapsedMillis)
		for _, stage := range PipelineStages {
			fmt.Fprintf(&b, " %11.1f", run.Stages[stage].Millis)
		}
		b.WriteByte('\n')
	}
	// The counters shared by every run, summed — the run-volume context for
	// the timings above.
	sums := make(map[string]int64)
	for _, run := range r.Runs {
		for name, v := range run.Counters {
			sums[name] += v
		}
	}
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("\ncounters (summed over corpora):\n")
	for _, name := range names {
		fmt.Fprintf(&b, "  %-34s %d\n", name, sums[name])
	}
	return b.String()
}
