package experiments

import (
	"fmt"
	"math/rand"

	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/synth"
)

// CoresetRow reports one (dataset, method) comparison of coreset strategies:
// the score change of stratified sampling and sketching relative to uniform
// sampling (Tables 2 and 3 of the paper).
type CoresetRow struct {
	Dataset, Method    string
	Uniform            float64
	StratifiedDeltaPct float64
	SketchDeltaPct     float64
}

// CoresetResult holds one coreset-ablation table.
type CoresetResult struct {
	Title string
	Rows  []CoresetRow
	// SketchOnly omits the stratified column (Table 3: stratification is a
	// classification-only strategy, so it is a no-op on regression corpora).
	SketchOnly bool
}

// coresetScore reduces the training rows with the given strategy and runs
// feature selection on the reduced set; the final model then trains on the
// full training rows restricted to the selected features (as in the paper,
// the coreset accelerates selection — sketched rows are linear mixtures and
// cannot train a tree model that predicts real rows). The score is taken on
// the untouched holdout.
func coresetScore(ds *ml.Dataset, strat coreset.Strategy, sel featsel.Selector, s Scale, seed int64) (float64, error) {
	split := eval.TrainTestSplit(ds, 0.25, seed)
	train := ds.Subset(split.Train)
	test := ds.Subset(split.Test)
	rng := rand.New(rand.NewSource(seed + 17))
	// The reduction must actually reduce, even on small quick-scale corpora.
	size := s.CoresetSize
	if size > train.N/2 {
		size = train.N / 2
	}
	var reduced *ml.Dataset
	if strat == coreset.Sketch {
		reduced = coreset.SketchDataset(train, size, rng)
	} else {
		reduced = coreset.Sample(train, strat, size, rng)
	}
	est := s.Estimator(seed)
	cols, err := sel.Select(reduced, est, seed)
	if err != nil {
		return 0, err
	}
	if len(cols) == 0 {
		cols = []int{0}
	}
	model := est(train.SelectFeatures(cols))
	testSel := test.SelectFeatures(cols)
	pred := ml.PredictAll(model, testSel)
	return eval.Score(ds.Task, ds.Classes, pred, testSel.Y), nil
}

// classificationCoresetDatasets builds the Table 2 datasets: the fully
// materialized School (S) corpus plus the Digits and Kraken micro benchmarks
// with injected noise.
func classificationCoresetDatasets(s Scale, seed int64) (map[string]*ml.Dataset, error) {
	out := map[string]*ml.Dataset{}
	school := s.Generate(CorpusSpec{"school-s", synth.SchoolS}, seed)
	ds, err := MaterializeAll(school, s, seed)
	if err != nil {
		return nil, err
	}
	out["school-s"] = ds
	digits := synth.Digits(synth.Config{Seed: seed})
	dAug, _ := synth.InjectNoise(digits, s.NoiseFactor, seed+1)
	out["digits"] = dAug
	kraken := synth.Kraken(synth.Config{Seed: seed})
	kAug, _ := synth.InjectNoise(kraken, s.NoiseFactor, seed+2)
	out["kraken"] = kAug
	return out, nil
}

// Table2Methods lists the selectors compared in the paper's Table 2.
func Table2Methods() []featsel.Method {
	return []featsel.Method{
		featsel.MethodFTest, featsel.MethodMutual, featsel.MethodForest,
		featsel.MethodSparse, featsel.MethodAll, featsel.MethodRIFS,
		featsel.MethodForward, featsel.MethodLinearSVC, featsel.MethodRelief,
	}
}

// Table2 compares stratified sampling and per-stratum sketching against
// uniform sampling on the classification datasets.
func Table2(s Scale, seed int64) (*CoresetResult, error) {
	datasets, err := classificationCoresetDatasets(s, seed)
	if err != nil {
		return nil, err
	}
	out := &CoresetResult{Title: "Table 2: coreset strategies on classification datasets (Δ accuracy vs uniform)"}
	for _, name := range []string{"school-s", "digits", "kraken"} {
		ds := datasets[name]
		for _, m := range Table2Methods() {
			sel, err := s.Selector(m)
			if err != nil {
				return nil, err
			}
			if !sel.Supports(ds.Task) {
				continue
			}
			row, err := coresetComparison(name, string(m), ds, sel, s, seed)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Table3Methods lists the selectors compared in the paper's Table 3.
func Table3Methods() []featsel.Method {
	return []featsel.Method{
		featsel.MethodRIFS, featsel.MethodSparse, featsel.MethodFTest,
		featsel.MethodLasso, featsel.MethodMutual, featsel.MethodRelief,
		featsel.MethodAll, featsel.MethodForest, featsel.MethodForward,
	}
}

// Table3 benchmarks sketching against uniform sampling on the regression
// corpora (fully materialized).
func Table3(s Scale, seed int64) (*CoresetResult, error) {
	out := &CoresetResult{
		Title:      "Table 3: sketching vs uniform sampling on regression datasets (Δ score %)",
		SketchOnly: true,
	}
	for _, spec := range RegressionCorpora() {
		c := s.Generate(spec, seed)
		ds, err := MaterializeAll(c, s, seed)
		if err != nil {
			return nil, err
		}
		for _, m := range Table3Methods() {
			sel, err := s.Selector(m)
			if err != nil {
				return nil, err
			}
			if !sel.Supports(ds.Task) {
				continue
			}
			row, err := coresetComparison(c.Name, string(m), ds, sel, s, seed)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// coresetComparison scores all three strategies for one (dataset, method).
func coresetComparison(dataset, method string, ds *ml.Dataset, sel featsel.Selector, s Scale, seed int64) (CoresetRow, error) {
	uni, err := coresetScore(ds, coreset.Uniform, sel, s, seed)
	if err != nil {
		return CoresetRow{}, err
	}
	strat, err := coresetScore(ds, coreset.Stratified, sel, s, seed)
	if err != nil {
		return CoresetRow{}, err
	}
	sk, err := coresetScore(ds, coreset.Sketch, sel, s, seed)
	if err != nil {
		return CoresetRow{}, err
	}
	return CoresetRow{
		Dataset:            dataset,
		Method:             method,
		Uniform:            uni,
		StratifiedDeltaPct: improvementPct(uni, strat),
		SketchDeltaPct:     improvementPct(uni, sk),
	}, nil
}

// Render formats the coreset table.
func (r *CoresetResult) Render() string {
	headers := []string{"dataset", "method", "uniform score", "stratified Δ", "sketch Δ"}
	if r.SketchOnly {
		headers = []string{"dataset", "method", "uniform score", "sketch Δ"}
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Dataset, row.Method, fmt.Sprintf("%.3f", row.Uniform)}
		if !r.SketchOnly {
			cells = append(cells, fmtPct(row.StratifiedDeltaPct))
		}
		cells = append(cells, fmtPct(row.SketchDeltaPct))
		rows = append(rows, cells)
	}
	return RenderTable(r.Title, headers, rows)
}
