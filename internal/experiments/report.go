package experiments

import (
	"fmt"
	"strings"
	"time"
)

// RenderTable formats headers and rows as an aligned monospace table.
func RenderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// fmtPct formats a percentage with sign.
func fmtPct(v float64) string { return fmt.Sprintf("%+.2f%%", v) }

// fmtScore formats a score to three decimals.
func fmtScore(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtDur formats a duration in seconds with one decimal.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.1fs", d.Seconds()) }

// fmtAcc formats an accuracy as a percentage.
func fmtAcc(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
