package experiments

import (
	"fmt"
	"time"

	"github.com/arda-ml/arda/internal/automl"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/ml"
)

// Table1Row is one (dataset, method) cell group of Table 1: error or
// accuracy plus feature-selection-and-evaluation time. It also carries the
// %-improvement used by Figure 4 (score vs. time per selector).
type Table1Row struct {
	Dataset, Method string
	Task            ml.Task
	// Error is the holdout MAE (regression datasets); Accuracy the holdout
	// accuracy (classification datasets).
	Error, Accuracy float64
	// ImprovementPct is the Figure 4 y-axis: %-improvement of the final
	// score over the base-table score.
	ImprovementPct float64
	Time           time.Duration
	// NA marks method/dataset combinations the paper reports as n/a
	// (lasso on classification, linear svc / logistic reg on regression).
	NA bool
}

// Table1Result is the full selector sweep over the real-world corpora —
// the data behind both Table 1 and Figure 4.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Methods lists the method rows in the paper's order.
func Table1Methods() []featsel.Method {
	return []featsel.Method{
		featsel.MethodRIFS,
		featsel.MethodBackward,
		featsel.MethodForward,
		featsel.MethodRFE,
		featsel.MethodSparse,
		featsel.MethodForest,
		featsel.MethodFTest,
		featsel.MethodLasso,
		featsel.MethodMutual,
		featsel.MethodRelief,
		featsel.MethodLinearSVC,
		featsel.MethodLogistic,
	}
}

// Table1 runs every feature selector through the ARDA pipeline on every
// real-world corpus, plus the baseline, all-features and AutoML reference
// rows.
func Table1(s Scale, seed int64) (*Table1Result, error) {
	out := &Table1Result{}
	for _, spec := range RealWorld() {
		c := s.Generate(spec, seed)
		task, _, _ := corpusTask(c)

		baseScore, baseMAE, baseAcc, baseTime := BaselineMetrics(c, s, seed)
		out.Rows = append(out.Rows, Table1Row{
			Dataset: c.Name, Method: "baseline (our)", Task: task,
			Error: baseMAE, Accuracy: baseAcc, Time: baseTime,
		})

		allSel, err := s.Selector(featsel.MethodAll)
		if err != nil {
			return nil, err
		}
		pa, err := RunPipeline(c, allSel, s, PipelineOpts{Seed: seed})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, rowOf(c.Name, "all features (our)", pa))

		tau := TuneTau(c, seed)
		pt, err := RunPipeline(c, allSel, s, PipelineOpts{Seed: seed, Tau: tau})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, rowOf(c.Name, "TR rule", pt))

		// AutoML reference rows (substitutes for Azure AutoML / Alpine
		// Meadow).
		baseDS, err := baseDataset(c)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, automlRow(c.Name, "baseline (AutoML)", task, baseScore, baseDS, s, seed))
		allDS, err := MaterializeAll(c, s, seed)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, automlRow(c.Name, "all features (AutoML)", task, baseScore, allDS, s, seed))

		for _, m := range Table1Methods() {
			sel, err := s.Selector(m)
			if err != nil {
				return nil, err
			}
			if !sel.Supports(task) {
				out.Rows = append(out.Rows, Table1Row{Dataset: c.Name, Method: string(m), Task: task, NA: true})
				continue
			}
			pr, err := RunPipeline(c, sel, s, PipelineOpts{Seed: seed})
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, rowOf(c.Name, string(m), pr))
		}
	}
	return out, nil
}

// rowOf converts a pipeline result into a table row.
func rowOf(dataset, method string, pr PipelineResult) Table1Row {
	return Table1Row{
		Dataset:        dataset,
		Method:         method,
		Task:           pr.Task,
		Error:          pr.Error,
		Accuracy:       pr.Accuracy,
		ImprovementPct: pr.ImprovementPct,
		Time:           pr.SelTime,
	}
}

// automlRow evaluates an AutoML search on a dataset as a reference row.
func automlRow(dataset, method string, task ml.Task, baseScore float64, ds *ml.Dataset, s Scale, seed int64) Table1Row {
	start := time.Now()
	res := automl.Search(ds, automl.Config{Budget: s.AutoMLBudget, MaxTrials: s.AutoMLTrials, Seed: seed})
	elapsed := time.Since(start)
	row := Table1Row{Dataset: dataset, Method: method, Task: task, Time: elapsed}
	row.ImprovementPct = improvementPct(baseScore, res.Score)
	split := eval.TrainTestSplit(ds, 0.25, seed)
	if task == ml.Regression {
		row.Error = eval.HoldoutError(ds, split, res.Fit)
	} else {
		row.Accuracy = res.Score
	}
	return row
}

// Render formats Table 1 in the paper's layout: one row per method, one
// column group per dataset.
func (r *Table1Result) Render() string {
	datasets := []string{}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Dataset] {
			seen[row.Dataset] = true
			datasets = append(datasets, row.Dataset)
		}
	}
	cell := map[string]map[string]Table1Row{}
	methods := []string{}
	seenM := map[string]bool{}
	for _, row := range r.Rows {
		if cell[row.Method] == nil {
			cell[row.Method] = map[string]Table1Row{}
		}
		cell[row.Method][row.Dataset] = row
		if !seenM[row.Method] {
			seenM[row.Method] = true
			methods = append(methods, row.Method)
		}
	}
	headers := []string{"method"}
	for _, d := range datasets {
		headers = append(headers, d+" err/acc", d+" time")
	}
	var rows [][]string
	for _, m := range methods {
		row := []string{m}
		for _, d := range datasets {
			c, ok := cell[m][d]
			switch {
			case !ok || c.NA:
				row = append(row, "n/a", "")
			case c.Task == ml.Regression:
				row = append(row, fmt.Sprintf("%.2f", c.Error), fmtDur(c.Time))
			default:
				row = append(row, fmtAcc(c.Accuracy), fmtDur(c.Time))
			}
		}
		rows = append(rows, row)
	}
	return RenderTable(
		"Table 1: error (MAE) / accuracy and selection time per feature selector",
		headers, rows,
	)
}

// RenderFigure4 formats the same sweep as Figure 4: %-improvement vs.
// selection time per selector and dataset.
func (r *Table1Result) RenderFigure4() string {
	var rows [][]string
	for _, row := range r.Rows {
		if row.NA {
			continue
		}
		rows = append(rows, []string{
			row.Dataset, row.Method, fmtPct(row.ImprovementPct), fmtDur(row.Time),
		})
	}
	return RenderTable(
		"Figure 4: %-improvement over base score vs. feature-selection time",
		[]string{"dataset", "method", "improvement", "sel time"},
		rows,
	)
}
