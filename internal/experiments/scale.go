// Package experiments reproduces every table and figure in the ARDA paper's
// evaluation (§7) on the synthetic corpora of internal/synth: the headline
// augmentation results (Figure 3, Table 1, Figure 4), coreset-construction
// ablations (Tables 2–3), soft-join ablations (Figure 5), Tuple-Ratio
// prefiltering (Table 4), join-plan grouping (Table 5), and the
// noise-filtering micro benchmarks (Figure 6, Table 6). Each experiment
// returns structured rows plus a rendered text table whose layout mirrors
// the paper's.
package experiments

import (
	"time"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/synth"
)

// Scale bundles the knobs that trade experiment fidelity against runtime.
type Scale struct {
	// Corpus multiplies synthetic corpus row counts.
	Corpus float64
	// CoresetSize is the pipeline coreset size.
	CoresetSize int
	// RIFSK is the number of RIFS injection repetitions.
	RIFSK int
	// Trees is the ranking-forest size; the estimator uses 2×Trees.
	Trees int
	// AutoMLBudget and AutoMLTrials bound the AutoML baseline search.
	AutoMLBudget time.Duration
	AutoMLTrials int
	// ForwardMaxFeatures / ForwardCandidates / BackwardCandidates bound the
	// greedy wrapper methods.
	ForwardMaxFeatures int
	ForwardCandidates  int
	BackwardCandidates int
	// NoiseFactor is the micro-benchmark noise multiplier (paper: 10).
	NoiseFactor int
}

// Quick is the reduced scale used by `go test -bench` targets.
var Quick = Scale{
	Corpus:             0.12,
	CoresetSize:        160,
	RIFSK:              4,
	Trees:              20,
	AutoMLBudget:       2 * time.Second,
	AutoMLTrials:       8,
	ForwardMaxFeatures: 16,
	ForwardCandidates:  20,
	BackwardCandidates: 8,
	NoiseFactor:        4,
}

// Full is the scale used by cmd/ardabench to regenerate EXPERIMENTS.md.
var Full = Scale{
	Corpus:             0.5,
	CoresetSize:        320,
	RIFSK:              10,
	Trees:              40,
	AutoMLBudget:       15 * time.Second,
	AutoMLTrials:       32,
	ForwardMaxFeatures: 32,
	ForwardCandidates:  50,
	BackwardCandidates: 15,
	NoiseFactor:        10,
}

// Selector constructs the named method sized for this scale.
func (s Scale) Selector(m featsel.Method) (featsel.Selector, error) {
	switch m {
	case featsel.MethodRIFS:
		return &featsel.RIFS{Config: featsel.RIFSConfig{
			K:      s.RIFSK,
			Forest: featsel.ForestRanker{NTrees: s.Trees, MaxDepth: 10},
		}}, nil
	case featsel.MethodForest:
		return &featsel.RankingSelector{Ranker: &featsel.ForestRanker{NTrees: s.Trees * 2, MaxDepth: 12}}, nil
	case featsel.MethodForward:
		return &featsel.ForwardSelector{
			MaxFeatures:   s.ForwardMaxFeatures,
			MaxCandidates: s.ForwardCandidates,
		}, nil
	case featsel.MethodBackward:
		return &featsel.BackwardSelector{
			MaxCandidates: s.BackwardCandidates,
			MaxRounds:     3 * s.BackwardCandidates,
		}, nil
	default:
		return featsel.New(m)
	}
}

// EstimatorForest is the forest configuration behind Estimator, declared
// separately so pipelines can hand it to featsel.ForestEstimatorAware
// selectors (the threshold sweep's cross-forest wave fast path).
func (s Scale) EstimatorForest(seed int64) ml.ForestConfig {
	return ml.ForestConfig{
		NTrees:   s.Trees * 2,
		MaxDepth: 12,
		Seed:     seed,
		Parallel: true,
	}
}

// Estimator is the "lightly auto-optimized random forest" used to score
// selections and final augmentations.
func (s Scale) Estimator(seed int64) eval.Fitter {
	cfg := s.EstimatorForest(seed)
	return func(d *ml.Dataset) ml.Model {
		return ml.FitForest(d, cfg)
	}
}

// CorpusSpec names a generator for one of the paper's five real-world-style
// datasets.
type CorpusSpec struct {
	Name string
	Gen  func(synth.Config) *synth.Corpus
}

// RealWorld lists the five corpora in the paper's order.
func RealWorld() []CorpusSpec {
	return []CorpusSpec{
		{"taxi", synth.Taxi},
		{"pickup", synth.Pickup},
		{"poverty", synth.Poverty},
		{"school-s", synth.SchoolS},
		{"school-l", synth.SchoolL},
	}
}

// RegressionCorpora lists the regression subset (Tables 3, Figure 5).
func RegressionCorpora() []CorpusSpec {
	return []CorpusSpec{
		{"taxi", synth.Taxi},
		{"pickup", synth.Pickup},
		{"poverty", synth.Poverty},
	}
}

// Generate builds the named corpus at this scale.
func (s Scale) Generate(spec CorpusSpec, seed int64) *synth.Corpus {
	return spec.Gen(synth.Config{Seed: seed, Scale: s.Corpus})
}
