package experiments

import (
	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/synth"
)

// Table5Row reports, for one (dataset, selector), the final-score change of
// table-join and full-materialization relative to budget-join.
type Table5Row struct {
	Dataset, Method string
	TableDeltaPct   float64
	FullMatDeltaPct float64
	BudgetScore     float64
}

// Table5Result holds the join-plan grouping comparison.
type Table5Result struct {
	Rows []Table5Row
}

// Table5Methods lists the selectors of the paper's Table 5.
func Table5Methods() []featsel.Method {
	return []featsel.Method{
		featsel.MethodRIFS, featsel.MethodForward,
		featsel.MethodForest, featsel.MethodSparse,
	}
}

// Table5 compares table-join and full materialization against the
// budget-join default on Taxi, Pickup, Poverty and School (S).
func Table5(s Scale, seed int64) (*Table5Result, error) {
	specs := append(RegressionCorpora(), CorpusSpec{"school-s", RealWorld()[3].Gen})
	out := &Table5Result{}
	for _, spec := range specs {
		c := s.Generate(spec, seed)
		task, _, err := corpusTask(c)
		if err != nil {
			return nil, err
		}
		for _, m := range Table5Methods() {
			sel, err := s.Selector(m)
			if err != nil {
				return nil, err
			}
			if !sel.Supports(task) {
				continue
			}
			// A budget well below the corpus's total feature count, so
			// budget-join actually batches (otherwise it degenerates to full
			// materialization and the comparison is vacuous).
			featBudget := totalFeatures(c) / 4
			if featBudget < 16 {
				featBudget = 16
			}
			budget, err := RunPipeline(c, sel, s, PipelineOpts{Seed: seed, Plan: core.BudgetJoin, Budget: featBudget})
			if err != nil {
				return nil, err
			}
			table, err := RunPipeline(c, sel, s, PipelineOpts{Seed: seed, Plan: core.TableJoin, Budget: featBudget})
			if err != nil {
				return nil, err
			}
			full, err := RunPipeline(c, sel, s, PipelineOpts{Seed: seed, Plan: core.FullMaterialization, Budget: featBudget})
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Table5Row{
				Dataset:         c.Name,
				Method:          string(m),
				BudgetScore:     budget.FinalScore,
				TableDeltaPct:   improvementPct(budget.FinalScore, table.FinalScore),
				FullMatDeltaPct: improvementPct(budget.FinalScore, full.FinalScore),
			})
		}
	}
	return out, nil
}

// totalFeatures sums the estimated feature contributions of every
// discovered candidate.
func totalFeatures(c *synth.Corpus) int {
	cands := discovery.Discover(c.Base, c.Repo, c.Target, discovery.Options{})
	total := 0
	for _, cand := range cands {
		total += core.EstimateFeatures(cand)
	}
	return total
}

// Render formats the table.
func (r *Table5Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, row.Method,
			fmtScore(row.BudgetScore),
			fmtPct(row.TableDeltaPct),
			fmtPct(row.FullMatDeltaPct),
		})
	}
	return RenderTable(
		"Table 5: join-plan grouping vs budget-join (Δ final score %)",
		[]string{"dataset", "method", "budget score", "table-join Δ", "full-mat Δ"},
		rows,
	)
}
