package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/synth"
)

// tiny is an even smaller scale than Quick, for unit-testing the harness
// machinery itself.
var tiny = Scale{
	Corpus:             0.08,
	CoresetSize:        128,
	RIFSK:              3,
	Trees:              12,
	AutoMLBudget:       500 * time.Millisecond,
	AutoMLTrials:       4,
	ForwardMaxFeatures: 8,
	ForwardCandidates:  6,
	BackwardCandidates: 5,
	NoiseFactor:        2,
}

func TestScaleSelectorConstruction(t *testing.T) {
	for _, m := range featsel.AllMethods() {
		sel, err := tiny.Selector(m)
		if err != nil {
			t.Fatalf("Selector(%s): %v", m, err)
		}
		if sel.Name() != string(m) {
			t.Fatalf("selector name %q != %q", sel.Name(), m)
		}
	}
}

func TestRenderTableAlignment(t *testing.T) {
	s := RenderTable("T", []string{"a", "long-header"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	if lines[0] != "T" {
		t.Fatalf("title line = %q", lines[0])
	}
	// All data lines share the width of the widest cell per column.
	if len(lines[2]) != len(lines[1]) {
		t.Fatalf("separator width mismatch: %q vs %q", lines[2], lines[1])
	}
}

func TestRunPipelineOnTinyCorpus(t *testing.T) {
	c := synth.Poverty(synth.Config{Seed: 5, Scale: tiny.Corpus})
	sel, err := tiny.Selector(featsel.MethodFTest)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPipeline(c, sel, tiny, PipelineOpts{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Corpus != "poverty" || pr.Method != "f-test" {
		t.Fatalf("row identity = %q/%q", pr.Corpus, pr.Method)
	}
	if pr.TotalTime <= 0 || pr.Error <= 0 {
		t.Fatalf("metrics missing: %+v", pr)
	}
}

func TestBaselineMetrics(t *testing.T) {
	c := synth.SchoolS(synth.Config{Seed: 7, Scale: tiny.Corpus})
	score, mae, acc, elapsed := BaselineMetrics(c, tiny, 8)
	if score <= 0 || acc != score || mae != 0 || elapsed <= 0 {
		t.Fatalf("baseline metrics = %v %v %v %v", score, mae, acc, elapsed)
	}
}

func TestTuneTauRemovesTail(t *testing.T) {
	c := synth.Poverty(synth.Config{Seed: 9, Scale: tiny.Corpus})
	tau := TuneTau(c, 10)
	if tau <= 0 {
		t.Fatalf("tau = %v", tau)
	}
}

func TestMaterializeAll(t *testing.T) {
	c := synth.Poverty(synth.Config{Seed: 11, Scale: tiny.Corpus})
	ds, err := MaterializeAll(c, tiny, 12)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != c.Base.NumRows() {
		t.Fatalf("materialized rows %d != base %d", ds.N, c.Base.NumRows())
	}
	// Materializing everything must add features beyond the base view.
	baseDS, err := baseDataset(c)
	if err != nil {
		t.Fatal(err)
	}
	if ds.D <= baseDS.D {
		t.Fatalf("materialized d=%d not above base d=%d", ds.D, baseDS.D)
	}
}

func TestRunMicrosTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("micro sweep is slow")
	}
	// Restrict to a fast subset via a trimmed scale; RunMicros itself runs
	// all methods, so use the smallest settings.
	res, err := RunMicros(tiny, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no micro rows")
	}
	var rifs *MicroRow
	for i := range res.Rows {
		if res.Rows[i].Method == "RIFS" && res.Rows[i].Dataset == "kraken" {
			rifs = &res.Rows[i]
		}
	}
	if rifs == nil {
		t.Fatal("RIFS row missing")
	}
	if rifs.Selected == 0 {
		t.Fatal("RIFS selected nothing on kraken")
	}
	// RIFS should filter most injected noise: the original fraction of its
	// selection must far exceed the base rate (1/(1+factor)).
	frac := float64(rifs.OriginalSelected) / float64(rifs.Selected)
	baseRate := 1.0 / float64(1+tiny.NoiseFactor)
	if frac < 1.5*baseRate {
		t.Fatalf("RIFS original fraction %.2f not above 1.5x base rate %.2f", frac, baseRate)
	}
	if s := res.RenderTable6(); !strings.Contains(s, "kraken") {
		t.Fatal("render missing dataset")
	}
	if s := res.RenderFigure6(); !strings.Contains(s, "orig fraction") {
		t.Fatal("figure 6 render missing header")
	}
}
