package experiments

import (
	"time"

	"github.com/arda-ml/arda/internal/automl"
	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/synth"
)

// Figure3Row is one (dataset, system) point of Figure 3: achieved
// augmentation as %-improvement over the base-table score, plus wall time.
type Figure3Row struct {
	Dataset, System string
	ImprovementPct  float64
	Time            time.Duration
}

// Figure3Result holds the full figure.
type Figure3Result struct {
	Rows []Figure3Row
}

// Figure3 reproduces the paper's headline experiment: for every real-world
// corpus, compare ARDA (RIFS, budget-join), joining all tables without
// selection, the Tuple-Ratio rule as a stand-alone filter, and the AutoML
// baselines on base and fully-materialized inputs.
func Figure3(s Scale, seed int64) (*Figure3Result, error) {
	out := &Figure3Result{}
	for _, spec := range RealWorld() {
		c := s.Generate(spec, seed)
		baseScore, _, _, baseTime := BaselineMetrics(c, s, seed)
		add := func(system string, pct float64, d time.Duration) {
			out.Rows = append(out.Rows, Figure3Row{Dataset: c.Name, System: system, ImprovementPct: pct, Time: d})
		}
		add("base table", 0, baseTime)

		rifs, err := s.Selector(featsel.MethodRIFS)
		if err != nil {
			return nil, err
		}
		pr, err := RunPipeline(c, rifs, s, PipelineOpts{Seed: seed})
		if err != nil {
			return nil, err
		}
		add("ARDA", pr.ImprovementPct, pr.TotalTime)

		all, err := s.Selector(featsel.MethodAll)
		if err != nil {
			return nil, err
		}
		pa, err := RunPipeline(c, all, s, PipelineOpts{Seed: seed})
		if err != nil {
			return nil, err
		}
		add("all tables", pa.ImprovementPct, pa.TotalTime)

		// TR rule as a stand-alone augmentation method: prefilter tables,
		// then join everything that survives without feature selection.
		tau := TuneTau(c, seed)
		pt, err := RunPipeline(c, all, s, PipelineOpts{Seed: seed, Tau: tau})
		if err != nil {
			return nil, err
		}
		add("TR rule", pt.ImprovementPct, pt.TotalTime)

		// AutoML on the base table and on the fully-materialized join.
		baseDS, err := baseDataset(c)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ab := automl.Search(baseDS, automl.Config{Budget: s.AutoMLBudget, MaxTrials: s.AutoMLTrials, Seed: seed})
		add("AutoML (base)", improvementPct(baseScore, ab.Score), time.Since(start))

		allDS, err := MaterializeAll(c, s, seed)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		aa := automl.Search(allDS, automl.Config{Budget: s.AutoMLBudget, MaxTrials: s.AutoMLTrials, Seed: seed})
		add("AutoML (all)", improvementPct(baseScore, aa.Score), time.Since(start))
	}
	return out, nil
}

// Render formats the figure as a text table.
func (r *Figure3Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Dataset, row.System, fmtPct(row.ImprovementPct), fmtDur(row.Time)})
	}
	return RenderTable(
		"Figure 3: achieved augmentation (% improvement over base score) and time",
		[]string{"dataset", "system", "improvement", "time"},
		rows,
	)
}

// baseDataset converts a corpus's base table into an ml.Dataset.
func baseDataset(c *synth.Corpus) (*ml.Dataset, error) {
	task, classes, err := core.TaskOf(c.Base, c.Target)
	if err != nil {
		return nil, err
	}
	return core.DatasetOf(c.Base, c.Target, task, classes)
}
