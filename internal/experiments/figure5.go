package experiments

import (
	"fmt"

	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/ml"
)

// JoinVariant names one soft-join technique of Figure 5.
type JoinVariant struct {
	Name           string
	Method         join.SoftMethod
	NoTimeResample bool
}

// JoinVariants lists the paper's four techniques: plain hard join on
// unmodified keys, time-resampled hard join, nearest-neighbour soft join,
// and two-way nearest-neighbour soft join (the NN variants include
// resampling, as in the paper).
func JoinVariants() []JoinVariant {
	return []JoinVariant{
		{Name: "hard", Method: join.HardExact, NoTimeResample: true},
		{Name: "time-resampled", Method: join.HardExact},
		{Name: "nearest", Method: join.NearestNeighbor},
		{Name: "2-way nearest", Method: join.TwoWayNearest},
	}
}

// Figure5Row is one (dataset, selector, variant) error measurement.
type Figure5Row struct {
	Dataset, Method, Variant string
	Error                    float64
}

// Figure5Result holds the soft-join ablation.
type Figure5Result struct {
	Rows []Figure5Row
}

// Figure5Methods lists the selectors the ablation sweeps.
func Figure5Methods() []featsel.Method {
	return []featsel.Method{
		featsel.MethodRIFS, featsel.MethodAll, featsel.MethodFTest,
		featsel.MethodLasso, featsel.MethodMutual, featsel.MethodForest,
		featsel.MethodRelief, featsel.MethodSparse,
	}
}

// Figure5 compares the four time-series join techniques on the Pickup and
// Taxi corpora across feature selectors, reporting the holdout MAE of the
// final augmented model.
func Figure5(s Scale, seed int64) (*Figure5Result, error) {
	out := &Figure5Result{}
	for _, spec := range []CorpusSpec{RegressionCorpora()[1], RegressionCorpora()[0]} { // pickup, taxi
		c := s.Generate(spec, seed)
		for _, m := range Figure5Methods() {
			sel, err := s.Selector(m)
			if err != nil {
				return nil, err
			}
			if !sel.Supports(ml.Regression) {
				continue
			}
			for _, v := range JoinVariants() {
				pr, err := RunPipeline(c, sel, s, PipelineOpts{
					Seed:           seed,
					SoftMethod:     v.Method,
					NoTimeResample: v.NoTimeResample,
				})
				if err != nil {
					return nil, err
				}
				out.Rows = append(out.Rows, Figure5Row{
					Dataset: c.Name, Method: string(m), Variant: v.Name, Error: pr.Error,
				})
			}
		}
	}
	return out, nil
}

// Render formats the ablation table.
func (r *Figure5Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Dataset, row.Method, row.Variant, fmt.Sprintf("%.3f", row.Error)})
	}
	return RenderTable(
		"Figure 5: time-series join techniques (holdout MAE of the final model)",
		[]string{"dataset", "method", "join", "error"},
		rows,
	)
}
