package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFormatHelpers(t *testing.T) {
	if got := fmtPct(3.14159); got != "+3.14%" {
		t.Fatalf("fmtPct = %q", got)
	}
	if got := fmtPct(-0.5); got != "-0.50%" {
		t.Fatalf("fmtPct negative = %q", got)
	}
	if got := fmtScore(0.12345); got != "0.123" {
		t.Fatalf("fmtScore = %q", got)
	}
	if got := fmtDur(1500 * time.Millisecond); got != "1.5s" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtAcc(0.875); got != "87.50%" {
		t.Fatalf("fmtAcc = %q", got)
	}
	if got := fmtSpeed(2.5); got != "2.50" {
		t.Fatalf("fmtSpeed = %q", got)
	}
	if got := fmtInt(42); got != "42" {
		t.Fatalf("fmtInt = %q", got)
	}
}

func TestRenderTableEmptyRows(t *testing.T) {
	s := RenderTable("empty", []string{"a"}, nil)
	if !strings.Contains(s, "empty") || !strings.Contains(s, "a") {
		t.Fatalf("render = %q", s)
	}
}

func TestMethodLists(t *testing.T) {
	if len(Table1Methods()) != 12 {
		t.Fatalf("Table1Methods = %d, want 12", len(Table1Methods()))
	}
	if len(Table5Methods()) != 4 {
		t.Fatalf("Table5Methods = %d, want 4", len(Table5Methods()))
	}
	if len(Table6Methods()) != 11 {
		t.Fatalf("Table6Methods = %d, want 11", len(Table6Methods()))
	}
	if len(JoinVariants()) != 4 {
		t.Fatalf("JoinVariants = %d, want 4", len(JoinVariants()))
	}
	if len(Micros()) != 2 {
		t.Fatalf("Micros = %d, want 2", len(Micros()))
	}
	if len(RealWorld()) != 5 {
		t.Fatalf("RealWorld = %d, want 5", len(RealWorld()))
	}
	if len(RegressionCorpora()) != 3 {
		t.Fatalf("RegressionCorpora = %d, want 3", len(RegressionCorpora()))
	}
}

func TestImprovementPct(t *testing.T) {
	if got := improvementPct(0.5, 0.75); got != 50 {
		t.Fatalf("improvementPct = %v", got)
	}
	if got := improvementPct(0, 0); got != 0 {
		t.Fatalf("zero baseline, zero final = %v", got)
	}
	if got := improvementPct(0, 0.5); got != 100 {
		t.Fatalf("zero baseline, positive final = %v", got)
	}
}

func TestCoresetRenderSketchOnly(t *testing.T) {
	r := &CoresetResult{
		Title:      "T",
		SketchOnly: true,
		Rows: []CoresetRow{{
			Dataset: "d", Method: "m", Uniform: 0.5,
			StratifiedDeltaPct: 3, SketchDeltaPct: -2,
		}},
	}
	s := r.Render()
	if strings.Contains(s, "stratified") {
		t.Fatalf("sketch-only render should omit the stratified column: %q", s)
	}
	if !strings.Contains(s, "-2.00%") {
		t.Fatalf("sketch delta missing: %q", s)
	}
	r.SketchOnly = false
	s = r.Render()
	if !strings.Contains(s, "stratified") || !strings.Contains(s, "+3.00%") {
		t.Fatalf("full render should include stratified column: %q", s)
	}
}

func TestQuickAndFullScalesSane(t *testing.T) {
	for _, s := range []Scale{Quick, Full} {
		if s.Corpus <= 0 || s.CoresetSize <= 0 || s.RIFSK <= 0 || s.Trees <= 0 {
			t.Fatalf("scale has zero knobs: %+v", s)
		}
		if s.NoiseFactor <= 0 {
			t.Fatalf("scale missing noise factor: %+v", s)
		}
	}
	if Full.Corpus <= Quick.Corpus {
		t.Fatal("Full should be bigger than Quick")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("T", []string{"a", "bb"}, []float64{10, 5}, "%")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "########################################") {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "####################") || strings.Contains(lines[2], "#####################") {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[1], "10.00%") {
		t.Fatalf("value label missing: %q", lines[1])
	}
}

func TestBarChartNegative(t *testing.T) {
	out := BarChart("", []string{"pos", "neg"}, []float64{4, -4}, "")
	if !strings.Contains(out, "|####") {
		t.Fatalf("positive bar should extend right of axis: %q", out)
	}
	if !strings.Contains(out, "####|") {
		t.Fatalf("negative bar should extend left of axis: %q", out)
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("", []string{"z"}, []float64{0}, "")
	if strings.Contains(out, "#") {
		t.Fatalf("zero values should draw no bars: %q", out)
	}
}

func TestFigure3RenderChart(t *testing.T) {
	r := &Figure3Result{Rows: []Figure3Row{
		{Dataset: "taxi", System: "base table", ImprovementPct: 0},
		{Dataset: "taxi", System: "ARDA", ImprovementPct: 20},
		{Dataset: "pickup", System: "ARDA", ImprovementPct: 50},
	}}
	out := r.RenderChart()
	for _, want := range []string{"taxi", "pickup", "ARDA", "20.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6RenderChart(t *testing.T) {
	r := &MicroResult{Rows: []MicroRow{
		{Dataset: "kraken", Method: "RIFS", Selected: 20, OriginalSelected: 15},
		{Dataset: "kraken", Method: "skipped", Selected: 0},
	}}
	out := r.RenderChart()
	if !strings.Contains(out, "RIFS (75% real)") {
		t.Fatalf("chart missing annotated label:\n%s", out)
	}
	if strings.Contains(out, "skipped") {
		t.Fatal("zero-selection rows should be omitted")
	}
}
