package experiments

import (
	"fmt"
	"sort"

	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/synth"
)

// Table4Row reports the effect of Tuple-Ratio prefiltering on one dataset:
// score change vs. the unfiltered pipeline, speedup factor, number of tables
// removed, and the τ used.
type Table4Row struct {
	Dataset       string
	ScoreChange   float64 // percentage points of %-improvement lost/gained
	Speedup       float64 // unfiltered time / filtered time
	TablesRemoved int
	Tau           float64
}

// Table4Result holds the TR-prefilter experiment.
type Table4Result struct {
	Rows []Table4Row
}

// TuneTau picks a per-dataset Tuple-Ratio threshold. The paper tunes τ per
// dataset against model accuracy; as a deterministic, ground-truth-free
// substitute we take the 75th percentile of the observed candidate tuple
// ratios, which removes the high-ratio (low-key-diversity) tail of tables —
// the regime Kumar et al.'s rule targets — while keeping the majority.
func TuneTau(c *synth.Corpus, seed int64) float64 {
	cands := discovery.Discover(c.Base, c.Repo, c.Target, discovery.Options{})
	if len(cands) == 0 {
		return 0
	}
	ratios := make([]float64, 0, len(cands))
	for _, cand := range cands {
		ratios = append(ratios, core.TupleRatio(c.Base.NumRows(), cand))
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)*75/100]
}

// Table4 runs ARDA with RIFS twice per corpus — without and with the TR
// prefilter — and reports the accuracy/time trade-off.
func Table4(s Scale, seed int64) (*Table4Result, error) {
	out := &Table4Result{}
	for _, spec := range RealWorld() {
		c := s.Generate(spec, seed)
		rifs, err := s.Selector(featsel.MethodRIFS)
		if err != nil {
			return nil, err
		}
		plain, err := RunPipeline(c, rifs, s, PipelineOpts{Seed: seed})
		if err != nil {
			return nil, err
		}
		tau := TuneTau(c, seed)
		filtered, err := RunPipeline(c, rifs, s, PipelineOpts{Seed: seed, Tau: tau})
		if err != nil {
			return nil, err
		}
		speedup := 1.0
		if filtered.TotalTime > 0 {
			speedup = float64(plain.TotalTime) / float64(filtered.TotalTime)
		}
		out.Rows = append(out.Rows, Table4Row{
			Dataset:       c.Name,
			ScoreChange:   filtered.ImprovementPct - plain.ImprovementPct,
			Speedup:       speedup,
			TablesRemoved: filtered.TablesFiltered,
			Tau:           tau,
		})
	}
	return out, nil
}

// Render formats the table in the paper's layout.
func (r *Table4Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset,
			fmtPct(row.ScoreChange),
			fmtSpeed(row.Speedup),
			fmtInt(row.TablesRemoved),
			fmtScore(row.Tau),
		})
	}
	return RenderTable(
		"Table 4: ARDA with Tuple-Ratio prefiltering (vs. no prefilter)",
		[]string{"dataset", "score change", "speed (x faster)", "tables removed", "tau"},
		rows,
	)
}

// fmtSpeed formats a speedup factor.
func fmtSpeed(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtInt formats an int.
func fmtInt(v int) string { return fmt.Sprintf("%d", v) }
