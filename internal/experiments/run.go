package experiments

import (
	"time"

	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/join"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/synth"
)

// PipelineOpts tunes one pipeline run beyond the defaults.
type PipelineOpts struct {
	Plan            core.PlanKind
	Tau             float64
	CoresetStrategy coreset.Strategy
	SoftMethod      join.SoftMethod
	NoTimeResample  bool
	Seed            int64
	// Budget overrides the per-batch feature budget (0 = coreset size).
	Budget int
}

// PipelineResult reports one (corpus, method) pipeline run with the metrics
// the paper's tables use.
type PipelineResult struct {
	Corpus, Method string
	Task           ml.Task
	// BaseScore/FinalScore are holdout task scores (accuracy or clipped R²).
	BaseScore, FinalScore float64
	// ImprovementPct is 100·(FinalScore−BaseScore)/BaseScore.
	ImprovementPct float64
	// Error is the holdout MAE of the final model (regression tables);
	// Accuracy is the holdout accuracy (classification tables).
	Error, Accuracy float64
	// SelTime is time spent in feature selection; TotalTime the whole run.
	SelTime, TotalTime time.Duration
	// KeptFeatures / KeptTables count the augmentation output.
	KeptFeatures, KeptTables int
	// TablesFiltered counts tables removed by the TR prefilter.
	TablesFiltered int
}

// RunPipeline executes ARDA end-to-end on a corpus with the given selector.
func RunPipeline(c *synth.Corpus, sel featsel.Selector, s Scale, opts PipelineOpts) (PipelineResult, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cands := discovery.Discover(c.Base, c.Repo, c.Target, discovery.Options{})
	est := s.Estimator(seed)
	start := time.Now()
	res, err := core.Augment(c.Base, cands, core.Options{
		Target:              c.Target,
		CoresetStrategy:     opts.CoresetStrategy,
		CoresetSize:         s.CoresetSize,
		Budget:              opts.Budget,
		Plan:                opts.Plan,
		Selector:            sel,
		Estimator:           est,
		TupleRatioTau:       opts.Tau,
		SoftMethod:          opts.SoftMethod,
		DisableTimeResample: opts.NoTimeResample,
		Seed:                seed,
	})
	if err != nil {
		return PipelineResult{}, err
	}
	out := PipelineResult{
		Corpus:         c.Name,
		Method:         sel.Name(),
		BaseScore:      res.BaseScore,
		FinalScore:     res.FinalScore,
		SelTime:        res.SelectionElapsed,
		TotalTime:      time.Since(start),
		KeptFeatures:   len(res.KeptColumns),
		KeptTables:     len(res.KeptTables),
		TablesFiltered: res.CandidatesFiltered,
	}
	out.Task, _, _ = core.TaskOf(c.Base, c.Target)
	out.ImprovementPct = improvementPct(res.BaseScore, res.FinalScore)
	out.Error, out.Accuracy = holdoutMetrics(res, c, est, seed)
	return out, nil
}

// corpusTask returns the corpus's task and class count.
func corpusTask(c *synth.Corpus) (ml.Task, int, error) {
	return core.TaskOf(c.Base, c.Target)
}

// improvementPct guards the percentage against a zero baseline.
func improvementPct(base, final float64) float64 {
	if base <= 1e-9 {
		if final <= 1e-9 {
			return 0
		}
		return 100
	}
	return 100 * (final - base) / base
}

// holdoutMetrics computes the paper's reporting metrics (MAE for regression,
// accuracy for classification) on the final augmented table.
func holdoutMetrics(res *core.Result, c *synth.Corpus, est eval.Fitter, seed int64) (mae, acc float64) {
	task, classes, err := core.TaskOf(c.Base, c.Target)
	if err != nil {
		return 0, 0
	}
	ds, err := core.DatasetOf(res.Table, c.Target, task, classes)
	if err != nil {
		return 0, 0
	}
	split := eval.TrainTestSplit(ds, 0.25, seed)
	if task == ml.Regression {
		return eval.HoldoutError(ds, split, est), 0
	}
	return 0, eval.HoldoutScore(ds, split, est)
}

// BaselineMetrics evaluates the estimator on the base table alone: the
// "baseline (our)" rows of Tables 1 and 6.
func BaselineMetrics(c *synth.Corpus, s Scale, seed int64) (score, mae, acc float64, elapsed time.Duration) {
	task, classes, err := core.TaskOf(c.Base, c.Target)
	if err != nil {
		return 0, 0, 0, 0
	}
	ds, err := core.DatasetOf(c.Base, c.Target, task, classes)
	if err != nil {
		return 0, 0, 0, 0
	}
	est := s.Estimator(seed)
	start := time.Now()
	split := eval.TrainTestSplit(ds, 0.25, seed)
	score = eval.HoldoutScore(ds, split, est)
	if task == ml.Regression {
		mae = eval.HoldoutError(ds, split, est)
	} else {
		acc = score
	}
	return score, mae, acc, time.Since(start)
}

// MaterializeAll joins every discovered candidate into the base table (full
// materialization, no selection) and returns the resulting dataset — the
// substrate for the "all features" and AutoML-(all) rows.
func MaterializeAll(c *synth.Corpus, s Scale, seed int64) (*ml.Dataset, error) {
	sel := featsel.AllFeatures{}
	cands := discovery.Discover(c.Base, c.Repo, c.Target, discovery.Options{})
	res, err := core.Augment(c.Base, cands, core.Options{
		Target:      c.Target,
		CoresetSize: s.CoresetSize,
		Plan:        core.FullMaterialization,
		Selector:    sel,
		Estimator:   s.Estimator(seed),
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	task, classes, err := core.TaskOf(c.Base, c.Target)
	if err != nil {
		return nil, err
	}
	return core.DatasetOf(res.Table, c.Target, task, classes)
}
