package experiments

import (
	"fmt"
	"time"

	"github.com/arda-ml/arda/internal/automl"
	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/ml"
	"github.com/arda-ml/arda/internal/synth"
)

// MicroSpec names one micro-benchmark dataset generator.
type MicroSpec struct {
	Name string
	Gen  func(synth.Config) *ml.Dataset
}

// Micros lists the paper's §7.2 micro benchmarks.
func Micros() []MicroSpec {
	return []MicroSpec{
		{"kraken", synth.Kraken},
		{"digits", synth.Digits},
	}
}

// MicroRow reports one selector on one noise-injected micro benchmark.
type MicroRow struct {
	Dataset, Method string
	Accuracy        float64
	Time            time.Duration
	// Selected is the number of features the method kept; OriginalSelected
	// how many of them are true (pre-injection) features. Figure 6 plots
	// these two counts.
	Selected, OriginalSelected int
	// TotalOriginal and TotalFeatures give the denominators.
	TotalOriginal, TotalFeatures int
}

// MicroResult holds the Table 6 / Figure 6 sweep.
type MicroResult struct {
	Rows []MicroRow
}

// Table6Methods lists the classification selectors of Table 6, in its order.
func Table6Methods() []featsel.Method {
	return []featsel.Method{
		featsel.MethodRIFS,
		featsel.MethodBackward,
		featsel.MethodForward,
		featsel.MethodRFE,
		featsel.MethodSparse,
		featsel.MethodForest,
		featsel.MethodFTest,
		featsel.MethodLinearSVC,
		featsel.MethodLogistic,
		featsel.MethodMutual,
		featsel.MethodRelief,
	}
}

// RunMicros reproduces Table 6 and Figure 6: append NoiseFactor×d synthetic
// noise features to each micro benchmark, then measure each selector's
// holdout accuracy, running time, and how many true vs. noise features it
// keeps.
func RunMicros(s Scale, seed int64) (*MicroResult, error) {
	out := &MicroResult{}
	for _, spec := range Micros() {
		base := spec.Gen(synth.Config{Seed: seed})
		aug, mask := synth.InjectNoise(base, s.NoiseFactor, seed+1)
		split := eval.TrainTestSplit(aug, 0.25, seed)
		est := s.Estimator(seed)

		// Baseline: original features only, no injected noise.
		start := time.Now()
		baseScore := eval.HoldoutScore(base, eval.TrainTestSplit(base, 0.25, seed), est)
		out.Rows = append(out.Rows, MicroRow{
			Dataset: spec.Name, Method: "baseline (our)", Accuracy: baseScore,
			Time: time.Since(start), TotalOriginal: base.D, TotalFeatures: aug.D,
		})

		// All features: noise included, no selection.
		start = time.Now()
		allScore := eval.HoldoutScore(aug, split, est)
		out.Rows = append(out.Rows, MicroRow{
			Dataset: spec.Name, Method: "all features (our)", Accuracy: allScore,
			Time: time.Since(start), Selected: aug.D, OriginalSelected: base.D,
			TotalOriginal: base.D, TotalFeatures: aug.D,
		})

		// AutoML references on both inputs.
		for _, ref := range []struct {
			name string
			ds   *ml.Dataset
		}{{"baseline (AutoML)", base}, {"all features (AutoML)", aug}} {
			start = time.Now()
			res := automl.Search(ref.ds, automl.Config{Budget: s.AutoMLBudget, MaxTrials: s.AutoMLTrials, Seed: seed})
			out.Rows = append(out.Rows, MicroRow{
				Dataset: spec.Name, Method: ref.name, Accuracy: res.Score,
				Time: time.Since(start), TotalOriginal: base.D, TotalFeatures: aug.D,
			})
		}

		for _, m := range Table6Methods() {
			sel, err := s.Selector(m)
			if err != nil {
				return nil, err
			}
			if !sel.Supports(ml.Classification) {
				continue
			}
			row, err := runMicroSelector(spec.Name, string(m), aug, mask, split, sel, est, seed)
			if err != nil {
				return nil, err
			}
			row.TotalOriginal = base.D
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// runMicroSelector runs one selector on the noise-injected dataset: select
// on the training side, retrain the estimator on the kept features, score on
// the holdout, and count how much injected noise survived.
func runMicroSelector(dataset, method string, aug *ml.Dataset, mask []bool, split eval.Split, sel featsel.Selector, est eval.Fitter, seed int64) (MicroRow, error) {
	train := aug.Subset(split.Train)
	test := aug.Subset(split.Test)
	start := time.Now()
	cols, err := sel.Select(train, est, seed)
	if err != nil {
		return MicroRow{}, err
	}
	elapsed := time.Since(start)
	if len(cols) == 0 {
		cols = []int{0}
	}
	model := est(train.SelectFeatures(cols))
	testSel := test.SelectFeatures(cols)
	pred := ml.PredictAll(model, testSel)
	row := MicroRow{
		Dataset:       dataset,
		Method:        method,
		Accuracy:      eval.Accuracy(pred, testSel.Y),
		Time:          elapsed,
		Selected:      len(cols),
		TotalFeatures: aug.D,
	}
	for _, j := range cols {
		if mask[j] {
			row.OriginalSelected++
		}
	}
	return row, nil
}

// RenderTable6 formats the accuracy/time view of the sweep.
func (r *MicroResult) RenderTable6() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Dataset, row.Method, fmtAcc(row.Accuracy), fmtDur(row.Time)})
	}
	return RenderTable(
		"Table 6: micro benchmarks with injected noise (accuracy, time)",
		[]string{"dataset", "method", "accuracy", "time"},
		rows,
	)
}

// RenderFigure6 formats the noise-filtering view: features selected and the
// fraction of them that are original.
func (r *MicroResult) RenderFigure6() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.Selected == 0 {
			continue
		}
		frac := float64(row.OriginalSelected) / float64(row.Selected)
		rows = append(rows, []string{
			row.Dataset, row.Method,
			fmtInt(row.Selected),
			fmtInt(row.OriginalSelected),
			fmt.Sprintf("%.2f", frac),
		})
	}
	return RenderTable(
		"Figure 6: features selected per method (original vs planted noise)",
		[]string{"dataset", "method", "selected", "original", "orig fraction"},
		rows,
	)
}
