package experiments

import (
	"time"

	"github.com/arda-ml/arda/internal/core"
	"github.com/arda-ml/arda/internal/coreset"
	"github.com/arda-ml/arda/internal/discovery"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/synth"
)

// ExtensionRow reports one §9-extension configuration against the ARDA
// default on a corpus.
type ExtensionRow struct {
	Corpus, Extension, Setting string
	FinalScore                 float64
	DeltaPct                   float64 // vs the default configuration
	Time                       time.Duration
}

// ExtensionsResult holds the future-work ablation.
type ExtensionsResult struct {
	Rows []ExtensionRow
}

// Extensions evaluates the implemented §9 future-work items against the
// default pipeline on the Poverty and School (S) corpora: kNN imputation vs
// the simple median/random strategy, leverage-score coresets vs uniform
// sampling, and transitive candidate discovery vs direct-only.
func Extensions(s Scale, seed int64) (*ExtensionsResult, error) {
	out := &ExtensionsResult{}
	rifs, err := s.Selector(featsel.MethodRIFS)
	if err != nil {
		return nil, err
	}
	for _, spec := range []CorpusSpec{{"poverty", synth.Poverty}, {"school-s", synth.SchoolS}} {
		c := s.Generate(spec, seed)
		cands := discovery.Discover(c.Base, c.Repo, c.Target, discovery.Options{})
		est := s.Estimator(seed)

		runWith := func(opts core.Options) (float64, time.Duration, error) {
			opts.Target = c.Target
			opts.CoresetSize = s.CoresetSize
			opts.Selector = rifs
			opts.Estimator = est
			opts.Seed = seed
			start := time.Now()
			useCands := cands
			res, err := core.Augment(c.Base, useCands, opts)
			if err != nil {
				return 0, 0, err
			}
			return res.FinalScore, time.Since(start), nil
		}

		baseScore, baseTime, err := runWith(core.Options{})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ExtensionRow{
			Corpus: c.Name, Extension: "default", Setting: "uniform coreset, simple impute",
			FinalScore: baseScore, Time: baseTime,
		})

		knnScore, knnTime, err := runWith(core.Options{KNNImpute: 5})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ExtensionRow{
			Corpus: c.Name, Extension: "imputation", Setting: "kNN (k=5)",
			FinalScore: knnScore, DeltaPct: improvementPct(baseScore, knnScore), Time: knnTime,
		})

		levScore, levTime, err := runWith(core.Options{CoresetStrategy: coreset.Leverage})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ExtensionRow{
			Corpus: c.Name, Extension: "coreset", Setting: "leverage sampling",
			FinalScore: levScore, DeltaPct: improvementPct(baseScore, levScore), Time: levTime,
		})

		// Transitive candidates appended to the direct ones.
		trans := discovery.Transitive(c.Base, c.Repo, c.Target, discovery.TransitiveOptions{}, nil)
		start := time.Now()
		res, err := core.Augment(c.Base, append(append([]discovery.Candidate{}, cands...), trans...), core.Options{
			Target:      c.Target,
			CoresetSize: s.CoresetSize,
			Selector:    rifs,
			Estimator:   est,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ExtensionRow{
			Corpus: c.Name, Extension: "discovery", Setting: "with transitive candidates",
			FinalScore: res.FinalScore, DeltaPct: improvementPct(baseScore, res.FinalScore),
			Time: time.Since(start),
		})
	}
	return out, nil
}

// Render formats the extensions table.
func (r *ExtensionsResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Corpus, row.Extension, row.Setting,
			fmtScore(row.FinalScore), fmtPct(row.DeltaPct), fmtDur(row.Time),
		})
	}
	return RenderTable(
		"Extensions (paper §9 future work) vs the default pipeline",
		[]string{"corpus", "extension", "setting", "final score", "Δ vs default", "time"},
		rows,
	)
}
