package experiments

import (
	"fmt"
	"time"

	"github.com/arda-ml/arda/internal/eval"
	"github.com/arda-ml/arda/internal/featsel"
	"github.com/arda-ml/arda/internal/synth"
)

// AblationRow reports one RIFS configuration on the noise-injected Kraken
// micro benchmark: holdout accuracy, subset size, and what fraction of the
// kept features are real (not injected corpus noise).
type AblationRow struct {
	Knob, Setting string
	Accuracy      float64
	Selected      int
	OriginalFrac  float64
	Time          time.Duration
}

// AblationResult holds the RIFS design-choice ablation.
type AblationResult struct {
	Rows []AblationRow
}

// RIFSAblation sweeps the design choices DESIGN.md calls out: the ranking
// ensemble weight ν (forest-only vs sparse-regression-only vs the ensemble),
// the injection strategy (moment-matched vs simple distributions), the
// repetition count K, and the injection fraction η. Each variant runs on
// Kraken with injected noise, where ground truth lets us score noise
// filtering directly.
func RIFSAblation(s Scale, seed int64) (*AblationResult, error) {
	base := synth.Kraken(synth.Config{Seed: seed})
	aug, mask := synth.InjectNoise(base, s.NoiseFactor, seed+1)
	split := eval.TrainTestSplit(aug, 0.25, seed)
	est := s.Estimator(seed)

	def := featsel.RIFSConfig{K: s.RIFSK, Forest: featsel.ForestRanker{NTrees: s.Trees, MaxDepth: 10}}
	variants := []struct {
		knob, setting string
		cfg           featsel.RIFSConfig
	}{
		{"ensemble", "forest only (nu=0.99)", withNu(def, 0.99)},
		{"ensemble", "sparse only (nu=0.01)", withNu(def, 0.01)},
		{"ensemble", "ensemble (nu=0.5)", withNu(def, 0.5)},
		{"injection", "moment-matched", def},
		{"injection", "simple distributions", withInjection(def, featsel.SimpleDistributions)},
		{"repetitions", "K=2", withK(def, 2)},
		{"repetitions", fmt.Sprintf("K=%d", s.RIFSK), def},
		{"repetitions", fmt.Sprintf("K=%d", 2*s.RIFSK), withK(def, 2*s.RIFSK)},
		{"injection fraction", "eta=0.1", withEta(def, 0.1)},
		{"injection fraction", "eta=0.2", withEta(def, 0.2)},
		{"injection fraction", "eta=0.4", withEta(def, 0.4)},
	}

	out := &AblationResult{}
	for _, v := range variants {
		sel := &featsel.RIFS{Config: v.cfg}
		row, err := runMicroSelector("kraken", v.setting, aug, mask, split, sel, est, seed)
		if err != nil {
			return nil, err
		}
		frac := 0.0
		if row.Selected > 0 {
			frac = float64(row.OriginalSelected) / float64(row.Selected)
		}
		out.Rows = append(out.Rows, AblationRow{
			Knob:         v.knob,
			Setting:      v.setting,
			Accuracy:     row.Accuracy,
			Selected:     row.Selected,
			OriginalFrac: frac,
			Time:         row.Time,
		})
	}
	return out, nil
}

func withNu(c featsel.RIFSConfig, nu float64) featsel.RIFSConfig {
	c.Nu = nu
	return c
}

func withK(c featsel.RIFSConfig, k int) featsel.RIFSConfig {
	c.K = k
	return c
}

func withEta(c featsel.RIFSConfig, eta float64) featsel.RIFSConfig {
	c.Eta = eta
	return c
}

func withInjection(c featsel.RIFSConfig, kind featsel.InjectionKind) featsel.RIFSConfig {
	c.Injection = kind
	return c
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Knob, row.Setting, fmtAcc(row.Accuracy),
			fmtInt(row.Selected), fmt.Sprintf("%.2f", row.OriginalFrac), fmtDur(row.Time),
		})
	}
	return RenderTable(
		"RIFS ablation on Kraken + injected noise (design choices of §6)",
		[]string{"knob", "setting", "accuracy", "selected", "orig frac", "time"},
		rows,
	)
}
