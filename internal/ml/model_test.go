package ml

import (
	"math"
	"math/rand"
	"testing"
)

// makeClassification builds a linearly-separable-ish 2-class dataset with
// informative features first and pure noise features after.
func makeClassification(n, informative, noise int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := informative + noise
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		label := i % 2
		y[i] = float64(label)
		row := x[i*d : (i+1)*d]
		for j := 0; j < informative; j++ {
			row[j] = float64(label)*2.5 + rng.NormFloat64()
		}
		for j := informative; j < d; j++ {
			row[j] = rng.NormFloat64()
		}
	}
	ds, err := NewDataset(x, n, d, y, Classification, 2)
	if err != nil {
		panic(err)
	}
	return ds
}

// makeRegression builds y = 3x0 − 2x1 + ε with extra noise features.
func makeRegression(n, noise int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := 2 + noise
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] = rng.NormFloat64()
		}
		y[i] = 3*row[0] - 2*row[1] + 0.1*rng.NormFloat64()
	}
	ds, err := NewDataset(x, n, d, y, Regression, 0)
	if err != nil {
		panic(err)
	}
	return ds
}

// accuracyOf computes training accuracy of a fitted classifier.
func accuracyOf(m Model, ds *Dataset) float64 {
	hits := 0
	for i := 0; i < ds.N; i++ {
		if int(m.Predict(ds.Row(i))) == ds.Label(i) {
			hits++
		}
	}
	return float64(hits) / float64(ds.N)
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(make([]float64, 5), 2, 3, make([]float64, 2), Regression, 0); err == nil {
		t.Fatal("X size mismatch should error")
	}
	if _, err := NewDataset(make([]float64, 6), 2, 3, make([]float64, 3), Regression, 0); err == nil {
		t.Fatal("Y size mismatch should error")
	}
	if _, err := NewDataset(make([]float64, 6), 2, 3, make([]float64, 2), Classification, 1); err == nil {
		t.Fatal("single-class classification should error")
	}
}

func TestSubsetAndSelectFeatures(t *testing.T) {
	ds := makeRegression(10, 1, 1)
	sub := ds.Subset([]int{3, 7})
	if sub.N != 2 || sub.At(0, 0) != ds.At(3, 0) || sub.Y[1] != ds.Y[7] {
		t.Fatal("Subset copies wrong rows")
	}
	sel := ds.SelectFeatures([]int{2, 0})
	if sel.D != 2 || sel.At(4, 1) != ds.At(4, 0) {
		t.Fatal("SelectFeatures copies wrong columns")
	}
}

func TestCleanNaNs(t *testing.T) {
	// Rows: (2, NaN), (NaN, NaN), (6, NaN). Column 0 has mean 4; column 1 is
	// entirely NaN and becomes 0.
	x := []float64{2, math.NaN(), math.NaN(), math.NaN(), 6, math.NaN()}
	ds, _ := NewDataset(x, 3, 2, []float64{0, 1, 0}, Regression, 0)
	ds.CleanNaNs()
	if ds.At(1, 0) != 4 {
		t.Fatalf("NaN should become column mean 4, got %v", ds.At(1, 0))
	}
	for i := 0; i < 3; i++ {
		if ds.At(i, 1) != 0 {
			t.Fatalf("all-NaN column should clean to 0, got %v", ds.At(i, 1))
		}
	}
}

func TestStandardization(t *testing.T) {
	ds := makeRegression(500, 0, 2)
	std := FitStandardization(ds)
	sds := std.Apply(ds)
	for j := 0; j < sds.D; j++ {
		sum, sq := 0.0, 0.0
		for i := 0; i < sds.N; i++ {
			v := sds.At(i, j)
			sum += v
			sq += v * v
		}
		mean := sum / float64(sds.N)
		variance := sq/float64(sds.N) - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
			t.Fatalf("col %d standardized to mean=%v var=%v", j, mean, variance)
		}
	}
	// ApplyVec matches Apply on a row.
	v := std.ApplyVec(ds.Row(3))
	for j := range v {
		if math.Abs(v[j]-sds.At(3, j)) > 1e-12 {
			t.Fatal("ApplyVec disagrees with Apply")
		}
	}
}

func TestStandardizationConstantColumn(t *testing.T) {
	x := []float64{5, 1, 5, 2, 5, 3}
	ds, _ := NewDataset(x, 3, 2, []float64{0, 0, 0}, Regression, 0)
	std := FitStandardization(ds)
	if std.Scale[0] != 1 {
		t.Fatalf("constant column scale = %v, want 1", std.Scale[0])
	}
}
