package ml

import (
	"math"
	"math/rand"
	"testing"
)

// kernelFixture builds a dataset with duplicated feature values (quantized
// draws) so the split kernels' tie handling is exercised, plus a label/target
// carrying real signal.
func kernelFixture(n, d int, task Task, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n*d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			// Quantize to force duplicate values within every column.
			x[i*d+j] = math.Floor(rng.Float64()*8) / 8
		}
		s := x[i*d] + 0.5*x[i*d+1] - x[i*d+2]
		if task == Classification {
			if s > 0.25 {
				y[i] = 1
			}
		} else {
			y[i] = s + 0.05*rng.NormFloat64()
		}
	}
	classes := 0
	if task == Classification {
		classes = 2
	}
	ds, err := NewDataset(x, n, d, y, task, classes)
	if err != nil {
		panic(err)
	}
	return ds
}

// sameTree reports whether two fitted trees are structurally identical
// (nodes, thresholds, predictions, and importances all bit-equal).
func sameTree(a, b *Tree) bool {
	if len(a.nodes) != len(b.nodes) || len(a.importance) != len(b.importance) {
		return false
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] {
			return false
		}
	}
	for j := range a.importance {
		if a.importance[j] != b.importance[j] {
			return false
		}
	}
	return true
}

// TestTreeKernelEquivalenceClassification: the live kernel must reproduce the
// legacy sort-per-node kernel's classification trees bit-for-bit, in both
// regimes (presorted for large nodes, flat for small ones / restricted MTry)
// and with duplicate indices in idx (bootstrap-style multiplicities).
func TestTreeKernelEquivalenceClassification(t *testing.T) {
	cases := []struct {
		name string
		n, d int
		cfg  TreeConfig
		boot bool
	}{
		{"presorted", 400, 5, TreeConfig{}, false},
		{"presorted_minleaf", 400, 5, TreeConfig{MinLeaf: 7}, false},
		{"flat_small_n", 60, 5, TreeConfig{}, false},
		{"flat_mtry", 300, 24, TreeConfig{MTry: 2}, true},
		{"presorted_bootstrap", 400, 5, TreeConfig{}, true},
		{"depth_capped", 400, 5, TreeConfig{MaxDepth: 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := kernelFixture(tc.n, tc.d, Classification, 11)
			var idx []int
			if tc.boot {
				brng := rand.New(rand.NewSource(99))
				idx = make([]int, tc.n)
				for i := range idx {
					idx[i] = brng.Intn(tc.n)
				}
			}
			want := fitTreeLegacy(ds, idx, tc.cfg, rand.New(rand.NewSource(42)))
			got := FitTree(ds, idx, tc.cfg, rand.New(rand.NewSource(42)))
			if !sameTree(want, got) {
				t.Fatalf("live kernel tree differs from legacy kernel (nodes %d vs %d)",
					got.NumNodes(), want.NumNodes())
			}
		})
	}
}

// TestTreeKernelEquivalenceRegressionTieFree: in the flat regime the live
// kernel gathers, partitions, and sums in exactly the legacy order, so with
// tie-free columns and no duplicate samples regression trees must match
// bit-for-bit. (The presorted regime iterates node members in value order
// rather than partition order, so its regression sums — and hence leaf values
// — can differ in the last ulp; that regime is covered by the aggregate
// forest test below.)
func TestTreeKernelEquivalenceRegressionTieFree(t *testing.T) {
	cases := []struct {
		n, d int
		cfg  TreeConfig
	}{
		{60, 4, TreeConfig{}}, // below the small-node cutoff
		{60, 4, TreeConfig{MinLeaf: 5}},
		{300, 24, TreeConfig{MTry: 2}}, // mtry·log₂(m) = 18 < 24: flat
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(7))
		x := make([]float64, tc.n*tc.d)
		y := make([]float64, tc.n)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.d; j++ {
				x[i*tc.d+j] = rng.Float64() // continuous draws: ties have measure zero
			}
			y[i] = 2*x[i*tc.d] - x[i*tc.d+tc.d-1] + 0.1*rng.NormFloat64()
		}
		ds, err := NewDataset(x, tc.n, tc.d, y, Regression, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := fitTreeLegacy(ds, nil, tc.cfg, rand.New(rand.NewSource(3)))
		got := FitTree(ds, nil, tc.cfg, rand.New(rand.NewSource(3)))
		if !sameTree(want, got) {
			t.Fatalf("n=%d d=%d cfg %+v: flat-regime regression tree differs from legacy", tc.n, tc.d, tc.cfg)
		}
	}
}

// TestForestKernelEquivalenceClassification: FitForest with the shared split
// set must reproduce the legacy per-tree kernel's forest exactly — same
// bootstrap RNG streams, same trees, same aggregated importances.
func TestForestKernelEquivalenceClassification(t *testing.T) {
	ds := kernelFixture(250, 10, Classification, 21)
	cfg := ForestConfig{NTrees: 12, MaxDepth: 8, Seed: 5, Parallel: true}
	legacy := cfg
	legacy.legacyKernel = true
	fNew := FitForest(ds, cfg)
	fOld := FitForest(ds, legacy)
	for i := range fNew.Trees {
		if !sameTree(fNew.Trees[i], fOld.Trees[i]) {
			t.Fatalf("tree %d differs between kernels", i)
		}
	}
	in, io := fNew.Importances(), fOld.Importances()
	for j := range in {
		if in[j] != io[j] {
			t.Fatalf("importance[%d] %v != legacy %v", j, in[j], io[j])
		}
	}
}

// TestForestKernelEquivalenceRegression: bootstrap duplicates are ties, and
// the kernels order tied targets differently (sort.Slice's unstable order vs
// the stable (value, position) order), so regression partial sums — and
// occasionally a near-equal split argmax — can differ. The ensembles must
// still agree closely in aggregate on the training rows.
func TestForestKernelEquivalenceRegression(t *testing.T) {
	ds := kernelFixture(200, 6, Regression, 31)
	cfg := ForestConfig{NTrees: 10, MaxDepth: 8, Seed: 9}
	legacy := cfg
	legacy.legacyKernel = true
	fNew := FitForest(ds, cfg)
	fOld := FitForest(ds, legacy)
	sum := 0.0
	for i := 0; i < ds.N; i++ {
		sum += math.Abs(fNew.Predict(ds.Row(i)) - fOld.Predict(ds.Row(i)))
	}
	if mad := sum / float64(ds.N); mad > 0.02 {
		t.Fatalf("mean |new-legacy| prediction gap %v, want < 0.02", mad)
	}
}

// TestUseFlatKernelRule pins the regime rule: monotone in m (once a subtree
// goes flat it stays flat), flat below the small-node cutoff, and crossing
// exactly at mtry·ceil(log₂ m) vs d.
func TestUseFlatKernelRule(t *testing.T) {
	if !useFlatKernel(3, 100, 64) {
		t.Fatal("small nodes must use the flat kernel")
	}
	if !useFlatKernel(12, 148, 160) { // 12·8 = 96 < 148: ARDA's selection-forest shape
		t.Fatal("classification selection shape (mtry=sqrt(d)) should be flat")
	}
	if useFlatKernel(49, 148, 160) { // 49·8 = 392 >= 148: regression shape (mtry=d/3)
		t.Fatal("regression shape (mtry=d/3) should be presorted")
	}
	// Monotone in m: growing m can only move flat → presorted, never back,
	// so a subtree that goes flat stays flat as its nodes shrink.
	for _, mtry := range []int{1, 5, 20} {
		for _, d := range []int{10, 100} {
			sawPresorted := false
			for m := 2; m <= 1<<20; m *= 2 {
				flat := useFlatKernel(mtry, d, m)
				if flat && sawPresorted {
					t.Fatalf("mtry=%d d=%d: flat at m=%d after presorted at smaller m", mtry, d, m)
				}
				if !flat {
					sawPresorted = true
				}
			}
		}
	}
}
