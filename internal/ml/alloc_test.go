package ml

import (
	"math/rand"
	"testing"

	"github.com/arda-ml/arda/internal/testenv"
)

// TestForestFitAllocs is the allocation-regression gate for the split kernel:
// with the pooled per-tree workspaces warm, fitting a tree must allocate far
// less than the legacy kernel's per-node sorting (which allocates scratch and
// comparator closures on every split). The fitted tree's own nodes and
// importance slice are real output, so the budget is a ratio, not zero.
func TestForestFitAllocs(t *testing.T) {
	if testenv.RaceEnabled {
		t.Skip("AllocsPerRun counts the race detector's bookkeeping; run via `make alloc`")
	}
	ds := makeClassification(300, 5, 45, 77)
	cfg := TreeConfig{MaxDepth: 10}
	rng := rand.New(rand.NewSource(1))
	FitTree(ds, nil, cfg, rng) // warm the workspace pool
	pooled := testing.AllocsPerRun(10, func() {
		FitTree(ds, nil, cfg, rng)
	})
	legacy := testing.AllocsPerRun(10, func() {
		fitTreeLegacy(ds, nil, cfg, rng)
	})
	if pooled*2 > legacy {
		t.Fatalf("pooled kernel allocates too much: %.0f vs %.0f legacy per tree", pooled, legacy)
	}
}
