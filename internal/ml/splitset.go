package ml

import (
	"math/rand"

	"github.com/arda-ml/arda/internal/parallel"
)

// treeWorkspace is the pooled per-tree scratch of the split kernel. One
// workspace serves one FitTree call at a time; the pool amortizes the
// columns, orders, and scan buffers across the hundreds of trees a RIFS run
// fits. All slices are length-managed by the reserve helpers; contents are
// garbage between trees except `left`, which is kept all-false by partition
// so it never needs re-clearing.
type treeWorkspace struct {
	// Common scratch (both kernels).
	ys      []float64 // target by tree position
	labels  []int32   // class code by tree position (classification)
	vbuf    []float64 // node values in sorted order (flat scan input)
	ybuf    []float64 // node targets in sorted order
	lbuf    []int32   // node labels in sorted order
	lcnt    []float64 // class-count scratch (left / nodeStats)
	rcnt    []float64 // class-count scratch (right)
	rbuf    []float64 // one-row gather scratch
	feats   []int     // feature permutation for MTry shuffles
	samples []int32   // flat-kernel position lists, partitioned in place
	pay     []int32   // flat-kernel sort payload (positions)
	cnt     []int32   // bootstrap multiplicity per dataset row (forest path)
	rowOf   []int32   // tree position → dataset row (flat forest path)
	scols   []SplitColumn // per-feature column headers handed to the builder
	// Presorted-kernel scratch.
	colv   []float64 // d×m column-major feature values by tree position
	orders []int32   // d×m per-feature positions, value-sorted per node range
	spill  []int32   // stable-partition scratch for right-bound positions
	left   []bool    // goes-left mask during a split (all-false invariant)
	base   []int32   // first tree position per dataset row (counting scans)
	ncnt   []int32   // in-node multiplicity per dataset row (all-zero invariant)
}

// retained is the workspace's pooled footprint in bytes (slice capacities,
// not lengths); the d×m presorted-kernel planes dominate. It feeds the
// pool's retention cap so sweep-sized trees don't keep base-table-sized
// scratch alive.
func (ws *treeWorkspace) retained() int {
	f := cap(ws.ys) + cap(ws.vbuf) + cap(ws.ybuf) + cap(ws.lcnt) + cap(ws.rcnt) +
		cap(ws.rbuf) + cap(ws.colv)
	i := cap(ws.labels) + cap(ws.lbuf) + cap(ws.samples) + cap(ws.pay) + cap(ws.cnt) +
		cap(ws.rowOf) + cap(ws.orders) + cap(ws.spill) + cap(ws.base) + cap(ws.ncnt)
	return f*8 + i*4 + cap(ws.feats)*8 + cap(ws.left) + cap(ws.scols)*48
}

var treeScratch = parallel.NewScratchPoolSized(
	func() *treeWorkspace { return &treeWorkspace{} },
	(*treeWorkspace).retained,
)

// reserve sizes the common scratch for m samples, d features, and k classes
// (0 for regression), growing allocations only when needed, and resets the
// feature permutation to the identity (each tree starts its Fisher-Yates
// state fresh, as the per-node sorting kernel did).
func (ws *treeWorkspace) reserve(m, d, k int) {
	ws.ys = growFloat(ws.ys, m)
	ws.vbuf = growFloat(ws.vbuf, m)
	ws.rbuf = growFloat(ws.rbuf, d)
	ws.samples = growInt32(ws.samples, m)
	ws.pay = growInt32(ws.pay, m)
	if k > 0 {
		ws.labels = growInt32(ws.labels, m)
		ws.lbuf = growInt32(ws.lbuf, m)
		ws.lcnt = growFloat(ws.lcnt, k)
		ws.rcnt = growFloat(ws.rcnt, k)
	} else {
		ws.ybuf = growFloat(ws.ybuf, m)
	}
	if cap(ws.feats) < d {
		ws.feats = make([]int, d)
	}
	ws.feats = ws.feats[:d]
	for j := range ws.feats {
		ws.feats[j] = j
	}
}

// reserveCols sizes the per-tree column store.
func (ws *treeWorkspace) reserveCols(m, d int) {
	ws.colv = growFloat(ws.colv, m*d)
}

// reserveColHeaders sizes the per-feature column-header slice.
func (ws *treeWorkspace) reserveColHeaders(d int) {
	if cap(ws.scols) < d {
		ws.scols = make([]SplitColumn, d)
	}
	ws.scols = ws.scols[:d]
}

// reserveOrders sizes the presorted kernel's order arrays and partition
// scratch.
func (ws *treeWorkspace) reserveOrders(m, d int) {
	ws.orders = growInt32(ws.orders, m*d)
	ws.spill = growInt32(ws.spill, m)
	if cap(ws.left) < m {
		ws.left = make([]bool, m)
	}
	ws.left = ws.left[:m]
}

func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// splitSet is a dataset's shared presort scaffold: column-major feature
// values plus — in the presorted regime — per-feature row indices sorted by
// (value, row). FitForest builds it once; every bootstrap tree either
// derives its per-tree orders from the global ones with a linear counting
// scan (large n) or reads the shared columns through its bootstrap row map
// and sorts nodes flat (small n). Below the presort cutoff the global
// orders are skipped entirely.
type splitSet struct {
	n, d    int
	task    Task
	classes int
	cols    []SplitColumn // per-feature values (+ (value,row) orders when presorted)
	ys      []float64
	labels  []int32 // class codes (classification)
}

// buildSplitSet gathers ds into column-major form and, when needOrders is
// set (the presorted regime), sorts each feature once on the worker pool
// (per-feature sorts are independent, so parallelism cannot change the
// result).
func buildSplitSet(ds *Dataset, workers int, needOrders bool) *splitSet {
	n, d := ds.N, ds.D
	ss := &splitSet{
		n:       n,
		d:       d,
		task:    ds.Task,
		classes: ds.Classes,
		cols:    make([]SplitColumn, d),
		ys:      ds.Y,
	}
	colv := make([]float64, n*d)
	rbuf := make([]float64, d)
	for i := 0; i < n; i++ {
		ds.RowTo(i, rbuf)
		for j := 0; j < d; j++ {
			colv[j*n+i] = rbuf[j]
		}
	}
	for j := 0; j < d; j++ {
		ss.cols[j].v = colv[j*n : (j+1)*n]
	}
	if ds.Task == Classification {
		ss.labels = make([]int32, n)
		for i := 0; i < n; i++ {
			ss.labels[i] = int32(ds.Label(i))
		}
	}
	if needOrders {
		orders := make([]int32, n*d)
		parallel.ForEach(workers, d, func(j int) {
			ord := orders[j*n : (j+1)*n]
			for i := range ord {
				ord[i] = int32(i)
			}
			sortOrder(ss.cols[j].v, ord)
			ss.cols[j].ord = ord
		})
	}
	return ss
}

// fitTreeFromSplitSet grows one tree over a bootstrap sample given as
// per-row multiplicities ws.cnt (Σcnt samples total). Tree positions are
// assigned row-major — row r's copies occupy consecutive positions — so in
// the presorted regime, emitting rows in global value order yields per-tree
// orders already sorted by (value, position) without comparing a single
// value; in the flat regime the tree reads the shared columns through the
// position→row map and no per-tree columns are materialized at all.
func fitTreeFromSplitSet(ss *splitSet, cfg TreeConfig, rng *rand.Rand, ws *treeWorkspace) *Tree {
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	n, d := ss.n, ss.d
	cnt := ws.cnt
	m := 0
	for r := 0; r < n; r++ {
		m += int(cnt[r])
	}
	b := &treeBuilder{
		cfg:     cfg,
		rng:     rng,
		tree:    &Tree{importance: make([]float64, d)},
		task:    ss.task,
		classes: ss.classes,
		m:       m,
		d:       d,
		ws:      ws,
	}
	b.mtry = resolveMTry(cfg.MTry, d)
	ws.reserve(m, d, b.classScratch())

	if useFlatKernel(b.mtry, d, m) {
		ws.rowOf = growInt32(ws.rowOf, m)
		ws.base = growInt32(ws.base, n)
		base := ws.base
		w := 0
		for r := 0; r < n; r++ {
			base[r] = int32(w)
			for k := int32(0); k < cnt[r]; k++ {
				ws.rowOf[w] = int32(r)
				ws.ys[w] = ss.ys[r]
				if ss.labels != nil {
					ws.labels[w] = ss.labels[r]
				}
				w++
			}
		}
		b.scols, b.rowOf, b.ssn = ss.cols, ws.rowOf, n
		// Large nodes can skip the per-node sort when a feature carries a
		// global (value, row) order: walking that order and emitting each
		// in-node row's copies in ascending position order reproduces the
		// sort's (value, position) sequence exactly. Interior nodes register
		// their membership as per-row counts in ws.ncnt (zeroed by make and
		// kept all-zero by growFlat's mark/clear pairing), so the scan skips
		// out-of-node rows without per-position mask checks.
		for _, col := range ss.cols {
			if col.ord != nil {
				b.canScan = true
				ws.ncnt = growInt32(ws.ncnt, n)
				break
			}
		}
		b.flatRoot()
		return b.tree
	}

	ws.reserveCols(m, d)
	ws.reserveOrders(m, d)
	ws.base = growInt32(ws.base, n)
	base := ws.base
	w := 0
	for r := 0; r < n; r++ {
		base[r] = int32(w)
		for k := int32(0); k < cnt[r]; k++ {
			ws.ys[w] = ss.ys[r]
			if ss.labels != nil {
				ws.labels[w] = ss.labels[r]
			}
			w++
		}
	}
	ws.reserveColHeaders(d)
	for j := 0; j < d; j++ {
		gcol := ss.cols[j].v
		gord := ss.cols[j].ord
		tcol := ws.colv[j*m : (j+1)*m]
		tord := ws.orders[j*m : (j+1)*m]
		w := 0
		for _, r := range gord {
			c := cnt[r]
			if c == 0 {
				continue
			}
			v := gcol[r]
			p := base[r]
			for k := int32(0); k < c; k++ {
				tord[w] = p + k
				tcol[p+k] = v
				w++
			}
		}
		ws.scols[j] = SplitColumn{v: tcol}
	}
	b.scols = ws.scols
	b.grow(0, m, 0)
	return b.tree
}

// sortOrder sorts ord in place by (key[ord[i]], ord[i]) ascending — the
// index tie-break makes the relation a total order over distinct positions,
// so the result is unique and any correct sort is deterministic. It is a
// handwritten introsort specialized to float64 keys and int32 payloads,
// replacing sort.Slice's interface comparator in the kernel's setup loop.
func sortOrder(key []float64, ord []int32) {
	limit := 1
	for n := len(ord); n > 0; n >>= 1 {
		limit += 2
	}
	introSortOrder(key, ord, limit)
}

func orderLess(key []float64, a, b int32) bool {
	ka, kb := key[a], key[b]
	return ka < kb || (ka == kb && a < b)
}

func introSortOrder(key []float64, ord []int32, limit int) {
	for len(ord) > 16 {
		if limit == 0 {
			heapSortOrder(key, ord)
			return
		}
		limit--
		// Median-of-three pivot, moved to ord[0].
		mid, last := len(ord)/2, len(ord)-1
		if orderLess(key, ord[mid], ord[0]) {
			ord[mid], ord[0] = ord[0], ord[mid]
		}
		if orderLess(key, ord[last], ord[0]) {
			ord[last], ord[0] = ord[0], ord[last]
		}
		if orderLess(key, ord[last], ord[mid]) {
			ord[last], ord[mid] = ord[mid], ord[last]
		}
		ord[0], ord[mid] = ord[mid], ord[0]
		pv := ord[0]
		i := 0
		for j := 1; j < len(ord); j++ {
			if orderLess(key, ord[j], pv) {
				i++
				ord[i], ord[j] = ord[j], ord[i]
			}
		}
		ord[0], ord[i] = ord[i], ord[0]
		// Recurse into the smaller half, loop on the larger.
		if i < len(ord)-i-1 {
			introSortOrder(key, ord[:i], limit)
			ord = ord[i+1:]
		} else {
			introSortOrder(key, ord[i+1:], limit)
			ord = ord[:i]
		}
	}
	for i := 1; i < len(ord); i++ {
		v := ord[i]
		j := i - 1
		for j >= 0 && orderLess(key, v, ord[j]) {
			ord[j+1] = ord[j]
			j--
		}
		ord[j+1] = v
	}
}

func heapSortOrder(key []float64, ord []int32) {
	n := len(ord)
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && orderLess(key, ord[child], ord[child+1]) {
				child++
			}
			if !orderLess(key, ord[root], ord[child]) {
				return
			}
			ord[root], ord[child] = ord[child], ord[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	for i := n - 1; i > 0; i-- {
		ord[0], ord[i] = ord[i], ord[0]
		siftDown(0, i)
	}
}

// sortKV sorts the parallel (key, payload) arrays in place by (key, payload)
// ascending — same total order as sortOrder, over materialized keys. The
// flat kernel calls it once per (node, candidate feature).
func sortKV(key []float64, pay []int32) {
	limit := 1
	for n := len(key); n > 0; n >>= 1 {
		limit += 2
	}
	introSortKV(key, pay, limit)
}

func kvLess(ka float64, pa int32, kb float64, pb int32) bool {
	return ka < kb || (ka == kb && pa < pb)
}

func introSortKV(key []float64, pay []int32, limit int) {
	for len(key) > 16 {
		if limit == 0 {
			heapSortKV(key, pay)
			return
		}
		limit--
		mid, last := len(key)/2, len(key)-1
		if kvLess(key[mid], pay[mid], key[0], pay[0]) {
			key[mid], key[0] = key[0], key[mid]
			pay[mid], pay[0] = pay[0], pay[mid]
		}
		if kvLess(key[last], pay[last], key[0], pay[0]) {
			key[last], key[0] = key[0], key[last]
			pay[last], pay[0] = pay[0], pay[last]
		}
		if kvLess(key[last], pay[last], key[mid], pay[mid]) {
			key[last], key[mid] = key[mid], key[last]
			pay[last], pay[mid] = pay[mid], pay[last]
		}
		key[0], key[mid] = key[mid], key[0]
		pay[0], pay[mid] = pay[mid], pay[0]
		pk, pp := key[0], pay[0]
		i := 0
		for j := 1; j < len(key); j++ {
			if kvLess(key[j], pay[j], pk, pp) {
				i++
				key[i], key[j] = key[j], key[i]
				pay[i], pay[j] = pay[j], pay[i]
			}
		}
		key[0], key[i] = key[i], key[0]
		pay[0], pay[i] = pay[i], pay[0]
		if i < len(key)-i-1 {
			introSortKV(key[:i], pay[:i], limit)
			key, pay = key[i+1:], pay[i+1:]
		} else {
			introSortKV(key[i+1:], pay[i+1:], limit)
			key, pay = key[:i], pay[:i]
		}
	}
	for i := 1; i < len(key); i++ {
		kv, pv := key[i], pay[i]
		j := i - 1
		for j >= 0 && kvLess(kv, pv, key[j], pay[j]) {
			key[j+1], pay[j+1] = key[j], pay[j]
			j--
		}
		key[j+1], pay[j+1] = kv, pv
	}
}

func heapSortKV(key []float64, pay []int32) {
	n := len(key)
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && kvLess(key[child], pay[child], key[child+1], pay[child+1]) {
				child++
			}
			if !kvLess(key[root], pay[root], key[child], pay[child]) {
				return
			}
			key[root], key[child] = key[child], key[root]
			pay[root], pay[child] = pay[child], pay[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	for i := n - 1; i > 0; i-- {
		key[0], key[i] = key[i], key[0]
		pay[0], pay[i] = pay[i], pay[0]
		siftDown(0, i)
	}
}
