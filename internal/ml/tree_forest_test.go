package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreeFitsXOR(t *testing.T) {
	// XOR is non-linear; a depth-2 tree must solve it exactly.
	x := []float64{0, 0, 0, 1, 1, 0, 1, 1}
	y := []float64{0, 1, 1, 0}
	ds, _ := NewDataset(x, 4, 2, y, Classification, 2)
	tree := FitTree(ds, nil, TreeConfig{}, rand.New(rand.NewSource(1)))
	for i := 0; i < 4; i++ {
		if int(tree.Predict(ds.Row(i))) != ds.Label(i) {
			t.Fatalf("XOR row %d mispredicted", i)
		}
	}
}

func TestTreeRegression(t *testing.T) {
	// Step function y = 10·1[x > 0.5].
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i) / float64(n)
		if x[i] > 0.5 {
			y[i] = 10
		}
	}
	ds, _ := NewDataset(x, n, 1, y, Regression, 0)
	tree := FitTree(ds, nil, TreeConfig{MaxDepth: 3}, rand.New(rand.NewSource(1)))
	if got := tree.Predict([]float64{0.9}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Predict(0.9) = %v, want 10", got)
	}
	if got := tree.Predict([]float64{0.1}); math.Abs(got) > 1e-9 {
		t.Fatalf("Predict(0.1) = %v, want 0", got)
	}
}

func TestTreeMinLeaf(t *testing.T) {
	ds := makeClassification(40, 1, 0, 2)
	tree := FitTree(ds, nil, TreeConfig{MinLeaf: 20}, rand.New(rand.NewSource(1)))
	if tree.NumNodes() > 3 {
		t.Fatalf("MinLeaf 20 on 40 rows should give <= 3 nodes, got %d", tree.NumNodes())
	}
}

func TestTreeImportanceOnSignal(t *testing.T) {
	ds := makeClassification(300, 1, 3, 3)
	tree := FitTree(ds, nil, TreeConfig{MaxDepth: 4}, rand.New(rand.NewSource(1)))
	imp := tree.Importance()
	for j := 1; j < ds.D; j++ {
		if imp[0] <= imp[j] {
			t.Fatalf("signal importance %v not above noise %v", imp[0], imp[j])
		}
	}
}

func TestForestClassification(t *testing.T) {
	ds := makeClassification(400, 3, 5, 4)
	f := FitForest(ds, ForestConfig{NTrees: 30, MaxDepth: 8, Seed: 7, Parallel: true})
	if acc := accuracyOf(f, ds); acc < 0.9 {
		t.Fatalf("forest training accuracy = %v", acc)
	}
	imp := f.Importances()
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum = %v, want 1", sum)
	}
	// Informative features dominate.
	noiseMax := 0.0
	for j := 3; j < ds.D; j++ {
		if imp[j] > noiseMax {
			noiseMax = imp[j]
		}
	}
	for j := 0; j < 3; j++ {
		if imp[j] < noiseMax {
			t.Fatalf("signal importance %v below noise max %v", imp[j], noiseMax)
		}
	}
}

func TestForestRegression(t *testing.T) {
	ds := makeRegression(500, 3, 5)
	f := FitForest(ds, ForestConfig{NTrees: 40, MaxDepth: 10, Seed: 7, Parallel: true})
	// R² on training data should be high.
	pred := PredictAll(f, ds)
	var ssRes, ssTot, mean float64
	for _, v := range ds.Y {
		mean += v
	}
	mean /= float64(ds.N)
	for i := range pred {
		ssRes += (pred[i] - ds.Y[i]) * (pred[i] - ds.Y[i])
		ssTot += (ds.Y[i] - mean) * (ds.Y[i] - mean)
	}
	if r2 := 1 - ssRes/ssTot; r2 < 0.8 {
		t.Fatalf("forest regression R² = %v", r2)
	}
}

func TestForestDeterminism(t *testing.T) {
	ds := makeClassification(200, 2, 2, 6)
	f1 := FitForest(ds, ForestConfig{NTrees: 10, Seed: 42, Parallel: true})
	f2 := FitForest(ds, ForestConfig{NTrees: 10, Seed: 42, Parallel: false})
	for i := 0; i < ds.N; i++ {
		if f1.Predict(ds.Row(i)) != f2.Predict(ds.Row(i)) {
			t.Fatal("same seed should give identical forests regardless of parallelism")
		}
	}
}

// Property: tree predictions for classification are always valid class codes.
func TestTreePredictionRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		classes := 2 + rng.Intn(3)
		d := 1 + rng.Intn(4)
		x := make([]float64, n*d)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			y[i] = float64(rng.Intn(classes))
		}
		ds, err := NewDataset(x, n, d, y, Classification, classes)
		if err != nil {
			return false
		}
		tree := FitTree(ds, nil, TreeConfig{MaxDepth: 5, MTry: 1}, rng)
		for i := 0; i < n; i++ {
			p := int(tree.Predict(ds.Row(i)))
			if p < 0 || p >= classes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
